package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: approxcache/internal/lsh
cpu: Some CPU
BenchmarkHotPathNearest-8      	  487447	      2100.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotPathTopK/k=4-8     	 1000000	       900 ns/op	       0 B/op	       0 allocs/op
BenchmarkOldPath-8             	   10000	    150073 ns/op	   12376 B/op	       5 allocs/op
BenchmarkNoMem-8               	   10000	       100 ns/op
PASS
ok  	approxcache/internal/lsh	6.0s
`

func TestParseBench(t *testing.T) {
	rs, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(rs), rs)
	}
	if rs[0].Name != "HotPathNearest" || rs[0].NsPerOp != 2100.5 || rs[0].AllocsPerOp != 0 || !rs[0].HasMem {
		t.Fatalf("first result = %+v", rs[0])
	}
	if rs[1].Name != "HotPathTopK/k=4" {
		t.Fatalf("sub-benchmark name = %q", rs[1].Name)
	}
	if rs[2].AllocsPerOp != 5 || rs[2].BytesPerOp != 12376 {
		t.Fatalf("mem columns = %+v", rs[2])
	}
	if rs[3].HasMem {
		t.Fatalf("NoMem flagged as measured: %+v", rs[3])
	}
}

func TestCheckBudgetsPass(t *testing.T) {
	rs, _ := parseBench(strings.NewReader(sample))
	if err := checkBudgets("HotPathNearest=0,HotPathTopK=0,OldPath=5", rs); err != nil {
		t.Fatal(err)
	}
}

func TestCheckBudgetsExceeded(t *testing.T) {
	rs, _ := parseBench(strings.NewReader(sample))
	err := checkBudgets("OldPath=0", rs)
	if err == nil || !strings.Contains(err.Error(), "exceeds budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckBudgetsMissingBenchmark(t *testing.T) {
	rs, _ := parseBench(strings.NewReader(sample))
	if err := checkBudgets("Vanished=0", rs); err == nil {
		t.Fatal("missing benchmark passed the gate")
	}
}

func TestCheckBudgetsUnmeasured(t *testing.T) {
	rs, _ := parseBench(strings.NewReader(sample))
	err := checkBudgets("NoMem=0", rs)
	if err == nil || !strings.Contains(err.Error(), "-benchmem") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckBudgetsBadSpec(t *testing.T) {
	rs, _ := parseBench(strings.NewReader(sample))
	if err := checkBudgets("NoEquals", rs); err == nil {
		t.Fatal("bad spec accepted")
	}
	if err := checkBudgets("X=notanumber", rs); err == nil {
		t.Fatal("bad limit accepted")
	}
}

func TestRunWritesJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	if err := run([]string{"-json", path, "-budgets", "HotPathNearest=0"},
		strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"HotPathNearest"`) {
		t.Fatalf("json missing result: %s", blob)
	}
	if !strings.Contains(out.String(), "HotPathNearest") {
		t.Fatalf("summary missing: %s", out.String())
	}
}

func TestRunEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("no benches here\n"), &out); err == nil {
		t.Fatal("empty input accepted")
	}
}

const throughputSample = `{
  "streams": 16,
  "frames_per_stream": 30,
  "results": [
    {"mode": "single-mutex", "fps": 100.0},
    {"mode": "pool-sharded-batched", "fps": 350.0}
  ],
  "speedup": 3.5
}`

func writeThroughput(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tp.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestThroughputGatePass(t *testing.T) {
	var out strings.Builder
	// Stdin carries no benchmarks: the throughput mode must not read it.
	err := run([]string{"-throughput-json", writeThroughput(t, throughputSample), "-min-speedup", "3.0"},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"single-mutex", "pool-sharded-batched", "3.50x"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, out.String())
		}
	}
}

func TestThroughputGateFail(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-throughput-json", writeThroughput(t, throughputSample), "-min-speedup", "4.0"},
		strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "below required") {
		t.Fatalf("err = %v", err)
	}
}

func TestThroughputGateBadFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-throughput-json", writeThroughput(t, "not json")},
		strings.NewReader(""), &out); err == nil {
		t.Fatal("corrupt report accepted")
	}
	if err := run([]string{"-throughput-json", writeThroughput(t, `{"speedup": 9}`)},
		strings.NewReader(""), &out); err == nil {
		t.Fatal("empty results accepted")
	}
	if err := run([]string{"-throughput-json", filepath.Join(t.TempDir(), "missing.json")},
		strings.NewReader(""), &out); err == nil {
		t.Fatal("missing report accepted")
	}
}

const overloadSample = `{
  "sessions": 8,
  "capacity_rps": 300.0,
  "points": [
    {"mode": "resilient", "load": 1, "goodput_rps": 280.0, "p99_ms": 40.0},
    {"mode": "resilient", "load": 4, "goodput_rps": 270.0, "p99_ms": 80.0},
    {"mode": "unprotected", "load": 4, "goodput_rps": 90.0, "p99_ms": 1500.0}
  ],
  "peak_goodput_rps": 280.0,
  "goodput_at_max_rps": 270.0,
  "retention": 0.96
}`

func TestOverloadGatePass(t *testing.T) {
	var out strings.Builder
	// Stdin carries no benchmarks: the overload mode must not read it.
	err := run([]string{"-overload-json", writeThroughput(t, overloadSample), "-min-retention", "0.85"},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"resilient", "unprotected", "0.96"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, out.String())
		}
	}
}

func TestOverloadGateFail(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-overload-json", writeThroughput(t, overloadSample), "-min-retention", "0.99"},
		strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "below required") {
		t.Fatalf("err = %v", err)
	}
}

func TestOverloadGateBadFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-overload-json", writeThroughput(t, "not json")},
		strings.NewReader(""), &out); err == nil {
		t.Fatal("corrupt report accepted")
	}
	if err := run([]string{"-overload-json", writeThroughput(t, `{"retention": 1}`)},
		strings.NewReader(""), &out); err == nil {
		t.Fatal("empty points accepted")
	}
	if err := run([]string{"-overload-json", filepath.Join(t.TempDir(), "missing.json")},
		strings.NewReader(""), &out); err == nil {
		t.Fatal("missing report accepted")
	}
}

func readScaleSample(maxProcs int, speedup, allocs float64) string {
	return fmt.Sprintf(`{
  "entries": 4096,
  "max_procs": %d,
  "points": [
    {"readers": 1, "lockfree_ops_per_sec": 90000, "locked_ops_per_sec": 88000, "speedup": 1.02},
    {"readers": 16, "lockfree_ops_per_sec": 200000, "locked_ops_per_sec": 80000, "speedup": %g}
  ],
  "speedup_at_16": %g,
  "allocs_per_op": %g
}`, maxProcs, speedup, speedup, allocs)
}

func TestReadScaleGatePass(t *testing.T) {
	var out strings.Builder
	// Stdin carries no benchmarks: the readscale mode must not read it.
	err := run([]string{"-readscale-json", writeThroughput(t, readScaleSample(16, 2.5, 0))},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"16 readers", "2.50x", "GOMAXPROCS=16"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, out.String())
		}
	}
}

func TestReadScaleGateFail(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-readscale-json", writeThroughput(t, readScaleSample(16, 1.5, 0))},
		strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "below required") {
		t.Fatalf("err = %v", err)
	}
}

func TestReadScaleGateAllocs(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-readscale-json", writeThroughput(t, readScaleSample(16, 2.5, 3))},
		strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "budget is 0") {
		t.Fatalf("err = %v", err)
	}
}

func TestReadScaleGateParallelismAware(t *testing.T) {
	var out strings.Builder
	// 1.5x fails at 16 procs but passes the relaxed 2-7 proc floor, and
	// 0.95x passes only the single-proc no-regression floor.
	if err := run([]string{"-readscale-json", writeThroughput(t, readScaleSample(4, 1.5, 0))},
		strings.NewReader(""), &out); err != nil {
		t.Fatalf("1.5x at 4 procs rejected: %v", err)
	}
	if err := run([]string{"-readscale-json", writeThroughput(t, readScaleSample(4, 1.1, 0))},
		strings.NewReader(""), &out); err == nil {
		t.Fatal("1.1x at 4 procs accepted")
	}
	if err := run([]string{"-readscale-json", writeThroughput(t, readScaleSample(1, 0.95, 0))},
		strings.NewReader(""), &out); err != nil {
		t.Fatalf("0.95x at 1 proc rejected: %v", err)
	}
	if err := run([]string{"-readscale-json", writeThroughput(t, readScaleSample(1, 0.8, 0))},
		strings.NewReader(""), &out); err == nil {
		t.Fatal("0.8x regression at 1 proc accepted")
	}
}

func TestReadScaleGateBadFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-readscale-json", writeThroughput(t, "not json")},
		strings.NewReader(""), &out); err == nil {
		t.Fatal("corrupt report accepted")
	}
	if err := run([]string{"-readscale-json", writeThroughput(t, `{"speedup_at_16": 9, "max_procs": 8}`)},
		strings.NewReader(""), &out); err == nil {
		t.Fatal("empty points accepted")
	}
	if err := run([]string{"-readscale-json", filepath.Join(t.TempDir(), "missing.json")},
		strings.NewReader(""), &out); err == nil {
		t.Fatal("missing report accepted")
	}
}

const p2pSample = `{
  "nodes": 4,
  "sessions": 3,
  "frames": 400,
  "points": [
    {
      "bandwidth_mbps": 0.5,
      "legacy": {"mode": "legacy-v1", "bytes_per_frame": 1160.0, "peer_hit_rate": 0.98, "mean_latency_ms": 12.5},
      "compact": {"mode": "compact-v2", "bytes_per_frame": 111.0, "peer_hit_rate": 0.98, "mean_latency_ms": 4.0},
      "bytes_reduction": 10.4
    }
  ],
  "constrained_mbps": 0.5,
  "bytes_reduction": 10.4,
  "hit_legacy": 0.98,
  "hit_compact": 0.98
}`

func TestP2PGatePass(t *testing.T) {
	var out strings.Builder
	// Stdin carries no benchmarks: the p2p mode must not read it.
	err := run([]string{"-p2p-json", writeThroughput(t, p2pSample), "-min-bytes-reduction", "4.0"},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"legacy-v1", "compact-v2", "10.4x"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, out.String())
		}
	}
}

func TestP2PGateFailReduction(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-p2p-json", writeThroughput(t, p2pSample), "-min-bytes-reduction", "20"},
		strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "below required") {
		t.Fatalf("err = %v", err)
	}
}

func TestP2PGateFailHitRate(t *testing.T) {
	lossy := strings.Replace(p2pSample, `"hit_compact": 0.98`, `"hit_compact": 0.90`, 1)
	var out strings.Builder
	err := run([]string{"-p2p-json", writeThroughput(t, lossy)},
		strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "must not cost hits") {
		t.Fatalf("err = %v", err)
	}
}

func TestP2PGateBadFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-p2p-json", writeThroughput(t, "not json")},
		strings.NewReader(""), &out); err == nil {
		t.Fatal("corrupt report accepted")
	}
	if err := run([]string{"-p2p-json", writeThroughput(t, `{"bytes_reduction": 9}`)},
		strings.NewReader(""), &out); err == nil {
		t.Fatal("empty points accepted")
	}
	if err := run([]string{"-p2p-json", filepath.Join(t.TempDir(), "missing.json")},
		strings.NewReader(""), &out); err == nil {
		t.Fatal("missing report accepted")
	}
}
