// Command tracegen generates workload trace specs as JSON and prints
// ground-truth summaries, so experiment inputs can be inspected and
// replayed bit-exactly.
//
// Usage:
//
//	tracegen -workload stationary-heavy -frames 600 -out spec.json
//	tracegen -workload all -frames 600 -summary
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"approxcache/internal/imu"
	"approxcache/internal/trace"
	"approxcache/internal/vision"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		workload = fs.String("workload", "all",
			"stationary-heavy | handheld-mix | walking-tour | panning-sweep | all")
		frames  = fs.Int("frames", 600, "workload length in frames")
		seed    = fs.Int64("seed", 1, "random seed")
		out     = fs.String("out", "", "write the spec JSON to this file (single workload only)")
		summary = fs.Bool("summary", false, "generate the workload and print a ground-truth summary")
		render  = fs.String("render", "", "render every Nth frame as PNG into this directory (single workload only)")
		every   = fs.Int("every", 15, "frame stride for -render")
		crowd   = fs.Int("crowd", 0, "emit a multi-device crowd scenario with this many devices instead of single workloads")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *crowd > 0 {
		sc := trace.CrowdScenario(*crowd, *frames, *seed)
		data, err := trace.EncodeScenario(sc)
		if err != nil {
			return err
		}
		if *out != "" {
			if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d bytes)\n", *out, len(data)+1)
			return nil
		}
		fmt.Println(string(data))
		return nil
	}
	specs, err := selectSpecs(*workload, *frames, *seed)
	if err != nil {
		return err
	}
	if *out != "" {
		if len(specs) != 1 {
			return fmt.Errorf("-out requires a single workload, got %d", len(specs))
		}
		data, err := trace.EncodeSpec(specs[0])
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", *out, len(data)+1)
		return nil
	}
	if *render != "" {
		if len(specs) != 1 {
			return fmt.Errorf("-render requires a single workload, got %d", len(specs))
		}
		return renderFrames(specs[0], *render, *every)
	}
	for _, spec := range specs {
		data, err := trace.EncodeSpec(spec)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		if *summary {
			if err := printSummary(spec); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderFrames writes every stride-th frame of the workload as a PNG
// named frame-<index>-class<c>-scene<s>.png.
func renderFrames(spec trace.Spec, dir string, stride int) error {
	if stride <= 0 {
		return fmt.Errorf("-every must be positive, got %d", stride)
	}
	w, err := trace.Generate(spec)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	written := 0
	for _, fr := range w.Frames {
		if fr.Index%stride != 0 {
			continue
		}
		name := fmt.Sprintf("frame-%04d-class%d-scene%d.png", fr.Index, fr.Class, fr.Scene)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		err = vision.EncodePNG(f, fr.Image)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		written++
	}
	fmt.Printf("rendered %d frames of %s into %s\n", written, spec.Name, dir)
	return nil
}

func selectSpecs(name string, frames int, seed int64) ([]trace.Spec, error) {
	switch name {
	case "all":
		return trace.StandardSpecs(frames, seed), nil
	case "stationary-heavy":
		return []trace.Spec{trace.StationaryHeavy(frames, seed)}, nil
	case "handheld-mix":
		return []trace.Spec{trace.HandheldMix(frames, seed)}, nil
	case "walking-tour":
		return []trace.Spec{trace.WalkingTour(frames, seed)}, nil
	case "panning-sweep":
		return []trace.Spec{trace.PanningSweep(frames, seed)}, nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func printSummary(spec trace.Spec) error {
	w, err := trace.Generate(spec)
	if err != nil {
		return err
	}
	scenes := map[int]struct{}{}
	classes := map[int]int{}
	regimes := map[imu.Regime]int{}
	for _, f := range w.Frames {
		scenes[f.Scene] = struct{}{}
		classes[f.Class]++
		regimes[f.Regime]++
	}
	fmt.Printf("summary %s: %d frames over %v, %d scenes, %d imu samples\n",
		spec.Name, len(w.Frames), spec.Duration(), len(scenes), len(w.IMU))
	fmt.Printf("  regimes:")
	for _, r := range []imu.Regime{imu.Stationary, imu.Handheld, imu.Walking, imu.Panning} {
		if n := regimes[r]; n > 0 {
			fmt.Printf(" %s=%d", r, n)
		}
	}
	fmt.Println()
	fmt.Printf("  class frame counts:")
	for c := 0; c < spec.NumClasses; c++ {
		fmt.Printf(" %d:%d", c, classes[c])
	}
	fmt.Println()
	return nil
}
