package imu

import (
	"fmt"
	"math"
	"time"
)

// ActivityConfig tunes the activity classifier's decision thresholds.
// The defaults separate the four motion regimes the workload generator
// produces; a real deployment would calibrate them per device.
type ActivityConfig struct {
	// Window is the statistics window.
	Window time.Duration
	// StationaryAccelVar is the accel-magnitude variance ceiling for
	// "stationary".
	StationaryAccelVar float64
	// HandheldAccelVar is the variance ceiling for "handheld".
	HandheldAccelVar float64
	// PanGyroMean is the mean gyro magnitude floor for "panning".
	PanGyroMean float64
	// StepBandLow / StepBandHigh bound the step frequency (Hz) whose
	// presence marks "walking".
	StepBandLow, StepBandHigh float64
	// StepPower is the minimum normalized oscillation power in the
	// step band to call it walking.
	StepPower float64
}

// Validate reports whether the configuration is usable.
func (c ActivityConfig) Validate() error {
	if c.Window <= 0 {
		return fmt.Errorf("imu: activity window must be positive, got %v", c.Window)
	}
	if c.StationaryAccelVar <= 0 || c.HandheldAccelVar <= c.StationaryAccelVar {
		return fmt.Errorf("imu: activity variance thresholds must satisfy 0 < stationary < handheld")
	}
	if c.PanGyroMean <= 0 {
		return fmt.Errorf("imu: pan gyro threshold must be positive, got %v", c.PanGyroMean)
	}
	if c.StepBandLow <= 0 || c.StepBandHigh <= c.StepBandLow {
		return fmt.Errorf("imu: step band must satisfy 0 < low < high")
	}
	if c.StepPower <= 0 {
		return fmt.Errorf("imu: step power must be positive, got %v", c.StepPower)
	}
	return nil
}

// DefaultActivityConfig returns thresholds tuned to the generator's
// regime statistics.
func DefaultActivityConfig() ActivityConfig {
	return ActivityConfig{
		Window: 2 * time.Second,
		// Magnitude variance of 3-axis Gaussian noise is ≈0.45σ²:
		// stationary (σ=0.02/axis) sits near 2e-4, handheld (σ=0.12)
		// near 7e-3, so 1e-3 splits them cleanly.
		StationaryAccelVar: 0.001,
		HandheldAccelVar:   0.05,
		PanGyroMean:        0.4,
		StepBandLow:        1.2,
		StepBandHigh:       3.0,
		StepPower:          0.25,
	}
}

// ActivityClassifier infers the device's motion regime from raw IMU
// samples — the inverse of the trace generator. It is the substrate a
// context-aware policy builds on (e.g. gossip more while stationary,
// prefetch while walking). Not safe for concurrent use.
type ActivityClassifier struct {
	cfg    ActivityConfig
	window []Sample
}

// NewActivityClassifier builds a classifier with cfg.
func NewActivityClassifier(cfg ActivityConfig) (*ActivityClassifier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &ActivityClassifier{cfg: cfg}, nil
}

// Observe feeds one sample. Out-of-order samples are dropped.
func (a *ActivityClassifier) Observe(s Sample) {
	if n := len(a.window); n > 0 && s.Offset < a.window[n-1].Offset {
		return
	}
	a.window = append(a.window, s)
	cutoff := s.Offset - a.cfg.Window
	trim := 0
	for trim < len(a.window) && a.window[trim].Offset < cutoff {
		trim++
	}
	if trim > 0 {
		a.window = append(a.window[:0], a.window[trim:]...)
	}
}

// ObserveAll feeds a batch of samples.
func (a *ActivityClassifier) ObserveAll(ss []Sample) {
	for _, s := range ss {
		a.Observe(s)
	}
}

// Classify returns the inferred regime and a confidence in (0, 1].
// With fewer than ~a quarter window of samples it returns (0, 0).
//
// Decision order: sustained rotation → panning; step-band oscillation →
// walking; then variance splits stationary from handheld (anything
// rougher defaults to walking).
func (a *ActivityClassifier) Classify() (Regime, float64) {
	if len(a.window) < 8 {
		return 0, 0
	}
	var accSum, accSumSq, gyroSum float64
	for _, s := range a.window {
		m := s.AccelMagnitude()
		accSum += m
		accSumSq += m * m
		gyroSum += s.GyroMagnitude()
	}
	n := float64(len(a.window))
	accMean := accSum / n
	accVar := accSumSq/n - accMean*accMean
	if accVar < 0 {
		accVar = 0
	}
	gyroMean := gyroSum / n

	if gyroMean >= a.cfg.PanGyroMean {
		return Panning, clampConf(gyroMean / (2 * a.cfg.PanGyroMean))
	}
	if p := a.stepBandPower(); p >= a.cfg.StepPower {
		return Walking, clampConf(p)
	}
	if accVar <= a.cfg.StationaryAccelVar {
		return Stationary, clampConf(1 - accVar/a.cfg.StationaryAccelVar/2)
	}
	if accVar <= a.cfg.HandheldAccelVar {
		return Handheld, clampConf(1 - (accVar-a.cfg.StationaryAccelVar)/
			(a.cfg.HandheldAccelVar-a.cfg.StationaryAccelVar)/2)
	}
	// Rough but aperiodic motion: call it walking with low confidence.
	return Walking, 0.5
}

// stepBandPower estimates the fraction of vertical-acceleration energy
// concentrated in the step-frequency band using a Goertzel-style probe
// at a few candidate frequencies.
func (a *ActivityClassifier) stepBandPower() float64 {
	n := len(a.window)
	if n < 8 {
		return 0
	}
	span := (a.window[n-1].Offset - a.window[0].Offset).Seconds()
	if span <= 0 {
		return 0
	}
	// Vertical acceleration with mean removed.
	z := make([]float64, n)
	var mean float64
	for i, s := range a.window {
		z[i] = s.Accel[2]
		mean += s.Accel[2]
	}
	mean /= float64(n)
	var total float64
	for i := range z {
		z[i] -= mean
		total += z[i] * z[i]
	}
	if total <= 0 {
		return 0
	}
	best := 0.0
	for f := a.cfg.StepBandLow; f <= a.cfg.StepBandHigh; f += 0.2 {
		var re, im float64
		for i, s := range a.window {
			phase := 2 * math.Pi * f * s.Offset.Seconds()
			re += z[i] * math.Cos(phase)
			im += z[i] * math.Sin(phase)
		}
		power := (re*re + im*im) / (total * float64(n) / 2)
		if power > best {
			best = power
		}
	}
	return best
}

func clampConf(c float64) float64 {
	if c < 0.1 {
		return 0.1
	}
	if c > 1 {
		return 1
	}
	return c
}
