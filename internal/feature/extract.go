package feature

import (
	"fmt"
	"sync"

	"approxcache/internal/vision"
)

// Extractor maps a frame to a feature vector. Implementations must be
// deterministic and safe for concurrent use.
type Extractor interface {
	// Extract computes the feature vector of im.
	Extract(im *vision.Image) (Vector, error)
	// Dim returns the dimensionality of vectors produced by Extract.
	Dim() int
	// Name returns a short identifier for reports.
	Name() string
}

// IntoExtractor is implemented by extractors that can write into a
// caller-provided buffer, so the per-frame key computation allocates
// nothing at steady state.
type IntoExtractor interface {
	Extractor
	// ExtractInto computes im's feature vector into dst's backing
	// array (which may be nil). The returned slice has length Dim()
	// and aliases dst when its capacity suffices.
	ExtractInto(im *vision.Image, dst Vector) (Vector, error)
}

// ExtractInto runs e's buffer-reusing path when it has one, falling
// back to Extract plus a copy into dst otherwise.
func ExtractInto(e Extractor, im *vision.Image, dst Vector) (Vector, error) {
	if ie, ok := e.(IntoExtractor); ok {
		return ie.ExtractInto(im, dst)
	}
	v, err := e.Extract(im)
	if err != nil {
		return nil, err
	}
	return append(dst[:0], v...), nil
}

// sizedBuf ensures dst has length n, reallocating only when capacity
// falls short.
func sizedBuf(dst Vector, n int) Vector {
	if cap(dst) < n {
		return make(Vector, n)
	}
	return dst[:n]
}

// GridExtractor downsamples the frame to a Cols×Rows grid of mean
// luminances. It is the workhorse descriptor: translation-tolerant at
// cell granularity and cheap to compute.
type GridExtractor struct {
	Cols, Rows int
}

var _ IntoExtractor = GridExtractor{}

// NewGridExtractor returns a grid extractor, validating the grid shape.
func NewGridExtractor(cols, rows int) (GridExtractor, error) {
	if cols <= 0 || rows <= 0 {
		return GridExtractor{}, fmt.Errorf("feature: grid must be positive, got %dx%d", cols, rows)
	}
	return GridExtractor{Cols: cols, Rows: rows}, nil
}

// Dim returns Cols*Rows.
func (g GridExtractor) Dim() int { return g.Cols * g.Rows }

// Name returns "grid<cols>x<rows>".
func (g GridExtractor) Name() string { return fmt.Sprintf("grid%dx%d", g.Cols, g.Rows) }

func (g GridExtractor) validate(im *vision.Image) error {
	if im.W < g.Cols || im.H < g.Rows {
		return fmt.Errorf("feature: image %dx%d smaller than grid %dx%d",
			im.W, im.H, g.Cols, g.Rows)
	}
	return nil
}

// Extract computes per-cell mean luminance.
func (g GridExtractor) Extract(im *vision.Image) (Vector, error) {
	return g.ExtractInto(im, nil)
}

// satPool recycles summed-area-table buffers across extractions; SAT
// size varies with frame size, so buffers grow to the largest frame
// seen and are reused from there.
var satPool = sync.Pool{New: func() any { return new([]float64) }}

// ExtractInto computes per-cell mean luminance into dst using an
// integral image (summed-area table): one sequential pass builds the
// table, then every cell is four lookups — O(1) per cell regardless of
// cell size, with the table drawn from a pool.
func (g GridExtractor) ExtractInto(im *vision.Image, dst Vector) (Vector, error) {
	if err := g.validate(im); err != nil {
		return nil, err
	}
	out := sizedBuf(dst, g.Cols*g.Rows)
	sp := satPool.Get().(*[]float64)
	sat := *sp
	// sat is (W+1)×(H+1) with a zero top row and left column, so cell
	// sums need no border cases: sum(x0,y0,x1,y1) =
	// sat[y1][x1] - sat[y0][x1] - sat[y1][x0] + sat[y0][x0].
	stride := im.W + 1
	need := stride * (im.H + 1)
	if cap(sat) < need {
		sat = make([]float64, need)
	}
	sat = sat[:need]
	for x := 0; x < stride; x++ {
		sat[x] = 0
	}
	for y := 0; y < im.H; y++ {
		row := im.Pix[y*im.W : (y+1)*im.W]
		above := sat[y*stride : (y+1)*stride]
		cur := sat[(y+1)*stride : (y+2)*stride]
		cur[0] = 0
		var rowSum float64
		for x, p := range row {
			rowSum += p
			cur[x+1] = above[x+1] + rowSum
		}
	}
	// Cell boundaries are carry-stepped (see gridSteps) rather than
	// computed with two integer divisions per cell.
	hq, hr := gridSteps(im.H, g.Rows)
	wq, wr := gridSteps(im.W, g.Cols)
	i, y0, yacc := 0, 0, 0
	for gy := 0; gy < g.Rows; gy++ {
		y1 := y0 + hq
		if yacc += hr; yacc >= g.Rows {
			y1++
			yacc -= g.Rows
		}
		top := sat[y0*stride : (y0+1)*stride]
		bot := sat[y1*stride : (y1+1)*stride]
		x0, xacc := 0, 0
		for gx := 0; gx < g.Cols; gx++ {
			x1 := x0 + wq
			if xacc += wr; xacc >= g.Cols {
				x1++
				xacc -= g.Cols
			}
			sum := bot[x1] - top[x1] - bot[x0] + top[x0]
			out[i] = sum / float64((y1-y0)*(x1-x0))
			i++
			x0 = x1
		}
		y0 = y1
	}
	*sp = sat
	satPool.Put(sp)
	return out, nil
}

// extractNaiveInto is the direct per-cell summation the integral-image
// path replaced. It is kept as the differential-testing reference and
// as one leg of the fused combined pass (whose per-cell accumulation
// order matches it bit for bit).
func (g GridExtractor) extractNaiveInto(im *vision.Image, dst Vector) (Vector, error) {
	if err := g.validate(im); err != nil {
		return nil, err
	}
	out := sizedBuf(dst, g.Cols*g.Rows)
	for gy := 0; gy < g.Rows; gy++ {
		y0 := gy * im.H / g.Rows
		y1 := (gy + 1) * im.H / g.Rows
		for gx := 0; gx < g.Cols; gx++ {
			x0 := gx * im.W / g.Cols
			x1 := (gx + 1) * im.W / g.Cols
			var sum float64
			for y := y0; y < y1; y++ {
				row := im.Pix[y*im.W : y*im.W+im.W]
				for x := x0; x < x1; x++ {
					sum += row[x]
				}
			}
			out[gy*g.Cols+gx] = sum / float64((y1-y0)*(x1-x0))
		}
	}
	return out, nil
}

// HistogramExtractor computes a normalized intensity histogram. It is
// fully translation-invariant and complements the grid descriptor.
type HistogramExtractor struct {
	Bins int
}

var _ IntoExtractor = HistogramExtractor{}

// NewHistogramExtractor returns a histogram extractor with bins buckets.
func NewHistogramExtractor(bins int) (HistogramExtractor, error) {
	if bins <= 0 {
		return HistogramExtractor{}, fmt.Errorf("feature: bins must be positive, got %d", bins)
	}
	return HistogramExtractor{Bins: bins}, nil
}

// Dim returns the number of bins.
func (h HistogramExtractor) Dim() int { return h.Bins }

// Name returns "hist<bins>".
func (h HistogramExtractor) Name() string { return fmt.Sprintf("hist%d", h.Bins) }

// Extract computes the intensity histogram, normalized to sum to 1.
func (h HistogramExtractor) Extract(im *vision.Image) (Vector, error) {
	return h.ExtractInto(im, nil)
}

// histBin maps an intensity to its histogram bin, clamping out-of-range
// values to the edge bins. bins is float64(n) hoisted by the caller.
func histBin(p, bins float64, n int) int {
	b := int(p * bins)
	if uint(b) >= uint(n) {
		if b < 0 {
			return 0
		}
		return n - 1
	}
	return b
}

// ExtractInto computes the histogram into dst.
func (h HistogramExtractor) ExtractInto(im *vision.Image, dst Vector) (Vector, error) {
	if len(im.Pix) == 0 {
		return nil, fmt.Errorf("feature: empty image")
	}
	out := sizedBuf(dst, h.Bins)
	clear(out)
	bins := float64(h.Bins)
	for _, v := range im.Pix {
		out[histBin(v, bins, len(out))]++
	}
	n := float64(len(im.Pix))
	for i := range out {
		out[i] /= n
	}
	return out, nil
}

// CombinedExtractor concatenates the vectors of several extractors,
// optionally normalizing the result to unit norm so that LSH hyperplane
// signatures behave uniformly.
type CombinedExtractor struct {
	parts     []Extractor
	normalize bool
	dim       int
	name      string
	// fusedGrid/fusedHist are set when parts is exactly {grid, hist}:
	// the common pipeline shape, extracted in one fused pixel pass.
	fusedGrid *GridExtractor
	fusedHist *HistogramExtractor
}

var _ IntoExtractor = (*CombinedExtractor)(nil)

// NewCombinedExtractor concatenates parts. normalize selects unit-norm
// output.
func NewCombinedExtractor(normalize bool, parts ...Extractor) (*CombinedExtractor, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("feature: combined extractor needs at least one part")
	}
	dim := 0
	name := "combined("
	for i, p := range parts {
		dim += p.Dim()
		if i > 0 {
			name += "+"
		}
		name += p.Name()
	}
	name += ")"
	c := &CombinedExtractor{parts: parts, normalize: normalize, dim: dim, name: name}
	if len(parts) == 2 {
		if g, ok := parts[0].(GridExtractor); ok {
			if h, ok := parts[1].(HistogramExtractor); ok && h.Bins <= fusedMaxBins {
				c.fusedGrid, c.fusedHist = &g, &h
			}
		}
	}
	return c, nil
}

// fusedMaxBins bounds the histogram width the fused grid+histogram pass
// handles with its stack-allocated count array; wider histograms (which
// do not occur in practice) take the generic per-part path. Must be a
// power of two so the count index can be masked instead of bounds
// checked.
const fusedMaxBins = 256

// Dim returns the total dimensionality.
func (c *CombinedExtractor) Dim() int { return c.dim }

// Name returns a description of the concatenated parts.
func (c *CombinedExtractor) Name() string { return c.name }

// Extract concatenates the part vectors.
func (c *CombinedExtractor) Extract(im *vision.Image) (Vector, error) {
	return c.ExtractInto(im, nil)
}

// ExtractInto concatenates the part vectors into dst. The grid+histogram
// shape used by the standard pipeline is computed in a single fused
// pixel pass; other combinations delegate to each part's buffer-reusing
// path, writing directly into dst's sub-ranges.
func (c *CombinedExtractor) ExtractInto(im *vision.Image, dst Vector) (Vector, error) {
	out := sizedBuf(dst, c.dim)
	if c.fusedGrid != nil {
		if err := extractGridHistFused(im, *c.fusedGrid, *c.fusedHist, out); err != nil {
			return nil, err
		}
	} else {
		off := 0
		for _, p := range c.parts {
			pd := p.Dim()
			sub, err := ExtractInto(p, im, out[off:off:off+pd])
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p.Name(), err)
			}
			// A part may return its own storage (foreign extractor
			// with an oversized result); fold it into place.
			if &sub[0] != &out[off] {
				copy(out[off:off+pd], sub)
			}
			off += pd
		}
	}
	if c.normalize {
		out.Normalize()
	}
	return out, nil
}

// extractGridHistFused computes the grid cells and histogram bins in one
// row-major pixel pass. Within each cell, pixels accumulate in the same
// order as the naive per-cell loops, and the histogram sees pixels in
// the same global order as the standalone extractor, so the fused result
// is bit-identical to running the parts separately.
func extractGridHistFused(im *vision.Image, g GridExtractor, h HistogramExtractor, out Vector) error {
	if err := g.validate(im); err != nil {
		return err
	}
	if len(im.Pix) == 0 {
		return fmt.Errorf("feature: empty image")
	}
	gridDim := g.Cols * g.Rows
	grid := out[:gridDim]
	hist := out[gridDim : gridDim+h.Bins]
	clear(grid)
	clear(hist)
	bins := float64(h.Bins)
	// Histogram counts accumulate in an integer stack array: integer
	// increments do not compete with the grid sums for floating-point
	// ports, and integer counts convert to float64 exactly, so the final
	// bins are identical to counting in float64 directly. Construction
	// guarantees Bins <= fusedMaxBins.
	var counts [fusedMaxBins]int32
	colQ, colR := gridSteps(im.W, g.Cols)
	gy, gyEnd := 0, im.H/g.Rows // row band 0 ends at 1*H/Rows
	for y := 0; y < im.H; y++ {
		for y >= gyEnd {
			gy++
			gyEnd = (gy + 1) * im.H / g.Rows
		}
		row := im.Pix[y*im.W : (y+1)*im.W]
		cells := grid[gy*g.Cols : (gy+1)*g.Cols]
		// Walk the row one cell-column segment at a time so the cell
		// accumulator stays in a register and the per-pixel loop has no
		// band-boundary check; segment boundaries are carry-stepped.
		x0, xacc := 0, 0
		for gx := 0; gx < g.Cols; gx++ {
			x1 := x0 + colQ
			if xacc += colR; xacc >= g.Cols {
				x1++
				xacc -= g.Cols
			}
			sum := cells[gx]
			for _, p := range row[x0:x1] {
				sum += p
				counts[histBin(p, bins, h.Bins)&(fusedMaxBins-1)]++
			}
			cells[gx] = sum
			x0 = x1
		}
	}
	for i := range hist {
		hist[i] = float64(counts[i])
	}
	// Cell heights and widths are stepped with exact carry arithmetic
	// (gridSteps) instead of an integer division per cell; the divisors
	// are the same values (gy+1)*H/Rows - gy*H/Rows etc. would produce.
	hq, hr := gridSteps(im.H, g.Rows)
	wq, wr := gridSteps(im.W, g.Cols)
	i, yacc := 0, 0
	for gy := 0; gy < g.Rows; gy++ {
		hgt := hq
		if yacc += hr; yacc >= g.Rows {
			hgt++
			yacc -= g.Rows
		}
		xacc := 0
		for gx := 0; gx < g.Cols; gx++ {
			w := wq
			if xacc += wr; xacc >= g.Cols {
				w++
				xacc -= g.Cols
			}
			grid[i] /= float64(hgt * w)
			i++
		}
	}
	n := float64(len(im.Pix))
	for i := range hist {
		hist[i] /= n
	}
	return nil
}

// gridSteps returns the quotient and remainder used to step successive
// cell boundaries floor((i+1)*extent/cells) without dividing per cell:
// each step advances by q, plus one more whenever the running remainder
// accumulates past cells.
func gridSteps(extent, cells int) (q, r int) {
	return extent / cells, extent % cells
}

// DefaultExtractor returns the extractor used by the standard pipeline:
// an 8×8 luminance grid concatenated with a 16-bin histogram, unit
// normalized (80 dimensions).
func DefaultExtractor() Extractor {
	grid := GridExtractor{Cols: 8, Rows: 8}
	hist := HistogramExtractor{Bins: 16}
	c, err := NewCombinedExtractor(true, grid, hist)
	if err != nil {
		// Unreachable: both parts are statically valid.
		panic(err)
	}
	return c
}
