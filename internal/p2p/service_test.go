package p2p

import (
	"testing"
	"time"

	"approxcache/internal/cachestore"
	"approxcache/internal/feature"
	"approxcache/internal/lsh"
	"approxcache/internal/simclock"
)

func newStore(t *testing.T, capacity int) *cachestore.Store {
	t.Helper()
	idx, err := lsh.NewExact(2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cachestore.New(cachestore.Config{Capacity: capacity}, idx,
		simclock.NewVirtual(time.Unix(0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newService(t *testing.T) *Service {
	t.Helper()
	svc, err := NewService(DefaultServiceConfig("node-a"), newStore(t, 16))
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestServiceConfigValidate(t *testing.T) {
	if err := DefaultServiceConfig("x").Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ServiceConfig{
		{Vote: lsh.DefaultVoteConfig()}, // no name
		{Name: "a"},                     // bad vote
		{Name: "a", Vote: lsh.DefaultVoteConfig(), MinGossipConfidence: -0.1},    // neg conf
		{Name: "a", Vote: lsh.DefaultVoteConfig(), MinGossipConfidence: 1.00001}, // >1
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewServiceValidation(t *testing.T) {
	if _, err := NewService(ServiceConfig{}, newStore(t, 4)); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := NewService(DefaultServiceConfig("a"), nil); err == nil {
		t.Fatal("nil store accepted")
	}
}

func TestHandleQueryHitAndMiss(t *testing.T) {
	svc := newService(t)
	if _, err := svc.Store().Insert(feature.Vector{1, 0}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Near query: hit.
	resp, err := svc.HandleQuery(Query{Vec: feature.Vector{1, 0.01}, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Found || resp.Label != "cat" {
		t.Fatalf("resp = %+v", resp)
	}
	// Far query: miss.
	resp, err = svc.HandleQuery(Query{Vec: feature.Vector{-1, 0}, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Found {
		t.Fatalf("far query hit: %+v", resp)
	}
	// Empty vector: error.
	if _, err := svc.HandleQuery(Query{}); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestHandleQueryKClamped(t *testing.T) {
	svc := newService(t)
	if _, err := svc.Store().Insert(feature.Vector{1, 0}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// K=0 and K=200 both fall back to the service's vote K.
	for _, k := range []uint8{0, 200} {
		resp, err := svc.HandleQuery(Query{Vec: feature.Vector{1, 0}, K: k})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Found {
			t.Fatalf("K=%d query missed", k)
		}
	}
}

func TestHandleGossipAdmission(t *testing.T) {
	svc := newService(t)
	// Confident gossip is admitted.
	if err := svc.HandleGossip(Gossip{
		Vec: feature.Vector{1, 0}, Label: "cat", Confidence: 0.9, SavedCost: time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if svc.Store().Len() != 1 {
		t.Fatalf("store len = %d", svc.Store().Len())
	}
	// Low-confidence gossip is silently dropped.
	if err := svc.HandleGossip(Gossip{
		Vec: feature.Vector{0, 1}, Label: "dog", Confidence: 0.1, SavedCost: time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if svc.Store().Len() != 1 {
		t.Fatal("low-confidence gossip admitted")
	}
	// Near-duplicate same-label gossip is suppressed.
	if err := svc.HandleGossip(Gossip{
		Vec: feature.Vector{1, 0.001}, Label: "cat", Confidence: 0.9, SavedCost: time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if svc.Store().Len() != 1 {
		t.Fatal("near-duplicate gossip admitted")
	}
	// Same position, different label: admitted (conflicting evidence
	// is kept so the vote can homogenize it).
	if err := svc.HandleGossip(Gossip{
		Vec: feature.Vector{1, 0.001}, Label: "dog", Confidence: 0.9, SavedCost: time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if svc.Store().Len() != 2 {
		t.Fatal("conflicting-label gossip suppressed")
	}
	// Validation errors.
	if err := svc.HandleGossip(Gossip{Label: "x", Confidence: 1}); err == nil {
		t.Fatal("empty vector accepted")
	}
	if err := svc.HandleGossip(Gossip{Vec: feature.Vector{1, 0}, Confidence: 1}); err == nil {
		t.Fatal("empty label accepted")
	}
}

func TestHandlePing(t *testing.T) {
	svc := newService(t)
	if _, err := svc.Store().Insert(feature.Vector{1, 0}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	pong := svc.HandlePing(Ping{From: "node-b"})
	if pong.From != "node-a" || pong.Entries != 1 {
		t.Fatalf("pong = %+v", pong)
	}
}

func TestHandleRawDispatch(t *testing.T) {
	svc := newService(t)
	if _, err := svc.Store().Insert(feature.Vector{1, 0}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Query via raw path.
	req, err := Encode(Query{Vec: feature.Vector{1, 0}, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	respB, err := svc.HandleRaw("node-b", req)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := Decode(respB)
	if err != nil {
		t.Fatal(err)
	}
	if resp, ok := msg.(QueryResp); !ok || !resp.Found {
		t.Fatalf("raw query resp = %+v", msg)
	}
	// Gossip via raw path gets an Ack.
	g, err := Encode(Gossip{Vec: feature.Vector{0, 1}, Label: "dog", Confidence: 1})
	if err != nil {
		t.Fatal(err)
	}
	respB, err = svc.HandleRaw("node-b", g)
	if err != nil {
		t.Fatal(err)
	}
	if msg, err := Decode(respB); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(Ack); !ok {
		t.Fatalf("gossip resp = %+v", msg)
	}
	// Ping via raw path.
	p, err := Encode(Ping{From: "node-b"})
	if err != nil {
		t.Fatal(err)
	}
	respB, err = svc.HandleRaw("node-b", p)
	if err != nil {
		t.Fatal(err)
	}
	if msg, err := Decode(respB); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(Pong); !ok {
		t.Fatalf("ping resp = %+v", msg)
	}
	// Garbage payload errors.
	if _, err := svc.HandleRaw("node-b", []byte{0xFF}); err == nil {
		t.Fatal("garbage accepted")
	}
	// A response kind as a request errors.
	r, err := Encode(Ack{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.HandleRaw("node-b", r); err == nil {
		t.Fatal("ack-as-request accepted")
	}
}

func TestRadioEnergyModel(t *testing.T) {
	m := DefaultRadioEnergyModel()
	if m.MessageCost(0) != m.PerMessageMJ {
		t.Fatal("zero-byte message should cost the fixed overhead")
	}
	if m.MessageCost(1000) <= m.MessageCost(10) {
		t.Fatal("message cost should grow with size")
	}
	if m.RTTCost(100, 50) != m.MessageCost(100)+m.MessageCost(50) {
		t.Fatal("RTT cost should be the two message costs")
	}
}
