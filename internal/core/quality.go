package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"approxcache/internal/admission"
	"approxcache/internal/cachestore"
	"approxcache/internal/feature"
	"approxcache/internal/lsh"
	"approxcache/internal/metrics"
	"approxcache/internal/vision"
)

// QualityConfig configures the self-healing cache-quality layer: a
// shadow auditor that re-runs a sampled fraction of cache hits through
// the DNN off the latency path, per-entry confirm/refute bookkeeping
// feeding the store's quarantine machinery, and a drift-adaptive
// controller that tightens or loosens every reuse gate to hold a live
// hit-accuracy target.
type QualityConfig struct {
	// Enabled turns the quality layer on. The zero value is off: no
	// audits, no recalibration, zero overhead on the serving path.
	Enabled bool
	// AuditSampleEvery audits every Nth reuse-served frame (default
	// 16). Audits are skipped while the node is browning out or the
	// frame's request deadline is nearly spent — quality sampling
	// must never compete with overload survival.
	AuditSampleEvery int
	// TargetAccuracy is the live hit-accuracy SLO the recalibration
	// controller defends (default 0.90).
	TargetAccuracy float64
	// Hysteresis is the dead band around the target (default 0.03):
	// the controller only moves when the estimate leaves
	// [target-h, target+h], so it cannot oscillate on noise.
	Hysteresis float64
	// EWMAAlpha weights each new audit in the live-accuracy estimate
	// (default 0.2).
	EWMAAlpha float64
	// MinSamples is how many audits the controller needs before it
	// trusts the estimate enough to act (default 8).
	MinSamples int
	// TightenStep and LoosenStep are the multiplicative moves applied
	// to the gate-strictness scale (defaults 0.7 and 1.15). The scale
	// multiplies the kNN reuse radius and the IMU/video gate
	// thresholds, so tightening shrinks every gate at once.
	TightenStep float64
	LoosenStep  float64
	// MinScale floors the strictness scale (default 0.35). A
	// controller already at the floor that still misses the target
	// stops trusting reuse entirely and refuses it for RefusalFrames
	// frames (every frame revalidates through the DNN, or through the
	// degradation ladder when the DNN is unavailable).
	MinScale float64
	// CooldownAudits is how many audits must pass between consecutive
	// scale moves (default 4), giving each move time to show up in
	// the estimate before the next.
	CooldownAudits int
	// RefusalFrames is the length of a reuse-refusal burst (default
	// 12).
	RefusalFrames int
	// AlarmAudits is the burst length entered after a refuted audit
	// (default 24): that many subsequent reuse serves are ALL audited
	// instead of sampled. One refute usually means an era of entries
	// just went stale together (model update, scene meaning changed),
	// so the controller sweeps the neighborhood densely while
	// suspicion is hot instead of waiting out the sampling period per
	// poisoned scene.
	AlarmAudits int
	// MaxPending bounds in-flight asynchronous audits (default 4);
	// sampling skips while the bound is reached.
	MaxPending int
	// Synchronous runs audits inline on the serving goroutine instead
	// of asynchronously. Audit latency is still never charged to the
	// frame; experiments on a virtual clock use this for determinism.
	Synchronous bool
}

// DefaultQualityConfig returns the quality layer's standard tuning,
// enabled. Assign it to Config.Quality to turn the layer on.
func DefaultQualityConfig() QualityConfig {
	return QualityConfig{Enabled: true}.withDefaults()
}

// withDefaults fills zero fields with the standard tuning.
func (c QualityConfig) withDefaults() QualityConfig {
	if c.AuditSampleEvery == 0 {
		c.AuditSampleEvery = 16
	}
	if c.TargetAccuracy == 0 {
		c.TargetAccuracy = 0.90
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 0.03
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = 0.2
	}
	if c.MinSamples == 0 {
		c.MinSamples = 8
	}
	if c.TightenStep == 0 {
		c.TightenStep = 0.7
	}
	if c.LoosenStep == 0 {
		c.LoosenStep = 1.15
	}
	if c.MinScale == 0 {
		c.MinScale = 0.35
	}
	if c.CooldownAudits == 0 {
		c.CooldownAudits = 4
	}
	if c.RefusalFrames == 0 {
		c.RefusalFrames = 12
	}
	if c.AlarmAudits == 0 {
		c.AlarmAudits = 24
	}
	if c.MaxPending == 0 {
		c.MaxPending = 4
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c QualityConfig) Validate() error {
	if !c.Enabled {
		return nil
	}
	c = c.withDefaults()
	if c.AuditSampleEvery < 1 {
		return fmt.Errorf("core: AuditSampleEvery must be positive, got %d", c.AuditSampleEvery)
	}
	if c.TargetAccuracy <= 0 || c.TargetAccuracy > 1 {
		return fmt.Errorf("core: TargetAccuracy must be in (0,1], got %v", c.TargetAccuracy)
	}
	if c.Hysteresis < 0 || c.Hysteresis >= c.TargetAccuracy {
		return fmt.Errorf("core: Hysteresis must be in [0, target), got %v", c.Hysteresis)
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		return fmt.Errorf("core: EWMAAlpha must be in (0,1], got %v", c.EWMAAlpha)
	}
	if c.TightenStep <= 0 || c.TightenStep >= 1 {
		return fmt.Errorf("core: TightenStep must be in (0,1), got %v", c.TightenStep)
	}
	if c.LoosenStep <= 1 {
		return fmt.Errorf("core: LoosenStep must exceed 1, got %v", c.LoosenStep)
	}
	if c.MinScale <= 0 || c.MinScale > 1 {
		return fmt.Errorf("core: MinScale must be in (0,1], got %v", c.MinScale)
	}
	if c.RefusalFrames < 1 {
		return fmt.Errorf("core: RefusalFrames must be positive, got %d", c.RefusalFrames)
	}
	if c.AlarmAudits < 0 {
		return fmt.Errorf("core: AlarmAudits must be non-negative, got %d", c.AlarmAudits)
	}
	if c.MaxPending < 1 {
		return fmt.Errorf("core: MaxPending must be positive, got %d", c.MaxPending)
	}
	return nil
}

// QualitySnapshot is a point-in-time view of the quality layer.
type QualitySnapshot struct {
	// LiveAccuracy is the EWMA hit-accuracy estimate from shadow
	// audits (1.0 before the first audit lands).
	LiveAccuracy float64
	// Samples is how many audits have fed the estimate.
	Samples int
	// Scale is the current gate-strictness scale in (0, 1].
	Scale float64
	// RefusalFrames is how many upcoming frames will refuse reuse
	// outright (0 when reuse is being served normally).
	RefusalFrames int
}

// qualityController is the pool-shared closed loop: it samples reuse
// serves into shadow audits, maintains the live-accuracy EWMA, drives
// per-entry confirm/refute/quarantine/parole, and recalibrates the
// shared gate-strictness scale. All engines of a pool share one
// controller, for the same reason they share a watchdog: they serve
// one cache, so its quality is one signal.
type qualityController struct {
	cfg   QualityConfig
	clf   Classifier
	store cachestore.Interface
	stats *metrics.SessionStats
	ctrl  *admission.Controller

	// scaleBits holds the gate-strictness scale as float bits, read
	// atomically on the hot path (every gate-3 lookup multiplies the
	// reuse radius by it).
	scaleBits atomic.Uint64

	mu         sync.Mutex
	sampleTick int
	ewma       float64
	samples    int
	sinceMove  int
	refusal    int
	// alarm counts down the post-refute dense-audit burst.
	alarm   int
	pending int
	wg      sync.WaitGroup
}

func newQualityController(cfg QualityConfig, clf Classifier, store cachestore.Interface, stats *metrics.SessionStats, ctrl *admission.Controller) *qualityController {
	qc := &qualityController{
		cfg:   cfg.withDefaults(),
		clf:   clf,
		store: store,
		stats: stats,
		ctrl:  ctrl,
		ewma:  1, // innocent until audited
	}
	qc.setScale(1)
	return qc
}

func (qc *qualityController) scale() float64 {
	return math.Float64frombits(qc.scaleBits.Load())
}

func (qc *qualityController) setScale(s float64) {
	qc.scaleBits.Store(math.Float64bits(s))
}

// snapshot returns the controller's current state.
func (qc *qualityController) snapshot() QualitySnapshot {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	return QualitySnapshot{
		LiveAccuracy:  qc.ewma,
		Samples:       qc.samples,
		Scale:         qc.scale(),
		RefusalFrames: qc.refusal,
	}
}

// consumeRefusal reports whether the current frame must refuse reuse
// (forced revalidation), consuming one refusal frame.
func (qc *qualityController) consumeRefusal() bool {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	if qc.refusal <= 0 {
		return false
	}
	qc.refusal--
	qc.stats.ObserveReuseRefusal()
	return true
}

// drain blocks until all in-flight asynchronous audits complete.
func (qc *qualityController) drain() { qc.wg.Wait() }

// maybeAudit samples a reuse-served frame into a shadow audit. ids are
// the cache entries that backed the serve (empty for IMU/video hits,
// which have no entry to praise or blame). The audit is admission-aware
// (skipped while the node is browning out), deadline-budgeted (skipped
// when the frame's remaining deadline is thinner than one inference —
// the accelerator has no slack to spend on quality sampling), and
// bounded in flight.
func (qc *qualityController) maybeAudit(e *Engine, im *vision.Image, served string, ids []lsh.ID, deadline time.Time) {
	if qc.ctrl != nil && qc.ctrl.Level() > admission.LevelFull {
		return
	}
	if !deadline.IsZero() && time.Until(deadline) < qc.clf.Profile().MeanLatency {
		return
	}
	qc.mu.Lock()
	qc.sampleTick++
	// Sampled audits are the unbiased accuracy estimate; alarm audits
	// are targeted sweeps of a suspected-stale neighborhood. Only the
	// former may move the EWMA — alarm audits deliberately oversample
	// bad frames, and folding that bias into the estimate would spiral
	// the controller to the floor every time it investigates.
	sampled := qc.sampleTick%qc.cfg.AuditSampleEvery == 0
	due := sampled
	if qc.alarm > 0 {
		due = true
		qc.alarm--
	}
	if due && !qc.cfg.Synchronous {
		if qc.pending >= qc.cfg.MaxPending {
			due = false
		} else {
			qc.pending++
		}
	}
	qc.mu.Unlock()
	if !due {
		return
	}
	// Copy the supporting IDs: the caller's slice is backed by frame
	// scratch that the next frame will overwrite.
	var own [maxAuditIDs]lsh.ID
	n := copy(own[:], ids)
	if qc.cfg.Synchronous {
		qc.runAudit(e, im, served, own[:n], sampled)
		return
	}
	qc.wg.Add(1)
	go func() {
		defer qc.wg.Done()
		qc.runAudit(e, im, served, own[:n], sampled)
		qc.mu.Lock()
		qc.pending--
		qc.mu.Unlock()
	}()
}

// maxAuditIDs bounds how many supporting entries one audit can judge —
// the vote's k is far below this.
const maxAuditIDs = 8

// runAudit re-runs the DNN on a frame a cache hit answered and feeds
// the comparison back into every layer: the live-accuracy estimate,
// the supporting entries' confirm/refute counters (quarantining
// repeat offenders), parole re-verification of quarantined neighbors,
// and — on a refute — cache repair plus a forced revalidation so the
// pipeline stops serving the discredited scene immediately.
//
// The classifier is called directly, NOT through the engine's
// watchdog: an audit is discretionary work, and its failures must not
// trip the breaker that guards mandatory serving.
func (qc *qualityController) runAudit(e *Engine, im *vision.Image, served string, ids []lsh.ID, sampled bool) {
	inf, err := qc.clf.Infer(im)
	if err != nil {
		return // no verdict; the estimate only moves on evidence
	}
	agree := inf.Label == served
	qc.stats.ObserveAudit(!agree)
	// Audits cost energy (the DNN really ran) but never frame latency:
	// the frame was already answered.
	qc.stats.ObserveEnergy(inf.EnergyMJ)
	for _, id := range ids {
		if agree {
			qc.store.Confirm(id)
		} else if qc.store.Refute(id) {
			qc.stats.ObserveQuarantine()
		}
	}
	// Fresh DNN evidence re-verifies quarantined entries caching the
	// same scene, whichever way the audit went; a refute additionally
	// repairs the live neighborhood and re-anchors the cheap gates.
	needVec := !agree
	if !needVec {
		needVec = qc.store.QuarantineStats().Active > 0
	}
	if needVec {
		if vec, verr := feature.ExtractInto(e.cfg.Extractor, im, nil); verr == nil {
			if !agree {
				e.healAfterRefute(im, vec, inf.Label, inf.Confidence, inf.Latency)
			}
			qc.paroleNear(vec, inf.Label, e.cfg.Vote.MaxDistance)
		}
	}
	qc.observeVerdict(agree, sampled)
}

// paroleNear re-verifies quarantined entries within radius of vec
// against the fresh DNN label: agreement reinstates them into the
// candidate index, disagreement counts a parole failure (eviction at
// the limit).
func (qc *qualityController) paroleNear(vec feature.Vector, freshLabel string, radius float64) {
	for _, en := range qc.store.Snapshot() {
		if !en.Quarantined {
			continue
		}
		d, err := feature.Euclidean(vec, en.Vec)
		if err != nil || d > radius {
			continue
		}
		switch qc.store.Parole(en.ID, en.Label == freshLabel) {
		case cachestore.ParoleReinstated:
			qc.stats.ObserveParole(true)
		case cachestore.ParoleEvicted:
			qc.stats.ObserveParole(false)
		}
	}
}

// observeVerdict reacts to one audit outcome: any refute arms the
// alarm sweep; sampled (unbiased) outcomes additionally feed the EWMA
// and the recalibration policy.
func (qc *qualityController) observeVerdict(agree, sampled bool) {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	if !agree {
		// A refute rarely comes alone — a whole era of entries likely
		// went stale with it. Audit densely while suspicion is hot.
		qc.alarm = qc.cfg.AlarmAudits
	}
	if !sampled {
		return
	}
	v := 0.0
	if agree {
		v = 1
	}
	qc.ewma = (1-qc.cfg.EWMAAlpha)*qc.ewma + qc.cfg.EWMAAlpha*v
	qc.samples++
	qc.recalibrateLocked()
}

// recalibrateLocked moves the gate-strictness scale with hysteresis:
// an estimate below the SLO dead band tightens every reuse gate
// (multiplicatively), one above it relaxes them back toward the
// configured thresholds. At the floor with the SLO still missed, the
// controller refuses reuse for a burst of frames — every frame
// revalidates through the DNN (or the degradation ladder when the DNN
// is down) — and restarts the estimate, because the flush it just
// ordered invalidates everything the old estimate measured.
func (qc *qualityController) recalibrateLocked() {
	if qc.samples < qc.cfg.MinSamples {
		return
	}
	qc.sinceMove++
	if qc.sinceMove < qc.cfg.CooldownAudits {
		return
	}
	s := qc.scale()
	switch {
	case qc.ewma < qc.cfg.TargetAccuracy-qc.cfg.Hysteresis:
		if s > qc.cfg.MinScale {
			qc.setScale(math.Max(qc.cfg.MinScale, s*qc.cfg.TightenStep))
		} else {
			qc.refusal = qc.cfg.RefusalFrames
			qc.samples = 0
			qc.ewma = qc.cfg.TargetAccuracy
		}
		qc.stats.ObserveRecalibration(true)
		qc.sinceMove = 0
	case qc.ewma > qc.cfg.TargetAccuracy+qc.cfg.Hysteresis && s < 1:
		qc.setScale(math.Min(1, s*qc.cfg.LoosenStep))
		qc.stats.ObserveRecalibration(false)
		qc.sinceMove = 0
	}
}

// healAfterRefute is the engine-side half of a refuted audit: purge
// live entries the fresh label contradicts, cache the fresh result,
// re-anchor the cheap gates on it, and force the next frame to
// revalidate so the discredited answer stops serving now rather than
// at the end of its reuse streak.
func (e *Engine) healAfterRefute(im *vision.Image, vec feature.Vector, label string, confidence float64, savedCost time.Duration) {
	if !e.cfg.DisableRepair {
		if ns, err := e.deps.Store.NearestInto(vec, e.cfg.Vote.K, nil); err == nil {
			for _, n := range ns {
				if n.Distance > e.cfg.Vote.MaxDistance {
					break // sorted by distance
				}
				if got, ok := e.deps.Store.Label(n.ID); ok && got != label {
					e.deps.Store.Remove(n.ID)
					e.stats.ObserveRepairs(1)
				}
			}
		}
	}
	if _, err := e.deps.Store.Insert(vec, label, confidence, "audit", savedCost); err == nil {
		e.refreshScene(im, label, confidence)
	}
	e.mu.Lock()
	if e.cfg.MaxReuseStreak > 0 && e.streak < e.cfg.MaxReuseStreak {
		e.streak = e.cfg.MaxReuseStreak
	}
	e.mu.Unlock()
}

// DrainAudits blocks until all in-flight asynchronous shadow audits
// complete. Tests and orderly shutdowns call it; pools share one
// controller, so draining any session drains them all.
func (e *Engine) DrainAudits() {
	if e.quality != nil {
		e.quality.drain()
	}
}

// QualitySnapshot returns the quality layer's state; ok is false when
// the layer is disabled.
func (e *Engine) QualitySnapshot() (QualitySnapshot, bool) {
	if e.quality == nil {
		return QualitySnapshot{}, false
	}
	return e.quality.snapshot(), true
}
