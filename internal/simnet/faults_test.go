package simnet

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"approxcache/internal/simclock"
)

func TestCrashAndRestart(t *testing.T) {
	n, err := New(lossless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", echoHandler("echo:")); err != nil {
		t.Fatal(err)
	}
	n.SetDeadCost(80 * time.Millisecond)
	n.Crash("b")
	if !n.Crashed("b") {
		t.Fatal("Crashed not reported")
	}
	if _, rtt, err := n.Call("a", "b", []byte("hi")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("call err = %v", err)
	} else if rtt != 80*time.Millisecond {
		t.Fatalf("crashed call cost %v, want dead cost", rtt)
	}
	if _, err := n.Send("a", "b", []byte("hi")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("send err = %v", err)
	}
	n.Restart("b")
	if n.Crashed("b") {
		t.Fatal("restart did not clear crash")
	}
	resp, _, err := n.Call("a", "b", []byte("hi"))
	if err != nil || string(resp) != "echo:hi" {
		t.Fatalf("post-restart call: %q, %v", resp, err)
	}
}

func TestCorruptResponses(t *testing.T) {
	n, err := New(lossless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", echoHandler("")); err != nil {
		t.Fatal(err)
	}
	n.SetCorrupt("b", true)
	resp, _, err := n.Call("a", "b", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(resp, []byte("hi")) {
		t.Fatal("corrupt node returned clean payload")
	}
	n.SetCorrupt("b", false)
	resp, _, err = n.Call("a", "b", []byte("hi"))
	if err != nil || !bytes.Equal(resp, []byte("hi")) {
		t.Fatalf("post-clear call: %q, %v", resp, err)
	}
}

func TestNodeFaultAddsLatency(t *testing.T) {
	n, err := New(lossless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", echoHandler("")); err != nil {
		t.Fatal(err)
	}
	_, base, err := n.Call("a", "b", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetNodeFault("b", 50*time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	_, spiked, err := n.Call("a", "b", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	// The spike applies per direction, so the RTT grows by ≥ 2×50 ms.
	if spiked < base+100*time.Millisecond {
		t.Fatalf("spiked rtt %v not ≥ base %v + 100ms", spiked, base)
	}
	if err := n.SetNodeFault("b", 0, 0); err != nil {
		t.Fatal(err)
	}
	_, cleared, err := n.Call("a", "b", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if cleared >= spiked {
		t.Fatalf("clearing fault did not restore latency: %v", cleared)
	}
	if err := n.SetNodeFault("b", -time.Second, 0); err == nil {
		t.Fatal("negative fault accepted")
	}
}

func TestLinkFaultIsDirected(t *testing.T) {
	n, err := New(lossless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Register("a", echoHandler("")); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", echoHandler("")); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLinkFault("a", "b", 40*time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	// One-way sends isolate direction: only a→b pays the 40 ms penalty.
	ab, err := n.Send("a", "b", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	ba, err := n.Send("b", "a", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if ab < 40*time.Millisecond {
		t.Fatalf("faulted direction cost %v, want ≥ 40ms", ab)
	}
	if ba >= 40*time.Millisecond {
		t.Fatalf("reverse direction cost %v also degraded", ba)
	}
	if err := n.SetLinkFault("a", "b", 0, 0); err != nil {
		t.Fatal(err)
	}
	cleared, err := n.Send("a", "b", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if cleared >= 40*time.Millisecond {
		t.Fatalf("cleared link still slow: %v", cleared)
	}
}

func TestFaultLossBurstLosesTraffic(t *testing.T) {
	n, err := New(lossless(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", echoHandler("")); err != nil {
		t.Fatal(err)
	}
	// Even absurd injected loss stays a valid probability (< 1).
	if err := n.SetNodeFault("b", 0, 5.0); err != nil {
		t.Fatal(err)
	}
	losses := 0
	for i := 0; i < 50; i++ {
		if _, _, err := n.Call("a", "b", []byte("x")); errors.Is(err, ErrLost) {
			losses++
		}
	}
	if losses < 45 {
		t.Fatalf("only %d/50 calls lost under near-certain loss", losses)
	}
}

func TestFaultEventValidate(t *testing.T) {
	good := FaultPlan{
		{At: 0, Kind: FaultCrash, Node: "a"},
		{At: time.Second, Kind: FaultRestart, Node: "a"},
		{At: 0, Kind: FaultPartition, A: "a", B: "b"},
		{At: 0, Kind: FaultHeal, A: "a", B: "b"},
		{At: 0, Kind: FaultLatencySpike, Node: "a", ExtraLatency: time.Millisecond},
		{At: 0, Kind: FaultLossBurst, Node: "a", ExtraLoss: 0.5},
		{At: 0, Kind: FaultCorrupt, Node: "a"},
		{At: 0, Kind: FaultClear, Node: "a"},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []FaultEvent{
		{At: -time.Second, Kind: FaultCrash, Node: "a"},
		{Kind: FaultCrash},
		{Kind: FaultPartition, A: "a"},
		{Kind: FaultLatencySpike, Node: "a", ExtraLatency: -1},
		{Kind: FaultKind(99), Node: "a"},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("bad event %d accepted", i)
		}
	}
}

func TestFaultSchedulerReplaysPlan(t *testing.T) {
	n, err := New(lossless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", echoHandler("")); err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	plan := FaultPlan{
		{At: 200 * time.Millisecond, Kind: FaultRestart, Node: "b"},
		{At: 100 * time.Millisecond, Kind: FaultCrash, Node: "b"},
	}
	sched, err := NewFaultScheduler(n, clock, plan)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Tick() != 0 || n.Crashed("b") {
		t.Fatal("events fired before their offsets")
	}
	clock.Advance(150 * time.Millisecond)
	if got := sched.Tick(); got != 1 {
		t.Fatalf("tick applied %d events, want 1", got)
	}
	if !n.Crashed("b") {
		t.Fatal("crash event not applied")
	}
	if sched.Done() {
		t.Fatal("scheduler done with events pending")
	}
	clock.Advance(100 * time.Millisecond)
	if got := sched.Tick(); got != 1 {
		t.Fatalf("second tick applied %d events, want 1", got)
	}
	if n.Crashed("b") {
		t.Fatal("restart event not applied")
	}
	if !sched.Done() {
		t.Fatal("scheduler not done after final event")
	}
	if sched.Tick() != 0 {
		t.Fatal("drained scheduler re-applied events")
	}
}

func TestFaultSchedulerSameOffsetOrder(t *testing.T) {
	n, err := New(lossless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	// Same offset: declared order must hold (crash then restart nets
	// out to up).
	plan := FaultPlan{
		{At: 10 * time.Millisecond, Kind: FaultCrash, Node: "b"},
		{At: 10 * time.Millisecond, Kind: FaultRestart, Node: "b"},
	}
	sched, err := NewFaultScheduler(n, clock, plan)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(20 * time.Millisecond)
	if got := sched.Tick(); got != 2 {
		t.Fatalf("tick applied %d events, want 2", got)
	}
	if n.Crashed("b") {
		t.Fatal("same-offset events applied out of declared order")
	}
}

func TestFaultSchedulerValidation(t *testing.T) {
	n, err := New(lossless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	if _, err := NewFaultScheduler(nil, clock, nil); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := NewFaultScheduler(n, nil, nil); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := NewFaultScheduler(n, clock, FaultPlan{{Kind: FaultCrash}}); err == nil {
		t.Fatal("invalid plan accepted")
	}
}
