// Quickstart: front a (simulated) mobile DNN with an approximate cache
// and watch the average recognition latency collapse.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"approxcache"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A workload: 600 frames of a user mostly pointing the camera
	//    at exhibits, occasionally walking to the next one.
	spec := approxcache.StationaryHeavyWorkload(600, 1)
	workload, err := approxcache.GenerateWorkload(spec)
	if err != nil {
		return err
	}

	// 2. The expensive computation being cached: a MobileNetV2-class
	//    classifier (~120 ms per inference on a phone CPU).
	classifier, err := approxcache.NewSimulatedClassifier(approxcache.MobileNetV2, workload, 1)
	if err != nil {
		return err
	}

	// 3. The cache. A virtual clock lets the whole trace replay
	//    instantly while latency accounting stays exact.
	cache, err := approxcache.New(classifier, approxcache.Options{
		Clock: approxcache.NewVirtualClock(),
	})
	if err != nil {
		return err
	}

	// 4. Recognize every frame, feeding the inertial samples received
	//    since the previous frame so the IMU gate can work.
	prev := time.Duration(0)
	for _, frame := range workload.Frames {
		imuWindow := workload.IMUWindow(prev, frame.Offset)
		prev = frame.Offset
		result, err := cache.ProcessWithTruth(frame.Image, imuWindow, approxcache.LabelOf(frame.Class))
		if err != nil {
			return err
		}
		if frame.Index < 3 {
			fmt.Printf("frame %d: %s via %s in %v\n",
				frame.Index, result.Label, result.Source, result.Latency)
		}
	}

	// 5. The poster's claim, reproduced.
	stats := cache.Stats()
	sum := stats.Latency().Summary()
	fmt.Printf("\nprocessed %d frames\n", stats.Frames())
	fmt.Printf("hit rate:     %.1f%%\n", stats.HitRate()*100)
	fmt.Printf("accuracy:     %.1f%%\n", stats.Accuracy()*100)
	fmt.Printf("mean latency: %v (DNN alone would be ~%v)\n", sum.Mean, approxcache.MobileNetV2.MeanLatency)
	fmt.Printf("reduction:    %.1f%%\n",
		(1-float64(sum.Mean)/float64(approxcache.MobileNetV2.MeanLatency))*100)
	return nil
}
