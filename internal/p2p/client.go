package p2p

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"approxcache/internal/feature"
	"approxcache/internal/simnet"
)

// Transport moves encoded messages between this node and named peers.
// Implementations report the (real or simulated) time each exchange
// took so callers can charge it to their clock.
type Transport interface {
	// Call round-trips req to peer and returns the response payload.
	Call(peer string, req []byte) (resp []byte, rtt time.Duration, err error)
	// Send delivers a one-way payload to peer.
	Send(peer string, payload []byte) (cost time.Duration, err error)
}

// RemoteHit is the best answer obtained from the peer set.
type RemoteHit struct {
	// Peer names the peer that answered.
	Peer string
	// Label is the reused recognition label.
	Label string
	// Confidence is the peer's vote confidence.
	Confidence float64
	// Distance is the peer's best supporting distance.
	Distance float64
	// RTT is the round-trip time of the winning exchange.
	RTT time.Duration
}

// ClientConfig parameterizes the querying side.
type ClientConfig struct {
	// K is the neighbor count requested from each peer.
	K int
	// MaxDistance filters peer answers: hits farther than this are
	// ignored (the requester applies its own reuse radius).
	MaxDistance float64
	// GossipFanout caps how many peers each fresh result is shared
	// with. Zero shares with all peers.
	GossipFanout int
}

// Validate reports whether the configuration is usable.
func (c ClientConfig) Validate() error {
	if c.K <= 0 || c.K > 255 {
		return fmt.Errorf("p2p: client K must be in [1,255], got %d", c.K)
	}
	if c.MaxDistance <= 0 {
		return fmt.Errorf("p2p: client MaxDistance must be positive, got %v", c.MaxDistance)
	}
	if c.GossipFanout < 0 {
		return fmt.Errorf("p2p: GossipFanout must be non-negative, got %d", c.GossipFanout)
	}
	return nil
}

// DefaultClientConfig returns the standard querying policy.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{K: 4, MaxDistance: 0.25, GossipFanout: 0}
}

// Client queries and gossips to a set of peers over a Transport.
// Client is safe for concurrent use.
type Client struct {
	cfg       ClientConfig
	transport Transport

	mu      sync.Mutex
	peers   []string
	digests map[string]Digest
	skipped int
}

// NewClient builds a client over transport.
func NewClient(cfg ClientConfig, transport Transport) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if transport == nil {
		return nil, fmt.Errorf("p2p: nil transport")
	}
	return &Client{cfg: cfg, transport: transport, digests: make(map[string]Digest)}, nil
}

// FetchDigest asks peer for its coverage digest and caches it, so
// subsequent Queries can skip the peer when it cannot possibly help.
// Call it periodically (the digest staleness trade-off is the usual
// one: a stale digest only costs missed hits or wasted queries).
func (c *Client) FetchDigest(peer string) (Digest, time.Duration, error) {
	req, err := Encode(DigestReq{})
	if err != nil {
		return Digest{}, 0, fmt.Errorf("encode digest req: %w", err)
	}
	respB, rtt, err := c.transport.Call(peer, req)
	if err != nil {
		return Digest{}, rtt, err
	}
	msg, err := Decode(respB)
	if err != nil {
		return Digest{}, rtt, err
	}
	resp, ok := msg.(DigestResp)
	if !ok {
		return Digest{}, rtt, fmt.Errorf("p2p: unexpected %v reply to digest req", msg.MsgKind())
	}
	c.mu.Lock()
	c.digests[peer] = resp.Digest
	c.mu.Unlock()
	return resp.Digest, rtt, nil
}

// DropDigest forgets a cached digest (e.g. after the peer churns).
func (c *Client) DropDigest(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.digests, peer)
}

// SkippedQueries returns how many per-peer queries digests avoided.
func (c *Client) SkippedQueries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.skipped
}

// digestAllows reports whether peer should be queried for vec: true
// when no digest is cached, or when the digest says the peer may cover
// the query.
func (c *Client) digestAllows(peer string, vec feature.Vector) bool {
	c.mu.Lock()
	d, ok := c.digests[peer]
	c.mu.Unlock()
	if !ok {
		return true
	}
	// Slack of one reuse radius absorbs cluster spread.
	if d.MayCover(vec, c.cfg.MaxDistance, c.cfg.MaxDistance) {
		return true
	}
	c.mu.Lock()
	c.skipped++
	c.mu.Unlock()
	return false
}

// SetPeers replaces the peer set.
func (c *Client) SetPeers(peers []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.peers = append(c.peers[:0:0], peers...)
}

// Peers returns a copy of the current peer set.
func (c *Client) Peers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.peers...)
}

// Query asks every peer for vec and returns the best in-range answer.
// Peers are queried concurrently in the real world, so the charged cost
// is the slowest peer's RTT (all responses are awaited), not the sum.
// found is false when no peer produced an acceptable hit; cost still
// reflects the time spent asking.
func (c *Client) Query(vec feature.Vector) (hit RemoteHit, cost time.Duration, found bool, err error) {
	peers := c.Peers()
	if len(peers) == 0 {
		return RemoteHit{}, 0, false, nil
	}
	req, err := Encode(Query{Vec: vec, K: uint8(c.cfg.K)})
	if err != nil {
		return RemoteHit{}, 0, false, fmt.Errorf("encode query: %w", err)
	}
	var (
		best     RemoteHit
		haveBest bool
		maxRTT   time.Duration
	)
	for _, peer := range peers {
		if !c.digestAllows(peer, vec) {
			continue // the peer's digest says it cannot help
		}
		respB, rtt, callErr := c.transport.Call(peer, req)
		if rtt > maxRTT {
			maxRTT = rtt
		}
		if callErr != nil {
			// A lost or failed exchange is a per-peer miss, not a
			// query failure: the requester simply proceeds with the
			// answers it has.
			continue
		}
		msg, decErr := Decode(respB)
		if decErr != nil {
			continue
		}
		resp, ok := msg.(QueryResp)
		if !ok || !resp.Found || resp.Distance > c.cfg.MaxDistance {
			continue
		}
		if !haveBest || resp.Distance < best.Distance {
			best = RemoteHit{
				Peer:       peer,
				Label:      resp.Label,
				Confidence: resp.Confidence,
				Distance:   resp.Distance,
				RTT:        rtt,
			}
			haveBest = true
		}
	}
	return best, maxRTT, haveBest, nil
}

// Gossip shares a fresh recognition result with up to GossipFanout
// peers (all peers when zero). Gossip is fire-and-forget: per-peer
// failures are ignored, and the returned cost is the slowest delivery
// (sends proceed concurrently on a real radio).
func (c *Client) Gossip(vec feature.Vector, label string, confidence float64, savedCost time.Duration) (time.Duration, error) {
	peers := c.Peers()
	if len(peers) == 0 {
		return 0, nil
	}
	if c.cfg.GossipFanout > 0 && len(peers) > c.cfg.GossipFanout {
		peers = peers[:c.cfg.GossipFanout]
	}
	payload, err := Encode(Gossip{
		Vec:        vec,
		Label:      label,
		Confidence: confidence,
		SavedCost:  savedCost,
	})
	if err != nil {
		return 0, fmt.Errorf("encode gossip: %w", err)
	}
	var maxCost time.Duration
	for _, peer := range peers {
		cost, sendErr := c.transport.Send(peer, payload)
		if sendErr != nil {
			continue
		}
		if cost > maxCost {
			maxCost = cost
		}
	}
	return maxCost, nil
}

// Ping probes peer and returns its advertised identity and cache size.
func (c *Client) Ping(self, peer string) (Pong, time.Duration, error) {
	req, err := Encode(Ping{From: self})
	if err != nil {
		return Pong{}, 0, fmt.Errorf("encode ping: %w", err)
	}
	respB, rtt, err := c.transport.Call(peer, req)
	if err != nil {
		return Pong{}, rtt, err
	}
	msg, err := Decode(respB)
	if err != nil {
		return Pong{}, rtt, err
	}
	pong, ok := msg.(Pong)
	if !ok {
		return Pong{}, rtt, fmt.Errorf("p2p: unexpected %v reply to ping", msg.MsgKind())
	}
	return pong, rtt, nil
}

// QueryWireSize returns the encoded size of a query for dim-dimensional
// vectors, for energy accounting.
func QueryWireSize(dim int) int { return 2 + 2 + 8*dim }

// GossipWireSize returns the encoded size of a gossip message carrying
// a dim-dimensional vector and a label of labelLen bytes.
func GossipWireSize(dim, labelLen int) int { return 1 + 2 + 8*dim + 2 + labelLen + 8 + 8 }

// SimnetTransport adapts a simnet.Network as a Transport for node self.
type SimnetTransport struct {
	self simnet.NodeID
	net  *simnet.Network
}

var _ Transport = (*SimnetTransport)(nil)

// NewSimnetTransport builds a transport sending as self over net.
func NewSimnetTransport(self string, net *simnet.Network) (*SimnetTransport, error) {
	if self == "" {
		return nil, fmt.Errorf("p2p: empty self id")
	}
	if net == nil {
		return nil, fmt.Errorf("p2p: nil network")
	}
	return &SimnetTransport{self: simnet.NodeID(self), net: net}, nil
}

// Call implements Transport.
func (t *SimnetTransport) Call(peer string, req []byte) ([]byte, time.Duration, error) {
	resp, rtt, err := t.net.Call(t.self, simnet.NodeID(peer), req)
	if err != nil && !errors.Is(err, simnet.ErrLost) {
		return nil, rtt, err
	}
	return resp, rtt, err
}

// Send implements Transport.
func (t *SimnetTransport) Send(peer string, payload []byte) (time.Duration, error) {
	return t.net.Send(t.self, simnet.NodeID(peer), payload)
}

// RegisterService wires svc into net under its own name, so peers can
// reach it.
func RegisterService(net *simnet.Network, svc *Service) error {
	if net == nil {
		return fmt.Errorf("p2p: nil network")
	}
	if svc == nil {
		return fmt.Errorf("p2p: nil service")
	}
	return net.Register(simnet.NodeID(svc.Name()), func(from simnet.NodeID, req []byte) ([]byte, error) {
		return svc.HandleRaw(string(from), req)
	})
}
