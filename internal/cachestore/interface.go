package cachestore

import (
	"io"
	"time"

	"approxcache/internal/feature"
	"approxcache/internal/lsh"
)

// Interface is the store contract the engine, the peer service, and
// the facade program against. Three implementations exist:
//
//   - Store: one index under one RWMutex — the right shape for a
//     single-stream device cache.
//   - ShardedStore: N lock-striped Store shards routed by LSH
//     signature prefix — the serving-scale shape, where concurrent
//     streams insert into disjoint shards instead of one mutex.
//   - SerializedStore: a Store behind a single exclusive mutex — the
//     pre-sharding worst case, kept as the throughput-benchmark
//     baseline.
//
// All implementations are safe for concurrent use and share the
// snapshot wire format, so Export/Import round-trips across them.
type Interface interface {
	// Insert stores a recognition result and returns its ID.
	Insert(vec feature.Vector, label string, confidence float64, source string, savedCost time.Duration) (lsh.ID, error)
	// Get returns a snapshot of the entry and whether it is live.
	Get(id lsh.ID) (Entry, bool)
	// Touch records a cache hit on id.
	Touch(id lsh.ID)
	// Label resolves id to its label if live (shape of lsh.Vote's
	// resolver).
	Label(id lsh.ID) (string, bool)
	// Nearest returns up to k neighbors of q among live entries.
	Nearest(q feature.Vector, k int) ([]lsh.Neighbor, error)
	// NearestInto is Nearest appending into dst's backing array.
	NearestInto(q feature.Vector, k int, dst []lsh.Neighbor) ([]lsh.Neighbor, error)
	// Remove deletes id.
	Remove(id lsh.ID)
	// Confirm records a shadow-audit agreement on id.
	Confirm(id lsh.ID)
	// Refute records a shadow-audit disagreement on id; reports
	// whether this call quarantined the entry.
	Refute(id lsh.ID) bool
	// Parole records the outcome of re-verifying a quarantined entry.
	Parole(id lsh.ID, ok bool) ParoleOutcome
	// Quarantined reports whether id is currently quarantined.
	Quarantined(id lsh.ID) bool
	// QuarantineStats returns quarantine lifecycle counters.
	QuarantineStats() QuarantineStats
	// Len returns the live entry count.
	Len() int
	// Evictions and Expiries count removals by cause.
	Evictions() int
	Expiries() int
	// Stats returns an occupancy/churn summary.
	Stats() StoreStats
	// Snapshot returns copies of all live entries.
	Snapshot() []Entry
	// Export writes a checksummed snapshot; Import reads one back.
	Export(w io.Writer) error
	Import(r io.Reader) (int, error)
}

var (
	_ Interface = (*Store)(nil)
	_ Interface = (*ShardedStore)(nil)
	_ Interface = (*SerializedStore)(nil)
)
