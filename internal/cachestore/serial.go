package cachestore

import (
	"io"
	"sync"
	"time"

	"approxcache/internal/feature"
	"approxcache/internal/lsh"
)

// SerializedStore funnels every operation — reads included — through
// one exclusive mutex in front of an inner Store. This is the
// pre-sharding architecture preserved as a measurable artifact: the
// throughput benchmark runs it as the baseline that the sharded store
// must beat, so the serving-scale claim is a number, not an assertion.
type SerializedStore struct {
	mu    sync.Mutex
	inner *Store
}

// NewSerialized wraps inner behind a single exclusive mutex.
func NewSerialized(inner *Store) *SerializedStore {
	return &SerializedStore{inner: inner}
}

// Insert stores a recognition result under the global mutex.
func (s *SerializedStore) Insert(vec feature.Vector, label string, confidence float64, source string, savedCost time.Duration) (lsh.ID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Insert(vec, label, confidence, source, savedCost)
}

// Get returns a snapshot of the entry under the global mutex.
func (s *SerializedStore) Get(id lsh.ID) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Get(id)
}

// Touch records a hit under the global mutex.
func (s *SerializedStore) Touch(id lsh.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Touch(id)
}

// Label resolves id under the global mutex.
func (s *SerializedStore) Label(id lsh.ID) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Label(id)
}

// Nearest searches under the global mutex.
func (s *SerializedStore) Nearest(q feature.Vector, k int) ([]lsh.Neighbor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Nearest(q, k)
}

// NearestInto searches under the global mutex.
func (s *SerializedStore) NearestInto(q feature.Vector, k int, dst []lsh.Neighbor) ([]lsh.Neighbor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.NearestInto(q, k, dst)
}

// Remove deletes id under the global mutex.
func (s *SerializedStore) Remove(id lsh.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Remove(id)
}

// Confirm records an audit agreement under the global mutex.
func (s *SerializedStore) Confirm(id lsh.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Confirm(id)
}

// Refute records an audit disagreement under the global mutex.
func (s *SerializedStore) Refute(id lsh.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Refute(id)
}

// Parole records a re-verification outcome under the global mutex.
func (s *SerializedStore) Parole(id lsh.ID, ok bool) ParoleOutcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Parole(id, ok)
}

// Quarantined reports quarantine state under the global mutex.
func (s *SerializedStore) Quarantined(id lsh.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Quarantined(id)
}

// QuarantineStats summarizes quarantine activity under the global
// mutex.
func (s *SerializedStore) QuarantineStats() QuarantineStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.QuarantineStats()
}

// Len returns the live entry count under the global mutex.
func (s *SerializedStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Len()
}

// Evictions returns capacity evictions under the global mutex.
func (s *SerializedStore) Evictions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Evictions()
}

// Expiries returns TTL expiries under the global mutex.
func (s *SerializedStore) Expiries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Expiries()
}

// Stats summarizes the store under the global mutex.
func (s *SerializedStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Stats()
}

// Snapshot copies all live entries under the global mutex.
func (s *SerializedStore) Snapshot() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Snapshot()
}

// Export writes a snapshot under the global mutex.
func (s *SerializedStore) Export(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Export(w)
}

// Import reads a snapshot under the global mutex.
func (s *SerializedStore) Import(r io.Reader) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Import(r)
}
