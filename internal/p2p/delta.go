package p2p

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"approxcache/internal/feature"
)

// Delta digests: instead of refetching a peer's full coverage digest on
// every refresh, a v2 requester sends the epoch it last applied and the
// service answers with only the centroids added and removed since. The
// service assigns each centroid value a stable ID, bumps its epoch
// whenever the centroid set changes, and keeps a short ring of past
// epochs' ID sets; a requester at any remembered epoch gets an exact
// delta, anyone else (first contact, evicted history, service restart)
// gets a full snapshot. Applying a delta therefore always reproduces
// exactly the set a full refetch would return.

// digestHistoryLen bounds remembered past epochs. A steady-state
// refresher is at most one epoch behind; the ring absorbs bursts.
const digestHistoryLen = 8

// digestGen distinguishes service incarnations: epochs are
// generation<<32 | counter, so a restarted service (fresh counter)
// can never echo an epoch number a client learned from its previous
// life and silently serve a wrong "unchanged" delta.
var digestGen atomic.Uint64

type digestHist struct {
	epoch uint64
	ids   map[uint64]struct{}
}

// digestEpochs is the service-side delta state.
type digestEpochs struct {
	mu      sync.Mutex
	epoch   uint64
	nextID  uint64
	current map[uint64]feature.Vector
	keys    map[string]uint64
	history []digestHist
}

func newDigestEpochs() *digestEpochs {
	return &digestEpochs{
		epoch:   digestGen.Add(1) << 32,
		current: make(map[uint64]feature.Vector),
		keys:    make(map[string]uint64),
	}
}

// vecKey is an exact-value identity for a centroid; a centroid keeps
// its ID exactly as long as its value survives rebuilds, and any value
// change is a remove+add pair.
func vecKey(v feature.Vector) string {
	b := make([]byte, 0, len(v)*8)
	for _, x := range v {
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(x))
	}
	return string(b)
}

// serve ingests the freshly built centroid set, advances the epoch if
// it changed, and answers the delta for a requester last synced at
// since.
func (d *digestEpochs) serve(centroids []feature.Vector, since uint64) DigestDeltaResp {
	d.mu.Lock()
	defer d.mu.Unlock()

	next := make(map[uint64]feature.Vector, len(centroids))
	nextKeys := make(map[string]uint64, len(centroids))
	for _, v := range centroids {
		k := vecKey(v)
		if _, dup := nextKeys[k]; dup {
			continue
		}
		id, ok := d.keys[k]
		if !ok {
			d.nextID++
			id = d.nextID
		}
		nextKeys[k] = id
		next[id] = v
	}
	if !sameIDSet(next, d.current) {
		ids := make(map[uint64]struct{}, len(d.current))
		for id := range d.current {
			ids[id] = struct{}{}
		}
		d.history = append(d.history, digestHist{epoch: d.epoch, ids: ids})
		if len(d.history) > digestHistoryLen {
			d.history = d.history[1:]
		}
		d.epoch++
	}
	d.current, d.keys = next, nextKeys

	if since == d.epoch {
		return DigestDeltaResp{Epoch: d.epoch}
	}
	for _, h := range d.history {
		if h.epoch != since {
			continue
		}
		resp := DigestDeltaResp{Epoch: d.epoch}
		for id := range h.ids {
			if _, ok := d.current[id]; !ok {
				resp.Removed = append(resp.Removed, id)
			}
		}
		for id, v := range d.current {
			if _, ok := h.ids[id]; !ok {
				resp.Added = append(resp.Added, DigestCentroid{ID: id, Vec: v})
			}
		}
		sortDelta(&resp)
		return resp
	}
	resp := DigestDeltaResp{Epoch: d.epoch, Full: true}
	for id, v := range d.current {
		resp.Added = append(resp.Added, DigestCentroid{ID: id, Vec: v})
	}
	sortDelta(&resp)
	return resp
}

func sameIDSet(a, b map[uint64]feature.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if _, ok := b[id]; !ok {
			return false
		}
	}
	return true
}

// sortDelta orders delta lists by ID so responses are deterministic.
func sortDelta(r *DigestDeltaResp) {
	sort.Slice(r.Removed, func(i, j int) bool { return r.Removed[i] < r.Removed[j] })
	sort.Slice(r.Added, func(i, j int) bool { return r.Added[i].ID < r.Added[j].ID })
}

// peerDigestState is the client-side mirror of one peer's digest.
type peerDigestState struct {
	epoch     uint64
	centroids map[uint64]feature.Vector
}

// apply folds a delta (or full snapshot) into the mirror and returns
// the flattened digest, with centroids ordered by ID for determinism.
func (st *peerDigestState) apply(resp DigestDeltaResp) (Digest, error) {
	if resp.Full || st.centroids == nil {
		if !resp.Full && (len(resp.Added) > 0 || len(resp.Removed) > 0) {
			return Digest{}, fmt.Errorf("p2p: delta response without prior digest state")
		}
		st.centroids = make(map[uint64]feature.Vector, len(resp.Added))
		for _, c := range resp.Added {
			st.centroids[c.ID] = c.Vec
		}
	} else {
		for _, id := range resp.Removed {
			delete(st.centroids, id)
		}
		for _, c := range resp.Added {
			st.centroids[c.ID] = c.Vec
		}
	}
	st.epoch = resp.Epoch
	ids := make([]uint64, 0, len(st.centroids))
	for id := range st.centroids {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	d := Digest{Centroids: make([]feature.Vector, 0, len(ids))}
	for _, id := range ids {
		d.Centroids = append(d.Centroids, st.centroids[id])
	}
	return d, nil
}
