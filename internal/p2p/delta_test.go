package p2p

import (
	"math/rand"
	"reflect"
	"testing"

	"approxcache/internal/feature"
)

func TestDigestEpochsFirstContactIsFull(t *testing.T) {
	d := newDigestEpochs()
	resp := d.serve([]feature.Vector{{1, 0}, {0, 1}}, 0)
	if !resp.Full || len(resp.Added) != 2 || len(resp.Removed) != 0 {
		t.Fatalf("first contact: %+v", resp)
	}
	// Unchanged set, synced epoch: empty delta.
	resp2 := d.serve([]feature.Vector{{1, 0}, {0, 1}}, resp.Epoch)
	if resp2.Full || len(resp2.Added) != 0 || len(resp2.Removed) != 0 {
		t.Fatalf("unchanged: %+v", resp2)
	}
	if resp2.Epoch != resp.Epoch {
		t.Fatalf("epoch moved without change: %d -> %d", resp.Epoch, resp2.Epoch)
	}
}

func TestDigestEpochsDelta(t *testing.T) {
	d := newDigestEpochs()
	first := d.serve([]feature.Vector{{1, 0}, {0, 1}}, 0)
	// {0,1} leaves, {1,1} arrives.
	second := d.serve([]feature.Vector{{1, 0}, {1, 1}}, first.Epoch)
	if second.Full {
		t.Fatalf("known epoch answered with full snapshot: %+v", second)
	}
	if len(second.Removed) != 1 || len(second.Added) != 1 {
		t.Fatalf("delta: %+v", second)
	}
	if second.Epoch == first.Epoch {
		t.Fatal("epoch did not advance on change")
	}
	if got := second.Added[0].Vec; got[0] != 1 || got[1] != 1 {
		t.Fatalf("added %v", got)
	}
}

func TestDigestEpochsUnknownEpochGetsFull(t *testing.T) {
	d := newDigestEpochs()
	d.serve([]feature.Vector{{1, 0}}, 0)
	resp := d.serve([]feature.Vector{{1, 0}}, 999)
	if !resp.Full || len(resp.Added) != 1 {
		t.Fatalf("unknown epoch: %+v", resp)
	}
}

func TestDigestEpochsRestartCannotEchoOldEpoch(t *testing.T) {
	old := newDigestEpochs()
	oldResp := old.serve([]feature.Vector{{1, 0}}, 0)
	// A "restarted" service is a fresh digestEpochs; the client still
	// remembers the old incarnation's epoch. It must get a full
	// snapshot, never an empty "unchanged" answer.
	fresh := newDigestEpochs()
	resp := fresh.serve([]feature.Vector{{2, 0}}, oldResp.Epoch)
	if !resp.Full {
		t.Fatalf("restarted service answered a stale epoch with a delta: %+v", resp)
	}
}

func TestPeerDigestStateApplyErrorsWithoutState(t *testing.T) {
	var st peerDigestState
	_, err := st.apply(DigestDeltaResp{Epoch: 5, Removed: []uint64{1}})
	if err == nil {
		t.Fatal("delta without prior state accepted")
	}
}

// TestDeltaEquivalentToFullRefetch churns a service-side centroid set
// through many rounds; a client applying only deltas must always hold
// exactly the set a from-scratch full refetch would produce.
func TestDeltaEquivalentToFullRefetch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := newDigestEpochs()
	var st peerDigestState
	var since uint64
	pool := make([]feature.Vector, 12)
	for i := range pool {
		pool[i] = feature.Vector{float64(i), rng.Float64()}
	}
	for round := 0; round < 50; round++ {
		// Random subset, sometimes far from the previous one (beyond
		// the history ring when the requester lags).
		var set []feature.Vector
		for _, v := range pool {
			if rng.Float64() < 0.5 {
				set = append(set, v)
			}
		}
		resp := d.serve(set, since)
		got, err := st.apply(resp)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		since = resp.Epoch

		// Reference: a brand-new client doing a full refetch.
		var ref peerDigestState
		full := d.serve(set, 0)
		want, err := ref.apply(full)
		if err != nil {
			t.Fatalf("round %d ref: %v", round, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: delta state %v != full refetch %v", round, got.Centroids, want.Centroids)
		}
	}
}
