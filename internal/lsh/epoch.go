package lsh

import (
	"math"
	"runtime"
	"sync/atomic"
)

// This file implements the read-side synchronization the lock-free
// lookup path is built on: epoch-published snapshots with a
// grace-period reclaimer, in the left-right shape (Correia &
// Ramalhete). The index keeps TWO instances of its mutable bucket
// state. Readers never lock: they stamp a striped read indicator,
// load the currently published snapshot through an atomic pointer,
// and run the whole signature → probe → prefilter → score pipeline
// against that frozen view. A writer applies its mutation to the
// inactive instance, publishes it (one atomic pointer store, which
// also advances the global epoch), waits for every reader that could
// still be inside the previous snapshot to depart — the grace
// period — and only then applies the same mutation to the retired
// instance and recycles any arena slots the mutation freed.
//
// The invariants that make this safe, in the order the race detector
// sees them:
//
//  1. A reader's indicator arrival is sequenced before its snapshot
//     load. So any reader that loaded the OLD snapshot arrived before
//     the writer's publish, and its arrival is visible to the
//     writer's grace scan; conversely, any arrival the scan misses
//     necessarily loads the NEW snapshot and can never touch retired
//     state.
//  2. The writer waits on BOTH indicators after publishing (draining
//     the stale one before flipping the arrival index, then the
//     other), so every pre-publish reader has departed before the
//     retired instance is touched.
//  3. A freed arena slot is pushed to the free list only after that
//     double wait, so by the time a later insert overwrites the
//     slot's vector/sketch/code memory, every reader that could have
//     held a bucket referencing it has departed — the departure
//     (atomic add) → grace scan (atomic load) → overwrite chain is a
//     happens-before edge the race detector verifies.
//
// Readers are wait-free (two atomic adds and two atomic loads per
// lookup, on stripes chosen per pooled scratch so concurrent readers
// do not bounce one cache line); writers pay the double application
// plus a grace wait bounded by the longest in-flight lookup
// (microseconds).

// readStripes is the number of indicator stripes. Pooled query
// scratches are assigned stripes round-robin, and sync.Pool is
// per-P, so concurrent readers land on distinct stripes with high
// probability; collisions only share a counter, they never block.
const readStripes = 32

// readStripe is one stripe of arrival/departure counters, padded to
// a cache line so neighboring stripes never false-share.
type readStripe struct {
	ingress atomic.Uint64
	egress  atomic.Uint64
	_       [6]uint64
}

// readIndicator counts in-flight readers across stripes. Two exist
// per index; readers arrive at the one selected by the current
// arrival index, so each can be drained while the other absorbs new
// arrivals.
type readIndicator struct {
	stripes [readStripes]readStripe
}

func (ri *readIndicator) arrive(stripe uint32) {
	ri.stripes[stripe%readStripes].ingress.Add(1)
}

func (ri *readIndicator) depart(stripe uint32) {
	ri.stripes[stripe%readStripes].egress.Add(1)
}

// empty reports whether every observed arrival has departed. Egress
// is summed FIRST: a departure counted there implies its arrival
// already happened, so the later ingress sum includes it, ingress >=
// egress always holds, and equality means no observed reader is
// still inside.
func (ri *readIndicator) empty() bool {
	var out uint64
	for i := range ri.stripes {
		out += ri.stripes[i].egress.Load()
	}
	var in uint64
	for i := range ri.stripes {
		in += ri.stripes[i].ingress.Load()
	}
	return in == out
}

// wait spins until the indicator drains. Readers never block inside
// a pinned section, so this terminates in at most one lookup's
// duration; Gosched keeps single-P schedules live.
func (ri *readIndicator) wait() {
	for !ri.empty() {
		runtime.Gosched()
	}
}

// poisonRetired, when enabled, overwrites a retired slot's arena
// vector with NaN (and scrambles its sketch and codes) the moment
// the grace period ends. Production leaves it off; the reclamation
// property tests turn it on so a reader that ever observed a retired
// slot would surface as a NaN distance or an impossible popcount
// instead of a silently stale answer.
var poisonRetired atomic.Bool

// SetRetirePoisoning toggles retired-slot poisoning. Test
// instrumentation only: it makes use-after-retire bugs loud. Safe to
// flip at any time; applies to slots retired after the call.
func SetRetirePoisoning(on bool) { poisonRetired.Store(on) }

// poisonSlot scribbles over every per-slot buffer of a retired slot.
// Called only after the grace period, so no reader can legally see
// the poison; any NaN that escapes into a result is a reclamation
// bug.
func (x *HyperplaneIndex) poisonSlot(slot int32) {
	vec := x.arena[int(slot)*x.dim : (int(slot)+1)*x.dim]
	for i := range vec {
		vec[i] = math.NaN()
	}
	if x.sketchWords > 0 {
		sk := x.sketch[int(slot)*x.sketchWords : (int(slot)+1)*x.sketchWords]
		for i := range sk {
			sk[i] = ^sk[i]
		}
	}
	if x.tun.Quantize {
		codes := x.codes[int(slot)*x.dim : (int(slot)+1)*x.dim]
		for i := range codes {
			codes[i] = -128
		}
	}
}
