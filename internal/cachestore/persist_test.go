package cachestore

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestExportImportRoundTrip(t *testing.T) {
	src, _ := newTestStore(t, Config{Capacity: 8})
	if _, err := src.Insert(vec(1, 0), "cat", 0.9, "dnn", 120*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Insert(vec(0, 1), "dog", 0.8, "peer", 80*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}

	dst, _ := newTestStore(t, Config{Capacity: 8})
	n, err := dst.Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || dst.Len() != 2 {
		t.Fatalf("imported %d, len %d", n, dst.Len())
	}
	ns, err := dst.Nearest(vec(1, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := dst.Get(ns[0].ID)
	if !ok || e.Label != "cat" || e.Confidence != 0.9 || e.SavedCost != 120*time.Millisecond {
		t.Fatalf("entry = %+v", e)
	}
}

func TestExportEmptyStore(t *testing.T) {
	src, _ := newTestStore(t, Config{Capacity: 4})
	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}
	dst, _ := newTestStore(t, Config{Capacity: 4})
	n, err := dst.Import(&buf)
	if err != nil || n != 0 {
		t.Fatalf("empty import = %d, %v", n, err)
	}
}

func TestImportRespectsCapacity(t *testing.T) {
	src, _ := newTestStore(t, Config{Capacity: 16})
	for i := 0; i < 10; i++ {
		if _, err := src.Insert(vec(float64(i), 1), "x", 0.9, "dnn", time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}
	dst, _ := newTestStore(t, Config{Capacity: 3})
	n, err := dst.Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("imported %d", n)
	}
	if dst.Len() > 3 {
		t.Fatalf("capacity violated: %d", dst.Len())
	}
	if dst.Evictions() == 0 {
		t.Fatal("over-capacity import did not evict")
	}
}

func TestImportErrors(t *testing.T) {
	dst, _ := newTestStore(t, Config{Capacity: 4})
	if _, err := dst.Import(strings.NewReader("{")); err == nil {
		t.Fatal("bad json accepted")
	}
	if _, err := dst.Import(strings.NewReader(`{"version":99,"entries":[]}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
	bad := `{"version":1,"entries":[{"vec":[],"label":"x"}]}`
	if _, err := dst.Import(strings.NewReader(bad)); err == nil {
		t.Fatal("empty vector entry accepted")
	}
	bad = `{"version":1,"entries":[{"vec":[1,2],"label":""}]}`
	if _, err := dst.Import(strings.NewReader(bad)); err == nil {
		t.Fatal("empty label entry accepted")
	}
}

func TestImportCorruptSnapshotLeavesStoreEmpty(t *testing.T) {
	// One good entry followed by one bad: all-or-nothing validation
	// must reject the whole file and insert nothing.
	dst, _ := newTestStore(t, Config{Capacity: 8})
	payload := `{"version":1,"entries":[
		{"vec":[1,0],"label":"ok","confidence":1,"source":"dnn","savedCostMicros":1000},
		{"vec":[],"label":"bad"}
	]}`
	n, err := dst.Import(strings.NewReader(payload))
	if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("err = %v, want ErrCorruptSnapshot", err)
	}
	if n != 0 || dst.Len() != 0 {
		t.Fatalf("corrupt snapshot inserted %d entries (store len %d), want 0", n, dst.Len())
	}
}

func TestImportTruncatedSnapshot(t *testing.T) {
	// A snapshot cut off mid-write (crash, full disk, partial
	// download) must leave the store empty and identify itself as
	// corrupt, whatever prefix length survived.
	src, _ := newTestStore(t, Config{Capacity: 8})
	if _, err := src.Insert(vec(1, 0), "door", 0.9, "dnn", 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Insert(vec(0, 1), "sign", 0.8, "dnn", 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	for _, cut := range []int{1, len(full) / 4, len(full) / 2, len(full) - 2} {
		dst, _ := newTestStore(t, Config{Capacity: 8})
		n, err := dst.Import(strings.NewReader(full[:cut]))
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("cut at %d: err = %v, want ErrCorruptSnapshot", cut, err)
		}
		if n != 0 || dst.Len() != 0 {
			t.Fatalf("cut at %d: inserted %d entries (store len %d), want 0", cut, n, dst.Len())
		}
	}
	// Sanity: the untruncated snapshot still loads.
	dst, _ := newTestStore(t, Config{Capacity: 8})
	if n, err := dst.Import(strings.NewReader(full)); err != nil || n != 2 {
		t.Fatalf("full snapshot: n=%d err=%v, want 2, nil", n, err)
	}
}
