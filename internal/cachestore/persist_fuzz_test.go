package cachestore

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"approxcache/internal/lsh"
	"approxcache/internal/simclock"
)

// FuzzImport throws arbitrary bytes — seeded with real snapshots,
// truncations, and bit flips — at the snapshot decoder. Whatever the
// input, Import must never panic, and a failed import must leave the
// store empty (all-or-nothing). The seed corpus runs under plain
// `go test`, so CI exercises the interesting shapes without -fuzz.
func FuzzImport(f *testing.F) {
	// A genuine v2 snapshot as the prime seed.
	mkStore := func() *Store {
		idx, err := lsh.NewHyperplane(2, 4, 2, 1)
		if err != nil {
			f.Fatal(err)
		}
		s, err := New(Config{Capacity: 16}, idx, simclock.NewVirtual(time.Unix(0, 0)))
		if err != nil {
			f.Fatal(err)
		}
		return s
	}
	src := mkStore()
	if _, err := src.Insert([]float64{1, 0}, "door", 0.9, "dnn", 100*time.Millisecond); err != nil {
		f.Fatal(err)
	}
	if _, err := src.Insert([]float64{0, 1}, "sign", 0.8, "peer", 80*time.Millisecond); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()

	f.Add(good)
	f.Add(good[:len(good)/2]) // truncated payload
	f.Add(good[:10])          // truncated header
	flip := append([]byte(nil), good...)
	flip[len(flip)/2] ^= 0x01
	f.Add(flip)                                   // bit rot
	f.Add([]byte(`{"version":1,"entries":[]}`))   // legacy v1
	f.Add([]byte(`{"version":99,"entries":[]}`))  // future version
	f.Add([]byte(snapshotMagic + " v2 crc32=zz")) // mangled header
	f.Add([]byte(snapshotMagic + " v2 crc32=00000000\n{}"))
	f.Add([]byte(strings.Repeat("A", 300))) // oversize junk header
	f.Add([]byte{})
	f.Add([]byte(`{"version":1,"entries":[{"vec":[1e999],"label":"x"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		dst := mkStore()
		n, err := dst.Import(bytes.NewReader(data))
		if err != nil {
			if n != 0 || dst.Len() != 0 {
				t.Fatalf("failed import inserted %d entries (len %d)", n, dst.Len())
			}
			return
		}
		if n != dst.Len() {
			t.Fatalf("reported %d inserts, store has %d", n, dst.Len())
		}
		// Whatever survived decoding must re-export cleanly.
		var out bytes.Buffer
		if err := dst.Export(&out); err != nil {
			t.Fatalf("re-export after import: %v", err)
		}
	})
}
