package p2p

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"

	"approxcache/internal/feature"
)

// quantTol is the worst-case per-element reconstruction error for a
// vector spanning [lo, hi]: half a quantization step plus float32
// header rounding slack.
func quantTol(lo, hi float64) float64 {
	return (hi-lo)/(2*feature.QuantRange)/2 + 1e-4
}

func vecsClose(t *testing.T, got, want feature.Vector, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("dim %d != %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("elem %d: got %v want %v (tol %v)", i, got[i], want[i], tol)
		}
	}
}

// allKindsV2 is one specimen of every message kind, v2-only kinds
// included.
func allKindsV2() []Message {
	return []Message{
		Query{Vec: feature.Vector{0.1, -0.4, 2.5}, K: 4},
		QueryResp{Found: true, Label: "class-1", Confidence: 0.875, Distance: 0.125},
		QueryResp{},
		Gossip{Vec: feature.Vector{-1, 1}, Label: "g", Confidence: 1, SavedCost: 33 * time.Millisecond},
		Ack{},
		Ping{From: "node-a"},
		Pong{From: "node-b", Entries: 12345},
		DigestReq{},
		DigestResp{Digest: Digest{Centroids: []feature.Vector{{1, 0}, {0, 1}}}},
		DigestDeltaReq{Since: 1<<40 | 7},
		DigestDeltaResp{
			Epoch:   1<<40 | 9,
			Removed: []uint64{3, 17},
			Added:   []DigestCentroid{{ID: 21, Vec: feature.Vector{0.5, -0.5}}},
		},
		DigestDeltaResp{Epoch: 2 << 32, Full: true,
			Added: []DigestCentroid{{ID: 1, Vec: feature.Vector{2, 2}}}},
		GossipBatch{Items: []Gossip{
			{Vec: feature.Vector{1, 2}, Label: "a", Confidence: 0.5, SavedCost: time.Second},
			{Vec: feature.Vector{3, 4}, Label: "b", Confidence: 0.75},
		}},
	}
}

func TestV2RoundTripAllKinds(t *testing.T) {
	for _, m := range allKindsV2() {
		b, err := AppendEncodeV2(nil, m)
		if err != nil {
			t.Fatalf("%v: %v", m.MsgKind(), err)
		}
		got, ver, err := DecodeWire(b)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.MsgKind(), err)
		}
		if ver != WireV2 {
			t.Fatalf("%v: version %d", m.MsgKind(), ver)
		}
		if got.MsgKind() != m.MsgKind() {
			t.Fatalf("kind %v became %v", m.MsgKind(), got.MsgKind())
		}
		switch want := m.(type) {
		case Query:
			g := got.(Query)
			if g.K != want.K {
				t.Fatalf("K %d != %d", g.K, want.K)
			}
			vecsClose(t, g.Vec, want.Vec, quantTol(-0.4, 2.5))
		case QueryResp:
			// Non-vector fields must round-trip exactly.
			if got.(QueryResp) != want {
				t.Fatalf("QueryResp %+v != %+v", got, want)
			}
		case Gossip:
			g := got.(Gossip)
			if g.Label != want.Label || g.Confidence != want.Confidence || g.SavedCost != want.SavedCost {
				t.Fatalf("Gossip %+v != %+v", g, want)
			}
			vecsClose(t, g.Vec, want.Vec, quantTol(-1, 1))
		case Ping:
			if got.(Ping) != want {
				t.Fatalf("Ping %+v != %+v", got, want)
			}
		case Pong:
			if got.(Pong) != want {
				t.Fatalf("Pong %+v != %+v", got, want)
			}
		case DigestDeltaReq:
			if got.(DigestDeltaReq) != want {
				t.Fatalf("DigestDeltaReq %+v != %+v", got, want)
			}
		case DigestDeltaResp:
			g := got.(DigestDeltaResp)
			if g.Epoch != want.Epoch || g.Full != want.Full ||
				len(g.Removed) != len(want.Removed) || len(g.Added) != len(want.Added) {
				t.Fatalf("DigestDeltaResp %+v != %+v", g, want)
			}
			for i := range want.Removed {
				if g.Removed[i] != want.Removed[i] {
					t.Fatalf("Removed[%d] = %d", i, g.Removed[i])
				}
			}
			for i := range want.Added {
				if g.Added[i].ID != want.Added[i].ID {
					t.Fatalf("Added[%d].ID = %d", i, g.Added[i].ID)
				}
				vecsClose(t, g.Added[i].Vec, want.Added[i].Vec, quantTol(-2, 2))
			}
		case GossipBatch:
			g := got.(GossipBatch)
			if len(g.Items) != len(want.Items) {
				t.Fatalf("batch %d items", len(g.Items))
			}
			for i := range want.Items {
				if g.Items[i].Label != want.Items[i].Label {
					t.Fatalf("item %d label %q", i, g.Items[i].Label)
				}
			}
		}
	}
}

func TestV2NegativeSavedCostRoundTrips(t *testing.T) {
	m := Gossip{Vec: feature.Vector{1}, Label: "x", Confidence: 1, SavedCost: -5 * time.Millisecond}
	b, err := AppendEncodeV2(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeWire(b)
	if err != nil {
		t.Fatal(err)
	}
	if sc := got.(Gossip).SavedCost; sc != m.SavedCost {
		t.Fatalf("SavedCost %v != %v", sc, m.SavedCost)
	}
}

func TestV2TruncatedFrames(t *testing.T) {
	for _, m := range allKindsV2() {
		full, err := AppendEncodeV2(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(full); cut++ {
			if _, _, err := DecodeWire(full[:cut]); err == nil {
				// A strict prefix must never decode cleanly... except a
				// zero-length cut of nothing, which still errors.
				t.Fatalf("%v truncated to %d/%d bytes decoded", m.MsgKind(), cut, len(full))
			}
		}
	}
}

func TestV2CorruptFrames(t *testing.T) {
	if _, _, err := DecodeWire([]byte{wireV2Marker}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("bare marker: %v", err)
	}
	if _, _, err := DecodeWire([]byte{wireV2Marker, 0xEE, 0x01}); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("unknown v2 kind: %v", err)
	}
	// Oversized vector dim must be rejected, not allocated.
	b := []byte{wireV2Marker, byte(KindQuery), 4, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, _, err := DecodeWire(b); err == nil {
		t.Fatal("oversized dim accepted")
	}
	// Trailing garbage after a valid body must be rejected.
	full, err := AppendEncodeV2(nil, Ack{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeWire(append(full, 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestV2DeltaEntriesBounded(t *testing.T) {
	// A delta response claiming an absurd entry count must fail fast.
	b := []byte{wireV2Marker, byte(KindDigestDeltaResp)}
	b = append(b, 1)                                  // epoch
	b = append(b, 0)                                  // full=false
	b = append(b, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F) // removed count
	if _, _, err := DecodeWire(b); err == nil {
		t.Fatal("unbounded delta accepted")
	}
}

func TestAppendEncodeMatchesEncode(t *testing.T) {
	prefix := []byte("prefix")
	for _, m := range allKindsV2() {
		enc, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		app, err := AppendEncode(append([]byte(nil), prefix...), m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(app, prefix) {
			t.Fatalf("%v: prefix clobbered", m.MsgKind())
		}
		if !bytes.Equal(app[len(prefix):], enc) {
			t.Fatalf("%v: AppendEncode differs from Encode", m.MsgKind())
		}
	}
}

func TestV2WireSizeEstimators(t *testing.T) {
	for _, dim := range []int{0, 1, 16, 80, 300} {
		vec := make(feature.Vector, dim)
		for i := range vec {
			vec[i] = float64(i) * 0.01
		}
		q, err := AppendEncodeV2(nil, Query{Vec: vec, K: 4})
		if err != nil {
			t.Fatal(err)
		}
		if got := QueryWireSizeV2(dim); got != len(q) {
			t.Fatalf("QueryWireSizeV2(%d) = %d, actual %d", dim, got, len(q))
		}
		label := "some-label"
		g, err := AppendEncodeV2(nil, Gossip{Vec: vec, Label: label, Confidence: 0.5, SavedCost: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if got := GossipWireSizeV2(dim, len(label)); got < len(g) {
			t.Fatalf("GossipWireSizeV2(%d) = %d underestimates actual %d", dim, got, len(g))
		}
	}
}

func TestV2QuerySmallerThanV1(t *testing.T) {
	vec := make(feature.Vector, 80)
	for i := range vec {
		vec[i] = float64(i)
	}
	v1, err := Encode(Query{Vec: vec, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := AppendEncodeV2(nil, Query{Vec: vec, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(v2)*4 > len(v1) {
		t.Fatalf("v2 %dB not >= 4x smaller than v1 %dB", len(v2), len(v1))
	}
}
