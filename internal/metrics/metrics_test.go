package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSourcesOrder(t *testing.T) {
	ss := Sources()
	if len(ss) != 7 || ss[0] != SourceIMU || ss[4] != SourceDNN || ss[5] != SourceFallback || ss[6] != SourceShed {
		t.Fatalf("Sources = %v", ss)
	}
	rs := ReuseSources()
	if len(rs) != 4 {
		t.Fatalf("ReuseSources = %v", rs)
	}
	for _, r := range rs {
		if r == SourceDNN {
			t.Fatal("DNN is not a reuse source")
		}
	}
}

func TestLatencyRecorderEmpty(t *testing.T) {
	r := NewLatencyRecorder()
	if r.Count() != 0 || r.Mean() != 0 || r.Percentile(50) != 0 {
		t.Fatal("empty recorder not zeroed")
	}
	s := r.Summary()
	if s.Count != 0 || s.Mean != 0 || s.Max != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestLatencyRecorderNegativeClamped(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(-time.Second)
	if r.Mean() != 0 {
		t.Fatalf("negative sample not clamped: %v", r.Mean())
	}
}

func TestLatencyRecorderStats(t *testing.T) {
	r := NewLatencyRecorder()
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	if r.Count() != 100 {
		t.Fatalf("Count = %d", r.Count())
	}
	if m := r.Mean(); m != 50500*time.Microsecond {
		t.Fatalf("Mean = %v", m)
	}
	if p := r.Percentile(50); p != 50*time.Millisecond {
		t.Fatalf("P50 = %v", p)
	}
	if p := r.Percentile(90); p != 90*time.Millisecond {
		t.Fatalf("P90 = %v", p)
	}
	if p := r.Percentile(0); p != time.Millisecond {
		t.Fatalf("P0 = %v", p)
	}
	if p := r.Percentile(100); p != 100*time.Millisecond {
		t.Fatalf("P100 = %v", p)
	}
	s := r.Summary()
	if s.Max != 100*time.Millisecond || s.P99 != 99*time.Millisecond {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestLatencyRecorderInterleavedRecordAndQuery(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(3 * time.Millisecond)
	_ = r.Percentile(50) // forces sort
	r.Record(1 * time.Millisecond)
	if p := r.Percentile(0); p != time.Millisecond {
		t.Fatalf("min after re-record = %v", p)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewLatencyRecorder()
		var min, max time.Duration = 1 << 62, 0
		for _, v := range raw {
			d := time.Duration(v) * time.Microsecond
			r.Record(d)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		prev := time.Duration(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := r.Percentile(p)
			if v < prev || v < min || v > max {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Percentile matches a straightforward nearest-rank reference.
func TestPercentileAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := NewLatencyRecorder()
	var ref []time.Duration
	for i := 0; i < 137; i++ {
		d := time.Duration(rng.Intn(1000)) * time.Millisecond
		r.Record(d)
		ref = append(ref, d)
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	for _, p := range []float64{10, 25, 50, 75, 95} {
		rank := int(p/100*float64(len(ref))+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		if got := r.Percentile(p); got != ref[rank] {
			t.Fatalf("P%v = %v, ref %v", p, got, ref[rank])
		}
	}
}

func TestSessionStats(t *testing.T) {
	s := NewSessionStats()
	if s.HitRate() != 0 || s.Accuracy() != 0 {
		t.Fatal("empty stats not zeroed")
	}
	s.ObserveFrame(SourceIMU, time.Millisecond, 0, true)
	s.ObserveFrame(SourceDNN, 120*time.Millisecond, 350, true)
	s.ObserveFrame(SourceLocal, 5*time.Millisecond, 1, false)
	s.ObserveFrame(SourcePeer, 15*time.Millisecond, 10, true)

	if s.Frames() != 4 {
		t.Fatalf("Frames = %d", s.Frames())
	}
	if hr := s.HitRate(); hr != 0.75 {
		t.Fatalf("HitRate = %v", hr)
	}
	if acc := s.Accuracy(); acc != 0.75 {
		t.Fatalf("Accuracy = %v", acc)
	}
	if e := s.EnergyMJ(); e != 361 {
		t.Fatalf("Energy = %v", e)
	}
	counts := s.CountBySource()
	if counts[SourceIMU] != 1 || counts[SourceDNN] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	counts[SourceIMU] = 99
	if s.CountBySource()[SourceIMU] != 1 {
		t.Fatal("CountBySource exposes internal map")
	}
	if s.Latency().Count() != 4 {
		t.Fatalf("latency samples = %d", s.Latency().Count())
	}
}

func TestPeerQueryAccounting(t *testing.T) {
	s := NewSessionStats()
	s.ObservePeerQuery(true)
	s.ObservePeerQuery(false)
	s.ObservePeerQuery(true)
	q, h := s.PeerQueries()
	if q != 3 || h != 2 {
		t.Fatalf("peer queries = %d/%d", h, q)
	}
}

func TestSessionStatsConcurrent(t *testing.T) {
	s := NewSessionStats()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				s.ObserveFrame(SourceLocal, time.Millisecond, 1, i%2 == 0)
				s.ObservePeerQuery(i%3 == 0)
			}
		}()
	}
	wg.Wait()
	if s.Frames() != 1000 {
		t.Fatalf("Frames = %d", s.Frames())
	}
	if s.Latency().Count() != 1000 {
		t.Fatalf("latency count = %d", s.Latency().Count())
	}
}

func TestSensorFaultCounters(t *testing.T) {
	s := NewSessionStats()
	if s.SensorFaultTotal() != 0 || len(s.SensorFaults()) != 0 {
		t.Fatal("fresh stats not zeroed")
	}
	s.ObserveSensorFault("imu-stuck")
	s.ObserveSensorFault("imu-stuck")
	s.ObserveSensorFault("frame-low-entropy")
	faults := s.SensorFaults()
	if faults["imu-stuck"] != 2 || faults["frame-low-entropy"] != 1 {
		t.Fatalf("faults = %v", faults)
	}
	if s.SensorFaultTotal() != 3 {
		t.Fatalf("total = %d", s.SensorFaultTotal())
	}
	faults["imu-stuck"] = 99 // returned map must be a copy
	if s.SensorFaults()["imu-stuck"] != 2 {
		t.Fatal("SensorFaults returned internal map")
	}
}

func TestDegradedServeCounters(t *testing.T) {
	s := NewSessionStats()
	s.ObserveDegradedServe("cache-only")
	s.ObserveDegradedServe("cache-only")
	s.ObserveDegradedServe("last-result")
	if got := s.DegradedServes(); got["cache-only"] != 2 || got["last-result"] != 1 {
		t.Fatalf("serves = %v", got)
	}
	if s.DegradedServeTotal() != 3 {
		t.Fatalf("total = %d", s.DegradedServeTotal())
	}
}

func TestWatchdogCounters(t *testing.T) {
	s := NewSessionStats()
	s.ObserveWatchdogTimeout()
	s.ObserveWatchdogRetry()
	s.ObserveWatchdogRetry()
	s.ObserveWatchdogTrip()
	s.ObserveWatchdogRecovery()
	for i := 0; i < 4; i++ {
		s.ObserveWatchdogFastFail()
	}
	timeouts, retries, trips, recoveries, fastFails := s.WatchdogEvents()
	if timeouts != 1 || retries != 2 || trips != 1 || recoveries != 1 || fastFails != 4 {
		t.Fatalf("events = %d %d %d %d %d", timeouts, retries, trips, recoveries, fastFails)
	}
}
