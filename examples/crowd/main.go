// Crowd: a museum-tour scenario — five visitors walk the same galleries
// with their phones, sharing recognition results over an
// infrastructure-less peer-to-peer mesh (simulated short-range radio).
// Later visitors reuse the work of earlier ones and run their DNNs far
// less.
//
// Run with: go run ./examples/crowd
package main

import (
	"fmt"
	"log"
	"time"

	"approxcache"
)

const (
	visitors   = 5
	frames     = 400
	sharedSeed = 4242 // all visitors see the same exhibits
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type visitor struct {
	name     string
	cache    *approxcache.Cache
	workload *approxcache.Workload
	client   *approxcache.PeerClient
	prev     time.Duration
	next     int
}

func run() error {
	net, err := approxcache.NewSimNetwork(9)
	if err != nil {
		return err
	}
	clock := approxcache.NewVirtualClock()

	// Build the visitors. Each walks their own route (own Seed) past
	// the same exhibits (shared ClassSeed).
	vs := make([]*visitor, 0, visitors)
	clients := make(map[string]*approxcache.PeerClient, visitors)
	for i := 0; i < visitors; i++ {
		spec := approxcache.WorkloadSpec{
			Name:       fmt.Sprintf("visitor-%d", i),
			FPS:        15,
			IMURateHz:  100,
			NumClasses: 12,
			ImageW:     48,
			ImageH:     48,
			Segments: []approxcache.SegmentSpec{
				{Regime: "walking", Frames: frames * 35 / 100},
				{Regime: "stationary", Frames: frames * 30 / 100},
				{Regime: "walking", Frames: frames * 20 / 100},
				{Regime: "handheld", Frames: frames * 15 / 100},
			},
			Seed:      int64(100 + i*37),
			ClassSeed: sharedSeed,
		}
		w, err := approxcache.GenerateWorkload(spec)
		if err != nil {
			return err
		}
		clf, err := approxcache.NewSimulatedClassifier(approxcache.MobileNetV2, w, int64(i+1))
		if err != nil {
			return err
		}
		cache, err := approxcache.New(clf, approxcache.Options{Clock: clock})
		if err != nil {
			return err
		}
		name := fmt.Sprintf("visitor-%d", i)
		client, err := cache.JoinSimNetwork(net, name)
		if err != nil {
			return err
		}
		clients[name] = client
		vs = append(vs, &visitor{name: name, cache: cache, workload: w, client: client})
	}
	if err := approxcache.ConnectAll(clients); err != nil {
		return err
	}

	// Interleave the visitors' frames in timestamp order so sharing
	// happens causally: whoever sees an exhibit first recognizes it
	// for everyone.
	for {
		var pick *visitor
		for _, v := range vs {
			if v.next >= len(v.workload.Frames) {
				continue
			}
			if pick == nil ||
				v.workload.Frames[v.next].Offset < pick.workload.Frames[pick.next].Offset {
				pick = v
			}
		}
		if pick == nil {
			break
		}
		fr := pick.workload.Frames[pick.next]
		win := pick.workload.IMUWindow(pick.prev, fr.Offset)
		pick.prev = fr.Offset
		pick.next++
		if _, err := pick.cache.ProcessWithTruth(fr.Image, win, approxcache.LabelOf(fr.Class)); err != nil {
			return fmt.Errorf("%s: %w", pick.name, err)
		}
	}

	fmt.Printf("%-10s %9s %9s %9s %10s %13s %9s\n",
		"visitor", "hit-rate", "peer-hit", "dnn-runs", "accuracy", "mean-latency", "energy")
	var totalDNN int
	for _, v := range vs {
		stats := v.cache.Stats()
		counts := stats.CountBySource()
		totalDNN += counts[approxcache.SourceDNN]
		fmt.Printf("%-10s %8.1f%% %9d %9d %9.1f%% %13v %8.0fJ\n",
			v.name,
			stats.HitRate()*100,
			counts[approxcache.SourcePeer],
			counts[approxcache.SourceDNN],
			stats.Accuracy()*100,
			stats.Latency().Mean().Round(10*time.Microsecond),
			stats.EnergyMJ()/1000)
	}
	fmt.Printf("\nthe crowd ran the DNN %d times for %d frames (%.1f%% of a cache-less crowd)\n",
		totalDNN, visitors*frames, float64(totalDNN)/float64(visitors*frames)*100)
	return nil
}
