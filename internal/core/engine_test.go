package core

import (
	"testing"
	"time"

	"approxcache/internal/cachestore"
	"approxcache/internal/dnn"
	"approxcache/internal/imu"
	"approxcache/internal/lsh"
	"approxcache/internal/metrics"
	"approxcache/internal/p2p"
	"approxcache/internal/simclock"
	"approxcache/internal/simnet"
	"approxcache/internal/trace"
	"approxcache/internal/vision"
)

// fixture bundles one device's engine with its substrates.
type fixture struct {
	engine  *Engine
	clock   *simclock.Virtual
	store   *cachestore.Store
	classes *vision.ClassSet
}

func perfectProfile() dnn.Profile {
	p := dnn.MobileNetV2
	p.Top1Accuracy = 1.0
	p.LatencyJitter = 0
	return p
}

func newFixture(t *testing.T, cfg Config, peers *p2p.Client) *fixture {
	t.Helper()
	classes, err := vision.NewClassSet(6, 48, 48, 77)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	classifier, err := dnn.NewClassifier(perfectProfile(), classes, 1)
	if err != nil {
		t.Fatal(err)
	}
	var store *cachestore.Store
	if cfg.Mode == ModeApprox {
		dim := cfg.Extractor.Dim()
		idx, err := lsh.NewHyperplane(dim, 12, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		store, err = cachestore.New(cachestore.Config{Capacity: 128}, idx, clock)
		if err != nil {
			t.Fatal(err)
		}
	}
	eng, err := New(cfg, Deps{Clock: clock, Classifier: classifier, Store: store, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{engine: eng, clock: clock, store: store, classes: classes}
}

// stationaryWindow returns a quiet IMU window ending at off.
func stationaryWindow(off time.Duration) []imu.Sample {
	var out []imu.Sample
	for i := 0; i < 10; i++ {
		out = append(out, imu.Sample{Offset: off + time.Duration(i)*10*time.Millisecond})
	}
	return out
}

// movingWindow returns a high-rotation IMU window ending at off.
func movingWindow(off time.Duration) []imu.Sample {
	var out []imu.Sample
	for i := 0; i < 10; i++ {
		out = append(out, imu.Sample{
			Offset: off + time.Duration(i)*10*time.Millisecond,
			Accel:  [3]float64{2, 0, 0},
			Gyro:   [3]float64{0, 1.5, 0},
		})
	}
	return out
}

func TestModeString(t *testing.T) {
	if ModeNoCache.String() != "no-cache" || ModeExactCache.String() != "exact-cache" ||
		ModeApprox.String() != "approx-cache" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatal("unknown mode string wrong")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		{Mode: Mode(42)},
		func() Config { c := DefaultConfig(); c.Extractor = nil; return c }(),
		func() Config { c := DefaultConfig(); c.Vote.K = 0; return c }(),
		func() Config { c := DefaultConfig(); c.IMU.Window = 0; return c }(),
		func() Config { c := DefaultConfig(); c.Diff.Threshold = 0; return c }(),
		func() Config { c := DefaultConfig(); c.Costs.DiffLatency = -1; return c }(),
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// Baseline modes don't need extractor/vote/gates.
	if err := (Config{Mode: ModeNoCache}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	classes, err := vision.NewClassSet(2, 32, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	classifier, err := dnn.NewClassifier(perfectProfile(), classes, 1)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	if _, err := New(Config{Mode: ModeNoCache}, Deps{Classifier: classifier}); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := New(Config{Mode: ModeNoCache}, Deps{Clock: clock}); err == nil {
		t.Fatal("nil classifier accepted")
	}
	if _, err := New(DefaultConfig(), Deps{Clock: clock, Classifier: classifier}); err == nil {
		t.Fatal("approx mode without store accepted")
	}
}

func TestProcessNilFrame(t *testing.T) {
	f := newFixture(t, Config{Mode: ModeNoCache}, nil)
	if _, err := f.engine.Process(nil, nil); err == nil {
		t.Fatal("nil frame accepted")
	}
}

func TestNoCacheModeAlwaysInfers(t *testing.T) {
	f := newFixture(t, Config{Mode: ModeNoCache}, nil)
	proto, err := f.classes.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		res, err := f.engine.ProcessWithTruth(proto, nil, dnn.LabelOf(0))
		if err != nil {
			t.Fatal(err)
		}
		if res.Source != metrics.SourceDNN {
			t.Fatalf("frame %d source = %v", i, res.Source)
		}
		if res.Label != dnn.LabelOf(0) {
			t.Fatalf("label = %q", res.Label)
		}
	}
	if hr := f.engine.Stats().HitRate(); hr != 0 {
		t.Fatalf("no-cache hit rate = %v", hr)
	}
	if acc := f.engine.Stats().Accuracy(); acc != 1 {
		t.Fatalf("accuracy = %v", acc)
	}
	// Clock advanced by ~5 inferences.
	if f.clock.Now().Sub(time.Unix(0, 0)) < 5*perfectProfile().MeanLatency/2 {
		t.Fatal("clock did not absorb inference latency")
	}
}

func TestExactCacheHitsIdenticalFramesOnly(t *testing.T) {
	f := newFixture(t, Config{Mode: ModeExactCache}, nil)
	proto, err := f.classes.Prototype(1)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := f.engine.Process(proto, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Source != metrics.SourceDNN {
		t.Fatalf("first frame source = %v", res1.Source)
	}
	res2, err := f.engine.Process(proto, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Source != metrics.SourceLocal {
		t.Fatalf("identical frame source = %v", res2.Source)
	}
	if res2.Latency >= res1.Latency/10 {
		t.Fatalf("exact hit latency %v not ≪ miss %v", res2.Latency, res1.Latency)
	}
	// A perturbed frame of the same class misses the exact cache.
	other := proto.Clone()
	other.Pix[0] = 1 - other.Pix[0]
	res3, err := f.engine.Process(other, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Source != metrics.SourceDNN {
		t.Fatalf("perturbed frame source = %v", res3.Source)
	}
}

func TestNaiveSkipMode(t *testing.T) {
	if err := (Config{Mode: ModeNaiveSkip, Costs: DefaultCostModel()}).Validate(); err == nil {
		t.Fatal("naive-skip without SkipEvery accepted")
	}
	cfg := Config{Mode: ModeNaiveSkip, SkipEvery: 3, Costs: DefaultCostModel()}
	f := newFixture(t, cfg, nil)
	p0, err := f.classes.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := f.classes.Prototype(1)
	if err != nil {
		t.Fatal(err)
	}
	// SkipEvery=3: infer, reuse, reuse, infer, reuse, reuse, ...
	var sources []metrics.Source
	frames := []*vision.Image{p0, p1, p1, p1, p1, p1, p1}
	for _, im := range frames {
		res, err := f.engine.Process(im, nil)
		if err != nil {
			t.Fatal(err)
		}
		sources = append(sources, res.Source)
	}
	want := []metrics.Source{
		metrics.SourceDNN, metrics.SourceVideo, metrics.SourceVideo,
		metrics.SourceDNN, metrics.SourceVideo, metrics.SourceVideo,
		metrics.SourceDNN,
	}
	for i := range want {
		if sources[i] != want[i] {
			t.Fatalf("frame %d source = %v, want %v (all: %v)",
				i, sources[i], want[i], sources)
		}
	}
}

func TestNaiveSkipBlindReuseIsWrongAcrossScenes(t *testing.T) {
	cfg := Config{Mode: ModeNaiveSkip, SkipEvery: 10, Costs: DefaultCostModel()}
	f := newFixture(t, cfg, nil)
	p0, err := f.classes.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := f.classes.Prototype(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.engine.ProcessWithTruth(p0, nil, dnn.LabelOf(0)); err != nil {
		t.Fatal(err)
	}
	// Scene changes but naive skip reuses the stale label.
	res, err := f.engine.ProcessWithTruth(p1, nil, dnn.LabelOf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != metrics.SourceVideo {
		t.Fatalf("source = %v, want blind reuse", res.Source)
	}
	if res.Label == dnn.LabelOf(1) {
		t.Fatal("blind reuse should serve the stale label here")
	}
	if acc := f.engine.Stats().Accuracy(); acc != 0.5 {
		t.Fatalf("accuracy = %v, want 0.5", acc)
	}
}

func TestApproxIMUGateReuses(t *testing.T) {
	f := newFixture(t, DefaultConfig(), nil)
	proto, err := f.classes.Prototype(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.engine.ProcessWithTruth(proto, stationaryWindow(0), dnn.LabelOf(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != metrics.SourceDNN {
		t.Fatalf("cold start source = %v", res.Source)
	}
	for i := 1; i <= 5; i++ {
		res, err = f.engine.ProcessWithTruth(proto,
			stationaryWindow(time.Duration(i)*100*time.Millisecond), dnn.LabelOf(2))
		if err != nil {
			t.Fatal(err)
		}
		if res.Source != metrics.SourceIMU {
			t.Fatalf("frame %d source = %v, want imu", i, res.Source)
		}
		if res.Label != dnn.LabelOf(2) {
			t.Fatalf("label = %q", res.Label)
		}
		if res.Latency > 5*time.Millisecond {
			t.Fatalf("imu hit latency = %v", res.Latency)
		}
	}
	counts := f.engine.Stats().CountBySource()
	if counts[metrics.SourceIMU] != 5 || counts[metrics.SourceDNN] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestApproxVideoGateWhenIMUDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableIMUGate = true
	f := newFixture(t, cfg, nil)
	proto, err := f.classes.Prototype(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.engine.Process(proto, stationaryWindow(0)); err != nil {
		t.Fatal(err)
	}
	res, err := f.engine.Process(proto, stationaryWindow(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != metrics.SourceVideo {
		t.Fatalf("source = %v, want video", res.Source)
	}
}

func TestApproxLocalCacheAcrossMovement(t *testing.T) {
	// Both cheap gates disabled: similar frames must hit the
	// feature-space cache instead.
	cfg := DefaultConfig()
	cfg.DisableIMUGate = true
	cfg.DisableVideoGate = true
	f := newFixture(t, cfg, nil)
	proto, err := f.classes.Prototype(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.engine.Process(proto, movingWindow(0)); err != nil {
		t.Fatal(err)
	}
	res, err := f.engine.Process(proto, movingWindow(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != metrics.SourceLocal {
		t.Fatalf("source = %v, want local", res.Source)
	}
	if f.store.Len() != 1 {
		t.Fatalf("store len = %d", f.store.Len())
	}
}

func TestApproxSceneChangeFallsThrough(t *testing.T) {
	f := newFixture(t, DefaultConfig(), nil)
	p0, err := f.classes.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := f.classes.Prototype(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.engine.ProcessWithTruth(p0, stationaryWindow(0), dnn.LabelOf(0)); err != nil {
		t.Fatal(err)
	}
	// New scene while moving: all reuse gates must fail, DNN runs.
	res, err := f.engine.ProcessWithTruth(p1, movingWindow(100*time.Millisecond), dnn.LabelOf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != metrics.SourceDNN {
		t.Fatalf("scene change source = %v, want dnn", res.Source)
	}
	if res.Label != dnn.LabelOf(1) {
		t.Fatalf("label = %q", res.Label)
	}
	if acc := f.engine.Stats().Accuracy(); acc != 1 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestKeyframeLibraryServesPanBack(t *testing.T) {
	// Scene A, then B, then back to A — all while moving (IMU gate
	// off the table). With the default 4-keyframe library the return
	// to A is a video-gate hit; with capacity 1 it is not.
	run := func(capacity int) metrics.Source {
		cfg := DefaultConfig()
		cfg.KeyframeCapacity = capacity
		f := newFixture(t, cfg, nil)
		p0, err := f.classes.Prototype(0)
		if err != nil {
			t.Fatal(err)
		}
		p1, err := f.classes.Prototype(1)
		if err != nil {
			t.Fatal(err)
		}
		for i, im := range []*vision.Image{p0, p1} {
			if _, err := f.engine.Process(im, movingWindow(time.Duration(i)*time.Second)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := f.engine.Process(p0, movingWindow(2*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		if res.Label != dnn.LabelOf(0) {
			t.Fatalf("pan-back label = %q", res.Label)
		}
		return res.Source
	}
	if src := run(4); src != metrics.SourceVideo {
		t.Fatalf("library pan-back source = %v, want video", src)
	}
	if src := run(1); src == metrics.SourceVideo {
		t.Fatal("single keyframe should not remember scene A")
	}
}

// newPeerCluster builds n peer services on a simnet and returns a
// client connected to all of them.
func newPeerCluster(t *testing.T, n int, extractorDim int) (*p2p.Client, []*p2p.Service) {
	t.Helper()
	net, err := simnet.New(simnet.LinkProfile{Latency: 5 * time.Millisecond}, 3)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	var services []*p2p.Service
	var names []string
	for i := 0; i < n; i++ {
		idx, err := lsh.NewExact(extractorDim)
		if err != nil {
			t.Fatal(err)
		}
		st, err := cachestore.New(cachestore.Config{Capacity: 64}, idx, clock)
		if err != nil {
			t.Fatal(err)
		}
		name := "peer-" + string(rune('a'+i))
		svc, err := p2p.NewService(p2p.DefaultServiceConfig(name), st)
		if err != nil {
			t.Fatal(err)
		}
		if err := p2p.RegisterService(net, svc); err != nil {
			t.Fatal(err)
		}
		services = append(services, svc)
		names = append(names, name)
	}
	tr, err := p2p.NewSimnetTransport("device", net)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := p2p.NewClient(p2p.DefaultClientConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetPeers(names)
	return cl, services
}

func TestApproxPeerHitAndAdoption(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableIMUGate = true
	cfg.DisableVideoGate = true
	client, services := newPeerCluster(t, 1, cfg.Extractor.Dim())
	f := newFixture(t, cfg, client)
	proto, err := f.classes.Prototype(5)
	if err != nil {
		t.Fatal(err)
	}
	// Preload the peer with this scene's feature vector.
	vec, err := cfg.Extractor.Extract(proto)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := services[0].Store().Insert(vec, "class-5", 0.95, "dnn", 120*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	res, err := f.engine.ProcessWithTruth(proto, movingWindow(0), dnn.LabelOf(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != metrics.SourcePeer {
		t.Fatalf("source = %v, want peer", res.Source)
	}
	if res.PeerName != "peer-a" {
		t.Fatalf("peer name = %q", res.PeerName)
	}
	if res.Latency < 10*time.Millisecond || res.Latency > 60*time.Millisecond {
		t.Fatalf("peer hit latency = %v", res.Latency)
	}
	// The answer was adopted locally: the next similar frame hits the
	// local cache without network traffic.
	res, err = f.engine.ProcessWithTruth(proto, movingWindow(time.Second), dnn.LabelOf(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != metrics.SourceLocal {
		t.Fatalf("post-adoption source = %v, want local", res.Source)
	}
	q, h := f.engine.Stats().PeerQueries()
	if q != 1 || h != 1 {
		t.Fatalf("peer queries = %d/%d", h, q)
	}
}

func TestApproxGossipWarmsPeers(t *testing.T) {
	cfg := DefaultConfig()
	client, services := newPeerCluster(t, 2, cfg.Extractor.Dim())
	f := newFixture(t, cfg, client)
	proto, err := f.classes.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.engine.Process(proto, movingWindow(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != metrics.SourceDNN {
		t.Fatalf("source = %v", res.Source)
	}
	for i, svc := range services {
		if svc.Store().Len() != 1 {
			t.Fatalf("peer %d not warmed by gossip", i)
		}
	}
	// Gossip disabled: peers stay cold.
	cfg2 := cfg
	cfg2.DisableGossip = true
	client2, services2 := newPeerCluster(t, 1, cfg.Extractor.Dim())
	f2 := newFixture(t, cfg2, client2)
	if _, err := f2.engine.Process(proto, movingWindow(0)); err != nil {
		t.Fatal(err)
	}
	if services2[0].Store().Len() != 0 {
		t.Fatal("gossip sent despite DisableGossip")
	}
}

func TestHeadlineLatencyReduction(t *testing.T) {
	// The poster's claim on its best-case workload: approximate
	// caching cuts average latency by up to ~94%. Run the
	// stationary-heavy workload through no-cache and approx engines
	// and compare.
	spec := trace.StationaryHeavy(300, 5)
	w, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	run := func(mode Mode) *metrics.SessionStats {
		cfg := DefaultConfig()
		cfg.Mode = mode
		clock := simclock.NewVirtual(time.Unix(0, 0))
		classifier, err := dnn.NewClassifier(dnn.MobileNetV2, w.Classes, 9)
		if err != nil {
			t.Fatal(err)
		}
		var store *cachestore.Store
		if mode == ModeApprox {
			idx, err := lsh.NewHyperplane(cfg.Extractor.Dim(), 12, 4, 2)
			if err != nil {
				t.Fatal(err)
			}
			store, err = cachestore.New(cachestore.Config{Capacity: 256}, idx, clock)
			if err != nil {
				t.Fatal(err)
			}
		}
		eng, err := New(cfg, Deps{Clock: clock, Classifier: classifier, Store: store})
		if err != nil {
			t.Fatal(err)
		}
		prev := time.Duration(0)
		for _, fr := range w.Frames {
			win := w.IMUWindow(prev, fr.Offset)
			prev = fr.Offset
			if _, err := eng.ProcessWithTruth(fr.Image, win, dnn.LabelOf(fr.Class)); err != nil {
				t.Fatal(err)
			}
		}
		return eng.Stats()
	}
	base := run(ModeNoCache)
	approx := run(ModeApprox)
	baseMean := base.Latency().Mean()
	approxMean := approx.Latency().Mean()
	reduction := 1 - float64(approxMean)/float64(baseMean)
	if reduction < 0.75 {
		t.Fatalf("latency reduction = %.1f%%, want >= 75%% (base %v, approx %v)",
			reduction*100, baseMean, approxMean)
	}
	if hr := approx.HitRate(); hr < 0.8 {
		t.Fatalf("hit rate = %v", hr)
	}
	// "Minimal loss of recognition accuracy": within a few points of
	// the no-cache accuracy.
	if base.Accuracy()-approx.Accuracy() > 0.08 {
		t.Fatalf("accuracy dropped %v -> %v", base.Accuracy(), approx.Accuracy())
	}
}

func TestLastResult(t *testing.T) {
	f := newFixture(t, Config{Mode: ModeNoCache}, nil)
	if _, ok := f.engine.LastResult(); ok {
		t.Fatal("fresh engine has a last result")
	}
	proto, err := f.classes.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.engine.Process(proto, nil); err != nil {
		t.Fatal(err)
	}
	res, ok := f.engine.LastResult()
	if !ok || res.Label == "" {
		t.Fatalf("last result = %+v ok=%v", res, ok)
	}
	if f.engine.Mode() != ModeNoCache {
		t.Fatal("mode accessor wrong")
	}
}

// TestSetPeersConcurrentWithProcess swaps the peer client while frames
// are in flight. Run under -race this pins down that SetPeers and the
// P2P gate's client snapshot never race.
func TestSetPeersConcurrentWithProcess(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableIMUGate = true
	cfg.DisableVideoGate = true
	client, _ := newPeerCluster(t, 2, cfg.Extractor.Dim())
	f := newFixture(t, cfg, nil)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if i%2 == 0 {
				f.engine.SetPeers(client)
			} else {
				f.engine.SetPeers(nil)
			}
		}
	}()
	for i := 0; i < 100; i++ {
		proto, err := f.classes.Prototype(i % 6)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.engine.Process(proto, nil); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}
