// Fault matrix: replays one device's workload with each class of
// device-side fault injected — corrupted IMU windows, degenerate
// frames, a DNN outage — with the sensor guards and classifier
// watchdog toggled, so the cost of each fault and the value of each
// defence are measured side by side. E19 and the acceptance fault
// test both run on it.
package eval

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"approxcache/internal/core"
	"approxcache/internal/dnn"
	"approxcache/internal/imu"
	"approxcache/internal/simclock"
	"approxcache/internal/trace"
	"approxcache/internal/vision"
)

// Fault-injection cadence: every injectEvery-th frame is corrupted,
// after a short clean warmup that lets the cache and gates settle.
const (
	faultWarmupFrames = 8
	faultInjectEvery  = 3
)

// FaultScenario names one row of the matrix.
type FaultScenario struct {
	// Name labels the row.
	Name string
	// IMU, when non-zero, corrupts every faultInjectEvery-th frame's
	// IMU window with this fault class.
	IMU trace.IMUFault
	// Frame, when non-zero, corrupts every faultInjectEvery-th frame's
	// image with this fault class.
	Frame trace.FrameFault
	// Outage, when true, takes the classifier down 40% into the
	// workload and heals it at 70% (frame indices).
	Outage bool
	// NoGuards disables the sensor guards (the unguarded baseline).
	NoGuards bool
	// NoWatchdog disables the classifier watchdog.
	NoWatchdog bool
}

// FaultMatrixRow is the measured outcome of one scenario.
type FaultMatrixRow struct {
	// Name echoes the scenario.
	Name string
	// Frames is how many frames produced a result; Rejected is how
	// many the guards refused with a typed error (structurally
	// unusable input).
	Frames   int
	Rejected int
	// Accuracy is the fraction of served frames whose label matched
	// the workload's ground truth.
	Accuracy float64
	// Mean is the mean served-frame latency.
	Mean time.Duration
	// SensorFaults counts inputs the guards flagged; DegradedServes
	// counts frames answered below the full pipeline (cache-only or
	// last-result fallback).
	SensorFaults   int
	DegradedServes int
	// Timeouts..FastFails are the watchdog counters.
	Timeouts, Retries, Trips, Recoveries, FastFails int
}

// DefaultFaultScenarios is the matrix E19 runs: a clean baseline, each
// sensor fault class under the guards, the worst of them unguarded,
// and a mid-session DNN outage with and without the watchdog.
func DefaultFaultScenarios() []FaultScenario {
	return []FaultScenario{
		{Name: "clean"},
		{Name: "imu-dropout (guarded)", IMU: trace.IMUDropout},
		{Name: "imu-stuck (guarded)", IMU: trace.IMUStuck},
		{Name: "imu-stuck (unguarded)", IMU: trace.IMUStuck, NoGuards: true},
		{Name: "imu-saturate (guarded)", IMU: trace.IMUSaturate},
		{Name: "frame-black (guarded)", Frame: trace.FrameBlack},
		{Name: "frame-black (unguarded)", Frame: trace.FrameBlack, NoGuards: true},
		{Name: "dnn-outage (watchdog)", Outage: true},
		{Name: "dnn-outage (no watchdog)", Outage: true, NoWatchdog: true},
	}
}

// RunFaultScenario replays a stationary-heavy workload of the given
// length under one scenario and measures the outcome. Typed sensor
// errors (ErrBadFrame, ErrBadIMUWindow) are counted as rejections, not
// run failures: refusing a structurally unusable input is the guard
// doing its job.
func RunFaultScenario(sc FaultScenario, frames int, seed int64) (FaultMatrixRow, error) {
	if frames < 30 {
		return FaultMatrixRow{}, fmt.Errorf("eval: fault matrix needs ≥ 30 frames, got %d", frames)
	}
	spec := trace.StationaryHeavy(frames, seed)
	ecfg := core.DefaultConfig()
	ecfg.DisableSensorGuards = sc.NoGuards
	ecfg.Watchdog.Disabled = sc.NoWatchdog
	// The default guard thresholds suit second-scale windows; the
	// per-frame gating windows here (15 fps camera, 100 Hz IMU → ~6
	// samples each) need thresholds sized to that geometry or dropout
	// and stuck faults fit entirely inside the tolerances.
	ecfg.IMUGuard.MaxGap = 25 * time.Millisecond
	ecfg.IMUGuard.StuckRun = 5
	dcfg := DeviceConfig{Name: "main", Spec: spec, Engine: ecfg, Seed: seed}

	rng := rand.New(rand.NewSource(seed))
	inject := func(frame int) bool {
		return frame >= faultWarmupFrames && frame%faultInjectEvery == 0
	}
	if sc.IMU != 0 {
		dcfg.CorruptIMU = func(frame int, win []imu.Sample) []imu.Sample {
			if !inject(frame) {
				return win
			}
			return trace.CorruptIMUWindow(win, sc.IMU, rng)
		}
	}
	if sc.Frame != 0 {
		dcfg.CorruptFrame = func(frame int, im *vision.Image) *vision.Image {
			if !inject(frame) {
				return im
			}
			return trace.CorruptFrame(im, sc.Frame, rng)
		}
	}
	var faulty *dnn.FaultyClassifier
	if sc.Outage {
		dcfg.WrapClassifier = func(r dnn.Recognizer) core.Classifier {
			// A nil plan cannot fail validation; the wrap is infallible.
			fc, err := dnn.NewFaultyClassifier(r, nil)
			if err != nil {
				panic(err)
			}
			faulty = fc
			return fc
		}
	}

	clock := simclock.NewVirtual(time.Unix(0, 0))
	dev, err := buildDevice(dcfg, clock, nil)
	if err != nil {
		return FaultMatrixRow{}, err
	}
	downAt, healAt := frames*2/5, frames*7/10

	row := FaultMatrixRow{Name: sc.Name}
	var sum time.Duration
	start := clock.Now()
	for dev.next < len(dev.work.Frames) {
		// Pin the clock to each frame's arrival so time-based policy
		// (gate TTLs, the watchdog's breaker cooldown) runs on the
		// real frame timeline, not the compressed sum of latencies.
		clock.Set(start.Add(dev.work.Frames[dev.next].Offset))
		if faulty != nil {
			switch dev.next {
			case downAt:
				faulty.SetDown(true)
			case healAt:
				faulty.SetDown(false)
			}
		}
		res, ok, err := dev.stepResult()
		if err != nil {
			if errors.Is(err, core.ErrBadFrame) || errors.Is(err, core.ErrBadIMUWindow) {
				row.Rejected++
				continue
			}
			return FaultMatrixRow{}, err
		}
		if !ok {
			break
		}
		row.Frames++
		sum += res.Latency
	}
	if row.Frames > 0 {
		row.Mean = sum / time.Duration(row.Frames)
	}
	stats := dev.engine.Stats()
	row.Accuracy = stats.Accuracy()
	row.SensorFaults = stats.SensorFaultTotal()
	row.DegradedServes = stats.DegradedServeTotal()
	row.Timeouts, row.Retries, row.Trips, row.Recoveries, row.FastFails = stats.WatchdogEvents()
	return row, nil
}

// RunFaultMatrix runs every scenario at the given size.
func RunFaultMatrix(scenarios []FaultScenario, frames int, seed int64) ([]FaultMatrixRow, error) {
	rows := make([]FaultMatrixRow, 0, len(scenarios))
	for _, sc := range scenarios {
		row, err := RunFaultScenario(sc, frames, seed)
		if err != nil {
			return nil, fmt.Errorf("eval: fault scenario %q: %w", sc.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// E19DeviceFaults measures the device-side fault-tolerance layer: each
// sensor fault class with the guards on (and the worst ones off), and
// a mid-session DNN outage with and without the watchdog. The shape
// the layer must produce: guarded rows keep accuracy at the clean
// baseline, the outage row keeps serving (degraded, bounded latency,
// zero run failures) and recovers after the heal.
func E19DeviceFaults(s Scale) (Report, error) {
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	frames := s.Frames
	if frames < 30 {
		frames = 30
	}
	report := Report{
		ID: "E19",
		Title: fmt.Sprintf(
			"Device fault matrix: sensor corruption and DNN outage, guards and watchdog on/off (%d frames, fault every %d frames)",
			frames, faultInjectEvery),
		Headers: []string{"scenario", "frames", "rejected", "accuracy", "mean",
			"sensor-faults", "degraded", "watchdog t/r/tr/rec/ff"},
		Notes: []string{
			"guarded sensor faults are routed past the reuse gates: accuracy holds at the clean baseline, latency pays for the lost reuse",
			"unguarded faults let corrupt inputs reach the detector and the cache — the damage the guards exist to stop",
			"dnn-outage crashes the classifier 40% in and heals it at 70%: the watchdog trips, serves cache-only fallbacks, and recovers on heal",
		},
	}
	rows, err := RunFaultMatrix(DefaultFaultScenarios(), frames, s.Seed)
	if err != nil {
		return Report{}, err
	}
	for _, r := range rows {
		report.Rows = append(report.Rows, []string{
			r.Name,
			fmt.Sprintf("%d", r.Frames),
			fmt.Sprintf("%d", r.Rejected),
			fmtPct(r.Accuracy),
			fmtDur(r.Mean),
			fmt.Sprintf("%d", r.SensorFaults),
			fmt.Sprintf("%d", r.DegradedServes),
			fmt.Sprintf("%d/%d/%d/%d/%d", r.Timeouts, r.Retries, r.Trips, r.Recoveries, r.FastFails),
		})
	}
	return report, nil
}
