package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"approxcache/internal/cachestore"
	"approxcache/internal/feature"
	"approxcache/internal/lsh"
	"approxcache/internal/p2p"
	"approxcache/internal/simclock"
	"approxcache/internal/simnet"
)

// E25 — bandwidth-constrained peer sharing. The compact comms stack
// (wire codec v2's int8 quantized vectors, epoch-delta digests, query
// coalescing, gossip batching) is measured against the legacy v1
// float64 protocol on simulated links from a fraction of the default
// 3 MB/s down. Both modes replay the identical workload on identical
// deterministic links (no loss, no jitter), so bytes/frame, peer-query
// latency, and peer hit rate are directly comparable; cmd/benchgate
// gates the bytes/frame reduction at no hit-rate loss.

// P2PConfig parameterizes the bandwidth-constrained peer benchmark.
type P2PConfig struct {
	// Nodes is how many peer services populate the mesh.
	Nodes int
	// Sessions is how many pool sessions observe each scene frame:
	// they issue the identical query vector, which is exactly the
	// duplicate traffic coalescing exists to absorb.
	Sessions int
	// Frames is the scene-frame count per run.
	Frames int
	// Dim is the feature dimension.
	Dim int
	// PerNode is the warm cache entries per peer.
	PerNode int
	// GossipEvery inserts (and gossips) one fresh result every N
	// frames.
	GossipEvery int
	// DigestEvery refreshes every peer's coverage digest every N
	// frames.
	DigestEvery int
	// BandwidthsMBps is the link-bandwidth sweep, most constrained
	// first.
	BandwidthsMBps []float64
	// Seed drives all randomness.
	Seed int64
}

func (c *P2PConfig) defaults() {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.Sessions == 0 {
		c.Sessions = 3
	}
	if c.Frames == 0 {
		c.Frames = 400
	}
	if c.Dim == 0 {
		c.Dim = 32
	}
	if c.PerNode == 0 {
		c.PerNode = 48
	}
	if c.GossipEvery == 0 {
		c.GossipEvery = 4
	}
	if c.DigestEvery == 0 {
		c.DigestEvery = 50
	}
	if len(c.BandwidthsMBps) == 0 {
		c.BandwidthsMBps = []float64{0.5, 1, 3}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Validate reports whether the configuration is usable.
func (c P2PConfig) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("eval: p2p needs >= 2 nodes, got %d", c.Nodes)
	}
	if c.Sessions < 1 || c.Frames < 1 || c.Dim < 1 || c.PerNode < 1 {
		return fmt.Errorf("eval: p2p sessions/frames/dim/per-node must be positive")
	}
	if c.GossipEvery < 1 || c.DigestEvery < 1 {
		return fmt.Errorf("eval: p2p gossip/digest intervals must be positive")
	}
	for _, bw := range c.BandwidthsMBps {
		if bw <= 0 {
			return fmt.Errorf("eval: p2p bandwidth must be positive, got %v", bw)
		}
	}
	return nil
}

// P2PModeResult is one protocol mode's measurements at one bandwidth.
type P2PModeResult struct {
	Mode string `json:"mode"`
	// BytesPerFrame is total client wire traffic (sent + received)
	// divided by session-frames (Frames × Sessions).
	BytesPerFrame float64 `json:"bytes_per_frame"`
	SentBytes     int64   `json:"sent_bytes"`
	RecvBytes     int64   `json:"recv_bytes"`
	Messages      int64   `json:"messages"`
	// PeerHitRate is accepted peer answers over session-frames.
	PeerHitRate float64 `json:"peer_hit_rate"`
	// MeanLatencyMS / P95LatencyMS summarize per-session-frame peer
	// query cost (coalesced replays cost zero — that is the point).
	MeanLatencyMS     float64 `json:"mean_latency_ms"`
	P95LatencyMS      float64 `json:"p95_latency_ms"`
	CoalescedInFlight int64   `json:"coalesced_in_flight"`
	CoalescedCached   int64   `json:"coalesced_cached"`
	Batches           int64   `json:"batches"`
	AvgBatchItems     float64 `json:"avg_batch_items"`
	// DigestBytes is the digest-refresh share of the traffic.
	DigestBytes int64 `json:"digest_bytes"`
}

// P2PPoint compares the two modes at one bandwidth.
type P2PPoint struct {
	BandwidthMBps  float64       `json:"bandwidth_mbps"`
	Legacy         P2PModeResult `json:"legacy"`
	Compact        P2PModeResult `json:"compact"`
	BytesReduction float64       `json:"bytes_reduction"`
	LatencySpeedup float64       `json:"latency_speedup"`
}

// P2PReport is the benchmark's JSON artifact (BENCH_p2p.json).
type P2PReport struct {
	Nodes    int        `json:"nodes"`
	Sessions int        `json:"sessions"`
	Frames   int        `json:"frames"`
	Dim      int        `json:"dim"`
	Points   []P2PPoint `json:"points"`
	// Gate fields, measured at the most constrained bandwidth.
	ConstrainedMBps float64 `json:"constrained_mbps"`
	BytesReduction  float64 `json:"bytes_reduction"`
	HitLegacy       float64 `json:"hit_legacy"`
	HitCompact      float64 `json:"hit_compact"`
}

// p2pWorkload is the pre-generated deterministic workload both modes
// replay: per-frame query vectors (shared by all sessions of a frame)
// and the gossip stream.
type p2pWorkload struct {
	queries    []feature.Vector
	gossipVecs []feature.Vector
	gossipLbls []string
}

func buildP2PWorkload(cfg P2PConfig, centers []feature.Vector, rng *rand.Rand) p2pWorkload {
	var w p2pWorkload
	w.queries = make([]feature.Vector, cfg.Frames)
	for f := 0; f < cfg.Frames; f++ {
		node := rng.Intn(cfg.Nodes)
		v := perturb(centers[node], rng, 0.02)
		w.queries[f] = v
		if (f+1)%cfg.GossipEvery == 0 {
			g := rng.Intn(cfg.Nodes)
			w.gossipVecs = append(w.gossipVecs, perturb(centers[g], rng, 0.02))
			w.gossipLbls = append(w.gossipLbls, fmt.Sprintf("class-%d", g))
		}
	}
	return w
}

func perturb(center feature.Vector, rng *rand.Rand, sigma float64) feature.Vector {
	v := center.Clone()
	for d := range v {
		v[d] += rng.NormFloat64() * sigma
	}
	v.Normalize()
	return v
}

// runP2PMode replays the workload through one protocol mode on a fresh
// deterministic network.
func runP2PMode(cfg P2PConfig, bwMBps float64, compact bool, centers []feature.Vector, w p2pWorkload) (P2PModeResult, error) {
	mode := "legacy-v1"
	if compact {
		mode = "compact-v2"
	}
	res := P2PModeResult{Mode: mode}
	link := simnet.LinkProfile{
		Latency:      6 * time.Millisecond,
		BandwidthBps: int64(bwMBps * (1 << 20)),
	}
	net, err := simnet.New(link, cfg.Seed)
	if err != nil {
		return res, err
	}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	names := make([]string, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		names[i] = fmt.Sprintf("peer-%d", i)
		idx, err := lsh.NewExact(cfg.Dim)
		if err != nil {
			return res, err
		}
		st, err := cachestore.New(cachestore.Config{Capacity: 4 * cfg.PerNode}, idx, clock)
		if err != nil {
			return res, err
		}
		for j := 0; j < cfg.PerNode; j++ {
			v := perturb(centers[i], rng, 0.02)
			if _, err := st.Insert(v, fmt.Sprintf("class-%d", i), 0.9, "dnn", time.Millisecond); err != nil {
				return res, err
			}
		}
		svcCfg := p2p.DefaultServiceConfig(names[i])
		svcCfg.WireV1Only = !compact
		svc, err := p2p.NewService(svcCfg, st)
		if err != nil {
			return res, err
		}
		if err := p2p.RegisterService(net, svc); err != nil {
			return res, err
		}
	}
	tr, err := p2p.NewSimnetTransport("main", net)
	if err != nil {
		return res, err
	}
	ccfg := p2p.DefaultClientConfig()
	ccfg.Clock = clock
	if compact {
		ccfg.CoalesceTTL = 150 * time.Millisecond
		ccfg.GossipBatch = 8
		ccfg.GossipFlush = 500 * time.Millisecond
	} else {
		ccfg.WireV1Only = true
	}
	client, err := p2p.NewClient(ccfg, tr)
	if err != nil {
		return res, err
	}
	client.SetPeers(names)
	// Roster-style warm-up: ping every peer (this is where the compact
	// mode negotiates v2), then fetch initial digests.
	for _, peer := range names {
		if _, _, err := client.Ping("main", peer); err != nil {
			return res, fmt.Errorf("ping %s: %w", peer, err)
		}
		if _, _, err := client.FetchDigest(peer); err != nil {
			return res, fmt.Errorf("digest %s: %w", peer, err)
		}
	}

	sessionFrames := cfg.Frames * cfg.Sessions
	costs := make([]time.Duration, 0, sessionFrames)
	hits := 0
	gossipIdx := 0
	for f := 0; f < cfg.Frames; f++ {
		clock.Advance(33 * time.Millisecond)
		vec := w.queries[f]
		for s := 0; s < cfg.Sessions; s++ {
			out, err := client.QueryFrame(vec, 0)
			if err != nil {
				return res, err
			}
			if out.Found {
				hits++
			}
			costs = append(costs, out.Cost)
		}
		if (f+1)%cfg.GossipEvery == 0 && gossipIdx < len(w.gossipVecs) {
			if _, err := client.Gossip(w.gossipVecs[gossipIdx], w.gossipLbls[gossipIdx], 0.9, 5*time.Millisecond); err != nil {
				return res, err
			}
			gossipIdx++
		}
		if (f+1)%cfg.DigestEvery == 0 {
			for _, peer := range names {
				if _, _, err := client.FetchDigest(peer); err != nil {
					return res, fmt.Errorf("digest refresh %s: %w", peer, err)
				}
			}
		}
	}
	if _, err := client.FlushGossip(); err != nil {
		return res, err
	}

	ws := client.WireStats()
	res.SentBytes = ws.SentBytes
	res.RecvBytes = ws.RecvBytes
	res.Messages = ws.SentMsgs
	res.BytesPerFrame = float64(ws.SentBytes+ws.RecvBytes) / float64(sessionFrames)
	res.PeerHitRate = float64(hits) / float64(sessionFrames)
	res.CoalescedInFlight = ws.CoalescedInFlight
	res.CoalescedCached = ws.CoalescedCached
	res.Batches = ws.Batches
	res.AvgBatchItems = ws.AvgBatch()
	for kind, ks := range ws.Kinds {
		switch kind {
		case "digest-req", "digest-resp", "digest-delta-req", "digest-delta-resp":
			res.DigestBytes += ks.SentBytes + ks.RecvBytes
		}
	}
	var total time.Duration
	for _, c := range costs {
		total += c
	}
	res.MeanLatencyMS = float64(total.Microseconds()) / float64(len(costs)) / 1e3
	sort.Slice(costs, func(i, j int) bool { return costs[i] < costs[j] })
	res.P95LatencyMS = float64(costs[(len(costs)*95)/100].Microseconds()) / 1e3
	return res, nil
}

// RunP2P sweeps link bandwidth, replaying the same workload through
// the legacy v1 protocol and the compact v2 stack.
func RunP2P(cfg P2PConfig) (P2PReport, error) {
	cfg.defaults()
	if err := cfg.Validate(); err != nil {
		return P2PReport{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := make([]feature.Vector, cfg.Nodes)
	for i := range centers {
		c := make(feature.Vector, cfg.Dim)
		for d := range c {
			c[d] = rng.NormFloat64()
		}
		c.Normalize()
		centers[i] = c
	}
	w := buildP2PWorkload(cfg, centers, rng)

	report := P2PReport{
		Nodes:    cfg.Nodes,
		Sessions: cfg.Sessions,
		Frames:   cfg.Frames,
		Dim:      cfg.Dim,
	}
	bws := append([]float64(nil), cfg.BandwidthsMBps...)
	sort.Float64s(bws)
	for _, bw := range bws {
		legacy, err := runP2PMode(cfg, bw, false, centers, w)
		if err != nil {
			return P2PReport{}, fmt.Errorf("legacy @ %.2f MB/s: %w", bw, err)
		}
		compact, err := runP2PMode(cfg, bw, true, centers, w)
		if err != nil {
			return P2PReport{}, fmt.Errorf("compact @ %.2f MB/s: %w", bw, err)
		}
		pt := P2PPoint{BandwidthMBps: bw, Legacy: legacy, Compact: compact}
		if compact.BytesPerFrame > 0 {
			pt.BytesReduction = legacy.BytesPerFrame / compact.BytesPerFrame
		}
		if compact.MeanLatencyMS > 0 {
			pt.LatencySpeedup = legacy.MeanLatencyMS / compact.MeanLatencyMS
		}
		report.Points = append(report.Points, pt)
	}
	gate := report.Points[0] // most constrained bandwidth
	report.ConstrainedMBps = gate.BandwidthMBps
	report.BytesReduction = gate.BytesReduction
	report.HitLegacy = gate.Legacy.PeerHitRate
	report.HitCompact = gate.Compact.PeerHitRate
	return report, nil
}

// E25P2PWire is the experiment-registry wrapper around RunP2P.
func E25P2PWire(s Scale) (Report, error) {
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	cfg := P2PConfig{Seed: s.Seed}
	cfg.defaults()
	if s.Frames < cfg.Frames {
		cfg.Frames = s.Frames
	}
	rep, err := RunP2P(cfg)
	if err != nil {
		return Report{}, err
	}
	report := Report{
		ID: "E25",
		Title: fmt.Sprintf("Compact P2P wire protocol (%d peers, %d sessions, %d frames, dim %d)",
			rep.Nodes, rep.Sessions, rep.Frames, rep.Dim),
		Headers: []string{"bandwidth", "mode", "bytes/frame", "hit-rate", "mean-ms", "p95-ms", "coalesced", "batches"},
		Notes: []string{
			"quantized codec v2 + delta digests + query coalescing + gossip batching vs the v1 float64 protocol",
			fmt.Sprintf("at %.2f MB/s: %.1fx bytes/frame reduction, hit rate %.3f -> %.3f",
				rep.ConstrainedMBps, rep.BytesReduction, rep.HitLegacy, rep.HitCompact),
		},
	}
	for _, pt := range rep.Points {
		for _, m := range []P2PModeResult{pt.Legacy, pt.Compact} {
			report.Rows = append(report.Rows, []string{
				fmt.Sprintf("%.2f MB/s", pt.BandwidthMBps),
				m.Mode,
				fmt.Sprintf("%.1f", m.BytesPerFrame),
				fmt.Sprintf("%.3f", m.PeerHitRate),
				fmt.Sprintf("%.2f", m.MeanLatencyMS),
				fmt.Sprintf("%.2f", m.P95LatencyMS),
				fmt.Sprintf("%d", m.CoalescedInFlight+m.CoalescedCached),
				fmt.Sprintf("%d", m.Batches),
			})
		}
	}
	return report, nil
}
