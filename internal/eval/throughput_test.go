package eval

import (
	"strings"
	"testing"
	"time"

	"approxcache/internal/dnn"
)

// fastThroughputConfig keeps the saturation harness test-sized: few
// streams, few frames, and a near-zero occupancy scale so real sleeps
// stay in the microseconds.
func fastThroughputConfig() ThroughputConfig {
	return ThroughputConfig{
		Streams: 4,
		Frames:  6,
		Shards:  4,
		Classes: 8,
		Seed:    42,
		Scale:   1.0 / 2000,
		Batcher: dnn.BatcherConfig{MaxBatch: 4, MaxWait: time.Millisecond},
	}
}

func TestThroughputModeUnknown(t *testing.T) {
	if _, err := RunThroughputMode(fastThroughputConfig(), "warp-drive"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestThroughputModesRun(t *testing.T) {
	cfg := fastThroughputConfig()
	for _, mode := range ThroughputModes() {
		res, err := RunThroughputMode(cfg, mode)
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if res.Mode != mode {
			t.Fatalf("mode label %q, want %q", res.Mode, mode)
		}
		if want := cfg.Streams * cfg.Frames; res.Frames != want {
			t.Fatalf("mode %s processed %d frames, want %d", mode, res.Frames, want)
		}
		if res.FPS <= 0 || res.WallMS <= 0 {
			t.Fatalf("mode %s has degenerate timing: %+v", mode, res)
		}
		if res.P50MS > res.P95MS || res.P95MS > res.P99MS {
			t.Fatalf("mode %s percentiles not monotone: %+v", mode, res)
		}
		if res.DNNFrames == 0 {
			t.Fatalf("mode %s never ran the DNN", mode)
		}
		switch mode {
		case ModeSingleMutex:
			if res.Shards != nil || res.Batcher != nil {
				t.Fatalf("single-mutex reported pool-only stats: %+v", res)
			}
		case ModePool1Shard:
			if len(res.Shards) != 1 {
				t.Fatalf("1-shard mode reported %d shards", len(res.Shards))
			}
		case ModePoolSharded:
			if len(res.Shards) != cfg.Shards {
				t.Fatalf("sharded mode reported %d shards, want %d", len(res.Shards), cfg.Shards)
			}
		case ModePoolBatched:
			if res.Batcher == nil || res.Batcher.Frames == 0 {
				t.Fatalf("batched mode missing batcher stats: %+v", res)
			}
		}
	}
}

func TestThroughputReport(t *testing.T) {
	rep, err := RunThroughput(fastThroughputConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(ThroughputModes()) {
		t.Fatalf("%d results, want %d", len(rep.Results), len(ThroughputModes()))
	}
	if rep.Speedup <= 0 {
		t.Fatalf("speedup = %v, want > 0", rep.Speedup)
	}
	if rep.Streams != 4 || rep.Frames != 6 || rep.Shards != 4 || rep.MaxBatch != 4 {
		t.Fatalf("report header wrong: %+v", rep)
	}
}

func TestThroughputDefaults(t *testing.T) {
	var cfg ThroughputConfig
	cfg.defaults()
	if cfg.Streams != 16 || cfg.Frames != 30 || cfg.Shards != 8 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.Batcher.MaxBatch != 16 || cfg.Batcher.MaxWait != 5*time.Millisecond {
		t.Fatalf("batcher defaults = %+v", cfg.Batcher)
	}
	if cfg.MaxReuseStreak != 2 || cfg.Scale != 1.0/15 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

// TestE20Small runs the registered experiment at small scale. The
// small-scale path still sleeps real accelerator time, so this is the
// slowest test in the package — but it is the only end-to-end check
// that the experiment table renders.
func TestE20Small(t *testing.T) {
	if testing.Short() {
		t.Skip("E20 sleeps real accelerator occupancy")
	}
	rep, err := E20Throughput(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(ThroughputModes()) {
		t.Fatalf("%d rows, want %d", len(rep.Rows), len(ThroughputModes()))
	}
	var foundSpeedup bool
	for _, n := range rep.Notes {
		if strings.Contains(n, "speedup") {
			foundSpeedup = true
		}
	}
	if !foundSpeedup {
		t.Fatalf("notes missing speedup: %v", rep.Notes)
	}
}
