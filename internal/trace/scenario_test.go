package trace

import "testing"

func TestScenarioValidate(t *testing.T) {
	good := CrowdScenario(3, 60, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Scenario){
		func(sc *Scenario) { sc.Name = "" },
		func(sc *Scenario) { sc.ClassSeed = 0 },
		func(sc *Scenario) { sc.Devices = nil },
		func(sc *Scenario) { sc.Devices[1].Name = sc.Devices[0].Name },
		func(sc *Scenario) { sc.Devices[1].NumClasses++ },
		func(sc *Scenario) { sc.Devices[1].ImageW++ },
		func(sc *Scenario) { sc.Devices[0].FPS = 0 },
	}
	for i, mut := range mutations {
		sc := CrowdScenario(3, 60, 1)
		mut(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestScenarioDeviceSpecsApplyClassSeed(t *testing.T) {
	sc := CrowdScenario(2, 60, 7)
	specs := sc.DeviceSpecs()
	if len(specs) != 2 {
		t.Fatalf("specs = %d", len(specs))
	}
	for _, s := range specs {
		if s.ClassSeed != sc.ClassSeed {
			t.Fatalf("device %q class seed = %d, want %d", s.Name, s.ClassSeed, sc.ClassSeed)
		}
	}
	// Devices share one vocabulary: identical prototypes.
	a, err := Generate(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(specs[1])
	if err != nil {
		t.Fatal(err)
	}
	pa, err := a.Classes.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Classes.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pa.Pix {
		if pa.Pix[i] != pb.Pix[i] {
			t.Fatal("devices do not share a vocabulary")
		}
	}
	// ...but distinct routes.
	same := true
	for i := range a.Frames {
		if a.Frames[i].Class != b.Frames[i].Class {
			same = false
			break
		}
	}
	if same {
		t.Fatal("devices have identical routes")
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := CrowdScenario(2, 45, 3)
	data, err := EncodeScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != sc.Name || len(out.Devices) != 2 || out.ClassSeed != sc.ClassSeed {
		t.Fatalf("round trip = %+v", out)
	}
	if _, err := DecodeScenario([]byte("{")); err == nil {
		t.Fatal("bad json accepted")
	}
	if _, err := DecodeScenario([]byte(`{"name":"x"}`)); err == nil {
		t.Fatal("invalid scenario accepted")
	}
	if _, err := EncodeScenario(Scenario{}); err == nil {
		t.Fatal("invalid scenario encoded")
	}
}
