package lsh

import (
	"testing"
)

func labelsFrom(m map[ID]string) func(ID) (string, bool) {
	return func(id ID) (string, bool) {
		l, ok := m[id]
		return l, ok
	}
}

func TestVoteConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  VoteConfig
		ok   bool
	}{
		{"default", DefaultVoteConfig(), true},
		{"zero K", VoteConfig{K: 0, MaxDistance: 1, MinVotes: 1}, false},
		{"zero max distance", VoteConfig{K: 3, MaxDistance: 0, MinVotes: 1}, false},
		{"zero min votes", VoteConfig{K: 3, MaxDistance: 1, MinVotes: 0}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err == nil) != tt.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestVoteRejectsInvalidConfig(t *testing.T) {
	_, err := Vote(nil, labelsFrom(nil), VoteConfig{})
	if err == nil {
		t.Fatal("invalid config should error")
	}
}

func TestVoteUnanimous(t *testing.T) {
	ns := []Neighbor{
		{ID: 1, Distance: 0.01},
		{ID: 2, Distance: 0.02},
		{ID: 3, Distance: 0.03},
	}
	labels := map[ID]string{1: "cat", 2: "cat", 3: "cat"}
	v, err := Vote(ns, labelsFrom(labels), DefaultVoteConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Accepted || v.Label != "cat" {
		t.Fatalf("verdict = %+v", v)
	}
	if v.Confidence < 0.99 {
		t.Fatalf("unanimous confidence = %v", v.Confidence)
	}
	if v.Votes != 3 {
		t.Fatalf("votes = %d", v.Votes)
	}
	if v.BestDistance != 0.01 {
		t.Fatalf("best distance = %v", v.BestDistance)
	}
}

func TestVoteRejectsContested(t *testing.T) {
	// Two labels at comparable distance: dominance check must reject.
	ns := []Neighbor{
		{ID: 1, Distance: 0.05},
		{ID: 2, Distance: 0.06},
	}
	labels := map[ID]string{1: "cat", 2: "dog"}
	v, err := Vote(ns, labelsFrom(labels), DefaultVoteConfig())
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepted {
		t.Fatalf("contested vote accepted: %+v", v)
	}
	if v.Votes != 2 {
		t.Fatalf("votes = %d", v.Votes)
	}
}

func TestVoteAcceptsDominant(t *testing.T) {
	// "cat" much closer than the lone "dog": accepted despite mix.
	ns := []Neighbor{
		{ID: 1, Distance: 0.01},
		{ID: 2, Distance: 0.015},
		{ID: 3, Distance: 0.2},
	}
	labels := map[ID]string{1: "cat", 2: "cat", 3: "dog"}
	v, err := Vote(ns, labelsFrom(labels), DefaultVoteConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Accepted || v.Label != "cat" {
		t.Fatalf("verdict = %+v", v)
	}
	if v.Confidence <= 0.5 || v.Confidence >= 1 {
		t.Fatalf("confidence = %v", v.Confidence)
	}
}

func TestVoteRespectsMaxDistance(t *testing.T) {
	ns := []Neighbor{{ID: 1, Distance: 0.9}}
	labels := map[ID]string{1: "cat"}
	cfg := DefaultVoteConfig() // MaxDistance 0.25
	v, err := Vote(ns, labelsFrom(labels), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepted || v.Votes != 0 {
		t.Fatalf("out-of-range neighbor voted: %+v", v)
	}
}

func TestVoteRespectsK(t *testing.T) {
	// 5 neighbors but K=2: only the two closest vote, so the three
	// distant "dog" entries must not flip the result.
	ns := []Neighbor{
		{ID: 1, Distance: 0.01},
		{ID: 2, Distance: 0.02},
		{ID: 3, Distance: 0.03},
		{ID: 4, Distance: 0.04},
		{ID: 5, Distance: 0.05},
	}
	labels := map[ID]string{1: "cat", 2: "cat", 3: "dog", 4: "dog", 5: "dog"}
	cfg := VoteConfig{K: 2, MaxDistance: 0.25, DominanceRatio: 2, MinVotes: 1}
	v, err := Vote(ns, labelsFrom(labels), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Accepted || v.Label != "cat" || v.Votes != 2 {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestVoteMinVotes(t *testing.T) {
	ns := []Neighbor{{ID: 1, Distance: 0.01}}
	labels := map[ID]string{1: "cat"}
	cfg := VoteConfig{K: 4, MaxDistance: 0.25, DominanceRatio: 2, MinVotes: 2}
	v, err := Vote(ns, labelsFrom(labels), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepted {
		t.Fatalf("single vote accepted with MinVotes=2: %+v", v)
	}
}

func TestVoteSkipsUnresolvableLabels(t *testing.T) {
	ns := []Neighbor{
		{ID: 1, Distance: 0.01}, // evicted concurrently
		{ID: 2, Distance: 0.02},
	}
	labels := map[ID]string{2: "cat"}
	v, err := Vote(ns, labelsFrom(labels), DefaultVoteConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Accepted || v.Label != "cat" || v.Votes != 1 {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestVoteEmptyNeighbors(t *testing.T) {
	v, err := Vote(nil, labelsFrom(nil), DefaultVoteConfig())
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepted {
		t.Fatal("empty neighbor set accepted")
	}
}

func TestVoteDominanceDisabled(t *testing.T) {
	ns := []Neighbor{
		{ID: 1, Distance: 0.05},
		{ID: 2, Distance: 0.06},
	}
	labels := map[ID]string{1: "cat", 2: "dog"}
	cfg := VoteConfig{K: 4, MaxDistance: 0.25, DominanceRatio: 0, MinVotes: 1}
	v, err := Vote(ns, labelsFrom(labels), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Accepted || v.Label != "cat" {
		t.Fatalf("with dominance disabled closest label should win: %+v", v)
	}
}

func TestVoteDeterministicLabelTieBreak(t *testing.T) {
	// Identical weights for two labels; dominance disabled. The
	// lexicographically smaller label must win deterministically.
	ns := []Neighbor{
		{ID: 1, Distance: 0.05},
		{ID: 2, Distance: 0.05},
	}
	labels := map[ID]string{1: "zebra", 2: "ant"}
	cfg := VoteConfig{K: 4, MaxDistance: 0.25, DominanceRatio: 0, MinVotes: 1}
	for i := 0; i < 10; i++ {
		v, err := Vote(ns, labelsFrom(labels), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if v.Label != "ant" {
			t.Fatalf("tie break unstable: %+v", v)
		}
	}
}
