// Package lsh implements the approximate nearest-neighbor machinery the
// cache lookup path is built on: a random-hyperplane locality-sensitive
// hash index (k bits × L tables), an exact linear-scan baseline, and the
// homogenized-kNN vote (FoggyCache-style) that decides whether a cached
// result is trustworthy enough to reuse.
package lsh

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"approxcache/internal/feature"
)

// ID identifies an indexed vector. IDs are assigned by the caller
// (typically the cache store).
type ID uint64

// Neighbor is one kNN search result.
type Neighbor struct {
	ID       ID
	Distance float64
}

// Index is the nearest-neighbor interface shared by the LSH index and
// the exact baseline. Implementations are safe for concurrent use.
type Index interface {
	// Insert adds (id, v) to the index, replacing any previous vector
	// under the same id.
	Insert(id ID, v feature.Vector) error
	// Remove deletes id from the index. Removing an absent id is a
	// no-op.
	Remove(id ID)
	// Nearest returns up to k neighbors of q ordered by increasing
	// distance.
	Nearest(q feature.Vector, k int) ([]Neighbor, error)
	// Len returns the number of indexed vectors.
	Len() int
}

// HyperplaneIndex is a random-hyperplane (SimHash) LSH index. Each of
// the L tables hashes a vector to a B-bit signature whose bits are the
// signs of projections onto B random hyperplanes; a query is compared
// only against vectors that collide in at least one table.
type HyperplaneIndex struct {
	dim    int
	bits   int
	tables int

	// planes[t][b] is hyperplane b of table t.
	planes [][]feature.Vector
	// center, when non-nil, is subtracted from vectors before
	// projection (see NewHyperplaneCentered).
	center feature.Vector

	mu      sync.RWMutex
	buckets []map[uint64][]ID
	vecs    map[ID]feature.Vector
	sigs    map[ID][]uint64
}

var _ Index = (*HyperplaneIndex)(nil)

// MaxSignatureBits bounds the per-table signature width so it fits a
// uint64 bucket key.
const MaxSignatureBits = 64

// NewHyperplane builds an LSH index over dim-dimensional vectors with
// bits hyperplanes per table and tables hash tables, seeding all
// hyperplanes deterministically from seed.
func NewHyperplane(dim, bits, tables int, seed int64) (*HyperplaneIndex, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("lsh: dim must be positive, got %d", dim)
	}
	if bits <= 0 || bits > MaxSignatureBits {
		return nil, fmt.Errorf("lsh: bits must be in [1,%d], got %d", MaxSignatureBits, bits)
	}
	if tables <= 0 {
		return nil, fmt.Errorf("lsh: tables must be positive, got %d", tables)
	}
	rng := rand.New(rand.NewSource(seed))
	x := &HyperplaneIndex{
		dim:     dim,
		bits:    bits,
		tables:  tables,
		planes:  make([][]feature.Vector, tables),
		buckets: make([]map[uint64][]ID, tables),
		vecs:    make(map[ID]feature.Vector),
		sigs:    make(map[ID][]uint64),
	}
	for t := 0; t < tables; t++ {
		x.planes[t] = make([]feature.Vector, bits)
		x.buckets[t] = make(map[uint64][]ID)
		for b := 0; b < bits; b++ {
			p := make(feature.Vector, dim)
			for d := 0; d < dim; d++ {
				p[d] = rng.NormFloat64()
			}
			x.planes[t][b] = p
		}
	}
	return x, nil
}

// Dim returns the index dimensionality.
func (x *HyperplaneIndex) Dim() int { return x.dim }

// Len returns the number of indexed vectors.
func (x *HyperplaneIndex) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.vecs)
}

// signature hashes v in table t. Caller must have validated dimensions.
func (x *HyperplaneIndex) signature(t int, v feature.Vector) uint64 {
	var sig uint64
	for b, plane := range x.planes[t] {
		var dot float64
		if x.center == nil {
			for d := range plane {
				dot += plane[d] * v[d]
			}
		} else {
			for d := range plane {
				dot += plane[d] * (v[d] - x.center[d])
			}
		}
		if dot >= 0 {
			sig |= 1 << uint(b)
		}
	}
	return sig
}

// Insert adds (id, v) to all tables, replacing any prior entry for id.
func (x *HyperplaneIndex) Insert(id ID, v feature.Vector) error {
	if len(v) != x.dim {
		return fmt.Errorf("lsh: insert dim %d, index dim %d: %w",
			len(v), x.dim, feature.ErrDimensionMismatch)
	}
	vc := v.Clone()
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, exists := x.vecs[id]; exists {
		x.removeLocked(id)
	}
	sigs := make([]uint64, x.tables)
	for t := 0; t < x.tables; t++ {
		sig := x.signature(t, vc)
		sigs[t] = sig
		x.buckets[t][sig] = append(x.buckets[t][sig], id)
	}
	x.vecs[id] = vc
	x.sigs[id] = sigs
	return nil
}

// Remove deletes id from all tables.
func (x *HyperplaneIndex) Remove(id ID) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.removeLocked(id)
}

func (x *HyperplaneIndex) removeLocked(id ID) {
	sigs, ok := x.sigs[id]
	if !ok {
		return
	}
	for t, sig := range sigs {
		bucket := x.buckets[t][sig]
		for i, bid := range bucket {
			if bid == id {
				bucket[i] = bucket[len(bucket)-1]
				bucket = bucket[:len(bucket)-1]
				break
			}
		}
		if len(bucket) == 0 {
			delete(x.buckets[t], sig)
		} else {
			x.buckets[t][sig] = bucket
		}
	}
	delete(x.vecs, id)
	delete(x.sigs, id)
}

// Candidates returns the deduplicated union of bucket contents that q
// collides with across all tables.
func (x *HyperplaneIndex) Candidates(q feature.Vector) ([]ID, error) {
	if len(q) != x.dim {
		return nil, fmt.Errorf("lsh: query dim %d, index dim %d: %w",
			len(q), x.dim, feature.ErrDimensionMismatch)
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	seen := make(map[ID]struct{})
	var out []ID
	for t := 0; t < x.tables; t++ {
		sig := x.signature(t, q)
		for _, id := range x.buckets[t][sig] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	return out, nil
}

// Nearest returns up to k approximate nearest neighbors of q, drawn
// from the LSH candidate set and ordered by Euclidean distance.
func (x *HyperplaneIndex) Nearest(q feature.Vector, k int) ([]Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("lsh: k must be positive, got %d", k)
	}
	cands, err := x.Candidates(q)
	if err != nil {
		return nil, err
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	return rankNeighbors(q, cands, x.vecs, k), nil
}

// Stats describes index occupancy, used by the LSH ablation experiment.
type Stats struct {
	Items            int
	Tables           int
	Bits             int
	Buckets          int
	MaxBucket        int
	MeanBucket       float64
	MeanCandidateSet float64 // expected candidate-set size for an indexed item
}

// Stats returns occupancy statistics.
func (x *HyperplaneIndex) Stats() Stats {
	x.mu.RLock()
	defer x.mu.RUnlock()
	s := Stats{Items: len(x.vecs), Tables: x.tables, Bits: x.bits}
	var total int
	for t := 0; t < x.tables; t++ {
		for _, b := range x.buckets[t] {
			s.Buckets++
			total += len(b)
			if len(b) > s.MaxBucket {
				s.MaxBucket = len(b)
			}
		}
	}
	if s.Buckets > 0 {
		s.MeanBucket = float64(total) / float64(s.Buckets)
	}
	if len(x.vecs) > 0 {
		// For each item, its candidate set is at least the sizes of
		// its own buckets; use the mean bucket size per table as an
		// estimate of per-query work.
		s.MeanCandidateSet = s.MeanBucket * float64(x.tables)
	}
	return s
}

// ExactIndex is the exhaustive linear-scan baseline. It returns the true
// nearest neighbors and is used both as the exact-match-cache baseline
// component and as ground truth for LSH recall measurements.
type ExactIndex struct {
	dim  int
	mu   sync.RWMutex
	vecs map[ID]feature.Vector
}

var _ Index = (*ExactIndex)(nil)

// NewExact builds an exact index over dim-dimensional vectors.
func NewExact(dim int) (*ExactIndex, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("lsh: dim must be positive, got %d", dim)
	}
	return &ExactIndex{dim: dim, vecs: make(map[ID]feature.Vector)}, nil
}

// Len returns the number of indexed vectors.
func (x *ExactIndex) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.vecs)
}

// Insert adds (id, v), replacing any prior entry.
func (x *ExactIndex) Insert(id ID, v feature.Vector) error {
	if len(v) != x.dim {
		return fmt.Errorf("lsh: insert dim %d, index dim %d: %w",
			len(v), x.dim, feature.ErrDimensionMismatch)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	x.vecs[id] = v.Clone()
	return nil
}

// Remove deletes id.
func (x *ExactIndex) Remove(id ID) {
	x.mu.Lock()
	defer x.mu.Unlock()
	delete(x.vecs, id)
}

// Nearest returns the true k nearest neighbors of q.
func (x *ExactIndex) Nearest(q feature.Vector, k int) ([]Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("lsh: k must be positive, got %d", k)
	}
	if len(q) != x.dim {
		return nil, fmt.Errorf("lsh: query dim %d, index dim %d: %w",
			len(q), x.dim, feature.ErrDimensionMismatch)
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	ids := make([]ID, 0, len(x.vecs))
	for id := range x.vecs {
		ids = append(ids, id)
	}
	return rankNeighbors(q, ids, x.vecs, k), nil
}

// rankNeighbors computes distances from q to each candidate and returns
// the k closest in increasing distance order. Ties break by ID so
// results are deterministic.
func rankNeighbors(q feature.Vector, cands []ID, vecs map[ID]feature.Vector, k int) []Neighbor {
	ns := make([]Neighbor, 0, len(cands))
	for _, id := range cands {
		v, ok := vecs[id]
		if !ok {
			continue
		}
		ns = append(ns, Neighbor{ID: id, Distance: feature.MustEuclidean(q, v)})
	}
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Distance != ns[j].Distance {
			return ns[i].Distance < ns[j].Distance
		}
		return ns[i].ID < ns[j].ID
	})
	if len(ns) > k {
		ns = ns[:k]
	}
	return ns
}
