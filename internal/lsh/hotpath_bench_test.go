package lsh

// Hot-path micro-benchmarks, all reporting allocs/op. `make bench-hotpath`
// runs these and cmd/benchgate pins their allocation budgets, so a
// change that reintroduces per-query allocation fails `make check`.
// Index shape matches the E1 pipeline: 80-dim vectors, 12 bits × 4
// tables, ~512 warm entries, k=4.

import (
	"math/rand"
	"testing"

	"approxcache/internal/feature"
)

func benchVecs(b *testing.B, n, dim int, seed int64) []feature.Vector {
	b.Helper()
	r := rand.New(rand.NewSource(seed))
	out := make([]feature.Vector, n)
	for i := range out {
		v := make(feature.Vector, dim)
		for d := range v {
			v[d] = r.NormFloat64()
		}
		v.Normalize()
		out[i] = v
	}
	return out
}

func warmIndex(b *testing.B, vecs []feature.Vector) *HyperplaneIndex {
	b.Helper()
	idx, err := NewHyperplane(len(vecs[0]), 12, 4, 5)
	if err != nil {
		b.Fatal(err)
	}
	for i, v := range vecs {
		if err := idx.Insert(ID(i), v); err != nil {
			b.Fatal(err)
		}
	}
	return idx
}

// BenchmarkHotPathSignature measures one table signature: a strided
// dot-product sweep over the flat hyperplane matrix.
func BenchmarkHotPathSignature(b *testing.B) {
	vecs := benchVecs(b, 1, 80, 2)
	idx := warmIndex(b, vecs)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= idx.signature(i%idx.tables, vecs[0])
	}
	_ = sink
}

// BenchmarkHotPathCandidates measures LSH candidate gathering with the
// epoch-stamped dedup, appending into a reused caller buffer. Budget: 0
// allocs/op.
func BenchmarkHotPathCandidates(b *testing.B) {
	vecs := benchVecs(b, 512, 80, 4)
	idx := warmIndex(b, vecs)
	ids := make([]ID, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := idx.CandidatesInto(vecs[i%len(vecs)], ids)
		if err != nil {
			b.Fatal(err)
		}
		ids = out[:0]
	}
}

// BenchmarkHotPathTopK measures bounded top-k selection over a fixed
// candidate stream, for both the insertion (small k) and heap (large k)
// strategies.
func BenchmarkHotPathTopK(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	cands := make([]Neighbor, 512)
	for i := range cands {
		cands[i] = Neighbor{ID: ID(i), Distance: r.Float64()}
	}
	for _, k := range []int{4, 64} {
		name := "k=4"
		if k > insertionSelectK {
			name = "k=64(heap)"
		}
		b.Run(name, func(b *testing.B) {
			buf := make([]Neighbor, 0, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var sel kSelector
				sel.reset(k, buf)
				for _, c := range cands {
					sel.add(c)
				}
				if got := sel.finish(); len(got) != k {
					b.Fatalf("selected %d", len(got))
				}
			}
		})
	}
}

// BenchmarkHotPathNearest is the headline lookup: warm 512-entry index,
// k=4, results written into a reused buffer. Budget: 0 allocs/op.
func BenchmarkHotPathNearest(b *testing.B) {
	vecs := benchVecs(b, 512, 80, 4)
	idx := warmIndex(b, vecs)
	dst := make([]Neighbor, 0, 4)
	if _, err := idx.NearestInto(vecs[0], 4, dst); err != nil {
		b.Fatal(err) // warm the scratch pool before timing
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ns, err := idx.NearestInto(vecs[i%len(vecs)], 4, dst)
		if err != nil {
			b.Fatal(err)
		}
		dst = ns[:0]
	}
}

// BenchmarkHotPathNearestMultiProbe is the tuned-pipeline counterpart
// of BenchmarkHotPathNearest: half the tables, multi-probe walk, sketch
// prefilter, quantized scoring. Matched by the HotPathNearest
// allocation budget, so the tuned path is pinned to 0 allocs/op too.
func BenchmarkHotPathNearestMultiProbe(b *testing.B) {
	vecs := benchVecs(b, 512, 80, 4)
	tun := DefaultTuning()
	tun.Probes = 4
	idx, err := NewHyperplaneTuned(80, 12, 2, 5, tun)
	if err != nil {
		b.Fatal(err)
	}
	for i, v := range vecs {
		if err := idx.Insert(ID(i), v); err != nil {
			b.Fatal(err)
		}
	}
	dst := make([]Neighbor, 0, 4)
	if _, err := idx.NearestInto(vecs[0], 4, dst); err != nil {
		b.Fatal(err) // warm the scratch pool before timing
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ns, err := idx.NearestInto(vecs[i%len(vecs)], 4, dst)
		if err != nil {
			b.Fatal(err)
		}
		dst = ns[:0]
	}
}

// BenchmarkHotPathExactNearest is the linear-scan baseline under the
// same shape: dense arena sweep with top-k selection. Budget: 0
// allocs/op.
func BenchmarkHotPathExactNearest(b *testing.B) {
	vecs := benchVecs(b, 512, 80, 6)
	idx, err := NewExact(80)
	if err != nil {
		b.Fatal(err)
	}
	for i, v := range vecs {
		if err := idx.Insert(ID(i), v); err != nil {
			b.Fatal(err)
		}
	}
	dst := make([]Neighbor, 0, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ns, err := idx.NearestInto(vecs[i%len(vecs)], 4, dst)
		if err != nil {
			b.Fatal(err)
		}
		dst = ns[:0]
	}
}
