package lsh

import (
	"math/rand"
	"testing"

	"approxcache/internal/feature"
)

func routerVecs(t *testing.T, n, dim int, seed int64) []feature.Vector {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	out := make([]feature.Vector, n)
	for i := range out {
		v := make(feature.Vector, dim)
		for d := range v {
			v[d] = r.NormFloat64()
		}
		v.Normalize()
		out[i] = v
	}
	return out
}

func TestRouterValidation(t *testing.T) {
	if _, err := NewRouter(0, 4, 1); err == nil {
		t.Fatal("want error for dim 0")
	}
	if _, err := NewRouter(8, 0, 1); err == nil {
		t.Fatal("want error for 0 shards")
	}
	if _, err := NewRouter(8, 257, 1); err == nil {
		t.Fatal("want error for 257 shards")
	}
	r, err := NewRouter(8, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Route(make(feature.Vector, 5)); err == nil {
		t.Fatal("want dimension mismatch")
	}
}

func TestRouterSingleShard(t *testing.T) {
	r, err := NewRouter(16, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range routerVecs(t, 32, 16, 9) {
		s, err := r.Route(v)
		if err != nil {
			t.Fatal(err)
		}
		if s != 0 {
			t.Fatalf("single-shard route = %d", s)
		}
	}
}

// TestRouterDeterministicAndBounded: the same vector always routes to
// the same shard, and every route is in range.
func TestRouterDeterministicAndBounded(t *testing.T) {
	for _, shards := range []int{2, 3, 4, 8, 16} {
		r1, err := NewRouter(32, shards, 7)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := NewRouter(32, shards, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range routerVecs(t, 64, 32, 11) {
			a, err := r1.Route(v)
			if err != nil {
				t.Fatal(err)
			}
			b, err := r2.Route(v)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("shards=%d: routes differ (%d vs %d)", shards, a, b)
			}
			if a < 0 || a >= shards {
				t.Fatalf("shards=%d: route %d out of range", shards, a)
			}
		}
	}
}

// TestRouterSpread: random vectors should not all collapse onto one
// shard — at least half the shards see traffic on a 512-vector draw.
func TestRouterSpread(t *testing.T) {
	const shards = 8
	r, err := NewRouter(80, shards, 5)
	if err != nil {
		t.Fatal(err)
	}
	hit := make([]int, shards)
	for _, v := range routerVecs(t, 512, 80, 13) {
		s, err := r.Route(v)
		if err != nil {
			t.Fatal(err)
		}
		hit[s]++
	}
	used := 0
	for _, n := range hit {
		if n > 0 {
			used++
		}
	}
	if used < shards/2 {
		t.Fatalf("only %d/%d shards used: %v", used, shards, hit)
	}
}
