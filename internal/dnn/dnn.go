// Package dnn simulates the on-device deep-neural-network image
// classifier that the approximate cache fronts.
//
// The paper runs real DNNs (e.g. MobileNet-class models) on real
// smartphones. For the cache's behaviour only two things about the DNN
// matter: (a) it returns the correct label with some high probability,
// and (b) it has a large, device-dependent latency and energy cost —
// the cost the cache exists to avoid. This package reproduces both: a
// nearest-prototype classifier over the synthetic class set with
// configurable top-1 accuracy, plus per-model latency/energy profiles
// calibrated to published mobile-inference measurements. All randomness
// (label noise, latency jitter) is seeded, so runs replay exactly.
package dnn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"approxcache/internal/feature"
	"approxcache/internal/vision"
)

// Profile describes a model's cost and quality on a reference device.
type Profile struct {
	// Name identifies the model in reports.
	Name string
	// MeanLatency is the average single-frame inference latency.
	MeanLatency time.Duration
	// LatencyJitter is the standard deviation of inference latency.
	LatencyJitter time.Duration
	// EnergyPerInference is the energy cost of one inference, in
	// millijoules.
	EnergyPerInference float64
	// Top1Accuracy is the probability that an inference returns the
	// true label.
	Top1Accuracy float64
}

// Validate reports whether the profile is usable.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("dnn: profile needs a name")
	}
	if p.MeanLatency <= 0 {
		return fmt.Errorf("dnn: profile %q: MeanLatency must be positive", p.Name)
	}
	if p.LatencyJitter < 0 {
		return fmt.Errorf("dnn: profile %q: LatencyJitter must be non-negative", p.Name)
	}
	if p.EnergyPerInference < 0 {
		return fmt.Errorf("dnn: profile %q: EnergyPerInference must be non-negative", p.Name)
	}
	if p.Top1Accuracy <= 0 || p.Top1Accuracy > 1 {
		return fmt.Errorf("dnn: profile %q: Top1Accuracy must be in (0,1], got %v",
			p.Name, p.Top1Accuracy)
	}
	return nil
}

// Model zoo: latency/energy calibrated to the mobile-inference
// literature (mid-range 2020-era smartphone CPU).
var (
	// MobileNetV2 is the default "standard mobile neural network" of
	// the paper's headline claim.
	MobileNetV2 = Profile{
		Name:               "mobilenet-v2",
		MeanLatency:        120 * time.Millisecond,
		LatencyJitter:      15 * time.Millisecond,
		EnergyPerInference: 350,
		Top1Accuracy:       0.92,
	}
	// SqueezeNet trades accuracy for speed.
	SqueezeNet = Profile{
		Name:               "squeezenet",
		MeanLatency:        80 * time.Millisecond,
		LatencyJitter:      10 * time.Millisecond,
		EnergyPerInference: 240,
		Top1Accuracy:       0.86,
	}
	// InceptionV3 is a heavier, more accurate model.
	InceptionV3 = Profile{
		Name:               "inception-v3",
		MeanLatency:        400 * time.Millisecond,
		LatencyJitter:      45 * time.Millisecond,
		EnergyPerInference: 1150,
		Top1Accuracy:       0.95,
	}
	// ResNet50 is the largest model in the zoo.
	ResNet50 = Profile{
		Name:               "resnet-50",
		MeanLatency:        520 * time.Millisecond,
		LatencyJitter:      55 * time.Millisecond,
		EnergyPerInference: 1500,
		Top1Accuracy:       0.96,
	}
)

// Profiles returns the built-in model zoo.
func Profiles() []Profile {
	return []Profile{MobileNetV2, SqueezeNet, InceptionV3, ResNet50}
}

// ProfileByName resolves a zoo profile by name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("dnn: unknown profile %q", name)
}

// Inference is the result of one simulated DNN run.
type Inference struct {
	// Label is the predicted class label.
	Label string
	// Confidence is the model's confidence in Label, derived from the
	// prototype-distance margin.
	Confidence float64
	// Latency is the simulated inference time for this frame.
	Latency time.Duration
	// EnergyMJ is the energy spent, in millijoules.
	EnergyMJ float64
	// Correct reports whether Label matches the classifier's own
	// feature-space decision before error injection. Consumers that
	// need ground truth should compare Label against the workload's
	// true class instead.
	Correct bool
}

// Classifier is the simulated DNN. It is safe for concurrent use.
type Classifier struct {
	profile Profile
	classes *vision.ClassSet
	ex      feature.Extractor
	protos  []feature.Vector
	labels  []string

	mu  sync.Mutex
	rng *rand.Rand
}

// NewClassifier builds a classifier for classes under profile, seeding
// all stochastic behaviour from seed. The classifier's internal feature
// space is higher-resolution than the cache's (16×16 grid + 32-bin
// histogram), reflecting that the DNN sees more than the cheap cache
// descriptor.
func NewClassifier(profile Profile, classes *vision.ClassSet, seed int64) (*Classifier, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	if classes == nil {
		return nil, fmt.Errorf("dnn: nil class set")
	}
	grid := feature.GridExtractor{Cols: 16, Rows: 16}
	hist := feature.HistogramExtractor{Bins: 32}
	ex, err := feature.NewCombinedExtractor(true, grid, hist)
	if err != nil {
		return nil, fmt.Errorf("build extractor: %w", err)
	}
	c := &Classifier{
		profile: profile,
		classes: classes,
		ex:      ex,
		protos:  make([]feature.Vector, classes.NumClasses()),
		labels:  make([]string, classes.NumClasses()),
		rng:     rand.New(rand.NewSource(seed)),
	}
	for i := 0; i < classes.NumClasses(); i++ {
		proto, err := classes.Prototype(i)
		if err != nil {
			return nil, err
		}
		v, err := ex.Extract(proto)
		if err != nil {
			return nil, fmt.Errorf("extract prototype %d: %w", i, err)
		}
		c.protos[i] = v
		c.labels[i] = LabelOf(i)
	}
	return c, nil
}

// LabelOf returns the canonical label string for class index c.
func LabelOf(c int) string { return fmt.Sprintf("class-%d", c) }

// Profile returns the classifier's cost/quality profile.
func (c *Classifier) Profile() Profile { return c.profile }

// Labels returns the label vocabulary in class order.
func (c *Classifier) Labels() []string {
	out := make([]string, len(c.labels))
	copy(out, c.labels)
	return out
}

// Infer classifies im, simulating latency, energy, and top-1 error.
// It performs real feature computation (so wall-clock benchmarks remain
// meaningful) but reports the profile's simulated cost, which callers
// charge to a virtual clock.
func (c *Classifier) Infer(im *vision.Image) (Inference, error) {
	if im == nil {
		return Inference{}, fmt.Errorf("dnn: nil image")
	}
	v, err := c.ex.Extract(im)
	if err != nil {
		return Inference{}, fmt.Errorf("extract: %w", err)
	}
	best := -1
	bestD, secondD := math.Inf(1), math.Inf(1)
	for i, p := range c.protos {
		d := feature.MustEuclidean(v, p)
		switch {
		case d < bestD:
			secondD = bestD
			best, bestD = i, d
		case d < secondD:
			secondD = d
		}
	}
	conf := confidenceFromMargin(bestD, secondD)

	c.mu.Lock()
	latency := c.profile.MeanLatency +
		time.Duration(c.rng.NormFloat64()*float64(c.profile.LatencyJitter))
	misclassify := c.rng.Float64() > c.profile.Top1Accuracy
	var wrong int
	if misclassify && len(c.protos) > 1 {
		wrong = c.rng.Intn(len(c.protos) - 1)
	}
	c.mu.Unlock()

	if latency < c.profile.MeanLatency/2 {
		latency = c.profile.MeanLatency / 2
	}
	label := c.labels[best]
	correct := true
	if misclassify && len(c.protos) > 1 {
		if wrong >= best {
			wrong++
		}
		label = c.labels[wrong]
		correct = false
		conf *= 0.8
	}
	return Inference{
		Label:      label,
		Confidence: conf,
		Latency:    latency,
		EnergyMJ:   c.profile.EnergyPerInference,
		Correct:    correct,
	}, nil
}

// Ranked is one entry of a top-K prediction.
type Ranked struct {
	// Label is the predicted class label.
	Label string
	// Score is a softmax-style share in (0,1]; scores over a top-K
	// list sum to at most 1.
	Score float64
}

// InferTopK returns the K most likely labels for im, best first, using
// a softmax over negated prototype distances. Unlike Infer it does not
// simulate latency/energy or inject label noise — it exposes the
// classifier's raw ranking for consumers that post-process predictions
// (e.g. confidence-aware admission policies).
func (c *Classifier) InferTopK(im *vision.Image, k int) ([]Ranked, error) {
	if im == nil {
		return nil, fmt.Errorf("dnn: nil image")
	}
	if k <= 0 {
		return nil, fmt.Errorf("dnn: k must be positive, got %d", k)
	}
	v, err := c.ex.Extract(im)
	if err != nil {
		return nil, fmt.Errorf("extract: %w", err)
	}
	type scored struct {
		class int
		dist  float64
	}
	all := make([]scored, len(c.protos))
	for i, p := range c.protos {
		all[i] = scored{class: i, dist: feature.MustEuclidean(v, p)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].dist != all[j].dist {
			return all[i].dist < all[j].dist
		}
		return all[i].class < all[j].class
	})
	if k > len(all) {
		k = len(all)
	}
	// Softmax over negated distances with a temperature matched to
	// typical inter-prototype spacing, normalized over ALL classes so
	// scores are comparable across k.
	const temperature = 0.05
	var total float64
	exps := make([]float64, len(all))
	for i, s := range all {
		exps[i] = math.Exp(-s.dist / temperature)
		total += exps[i]
	}
	out := make([]Ranked, 0, k)
	for i := 0; i < k; i++ {
		score := 0.0
		if total > 0 {
			score = exps[i] / total
		}
		out = append(out, Ranked{Label: c.labels[all[i].class], Score: score})
	}
	return out, nil
}

// confidenceFromMargin maps the distance margin between the best and
// second-best prototypes to a confidence in (0.5, 1].
func confidenceFromMargin(best, second float64) float64 {
	if math.IsInf(second, 1) {
		return 1
	}
	if second <= 0 {
		return 0.5
	}
	margin := (second - best) / second
	return 0.5 + 0.5*math.Min(1, math.Max(0, margin)*2)
}
