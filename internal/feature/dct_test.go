package feature

import (
	"math"
	"math/rand"
	"testing"

	"approxcache/internal/vision"
)

func TestNewDCTExtractorValidation(t *testing.T) {
	if _, err := NewDCTExtractor(0, 8); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := NewDCTExtractor(32, 0); err == nil {
		t.Fatal("zero keep accepted")
	}
	if _, err := NewDCTExtractor(8, 16); err == nil {
		t.Fatal("keep > size accepted")
	}
	d, err := NewDCTExtractor(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dim() != 63 {
		t.Fatalf("Dim = %d, want 63", d.Dim())
	}
	if d.Name() != "dct32k8" {
		t.Fatalf("Name = %q", d.Name())
	}
}

func TestDCTExtractErrors(t *testing.T) {
	d := DefaultDCTExtractor()
	if _, err := d.Extract(nil); err == nil {
		t.Fatal("nil image accepted")
	}
	if _, err := d.Extract(vision.NewImage(8, 8)); err == nil {
		t.Fatal("too-small image accepted")
	}
}

func TestDCTUniformImageIsAllZeroAC(t *testing.T) {
	im := vision.NewImage(32, 32)
	for i := range im.Pix {
		im.Pix[i] = 0.7
	}
	d := DefaultDCTExtractor()
	v, err := d.Extract(im)
	if err != nil {
		t.Fatal(err)
	}
	// A constant image has zero AC energy; normalization leaves the
	// zero vector untouched.
	for i, x := range v {
		if math.Abs(x) > 1e-9 {
			t.Fatalf("AC coefficient %d = %v on uniform image", i, x)
		}
	}
}

func TestDCTDeterministicAndUnitNorm(t *testing.T) {
	cs, err := vision.NewClassSet(2, 48, 48, 5)
	if err != nil {
		t.Fatal(err)
	}
	im, err := cs.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}
	d := DefaultDCTExtractor()
	a, err := d.Extract(im)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Extract(im)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("extraction not deterministic")
		}
	}
	if math.Abs(a.Norm()-1) > 1e-9 {
		t.Fatalf("norm = %v", a.Norm())
	}
}

func TestDCTBrightnessInvariance(t *testing.T) {
	cs, err := vision.NewClassSet(1, 48, 48, 7)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := cs.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}
	bright := proto.Clone()
	for i := range bright.Pix {
		// Stay inside [0,1] to avoid clamping nonlinearity.
		bright.Pix[i] = bright.Pix[i]*0.8 + 0.1
	}
	d := DefaultDCTExtractor()
	a, err := d.Extract(proto)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Extract(bright)
	if err != nil {
		t.Fatal(err)
	}
	// DC was dropped and the vector normalized, so an affine
	// brightness change barely moves the descriptor.
	if dist := MustEuclidean(a, b); dist > 0.05 {
		t.Fatalf("brightness shifted descriptor by %v", dist)
	}
	// The grid descriptor, by contrast, is NOT brightness invariant;
	// this is the DCT descriptor's selling point.
	g := GridExtractor{Cols: 8, Rows: 8}
	ga, err := g.Extract(proto)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := g.Extract(bright)
	if err != nil {
		t.Fatal(err)
	}
	if MustEuclidean(ga.Normalized(), gb.Normalized()) < MustEuclidean(a, b) {
		t.Skip("grid happened to be more stable on this image; acceptable")
	}
}

func TestDCTSeparatesClasses(t *testing.T) {
	cs, err := vision.NewClassSet(4, 48, 48, 11)
	if err != nil {
		t.Fatal(err)
	}
	d := DefaultDCTExtractor()
	rng := rand.New(rand.NewSource(3))
	var intra, inter float64
	var intraN, interN int
	const perClass = 6
	vecs := make(map[int][]Vector)
	for c := 0; c < 4; c++ {
		for i := 0; i < perClass; i++ {
			im, err := cs.Render(c, vision.DefaultPerturbation(), rng)
			if err != nil {
				t.Fatal(err)
			}
			v, err := d.Extract(im)
			if err != nil {
				t.Fatal(err)
			}
			vecs[c] = append(vecs[c], v)
		}
	}
	for c1, vs1 := range vecs {
		for c2, vs2 := range vecs {
			for i := range vs1 {
				for j := range vs2 {
					if c1 == c2 && i >= j {
						continue
					}
					dd := MustEuclidean(vs1[i], vs2[j])
					if c1 == c2 {
						intra += dd
						intraN++
					} else {
						inter += dd
						interN++
					}
				}
			}
		}
	}
	intra /= float64(intraN)
	inter /= float64(interN)
	if intra*2 > inter {
		t.Fatalf("weak separation: intra=%v inter=%v", intra, inter)
	}
}

// The DCT descriptor works as a drop-in cache key through the combined
// extractor plumbing.
func TestDCTInCombinedExtractor(t *testing.T) {
	c, err := NewCombinedExtractor(true, DefaultDCTExtractor(), HistogramExtractor{Bins: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Dim() != 63+8 {
		t.Fatalf("Dim = %d", c.Dim())
	}
	cs, err := vision.NewClassSet(2, 48, 48, 13)
	if err != nil {
		t.Fatal(err)
	}
	im, err := cs.Prototype(1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Extract(im)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 71 {
		t.Fatalf("len = %d", len(v))
	}
}
