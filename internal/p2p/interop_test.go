package p2p

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"approxcache/internal/cachestore"
	"approxcache/internal/feature"
	"approxcache/internal/lsh"
	"approxcache/internal/simclock"
	"approxcache/internal/simnet"
)

// newVersionedPair builds one service and one client on a lossless
// simnet, with either side optionally pinned to the v1 wire protocol.
func newVersionedPair(t *testing.T, clientV1, serviceV1 bool) (*Client, *Service) {
	t.Helper()
	net, err := simnet.New(simnet.LinkProfile{Latency: 2 * time.Millisecond}, 3)
	if err != nil {
		t.Fatal(err)
	}
	scfg := DefaultServiceConfig("peer-a")
	scfg.WireV1Only = serviceV1
	svc, err := NewService(scfg, newStore(t, 32))
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterService(net, svc); err != nil {
		t.Fatal(err)
	}
	tr, err := NewSimnetTransport("self", net)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := DefaultClientConfig()
	ccfg.WireV1Only = clientV1
	ccfg.Clock = simclock.NewVirtual(time.Unix(0, 0))
	cl, err := NewClient(ccfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetPeers([]string{"peer-a"})
	return cl, svc
}

// TestCrossVersionInterop exercises every message kind across all four
// client/service version pairings: a v2 node must speak byte-compatible
// v1 to legacy peers, and a legacy node must never see a v2 frame.
func TestCrossVersionInterop(t *testing.T) {
	cases := []struct{ clientV1, serviceV1 bool }{
		{false, false}, // v2 <-> v2
		{false, true},  // v2 client, legacy service
		{true, false},  // legacy client, v2 service
		{true, true},   // legacy <-> legacy
	}
	for _, tc := range cases {
		name := map[bool]string{true: "v1", false: "v2"}
		t.Run(name[tc.clientV1]+"-client_"+name[tc.serviceV1]+"-service", func(t *testing.T) {
			cl, svc := newVersionedPair(t, tc.clientV1, tc.serviceV1)
			if _, err := svc.Store().Insert(feature.Vector{1, 0}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
				t.Fatal(err)
			}
			// Ping (negotiation happens here for v2-capable clients).
			pong, _, err := cl.Ping("self", "peer-a")
			if err != nil {
				t.Fatal(err)
			}
			if pong.From != "peer-a" || pong.Entries != 1 {
				t.Fatalf("pong = %+v", pong)
			}
			// Query / QueryResp.
			out, err := cl.QueryFrame(feature.Vector{1, 0.01}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Found || out.Hit.Label != "cat" {
				t.Fatalf("query outcome = %+v", out)
			}
			// Gossip / Ack.
			if _, err := cl.Gossip(feature.Vector{0, 1}, "dog", 0.9, time.Millisecond); err != nil {
				t.Fatal(err)
			}
			if got := svc.Store().Len(); got != 2 {
				t.Fatalf("store len after gossip = %d", got)
			}
			// Digest fetch (delta-based on the v2<->v2 pairing).
			dig, _, err := cl.FetchDigest("peer-a")
			if err != nil {
				t.Fatal(err)
			}
			if len(dig.Centroids) == 0 {
				t.Fatal("empty digest")
			}
			// Refetch exercises the delta path when negotiated.
			if _, _, err := cl.FetchDigest("peer-a"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestNegotiationPinsVersion(t *testing.T) {
	// Against a v2-capable service the first ping settles v2, and the
	// client's energy-model sizes switch to the compact encoding.
	cl, _ := newVersionedPair(t, false, false)
	if got, want := cl.QueryWireSize(80), QueryWireSize(80); got != want {
		t.Fatalf("pre-negotiation size %d, want conservative v1 %d", got, want)
	}
	if _, _, err := cl.Ping("self", "peer-a"); err != nil {
		t.Fatal(err)
	}
	if got, want := cl.QueryWireSize(80), QueryWireSizeV2(80); got != want {
		t.Fatalf("post-negotiation size %d, want v2 %d", got, want)
	}
	if got, want := cl.GossipWireSize(80, 3), GossipWireSizeV2(80, 3); got != want {
		t.Fatalf("gossip size %d, want v2 %d", got, want)
	}
}

func TestNegotiationFallsBackToV1(t *testing.T) {
	cl, _ := newVersionedPair(t, false, true)
	if _, _, err := cl.Ping("self", "peer-a"); err != nil {
		t.Fatal(err)
	}
	// Fallback pinned v1: sizes must stay conservative.
	if got, want := cl.QueryWireSize(80), QueryWireSize(80); got != want {
		t.Fatalf("size after v1 fallback %d, want %d", got, want)
	}
	// Subsequent pings must not re-probe v2 (would double error counts);
	// a second ping succeeds immediately.
	if _, _, err := cl.Ping("self", "peer-a"); err != nil {
		t.Fatal(err)
	}
}

func TestV1OnlyServiceRejectsV2Frame(t *testing.T) {
	scfg := DefaultServiceConfig("legacy")
	scfg.WireV1Only = true
	svc, err := NewService(scfg, newStore(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := AppendEncodeV2(nil, Ping{From: "self"})
	if err != nil {
		t.Fatal(err)
	}
	_, herr := svc.HandleRaw("self", raw)
	if !errors.Is(herr, ErrWireVersion) {
		t.Fatalf("err = %v, want ErrWireVersion", herr)
	}
	if Classify(herr) != ErrClassBadResponse {
		t.Fatalf("class = %v", Classify(herr))
	}
}

// TestQuantizedVoteDifferential bounds the label disagreement between
// v2 (quantized) and v1 (float64) peer answers on the same content:
// compressing the query vector must not flip votes.
func TestQuantizedVoteDifferential(t *testing.T) {
	const dim, entries, queries = 16, 60, 300
	rng := rand.New(rand.NewSource(5))
	centers := make([]feature.Vector, 4)
	for i := range centers {
		c := make(feature.Vector, dim)
		for d := range c {
			c[d] = rng.NormFloat64()
		}
		c.Normalize()
		centers[i] = c
	}
	perturbed := func(i int, sigma float64) feature.Vector {
		v := centers[i].Clone()
		for d := range v {
			v[d] += rng.NormFloat64() * sigma
		}
		v.Normalize()
		return v
	}
	// Two services with identical content, one per protocol dialect.
	build := func(v1 bool, seed int64) *Client {
		net, err := simnet.New(simnet.LinkProfile{Latency: time.Millisecond}, seed)
		if err != nil {
			t.Fatal(err)
		}
		st := newStoreDim(t, dim, 4*entries)
		r2 := rand.New(rand.NewSource(99))
		for j := 0; j < entries; j++ {
			i := r2.Intn(len(centers))
			v := centers[i].Clone()
			for d := range v {
				v[d] += r2.NormFloat64() * 0.02
			}
			v.Normalize()
			if _, err := st.Insert(v, diffLabel(i), 0.9, "dnn", time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		scfg := DefaultServiceConfig("peer-a")
		scfg.WireV1Only = v1
		svc, err := NewService(scfg, st)
		if err != nil {
			t.Fatal(err)
		}
		if err := RegisterService(net, svc); err != nil {
			t.Fatal(err)
		}
		tr, err := NewSimnetTransport("self", net)
		if err != nil {
			t.Fatal(err)
		}
		ccfg := DefaultClientConfig()
		ccfg.WireV1Only = v1
		cl, err := NewClient(ccfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		cl.SetPeers([]string{"peer-a"})
		if !v1 {
			if _, _, err := cl.Ping("self", "peer-a"); err != nil {
				t.Fatal(err)
			}
		}
		return cl
	}
	legacy := build(true, 21)
	compact := build(false, 21)
	disagree := 0
	for q := 0; q < queries; q++ {
		vec := perturbed(rng.Intn(len(centers)), 0.02)
		o1, err := legacy.QueryFrame(vec, 0)
		if err != nil {
			t.Fatal(err)
		}
		o2, err := compact.QueryFrame(vec, 0)
		if err != nil {
			t.Fatal(err)
		}
		if o1.Found != o2.Found || (o1.Found && o1.Hit.Label != o2.Hit.Label) {
			disagree++
		}
	}
	if max := queries / 50; disagree > max { // 2%
		t.Fatalf("quantized answers disagreed on %d/%d queries (budget %d)", disagree, queries, max)
	}
}

func diffLabel(i int) string { return "class-" + string(rune('a'+i)) }

func newStoreDim(t *testing.T, dim, capacity int) *cachestore.Store {
	t.Helper()
	idx, err := lsh.NewExact(dim)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cachestore.New(cachestore.Config{Capacity: capacity}, idx,
		simclock.NewVirtual(time.Unix(0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}
