package simnet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func lossless() LinkProfile {
	return LinkProfile{Latency: 5 * time.Millisecond, BandwidthBps: 1 << 20}
}

func echoHandler(prefix string) Handler {
	return func(from NodeID, req []byte) ([]byte, error) {
		return append([]byte(prefix), req...), nil
	}
}

func TestLinkProfileValidate(t *testing.T) {
	if err := DefaultLinkProfile().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []LinkProfile{
		{Latency: -1},
		{Jitter: -1},
		{LossProb: -0.1},
		{LossProb: 1},
		{BandwidthBps: -5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestNewRejectsBadDefault(t *testing.T) {
	if _, err := New(LinkProfile{LossProb: 1}, 1); err == nil {
		t.Fatal("bad default accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	n, err := New(lossless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Register("", echoHandler("x")); err == nil {
		t.Fatal("empty id accepted")
	}
	if err := n.Register("a", nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestCallRoundTrip(t *testing.T) {
	n, err := New(lossless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", echoHandler("echo:")); err != nil {
		t.Fatal(err)
	}
	resp, rtt, err := n.Call("a", "b", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:hi" {
		t.Fatalf("resp = %q", resp)
	}
	if rtt < 10*time.Millisecond {
		t.Fatalf("rtt %v below 2× propagation", rtt)
	}
	delivered, lost := n.Stats()
	if delivered != 2 || lost != 0 {
		t.Fatalf("stats = %d/%d", delivered, lost)
	}
}

func TestCallUnknownNode(t *testing.T) {
	n, err := New(lossless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.Call("a", "ghost", nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
	if _, err := n.Send("a", "ghost", nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("send err = %v", err)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	n, err := New(lossless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := n.Register("b", func(NodeID, []byte) ([]byte, error) { return nil, boom }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.Call("a", "b", nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestLossyLinkEventuallyLoses(t *testing.T) {
	p := lossless()
	p.LossProb = 0.5
	n, err := New(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", echoHandler("")); err != nil {
		t.Fatal(err)
	}
	losses := 0
	for i := 0; i < 100; i++ {
		if _, _, err := n.Call("a", "b", []byte("x")); errors.Is(err, ErrLost) {
			losses++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if losses < 40 || losses > 95 {
		t.Fatalf("losses = %d/100, want ~75 (loss both directions)", losses)
	}
	_, lost := n.Stats()
	if lost != losses {
		t.Fatalf("loss accounting mismatch: %d vs %d", lost, losses)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n, err := New(lossless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", echoHandler("")); err != nil {
		t.Fatal(err)
	}
	n.Partition("a", "b")
	if _, _, err := n.Call("a", "b", nil); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("err = %v", err)
	}
	if _, err := n.Send("b", "a", nil); !errors.Is(err, ErrPartitioned) {
		// Send to "a" fails on unknown node first; register it.
		if !errors.Is(err, ErrUnknownNode) {
			t.Fatalf("err = %v", err)
		}
	}
	n.Heal("a", "b")
	if _, _, err := n.Call("a", "b", nil); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestSetLinkOverridesLatency(t *testing.T) {
	n, err := New(lossless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", echoHandler("")); err != nil {
		t.Fatal(err)
	}
	slow := LinkProfile{Latency: 100 * time.Millisecond}
	if err := n.SetLink("a", "b", slow); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLink("b", "a", slow); err != nil {
		t.Fatal(err)
	}
	_, rtt, err := n.Call("a", "b", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if rtt < 200*time.Millisecond {
		t.Fatalf("rtt = %v, want >= 200ms", rtt)
	}
	if err := n.SetLink("a", "b", LinkProfile{LossProb: -1}); err == nil {
		t.Fatal("invalid link accepted")
	}
}

func TestTransmissionTimeScalesWithSize(t *testing.T) {
	p := LinkProfile{BandwidthBps: 1000} // 1 KB/s: 1000 bytes = 1 s
	n, err := New(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", func(NodeID, []byte) ([]byte, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	small, err := n.Send("a", "b", make([]byte, 10))
	if err != nil {
		t.Fatal(err)
	}
	big, err := n.Send("a", "b", make([]byte, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if big <= small || big < 900*time.Millisecond {
		t.Fatalf("transmission not size-proportional: small=%v big=%v", small, big)
	}
}

func TestSendDeliversPayload(t *testing.T) {
	n, err := New(lossless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	var mu sync.Mutex
	if err := n.Register("b", func(from NodeID, req []byte) ([]byte, error) {
		mu.Lock()
		defer mu.Unlock()
		got = append([]byte(nil), req...)
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Send("a", "b", []byte("gossip")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if string(got) != "gossip" {
		t.Fatalf("payload = %q", got)
	}
}

func TestNodesAndUnregister(t *testing.T) {
	n, err := New(lossless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := n.Register(NodeID(fmt.Sprintf("n%d", i)), echoHandler("")); err != nil {
			t.Fatal(err)
		}
	}
	if len(n.Nodes()) != 3 {
		t.Fatalf("nodes = %v", n.Nodes())
	}
	n.Unregister("n1")
	if len(n.Nodes()) != 2 {
		t.Fatalf("nodes after unregister = %v", n.Nodes())
	}
}

func TestDeadCost(t *testing.T) {
	n, err := New(lossless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", echoHandler("")); err != nil {
		t.Fatal(err)
	}
	// Default: dead calls fail instantly.
	_, rtt, err := n.Call("a", "ghost", nil)
	if !errors.Is(err, ErrUnknownNode) || rtt != 0 {
		t.Fatalf("default dead call: rtt=%v err=%v", rtt, err)
	}
	n.SetDeadCost(100 * time.Millisecond)
	_, rtt, err = n.Call("a", "ghost", nil)
	if !errors.Is(err, ErrUnknownNode) || rtt != 100*time.Millisecond {
		t.Fatalf("dead call: rtt=%v err=%v", rtt, err)
	}
	n.Partition("a", "b")
	_, rtt, err = n.Call("a", "b", nil)
	if !errors.Is(err, ErrPartitioned) || rtt != 100*time.Millisecond {
		t.Fatalf("partitioned call: rtt=%v err=%v", rtt, err)
	}
	if cost, err := n.Send("a", "b", nil); !errors.Is(err, ErrPartitioned) || cost != 100*time.Millisecond {
		t.Fatalf("partitioned send: cost=%v err=%v", cost, err)
	}
	n.SetDeadCost(-time.Second) // clamps to 0
	if _, rtt, _ := n.Call("a", "ghost", nil); rtt != 0 {
		t.Fatalf("negative dead cost not clamped: %v", rtt)
	}
}

func TestConcurrentCalls(t *testing.T) {
	n, err := New(lossless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", echoHandler("")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, _, err := n.Call("a", "b", []byte("x")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
