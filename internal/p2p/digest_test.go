package p2p

import (
	"math/rand"
	"testing"
	"time"

	"approxcache/internal/feature"
)

func clusterVec(r *rand.Rand, center feature.Vector, spread float64) feature.Vector {
	v := center.Clone()
	for i := range v {
		v[i] += r.NormFloat64() * spread
	}
	return v
}

func TestBuildDigestValidation(t *testing.T) {
	if _, err := BuildDigest(nil, 0, 4); err == nil {
		t.Fatal("zero radius accepted")
	}
	if _, err := BuildDigest(nil, 0.1, 0); err == nil {
		t.Fatal("zero centroids accepted")
	}
	if _, err := BuildDigest(nil, 0.1, MaxDigestCentroids+1); err == nil {
		t.Fatal("too many centroids accepted")
	}
	d, err := BuildDigest(nil, 0.1, 4)
	if err != nil || len(d.Centroids) != 0 {
		t.Fatalf("empty digest = %+v, %v", d, err)
	}
}

func TestBuildDigestClusters(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	centerA := feature.Vector{1, 0, 0}
	centerB := feature.Vector{0, 1, 0}
	var vecs []feature.Vector
	for i := 0; i < 20; i++ {
		vecs = append(vecs, clusterVec(r, centerA, 0.02))
		vecs = append(vecs, clusterVec(r, centerB, 0.02))
	}
	vecs = append(vecs, nil) // skipped
	d, err := BuildDigest(vecs, 0.25, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Centroids) != 2 {
		t.Fatalf("centroids = %d, want 2", len(d.Centroids))
	}
	// Each true center is near one centroid.
	for _, center := range []feature.Vector{centerA, centerB} {
		if !d.MayCover(center, 0.1, 0) {
			t.Fatalf("center %v not covered by %v", center, d.Centroids)
		}
	}
	// A far point is not covered.
	if d.MayCover(feature.Vector{-1, -1, 0}, 0.25, 0.25) {
		t.Fatal("far point covered")
	}
}

func TestBuildDigestCapsOutliers(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var vecs []feature.Vector
	for i := 0; i < 40; i++ {
		// Every vector far from every other: one cluster each.
		v := make(feature.Vector, 8)
		for d := range v {
			v[d] = r.Float64() * 100
		}
		vecs = append(vecs, v)
	}
	d, err := BuildDigest(vecs, 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Centroids) != 4 {
		t.Fatalf("centroids = %d, want capped 4", len(d.Centroids))
	}
}

func TestDigestWireRoundTrip(t *testing.T) {
	in := DigestResp{Digest: Digest{Centroids: []feature.Vector{
		{1, 2, 3},
		{-0.5, 0.25, 0.125},
	}}}
	b, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := msg.(DigestResp)
	if !ok || len(out.Digest.Centroids) != 2 {
		t.Fatalf("out = %+v", msg)
	}
	for i, c := range in.Digest.Centroids {
		for j := range c {
			if out.Digest.Centroids[i][j] != c[j] {
				t.Fatal("centroid mismatch")
			}
		}
	}
	// Request round trip.
	rb, err := Encode(DigestReq{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mustDecode(t, rb).(DigestReq); !ok {
		t.Fatal("digest req round trip failed")
	}
	// Truncations rejected.
	for cut := 1; cut < len(b); cut++ {
		if _, err := Decode(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func mustDecode(t *testing.T, b []byte) Message {
	t.Helper()
	m, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestServiceHandleDigestReq(t *testing.T) {
	svc := newService(t)
	if _, err := svc.Store().Insert(feature.Vector{1, 0}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Store().Insert(feature.Vector{1, 0.01}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Store().Insert(feature.Vector{-1, 0}, "dog", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	resp, err := svc.HandleDigestReq(DigestReq{})
	if err != nil {
		t.Fatal(err)
	}
	// Two tight groups → two centroids.
	if len(resp.Digest.Centroids) != 2 {
		t.Fatalf("centroids = %d", len(resp.Digest.Centroids))
	}
	// Raw dispatch path works too.
	req, err := Encode(DigestReq{})
	if err != nil {
		t.Fatal(err)
	}
	respB, err := svc.HandleRaw("x", req)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mustDecode(t, respB).(DigestResp); !ok {
		t.Fatal("raw digest dispatch failed")
	}
}

func TestClientDigestPrefilter(t *testing.T) {
	cl, services, _ := newSimCluster(t, 2)
	// peer-a only knows about the region near (1,0); peer-b near (0,1).
	if _, err := services[0].Store().Insert(feature.Vector{1, 0}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := services[1].Store().Insert(feature.Vector{0, 1}, "dog", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, peer := range cl.Peers() {
		if _, _, err := cl.FetchDigest(peer); err != nil {
			t.Fatal(err)
		}
	}
	// Query near (0,1): peer-a's digest rules it out, so only one
	// query goes out, and it still hits.
	hit, _, found, err := cl.Query(feature.Vector{0, 1.01})
	if err != nil {
		t.Fatal(err)
	}
	if !found || hit.Peer != "peer-b" {
		t.Fatalf("hit = %+v found=%v", hit, found)
	}
	if cl.SkippedQueries() != 1 {
		t.Fatalf("skipped = %d, want 1", cl.SkippedQueries())
	}
	// Dropping the digest restores full fan-out.
	cl.DropDigest("peer-a")
	if _, _, _, err := cl.Query(feature.Vector{0, 1.01}); err != nil {
		t.Fatal(err)
	}
	if cl.SkippedQueries() != 1 {
		t.Fatalf("skipped after drop = %d, want still 1", cl.SkippedQueries())
	}
}

func TestClientQueryWithoutDigestsUnchanged(t *testing.T) {
	cl, services, _ := newSimCluster(t, 2)
	if _, err := services[1].Store().Insert(feature.Vector{0, 1}, "dog", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, _, found, err := cl.Query(feature.Vector{0, 1}); err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if cl.SkippedQueries() != 0 {
		t.Fatal("queries skipped without digests")
	}
}
