// Package battery models a smartphone battery as an energy budget, so
// the evaluation can translate per-frame energy into the number the
// user actually feels: how long continuous recognition runs on one
// charge.
package battery

import (
	"fmt"
	"sync"
	"time"
)

// Profile describes a battery.
type Profile struct {
	// Name identifies the battery in reports.
	Name string
	// CapacityMAh is the rated capacity in milliamp-hours.
	CapacityMAh float64
	// VoltageV is the nominal voltage.
	VoltageV float64
	// RecognitionShare is the fraction of the battery the
	// recognition workload may spend (screens, radios, and the OS
	// take the rest). In (0, 1].
	RecognitionShare float64
}

// Validate reports whether the profile is usable.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("battery: profile needs a name")
	}
	if p.CapacityMAh <= 0 {
		return fmt.Errorf("battery: capacity must be positive, got %v", p.CapacityMAh)
	}
	if p.VoltageV <= 0 {
		return fmt.Errorf("battery: voltage must be positive, got %v", p.VoltageV)
	}
	if p.RecognitionShare <= 0 || p.RecognitionShare > 1 {
		return fmt.Errorf("battery: recognition share must be in (0,1], got %v",
			p.RecognitionShare)
	}
	return nil
}

// TypicalPhone is a 2020-era mid-range phone battery: 3500 mAh at
// 3.85 V with 30% of the charge budgeted to the recognition app.
func TypicalPhone() Profile {
	return Profile{
		Name:             "typical-phone",
		CapacityMAh:      3500,
		VoltageV:         3.85,
		RecognitionShare: 0.3,
	}
}

// BudgetMJ returns the recognition energy budget in millijoules:
// mAh × 3.6 gives coulombs (A·s scaled to mA·h), times volts gives
// joules, ×1000 for mJ, scaled by the recognition share.
func (p Profile) BudgetMJ() float64 {
	return p.CapacityMAh * 3.6 * p.VoltageV * 1000 * p.RecognitionShare
}

// FramesOnCharge returns how many frames a workload costing
// energyPerFrameMJ can process on one charge.
func (p Profile) FramesOnCharge(energyPerFrameMJ float64) float64 {
	if energyPerFrameMJ <= 0 {
		return 0
	}
	return p.BudgetMJ() / energyPerFrameMJ
}

// RuntimeOnCharge returns how long continuous recognition at fps runs
// on one charge.
func (p Profile) RuntimeOnCharge(energyPerFrameMJ float64, fps int) time.Duration {
	if fps <= 0 {
		return 0
	}
	frames := p.FramesOnCharge(energyPerFrameMJ)
	return time.Duration(frames / float64(fps) * float64(time.Second))
}

// Meter tracks a live discharge. Meter is safe for concurrent use.
type Meter struct {
	profile Profile

	mu      sync.Mutex
	spentMJ float64
}

// NewMeter builds a discharge meter over profile.
func NewMeter(profile Profile) (*Meter, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	return &Meter{profile: profile}, nil
}

// Drain records spending mj millijoules. Negative values are ignored.
func (m *Meter) Drain(mj float64) {
	if mj <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.spentMJ += mj
}

// SpentMJ returns the energy drained so far.
func (m *Meter) SpentMJ() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.spentMJ
}

// Remaining returns the fraction of the recognition budget left,
// clamped to [0, 1].
func (m *Meter) Remaining() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	left := 1 - m.spentMJ/m.profile.BudgetMJ()
	if left < 0 {
		return 0
	}
	return left
}

// Empty reports whether the budget is exhausted.
func (m *Meter) Empty() bool { return m.Remaining() == 0 }
