package cachestore

import (
	"sync"
	"testing"
	"time"

	"approxcache/internal/lsh"
	"approxcache/internal/simclock"
)

func TestNearestIntoMatchesNearest(t *testing.T) {
	s, _ := newTestStore(t, Config{Capacity: 16})
	for i := 0; i < 8; i++ {
		if _, err := s.Insert(vec(float64(i), 0), "label", 0.9, "local", 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	q := vec(3.2, 0)
	want, err := s.Nearest(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]lsh.Neighbor, 0, 4)
	got, err := s.NearestInto(q, 4, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d neighbors, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("neighbor %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if len(got) > 0 && &got[0] != &dst[:1][0] {
		t.Fatal("NearestInto did not reuse dst")
	}
}

// TestNearestIntoPurgesExpired checks the RLock-scan/Lock-purge upgrade:
// a lookup after TTL expiry must not see stale entries.
func TestNearestIntoPurgesExpired(t *testing.T) {
	s, clk := newTestStore(t, Config{Capacity: 16, TTL: time.Second})
	if _, err := s.Insert(vec(1, 0), "stale", 0.9, "local", 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	ns, err := s.NearestInto(vec(1, 0), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 0 {
		t.Fatalf("expired entry surfaced: %+v", ns)
	}
	if got := s.Expiries(); got != 1 {
		t.Fatalf("Expiries = %d, want 1", got)
	}
}

// TestStoreConcurrentAccess exercises the read/write lock split under
// -race: lookups, stats snapshots, and inserts in parallel.
func TestStoreConcurrentAccess(t *testing.T) {
	idx, err := lsh.NewHyperplane(2, 4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.NewVirtual(time.Unix(0, 0))
	s, err := New(Config{Capacity: 64, TTL: time.Minute}, idx, clk)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := s.Insert(vec(float64(w), float64(i%17)), "l", 0.9, "local", time.Millisecond); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			dst := make([]lsh.Neighbor, 0, 4)
			for i := 0; i < 200; i++ {
				ns, err := s.NearestInto(vec(float64(r), float64(i%17)), 4, dst)
				if err != nil {
					t.Error(err)
					return
				}
				dst = ns[:0]
				s.Stats()
				s.Len()
			}
		}(r)
	}
	wg.Wait()
	if s.Len() == 0 {
		t.Fatal("store empty after concurrent inserts")
	}
}
