package lsh

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"approxcache/internal/feature"
)

func randUnit(r *rand.Rand, dim int) feature.Vector {
	v := make(feature.Vector, dim)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	v.Normalize()
	return v
}

func TestNewHyperplaneValidation(t *testing.T) {
	tests := []struct {
		name              string
		dim, bits, tables int
	}{
		{"zero dim", 0, 8, 2},
		{"zero bits", 8, 0, 2},
		{"too many bits", 8, 65, 2},
		{"zero tables", 8, 8, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewHyperplane(tt.dim, tt.bits, tt.tables, 1); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestInsertDimMismatch(t *testing.T) {
	x, err := NewHyperplane(4, 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Insert(1, feature.Vector{1, 2}); !errors.Is(err, feature.ErrDimensionMismatch) {
		t.Fatalf("err = %v, want dimension mismatch", err)
	}
	if _, err := x.Candidates(feature.Vector{1}); !errors.Is(err, feature.ErrDimensionMismatch) {
		t.Fatalf("candidates err = %v", err)
	}
	if _, err := x.Nearest(feature.Vector{1}, 3); !errors.Is(err, feature.ErrDimensionMismatch) {
		t.Fatalf("nearest err = %v", err)
	}
}

func TestInsertRemoveLen(t *testing.T) {
	x, err := NewHyperplane(4, 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := feature.Vector{1, 0, 0, 0}
	if err := x.Insert(1, v); err != nil {
		t.Fatal(err)
	}
	if err := x.Insert(2, v); err != nil {
		t.Fatal(err)
	}
	if x.Len() != 2 {
		t.Fatalf("Len = %d, want 2", x.Len())
	}
	x.Remove(1)
	if x.Len() != 1 {
		t.Fatalf("Len = %d, want 1", x.Len())
	}
	x.Remove(1) // double remove is a no-op
	if x.Len() != 1 {
		t.Fatalf("Len after double remove = %d", x.Len())
	}
	// Removed items never appear as candidates.
	cands, err := x.Candidates(v)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range cands {
		if id == 1 {
			t.Fatal("removed id returned as candidate")
		}
	}
}

func TestInsertReplacesExisting(t *testing.T) {
	x, err := NewHyperplane(4, 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := feature.Vector{1, 0, 0, 0}
	b := feature.Vector{-1, 0, 0, 0}
	if err := x.Insert(1, a); err != nil {
		t.Fatal(err)
	}
	if err := x.Insert(1, b); err != nil {
		t.Fatal(err)
	}
	if x.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after replace", x.Len())
	}
	ns, err := x.Nearest(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || ns[0].Distance > 1e-9 {
		t.Fatalf("replaced vector not found exactly: %+v", ns)
	}
}

func TestInsertDoesNotAliasCaller(t *testing.T) {
	x, err := NewHyperplane(2, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := feature.Vector{1, 0}
	if err := x.Insert(1, v); err != nil {
		t.Fatal(err)
	}
	v[0] = -1 // mutate caller's slice
	ns, err := x.Nearest(feature.Vector{1, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || ns[0].Distance > 1e-9 {
		t.Fatal("index aliased caller's vector")
	}
}

func TestNearestFindsIdenticalVector(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	x, err := NewHyperplane(16, 12, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	vs := make([]feature.Vector, 50)
	for i := range vs {
		vs[i] = randUnit(r, 16)
		if err := x.Insert(ID(i), vs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// An identical query always collides with itself in every table.
	for i, v := range vs {
		ns, err := x.Nearest(v, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(ns) == 0 || ns[0].ID != ID(i) || ns[0].Distance > 1e-9 {
			t.Fatalf("query %d did not find itself: %+v", i, ns)
		}
	}
}

func TestNearestKValidation(t *testing.T) {
	x, err := NewHyperplane(4, 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Nearest(feature.Vector{1, 0, 0, 0}, 0); err == nil {
		t.Fatal("k=0 should error")
	}
	e, err := NewExact(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Nearest(feature.Vector{1, 0, 0, 0}, -1); err == nil {
		t.Fatal("exact k<0 should error")
	}
}

func TestExactIndex(t *testing.T) {
	if _, err := NewExact(0); err == nil {
		t.Fatal("zero dim should error")
	}
	e, err := NewExact(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(1, feature.Vector{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(2, feature.Vector{1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(3, feature.Vector{0, 3}); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(9, feature.Vector{1}); !errors.Is(err, feature.ErrDimensionMismatch) {
		t.Fatalf("dim mismatch err = %v", err)
	}
	ns, err := e.Nearest(feature.Vector{0.1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 2 || ns[0].ID != 1 || ns[1].ID != 2 {
		t.Fatalf("nearest = %+v", ns)
	}
	e.Remove(1)
	if e.Len() != 2 {
		t.Fatalf("Len = %d", e.Len())
	}
	ns, err = e.Nearest(feature.Vector{0.1, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ns[0].ID != 2 {
		t.Fatalf("after remove nearest = %+v", ns)
	}
}

func TestExactNearestDeterministicTieBreak(t *testing.T) {
	e, err := NewExact(1)
	if err != nil {
		t.Fatal(err)
	}
	// Two points equidistant from the query.
	if err := e.Insert(7, feature.Vector{1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(3, feature.Vector{-1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ns, err := e.Nearest(feature.Vector{0}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if ns[0].ID != 3 || ns[1].ID != 7 {
			t.Fatalf("tie break not by ID: %+v", ns)
		}
	}
}

// LSH recall: against exact ground truth over clustered data, the LSH
// nearest neighbor must match the true nearest neighbor most of the
// time. This is the recall guarantee the cache's hit quality rests on.
func TestLSHRecallOnClusteredData(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	const (
		dim      = 32
		clusters = 8
		perC     = 20
	)
	x, err := NewHyperplane(dim, 10, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExact(dim)
	if err != nil {
		t.Fatal(err)
	}
	centers := make([]feature.Vector, clusters)
	for c := range centers {
		centers[c] = randUnit(r, dim)
	}
	id := ID(0)
	for c := 0; c < clusters; c++ {
		for i := 0; i < perC; i++ {
			v := centers[c].Clone()
			for d := range v {
				v[d] += r.NormFloat64() * 0.05
			}
			v.Normalize()
			if err := x.Insert(id, v); err != nil {
				t.Fatal(err)
			}
			if err := e.Insert(id, v); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	const queries = 100
	hits := 0
	for i := 0; i < queries; i++ {
		c := r.Intn(clusters)
		q := centers[c].Clone()
		for d := range q {
			q[d] += r.NormFloat64() * 0.05
		}
		q.Normalize()
		truth, err := e.Nearest(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := x.Nearest(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(approx) > 0 && approx[0].ID == truth[0].ID {
			hits++
		}
	}
	if hits < 70 {
		t.Fatalf("LSH recall@1 = %d/100, want >= 70", hits)
	}
}

func TestStats(t *testing.T) {
	x, err := NewHyperplane(8, 6, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := x.Stats()
	if s.Items != 0 || s.Buckets != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		if err := x.Insert(ID(i), randUnit(r, 8)); err != nil {
			t.Fatal(err)
		}
	}
	s = x.Stats()
	if s.Items != 40 {
		t.Fatalf("Items = %d", s.Items)
	}
	if s.Tables != 3 || s.Bits != 6 {
		t.Fatalf("shape = %+v", s)
	}
	if s.Buckets == 0 || s.MaxBucket == 0 || s.MeanBucket <= 0 {
		t.Fatalf("occupancy not populated: %+v", s)
	}
}

// Property: for any set of vectors, every LSH candidate list contains no
// duplicates and only live IDs, and an identical query's own ID is
// always among its candidates.
func TestCandidatesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 4 + r.Intn(12)
		x, err := NewHyperplane(dim, 8, 3, seed)
		if err != nil {
			return false
		}
		n := 5 + r.Intn(30)
		vs := make([]feature.Vector, n)
		for i := range vs {
			vs[i] = randUnit(r, dim)
			if err := x.Insert(ID(i), vs[i]); err != nil {
				return false
			}
		}
		removed := ID(r.Intn(n))
		x.Remove(removed)
		for i, v := range vs {
			cands, err := x.Candidates(v)
			if err != nil {
				return false
			}
			seen := make(map[ID]struct{}, len(cands))
			selfFound := false
			for _, c := range cands {
				if _, dup := seen[c]; dup {
					return false
				}
				seen[c] = struct{}{}
				if c == removed {
					return false
				}
				if c == ID(i) {
					selfFound = true
				}
			}
			if ID(i) != removed && !selfFound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInsertQuery(t *testing.T) {
	x, err := NewHyperplane(8, 8, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		r := rand.New(rand.NewSource(1))
		for i := 0; i < 500; i++ {
			_ = x.Insert(ID(i), randUnit(r, 8))
			if i%3 == 0 {
				x.Remove(ID(i / 2))
			}
		}
	}()
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		if _, err := x.Nearest(randUnit(r, 8), 3); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}
