package approxcache_test

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"approxcache"
	"approxcache/internal/eval"
	"approxcache/internal/feature"
	"approxcache/internal/imu"
	"approxcache/internal/lsh"
	"approxcache/internal/p2p"
	"approxcache/internal/vision"
)

// ---------------------------------------------------------------------------
// Experiment benches: one per table/figure (E1–E8). Each runs the full
// experiment at a reduced scale and reports the headline metric of its
// table via b.ReportMetric, so `go test -bench .` regenerates the whole
// evaluation in miniature.
// ---------------------------------------------------------------------------

// runExperiment executes experiment id once per iteration and returns
// the last report.
func runExperiment(b *testing.B, id string) eval.Report {
	b.Helper()
	e, err := eval.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var report eval.Report
	for i := 0; i < b.N; i++ {
		report, err = e.Run(eval.SmallScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	return report
}

// cellPct parses a rendered percentage cell ("94.7%") to a float.
func cellPct(b *testing.B, cell string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		b.Fatalf("parse %q: %v", cell, err)
	}
	return v
}

// BenchmarkE1HeadlineLatency regenerates the E1 table (latency by
// system) and reports the headline latency reduction of the full
// pipeline.
func BenchmarkE1HeadlineLatency(b *testing.B) {
	report := runExperiment(b, "E1")
	for _, row := range report.Rows {
		if row[0] == "approx (full, 2 peers)" {
			b.ReportMetric(cellPct(b, row[len(row)-1]), "reduction-%")
		}
	}
}

// BenchmarkE2ThresholdSweep regenerates the accuracy-vs-threshold series
// and reports the accuracy at the default operating point (0.25).
func BenchmarkE2ThresholdSweep(b *testing.B) {
	report := runExperiment(b, "E2")
	for _, row := range report.Rows {
		if row[0] == "0.25" {
			b.ReportMetric(cellPct(b, row[3]), "accuracy-%")
		}
	}
}

// BenchmarkE3HitBreakdown regenerates the per-source hit table and
// reports the stationary-heavy IMU share.
func BenchmarkE3HitBreakdown(b *testing.B) {
	report := runExperiment(b, "E3")
	for _, row := range report.Rows {
		if row[0] == "stationary-heavy" {
			b.ReportMetric(cellPct(b, row[1]), "imu-share-%")
		}
	}
}

// BenchmarkE4PeerSweep regenerates the peers series and reports the
// 8-peer hit rate.
func BenchmarkE4PeerSweep(b *testing.B) {
	report := runExperiment(b, "E4")
	last := report.Rows[len(report.Rows)-1]
	b.ReportMetric(cellPct(b, last[3]), "hit-rate-%")
}

// BenchmarkE5CapacitySweep regenerates the capacity×policy table and
// reports the smallest-capacity cost-aware hit rate.
func BenchmarkE5CapacitySweep(b *testing.B) {
	report := runExperiment(b, "E5")
	for _, row := range report.Rows {
		if row[0] == "8" && row[1] == "cost-aware" {
			b.ReportMetric(cellPct(b, row[2]), "hit-rate-%")
		}
	}
}

// BenchmarkE6Energy regenerates the energy table and reports the
// approx/no-cache energy ratio.
func BenchmarkE6Energy(b *testing.B) {
	report := runExperiment(b, "E6")
	var base, local float64
	for _, row := range report.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			b.Fatal(err)
		}
		switch row[0] {
		case "no-cache":
			base = v
		case "approx (local)":
			local = v
		}
	}
	if base > 0 {
		b.ReportMetric(local/base*100, "energy-ratio-%")
	}
}

// BenchmarkE7LSHAblation regenerates the LSH table and reports recall
// at the production point (12 bits × 4 tables).
func BenchmarkE7LSHAblation(b *testing.B) {
	report := runExperiment(b, "E7")
	for _, row := range report.Rows {
		if row[0] == "12" && row[1] == "4" {
			b.ReportMetric(cellPct(b, row[2]), "recall-%")
		}
	}
}

// BenchmarkE8MotionGate regenerates the inertial-threshold sweep and
// reports accuracy at the default scale (1.0).
func BenchmarkE8MotionGate(b *testing.B) {
	report := runExperiment(b, "E8")
	for _, row := range report.Rows {
		if row[0] == "1.00" {
			b.ReportMetric(cellPct(b, row[4]), "accuracy-%")
		}
	}
}

// BenchmarkE9AdaptiveLSH regenerates the adaptive-vs-plain index table
// and reports the adaptive index's candidate-set shrink factor.
func BenchmarkE9AdaptiveLSH(b *testing.B) {
	report := runExperiment(b, "E9")
	plain, err := strconv.ParseFloat(report.Rows[0][2], 64)
	if err != nil {
		b.Fatal(err)
	}
	adaptive, err := strconv.ParseFloat(report.Rows[1][2], 64)
	if err != nil {
		b.Fatal(err)
	}
	if adaptive > 0 {
		b.ReportMetric(plain/adaptive, "candidate-shrink-x")
	}
}

// BenchmarkE10ModelSweep regenerates the model-zoo table and reports
// the ResNet50-class latency reduction.
func BenchmarkE10ModelSweep(b *testing.B) {
	report := runExperiment(b, "E10")
	for _, row := range report.Rows {
		if row[0] == "resnet-50" {
			b.ReportMetric(cellPct(b, row[3]), "reduction-%")
		}
	}
}

// BenchmarkE11Robustness regenerates the degradation table and reports
// hard-perturbation accuracy on the stationary-heavy workload.
func BenchmarkE11Robustness(b *testing.B) {
	report := runExperiment(b, "E11")
	for _, row := range report.Rows {
		if row[0] == "stationary-heavy" && row[1] == "hard" {
			b.ReportMetric(cellPct(b, row[3]), "accuracy-%")
		}
	}
}

// BenchmarkE12LossyNetwork regenerates the degraded-link table and
// reports the 50%-loss hit rate.
func BenchmarkE12LossyNetwork(b *testing.B) {
	report := runExperiment(b, "E12")
	last := report.Rows[len(report.Rows)-1]
	b.ReportMetric(cellPct(b, last[3]), "hit-rate-%")
}

// BenchmarkE13Battery regenerates the battery table and reports the
// runtime multiplier on one charge.
func BenchmarkE13Battery(b *testing.B) {
	report := runExperiment(b, "E13")
	gain := strings.TrimSuffix(report.Rows[1][4], "×")
	v, err := strconv.ParseFloat(gain, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(v, "battery-gain-x")
}

// BenchmarkE14GateGrid regenerates the gate-ablation grid and reports
// the full stack's mean latency advantage over feature-cache-only.
func BenchmarkE14GateGrid(b *testing.B) {
	report := runExperiment(b, "E14")
	var full, featureOnly float64
	for _, row := range report.Rows {
		ms, err := strconv.ParseFloat(strings.TrimSuffix(row[len(row)-1], "ms"), 64)
		if err != nil {
			b.Fatal(err)
		}
		switch row[0] {
		case "full (4 keyframes)":
			full = ms
		case "feature cache only":
			featureOnly = ms
		}
	}
	if full > 0 {
		b.ReportMetric(featureOnly/full, "gate-speedup-x")
	}
}

// BenchmarkE15LatencyCDF regenerates the latency-distribution figure
// and reports the approx system's p95 (the edge of the reuse mass).
func BenchmarkE15LatencyCDF(b *testing.B) {
	report := runExperiment(b, "E15")
	for _, row := range report.Rows {
		if row[0] == "p95" {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "ms"), 64)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(v, "approx-p95-ms")
		}
	}
}

// BenchmarkE16DigestFilter regenerates the digest table and reports the
// traffic reduction factor.
func BenchmarkE16DigestFilter(b *testing.B) {
	report := runExperiment(b, "E16")
	noDig, err := strconv.ParseFloat(report.Rows[0][2], 64)
	if err != nil {
		b.Fatal(err)
	}
	dig, err := strconv.ParseFloat(report.Rows[1][2], 64)
	if err != nil {
		b.Fatal(err)
	}
	if dig > 0 {
		b.ReportMetric(noDig/dig, "traffic-reduction-x")
	}
}

// BenchmarkE17PeerChurn regenerates the churn table and reports the
// query-cost reduction of a maintained roster.
func BenchmarkE17PeerChurn(b *testing.B) {
	report := runExperiment(b, "E17")
	static, err := strconv.ParseFloat(strings.TrimSuffix(report.Rows[0][1], "ms"), 64)
	if err != nil {
		b.Fatal(err)
	}
	maintained, err := strconv.ParseFloat(strings.TrimSuffix(report.Rows[1][1], "ms"), 64)
	if err != nil {
		b.Fatal(err)
	}
	if maintained > 0 {
		b.ReportMetric(static/maintained, "cost-reduction-x")
	}
}

// BenchmarkE18ChaosResilience regenerates the chaos table and reports
// how much cheaper the guarded client's crash window is than the
// unguarded one's.
func BenchmarkE18ChaosResilience(b *testing.B) {
	report := runExperiment(b, "E18")
	guarded, err := strconv.ParseFloat(strings.TrimSuffix(report.Rows[0][1], "ms"), 64)
	if err != nil {
		b.Fatal(err)
	}
	unguarded, err := strconv.ParseFloat(strings.TrimSuffix(report.Rows[1][1], "ms"), 64)
	if err != nil {
		b.Fatal(err)
	}
	if guarded > 0 {
		b.ReportMetric(unguarded/guarded, "crash-cost-x")
	}
}

// BenchmarkE19DeviceFaults regenerates the device fault matrix and
// reports the accuracy the guarded sensor-fault rows hold relative to
// the clean baseline (≥ 1.0 means the guards gave nothing up).
func BenchmarkE19DeviceFaults(b *testing.B) {
	report := runExperiment(b, "E19")
	parsePct := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			b.Fatal(err)
		}
		return v
	}
	clean := parsePct(report.Rows[0][3])
	guardedStuck := parsePct(report.Rows[2][3])
	if clean > 0 {
		b.ReportMetric(guardedStuck/clean, "guarded-accuracy-x")
	}
}

// BenchmarkE20ServingThroughput regenerates the architecture ladder
// and reports the sharded+batched frames/sec advantage over the
// single-mutex baseline.
func BenchmarkE20ServingThroughput(b *testing.B) {
	report := runExperiment(b, "E20")
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			b.Fatal(err)
		}
		return v
	}
	base := parse(report.Rows[0][1])
	batched := parse(report.Rows[len(report.Rows)-1][1])
	if base > 0 {
		b.ReportMetric(batched/base, "serving-speedup-x")
	}
}

// BenchmarkE21OverloadResilience regenerates the overload sweep and
// reports the protected node's goodput retention at the highest
// offered load (1.0 = no goodput lost to 4x overload).
func BenchmarkE21OverloadResilience(b *testing.B) {
	report := runExperiment(b, "E21")
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			b.Fatal(err)
		}
		return v
	}
	peak, atMax := 0.0, 0.0
	for _, row := range report.Rows {
		if row[0] != eval.OverloadResilient {
			continue
		}
		g := parse(row[3])
		if g > peak {
			peak = g
		}
		atMax = g // rows arrive in ascending load order
	}
	if peak > 0 {
		b.ReportMetric(atMax/peak, "goodput-retention")
	}
}

// BenchmarkE22LookupPipeline regenerates the lookup-bound comparison
// and reports the tuned pipeline's speedup over exact-bucket lookup.
func BenchmarkE22LookupPipeline(b *testing.B) {
	report := runExperiment(b, "E22")
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			b.Fatal(err)
		}
		return v
	}
	base := parse(report.Rows[0][4])
	tuned := parse(report.Rows[len(report.Rows)-1][4])
	if tuned > 0 {
		b.ReportMetric(base/tuned, "lookup-speedup-x")
	}
}

// BenchmarkE23DriftQuality regenerates the drift-quality run and
// reports the protected node's tail accuracy relative to the no-drift
// baseline (the accuracy-recovery gate metric).
func BenchmarkE23DriftQuality(b *testing.B) {
	report := runExperiment(b, "E23")
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			b.Fatal(err)
		}
		return v
	}
	acc := map[string]float64{}
	for _, row := range report.Rows {
		acc[row[0]] = parse(row[1])
	}
	if acc[eval.QualityBaseline] > 0 {
		b.ReportMetric(acc[eval.QualityProtected]/acc[eval.QualityBaseline], "accuracy-recovery")
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks: the real compute cost of each pipeline stage.
// ---------------------------------------------------------------------------

func benchImage(b *testing.B) *vision.Image {
	b.Helper()
	cs, err := vision.NewClassSet(4, 48, 48, 1)
	if err != nil {
		b.Fatal(err)
	}
	im, err := cs.Render(0, vision.DefaultPerturbation(), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	return im
}

// BenchmarkFeatureExtraction measures the cache-key computation.
func BenchmarkFeatureExtraction(b *testing.B) {
	im := benchImage(b)
	ex := feature.DefaultExtractor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Extract(im); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameDiff measures the video-locality gate's pixel diff.
func BenchmarkFrameDiff(b *testing.B) {
	a := benchImage(b)
	c := a.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vision.MeanAbsDiff(a, c)
	}
}

func benchVectors(n, dim int, seed int64) []feature.Vector {
	r := rand.New(rand.NewSource(seed))
	out := make([]feature.Vector, n)
	for i := range out {
		v := make(feature.Vector, dim)
		for d := range v {
			v[d] = r.NormFloat64()
		}
		v.Normalize()
		out[i] = v
	}
	return out
}

// BenchmarkLSHInsert measures index insertion.
func BenchmarkLSHInsert(b *testing.B) {
	vecs := benchVectors(1024, 80, 2)
	idx, err := lsh.NewHyperplane(80, 12, 4, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := idx.Insert(lsh.ID(i), vecs[i%len(vecs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLSHNearest measures an approximate lookup against a
// 1k-entry index.
func BenchmarkLSHNearest(b *testing.B) {
	vecs := benchVectors(1024, 80, 4)
	idx, err := lsh.NewHyperplane(80, 12, 4, 5)
	if err != nil {
		b.Fatal(err)
	}
	for i, v := range vecs {
		if err := idx.Insert(lsh.ID(i), v); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Nearest(vecs[i%len(vecs)], 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactNearest is the linear-scan baseline for the same
// lookup.
func BenchmarkExactNearest(b *testing.B) {
	vecs := benchVectors(1024, 80, 6)
	idx, err := lsh.NewExact(80)
	if err != nil {
		b.Fatal(err)
	}
	for i, v := range vecs {
		if err := idx.Insert(lsh.ID(i), v); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Nearest(vecs[i%len(vecs)], 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDCTExtraction measures the pHash-style descriptor.
func BenchmarkDCTExtraction(b *testing.B) {
	im := benchImage(b)
	ex := feature.DefaultDCTExtractor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Extract(im); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDigestBuild measures peer-coverage digest construction over
// a full cache snapshot.
func BenchmarkDigestBuild(b *testing.B) {
	vecs := benchVectors(256, 80, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p2p.BuildDigest(vecs, 0.25, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkActivityClassify measures motion-regime inference over a
// full 2 s window.
func BenchmarkActivityClassify(b *testing.B) {
	gen, err := imu.NewGenerator(100, 3)
	if err != nil {
		b.Fatal(err)
	}
	samples, err := gen.Generate(imu.Walking, 0, 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	ac, err := imu.NewActivityClassifier(imu.DefaultActivityConfig())
	if err != nil {
		b.Fatal(err)
	}
	ac.ObserveAll(samples)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r, _ := ac.Classify(); r != imu.Walking {
			b.Fatal("misclassified benchmark window")
		}
	}
}

// BenchmarkCodecRoundTrip measures peer-message encode+decode.
func BenchmarkCodecRoundTrip(b *testing.B) {
	vec := benchVectors(1, 80, 7)[0]
	msg := p2p.Query{Vec: vec, K: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := p2p.Encode(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p2p.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineReuseHit measures the real compute of a gate-served
// frame (the fast path the latency claims rest on).
func BenchmarkPipelineReuseHit(b *testing.B) {
	spec := approxcache.StationaryHeavyWorkload(64, 1)
	w, err := approxcache.GenerateWorkload(spec)
	if err != nil {
		b.Fatal(err)
	}
	clf, err := approxcache.NewSimulatedClassifier(approxcache.MobileNetV2, w, 1)
	if err != nil {
		b.Fatal(err)
	}
	cache, err := approxcache.New(clf, approxcache.Options{
		Clock:          approxcache.NewVirtualClock(),
		MaxReuseStreak: -1, // keep every iteration on the reuse path
	})
	if err != nil {
		b.Fatal(err)
	}
	frame := w.Frames[0]
	win := w.IMUWindow(0, time.Second)
	if _, err := cache.Process(frame.Image, win); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cache.Process(frame.Image, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Source == approxcache.SourceDNN {
			b.Fatal("fast path fell through to DNN")
		}
	}
}

// BenchmarkPipelineColdMiss measures the real compute of a full miss
// (feature extraction + lookup + simulated inference bookkeeping).
func BenchmarkPipelineColdMiss(b *testing.B) {
	spec := approxcache.StationaryHeavyWorkload(64, 2)
	w, err := approxcache.GenerateWorkload(spec)
	if err != nil {
		b.Fatal(err)
	}
	clf, err := approxcache.NewSimulatedClassifier(approxcache.MobileNetV2, w, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cache, err := approxcache.New(clf, approxcache.Options{
			Clock: approxcache.NewVirtualClock(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := cache.Process(w.Frames[0].Image, nil); err != nil {
			b.Fatal(err)
		}
	}
}
