// Command approxbench runs the evaluation suite (experiments E1–E18 from
// DESIGN.md) and prints the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	approxbench                 # run every experiment at full scale
//	approxbench -exp E1         # run one experiment
//	approxbench -frames 500     # smaller/faster runs
//	approxbench -list           # list the suite
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"approxcache/internal/eval"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "approxbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("approxbench", flag.ContinueOnError)
	var (
		exp    = fs.String("exp", "all", "experiment id (E1..E16), name, or \"all\"")
		frames = fs.Int("frames", eval.DefaultScale().Frames, "per-device workload length in frames")
		seed   = fs.Int64("seed", eval.DefaultScale().Seed, "root random seed")
		format = fs.String("format", "table", "output format: table | csv | markdown")
		list   = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range eval.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return nil
	}
	scale := eval.Scale{Frames: *frames, Seed: *seed}
	experiments := eval.All()
	if *exp != "all" {
		e, err := eval.ByID(*exp)
		if err != nil {
			return err
		}
		experiments = []eval.Experiment{e}
	}
	if *format != "table" && *format != "csv" && *format != "markdown" {
		return fmt.Errorf("unknown format %q", *format)
	}
	for _, e := range experiments {
		start := time.Now()
		report, err := e.Run(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		switch *format {
		case "csv":
			fmt.Printf("# %s — %s\n%s\n", report.ID, report.Title, report.CSV())
		case "markdown":
			fmt.Println(report.Markdown())
		default:
			fmt.Println(report)
			fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
