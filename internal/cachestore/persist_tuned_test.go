package cachestore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"approxcache/internal/feature"
	"approxcache/internal/lsh"
	"approxcache/internal/simclock"
)

// newTunedSharded builds a sharded store whose shards run the full
// tuned pipeline (multi-probe, sketch prefilter, quantized scoring)
// with a shared index seed, the shape core.Engine constructs when
// IndexTuning is set.
func newTunedSharded(tb testing.TB, shards, capacity int, clock simclock.Clock) *ShardedStore {
	tb.Helper()
	tun := lsh.DefaultTuning()
	tun.Probes = 4
	s, err := NewSharded(ShardedConfig{
		Config: Config{Capacity: capacity},
		Dim:    shardTestDim,
		Shards: shards,
	}, func(int) (lsh.Index, error) {
		return lsh.NewHyperplaneTuned(shardTestDim, 8, 2, 99, tun)
	}, clock)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// TestTunedSnapshotRoundTrip pins the recompute-on-import contract
// across shard counts: sketches and quantized codes are never
// persisted — they are deterministic functions of (seed, vector), so a
// store rebuilt from a snapshot must answer every lookup bit-for-bit
// like the original, at 1, 2, 4, and 7 shards.
func TestTunedSnapshotRoundTrip(t *testing.T) {
	// Clustered, near-duplicate population: the regime where the sketch
	// prefilter and quantized re-rank actually participate in results,
	// so a recompute divergence would change answers.
	rng := rand.New(rand.NewSource(31))
	centers := make([]feature.Vector, 12)
	for c := range centers {
		centers[c] = make(feature.Vector, shardTestDim)
		for d := range centers[c] {
			centers[c][d] = rng.Float64()
		}
	}
	const n = 240
	vecs := make([]feature.Vector, n)
	for i := range vecs {
		v := make(feature.Vector, shardTestDim)
		for d := range v {
			v[d] = centers[i%len(centers)][d] + rng.NormFloat64()*0.03
		}
		vecs[i] = v
	}
	queries := make([]feature.Vector, 60)
	for i := range queries {
		src := vecs[rng.Intn(n)]
		q := make(feature.Vector, shardTestDim)
		for d := range q {
			q[d] = src[d] + rng.NormFloat64()*0.01
		}
		queries[i] = q
	}

	for _, shards := range []int{1, 2, 4, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			clock := simclock.NewVirtual(time.Unix(0, 0))
			// Capacity n per shard: the similarity router sends whole
			// clusters to one shard, so an even capacity split would
			// overflow and evict before the snapshot is taken.
			orig := newTunedSharded(t, shards, n*shards, clock)
			for i, v := range vecs {
				if _, err := orig.Insert(v, fmt.Sprintf("label-%d", i), 0.9, "dnn", time.Millisecond); err != nil {
					t.Fatal(err)
				}
			}
			var snap bytes.Buffer
			if err := orig.Export(&snap); err != nil {
				t.Fatal(err)
			}

			restored := newTunedSharded(t, shards, n*shards, clock)
			if got, err := restored.Import(bytes.NewReader(snap.Bytes())); err != nil || got != n {
				t.Fatalf("import: %d entries, err %v; want %d, nil", got, err, n)
			}

			dstA := make([]lsh.Neighbor, 0, 4)
			dstB := make([]lsh.Neighbor, 0, 4)
			for qi, q := range queries {
				a, err := orig.NearestInto(q, 4, dstA)
				if err != nil {
					t.Fatal(err)
				}
				b, err := restored.NearestInto(q, 4, dstB)
				if err != nil {
					t.Fatal(err)
				}
				if len(a) != len(b) {
					t.Fatalf("query %d: %d vs %d neighbors", qi, len(a), len(b))
				}
				for i := range a {
					la, oka := orig.Label(a[i].ID)
					lb, okb := restored.Label(b[i].ID)
					if !oka || !okb || la != lb || a[i].Distance != b[i].Distance {
						t.Fatalf("query %d neighbor %d: (%q, %v, live=%v) vs (%q, %v, live=%v)",
							qi, i, la, a[i].Distance, oka, lb, b[i].Distance, okb)
					}
				}
				dstA, dstB = a[:0], b[:0]
			}
		})
	}
}
