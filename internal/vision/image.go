// Package vision provides the synthetic camera-frame substrate.
//
// The paper evaluates on live smartphone camera input, which is not
// available here. What every reuse gate in approxcache depends on is the
// *similarity structure* of that input: frames of the same scene are
// close to each other, frames of the same object class cluster, and
// distinct classes are separated. This package synthesizes grayscale
// frames with exactly that structure — a deterministic prototype image
// per class, perturbed per frame by noise, global brightness shifts,
// small translations, and occlusion patches — with a controllable
// difficulty knob.
package vision

import (
	"fmt"
	"math"
	"math/rand"
)

// Image is a dense grayscale frame with pixel intensities in [0, 1].
// Pixels are stored row-major.
type Image struct {
	W, H int
	Pix  []float64
}

// NewImage allocates a zeroed W×H image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the pixel at (x, y). Out-of-bounds reads return 0 so that
// shifted sampling does not need border special-casing.
func (im *Image) At(x, y int) float64 {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return 0
	}
	return im.Pix[y*im.W+x]
}

// Set writes the pixel at (x, y), clamping the value to [0, 1].
// Out-of-bounds writes are ignored.
func (im *Image) Set(x, y int, v float64) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = clamp01(v)
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	out := NewImage(im.W, im.H)
	copy(out.Pix, im.Pix)
	return out
}

// MeanAbsDiff returns the mean absolute pixel difference between a and
// b. It is the cheap frame-difference primitive used by the video
// locality gate. Images of different sizes are maximally different.
func MeanAbsDiff(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H {
		return 1
	}
	var sum float64
	for i := range a.Pix {
		sum += math.Abs(a.Pix[i] - b.Pix[i])
	}
	return sum / float64(len(a.Pix))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ClassSet holds the deterministic prototype image for each object
// class. A ClassSet is immutable after construction and safe for
// concurrent use.
type ClassSet struct {
	w, h       int
	prototypes []*Image
}

// NewClassSet builds numClasses prototype images of size w×h from seed.
// Each prototype is an independent smooth random field, so distinct
// classes are well separated while same-class frames stay close.
func NewClassSet(numClasses, w, h int, seed int64) (*ClassSet, error) {
	if numClasses <= 0 {
		return nil, fmt.Errorf("vision: numClasses must be positive, got %d", numClasses)
	}
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("vision: image size must be positive, got %dx%d", w, h)
	}
	rng := rand.New(rand.NewSource(seed))
	cs := &ClassSet{w: w, h: h, prototypes: make([]*Image, numClasses)}
	for c := range cs.prototypes {
		cs.prototypes[c] = smoothField(w, h, rng)
	}
	return cs, nil
}

// NumClasses returns the number of classes in the set.
func (cs *ClassSet) NumClasses() int { return len(cs.prototypes) }

// Size returns the frame dimensions.
func (cs *ClassSet) Size() (w, h int) { return cs.w, cs.h }

// Prototype returns the canonical image for class c. The returned image
// must not be modified; use Clone first.
func (cs *ClassSet) Prototype(c int) (*Image, error) {
	if c < 0 || c >= len(cs.prototypes) {
		return nil, fmt.Errorf("vision: class %d out of range [0,%d)", c, len(cs.prototypes))
	}
	return cs.prototypes[c], nil
}

// smoothField builds a smooth random image: coarse random control grid,
// bilinearly upsampled, so nearby pixels correlate (like natural scenes)
// and downsampled descriptors remain informative.
func smoothField(w, h int, rng *rand.Rand) *Image {
	const grid = 6
	ctrl := make([]float64, (grid+1)*(grid+1))
	for i := range ctrl {
		ctrl[i] = rng.Float64()
	}
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			gx := float64(x) / float64(w-1+1) * grid
			gy := float64(y) / float64(h-1+1) * grid
			x0, y0 := int(gx), int(gy)
			fx, fy := gx-float64(x0), gy-float64(y0)
			c00 := ctrl[y0*(grid+1)+x0]
			c10 := ctrl[y0*(grid+1)+x0+1]
			c01 := ctrl[(y0+1)*(grid+1)+x0]
			c11 := ctrl[(y0+1)*(grid+1)+x0+1]
			top := c00*(1-fx) + c10*fx
			bot := c01*(1-fx) + c11*fx
			im.Pix[y*w+x] = top*(1-fy) + bot*fy
		}
	}
	return im
}

// Perturbation controls how far a rendered frame may drift from its
// class prototype. The zero value renders the prototype exactly.
type Perturbation struct {
	// Noise is the standard deviation of per-pixel Gaussian noise.
	Noise float64
	// MaxBrightness is the maximum absolute global intensity shift.
	MaxBrightness float64
	// MaxShift is the maximum translation, in pixels, on each axis.
	MaxShift int
	// OcclusionProb is the probability that a random dark patch
	// covers part of the frame.
	OcclusionProb float64
}

// DefaultPerturbation returns the perturbation profile used by the
// standard workloads: visible but modest frame-to-frame variation.
func DefaultPerturbation() Perturbation {
	return Perturbation{
		Noise:         0.02,
		MaxBrightness: 0.03,
		MaxShift:      1,
		OcclusionProb: 0.05,
	}
}

// HardPerturbation returns an aggressive profile used to stress
// approximate matching (more noise, bigger shifts, frequent occlusion).
func HardPerturbation() Perturbation {
	return Perturbation{
		Noise:         0.08,
		MaxBrightness: 0.12,
		MaxShift:      5,
		OcclusionProb: 0.25,
	}
}

// Render draws one frame of class c under perturbation p, using rng for
// all randomness so that workloads replay deterministically.
func (cs *ClassSet) Render(c int, p Perturbation, rng *rand.Rand) (*Image, error) {
	proto, err := cs.Prototype(c)
	if err != nil {
		return nil, err
	}
	dx, dy := 0, 0
	if p.MaxShift > 0 {
		dx = rng.Intn(2*p.MaxShift+1) - p.MaxShift
		dy = rng.Intn(2*p.MaxShift+1) - p.MaxShift
	}
	brightness := 0.0
	if p.MaxBrightness > 0 {
		brightness = (rng.Float64()*2 - 1) * p.MaxBrightness
	}
	out := NewImage(cs.w, cs.h)
	for y := 0; y < cs.h; y++ {
		for x := 0; x < cs.w; x++ {
			v := proto.At(x+dx, y+dy) + brightness
			if p.Noise > 0 {
				v += rng.NormFloat64() * p.Noise
			}
			out.Pix[y*cs.w+x] = clamp01(v)
		}
	}
	if p.OcclusionProb > 0 && rng.Float64() < p.OcclusionProb {
		occlude(out, rng)
	}
	return out, nil
}

// occlude darkens a random rectangular patch covering up to ~1/16 of the
// frame, emulating a hand or passer-by entering the field of view.
func occlude(im *Image, rng *rand.Rand) {
	pw := im.W/8 + rng.Intn(im.W/8+1)
	ph := im.H/8 + rng.Intn(im.H/8+1)
	px := rng.Intn(im.W - pw + 1)
	py := rng.Intn(im.H - ph + 1)
	for y := py; y < py+ph; y++ {
		for x := px; x < px+pw; x++ {
			im.Pix[y*im.W+x] *= 0.2
		}
	}
}
