package p2p

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"approxcache/internal/feature"
	"approxcache/internal/metrics"
	"approxcache/internal/simclock"
	"approxcache/internal/simnet"
)

// Transport moves encoded messages between this node and named peers.
// Implementations report the (real or simulated) time each exchange
// took so callers can charge it to their clock.
type Transport interface {
	// Call round-trips req to peer and returns the response payload.
	Call(peer string, req []byte) (resp []byte, rtt time.Duration, err error)
	// Send delivers a one-way payload to peer.
	Send(peer string, payload []byte) (cost time.Duration, err error)
}

// RemoteHit is the best answer obtained from the peer set.
type RemoteHit struct {
	// Peer names the peer that answered.
	Peer string
	// Label is the reused recognition label.
	Label string
	// Confidence is the peer's vote confidence.
	Confidence float64
	// Distance is the peer's best supporting distance.
	Distance float64
	// RTT is the round-trip time of the winning exchange.
	RTT time.Duration
}

// Observer receives resilience events as the client produces them, so
// the pipeline's session stats can surface them. All methods may be
// called concurrently; a nil observer is never invoked.
type Observer interface {
	// PeerTimeout fires when an exchange with peer overran its
	// deadline or the per-frame budget.
	PeerTimeout(peer string)
	// BreakerTrip fires when peer's circuit trips (or re-trips) open.
	BreakerTrip(peer string)
	// BreakerRecovery fires when peer's circuit closes again.
	BreakerRecovery(peer string)
}

// ClientConfig parameterizes the querying side.
type ClientConfig struct {
	// K is the neighbor count requested from each peer.
	K int
	// MaxDistance filters peer answers: hits farther than this are
	// ignored (the requester applies its own reuse radius).
	MaxDistance float64
	// GossipFanout caps how many peers each fresh result is shared
	// with. Zero shares with all peers.
	GossipFanout int
	// GossipAttempts is the per-peer delivery attempt bound for
	// gossip, including the first try. Zero selects the default (2).
	// Retries happen off the recognition hot path: their backoff is
	// not charged to the frame.
	GossipAttempts int
	// QueryBudget is the default per-query time budget applied by
	// Query: answers arriving later are discarded (and charged to the
	// peer as a timeout), and the charged cost is capped at the
	// budget. Zero disables the cap. The engine overrides it per frame
	// via QueryFrame with a budget derived from DNN latency.
	QueryBudget time.Duration
	// Health tunes the per-peer health EWMAs (zero value = defaults).
	Health HealthConfig
	// Breaker tunes the per-peer circuit breaker (zero value =
	// defaults). Set Breaker.Disabled to bypass it entirely.
	Breaker BreakerConfig
	// Clock drives breaker backoff, coalesce-cache expiry, and gossip
	// flush timing. Nil selects the wall clock; experiments inject
	// their virtual clock so these heal/expire in simulated time.
	Clock simclock.Clock
	// WireV1Only pins the client to the v1 float64 codec and disables
	// version negotiation, emulating a legacy node for interop tests
	// and the bandwidth baseline.
	WireV1Only bool
	// CoalesceTTL enables the peer-answer cache: a completed query
	// outcome — positive or negative — is replayed at zero wire cost
	// for identical vectors (same quantized code) arriving within the
	// TTL, so pool sessions observing the same scene share one RTT.
	// Zero disables the cache. In-flight coalescing (concurrent
	// identical queries joining one exchange) is always on.
	CoalesceTTL time.Duration
	// GossipBatch coalesces outgoing gossip into batches of up to
	// this many items per flush; <=1 sends each gossip immediately.
	// Batches reach v2 peers as one message; v1 peers still receive
	// the items individually, just deferred to the flush.
	GossipBatch int
	// GossipFlush bounds how long a queued gossip item waits for its
	// batch to fill (default 100ms when batching is enabled). Flushes
	// are lazy — checked on enqueue and on each QueryFrame — plus
	// explicit via FlushGossip, which the maintainer loop calls.
	GossipFlush time.Duration
}

// Validate reports whether the configuration is usable.
func (c ClientConfig) Validate() error {
	if c.K <= 0 || c.K > 255 {
		return fmt.Errorf("p2p: client K must be in [1,255], got %d", c.K)
	}
	if c.MaxDistance <= 0 {
		return fmt.Errorf("p2p: client MaxDistance must be positive, got %v", c.MaxDistance)
	}
	if c.GossipFanout < 0 {
		return fmt.Errorf("p2p: GossipFanout must be non-negative, got %d", c.GossipFanout)
	}
	if c.GossipAttempts < 0 {
		return fmt.Errorf("p2p: GossipAttempts must be non-negative, got %d", c.GossipAttempts)
	}
	if c.QueryBudget < 0 {
		return fmt.Errorf("p2p: QueryBudget must be non-negative, got %v", c.QueryBudget)
	}
	if c.CoalesceTTL < 0 {
		return fmt.Errorf("p2p: CoalesceTTL must be non-negative, got %v", c.CoalesceTTL)
	}
	if c.GossipBatch < 0 || c.GossipBatch > MaxGossipBatch {
		return fmt.Errorf("p2p: GossipBatch must be in [0,%d], got %d", MaxGossipBatch, c.GossipBatch)
	}
	if c.GossipFlush < 0 {
		return fmt.Errorf("p2p: GossipFlush must be non-negative, got %v", c.GossipFlush)
	}
	if err := c.Health.Validate(); err != nil {
		return err
	}
	return c.Breaker.Validate()
}

// DefaultClientConfig returns the standard querying policy.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{K: 4, MaxDistance: 0.25, GossipFanout: 0, GossipAttempts: 2}
}

// Client queries and gossips to a set of peers over a Transport.
//
// Client is the guarded side of the P2P reuse path: every exchange
// feeds a per-peer health tracker, and a circuit breaker excludes
// misbehaving peers from the fan-out until a backed-off half-open
// probe shows them healthy again. When every peer is open the client
// degrades to local-only operation at zero cost instead of stalling
// the frame. Client is safe for concurrent use.
type Client struct {
	cfg       ClientConfig
	transport Transport
	health    *HealthTracker
	breaker   *Breaker
	clock     simclock.Clock
	wire      metrics.WireTally

	mu       sync.Mutex
	peers    []string
	digests  map[string]Digest
	versions map[string]int
	deltas   map[string]*peerDigestState
	flights  map[string]*flight
	answers  map[string]answerEntry
	answerQ  []string
	pending  []Gossip
	due      time.Time
	skipped  int
	degraded int
	observer Observer
}

// flight is one in-progress peer-set query that concurrent identical
// queries join instead of duplicating. out/err are written before done
// is closed, so followers read them race-free.
type flight struct {
	done chan struct{}
	out  QueryOutcome
	err  error
}

// answerEntry is one TTL'd cached peer answer.
type answerEntry struct {
	out QueryOutcome
	exp time.Time
}

// maxAnswerCache bounds the TTL answer cache.
const maxAnswerCache = 512

// NewClient builds a client over transport.
func NewClient(cfg ClientConfig, transport Transport) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if transport == nil {
		return nil, fmt.Errorf("p2p: nil transport")
	}
	if cfg.GossipAttempts == 0 {
		cfg.GossipAttempts = 2
	}
	health, err := NewHealthTracker(cfg.Health)
	if err != nil {
		return nil, err
	}
	breaker, err := NewBreaker(cfg.Breaker, cfg.Clock)
	if err != nil {
		return nil, err
	}
	clock := cfg.Clock
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Client{
		cfg:       cfg,
		transport: transport,
		health:    health,
		breaker:   breaker,
		clock:     clock,
		digests:   make(map[string]Digest),
		versions:  make(map[string]int),
		deltas:    make(map[string]*peerDigestState),
		flights:   make(map[string]*flight),
		answers:   make(map[string]answerEntry),
	}, nil
}

// WireStats returns this client's per-kind wire traffic and
// coalescing/batching counters.
func (c *Client) WireStats() metrics.WireStats { return c.wire.Snapshot() }

// peerVersion returns the negotiated wire version for peer (0 when not
// yet negotiated).
func (c *Client) peerVersion(peer string) int {
	if c.cfg.WireV1Only {
		return WireV1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.versions[peer]
}

func (c *Client) setPeerVersion(peer string, ver int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.versions[peer] = ver
}

// useV2 reports whether peer has negotiated the compact v2 codec.
// Unknown peers get v1 — the codec every node speaks — so the hot path
// never gambles a query on an unprobed peer; negotiation rides the
// liveness pings (roster refresh, maintainer, ProbeOpen).
func (c *Client) useV2(peer string) bool {
	return c.peerVersion(peer) == WireV2
}

// encBufPool recycles encode buffers for the peer hot path.
var encBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 1024); return &b },
}

func getEncBuf() *[]byte { return encBufPool.Get().(*[]byte) }

func putEncBuf(p *[]byte) {
	*p = (*p)[:0]
	encBufPool.Put(p)
}

// SetObserver installs (or, with nil, removes) the resilience-event
// sink. The engine installs its session stats here.
func (c *Client) SetObserver(o Observer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observer = o
}

// getObserver snapshots the observer.
func (c *Client) getObserver() Observer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.observer
}

// record books one exchange outcome into the health tracker, breaker,
// and observer. It returns the failure class of err.
func (c *Client) record(peer string, rtt time.Duration, err error) ErrClass {
	class := Classify(err)
	c.health.Observe(peer, rtt, class)
	obs := c.getObserver()
	if class.Failure() {
		if class == ErrClassTimeout && obs != nil {
			obs.PeerTimeout(peer)
		}
		if c.breaker.OnFailure(peer) && obs != nil {
			obs.BreakerTrip(peer)
		}
	} else if c.breaker.OnSuccess(peer) && obs != nil {
		obs.BreakerRecovery(peer)
	}
	return class
}

// Breaker exposes the client's circuit breaker (for tests and tools).
func (c *Client) Breaker() *Breaker { return c.breaker }

// FetchDigest asks peer for its coverage digest and caches it, so
// subsequent Queries can skip the peer when it cannot possibly help.
// Call it periodically (the digest staleness trade-off is the usual
// one: a stale digest only costs missed hits or wasted queries).
// Peers that negotiated wire v2 are asked for an epoch delta — only
// the centroids added or removed since the last fetch cross the link —
// while v1 peers ship the full digest every time.
func (c *Client) FetchDigest(peer string) (Digest, time.Duration, error) {
	if c.useV2(peer) {
		return c.fetchDigestDelta(peer)
	}
	req, err := Encode(DigestReq{})
	if err != nil {
		return Digest{}, 0, fmt.Errorf("encode digest req: %w", err)
	}
	c.wire.Sent(KindDigestReq.String(), len(req))
	respB, rtt, err := c.transport.Call(peer, req)
	if err != nil {
		c.record(peer, rtt, err)
		return Digest{}, rtt, err
	}
	msg, err := Decode(respB)
	if err != nil {
		c.record(peer, rtt, err)
		return Digest{}, rtt, err
	}
	c.wire.Recv(msg.MsgKind().String(), len(respB))
	resp, ok := msg.(DigestResp)
	if !ok {
		err := fmt.Errorf("%w: %v reply to digest req", ErrUnknownKind, msg.MsgKind())
		c.record(peer, rtt, err)
		return Digest{}, rtt, err
	}
	c.record(peer, rtt, nil)
	c.mu.Lock()
	c.digests[peer] = resp.Digest
	c.mu.Unlock()
	return resp.Digest, rtt, nil
}

// fetchDigestDelta refreshes peer's digest via the epoch-delta
// protocol, applying added/removed centroids to the local mirror.
func (c *Client) fetchDigestDelta(peer string) (Digest, time.Duration, error) {
	c.mu.Lock()
	st := c.deltas[peer]
	if st == nil {
		st = &peerDigestState{}
		c.deltas[peer] = st
	}
	since := st.epoch
	c.mu.Unlock()
	bufp := getEncBuf()
	req, err := AppendEncodeV2(*bufp, DigestDeltaReq{Since: since})
	if err != nil {
		putEncBuf(bufp)
		return Digest{}, 0, fmt.Errorf("encode digest delta req: %w", err)
	}
	c.wire.Sent(KindDigestDeltaReq.String(), len(req))
	respB, rtt, err := c.transport.Call(peer, req)
	*bufp = req[:0]
	putEncBuf(bufp)
	if err != nil {
		c.record(peer, rtt, err)
		return Digest{}, rtt, err
	}
	msg, err := Decode(respB)
	if err != nil {
		c.record(peer, rtt, err)
		return Digest{}, rtt, err
	}
	c.wire.Recv(msg.MsgKind().String(), len(respB))
	resp, ok := msg.(DigestDeltaResp)
	if !ok {
		err := fmt.Errorf("%w: %v reply to digest delta req", ErrUnknownKind, msg.MsgKind())
		c.record(peer, rtt, err)
		return Digest{}, rtt, err
	}
	c.record(peer, rtt, nil)
	c.mu.Lock()
	d, applyErr := st.apply(resp)
	if applyErr == nil {
		c.digests[peer] = d
	}
	c.mu.Unlock()
	if applyErr != nil {
		return Digest{}, rtt, applyErr
	}
	return d, rtt, nil
}

// DropDigest forgets a cached digest and its delta-sync state (e.g.
// after the peer churns; a reincarnated peer starts from a full
// snapshot).
func (c *Client) DropDigest(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.digests, peer)
	delete(c.deltas, peer)
}

// SkippedQueries returns how many per-peer queries digests avoided.
func (c *Client) SkippedQueries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.skipped
}

// digestAllows reports whether peer should be queried for vec: true
// when no digest is cached, or when the digest says the peer may cover
// the query.
func (c *Client) digestAllows(peer string, vec feature.Vector) bool {
	c.mu.Lock()
	d, ok := c.digests[peer]
	c.mu.Unlock()
	if !ok {
		return true
	}
	// Slack of one reuse radius absorbs cluster spread.
	if d.MayCover(vec, c.cfg.MaxDistance, c.cfg.MaxDistance) {
		return true
	}
	c.mu.Lock()
	c.skipped++
	c.mu.Unlock()
	return false
}

// SetPeers replaces the peer set.
func (c *Client) SetPeers(peers []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.peers = append(c.peers[:0:0], peers...)
}

// Peers returns a copy of the current peer set.
func (c *Client) Peers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.peers...)
}

// QueryOutcome is the result of one budgeted peer-set query.
type QueryOutcome struct {
	// Hit is the best in-range answer; meaningful when Found.
	Hit RemoteHit
	// Found reports whether any peer produced an acceptable hit.
	Found bool
	// Cost is the simulated time the query charged to the frame: the
	// slowest queried peer's RTT (peers are asked concurrently on a
	// real radio), capped at the budget.
	Cost time.Duration
	// Queried is how many peers were actually asked.
	Queried int
	// Degraded reports that peers were configured but every one was
	// excluded by its open circuit: the P2P gate was skipped at zero
	// cost and the pipeline ran local-only.
	Degraded bool
}

// Query asks every admitted peer for vec and returns the best in-range
// answer, applying the configured default budget. found is false when
// no peer produced an acceptable hit; cost still reflects the time
// spent asking. See QueryFrame for the full outcome.
func (c *Client) Query(vec feature.Vector) (hit RemoteHit, cost time.Duration, found bool, err error) {
	out, err := c.QueryFrame(vec, c.cfg.QueryBudget)
	return out.Hit, out.Cost, out.Found, err
}

// QueryFrame asks the peer set for vec under a time budget (zero =
// unbounded). Peers whose circuit is open are excluded; peers are
// queried concurrently in the real world, so the charged cost is the
// slowest admitted peer's RTT, capped at the budget. An answer whose
// RTT overruns the budget is discarded and charged to the peer as a
// timeout — the caller keeps the best answer that arrived in time
// (fail partial, not fail total). When every peer is excluded the
// query returns immediately with Degraded set.
//
// Identical queries coalesce: concurrent callers with the same
// quantized vector code join one in-flight exchange, and (with
// CoalesceTTL set) a completed outcome is replayed at zero cost for
// the TTL — replays report Cost 0 and Queried 0, since nothing hit
// the wire.
func (c *Client) QueryFrame(vec feature.Vector, budget time.Duration) (QueryOutcome, error) {
	c.flushDueGossip()
	peers := c.Peers()
	if len(peers) == 0 {
		return QueryOutcome{}, nil
	}
	admitted := peers[:0:0]
	for _, peer := range peers {
		if c.breaker.Allow(peer) {
			admitted = append(admitted, peer)
		}
	}
	if len(admitted) == 0 {
		c.mu.Lock()
		c.degraded++
		c.mu.Unlock()
		return QueryOutcome{Degraded: true}, nil
	}
	key, err := queryKey(vec)
	if err != nil {
		return QueryOutcome{}, fmt.Errorf("encode query: %w", err)
	}
	if c.cfg.CoalesceTTL > 0 {
		if out, ok := c.cachedAnswer(key); ok {
			c.wire.CoalesceCached()
			return out, nil
		}
	}
	fl, leader := c.joinFlight(key)
	if !leader {
		<-fl.done
		c.wire.CoalesceInFlight()
		return fl.out, fl.err
	}
	out, err := c.queryAdmitted(vec, budget, admitted)
	fl.out, fl.err = out, err
	c.finishFlight(key, fl)
	if err == nil && !out.Degraded && c.cfg.CoalesceTTL > 0 {
		c.storeAnswer(key, out)
	}
	return out, err
}

// queryKey is the coalescing identity of a query: the quantized v2
// vector encoding, so two vectors share a key exactly when they are
// indistinguishable on the wire.
func queryKey(vec feature.Vector) (string, error) {
	bufp := getEncBuf()
	b, err := appendQuantVec(*bufp, vec)
	if err != nil {
		putEncBuf(bufp)
		return "", err
	}
	key := string(b)
	*bufp = b[:0]
	putEncBuf(bufp)
	return key, nil
}

func (c *Client) joinFlight(key string) (*flight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fl, ok := c.flights[key]; ok {
		return fl, false
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[key] = fl
	return fl, true
}

func (c *Client) finishFlight(key string, fl *flight) {
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(fl.done)
}

func (c *Client) cachedAnswer(key string) (QueryOutcome, bool) {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.answers[key]
	if !ok {
		return QueryOutcome{}, false
	}
	if now.After(e.exp) {
		delete(c.answers, key)
		return QueryOutcome{}, false
	}
	return e.out, true
}

func (c *Client) storeAnswer(key string, out QueryOutcome) {
	// Replays are free: nothing hits the wire, so the cached outcome
	// carries no cost and counts no queried peers.
	out.Cost = 0
	out.Queried = 0
	exp := c.clock.Now().Add(c.cfg.CoalesceTTL)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.answers[key]; !exists {
		if len(c.answerQ) >= maxAnswerCache {
			oldest := c.answerQ[0]
			c.answerQ = c.answerQ[1:]
			delete(c.answers, oldest)
		}
		c.answerQ = append(c.answerQ, key)
	}
	c.answers[key] = answerEntry{out: out, exp: exp}
}

// queryAdmitted runs the actual peer fan-out for one query, encoding
// the request once per wire dialect from pooled buffers.
func (c *Client) queryAdmitted(vec feature.Vector, budget time.Duration, admitted []string) (QueryOutcome, error) {
	q := Query{Vec: vec, K: uint8(c.cfg.K)}
	var v1p, v2p *[]byte
	defer func() {
		if v1p != nil {
			putEncBuf(v1p)
		}
		if v2p != nil {
			putEncBuf(v2p)
		}
	}()
	reqFor := func(peer string) ([]byte, error) {
		if c.useV2(peer) {
			if v2p == nil {
				v2p = getEncBuf()
				b, err := AppendEncodeV2(*v2p, q)
				if err != nil {
					return nil, err
				}
				*v2p = b
			}
			return *v2p, nil
		}
		if v1p == nil {
			v1p = getEncBuf()
			b, err := AppendEncode(*v1p, q)
			if err != nil {
				return nil, err
			}
			*v1p = b
		}
		return *v1p, nil
	}
	var out QueryOutcome
	var maxRTT time.Duration
	for _, peer := range admitted {
		if !c.digestAllows(peer, vec) {
			// The peer's digest says it cannot help. Resolve a
			// half-open probe admission without an exchange.
			c.breaker.OnSuccess(peer)
			continue
		}
		req, err := reqFor(peer)
		if err != nil {
			return QueryOutcome{}, fmt.Errorf("encode query: %w", err)
		}
		c.wire.Sent(KindQuery.String(), len(req))
		respB, rtt, callErr := c.transport.Call(peer, req)
		if rtt > maxRTT {
			maxRTT = rtt
		}
		if callErr == nil && budget > 0 && rtt > budget {
			// The answer exists but arrived after the frame's peer
			// deadline: discard it and charge the overrun.
			callErr = fmt.Errorf("%w: %v > %v from %s", ErrBudgetExceeded, rtt, budget, peer)
		}
		out.Queried++
		var msg Message
		if callErr == nil {
			var decErr error
			msg, decErr = Decode(respB)
			if decErr != nil {
				callErr = decErr
			} else {
				c.wire.Recv(msg.MsgKind().String(), len(respB))
			}
		}
		if c.record(peer, rtt, callErr); callErr != nil {
			// A lost or failed exchange is a per-peer miss, not a
			// query failure: the requester simply proceeds with the
			// answers it has.
			continue
		}
		resp, ok := msg.(QueryResp)
		if !ok || !resp.Found || resp.Distance > c.cfg.MaxDistance {
			continue
		}
		if !out.Found || resp.Distance < out.Hit.Distance {
			out.Hit = RemoteHit{
				Peer:       peer,
				Label:      resp.Label,
				Confidence: resp.Confidence,
				Distance:   resp.Distance,
				RTT:        rtt,
			}
			out.Found = true
		}
	}
	out.Cost = maxRTT
	if budget > 0 && out.Cost > budget {
		out.Cost = budget
	}
	return out, nil
}

// Gossip shares a fresh recognition result with up to GossipFanout
// admitted peers (all peers when zero). Gossip is fire-and-forget:
// per-peer failures are ignored after GossipAttempts bounded retries,
// peers with open circuits are skipped, and the returned cost is the
// slowest successful delivery (sends proceed concurrently on a real
// radio). Retry pacing happens off the recognition hot path, so no
// backoff is charged to the returned cost.
//
// With GossipBatch > 1 the item is queued instead of sent: the queue
// flushes when it reaches GossipBatch items or the oldest item has
// waited GossipFlush (checked lazily on enqueue and on QueryFrame, or
// explicitly via FlushGossip). v2 peers receive the whole batch as one
// message; v1 peers receive the items individually at the flush.
func (c *Client) Gossip(vec feature.Vector, label string, confidence float64, savedCost time.Duration) (time.Duration, error) {
	item := Gossip{Vec: vec, Label: label, Confidence: confidence, SavedCost: savedCost}
	if c.cfg.GossipBatch <= 1 {
		return c.deliverGossip([]Gossip{item})
	}
	// Queued items outlive the caller's frame, whose vector buffer may
	// be reused; take a private copy.
	item.Vec = vec.Clone()
	now := c.clock.Now()
	c.mu.Lock()
	c.pending = append(c.pending, item)
	if len(c.pending) == 1 {
		c.due = now.Add(c.gossipFlushInterval())
	}
	flush := len(c.pending) >= c.cfg.GossipBatch || !now.Before(c.due)
	var items []Gossip
	if flush {
		items = c.pending
		c.pending = nil
	}
	c.mu.Unlock()
	if !flush {
		return 0, nil
	}
	return c.deliverGossip(items)
}

// FlushGossip delivers any queued gossip immediately. The maintainer
// loop calls it so queued items never outlive a maintenance interval.
func (c *Client) FlushGossip() (time.Duration, error) {
	c.mu.Lock()
	items := c.pending
	c.pending = nil
	c.mu.Unlock()
	if len(items) == 0 {
		return 0, nil
	}
	return c.deliverGossip(items)
}

// flushDueGossip flushes the queue if its deadline has passed; called
// from QueryFrame so batching never needs a background timer.
func (c *Client) flushDueGossip() {
	c.mu.Lock()
	if len(c.pending) == 0 {
		c.mu.Unlock()
		return
	}
	due := !c.clock.Now().Before(c.due)
	var items []Gossip
	if due {
		items = c.pending
		c.pending = nil
	}
	c.mu.Unlock()
	if due {
		c.deliverGossip(items) //nolint:errcheck // fire-and-forget
	}
}

func (c *Client) gossipFlushInterval() time.Duration {
	if c.cfg.GossipFlush > 0 {
		return c.cfg.GossipFlush
	}
	return 100 * time.Millisecond
}

// deliverGossip fans the items out to admitted peers. A v2 peer gets
// one frame (a GossipBatch when len(items) > 1); a v1 peer gets one
// frame per item, sent back-to-back — its cost is the sum, which is
// exactly the per-message overhead batching exists to avoid.
func (c *Client) deliverGossip(items []Gossip) (time.Duration, error) {
	peers := c.Peers()
	if len(peers) == 0 {
		return 0, nil
	}
	admitted := peers[:0:0]
	for _, peer := range peers {
		if c.breaker.Allow(peer) {
			admitted = append(admitted, peer)
		}
	}
	if c.cfg.GossipFanout > 0 && len(admitted) > c.cfg.GossipFanout {
		admitted = admitted[:c.cfg.GossipFanout]
	}
	if len(admitted) == 0 {
		return 0, nil
	}
	var v1p, v2p *[]byte
	var v1msgs [][]byte
	defer func() {
		if v1p != nil {
			putEncBuf(v1p)
		}
		if v2p != nil {
			putEncBuf(v2p)
		}
	}()
	var maxCost time.Duration
	for _, peer := range admitted {
		if c.useV2(peer) {
			if v2p == nil {
				v2p = getEncBuf()
				var m Message
				if len(items) == 1 {
					m = items[0]
				} else {
					m = GossipBatch{Items: items}
				}
				b, err := AppendEncodeV2(*v2p, m)
				if err != nil {
					return maxCost, fmt.Errorf("encode gossip: %w", err)
				}
				*v2p = b
			}
			kind := KindGossip
			if len(items) > 1 {
				kind = KindGossipBatch
			}
			cost, ok := c.sendGossipPayload(peer, *v2p, kind)
			if ok {
				if len(items) > 1 {
					c.wire.ObserveBatch(len(items))
				}
				if cost > maxCost {
					maxCost = cost
				}
			}
			continue
		}
		if v1msgs == nil {
			v1p = getEncBuf()
			buf := *v1p
			offsets := make([]int, 0, len(items)+1)
			offsets = append(offsets, 0)
			for _, g := range items {
				var err error
				buf, err = AppendEncode(buf, g)
				if err != nil {
					return maxCost, fmt.Errorf("encode gossip: %w", err)
				}
				offsets = append(offsets, len(buf))
			}
			*v1p = buf
			v1msgs = make([][]byte, len(items))
			for i := range items {
				v1msgs[i] = buf[offsets[i]:offsets[i+1]]
			}
		}
		var peerCost time.Duration
		for _, payload := range v1msgs {
			cost, ok := c.sendGossipPayload(peer, payload, KindGossip)
			if ok {
				peerCost += cost
			}
		}
		if peerCost > maxCost {
			maxCost = peerCost
		}
	}
	return maxCost, nil
}

// sendGossipPayload delivers one gossip frame with the bounded retry
// policy, booking health and wire stats. ok reports delivery.
func (c *Client) sendGossipPayload(peer string, payload []byte, kind Kind) (time.Duration, bool) {
	for attempt := 0; attempt < c.cfg.GossipAttempts; attempt++ {
		c.wire.Sent(kind.String(), len(payload))
		cost, sendErr := c.transport.Send(peer, payload)
		c.record(peer, cost, sendErr)
		if sendErr == nil {
			return cost, true
		}
		// Only transient loss is worth a retry; a crashed or
		// partitioned peer fails the same way immediately.
		if !errors.Is(sendErr, simnet.ErrLost) {
			break
		}
	}
	return 0, false
}

// Ping probes peer and returns its advertised identity and cache size.
// The outcome feeds the health tracker and breaker, so background
// roster refreshes double as recovery probes for open circuits.
//
// Pings also carry the wire-version negotiation: an unprobed peer is
// pinged in v2 first; success pins it to the compact codec, while a
// version rejection (the typed decode error a legacy node answers
// with) silently retries in v1 and pins v1. Transient failures (loss,
// crash, partition) leave the version undecided, so a later ping can
// still upgrade. The hot path (QueryFrame, Gossip) never probes — it
// speaks v1 to undecided peers — which keeps negotiation entirely on
// the background liveness traffic.
func (c *Client) Ping(self, peer string) (Pong, time.Duration, error) {
	ver := c.peerVersion(peer)
	if ver == WireV1 {
		return c.pingVersion(self, peer, WireV1, false)
	}
	pong, rtt, err := c.pingVersion(self, peer, WireV2, ver == 0)
	if err == nil {
		c.setPeerVersion(peer, WireV2)
		return pong, rtt, nil
	}
	if ver == 0 && versionRejection(err) {
		pong, rtt, err := c.pingVersion(self, peer, WireV1, false)
		if err == nil {
			c.setPeerVersion(peer, WireV1)
		}
		return pong, rtt, err
	}
	return pong, rtt, err
}

// versionRejection reports whether a probe failure looks like a peer
// that cannot speak v2 (a typed bad-response error in-process, or a
// dropped connection from a real TCP node) rather than a transient
// outage that says nothing about its dialect.
func versionRejection(err error) bool {
	switch Classify(err) {
	case ErrClassBadResponse, ErrClassOther:
		return true
	}
	return false
}

// pingVersion sends one ping in the given wire version. When probe is
// set, a version rejection is not booked against the peer's health —
// the fallback ping that follows will book the real outcome — so
// negotiation never trips a healthy legacy peer's breaker.
func (c *Client) pingVersion(self, peer string, ver int, probe bool) (Pong, time.Duration, error) {
	bufp := getEncBuf()
	defer putEncBuf(bufp)
	var req []byte
	var err error
	if ver == WireV2 {
		req, err = AppendEncodeV2(*bufp, Ping{From: self})
	} else {
		req, err = AppendEncode(*bufp, Ping{From: self})
	}
	if err != nil {
		return Pong{}, 0, fmt.Errorf("encode ping: %w", err)
	}
	*bufp = req[:0]
	c.wire.Sent(KindPing.String(), len(req))
	respB, rtt, err := c.transport.Call(peer, req)
	if err != nil {
		if !(probe && versionRejection(err)) {
			c.record(peer, rtt, err)
		}
		return Pong{}, rtt, err
	}
	msg, err := Decode(respB)
	if err != nil {
		if !(probe && versionRejection(err)) {
			c.record(peer, rtt, err)
		}
		return Pong{}, rtt, err
	}
	c.wire.Recv(msg.MsgKind().String(), len(respB))
	pong, ok := msg.(Pong)
	if !ok {
		err := fmt.Errorf("%w: %v reply to ping", ErrUnknownKind, msg.MsgKind())
		c.record(peer, rtt, err)
		return Pong{}, rtt, err
	}
	c.record(peer, rtt, nil)
	return pong, rtt, nil
}

// ProbeOpen pings every peer whose circuit is currently open,
// identifying as self. It is the explicit background re-probe hook:
// call it from a maintenance loop to heal circuits without waiting for
// the hot path to trip over them. It returns how many probes
// succeeded (each success closes that peer's circuit).
func (c *Client) ProbeOpen(self string) int {
	recovered := 0
	for _, peer := range c.breaker.Open() {
		if _, _, err := c.Ping(self, peer); err == nil {
			recovered++
		}
	}
	return recovered
}

// HealthSnapshot is a point-in-time view of the client's resilience
// state.
type HealthSnapshot struct {
	// Peers holds per-peer health, sorted by name, with breaker
	// states filled in.
	Peers []PeerHealth
	// Trips and Recoveries count breaker transitions so far.
	Trips, Recoveries int
	// DegradedQueries counts queries skipped because every peer's
	// circuit was open.
	DegradedQueries int
	// Degraded reports whether, right now, peers are configured but
	// every one of them has an open circuit.
	Degraded bool
}

// Health returns a snapshot of per-peer health and breaker state.
func (c *Client) Health() HealthSnapshot {
	var snap HealthSnapshot
	snap.Peers = c.health.Snapshot()
	seen := make(map[string]bool, len(snap.Peers))
	for i := range snap.Peers {
		snap.Peers[i].State = c.breaker.State(snap.Peers[i].Peer)
		seen[snap.Peers[i].Peer] = true
	}
	peers := c.Peers()
	for _, peer := range peers {
		if !seen[peer] {
			snap.Peers = append(snap.Peers, PeerHealth{Peer: peer, State: c.breaker.State(peer)})
		}
	}
	snap.Trips, snap.Recoveries = c.breaker.Counts()
	c.mu.Lock()
	snap.DegradedQueries = c.degraded
	c.mu.Unlock()
	if len(peers) > 0 {
		snap.Degraded = true
		for _, peer := range peers {
			if c.breaker.State(peer) != StateOpen {
				snap.Degraded = false
				break
			}
		}
	}
	return snap
}

// QueryWireSize returns the v1-encoded size of a query for
// dim-dimensional vectors, for energy accounting.
func QueryWireSize(dim int) int { return 2 + 2 + 8*dim }

// GossipWireSize returns the v1-encoded size of a gossip message
// carrying a dim-dimensional vector and a label of labelLen bytes.
func GossipWireSize(dim, labelLen int) int { return 1 + 2 + 8*dim + 2 + labelLen + 8 + 8 }

// allPeersV2 reports whether every configured peer has negotiated v2
// (false with no peers or any undecided peer).
func (c *Client) allPeersV2() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.WireV1Only || len(c.peers) == 0 {
		return false
	}
	for _, p := range c.peers {
		if c.versions[p] != WireV2 {
			return false
		}
	}
	return true
}

// QueryWireSize returns the request size this client currently pays
// for a dim-dimensional query: the compact v2 size once the whole peer
// set speaks v2, the conservative v1 size otherwise. Energy accounting
// uses it so the radio model tracks the negotiated codec.
func (c *Client) QueryWireSize(dim int) int {
	if c.allPeersV2() {
		return QueryWireSizeV2(dim)
	}
	return QueryWireSize(dim)
}

// GossipWireSize is the per-peer gossip size counterpart of the
// QueryWireSize method.
func (c *Client) GossipWireSize(dim, labelLen int) int {
	if c.allPeersV2() {
		return GossipWireSizeV2(dim, labelLen)
	}
	return GossipWireSize(dim, labelLen)
}

// SimnetTransport adapts a simnet.Network as a Transport for node self.
type SimnetTransport struct {
	self simnet.NodeID
	net  *simnet.Network
}

var _ Transport = (*SimnetTransport)(nil)

// NewSimnetTransport builds a transport sending as self over net.
func NewSimnetTransport(self string, net *simnet.Network) (*SimnetTransport, error) {
	if self == "" {
		return nil, fmt.Errorf("p2p: empty self id")
	}
	if net == nil {
		return nil, fmt.Errorf("p2p: nil network")
	}
	return &SimnetTransport{self: simnet.NodeID(self), net: net}, nil
}

// Call implements Transport.
func (t *SimnetTransport) Call(peer string, req []byte) ([]byte, time.Duration, error) {
	resp, rtt, err := t.net.Call(t.self, simnet.NodeID(peer), req)
	if err != nil && !errors.Is(err, simnet.ErrLost) {
		return nil, rtt, err
	}
	return resp, rtt, err
}

// Send implements Transport.
func (t *SimnetTransport) Send(peer string, payload []byte) (time.Duration, error) {
	return t.net.Send(t.self, simnet.NodeID(peer), payload)
}

// RegisterService wires svc into net under its own name, so peers can
// reach it.
func RegisterService(net *simnet.Network, svc *Service) error {
	if net == nil {
		return fmt.Errorf("p2p: nil network")
	}
	if svc == nil {
		return fmt.Errorf("p2p: nil service")
	}
	return net.Register(simnet.NodeID(svc.Name()), func(from simnet.NodeID, req []byte) ([]byte, error) {
		return svc.HandleRaw(string(from), req)
	})
}
