package video

import (
	"math/rand"
	"testing"

	"approxcache/internal/imu"
	"approxcache/internal/vision"
)

func TestZipfWeights(t *testing.T) {
	if ZipfWeights(0, 1) != nil {
		t.Fatal("zero classes should give nil")
	}
	w := ZipfWeights(4, 1)
	if len(w) != 4 {
		t.Fatalf("len = %d", len(w))
	}
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Fatalf("weights not decreasing: %v", w)
		}
	}
	// s=0 is uniform.
	u := ZipfWeights(4, 0)
	for _, x := range u {
		if x != 1 {
			t.Fatalf("uniform weights = %v", u)
		}
	}
}

func TestClassWeightsValidation(t *testing.T) {
	base := StreamConfig{
		FPS:      15,
		Segments: []Segment{{Regime: imu.Panning, Frames: 10}},
	}
	bad := base
	bad.ClassWeights = []float64{1, -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative weight accepted")
	}
	bad = base
	bad.ClassWeights = []float64{0, 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-sum weights accepted")
	}
	ok := base
	ok.ClassWeights = []float64{1, 2, 3}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateRejectsWeightCountMismatch(t *testing.T) {
	cs := classes(t, 4)
	cfg := StreamConfig{
		FPS:          15,
		Segments:     []Segment{{Regime: imu.Panning, Frames: 10}},
		ClassWeights: []float64{1, 2}, // 2 weights, 4 classes
		Seed:         1,
	}
	if _, err := Generate(cfg, cs); err == nil {
		t.Fatal("weight/class mismatch accepted")
	}
}

func TestPickClassNeverReturnsExcluded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	weights := ZipfWeights(6, 1.2)
	for i := 0; i < 2000; i++ {
		exclude := i % 6
		got := pickClass(rng, weights, 6, exclude)
		if got == exclude {
			t.Fatalf("picked excluded class %d", exclude)
		}
		if got < 0 || got >= 6 {
			t.Fatalf("class %d out of range", got)
		}
		// Uniform path too.
		got = pickClass(rng, nil, 6, exclude)
		if got == exclude || got < 0 || got >= 6 {
			t.Fatalf("uniform pick %d invalid (exclude %d)", got, exclude)
		}
	}
}

func TestPickClassAllMassOnExcluded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	weights := []float64{0, 1, 0} // all mass on class 1
	for i := 0; i < 100; i++ {
		got := pickClass(rng, weights, 3, 1)
		if got == 1 {
			t.Fatal("picked excluded class despite fallback")
		}
	}
}

func TestSkewConcentratesClasses(t *testing.T) {
	cs := classes(t, 6)
	gen := func(weights []float64) map[int]int {
		cfg := StreamConfig{
			FPS:          15,
			Segments:     []Segment{{Regime: imu.Panning, Frames: 300}},
			Perturb:      vision.Perturbation{},
			ClassWeights: weights,
			SceneHold:    3,
			Seed:         5,
		}
		frames, err := Generate(cfg, cs)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[int]int{}
		for _, f := range frames {
			counts[f.Class]++
		}
		return counts
	}
	uniform := gen(nil)
	skewed := gen(ZipfWeights(6, 1.5))
	maxShare := func(counts map[int]int) float64 {
		total, max := 0, 0
		for _, n := range counts {
			total += n
			if n > max {
				max = n
			}
		}
		return float64(max) / float64(total)
	}
	if maxShare(skewed) <= maxShare(uniform) {
		t.Fatalf("skew did not concentrate: uniform %v skewed %v",
			maxShare(uniform), maxShare(skewed))
	}
}
