package lsh

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestEpochAdvancesPerWrite pins the publication contract: every write
// round (insert, remove, replace) publishes at least one new snapshot.
func TestEpochAdvancesPerWrite(t *testing.T) {
	idx, err := NewHyperplane(4, 6, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Epoch(); got != 0 {
		t.Fatalf("fresh index epoch = %d, want 0", got)
	}
	rng := rand.New(rand.NewSource(1))
	before := idx.Epoch()
	if err := idx.Insert(1, randVec(rng, 4)); err != nil {
		t.Fatal(err)
	}
	if idx.Epoch() <= before {
		t.Fatalf("insert did not advance epoch: %d -> %d", before, idx.Epoch())
	}
	before = idx.Epoch()
	// Replacing an existing id runs a remove round plus an insert round.
	if err := idx.Insert(1, randVec(rng, 4)); err != nil {
		t.Fatal(err)
	}
	if idx.Epoch() < before+2 {
		t.Fatalf("replace advanced epoch %d -> %d, want >= +2", before, idx.Epoch())
	}
	before = idx.Epoch()
	idx.Remove(1)
	if idx.Epoch() <= before {
		t.Fatalf("remove did not advance epoch: %d -> %d", before, idx.Epoch())
	}
	before = idx.Epoch()
	idx.Remove(99) // absent: no write round, no publication
	if idx.Epoch() != before {
		t.Fatalf("no-op remove advanced epoch: %d -> %d", before, idx.Epoch())
	}
}

// TestLenStatsLockFreeDuringWriterStall proves the satellite claim that
// Len and Stats never touch the writer mutex: both must return while a
// writer holds wmu.
func TestLenStatsLockFreeDuringWriterStall(t *testing.T) {
	idx, err := NewHyperplane(4, 6, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 32; i++ {
		if err := idx.Insert(ID(i), randVec(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	idx.wmu.Lock()
	defer idx.wmu.Unlock()
	if got := idx.Len(); got != 32 {
		t.Errorf("Len under held writer lock = %d, want 32", got)
	}
	if st := idx.Stats(); st.Items != 32 {
		t.Errorf("Stats.Items under held writer lock = %d, want 32", st.Items)
	}
}

// retiredProbeWorkload churns an index hard enough that arena slots are
// constantly retired and recycled while readers are mid-lookup, with
// retired-slot poisoning on: any reader that observes a retired slot's
// memory surfaces as a NaN distance (classic path) or a poisoned-code
// distance wildly off scale (quantized path). This is the reclamation
// property test from the issue: no reader ever observes a retired
// epoch's arena block.
func retiredProbeWorkload(t *testing.T, idx *HyperplaneIndex, dim int) {
	t.Helper()
	SetRetirePoisoning(true)
	defer SetRetirePoisoning(false)

	const (
		liveIDs = 64
		readers = 4
		ops     = 200
	)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < liveIDs; i++ {
		if err := idx.Insert(ID(i), randVec(rng, dim)); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: replace + remove/reinsert, recycling slots
		defer wg.Done()
		wrng := rand.New(rand.NewSource(13))
		for i := 0; i < ops; i++ {
			id := ID(wrng.Intn(liveIDs))
			if wrng.Float64() < 0.5 {
				idx.Remove(id)
			}
			if err := idx.Insert(id, randVec(wrng, dim)); err != nil {
				t.Error(err)
				break
			}
		}
		stop.Store(true)
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(int64(100 + r)))
			dst := make([]Neighbor, 0, 8)
			for !stop.Load() {
				q := randVec(rrng, dim)
				ns, err := idx.NearestInto(q, 4, dst)
				if err != nil {
					t.Error(err)
					return
				}
				for _, n := range ns {
					if math.IsNaN(n.Distance) || math.IsInf(n.Distance, 0) {
						t.Errorf("reader observed retired slot: distance %v for id %d",
							n.Distance, n.ID)
						return
					}
				}
				dst = ns[:0]
				// Yield between lookups, as production readers do
				// between frames; a never-yielding reader on a
				// single-P schedule turns every writer grace wait
				// into a full scheduler quantum.
				runtime.Gosched()
			}
		}(r)
	}
	wg.Wait()
}

func TestNoReaderObservesRetiredSlotClassic(t *testing.T) {
	idx, err := NewHyperplane(8, 6, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	retiredProbeWorkload(t, idx, 8)
}

func TestNoReaderObservesRetiredSlotTuned(t *testing.T) {
	tun := DefaultTuning()
	tun.Probes = 4
	idx, err := NewHyperplaneTuned(8, 6, 3, 42, tun)
	if err != nil {
		t.Fatal(err)
	}
	retiredProbeWorkload(t, idx, 8)
}

// TestLockFreeDifferentialWithLocked replays one interleaved
// insert/remove/lookup sequence against the lock-free index and the
// RWMutex-wrapped baseline and requires bit-identical results at every
// step: same neighbor IDs, same distances, same candidate sets, same
// lengths. The Locked wrapper serializes the same underlying
// implementation, so any divergence is a publication bug.
func TestLockFreeDifferentialWithLocked(t *testing.T) {
	for _, tc := range []struct {
		name string
		tun  Tuning
	}{
		{"classic", Tuning{}},
		{"tuned", DefaultTuning()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const dim = 8
			free, err := NewHyperplaneTuned(dim, 6, 3, 42, tc.tun)
			if err != nil {
				t.Fatal(err)
			}
			base, err := NewHyperplaneTuned(dim, 6, 3, 42, tc.tun)
			if err != nil {
				t.Fatal(err)
			}
			locked := NewLocked(base)

			rng := rand.New(rand.NewSource(3))
			var dstA, dstB []Neighbor
			var idsA, idsB []ID
			for op := 0; op < 1500; op++ {
				switch r := rng.Float64(); {
				case r < 0.45:
					id := ID(rng.Intn(200))
					v := randVec(rng, dim)
					errA := free.Insert(id, v)
					errB := locked.Insert(id, v)
					if (errA == nil) != (errB == nil) {
						t.Fatalf("op %d: insert err mismatch: %v vs %v", op, errA, errB)
					}
				case r < 0.6:
					id := ID(rng.Intn(200))
					free.Remove(id)
					locked.Remove(id)
				case r < 0.85:
					q := randVec(rng, dim)
					k := 1 + rng.Intn(5)
					nsA, errA := free.NearestInto(q, k, dstA)
					nsB, errB := locked.NearestInto(q, k, dstB)
					if (errA == nil) != (errB == nil) {
						t.Fatalf("op %d: nearest err mismatch: %v vs %v", op, errA, errB)
					}
					if len(nsA) != len(nsB) {
						t.Fatalf("op %d: nearest len %d vs %d", op, len(nsA), len(nsB))
					}
					for i := range nsA {
						if nsA[i] != nsB[i] {
							t.Fatalf("op %d: neighbor %d differs: %+v vs %+v",
								op, i, nsA[i], nsB[i])
						}
					}
					dstA, dstB = nsA[:0], nsB[:0]
				default:
					q := randVec(rng, dim)
					var errA, errB error
					idsA, errA = free.CandidatesInto(q, idsA[:0])
					idsB, errB = locked.CandidatesInto(q, idsB[:0])
					if (errA == nil) != (errB == nil) {
						t.Fatalf("op %d: candidates err mismatch: %v vs %v", op, errA, errB)
					}
					if len(idsA) != len(idsB) {
						t.Fatalf("op %d: candidate count %d vs %d", op, len(idsA), len(idsB))
					}
					for i := range idsA {
						if idsA[i] != idsB[i] {
							t.Fatalf("op %d: candidate %d differs: %d vs %d",
								op, i, idsA[i], idsB[i])
						}
					}
				}
				if free.Len() != locked.Len() {
					t.Fatalf("op %d: len %d vs %d", op, free.Len(), locked.Len())
				}
			}
			sA, sB := free.Stats(), locked.Stats()
			if sA != sB {
				t.Fatalf("final stats differ: %+v vs %+v", sA, sB)
			}
		})
	}
}

// TestLockedConcurrentStress runs the shared stress harness against the
// baseline wrapper so the E24 comparison object is itself race-clean.
func TestLockedConcurrentStress(t *testing.T) {
	inner, err := NewHyperplane(8, 6, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	stressIndex(t, NewLocked(inner), 8)
}
