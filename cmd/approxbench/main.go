// Command approxbench runs the evaluation suite (experiments E1–E19 from
// DESIGN.md) and prints the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	approxbench                 # run every experiment at full scale
//	approxbench -exp E1         # run one experiment
//	approxbench -frames 500     # smaller/faster runs
//	approxbench -parallel 8     # fan experiments/sweeps across workers
//	approxbench -list           # list the suite
//
// Independent experiments and sweep points run concurrently under
// -parallel; tables are printed in suite order and are identical to a
// serial run. -cpuprofile/-memprofile write pprof profiles so hot-path
// work can be driven by data.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"approxcache/internal/eval"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "approxbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("approxbench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment id (E1..E19), name, or \"all\"")
		frames   = fs.Int("frames", eval.DefaultScale().Frames, "per-device workload length in frames")
		seed     = fs.Int64("seed", eval.DefaultScale().Seed, "root random seed")
		format   = fs.String("format", "table", "output format: table | csv | markdown")
		list     = fs.Bool("list", false, "list experiments and exit")
		parallel = fs.Int("parallel", 1, "worker count for experiments and sweep points (1 = serial, -1 = NumCPU)")
		cpuprof  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range eval.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return nil
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	scale := eval.Scale{Frames: *frames, Seed: *seed, Workers: *parallel}
	experiments := eval.All()
	if *exp != "all" {
		e, err := eval.ByID(*exp)
		if err != nil {
			return err
		}
		experiments = []eval.Experiment{e}
	}
	if *format != "table" && *format != "csv" && *format != "markdown" {
		return fmt.Errorf("unknown format %q", *format)
	}
	start := time.Now()
	reports, err := eval.RunExperiments(experiments, scale)
	if err != nil {
		return err
	}
	for _, report := range reports {
		switch *format {
		case "csv":
			fmt.Printf("# %s — %s\n%s\n", report.ID, report.Title, report.CSV())
		case "markdown":
			fmt.Println(report.Markdown())
		default:
			fmt.Println(report)
			fmt.Println()
		}
	}
	if *format == "table" {
		fmt.Printf("(%d experiment(s) completed in %v, parallel=%d)\n",
			len(reports), time.Since(start).Round(time.Millisecond), *parallel)
	}
	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}
