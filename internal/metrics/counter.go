package metrics

import "sync/atomic"

// Counter is a typed process-wide event counter for subsystems that
// have no SessionStats handle (e.g. the peer protocol service answers
// queries for whichever sessions share the store).
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.n.Load() }

// QuarantineSuppressed counts quarantined cache entries withheld from
// peers: entries that would have been exported in a digest or answered
// to a query but were suppressed because their labels are under
// suspicion. A node must not launder its doubts through the swarm.
var QuarantineSuppressed Counter
