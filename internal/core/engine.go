// Package core implements the paper's primary contribution: the
// approximate-caching recognition pipeline that sits in front of a
// mobile DNN classifier and reuses previous results through four
// increasingly expensive gates — inertial (IMU), video locality
// (frame difference), local approximate cache (LSH + homogenized kNN),
// and peer-to-peer — falling back to DNN inference only when every
// gate misses.
//
// The engine charges all simulated costs (gate compute, inference
// latency, network RTTs) to an injected clock, so experiments replay a
// device trace deterministically on a virtual clock while live
// deployments use the wall clock.
package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"approxcache/internal/admission"
	"approxcache/internal/cachestore"
	"approxcache/internal/dnn"
	"approxcache/internal/feature"
	"approxcache/internal/imu"
	"approxcache/internal/lsh"
	"approxcache/internal/metrics"
	"approxcache/internal/p2p"
	"approxcache/internal/simclock"
	"approxcache/internal/video"
	"approxcache/internal/vision"
)

// Mode selects the caching strategy; the non-approximate modes are the
// evaluation baselines.
type Mode int

// Supported modes.
const (
	// ModeNoCache runs the DNN on every frame.
	ModeNoCache Mode = iota + 1
	// ModeExactCache memoizes results under a quantized-pixel hash:
	// only (near-)bit-identical frames hit. This is the classical
	// memoization baseline approximate caching improves on.
	ModeExactCache
	// ModeApprox is the full approximate-caching pipeline.
	ModeApprox
	// ModeNaiveSkip reuses the last result unconditionally and runs
	// the DNN only every SkipEvery-th frame. It matches the approx
	// pipeline's inference budget without any sensing, so it isolates
	// what the gates buy: reuse that *stops* at scene changes.
	ModeNaiveSkip
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeNoCache:
		return "no-cache"
	case ModeExactCache:
		return "exact-cache"
	case ModeApprox:
		return "approx-cache"
	case ModeNaiveSkip:
		return "naive-skip"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// CostModel simulates the on-device compute cost of each cache-path
// stage. Latencies are charged to the engine clock; energies (in
// millijoules) accumulate in the session stats.
type CostModel struct {
	IMUGateLatency time.Duration
	DiffLatency    time.Duration
	FeatureLatency time.Duration
	LookupLatency  time.Duration

	IMUGateEnergyMJ float64
	DiffEnergyMJ    float64
	FeatureEnergyMJ float64
	LookupEnergyMJ  float64
}

// DefaultCostModel returns stage costs calibrated to a mid-range
// smartphone CPU: the whole cache path costs single-digit milliseconds
// against ~100 ms-class inference.
func DefaultCostModel() CostModel {
	return CostModel{
		IMUGateLatency:  200 * time.Microsecond,
		DiffLatency:     1 * time.Millisecond,
		FeatureLatency:  4 * time.Millisecond,
		LookupLatency:   1 * time.Millisecond,
		IMUGateEnergyMJ: 0.05,
		DiffEnergyMJ:    0.3,
		FeatureEnergyMJ: 1.2,
		LookupEnergyMJ:  0.3,
	}
}

// Validate reports whether the model is usable.
func (c CostModel) Validate() error {
	if c.IMUGateLatency < 0 || c.DiffLatency < 0 || c.FeatureLatency < 0 || c.LookupLatency < 0 {
		return fmt.Errorf("core: negative stage latency")
	}
	if c.IMUGateEnergyMJ < 0 || c.DiffEnergyMJ < 0 || c.FeatureEnergyMJ < 0 || c.LookupEnergyMJ < 0 {
		return fmt.Errorf("core: negative stage energy")
	}
	return nil
}

// Config parameterizes an Engine.
type Config struct {
	// Mode selects the strategy (default ModeApprox).
	Mode Mode
	// Extractor maps frames to cache keys. Defaults to
	// feature.DefaultExtractor.
	Extractor feature.Extractor
	// Vote is the local-cache acceptance policy.
	Vote lsh.VoteConfig
	// IMU configures the inertial gate.
	IMU imu.DetectorConfig
	// Diff configures the video-locality gate.
	Diff video.DiffGateConfig
	// KeyframeCapacity is how many recent recognized scenes the video
	// gate remembers; panning back to any of them reuses its result
	// directly. 1 reproduces a single-keyframe gate. Default 4.
	KeyframeCapacity int
	// Costs simulates stage compute costs.
	Costs CostModel
	// Radio prices P2P traffic for energy accounting.
	Radio p2p.RadioEnergyModel
	// DisableIMUGate turns the inertial gate off (ablation).
	DisableIMUGate bool
	// DisableVideoGate turns the frame-difference gate off (ablation).
	DisableVideoGate bool
	// DisableGossip stops sharing fresh results with peers.
	DisableGossip bool
	// DisableRepair stops purging cached entries that a fresh
	// inference contradicts (ablation).
	DisableRepair bool
	// SkipEvery, in ModeNaiveSkip, runs the DNN on every SkipEvery-th
	// frame and reuses the last result otherwise. Ignored elsewhere.
	SkipEvery int
	// MaxReuseStreak bounds staleness: after this many consecutive
	// reuse-served frames the pipeline forces a fresh inference (a
	// quality-control revalidation), so one wrong inference cannot
	// poison an unbounded run of reused results. Zero disables the
	// bound. The default (20) keeps the DNN running on ~5% of frames
	// in the best case — the source of the "up to ~94%" latency
	// reduction ceiling.
	MaxReuseStreak int
	// PeerBudget caps the time a frame may spend waiting on the P2P
	// gate. Peer answers arriving later are discarded (the peer is
	// charged a timeout) and the gate's cost is clipped to the budget,
	// so a slow or dead peer can never stall a frame past it. Zero
	// derives the budget from PeerBudgetFraction.
	PeerBudget time.Duration
	// PeerBudgetFraction, when PeerBudget is zero, sets the budget to
	// this fraction of the classifier's mean inference latency — the
	// cache must stay cheaper than the work it avoids. The default
	// (0.25) allows ~25 ms against a 100 ms-class model. Negative
	// disables the budget entirely.
	PeerBudgetFraction float64
	// IMUGuard validates each frame's IMU window before it feeds the
	// motion detector; faulty windows are routed past the inertial gate
	// (see imu.CheckWindow). The zero value checks only for corrupt
	// (non-finite, non-monotonic) data.
	IMUGuard imu.GuardConfig
	// FrameGuard validates each frame before the gates touch it. The
	// zero value checks only structural faults (nil, empty, NaN).
	FrameGuard vision.FrameGuardConfig
	// DisableSensorGuards turns both input guards off (ablation). Nil
	// frames still error: nothing downstream can use them.
	DisableSensorGuards bool
	// Watchdog supervises the classifier: call deadline, bounded retry,
	// failure breaker with a degraded-serving fallback. The zero value
	// is a transparent passthrough.
	Watchdog WatchdogConfig
	// RequestDeadline is the per-request wall-clock budget. A frame that
	// blows it is answered from the degradation ladder (typed
	// metrics.SourceShed / DegradeDeadline) instead of occupying the
	// accelerator, and the micro-batcher stale-drops it if it expires in
	// the inference queue. Deadlines are wall-clock because queueing
	// delay and accelerator occupancy are wall-clock phenomena the
	// virtual experiment clock cannot see. Zero (the default) disables
	// deadlines.
	RequestDeadline time.Duration
	// Admission configures the AIMD overload limiter gating the DNN
	// fallback path (see internal/admission). The zero value is
	// disabled; frames shed by the limiter are answered from the
	// degradation ladder, typed SourceShed / DegradeOverload.
	Admission admission.Config
	// IndexTuning configures the LSH candidate pipeline (multi-probe
	// sequence length, packed-sketch prefilter, quantized re-rank) of
	// the cache store's index. The zero value keeps the classic
	// exact-bucket pipeline. Consumed by the store constructor; the
	// engine itself only sees lookup results.
	IndexTuning lsh.Tuning
	// Quality configures the self-healing quality layer: shadow audits
	// of cache hits, entry quarantine, and drift-adaptive gate
	// recalibration. The zero value is disabled. Only meaningful in
	// ModeApprox.
	Quality QualityConfig
	// LastResultTTL bounds how stale a last-served result the
	// degradation ladder may repeat: past the TTL the last-result rung
	// falls through to the next rung (a typed error) instead of
	// parroting ancient history. Measured on the engine clock. Zero
	// (the default) keeps the rung unbounded, matching prior behavior.
	LastResultTTL time.Duration
}

// DefaultConfig returns the standard pipeline configuration.
func DefaultConfig() Config {
	return Config{
		Mode:               ModeApprox,
		Extractor:          feature.DefaultExtractor(),
		Vote:               lsh.DefaultVoteConfig(),
		IMU:                imu.DefaultDetectorConfig(),
		Diff:               video.DefaultDiffGateConfig(),
		Costs:              DefaultCostModel(),
		Radio:              p2p.DefaultRadioEnergyModel(),
		MaxReuseStreak:     20,
		KeyframeCapacity:   4,
		PeerBudgetFraction: 0.25,
		IMUGuard:           imu.DefaultGuardConfig(),
		FrameGuard:         vision.DefaultFrameGuardConfig(),
		Watchdog:           DefaultWatchdogConfig(),
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch c.Mode {
	case ModeNoCache, ModeExactCache, ModeApprox, ModeNaiveSkip:
	default:
		return fmt.Errorf("core: unknown mode %d", int(c.Mode))
	}
	if c.Mode == ModeNaiveSkip && c.SkipEvery <= 0 {
		return fmt.Errorf("core: naive-skip needs positive SkipEvery, got %d", c.SkipEvery)
	}
	if err := c.Watchdog.Validate(); err != nil {
		return err
	}
	if c.RequestDeadline < 0 {
		return fmt.Errorf("core: RequestDeadline must be non-negative, got %v", c.RequestDeadline)
	}
	if c.LastResultTTL < 0 {
		return fmt.Errorf("core: LastResultTTL must be non-negative, got %v", c.LastResultTTL)
	}
	if err := c.Quality.Validate(); err != nil {
		return err
	}
	if err := c.Admission.Validate(); err != nil {
		return err
	}
	if err := c.IndexTuning.Validate(); err != nil {
		return err
	}
	if err := c.FrameGuard.Validate(); err != nil {
		return err
	}
	if c.Mode != ModeApprox {
		return c.Costs.Validate()
	}
	if err := c.IMUGuard.Validate(); err != nil {
		return err
	}
	if c.Extractor == nil {
		return fmt.Errorf("core: nil extractor")
	}
	if err := c.Vote.Validate(); err != nil {
		return err
	}
	if err := c.IMU.Validate(); err != nil {
		return err
	}
	if err := c.Diff.Validate(); err != nil {
		return err
	}
	if c.MaxReuseStreak < 0 {
		return fmt.Errorf("core: MaxReuseStreak must be non-negative, got %d", c.MaxReuseStreak)
	}
	if c.KeyframeCapacity <= 0 {
		return fmt.Errorf("core: KeyframeCapacity must be positive, got %d", c.KeyframeCapacity)
	}
	if c.PeerBudget < 0 {
		return fmt.Errorf("core: PeerBudget must be non-negative, got %v", c.PeerBudget)
	}
	return c.Costs.Validate()
}

// Classifier is the expensive recognition computation the cache fronts.
// *dnn.Classifier implements it; live deployments can plug in any
// recognizer (e.g. real model bindings).
type Classifier interface {
	// Infer classifies im, reporting the label and its cost.
	Infer(im *vision.Image) (dnn.Inference, error)
	// Profile returns the model's cost/quality profile.
	Profile() dnn.Profile
}

var _ Classifier = (*dnn.Classifier)(nil)

// Deps are the engine's injected dependencies.
type Deps struct {
	// Clock supplies time and absorbs simulated latency. Required.
	Clock simclock.Clock
	// Classifier is the fallback DNN. Required.
	Classifier Classifier
	// Store is the local cache store — any shape (single, sharded, or
	// serialized). Required in ModeApprox. Beware assigning a typed
	// nil pointer (e.g. a nil *cachestore.Store): it makes the
	// interface non-nil but unusable.
	Store cachestore.Interface
	// Peers queries nearby devices. Optional; nil disables the peer
	// gate.
	Peers *p2p.Client
}

// Result is the recognition outcome for one frame.
type Result struct {
	// Label is the recognized class label.
	Label string
	// Confidence is the serving component's confidence.
	Confidence float64
	// Source is which pipeline stage produced the label.
	Source metrics.Source
	// Latency is the end-to-end simulated latency charged for the
	// frame.
	Latency time.Duration
	// EnergyMJ is the energy charged for the frame.
	EnergyMJ float64
	// PeerName is set when Source is SourcePeer.
	PeerName string
	// Degradation is DegradeNone on the healthy pipeline; anything else
	// means the DNN was unavailable and the answer came down the
	// fallback ladder with halved confidence.
	Degradation DegradationLevel
}

// Engine is the per-device recognition pipeline. Engine is safe for
// concurrent use, though a device naturally processes frames serially.
type Engine struct {
	cfg   Config
	deps  Deps
	stats *metrics.SessionStats
	wd    *watchdog
	// ctrl is the admission/brownout controller, shared pool-wide (nil
	// when admission control is disabled).
	ctrl *admission.Controller
	// quality is the self-healing quality controller, shared pool-wide
	// like the watchdog (nil when the quality layer is disabled).
	quality *qualityController
	// jitterSeed seeds this session's deterministic retry-jitter
	// schedule, derived from the pool session index so sibling sessions
	// never retry in lockstep.
	jitterSeed uint64

	// scratch pools per-frame working memory (feature vector, neighbor
	// buffer) so the steady-state lookup path allocates nothing even
	// under concurrent Process calls.
	scratch sync.Pool

	mu        sync.RWMutex
	detector  *imu.Detector
	keyframes *video.KeyframeLibrary
	// last holds the most recent result BY VALUE: readers copy it
	// under the lock, so no caller ever shares slice-backed fields
	// with the engine's own mutable state (the multi-session pool
	// serves degraded frames from this copy concurrently).
	last    Result
	hasLast bool
	// lastAt stamps when last was set (engine clock), so the
	// degradation ladder can age it out under LastResultTTL.
	lastAt time.Time
	streak int // consecutive frames served by reuse sources
	// appliedScale is the quality controller's gate-strictness scale
	// last pushed into the detector and keyframe library; the engine
	// re-pushes only on change.
	appliedScale float64
	exact        map[uint64]exactEntry
}

// frameScratch is one frame's reusable working memory. The feature
// vector is safe to recycle because every downstream consumer (store
// insert, peer query/gossip encoding) copies it before returning.
type frameScratch struct {
	vec feature.Vector
	ns  []lsh.Neighbor
}

func (e *Engine) getScratch() *frameScratch {
	if sc, ok := e.scratch.Get().(*frameScratch); ok {
		return sc
	}
	return &frameScratch{}
}

type exactEntry struct {
	label      string
	confidence float64
}

// New builds an engine from cfg and deps.
func New(cfg Config, deps Deps) (*Engine, error) {
	return newEngine(cfg, deps, nil, nil, nil, nil, 0)
}

// newEngine builds an engine, optionally sharing session stats, a
// classifier watchdog, an admission controller, and a quality
// controller with sibling engines (the multi-session pool passes all
// four so every stream feeds one scoreboard, one breaker, one overload
// limiter, and one quality loop — they share the accelerator and cache
// those protect). Nil stats/wd/ctrl/qc get fresh private instances
// (ctrl only when cfg.Admission is enabled, qc only when cfg.Quality
// is). session is the pool session index; it seeds the per-session
// retry jitter.
func newEngine(cfg Config, deps Deps, stats *metrics.SessionStats, wd *watchdog, ctrl *admission.Controller, qc *qualityController, session int) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if deps.Clock == nil {
		return nil, fmt.Errorf("core: nil clock")
	}
	if deps.Classifier == nil {
		return nil, fmt.Errorf("core: nil classifier")
	}
	if stats == nil {
		stats = metrics.NewSessionStats()
	}
	if ctrl == nil && cfg.Admission.Enabled {
		var err error
		ctrl, err = admission.New(cfg.Admission)
		if err != nil {
			return nil, err
		}
		s := stats
		ctrl.SetTransitionHook(func(from, to admission.Level) {
			s.ObserveBrownoutTransition(to > from)
		})
	}
	// Normalize typed-nil stores: a nil *Store in the interface would
	// dodge the nil check below and crash on first use instead.
	switch st := deps.Store.(type) {
	case *cachestore.Store:
		if st == nil {
			deps.Store = nil
		}
	case *cachestore.ShardedStore:
		if st == nil {
			deps.Store = nil
		}
	case *cachestore.SerializedStore:
		if st == nil {
			deps.Store = nil
		}
	}
	e := &Engine{cfg: cfg, deps: deps, stats: stats, ctrl: ctrl, jitterSeed: jitterSeedFor(session), appliedScale: 1}
	if wd == nil {
		wd = newWatchdog(cfg.Watchdog, deps.Classifier, deps.Clock, stats)
	}
	e.wd = wd
	if deps.Peers != nil {
		deps.Peers.SetObserver(statsObserver{s: e.stats})
	}
	if cfg.Mode == ModeExactCache {
		e.exact = make(map[uint64]exactEntry)
	}
	if cfg.Mode == ModeApprox {
		if deps.Store == nil {
			return nil, fmt.Errorf("core: approx mode needs a store")
		}
		det, err := imu.NewDetector(cfg.IMU)
		if err != nil {
			return nil, err
		}
		lib, err := video.NewKeyframeLibrary(cfg.Diff, cfg.KeyframeCapacity)
		if err != nil {
			return nil, err
		}
		e.detector = det
		e.keyframes = lib
		if qc == nil && cfg.Quality.Enabled {
			qc = newQualityController(cfg.Quality, deps.Classifier, deps.Store, stats, ctrl)
		}
		e.quality = qc
	}
	return e, nil
}

// jitterSeedFor spreads session indices across the 64-bit space so the
// watchdog's per-session retry jitter diverges even for adjacent ids.
func jitterSeedFor(session int) uint64 {
	return (uint64(session) + 1) * 0x9e3779b97f4a7c15
}

// Stats returns the engine's session statistics.
func (e *Engine) Stats() *metrics.SessionStats { return e.stats }

// AdmissionSnapshot returns the overload controller's state; ok is
// false when admission control is disabled.
func (e *Engine) AdmissionSnapshot() (admission.Snapshot, bool) {
	if e.ctrl == nil {
		return admission.Snapshot{}, false
	}
	return e.ctrl.Snapshot(), true
}

// statsObserver forwards the peer client's resilience events into the
// engine's session stats.
type statsObserver struct{ s *metrics.SessionStats }

func (o statsObserver) PeerTimeout(string)     { o.s.ObservePeerTimeout() }
func (o statsObserver) BreakerTrip(string)     { o.s.ObserveBreakerTrip() }
func (o statsObserver) BreakerRecovery(string) { o.s.ObserveBreakerRecovery() }

// SetPeers installs (or replaces) the peer client used by the P2P gate
// and wires its resilience events (timeouts, breaker trips/recoveries)
// into the session stats. Passing nil disables the gate.
func (e *Engine) SetPeers(p *p2p.Client) {
	if p != nil {
		p.SetObserver(statsObserver{s: e.stats})
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.deps.Peers = p
}

// peerBudget returns the per-frame time budget for the P2P gate.
func (e *Engine) peerBudget() time.Duration {
	if e.cfg.PeerBudget > 0 {
		return e.cfg.PeerBudget
	}
	if e.cfg.PeerBudgetFraction > 0 {
		mean := e.deps.Classifier.Profile().MeanLatency
		return time.Duration(e.cfg.PeerBudgetFraction * float64(mean))
	}
	return 0
}

// peers snapshots the current peer client.
func (e *Engine) peers() *p2p.Client {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.deps.Peers
}

// Mode returns the engine's mode.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// LastResult returns a copy of the most recent result, if any. The
// copy is taken under the read lock and Result carries no slice-backed
// fields, so callers never alias engine-internal state.
func (e *Engine) LastResult() (Result, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.last, e.hasLast
}

// Process recognizes one frame. imuWindow carries the inertial samples
// received since the previous frame (ignored outside ModeApprox; nil
// is fine when unavailable). Structurally unusable inputs return
// ErrBadFrame or ErrBadIMUWindow; lesser sensor faults are routed past
// the gates they would fool. Use ProcessWithTruth in experiments so
// accuracy is tracked.
func (e *Engine) Process(im *vision.Image, imuWindow []imu.Sample) (Result, error) {
	return e.process(im, imuWindow, "", false)
}

// ProcessWithTruth is Process plus ground-truth accuracy accounting.
func (e *Engine) ProcessWithTruth(im *vision.Image, imuWindow []imu.Sample, truth string) (Result, error) {
	return e.process(im, imuWindow, truth, true)
}

func (e *Engine) process(im *vision.Image, imuWindow []imu.Sample, truth string, haveTruth bool) (Result, error) {
	if im == nil {
		e.stats.ObserveSensorFault("frame-" + vision.FrameNil.String())
		return Result{}, fmt.Errorf("%w: nil image", ErrBadFrame)
	}
	// Sensor guards: structurally broken inputs are refused with typed
	// errors; quality faults are routed past the gates they would fool.
	frameOK := true
	if !e.cfg.DisableSensorGuards {
		switch f := vision.CheckFrame(im, e.cfg.FrameGuard); {
		case f == vision.FrameOK:
		case f.Structural():
			e.stats.ObserveSensorFault("frame-" + f.String())
			return Result{}, fmt.Errorf("%w: %s", ErrBadFrame, f)
		default: // low entropy: recognizable by the DNN alone, at best
			e.stats.ObserveSensorFault("frame-" + f.String())
			frameOK = false
		}
	}
	imuOK := true
	if e.cfg.Mode == ModeApprox && !e.cfg.DisableSensorGuards {
		if wf := imu.CheckWindow(imuWindow, e.cfg.IMUGuard); wf != imu.WindowOK {
			e.stats.ObserveSensorFault("imu-" + wf.String())
			if wf == imu.WindowNonFinite {
				return Result{}, fmt.Errorf("%w: %s", ErrBadIMUWindow, wf)
			}
			imuOK = false
		}
	}
	// The request deadline is wall-clock: queueing delay and accelerator
	// occupancy — the things that blow it under overload — happen in
	// real time, invisible to a virtual experiment clock.
	var deadline time.Time
	if e.cfg.RequestDeadline > 0 {
		deadline = time.Now().Add(e.cfg.RequestDeadline)
	}
	var res Result
	var err error
	switch e.cfg.Mode {
	case ModeNoCache:
		res, err = e.processNoCache(im, deadline)
	case ModeExactCache:
		res, err = e.processExact(im, deadline)
	case ModeNaiveSkip:
		res, err = e.processNaiveSkip(im, deadline)
	default:
		res, err = e.processApprox(im, imuWindow, imuOK, frameOK, deadline)
	}
	if !deadline.IsZero() && err == nil {
		e.stats.ObserveDeadlineCompletion(time.Now().Before(deadline))
	}
	if err != nil {
		return Result{}, err
	}
	e.deps.Clock.Sleep(res.Latency)
	correct := haveTruth && res.Label == truth
	e.stats.ObserveFrame(res.Source, res.Latency, res.EnergyMJ, correct)
	if res.Degradation != DegradeNone {
		e.stats.ObserveDegradedServe(res.Degradation.String())
	}
	e.mu.Lock()
	e.last = res
	e.hasLast = true
	if res.Degradation == DegradeNone {
		// Only non-degraded serves refresh the staleness stamp: a
		// ladder answer is a replay of history, and letting a replay
		// renew its own age would defeat LastResultTTL.
		e.lastAt = e.deps.Clock.Now()
	}
	if res.Source == metrics.SourceDNN {
		e.streak = 0
	} else {
		// Degraded serves extend the streak too, keeping revalidation
		// pressure on: the pipeline re-probes the DNN (cheaply, through
		// the breaker) every frame until it heals.
		e.streak++
	}
	e.mu.Unlock()
	return res, nil
}

func (e *Engine) processNoCache(im *vision.Image, deadline time.Time) (Result, error) {
	inf, penalty, err := e.wd.infer(im, deadline, e.jitterSeed)
	if err != nil {
		return Result{}, fmt.Errorf("infer: %w", err)
	}
	return Result{
		Label:      inf.Label,
		Confidence: inf.Confidence,
		Source:     metrics.SourceDNN,
		Latency:    penalty + inf.Latency,
		EnergyMJ:   inf.EnergyMJ,
	}, nil
}

// processNaiveSkip reuses the last result blindly, inferring only every
// SkipEvery-th frame. The reuse is attributed to SourceVideo (it is a
// crude temporal-locality heuristic) so reports separate it from DNN
// work. With the DNN down, a due inference degrades to repeating the
// last result — the baseline has no cache to fall back on.
func (e *Engine) processNaiveSkip(im *vision.Image, deadline time.Time) (Result, error) {
	e.mu.Lock()
	last, hasLast := e.last, e.hasLast // copied under the lock
	skip := hasLast && (e.streak+1)%e.cfg.SkipEvery != 0
	e.mu.Unlock()
	if skip {
		return Result{
			Label:      last.Label,
			Confidence: last.Confidence,
			Source:     metrics.SourceVideo,
			Latency:    e.cfg.Costs.IMUGateLatency,
			EnergyMJ:   e.cfg.Costs.IMUGateEnergyMJ,
		}, nil
	}
	res, err := e.processNoCache(im, deadline)
	if err != nil && hasLast {
		return Result{
			Label:       last.Label,
			Confidence:  last.Confidence * fallbackConfidence,
			Source:      metrics.SourceFallback,
			Latency:     e.cfg.Costs.IMUGateLatency,
			EnergyMJ:    e.cfg.Costs.IMUGateEnergyMJ,
			Degradation: DegradeLastResult,
		}, nil
	}
	return res, err
}

// exactHashLevels quantizes pixels before hashing so that bit-identical
// renders (and only those, in practice) collide.
const exactHashLevels = 64

func exactHash(im *vision.Image) uint64 {
	h := fnv.New64a()
	var b [1]byte
	for _, p := range im.Pix {
		q := int(p * exactHashLevels)
		if q >= exactHashLevels {
			q = exactHashLevels - 1
		}
		b[0] = byte(q)
		_, _ = h.Write(b[:])
	}
	return h.Sum64()
}

func (e *Engine) processExact(im *vision.Image, deadline time.Time) (Result, error) {
	key := exactHash(im)
	cost := e.cfg.Costs.DiffLatency // hashing is diff-class work
	energy := e.cfg.Costs.DiffEnergyMJ
	e.mu.Lock()
	entry, ok := e.exact[key]
	e.mu.Unlock()
	if ok {
		return Result{
			Label:      entry.label,
			Confidence: entry.confidence,
			Source:     metrics.SourceLocal,
			Latency:    cost,
			EnergyMJ:   energy,
		}, nil
	}
	inf, penalty, err := e.wd.infer(im, deadline, e.jitterSeed)
	if err != nil {
		return Result{}, fmt.Errorf("infer: %w", err)
	}
	e.mu.Lock()
	e.exact[key] = exactEntry{label: inf.Label, confidence: inf.Confidence}
	e.mu.Unlock()
	return Result{
		Label:      inf.Label,
		Confidence: inf.Confidence,
		Source:     metrics.SourceDNN,
		Latency:    cost + penalty + inf.Latency,
		EnergyMJ:   energy + inf.EnergyMJ,
	}, nil
}

// processApprox runs the 4-gate pipeline. imuOK and frameOK report
// which inputs the sensor guards trusted: an untrusted IMU window skips
// the detector feed and the inertial gate; an untrusted (low-entropy)
// frame skips the video gate, the cache gates, and every cache
// mutation — its features would be meaningless — leaving only the DNN.
func (e *Engine) processApprox(im *vision.Image, imuWindow []imu.Sample, imuOK, frameOK bool, deadline time.Time) (Result, error) {
	// Brownout level snapshot: under sustained overload the controller
	// disables the expensive reuse stages (first P2P, then the kNN
	// vote), keeping the nearly-free IMU and video gates.
	brownout := admission.LevelFull
	if e.ctrl != nil {
		brownout = e.ctrl.Level()
	}
	// Quality layer: a reuse-refusal burst forces this frame to
	// revalidate; the gate-strictness scale (1 when healthy) shrinks
	// every reuse gate when shadow audits find accuracy drifting.
	forcedReval := false
	scale := 1.0
	if e.quality != nil {
		forcedReval = e.quality.consumeRefusal()
		scale = e.quality.scale()
	}
	e.mu.Lock()
	if e.quality != nil && scale != e.appliedScale {
		e.detector.SetStrictness(scale)
		e.keyframes.SetStrictness(scale)
		e.appliedScale = scale
	}
	if imuOK {
		e.detector.ObserveAll(imuWindow)
	}
	last, hasLast := e.last, e.hasLast
	// Bounded staleness: once a reuse streak reaches the cap, force a
	// fresh inference so a single wrong result cannot serve forever.
	revalidate := forcedReval || (e.cfg.MaxReuseStreak > 0 && e.streak >= e.cfg.MaxReuseStreak)
	var latency time.Duration
	var energy float64

	// Gate 1: inertial reuse. If the device has not moved since the
	// last verified recognition, return it at near-zero cost.
	if imuOK && !revalidate && !e.cfg.DisableIMUGate && hasLast {
		latency += e.cfg.Costs.IMUGateLatency
		energy += e.cfg.Costs.IMUGateEnergyMJ
		if e.detector.AllowReuse() {
			res := Result{
				Label:      last.Label,
				Confidence: last.Confidence,
				Source:     metrics.SourceIMU,
				Latency:    latency,
				EnergyMJ:   energy,
			}
			e.mu.Unlock()
			e.maybeAudit(im, res.Label, nil, deadline)
			return res, nil
		}
	}

	// Gate 2: video locality. A cheap pixel diff against the recent
	// recognized keyframes catches temporal locality the IMU missed —
	// including panning back to a scene seen a few keyframes ago.
	if frameOK && !revalidate && !e.cfg.DisableVideoGate && e.keyframes.Len() > 0 {
		latency += e.cfg.Costs.DiffLatency
		energy += e.cfg.Costs.DiffEnergyMJ
		if kf, ok := e.keyframes.Match(im); ok {
			res := Result{
				Label:      kf.Label,
				Confidence: kf.Confidence,
				Source:     metrics.SourceVideo,
				Latency:    latency,
				EnergyMJ:   energy,
			}
			e.mu.Unlock()
			e.maybeAudit(im, res.Label, nil, deadline)
			return res, nil
		}
	}
	e.mu.Unlock()

	// Gate 3: local approximate cache. The feature vector and neighbor
	// buffer come from the engine's scratch pool: the extractor writes
	// into the reused vector and the index ranks into the reused
	// buffer, so a steady-state frame allocates nothing here.
	var vec feature.Vector
	var sc *frameScratch
	peers := e.peers()
	if frameOK {
		latency += e.cfg.Costs.FeatureLatency
		energy += e.cfg.Costs.FeatureEnergyMJ
		sc = e.getScratch()
		defer e.scratch.Put(sc)
		var err error
		vec, err = feature.ExtractInto(e.cfg.Extractor, im, sc.vec)
		if err != nil {
			return Result{}, fmt.Errorf("extract: %w", err)
		}
		sc.vec = vec
	}
	if frameOK && !revalidate {
		latency += e.cfg.Costs.LookupLatency
		energy += e.cfg.Costs.LookupEnergyMJ
		// The quality controller's strictness scale shrinks the reuse
		// radius when live accuracy drifts below target (a stack copy;
		// the configured policy is never mutated).
		vote := e.cfg.Vote
		vote.MaxDistance *= scale
		k := vote.K
		if brownout >= admission.LevelFirstCandidate {
			k = 1
		}
		ns, err := e.deps.Store.NearestInto(vec, k, sc.ns)
		if err != nil {
			return Result{}, fmt.Errorf("nearest: %w", err)
		}
		sc.ns = ns[:0]
		var verdict lsh.Verdict
		if brownout >= admission.LevelFirstCandidate {
			// Deep brownout: skip the homogenized-kNN vote and serve the
			// nearest in-range candidate directly. Cheaper and less
			// verified — acceptable exactly because the alternative
			// under this much pressure is shedding the frame entirely.
			if len(ns) > 0 && ns[0].Distance <= vote.MaxDistance {
				if entry, ok := e.deps.Store.Get(ns[0].ID); ok {
					verdict = lsh.Verdict{Accepted: true, Label: entry.Label, Confidence: entry.Confidence}
				}
			}
		} else if verdict, err = lsh.Vote(ns, e.deps.Store.Label, vote); err != nil {
			return Result{}, fmt.Errorf("vote: %w", err)
		}
		if verdict.Accepted {
			if len(ns) > 0 {
				e.deps.Store.Touch(ns[0].ID)
			}
			res := Result{
				Label:      verdict.Label,
				Confidence: verdict.Confidence,
				Source:     metrics.SourceLocal,
				Latency:    latency,
				EnergyMJ:   energy,
			}
			e.refreshScene(im, res.Label, res.Confidence)
			if e.quality != nil {
				// The in-range neighbors backed this serve; an audit
				// will confirm or refute them by ID.
				var aud [maxAuditIDs]lsh.ID
				an := 0
				for _, n := range ns {
					if an == len(aud) || n.Distance > vote.MaxDistance {
						break
					}
					aud[an] = n.ID
					an++
				}
				e.maybeAudit(im, res.Label, aud[:an], deadline)
			}
			return res, nil
		}

		// Gate 4: peer-to-peer reuse, under a per-frame time budget so
		// a dead or slow peer can never stall the frame past it. When
		// every peer's circuit is open the gate is skipped at zero
		// cost: the local gates and the DNN keep serving while the
		// breaker re-probes peers on its backoff schedule. Brownout
		// disables the gate first — it is the most expensive reuse
		// stage and the node is already short on time.
		budget := e.peerBudget()
		peerTime := true
		if !deadline.IsZero() {
			// The peer budget cannot exceed what is left of the request
			// deadline; with the budget gone the gate is skipped
			// entirely (the fallback's deadline check sheds the frame).
			// QueryFrame reads budget 0 as unbounded, so an exhausted
			// deadline must skip, not cap to zero.
			remaining := time.Until(deadline)
			if remaining <= 0 {
				peerTime = false
			} else if budget == 0 || remaining < budget {
				budget = remaining
			}
		}
		if peers != nil && peerTime && brownout < admission.LevelNoPeer {
			out, err := peers.QueryFrame(vec, budget)
			if err != nil {
				return Result{}, fmt.Errorf("peer query: %w", err)
			}
			if out.Degraded {
				e.stats.ObserveDegradedFrame()
			}
			if out.Queried > 0 {
				latency += out.Cost
				// The client knows which codec its peer set negotiated,
				// so the radio model charges the actual request size.
				reqSize := peers.QueryWireSize(len(vec))
				energy += e.cfg.Radio.RTTCost(reqSize, 32)
				e.stats.ObservePeerQuery(out.Found)
			}
			if out.Found {
				hit := out.Hit
				// Adopt the peer's answer locally so the next similar
				// frame hits gate 3.
				pid, err := e.deps.Store.Insert(vec, hit.Label, hit.Confidence, "peer",
					e.deps.Classifier.Profile().MeanLatency)
				if err != nil {
					return Result{}, fmt.Errorf("adopt peer hit: %w", err)
				}
				res := Result{
					Label:      hit.Label,
					Confidence: hit.Confidence,
					Source:     metrics.SourcePeer,
					Latency:    latency,
					EnergyMJ:   energy,
					PeerName:   hit.Peer,
				}
				e.refreshScene(im, res.Label, res.Confidence)
				if e.quality != nil {
					// Audit the adopted entry: a peer's bad answer must
					// accrue refutes here, not just on the peer.
					aud := [1]lsh.ID{pid}
					e.maybeAudit(im, res.Label, aud[:], deadline)
				}
				return res, nil
			}
		}
	}

	// Fallback: run the DNN under the watchdog — but overload protection
	// first. A frame that has already blown its deadline, or that the
	// admission limiter refuses, is answered from the degradation ladder
	// instead of occupying the accelerator.
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		e.stats.ObserveExpiredDrop()
		return e.serveShed(vec, sc, frameOK, latency, energy, DegradeDeadline, ErrDeadlineExceeded)
	}
	if e.ctrl != nil && !e.ctrl.TryAcquire() {
		e.stats.ObserveShed()
		return e.serveShed(vec, sc, frameOK, latency, energy, DegradeOverload, ErrOverloadShed)
	}
	inf, penalty, ierr := e.wd.infer(im, deadline, e.jitterSeed)
	if e.ctrl != nil {
		// Complete the admitted slot: queue refusals back the limit off
		// as overflow; everything else reports whether the frame is
		// still inside its budget (AIMD increase or backoff).
		if dnn.IsOverloadError(ierr) {
			e.ctrl.ReleaseOverflow()
		} else {
			e.ctrl.Release(deadline.IsZero() || time.Now().Before(deadline))
		}
	}
	latency += penalty
	if ierr != nil {
		switch {
		case errors.Is(ierr, dnn.ErrExpiredInQueue):
			e.stats.ObserveExpiredDrop()
			return e.serveShed(vec, sc, frameOK, latency, energy, DegradeDeadline, ierr)
		case errors.Is(ierr, dnn.ErrQueueFull):
			e.stats.ObserveShed()
			return e.serveShed(vec, sc, frameOK, latency, energy, DegradeOverload, ierr)
		}
		return e.serveDegraded(vec, sc, frameOK, latency, energy, ierr)
	}
	latency += inf.Latency
	energy += inf.EnergyMJ
	if frameOK {
		if !e.cfg.DisableRepair {
			// Cache repair: entries sitting where we just looked,
			// carrying a different label, are contradicted by fresh
			// evidence — purge them so they stop winning votes.
			e.stats.ObserveRepairs(e.repairContradicted(vec, inf.Label, sc))
		}
		if _, err := e.deps.Store.Insert(vec, inf.Label, inf.Confidence, "dnn", inf.Latency); err != nil {
			return Result{}, fmt.Errorf("cache insert: %w", err)
		}
		if peers != nil && !e.cfg.DisableGossip {
			// Gossip is asynchronous on a real device: it costs radio
			// energy but does not extend the frame's latency.
			if _, err := peers.Gossip(vec, inf.Label, inf.Confidence, inf.Latency); err == nil {
				size := peers.GossipWireSize(len(vec), len(inf.Label))
				energy += e.cfg.Radio.MessageCost(size) * float64(len(peers.Peers()))
			}
		}
	}
	res := Result{
		Label:      inf.Label,
		Confidence: inf.Confidence,
		Source:     metrics.SourceDNN,
		Latency:    latency,
		EnergyMJ:   energy,
	}
	if frameOK {
		e.refreshScene(im, res.Label, res.Confidence)
	}
	return res, nil
}

// fallbackConfidence discounts degraded answers: the pipeline cannot
// verify them, so it halves the confidence it reports.
const fallbackConfidence = 0.5

// fallbackRadiusFactor relaxes the cache acceptance radius for degraded
// serving: with the DNN down, a merely-nearby answer beats none.
const fallbackRadiusFactor = 2.0

// serveDegraded walks the degradation ladder after a failed inference:
// the nearest cached entry within a relaxed radius, then the last
// served result, then — with nothing left to say — the error itself.
// Degraded answers carry halved confidence, SourceFallback, and the
// ladder level, so callers and metrics can tell them apart.
func (e *Engine) serveDegraded(vec feature.Vector, sc *frameScratch, haveVec bool, latency time.Duration, energy float64, cause error) (Result, error) {
	if haveVec {
		latency += e.cfg.Costs.LookupLatency
		energy += e.cfg.Costs.LookupEnergyMJ
		if ns, err := e.deps.Store.NearestInto(vec, 1, sc.ns); err == nil {
			if len(ns) > 0 && ns[0].Distance <= fallbackRadiusFactor*e.cfg.Vote.MaxDistance {
				if entry, ok := e.deps.Store.Get(ns[0].ID); ok {
					e.deps.Store.Touch(entry.ID)
					sc.ns = ns[:0]
					return Result{
						Label:       entry.Label,
						Confidence:  entry.Confidence * fallbackConfidence,
						Source:      metrics.SourceFallback,
						Latency:     latency,
						EnergyMJ:    energy,
						Degradation: DegradeCacheOnly,
					}, nil
				}
			}
			sc.ns = ns[:0]
		}
	}
	if last, ok := e.lastResultFresh(); ok {
		return Result{
			Label:       last.Label,
			Confidence:  last.Confidence * fallbackConfidence,
			Source:      metrics.SourceFallback,
			Latency:     latency,
			EnergyMJ:    energy,
			Degradation: DegradeLastResult,
		}, nil
	}
	return Result{}, fmt.Errorf("recognition unavailable: %w", cause)
}

// lastResultFresh returns the last result for degraded serving, unless
// LastResultTTL is set and the result has outlived it — a ladder that
// would otherwise repeat arbitrarily ancient history falls through to
// the next rung instead.
func (e *Engine) lastResultFresh() (Result, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if !e.hasLast {
		return Result{}, false
	}
	if e.cfg.LastResultTTL > 0 && e.deps.Clock.Now().Sub(e.lastAt) > e.cfg.LastResultTTL {
		return Result{}, false
	}
	return e.last, true
}

// maybeAudit forwards a reuse serve to the quality controller's shadow
// auditor. ids are the cache entries that backed the serve; the
// controller copies them before returning, so scratch-backed slices
// are safe to pass.
func (e *Engine) maybeAudit(im *vision.Image, served string, ids []lsh.ID, deadline time.Time) {
	if e.quality == nil {
		return
	}
	e.quality.maybeAudit(e, im, served, ids, deadline)
}

// serveShed answers a frame that overload protection kept off the
// accelerator — admission shed, queue overflow, or a blown deadline —
// from the same ladder as serveDegraded, retyped metrics.SourceShed
// with the overload marker so callers can tell load shedding apart from
// classifier failure. Like every degraded serve, the answer is never a
// silent drop: it is a typed, reduced-confidence result, or the typed
// cause when the ladder is empty.
func (e *Engine) serveShed(vec feature.Vector, sc *frameScratch, haveVec bool, latency time.Duration, energy float64, marker DegradationLevel, cause error) (Result, error) {
	res, err := e.serveDegraded(vec, sc, haveVec, latency, energy, cause)
	if err != nil {
		return res, err
	}
	res.Source = metrics.SourceShed
	res.Degradation = marker
	return res, nil
}

// repairContradicted removes cached entries within half the reuse
// radius of vec whose label differs from freshLabel. Any such entry
// would have claimed this very lookup, and the DNN just disagreed. The
// frame's scratch buffer is reused for the neighbor scan.
func (e *Engine) repairContradicted(vec feature.Vector, freshLabel string, sc *frameScratch) int {
	ns, err := e.deps.Store.NearestInto(vec, e.cfg.Vote.K, sc.ns)
	if err != nil {
		return 0
	}
	sc.ns = ns[:0]
	removed := 0
	for _, n := range ns {
		if n.Distance > e.cfg.Vote.MaxDistance/2 {
			break // sorted by distance: the rest are farther
		}
		if label, ok := e.deps.Store.Label(n.ID); ok && label != freshLabel {
			e.deps.Store.Remove(n.ID)
			removed++
		}
	}
	return removed
}

// refreshScene re-anchors the cheap gates after a verified recognition:
// the frame joins the keyframe library and the rotation integrator
// resets.
func (e *Engine) refreshScene(im *vision.Image, label string, confidence float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.keyframes.Push(im, label, confidence)
	e.detector.Mark()
}
