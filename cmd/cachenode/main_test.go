package main

import (
	"os"
	"testing"
)

func TestSplitComma(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"a,b", []string{"a", "b"}},
		{"a,,b,", []string{"a", "b"}},
		{",x", []string{"x"}},
	}
	for _, tt := range tests {
		got := splitComma(tt.in)
		if len(got) != len(tt.want) {
			t.Fatalf("splitComma(%q) = %v, want %v", tt.in, got, tt.want)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Fatalf("splitComma(%q) = %v, want %v", tt.in, got, tt.want)
			}
		}
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"mobilenet-v2", "squeezenet", "inception-v3", "resnet-50"} {
		p, err := profileByName(name)
		if err != nil || p.Name != name {
			t.Fatalf("%s: %+v, %v", name, p, err)
		}
	}
	if _, err := profileByName("gpt-4"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestRunBadModel(t *testing.T) {
	if err := run([]string{"-model", "nope"}); err == nil {
		t.Fatal("bad model accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunStandalone(t *testing.T) {
	if err := run([]string{"-frames", "40", "-warm", "20", "-addr", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiSession(t *testing.T) {
	if err := run([]string{
		"-sessions", "4", "-shards", "4", "-batch", "4",
		"-frames", "30", "-addr", "127.0.0.1:0",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiSessionSnapshot(t *testing.T) {
	path := t.TempDir() + "/node.snap"
	// First run saves the shared (sharded) store...
	if err := run([]string{
		"-sessions", "2", "-frames", "20", "-addr", "127.0.0.1:0",
		"-snapshot", path,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	// ...and a single-session node warm-starts from it: the wire format
	// carries entries, not shard topology.
	if err := run([]string{
		"-frames", "10", "-addr", "127.0.0.1:0",
		"-snapshot", path,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithUnreachablePeer(t *testing.T) {
	// An unreachable peer must degrade to local operation, not fail.
	err := run([]string{
		"-frames", "30", "-addr", "127.0.0.1:0",
		"-peers", "127.0.0.1:1",
	})
	if err != nil {
		t.Fatalf("unreachable peer broke the node: %v", err)
	}
}
