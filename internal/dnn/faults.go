package dnn

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"approxcache/internal/vision"
)

// ErrInjectedFault is the error returned by a FaultyClassifier during a
// scripted error window. Wrapped errors unwrap to it so tests and the
// watchdog's retry policy can identify injected (transient) faults.
var ErrInjectedFault = errors.New("dnn: injected fault")

// Recognizer is the classifier surface a FaultyClassifier wraps. It is
// structurally identical to the engine's Classifier interface, so a
// FaultyClassifier slots anywhere a classifier does.
type Recognizer interface {
	Infer(im *vision.Image) (Inference, error)
	Profile() Profile
}

// FaultKind selects a scripted classifier misbehaviour.
type FaultKind int

// Supported classifier fault kinds.
const (
	// FaultError makes Infer return ErrInjectedFault (a transient
	// failure: OOM kill, delegate crash, thermal throttle abort).
	FaultError FaultKind = iota + 1
	// FaultHang makes Infer block on the wall clock for the window's
	// Extra duration (or until Release is called) before returning
	// ErrInjectedFault — a wedged accelerator delegate. Use small Extra
	// values in tests; the watchdog's per-call deadline is what bounds
	// the stall in the pipeline.
	FaultHang
	// FaultSlow lets Infer succeed but inflates the reported latency by
	// the window's Extra duration — a thermally throttled model.
	FaultSlow
	// FaultDrift lets Infer succeed but rewrites the returned label
	// through the window's Relabel function — model drift: the world
	// (or a model update) changed what the classifier says about the
	// same scenes, so everything cached before the window is now wrong.
	// Unlike the transient kinds, drift is silent: no error, no
	// latency bump, just answers that quietly contradict the cache.
	FaultDrift
)

// String returns the fault kind name.
func (k FaultKind) String() string {
	switch k {
	case FaultError:
		return "error"
	case FaultHang:
		return "hang"
	case FaultSlow:
		return "slow"
	case FaultDrift:
		return "drift"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultWindow scripts one fault over a half-open range of Infer calls
// [From, To). Call numbering starts at 0 and counts every attempt,
// including watchdog retries, so a retry during an outage window fails
// too — exactly how a broken model behaves.
type FaultWindow struct {
	From, To int
	Kind     FaultKind
	// Extra is the hang duration (FaultHang) or added latency
	// (FaultSlow). Ignored for FaultError and FaultDrift.
	Extra time.Duration
	// Relabel maps the wrapped model's label to the drifted one
	// (FaultDrift only). It must be pure and deterministic so replays
	// reproduce. See ShiftRelabel for the standard rotation.
	Relabel func(string) string
}

// FaultPlan is a deterministic script of classifier faults.
type FaultPlan []FaultWindow

// Validate reports whether the plan is usable.
func (p FaultPlan) Validate() error {
	for i, w := range p {
		if w.From < 0 || w.To < w.From {
			return fmt.Errorf("dnn: fault window %d has bad range [%d,%d)", i, w.From, w.To)
		}
		switch w.Kind {
		case FaultError, FaultHang, FaultSlow, FaultDrift:
		default:
			return fmt.Errorf("dnn: fault window %d has unknown kind %d", i, int(w.Kind))
		}
		if w.Kind != FaultError && w.Extra < 0 {
			return fmt.Errorf("dnn: fault window %d has negative extra %v", i, w.Extra)
		}
		if w.Kind == FaultDrift && w.Relabel == nil {
			return fmt.Errorf("dnn: fault window %d is drift without a Relabel", i)
		}
	}
	return nil
}

// FaultyClassifier wraps a Recognizer with a deterministic fault plan
// plus a manual down switch, for chaos experiments and watchdog tests.
// It is safe for concurrent use.
type FaultyClassifier struct {
	inner Recognizer

	mu      sync.Mutex
	plan    FaultPlan
	calls   int
	down    bool
	release chan struct{}
}

// NewFaultyClassifier wraps inner with plan.
func NewFaultyClassifier(inner Recognizer, plan FaultPlan) (*FaultyClassifier, error) {
	if inner == nil {
		return nil, fmt.Errorf("dnn: nil inner classifier")
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &FaultyClassifier{inner: inner, plan: plan, release: make(chan struct{})}, nil
}

// Profile returns the wrapped model's profile.
func (f *FaultyClassifier) Profile() Profile { return f.inner.Profile() }

// Calls returns how many Infer attempts have been made so far.
func (f *FaultyClassifier) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// SetDown switches the manual outage on or off. While down, every call
// fails with ErrInjectedFault regardless of the plan — the hook chaos
// harnesses use to crash and heal the model on a frame timeline.
func (f *FaultyClassifier) SetDown(down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down = down
}

// SetFaultPlan replaces the fault plan at runtime. Call numbering is
// NOT reset: drift harnesses install a window at [Calls(), ∞) to flip
// the model mid-run at an exact point in its real call sequence
// (retries and shadow audits included).
func (f *FaultyClassifier) SetFaultPlan(plan FaultPlan) error {
	if err := plan.Validate(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plan = plan
	return nil
}

// Release unblocks any Infer call currently hung by a FaultHang window.
func (f *FaultyClassifier) Release() {
	f.mu.Lock()
	defer f.mu.Unlock()
	close(f.release)
	f.release = make(chan struct{})
}

// Infer consults the manual switch and the plan for this call number,
// then either fails, hangs, or delegates to the wrapped model.
func (f *FaultyClassifier) Infer(im *vision.Image) (Inference, error) {
	f.mu.Lock()
	call := f.calls
	f.calls++
	down := f.down
	release := f.release
	var active *FaultWindow
	for i := range f.plan {
		if call >= f.plan[i].From && call < f.plan[i].To {
			active = &f.plan[i]
			break
		}
	}
	f.mu.Unlock()

	if down {
		return Inference{}, fmt.Errorf("%w: call %d (down)", ErrInjectedFault, call)
	}
	if active == nil {
		return f.inner.Infer(im)
	}
	switch active.Kind {
	case FaultError:
		return Inference{}, fmt.Errorf("%w: call %d", ErrInjectedFault, call)
	case FaultHang:
		if active.Extra > 0 {
			select {
			case <-release:
			case <-time.After(active.Extra):
			}
		} else {
			<-release
		}
		return Inference{}, fmt.Errorf("%w: call %d (hang)", ErrInjectedFault, call)
	case FaultDrift:
		inf, err := f.inner.Infer(im)
		if err != nil {
			return inf, err
		}
		inf.Label = active.Relabel(inf.Label)
		return inf, nil
	default: // FaultSlow
		inf, err := f.inner.Infer(im)
		if err != nil {
			return inf, err
		}
		inf.Latency += active.Extra
		return inf, nil
	}
}

// ShiftRelabel returns the standard drift map: a rotation of the
// class-label space by shift positions mod numClasses. Labels outside
// the class-N form pass through unchanged. Rotation makes EVERY
// pre-drift cache entry wrong at once — the worst case for a system
// whose whole business is reusing old answers.
func ShiftRelabel(shift, numClasses int) func(string) string {
	return func(label string) string {
		var c int
		if _, err := fmt.Sscanf(label, "class-%d", &c); err != nil || c < 0 || c >= numClasses {
			return label
		}
		return LabelOf((c + shift) % numClasses)
	}
}
