package feature

// Differential and buffer-contract tests for the ExtractInto hot path:
// the integral-image grid against the naive per-cell reference, the
// fused combined pass against running the parts separately, and the
// dst-reuse semantics every IntoExtractor must honor.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"approxcache/internal/vision"
)

func noisyImage(w, h int, seed int64) *vision.Image {
	im := vision.NewImage(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range im.Pix {
		im.Pix[i] = rng.Float64()
	}
	return im
}

// TestGridIntegralMatchesNaive pins the summed-area-table path to the
// naive per-cell summation within 1e-9, across shapes where cell sizes
// divide unevenly (the carry-stepped boundary cases).
func TestGridIntegralMatchesNaive(t *testing.T) {
	cases := []struct{ w, h, cols, rows int }{
		{48, 48, 8, 8},
		{53, 47, 8, 8},
		{53, 47, 7, 5},
		{10, 10, 3, 3},
		{64, 32, 16, 4},
		{9, 7, 9, 7}, // one pixel per cell
		{100, 3, 13, 3},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%dx%d_grid%dx%d", c.w, c.h, c.cols, c.rows), func(t *testing.T) {
			im := noisyImage(c.w, c.h, int64(c.w*c.h))
			g := GridExtractor{Cols: c.cols, Rows: c.rows}
			got, err := g.ExtractInto(im, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := g.extractNaiveInto(im, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("len %d, want %d", len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					t.Fatalf("cell %d: integral %v vs naive %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestFusedMatchesSeparateParts pins the fused grid+histogram pass to
// running the naive grid and the standalone histogram separately. The
// fused pass preserves both accumulation orders, so the match is exact.
func TestFusedMatchesSeparateParts(t *testing.T) {
	for _, c := range []struct{ w, h int }{{48, 48}, {53, 47}, {17, 31}} {
		t.Run(fmt.Sprintf("%dx%d", c.w, c.h), func(t *testing.T) {
			im := noisyImage(c.w, c.h, int64(c.w+c.h))
			g := GridExtractor{Cols: 8, Rows: 8}
			h := HistogramExtractor{Bins: 16}
			for _, normalize := range []bool{false, true} {
				comb, err := NewCombinedExtractor(normalize, g, h)
				if err != nil {
					t.Fatal(err)
				}
				if comb.fusedGrid == nil {
					t.Fatal("grid+hist shape not fused")
				}
				got, err := comb.ExtractInto(im, nil)
				if err != nil {
					t.Fatal(err)
				}
				gv, err := g.extractNaiveInto(im, nil)
				if err != nil {
					t.Fatal(err)
				}
				hv, err := h.ExtractInto(im, nil)
				if err != nil {
					t.Fatal(err)
				}
				want := append(append(Vector{}, gv...), hv...)
				if normalize {
					want.Normalize()
				}
				if len(got) != len(want) {
					t.Fatalf("len %d, want %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("normalize=%v dim %d: fused %v, parts %v",
							normalize, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestCombinedGenericPathMatchesFused runs the same shape through the
// generic per-part path (by defeating fusion with a wrapper) and checks
// it agrees with the fused result to within the SAT tolerance.
func TestCombinedGenericPathMatchesFused(t *testing.T) {
	im := noisyImage(48, 48, 21)
	g := GridExtractor{Cols: 8, Rows: 8}
	h := HistogramExtractor{Bins: 16}
	fused, err := NewCombinedExtractor(true, g, h)
	if err != nil {
		t.Fatal(err)
	}
	generic, err := NewCombinedExtractor(true, wrapExtractor{g}, h)
	if err != nil {
		t.Fatal(err)
	}
	if generic.fusedGrid != nil {
		t.Fatal("wrapper failed to defeat fusion")
	}
	a, err := fused.Extract(im)
	if err != nil {
		t.Fatal(err)
	}
	b, err := generic.Extract(im)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("dim %d: fused %v, generic %v", i, a[i], b[i])
		}
	}
}

// wrapExtractor hides the concrete type so NewCombinedExtractor cannot
// fuse, and hides ExtractInto so the package-level fallback (Extract
// plus copy) is exercised through the combined generic path.
type wrapExtractor struct{ inner Extractor }

func (w wrapExtractor) Extract(im *vision.Image) (Vector, error) { return w.inner.Extract(im) }
func (w wrapExtractor) Dim() int                                 { return w.inner.Dim() }
func (w wrapExtractor) Name() string                             { return w.inner.Name() }

// TestExtractIntoBufferContract checks aliasing and reuse for every
// IntoExtractor: a big-enough dst is reused in place, a too-small dst is
// replaced, and repeated calls converge to zero fresh storage.
func TestExtractIntoBufferContract(t *testing.T) {
	im := noisyImage(48, 48, 33)
	extractors := []Extractor{
		GridExtractor{Cols: 8, Rows: 8},
		HistogramExtractor{Bins: 16},
		DefaultExtractor(),
	}
	for _, e := range extractors {
		t.Run(e.Name(), func(t *testing.T) {
			want, err := e.Extract(im)
			if err != nil {
				t.Fatal(err)
			}
			// Too-small dst: result must still be correct.
			small := make(Vector, 0, 1)
			got, err := ExtractInto(e, im, small)
			if err != nil {
				t.Fatal(err)
			}
			assertSameVector(t, got, want)
			// Ample dst: result must alias it.
			big := make(Vector, 0, e.Dim()+10)
			got, err = ExtractInto(e, im, big)
			if err != nil {
				t.Fatal(err)
			}
			if &got[0] != &big[:1][0] {
				t.Fatal("ample dst was not reused")
			}
			assertSameVector(t, got, want)
			// Reuse the returned buffer: stable across calls.
			again, err := ExtractInto(e, im, got[:0])
			if err != nil {
				t.Fatal(err)
			}
			assertSameVector(t, again, want)
		})
	}
}

// TestExtractIntoFallback covers the package-level fallback for
// extractors without an ExtractInto method.
func TestExtractIntoFallback(t *testing.T) {
	im := noisyImage(32, 32, 44)
	e := wrapExtractor{GridExtractor{Cols: 4, Rows: 4}}
	want, err := e.Extract(im)
	if err != nil {
		t.Fatal(err)
	}
	dst := make(Vector, 0, 16)
	got, err := ExtractInto(e, im, dst)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &dst[:1][0] {
		t.Fatal("fallback did not copy into dst")
	}
	assertSameVector(t, got, want)
	if _, err := ExtractInto(e, vision.NewImage(2, 2), dst); err == nil {
		t.Fatal("fallback swallowed the extractor error")
	}
}

func assertSameVector(t *testing.T, got, want Vector) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("dim %d: got %v, want %v", i, got[i], want[i])
		}
	}
}
