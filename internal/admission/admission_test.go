package admission

import (
	"sync"
	"testing"
)

func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c == nil {
		t.Fatal("enabled config returned nil controller")
	}
	return c
}

func TestDisabledConfigYieldsNilController(t *testing.T) {
	c, err := New(Config{})
	if err != nil || c != nil {
		t.Fatalf("New(zero) = %v, %v; want nil, nil", c, err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Enabled: true, MinLimit: -1},
		{Enabled: true, MaxLimit: 2, InitialLimit: 5},
		{Enabled: true, Backoff: 1.5},
		{Enabled: true, Increase: -1},
		{Enabled: true, MinLimit: 4, MaxLimit: 2},
		{Enabled: true, BackoffCooldown: -3},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("disabled config rejected: %v", err)
	}
}

func TestLimitEnforced(t *testing.T) {
	c := mustNew(t, Config{Enabled: true, InitialLimit: 2, MinLimit: 1, MaxLimit: 4})
	if !c.TryAcquire() || !c.TryAcquire() {
		t.Fatal("first two acquires should be admitted")
	}
	if c.TryAcquire() {
		t.Fatal("third acquire above limit 2 should be shed")
	}
	snap := c.Snapshot()
	if snap.Admitted != 2 || snap.Shed != 1 || snap.Inflight != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	c.Release(true)
	if !c.TryAcquire() {
		t.Fatal("slot freed by Release should be reusable")
	}
}

func TestAdditiveIncrease(t *testing.T) {
	c := mustNew(t, Config{Enabled: true, InitialLimit: 2, MaxLimit: 4})
	// Each in-deadline completion adds 1/limit; after enough
	// completions the limit reaches the cap and stops.
	for i := 0; i < 100; i++ {
		if !c.TryAcquire() {
			t.Fatalf("acquire %d shed below limit", i)
		}
		c.Release(true)
	}
	if got := c.Limit(); got != 4 {
		t.Fatalf("limit after sustained success = %d, want cap 4", got)
	}
}

func TestMultiplicativeBackoff(t *testing.T) {
	c := mustNew(t, Config{
		Enabled: true, InitialLimit: 16, MaxLimit: 32,
		Backoff: 0.5, BackoffCooldown: 1,
	})
	if !c.TryAcquire() {
		t.Fatal("shed at limit 16")
	}
	c.Release(false) // deadline miss
	if got := c.Limit(); got != 8 {
		t.Fatalf("limit after one miss = %d, want 8", got)
	}
	if !c.TryAcquire() {
		t.Fatal("shed at limit 8")
	}
	c.ReleaseOverflow() // queue overflow is an equal backoff signal
	if got := c.Limit(); got != 4 {
		t.Fatalf("limit after overflow = %d, want 4", got)
	}
	// Repeated misses never push the limit below the floor.
	for i := 0; i < 10; i++ {
		c.TryAcquire()
		c.Release(false)
	}
	if got := c.Limit(); got != 1 {
		t.Fatalf("limit after sustained misses = %d, want floor 1", got)
	}
}

func TestBackoffCooldownRateLimitsDecrease(t *testing.T) {
	c := mustNew(t, Config{
		Enabled: true, InitialLimit: 16, MaxLimit: 32,
		Backoff: 0.5, BackoffCooldown: 3,
	})
	// Three admitted requests, all late, released back-to-back: only
	// the first may back off (cooldown 3 completions).
	for i := 0; i < 3; i++ {
		if !c.TryAcquire() {
			t.Fatalf("acquire %d shed", i)
		}
	}
	for i := 0; i < 3; i++ {
		c.Release(false)
	}
	if got := c.Snapshot().Backoffs; got != 1 {
		t.Fatalf("backoffs applied = %d, want 1 (cooldown)", got)
	}
	if got := c.Limit(); got != 8 {
		t.Fatalf("limit = %d, want one halving to 8", got)
	}
}

func TestBrownoutRaisesUnderFloorPressureAndRecovers(t *testing.T) {
	c := mustNew(t, Config{
		Enabled: true, InitialLimit: 1, MinLimit: 1, MaxLimit: 8,
		BrownoutRaiseAfter: 4, BrownoutLowerAfter: 4,
		Backoff: 0.5, BackoffCooldown: 1,
	})
	var transitions [][2]Level
	c.SetTransitionHook(func(from, to Level) {
		transitions = append(transitions, [2]Level{from, to})
	})
	// Occupy the single slot, then shed 8 requests at the floor: the
	// ladder should climb both rungs.
	if !c.TryAcquire() {
		t.Fatal("initial acquire shed")
	}
	for i := 0; i < 8; i++ {
		if c.TryAcquire() {
			t.Fatalf("acquire %d admitted above floor limit", i)
		}
	}
	if got := c.Level(); got != LevelFirstCandidate {
		t.Fatalf("level under sustained floor pressure = %v, want %v", got, LevelFirstCandidate)
	}
	c.Release(true)
	// Calm: in-deadline completions. The first completions grow the
	// limit off the floor; once off the floor they count as calm and
	// step the ladder back down to full.
	for i := 0; i < 40 && c.Level() != LevelFull; i++ {
		if !c.TryAcquire() {
			t.Fatalf("calm acquire %d shed", i)
		}
		c.Release(true)
	}
	if got := c.Level(); got != LevelFull {
		t.Fatalf("level after sustained calm = %v, want %v", got, LevelFull)
	}
	want := [][2]Level{
		{LevelFull, LevelNoPeer},
		{LevelNoPeer, LevelFirstCandidate},
		{LevelFirstCandidate, LevelNoPeer},
		{LevelNoPeer, LevelFull},
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, transitions[i], want[i])
		}
	}
	if got := c.Snapshot().Transitions; got != int64(len(want)) {
		t.Fatalf("transition counter = %d, want %d", got, len(want))
	}
}

func TestBackoffAboveFloorIsNotBrownoutPressure(t *testing.T) {
	c := mustNew(t, Config{
		Enabled: true, InitialLimit: 32, MaxLimit: 64,
		Backoff: 0.5, BackoffCooldown: 1,
		BrownoutRaiseAfter: 2,
	})
	// Two misses halve 32 -> 16 -> 8; the limit never touches the
	// floor, so the brownout ladder must not move.
	for i := 0; i < 2; i++ {
		c.TryAcquire()
		c.Release(false)
	}
	if got := c.Level(); got != LevelFull {
		t.Fatalf("level after above-floor backoffs = %v, want full", got)
	}
}

func TestLevelString(t *testing.T) {
	cases := map[Level]string{
		LevelFull:           "full",
		LevelNoPeer:         "no-peer",
		LevelFirstCandidate: "first-candidate",
		Level(9):            "Level(9)",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestControllerConcurrency(t *testing.T) {
	c := mustNew(t, Config{Enabled: true, InitialLimit: 4, MaxLimit: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if !c.TryAcquire() {
					continue
				}
				switch (g + i) % 3 {
				case 0:
					c.Release(true)
				case 1:
					c.Release(false)
				default:
					c.ReleaseOverflow()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := c.Snapshot()
	if snap.Inflight != 0 {
		t.Fatalf("inflight after drain = %d, want 0", snap.Inflight)
	}
	if snap.Admitted != snap.InDeadline+snap.Late+snap.Overflows {
		t.Fatalf("admitted %d != completions %d+%d+%d",
			snap.Admitted, snap.InDeadline, snap.Late, snap.Overflows)
	}
	if snap.Limit < 1 || snap.Limit > 16 {
		t.Fatalf("limit %d outside [1,16]", snap.Limit)
	}
}
