package p2p

import (
	"testing"
	"time"

	"approxcache/internal/feature"
	"approxcache/internal/simnet"
)

// newSimCluster builds n peer services named peer-0..peer-(n-1) on one
// lossless simnet, plus a client at node "self".
func newSimCluster(t *testing.T, n int) (*Client, []*Service, *simnet.Network) {
	t.Helper()
	net, err := simnet.New(simnet.LinkProfile{
		Latency: 5 * time.Millisecond, BandwidthBps: 1 << 20,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	services := make([]*Service, n)
	peerNames := make([]string, n)
	for i := 0; i < n; i++ {
		name := "peer-" + string(rune('a'+i))
		svc, err := NewService(DefaultServiceConfig(name), newStore(t, 32))
		if err != nil {
			t.Fatal(err)
		}
		if err := RegisterService(net, svc); err != nil {
			t.Fatal(err)
		}
		services[i] = svc
		peerNames[i] = name
	}
	tr, err := NewSimnetTransport("self", net)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(DefaultClientConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetPeers(peerNames)
	return cl, services, net
}

func TestClientConfigValidate(t *testing.T) {
	if err := DefaultClientConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ClientConfig{
		{K: 0, MaxDistance: 1},
		{K: 256, MaxDistance: 1},
		{K: 4},
		{K: 4, MaxDistance: 1, GossipFanout: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewClient(ClientConfig{}, nil); err == nil {
		t.Fatal("bad client accepted")
	}
	tr := &SimnetTransport{}
	if _, err := NewClient(DefaultClientConfig(), tr); err != nil {
		t.Fatal(err)
	}
}

func TestNewSimnetTransportValidation(t *testing.T) {
	net, err := simnet.New(simnet.DefaultLinkProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSimnetTransport("", net); err == nil {
		t.Fatal("empty self accepted")
	}
	if _, err := NewSimnetTransport("a", nil); err == nil {
		t.Fatal("nil network accepted")
	}
}

func TestClientQueryNoPeers(t *testing.T) {
	cl, _, _ := newSimCluster(t, 1)
	cl.SetPeers(nil)
	_, cost, found, err := cl.Query(feature.Vector{1, 0})
	if err != nil || found || cost != 0 {
		t.Fatalf("no-peer query: cost=%v found=%v err=%v", cost, found, err)
	}
}

func TestClientQueryHitsBestPeer(t *testing.T) {
	cl, services, _ := newSimCluster(t, 2)
	// Peer a has a far entry with a different label; peer b has a
	// close entry. The client must pick peer b's answer.
	if _, err := services[0].Store().Insert(feature.Vector{1, 0.2}, "dog", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := services[1].Store().Insert(feature.Vector{1, 0.01}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	hit, cost, found, err := cl.Query(feature.Vector{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !found || hit.Label != "cat" || hit.Peer != "peer-b" {
		t.Fatalf("hit = %+v found=%v", hit, found)
	}
	if cost < 10*time.Millisecond {
		t.Fatalf("cost %v below one RTT", cost)
	}
}

func TestClientQueryMissWhenAllFar(t *testing.T) {
	cl, services, _ := newSimCluster(t, 2)
	if _, err := services[0].Store().Insert(feature.Vector{-1, 0}, "dog", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	_, cost, found, err := cl.Query(feature.Vector{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("far entry produced a hit")
	}
	if cost == 0 {
		t.Fatal("miss should still cost the query RTT")
	}
}

func TestClientQuerySurvivesDeadPeer(t *testing.T) {
	cl, services, net := newSimCluster(t, 2)
	if _, err := services[1].Store().Insert(feature.Vector{1, 0}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	net.Unregister("peer-a")
	hit, _, found, err := cl.Query(feature.Vector{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !found || hit.Peer != "peer-b" {
		t.Fatalf("query did not survive dead peer: %+v found=%v", hit, found)
	}
}

func TestClientGossipReachesPeers(t *testing.T) {
	cl, services, _ := newSimCluster(t, 3)
	cost, err := cl.Gossip(feature.Vector{1, 0}, "cat", 0.9, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatalf("gossip cost = %v", cost)
	}
	for i, svc := range services {
		if svc.Store().Len() != 1 {
			t.Fatalf("peer %d did not receive gossip", i)
		}
	}
	// Gossiped entries are queryable by other peers afterwards.
	hit, _, found, err := cl.Query(feature.Vector{1, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !found || hit.Label != "cat" {
		t.Fatalf("gossiped entry not queryable: %+v", hit)
	}
}

func TestClientGossipFanout(t *testing.T) {
	net, err := simnet.New(simnet.LinkProfile{Latency: time.Millisecond}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var services []*Service
	var names []string
	for _, name := range []string{"p1", "p2", "p3"} {
		svc, err := NewService(DefaultServiceConfig(name), newStore(t, 8))
		if err != nil {
			t.Fatal(err)
		}
		if err := RegisterService(net, svc); err != nil {
			t.Fatal(err)
		}
		services = append(services, svc)
		names = append(names, name)
	}
	tr, err := NewSimnetTransport("self", net)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultClientConfig()
	cfg.GossipFanout = 2
	cl, err := NewClient(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetPeers(names)
	if _, err := cl.Gossip(feature.Vector{1, 0}, "cat", 0.9, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, svc := range services {
		total += svc.Store().Len()
	}
	if total != 2 {
		t.Fatalf("fanout 2 delivered to %d peers", total)
	}
}

func TestClientGossipNoPeers(t *testing.T) {
	cl, _, _ := newSimCluster(t, 1)
	cl.SetPeers(nil)
	cost, err := cl.Gossip(feature.Vector{1, 0}, "cat", 0.9, time.Millisecond)
	if err != nil || cost != 0 {
		t.Fatalf("no-peer gossip: cost=%v err=%v", cost, err)
	}
}

func TestClientPing(t *testing.T) {
	cl, services, _ := newSimCluster(t, 1)
	if _, err := services[0].Store().Insert(feature.Vector{1, 0}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	pong, rtt, err := cl.Ping("self", "peer-a")
	if err != nil {
		t.Fatal(err)
	}
	if pong.From != "peer-a" || pong.Entries != 1 {
		t.Fatalf("pong = %+v", pong)
	}
	if rtt <= 0 {
		t.Fatalf("rtt = %v", rtt)
	}
}

func TestSetPeersCopies(t *testing.T) {
	cl, _, _ := newSimCluster(t, 1)
	peers := []string{"x", "y"}
	cl.SetPeers(peers)
	peers[0] = "mutated"
	if cl.Peers()[0] != "x" {
		t.Fatal("SetPeers aliases caller slice")
	}
	got := cl.Peers()
	got[0] = "mutated"
	if cl.Peers()[0] != "x" {
		t.Fatal("Peers exposes internal slice")
	}
}
