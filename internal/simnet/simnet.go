// Package simnet simulates the infrastructure-less wireless links
// (Wi-Fi Direct / BLE class) between nearby devices.
//
// The simulation is cost-centric: delivering a message computes the
// latency it *would* take (propagation + jitter + transmission at the
// link bandwidth, each direction subject to loss) and returns it to the
// caller, which charges it to its virtual clock. This keeps multi-device
// experiments deterministic and lets a minutes-long scenario replay in
// milliseconds. The real-socket counterpart lives in internal/p2p's TCP
// transport.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// NodeID identifies a device on the simulated network.
type NodeID string

// Errors returned by network operations.
var (
	// ErrUnknownNode is returned when addressing an unregistered node.
	ErrUnknownNode = errors.New("simnet: unknown node")
	// ErrLost is returned when a message is dropped by link loss.
	ErrLost = errors.New("simnet: message lost")
	// ErrPartitioned is returned when the two nodes are disconnected.
	ErrPartitioned = errors.New("simnet: nodes partitioned")
	// ErrCrashed is returned when the destination node is crashed by
	// fault injection (registered, but down).
	ErrCrashed = errors.New("simnet: node crashed")
)

// LinkProfile describes one directed link's cost model.
type LinkProfile struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Jitter is the standard deviation of additional one-way delay.
	Jitter time.Duration
	// LossProb is the probability a message is dropped, per direction.
	LossProb float64
	// BandwidthBps is the link bandwidth in bytes per second. Zero
	// means transmission time is negligible.
	BandwidthBps int64
}

// Validate reports whether the profile is usable.
func (p LinkProfile) Validate() error {
	if p.Latency < 0 || p.Jitter < 0 {
		return fmt.Errorf("simnet: negative latency/jitter (%v/%v)", p.Latency, p.Jitter)
	}
	if p.LossProb < 0 || p.LossProb >= 1 {
		return fmt.Errorf("simnet: loss probability must be in [0,1), got %v", p.LossProb)
	}
	if p.BandwidthBps < 0 {
		return fmt.Errorf("simnet: negative bandwidth %d", p.BandwidthBps)
	}
	return nil
}

// DefaultLinkProfile models a short-range device-to-device link:
// ~6 ms one-way, 2 ms jitter, 1% loss, 3 MB/s.
func DefaultLinkProfile() LinkProfile {
	return LinkProfile{
		Latency:      6 * time.Millisecond,
		Jitter:       2 * time.Millisecond,
		LossProb:     0.01,
		BandwidthBps: 3 << 20,
	}
}

// Handler serves incoming RPCs at a node. from identifies the caller;
// the returned payload is sent back. Handlers must be safe for
// concurrent use.
type Handler func(from NodeID, req []byte) (resp []byte, err error)

// Network is a registry of nodes joined by lossy, delayed links.
// Network is safe for concurrent use.
type Network struct {
	defaultLink LinkProfile

	mu        sync.Mutex
	rng       *rand.Rand
	nodes     map[NodeID]Handler
	links     map[[2]NodeID]LinkProfile
	cut       map[[2]NodeID]bool
	crashed   map[NodeID]bool
	corrupt   map[NodeID]bool
	linkFault map[[2]NodeID]faultOverlay
	nodeFault map[NodeID]faultOverlay
	deadCost  time.Duration
	delivers  int
	losses    int
	epoch     uint64
}

// faultOverlay is injected link degradation stacked on a link profile.
type faultOverlay struct {
	extraLatency time.Duration
	extraLoss    float64
}

// New builds a network whose unconfigured links use def, seeding all
// stochastic behaviour (jitter, loss) from seed.
func New(def LinkProfile, seed int64) (*Network, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	return &Network{
		defaultLink: def,
		rng:         rand.New(rand.NewSource(seed)),
		nodes:       make(map[NodeID]Handler),
		links:       make(map[[2]NodeID]LinkProfile),
		cut:         make(map[[2]NodeID]bool),
		crashed:     make(map[NodeID]bool),
		corrupt:     make(map[NodeID]bool),
		linkFault:   make(map[[2]NodeID]faultOverlay),
		nodeFault:   make(map[NodeID]faultOverlay),
	}, nil
}

// Register adds node id with handler h. Re-registering replaces the
// handler.
func (n *Network) Register(id NodeID, h Handler) error {
	if id == "" {
		return fmt.Errorf("simnet: empty node id")
	}
	if h == nil {
		return fmt.Errorf("simnet: nil handler for %q", id)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[id] = h
	n.epoch++
	return nil
}

// Unregister removes node id.
func (n *Network) Unregister(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, id)
	n.epoch++
}

// Epoch returns the mesh-membership epoch: it bumps on every Register
// and Unregister, so mesh-formation helpers (ConnectAll) can cheaply
// detect late joiners and leavers and callers can skip re-wiring when
// nothing changed.
func (n *Network) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// Nodes returns the registered node ids in unspecified order.
func (n *Network) Nodes() []NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	return out
}

// SetLink overrides the profile of the directed link a→b.
func (n *Network) SetLink(a, b NodeID, p LinkProfile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]NodeID{a, b}] = p
	return nil
}

// Partition cuts both directions between a and b.
func (n *Network) Partition(a, b NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[[2]NodeID{a, b}] = true
	n.cut[[2]NodeID{b, a}] = true
}

// Heal restores both directions between a and b.
func (n *Network) Heal(a, b NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, [2]NodeID{a, b})
	delete(n.cut, [2]NodeID{b, a})
}

// SetDeadCost sets the simulated time a caller wastes before giving up
// on an unreachable (unregistered or partitioned) node — the timeout a
// real radio pays for a stale peer list. Zero (the default) makes dead
// calls fail instantly.
func (n *Network) SetDeadCost(d time.Duration) {
	if d < 0 {
		d = 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.deadCost = d
}

// Stats returns (delivered, lost) message counts.
func (n *Network) Stats() (delivered, lost int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivers, n.losses
}

// linkFor returns the profile of a→b with any injected fault overlays
// (per-link, plus per-node on either endpoint) applied.
func (n *Network) linkFor(a, b NodeID) LinkProfile {
	p, ok := n.links[[2]NodeID{a, b}]
	if !ok {
		p = n.defaultLink
	}
	apply := func(o faultOverlay) {
		p.Latency += o.extraLatency
		p.LossProb += o.extraLoss
	}
	if o, ok := n.linkFault[[2]NodeID{a, b}]; ok {
		apply(o)
	}
	if o, ok := n.nodeFault[a]; ok {
		apply(o)
	}
	if o, ok := n.nodeFault[b]; ok && b != a {
		apply(o)
	}
	if p.LossProb > maxInjectedLoss {
		p.LossProb = maxInjectedLoss
	}
	return p
}

// oneWayCost draws the simulated delay for size bytes over p, or ErrLost.
// Caller holds n.mu.
func (n *Network) oneWayCost(p LinkProfile, size int) (time.Duration, error) {
	if n.rng.Float64() < p.LossProb {
		n.losses++
		return 0, ErrLost
	}
	d := p.Latency
	if p.Jitter > 0 {
		j := time.Duration(n.rng.NormFloat64() * float64(p.Jitter))
		if j < 0 {
			j = -j
		}
		d += j
	}
	if p.BandwidthBps > 0 {
		d += time.Duration(float64(size) / float64(p.BandwidthBps) * float64(time.Second))
	}
	n.delivers++
	return d, nil
}

// Call performs a synchronous RPC from→to. It returns the handler's
// response and the simulated round-trip time the exchange would take,
// which the caller charges to its clock. Loss in either direction
// returns ErrLost with the time wasted before the caller would give up
// (one-way cost so far).
func (n *Network) Call(from, to NodeID, req []byte) (resp []byte, rtt time.Duration, err error) {
	n.mu.Lock()
	h, ok := n.nodes[to]
	if !ok {
		dead := n.deadCost
		n.mu.Unlock()
		return nil, dead, fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	if n.crashed[to] {
		dead := n.deadCost
		n.mu.Unlock()
		return nil, dead, fmt.Errorf("%w: %q", ErrCrashed, to)
	}
	if n.cut[[2]NodeID{from, to}] {
		dead := n.deadCost
		n.mu.Unlock()
		return nil, dead, fmt.Errorf("%w: %q↔%q", ErrPartitioned, from, to)
	}
	fwd := n.linkFor(from, to)
	fwdCost, fwdErr := n.oneWayCost(fwd, len(req))
	n.mu.Unlock()
	if fwdErr != nil {
		return nil, fwdCost, fwdErr
	}

	resp, err = h(from, req)
	if err != nil {
		return nil, fwdCost, fmt.Errorf("handler %q: %w", to, err)
	}

	n.mu.Lock()
	if n.corrupt[to] {
		resp = corruptPayload(resp)
	}
	rev := n.linkFor(to, from)
	revCost, revErr := n.oneWayCost(rev, len(resp))
	n.mu.Unlock()
	if revErr != nil {
		return nil, fwdCost + revCost, revErr
	}
	return resp, fwdCost + revCost, nil
}

// Send delivers a one-way message (gossip) from→to, returning the
// simulated delay. The handler's response payload is discarded.
func (n *Network) Send(from, to NodeID, payload []byte) (time.Duration, error) {
	n.mu.Lock()
	h, ok := n.nodes[to]
	if !ok {
		dead := n.deadCost
		n.mu.Unlock()
		return dead, fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	if n.crashed[to] {
		dead := n.deadCost
		n.mu.Unlock()
		return dead, fmt.Errorf("%w: %q", ErrCrashed, to)
	}
	if n.cut[[2]NodeID{from, to}] {
		dead := n.deadCost
		n.mu.Unlock()
		return dead, fmt.Errorf("%w: %q↔%q", ErrPartitioned, from, to)
	}
	p := n.linkFor(from, to)
	cost, err := n.oneWayCost(p, len(payload))
	n.mu.Unlock()
	if err != nil {
		return cost, err
	}
	if _, err := h(from, payload); err != nil {
		return cost, fmt.Errorf("handler %q: %w", to, err)
	}
	return cost, nil
}
