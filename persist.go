package approxcache

import (
	"fmt"
	"io"

	"approxcache/internal/cachestore"
)

// ErrCorruptSnapshot is returned by LoadSnapshot when the snapshot file
// cannot be decoded or fails validation (truncated write, partial
// download, bit rot). The cache is left untouched — a damaged
// warm-start file just means a cold start.
var ErrCorruptSnapshot = cachestore.ErrCorruptSnapshot

// SaveSnapshot writes the cache's live entries to w as JSON, so a later
// session (or another device) can warm-start from them. The cache must
// be in ModeApprox.
func (c *Cache) SaveSnapshot(w io.Writer) error {
	if c.store == nil {
		return fmt.Errorf("approxcache: snapshots require ModeApprox")
	}
	return c.store.Export(w)
}

// LoadSnapshot reads a snapshot from r into the cache, subject to its
// capacity and eviction policy, and returns how many entries were
// inserted. The cache must be in ModeApprox.
//
// The snapshot is validated in full before anything is inserted: a
// corrupt or truncated file returns ErrCorruptSnapshot and leaves the
// cache exactly as it was.
func (c *Cache) LoadSnapshot(r io.Reader) (int, error) {
	if c.store == nil {
		return 0, fmt.Errorf("approxcache: snapshots require ModeApprox")
	}
	return c.store.Import(r)
}
