// Package metrics provides the measurement machinery shared by the
// pipeline and the experiment harness: latency recorders with exact
// percentiles, per-source hit accounting, and accuracy tracking.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Source identifies where a frame's recognition result came from. The
// ordering reflects the pipeline's gate order, cheapest first.
type Source string

// Recognition result sources.
const (
	// SourceIMU: reused because the device had not moved.
	SourceIMU Source = "imu"
	// SourceVideo: reused because the frame matched the keyframe.
	SourceVideo Source = "video"
	// SourceLocal: reused from the local approximate cache.
	SourceLocal Source = "local"
	// SourcePeer: reused from a nearby device's cache.
	SourcePeer Source = "peer"
	// SourceDNN: computed by running the DNN (a cache miss).
	SourceDNN Source = "dnn"
	// SourceFallback: served by the degradation ladder while the DNN
	// was unavailable (best cache hit or last result, flagged
	// low-confidence).
	SourceFallback Source = "fallback"
	// SourceShed: served by the degradation ladder because admission
	// control or a blown request deadline kept the frame off the
	// accelerator (overload, not failure).
	SourceShed Source = "shed"
)

// Sources lists all sources in pipeline order.
func Sources() []Source {
	return []Source{SourceIMU, SourceVideo, SourceLocal, SourcePeer, SourceDNN, SourceFallback, SourceShed}
}

// ReuseSources lists the sources that count as cache hits.
func ReuseSources() []Source {
	return []Source{SourceIMU, SourceVideo, SourceLocal, SourcePeer}
}

// LatencySummary is a set of summary statistics over recorded latencies.
type LatencySummary struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// String formats the summary compactly.
func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v max=%v",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// LatencyRecorder accumulates latency samples and computes exact
// percentiles. It is safe for concurrent use.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
	total   time.Duration
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder {
	return &LatencyRecorder{}
}

// Record adds one sample. Negative samples are clamped to zero.
func (r *LatencyRecorder) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples = append(r.samples, d)
	r.total += d
	r.sorted = false
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Mean returns the mean sample, or 0 with no samples.
func (r *LatencyRecorder) Mean() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	return r.total / time.Duration(len(r.samples))
}

// Percentile returns the p-th percentile (p in [0,100]) using the
// nearest-rank method, or 0 with no samples.
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.percentileLocked(p)
}

func (r *LatencyRecorder) percentileLocked(p float64) time.Duration {
	n := len(r.samples)
	if n == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	if p <= 0 {
		return r.samples[0]
	}
	if p >= 100 {
		return r.samples[n-1]
	}
	rank := int(p/100*float64(n)+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return r.samples[rank]
}

// Summary returns all summary statistics at once.
func (r *LatencyRecorder) Summary() LatencySummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.samples)
	if n == 0 {
		return LatencySummary{}
	}
	s := LatencySummary{
		Count: n,
		Mean:  r.total / time.Duration(n),
		P50:   r.percentileLocked(50),
		P90:   r.percentileLocked(90),
		P99:   r.percentileLocked(99),
	}
	s.Max = r.samples[n-1] // sorted by percentileLocked
	return s
}

// SessionStats aggregates one device run: per-source hit counts,
// latency, energy, and recognition accuracy. SessionStats is safe for
// concurrent use.
type SessionStats struct {
	mu             sync.Mutex
	frames         int
	hits           map[Source]int
	correct        int
	energyMJ       float64
	peerQs         int
	peerHits       int
	peerTimeouts   int
	breakerTrips   int
	breakerRecover int
	degradedFrames int
	repairs        int
	sensorFaults   map[string]int
	degradedServes map[string]int
	wdTimeouts     int
	wdRetries      int
	wdTrips        int
	wdRecoveries   int
	wdFastFails    int
	sheds          int
	expiredDrops   int
	inDeadline     int
	lateFrames     int
	brownoutUp     int
	brownoutDown   int
	audits         int
	auditRefutes   int
	quarantines    int
	paroles        int
	paroleEvicts   int
	recalTightens  int
	recalLoosens   int
	reuseRefusals  int
	latencies      *LatencyRecorder
}

// NewSessionStats returns an empty aggregate.
func NewSessionStats() *SessionStats {
	return &SessionStats{
		hits:           make(map[Source]int, 6),
		sensorFaults:   make(map[string]int),
		degradedServes: make(map[string]int),
		latencies:      NewLatencyRecorder(),
	}
}

// ObserveFrame records the outcome of one frame.
func (s *SessionStats) ObserveFrame(src Source, latency time.Duration, energyMJ float64, correct bool) {
	s.latencies.Record(latency)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frames++
	s.hits[src]++
	if correct {
		s.correct++
	}
	s.energyMJ += energyMJ
}

// ObserveEnergy charges energy spent off the frame path — e.g. a
// shadow audit's DNN re-run, which costs real energy but no frame
// latency (the frame was already answered).
func (s *SessionStats) ObserveEnergy(energyMJ float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.energyMJ += energyMJ
}

// ObservePeerQuery records a P2P query round-trip and whether it hit.
func (s *SessionStats) ObservePeerQuery(hit bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peerQs++
	if hit {
		s.peerHits++
	}
}

// ObservePeerTimeout records one peer exchange that overran its
// deadline or the per-frame peer budget.
func (s *SessionStats) ObservePeerTimeout() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peerTimeouts++
}

// ObserveBreakerTrip records one circuit-breaker trip (a peer excluded
// from the fan-out after repeated failures).
func (s *SessionStats) ObserveBreakerTrip() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.breakerTrips++
}

// ObserveBreakerRecovery records one circuit closing again (a tripped
// peer healed).
func (s *SessionStats) ObserveBreakerRecovery() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.breakerRecover++
}

// ObserveDegradedFrame records one frame whose P2P gate was skipped
// because every peer's circuit was open (local-only degradation).
func (s *SessionStats) ObserveDegradedFrame() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.degradedFrames++
}

// PeerTimeouts returns how many peer exchanges timed out.
func (s *SessionStats) PeerTimeouts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peerTimeouts
}

// BreakerEvents returns (trips, recoveries) of the peer circuit
// breaker.
func (s *SessionStats) BreakerEvents() (trips, recoveries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.breakerTrips, s.breakerRecover
}

// DegradedFrames returns how many frames ran local-only because every
// peer was tripped open.
func (s *SessionStats) DegradedFrames() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degradedFrames
}

// ObserveSensorFault records one rejected or rerouted device input
// (IMU window or camera frame), keyed by fault class, e.g.
// "imu-stuck" or "frame-low-entropy".
func (s *SessionStats) ObserveSensorFault(kind string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sensorFaults[kind]++
}

// SensorFaults returns a copy of the per-class sensor fault counts.
func (s *SessionStats) SensorFaults() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.sensorFaults))
	for k, v := range s.sensorFaults {
		out[k] = v
	}
	return out
}

// SensorFaultTotal returns the total count across all fault classes.
func (s *SessionStats) SensorFaultTotal() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, v := range s.sensorFaults {
		total += v
	}
	return total
}

// ObserveDegradedServe records one frame answered by the degradation
// ladder instead of the full pipeline, keyed by ladder rung (e.g.
// "cache-only", "last-result").
func (s *SessionStats) ObserveDegradedServe(level string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.degradedServes[level]++
}

// DegradedServes returns a copy of the per-rung degraded serve counts.
func (s *SessionStats) DegradedServes() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.degradedServes))
	for k, v := range s.degradedServes {
		out[k] = v
	}
	return out
}

// DegradedServeTotal returns the total frames served degraded.
func (s *SessionStats) DegradedServeTotal() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, v := range s.degradedServes {
		total += v
	}
	return total
}

// ObserveWatchdogTimeout records one classifier call killed by the
// watchdog's per-call deadline.
func (s *SessionStats) ObserveWatchdogTimeout() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wdTimeouts++
}

// ObserveWatchdogRetry records one transient-error retry of the
// classifier.
func (s *SessionStats) ObserveWatchdogRetry() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wdRetries++
}

// ObserveWatchdogTrip records the watchdog declaring the classifier
// down after consecutive failures.
func (s *SessionStats) ObserveWatchdogTrip() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wdTrips++
}

// ObserveWatchdogRecovery records the classifier passing a probe after
// a trip and returning to service.
func (s *SessionStats) ObserveWatchdogRecovery() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wdRecoveries++
}

// ObserveWatchdogFastFail records one classifier call rejected
// immediately because the watchdog was tripped open.
func (s *SessionStats) ObserveWatchdogFastFail() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wdFastFails++
}

// WatchdogEvents returns the watchdog counters: per-call timeouts,
// transient retries, trips, recoveries, and fast-fails while down.
func (s *SessionStats) WatchdogEvents() (timeouts, retries, trips, recoveries, fastFails int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wdTimeouts, s.wdRetries, s.wdTrips, s.wdRecoveries, s.wdFastFails
}

// ObserveShed records one frame shed by the admission controller — the
// DNN fallback was refused and the frame was answered from the
// degradation ladder instead.
func (s *SessionStats) ObserveShed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sheds++
}

// Sheds returns how many frames admission control shed.
func (s *SessionStats) Sheds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sheds
}

// ObserveExpiredDrop records one frame whose deadline expired in the
// inference queue before the accelerator saw it (batcher stale-drop or
// pre-submit deadline check).
func (s *SessionStats) ObserveExpiredDrop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expiredDrops++
}

// ExpiredDrops returns how many frames expired in the queue.
func (s *SessionStats) ExpiredDrops() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expiredDrops
}

// ObserveDeadlineCompletion records whether a deadline-carrying frame
// finished within its budget.
func (s *SessionStats) ObserveDeadlineCompletion(inDeadline bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if inDeadline {
		s.inDeadline++
	} else {
		s.lateFrames++
	}
}

// DeadlineCompletions returns (inDeadline, late) counts of frames that
// carried a request deadline.
func (s *SessionStats) DeadlineCompletions() (inDeadline, late int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inDeadline, s.lateFrames
}

// ObserveBrownoutTransition records one brownout-ladder level change;
// raised is true when the level went up (deeper degradation).
func (s *SessionStats) ObserveBrownoutTransition(raised bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if raised {
		s.brownoutUp++
	} else {
		s.brownoutDown++
	}
}

// BrownoutTransitions returns (raised, lowered) counts of brownout
// level changes.
func (s *SessionStats) BrownoutTransitions() (raised, lowered int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.brownoutUp, s.brownoutDown
}

// ObserveAudit records one completed shadow audit: a cache hit re-run
// through the DNN off the latency path. refuted is true when the DNN
// disagreed with the served label.
func (s *SessionStats) ObserveAudit(refuted bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.audits++
	if refuted {
		s.auditRefutes++
	}
}

// Audits returns (total, refuted) shadow-audit counts.
func (s *SessionStats) Audits() (total, refuted int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.audits, s.auditRefutes
}

// ObserveQuarantine records one cache entry crossing the refute
// threshold and being pulled from the candidate index.
func (s *SessionStats) ObserveQuarantine() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quarantines++
}

// ObserveParole records one re-verification of a quarantined entry:
// reinstated back into the index, or evicted at the parole-fail limit.
func (s *SessionStats) ObserveParole(reinstated bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if reinstated {
		s.paroles++
	} else {
		s.paroleEvicts++
	}
}

// QuarantineEvents returns (quarantines, paroles, evictions) of the
// entry-quarantine state machine.
func (s *SessionStats) QuarantineEvents() (quarantines, paroles, evictions int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantines, s.paroles, s.paroleEvicts
}

// ObserveRecalibration records one gate-threshold move by the drift
// controller; tightened is true when reuse got stricter.
func (s *SessionStats) ObserveRecalibration(tightened bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tightened {
		s.recalTightens++
	} else {
		s.recalLoosens++
	}
}

// RecalibrationEvents returns (tightens, loosens) counts of gate
// threshold moves.
func (s *SessionStats) RecalibrationEvents() (tightens, loosens int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recalTightens, s.recalLoosens
}

// ObserveReuseRefusal records one frame forced to revalidate because
// the drift controller was refusing reuse at its strictest setting.
func (s *SessionStats) ObserveReuseRefusal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reuseRefusals++
}

// ReuseRefusals returns how many frames the drift controller refused
// to serve from reuse.
func (s *SessionStats) ReuseRefusals() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reuseRefusals
}

// ObserveRepairs records n cache entries purged because a revalidation
// contradicted them.
func (s *SessionStats) ObserveRepairs(n int) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.repairs += n
}

// Repairs returns the total purged-entry count.
func (s *SessionStats) Repairs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repairs
}

// Frames returns the number of observed frames.
func (s *SessionStats) Frames() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frames
}

// CountBySource returns a copy of the per-source frame counts.
func (s *SessionStats) CountBySource() map[Source]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Source]int, len(s.hits))
	for k, v := range s.hits {
		out[k] = v
	}
	return out
}

// HitRate returns the fraction of frames served without running the
// DNN, or 0 with no frames.
func (s *SessionStats) HitRate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frames == 0 {
		return 0
	}
	return float64(s.frames-s.hits[SourceDNN]) / float64(s.frames)
}

// Accuracy returns the fraction of frames whose final label matched
// ground truth, or 0 with no frames.
func (s *SessionStats) Accuracy() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frames == 0 {
		return 0
	}
	return float64(s.correct) / float64(s.frames)
}

// EnergyMJ returns the total energy spent, in millijoules.
func (s *SessionStats) EnergyMJ() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.energyMJ
}

// PeerQueries returns (queries, hits) of the P2P path.
func (s *SessionStats) PeerQueries() (queries, hits int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peerQs, s.peerHits
}

// Latency returns the latency recorder.
func (s *SessionStats) Latency() *LatencyRecorder { return s.latencies }
