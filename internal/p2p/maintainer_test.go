package p2p

import (
	"testing"
	"time"

	"approxcache/internal/feature"
)

func TestMaintainerConfigValidate(t *testing.T) {
	if err := DefaultMaintainerConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (MaintainerConfig{Interval: 0}).Validate(); err == nil {
		t.Fatal("zero interval accepted")
	}
	if err := (MaintainerConfig{Interval: time.Second, Fanout: -1}).Validate(); err == nil {
		t.Fatal("negative fanout accepted")
	}
}

func TestStartMaintainerValidation(t *testing.T) {
	if _, err := StartMaintainer(MaintainerConfig{}, nil); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := StartMaintainer(DefaultMaintainerConfig(), nil); err == nil {
		t.Fatal("nil roster accepted")
	}
}

func TestMaintainerInitialRefreshAndShutdown(t *testing.T) {
	roster, cl, services, _ := newRosterCluster(t, 2)
	if _, err := services[1].Store().Insert(feature.Vector{1, 0}, "x", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	m, err := StartMaintainer(MaintainerConfig{Interval: time.Hour, Fanout: 1}, roster)
	if err != nil {
		t.Fatal(err)
	}
	// The synchronous initial refresh already ranked the peers.
	if got := cl.Peers(); len(got) != 1 || got[0] != "peer-b" {
		t.Fatalf("client peers after start = %v", got)
	}
	if m.Refreshes() != 1 {
		t.Fatalf("refreshes = %d", m.Refreshes())
	}
	m.Shutdown()
	m.Shutdown() // idempotent
}

func TestMaintainerRefreshesDigests(t *testing.T) {
	roster, cl, services, _ := newRosterCluster(t, 2)
	if _, err := services[0].Store().Insert(feature.Vector{1, 0}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	m, err := StartMaintainer(MaintainerConfig{
		Interval: time.Hour, Fanout: 0, RefreshDigests: true,
	}, roster)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	// The initial refresh fetched digests: a query far from peer-a's
	// only cluster skips it.
	_, _, _, err = cl.Query(feature.Vector{-1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if cl.SkippedQueries() == 0 {
		t.Fatal("maintainer did not install digests")
	}
}

func TestMaintainerPeriodicRefresh(t *testing.T) {
	roster, cl, services, kill := newRosterCluster(t, 2)
	m, err := StartMaintainer(MaintainerConfig{Interval: 5 * time.Millisecond, Fanout: 0}, roster)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	if len(cl.Peers()) != 2 {
		t.Fatalf("initial peers = %v", cl.Peers())
	}
	// Kill a peer; the loop must drop it from the client within a few
	// intervals.
	kill(0)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if peers := cl.Peers(); len(peers) == 1 && peers[0] == services[1].Name() {
			if m.Refreshes() < 2 {
				t.Fatalf("refreshes = %d, want periodic activity", m.Refreshes())
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("dead peer never dropped: %v", cl.Peers())
}
