package feature

import (
	"fmt"

	"approxcache/internal/vision"
)

// Extractor maps a frame to a feature vector. Implementations must be
// deterministic and safe for concurrent use.
type Extractor interface {
	// Extract computes the feature vector of im.
	Extract(im *vision.Image) (Vector, error)
	// Dim returns the dimensionality of vectors produced by Extract.
	Dim() int
	// Name returns a short identifier for reports.
	Name() string
}

// GridExtractor downsamples the frame to a Cols×Rows grid of mean
// luminances. It is the workhorse descriptor: translation-tolerant at
// cell granularity and cheap to compute.
type GridExtractor struct {
	Cols, Rows int
}

var _ Extractor = GridExtractor{}

// NewGridExtractor returns a grid extractor, validating the grid shape.
func NewGridExtractor(cols, rows int) (GridExtractor, error) {
	if cols <= 0 || rows <= 0 {
		return GridExtractor{}, fmt.Errorf("feature: grid must be positive, got %dx%d", cols, rows)
	}
	return GridExtractor{Cols: cols, Rows: rows}, nil
}

// Dim returns Cols*Rows.
func (g GridExtractor) Dim() int { return g.Cols * g.Rows }

// Name returns "grid<cols>x<rows>".
func (g GridExtractor) Name() string { return fmt.Sprintf("grid%dx%d", g.Cols, g.Rows) }

// Extract computes per-cell mean luminance.
func (g GridExtractor) Extract(im *vision.Image) (Vector, error) {
	if im.W < g.Cols || im.H < g.Rows {
		return nil, fmt.Errorf("feature: image %dx%d smaller than grid %dx%d",
			im.W, im.H, g.Cols, g.Rows)
	}
	out := make(Vector, g.Cols*g.Rows)
	for gy := 0; gy < g.Rows; gy++ {
		y0 := gy * im.H / g.Rows
		y1 := (gy + 1) * im.H / g.Rows
		for gx := 0; gx < g.Cols; gx++ {
			x0 := gx * im.W / g.Cols
			x1 := (gx + 1) * im.W / g.Cols
			var sum float64
			for y := y0; y < y1; y++ {
				row := im.Pix[y*im.W : y*im.W+im.W]
				for x := x0; x < x1; x++ {
					sum += row[x]
				}
			}
			out[gy*g.Cols+gx] = sum / float64((y1-y0)*(x1-x0))
		}
	}
	return out, nil
}

// HistogramExtractor computes a normalized intensity histogram. It is
// fully translation-invariant and complements the grid descriptor.
type HistogramExtractor struct {
	Bins int
}

var _ Extractor = HistogramExtractor{}

// NewHistogramExtractor returns a histogram extractor with bins buckets.
func NewHistogramExtractor(bins int) (HistogramExtractor, error) {
	if bins <= 0 {
		return HistogramExtractor{}, fmt.Errorf("feature: bins must be positive, got %d", bins)
	}
	return HistogramExtractor{Bins: bins}, nil
}

// Dim returns the number of bins.
func (h HistogramExtractor) Dim() int { return h.Bins }

// Name returns "hist<bins>".
func (h HistogramExtractor) Name() string { return fmt.Sprintf("hist%d", h.Bins) }

// Extract computes the intensity histogram, normalized to sum to 1.
func (h HistogramExtractor) Extract(im *vision.Image) (Vector, error) {
	if len(im.Pix) == 0 {
		return nil, fmt.Errorf("feature: empty image")
	}
	out := make(Vector, h.Bins)
	for _, v := range im.Pix {
		bin := int(v * float64(h.Bins))
		if bin >= h.Bins {
			bin = h.Bins - 1
		}
		out[bin]++
	}
	n := float64(len(im.Pix))
	for i := range out {
		out[i] /= n
	}
	return out, nil
}

// CombinedExtractor concatenates the vectors of several extractors,
// optionally normalizing the result to unit norm so that LSH hyperplane
// signatures behave uniformly.
type CombinedExtractor struct {
	parts     []Extractor
	normalize bool
	dim       int
	name      string
}

var _ Extractor = (*CombinedExtractor)(nil)

// NewCombinedExtractor concatenates parts. normalize selects unit-norm
// output.
func NewCombinedExtractor(normalize bool, parts ...Extractor) (*CombinedExtractor, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("feature: combined extractor needs at least one part")
	}
	dim := 0
	name := "combined("
	for i, p := range parts {
		dim += p.Dim()
		if i > 0 {
			name += "+"
		}
		name += p.Name()
	}
	name += ")"
	return &CombinedExtractor{parts: parts, normalize: normalize, dim: dim, name: name}, nil
}

// Dim returns the total dimensionality.
func (c *CombinedExtractor) Dim() int { return c.dim }

// Name returns a description of the concatenated parts.
func (c *CombinedExtractor) Name() string { return c.name }

// Extract concatenates the part vectors.
func (c *CombinedExtractor) Extract(im *vision.Image) (Vector, error) {
	out := make(Vector, 0, c.dim)
	for _, p := range c.parts {
		v, err := p.Extract(im)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name(), err)
		}
		out = append(out, v...)
	}
	if c.normalize {
		out.Normalize()
	}
	return out, nil
}

// DefaultExtractor returns the extractor used by the standard pipeline:
// an 8×8 luminance grid concatenated with a 16-bin histogram, unit
// normalized (80 dimensions).
func DefaultExtractor() Extractor {
	grid := GridExtractor{Cols: 8, Rows: 8}
	hist := HistogramExtractor{Bins: 16}
	c, err := NewCombinedExtractor(true, grid, hist)
	if err != nil {
		// Unreachable: both parts are statically valid.
		panic(err)
	}
	return c
}
