package eval

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"approxcache/internal/feature"
	"approxcache/internal/lsh"
)

// The read-scalability benchmark (E24): the lock-free read path's
// reason to exist, measured. A warmed cache serves a hit-heavy query
// stream from 1..32 concurrent readers twice — once through the
// lock-free epoch-published index, once through the same index behind
// a single RWMutex (the pre-tentpole architecture, preserved as
// lsh.Locked). Both configurations hold the SAME data and produce
// bit-identical answers (the differential tests prove it), so any
// throughput gap is pure synchronization cost: lock-word cache-line
// bouncing on the read path.
//
// The report lands in BENCH_readscale.json and cmd/benchgate enforces
// the scaling gate on it. The gate is parallelism-aware: lock-freedom
// buys nothing without parallel hardware, so on the ≥8-core machines
// the claim targets the lock-free path must beat the RWMutex baseline
// ≥2× at 16 readers, while low-core machines enforce progressively
// weaker floors down to simple no-regression on a single-P schedule
// (where both paths serialize on the scheduler, not the lock).

// ReadScaleConfig shapes the read-scalability benchmark.
type ReadScaleConfig struct {
	// Entries is the warmed cache population (default 4096).
	Entries int
	// Dim is the feature dimensionality (default 80).
	Dim int
	// Clusters is the scene-cluster count of the population (default 64).
	Clusters int
	// Queries is the distinct hit-heavy query count (default 256).
	Queries int
	// K is the kNN width (default 4).
	K int
	// Bits is the per-table signature width (default 12).
	Bits int
	// Tables is the table count (default 4).
	Tables int
	// Readers is the concurrency sweep (default 1,2,4,8,16,32).
	Readers []int
	// PointDuration is how long each (config, readers) point runs
	// (default 120ms; long enough for tens of thousands of lookups).
	PointDuration time.Duration
	// Reps is how many alternating passes each point gets; the
	// recorded figure is the median pass by speedup ratio, which
	// discards passes where transient machine load hit one side of
	// the comparison but not the other (default 3).
	Reps int
	// Seed anchors all randomness.
	Seed int64
}

func (c *ReadScaleConfig) defaults() {
	if c.Entries == 0 {
		c.Entries = 4096
	}
	if c.Dim == 0 {
		c.Dim = 80
	}
	if c.Clusters == 0 {
		c.Clusters = 64
	}
	if c.Queries == 0 {
		c.Queries = 256
	}
	if c.K == 0 {
		c.K = 4
	}
	if c.Bits == 0 {
		c.Bits = 12
	}
	if c.Tables == 0 {
		c.Tables = 4
	}
	if len(c.Readers) == 0 {
		c.Readers = []int{1, 2, 4, 8, 16, 32}
	}
	if c.PointDuration == 0 {
		c.PointDuration = 120 * time.Millisecond
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// ReadScalePoint is one concurrency level's measurement.
type ReadScalePoint struct {
	Readers int `json:"readers"`
	// LockFreeOps/LockedOps are aggregate lookups/sec across all
	// readers at this concurrency.
	LockFreeOps float64 `json:"lockfree_ops_per_sec"`
	LockedOps   float64 `json:"locked_ops_per_sec"`
	// Speedup is LockFreeOps / LockedOps.
	Speedup float64 `json:"speedup"`
	// P99 lookup latency per configuration, microseconds (sampled).
	LockFreeP99Micros float64 `json:"lockfree_p99_us"`
	LockedP99Micros   float64 `json:"locked_p99_us"`
}

// ReadScaleReport is the full benchmark outcome, serialized to
// BENCH_readscale.json and gated by cmd/benchgate -readscale-json.
type ReadScaleReport struct {
	Entries int `json:"entries"`
	Dim     int `json:"dim"`
	Queries int `json:"queries"`
	K       int `json:"k"`
	Bits    int `json:"bits"`
	Tables  int `json:"tables"`
	// MaxProcs records the GOMAXPROCS the sweep ran under: read
	// scalability is only observable with parallel hardware, and the
	// gate keys its required speedup on this.
	MaxProcs int              `json:"max_procs"`
	Points   []ReadScalePoint `json:"points"`
	// SpeedupAt16 is the headline number the gate enforces: lock-free
	// over locked lookups/sec at 16 concurrent readers (or at the
	// highest measured concurrency if 16 was not swept).
	SpeedupAt16 float64 `json:"speedup_at_16"`
	// AllocsPerOp is the lock-free path's warm steady-state heap
	// allocations per lookup (gated to 0: lock-freedom must not cost
	// the zero-alloc hot path).
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// drivePoint runs n readers against lookup for d, returning aggregate
// lookups/sec and sampled p99 latency in microseconds. Every reader
// walks the shared query set from its own offset; one in every 32
// lookups is individually timed for the latency distribution, so
// timestamp overhead never dominates the measurement.
func drivePoint(ds *lookupDataset, k, n int, d time.Duration,
	lookup func(q feature.Vector, k int, dst []lsh.Neighbor) ([]lsh.Neighbor, error)) (opsPerSec, p99us float64, err error) {
	var (
		wg       sync.WaitGroup
		totalOps atomic.Int64
		firstErr atomic.Pointer[error]
		start    = make(chan struct{})
	)
	samples := make([][]float64, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			dst := make([]lsh.Neighbor, 0, k)
			mine := make([]float64, 0, 4096)
			qi := (r * 37) % len(ds.queries)
			<-start
			deadline := time.Now().Add(d)
			ops := int64(0)
			for {
				q := ds.queries[qi]
				qi++
				if qi == len(ds.queries) {
					qi = 0
				}
				if ops%32 == 0 {
					t0 := time.Now()
					ns, lerr := lookup(q, k, dst)
					lat := time.Since(t0)
					if lerr != nil {
						firstErr.CompareAndSwap(nil, &lerr)
						break
					}
					dst = ns[:0]
					if len(mine) < cap(mine) {
						mine = append(mine, float64(lat.Nanoseconds())/1e3)
					}
					// The timed lookup also checks the deadline: one
					// clock read serves both jobs.
					if t0.After(deadline) {
						break
					}
				} else {
					ns, lerr := lookup(q, k, dst)
					if lerr != nil {
						firstErr.CompareAndSwap(nil, &lerr)
						break
					}
					dst = ns[:0]
				}
				ops++
			}
			totalOps.Add(ops)
			samples[r] = mine
		}(r)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	if ep := firstErr.Load(); ep != nil {
		return 0, 0, *ep
	}
	var all []float64
	for _, s := range samples {
		all = append(all, s...)
	}
	sort.Float64s(all)
	if len(all) > 0 {
		i := (len(all) * 99) / 100
		if i >= len(all) {
			i = len(all) - 1
		}
		p99us = all[i]
	}
	return float64(totalOps.Load()) / elapsed.Seconds(), p99us, nil
}

// RunReadScale measures the lock-free and RWMutex-locked read paths
// across the concurrency sweep and computes the headline speedup.
func RunReadScale(cfg ReadScaleConfig) (ReadScaleReport, error) {
	cfg.defaults()
	lcfg := LookupConfig{
		Entries: cfg.Entries, Dim: cfg.Dim, Clusters: cfg.Clusters,
		Queries: cfg.Queries, K: cfg.K, Bits: cfg.Bits, Tables: cfg.Tables,
		Seed: cfg.Seed,
	}
	lcfg.defaults()
	ds, err := buildLookupDataset(lcfg)
	if err != nil {
		return ReadScaleReport{}, err
	}

	free, err := lsh.NewHyperplane(cfg.Dim, cfg.Bits, cfg.Tables, cfg.Seed)
	if err != nil {
		return ReadScaleReport{}, err
	}
	lockedInner, err := lsh.NewHyperplane(cfg.Dim, cfg.Bits, cfg.Tables, cfg.Seed)
	if err != nil {
		return ReadScaleReport{}, err
	}
	locked := lsh.NewLocked(lockedInner)
	for i, v := range ds.vecs {
		if err := free.Insert(lsh.ID(i), v); err != nil {
			return ReadScaleReport{}, err
		}
		if err := locked.Insert(lsh.ID(i), v); err != nil {
			return ReadScaleReport{}, err
		}
	}

	rep := ReadScaleReport{
		Entries: cfg.Entries, Dim: cfg.Dim, Queries: cfg.Queries,
		K: cfg.K, Bits: cfg.Bits, Tables: cfg.Tables,
		MaxProcs: runtime.GOMAXPROCS(0),
	}

	freeLookup := func(q feature.Vector, k int, dst []lsh.Neighbor) ([]lsh.Neighbor, error) {
		return free.NearestInto(q, k, dst)
	}
	lockedLookup := func(q feature.Vector, k int, dst []lsh.Neighbor) ([]lsh.Neighbor, error) {
		return locked.NearestInto(q, k, dst)
	}
	// Warm both pipelines (pools, scratch, branch predictors) before
	// any timed point.
	if _, _, err := drivePoint(ds, cfg.K, 2, 20*time.Millisecond, freeLookup); err != nil {
		return ReadScaleReport{}, err
	}
	if _, _, err := drivePoint(ds, cfg.K, 2, 20*time.Millisecond, lockedLookup); err != nil {
		return ReadScaleReport{}, err
	}

	for _, n := range cfg.Readers {
		// Both configurations are measured back-to-back within each
		// pass so they sample near-identical machine-load windows, and
		// the recorded pass is the MEDIAN by speedup ratio. Taking the
		// best ops/sec per side independently looks tempting but is
		// wrong: a transient quiet window during one side's pass
		// inflates that side alone and skews the ratio — the one
		// number the gate enforces. The paired median discards exactly
		// those passes.
		passes := make([]ReadScalePoint, 0, cfg.Reps)
		for pass := 0; pass < cfg.Reps; pass++ {
			lockedOps, lockedP99, err := drivePoint(ds, cfg.K, n, cfg.PointDuration, lockedLookup)
			if err != nil {
				return ReadScaleReport{}, fmt.Errorf("locked at %d readers: %w", n, err)
			}
			freeOps, freeP99, err := drivePoint(ds, cfg.K, n, cfg.PointDuration, freeLookup)
			if err != nil {
				return ReadScaleReport{}, fmt.Errorf("lock-free at %d readers: %w", n, err)
			}
			pt := ReadScalePoint{
				Readers:     n,
				LockFreeOps: freeOps, LockedOps: lockedOps,
				LockFreeP99Micros: freeP99, LockedP99Micros: lockedP99,
			}
			if lockedOps > 0 {
				pt.Speedup = freeOps / lockedOps
			}
			passes = append(passes, pt)
		}
		sort.Slice(passes, func(i, j int) bool { return passes[i].Speedup < passes[j].Speedup })
		rep.Points = append(rep.Points, passes[len(passes)/2])
	}

	// Headline: the 16-reader point, or the highest swept concurrency.
	for _, pt := range rep.Points {
		if pt.Readers == 16 {
			rep.SpeedupAt16 = pt.Speedup
		}
	}
	if rep.SpeedupAt16 == 0 && len(rep.Points) > 0 {
		rep.SpeedupAt16 = rep.Points[len(rep.Points)-1].Speedup
	}

	// Zero-alloc check on the warm lock-free path.
	q0 := ds.queries[0]
	buf := make([]lsh.Neighbor, 0, cfg.K)
	rep.AllocsPerOp = testing.AllocsPerRun(200, func() {
		if _, err := free.NearestInto(q0, cfg.K, buf); err != nil {
			panic(err)
		}
	})
	return rep, nil
}

// E24ReadScale is the read-scalability experiment: the lock-free
// epoch-published read path against the RWMutex baseline across the
// reader sweep.
func E24ReadScale(scale Scale) (Report, error) {
	cfg := ReadScaleConfig{Seed: scale.Seed}
	if scale.Frames < DefaultScale().Frames {
		cfg.Entries = 1024
		cfg.Queries = 128
		cfg.Readers = []int{1, 4, 16}
		cfg.PointDuration = 40 * time.Millisecond
		cfg.Reps = 2
	}
	rep, err := RunReadScale(cfg)
	if err != nil {
		return Report{}, err
	}
	out := Report{
		ID:    "E24",
		Title: "Read scalability: lock-free epoch-published index vs RWMutex baseline",
		Headers: []string{"readers", "lock-free ops/s", "locked ops/s", "speedup",
			"lock-free p99 µs", "locked p99 µs"},
	}
	for _, pt := range rep.Points {
		out.Rows = append(out.Rows, []string{
			fmt.Sprintf("%d", pt.Readers),
			fmtF(pt.LockFreeOps), fmtF(pt.LockedOps),
			fmt.Sprintf("%.2fx", pt.Speedup),
			fmtF(pt.LockFreeP99Micros), fmtF(pt.LockedP99Micros),
		})
	}
	out.Notes = append(out.Notes,
		fmt.Sprintf("%d entries, dim %d, %d hit-heavy queries, k=%d, GOMAXPROCS=%d",
			rep.Entries, rep.Dim, rep.Queries, rep.K, rep.MaxProcs),
		fmt.Sprintf("speedup at 16 readers: %.2fx; warm lock-free allocs/op: %.0f",
			rep.SpeedupAt16, rep.AllocsPerOp),
	)
	return out, nil
}
