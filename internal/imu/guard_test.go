package imu

import (
	"math"
	"testing"
	"time"
)

// healthyWindow builds a realistic 50 Hz handheld window: small noise on
// every axis, strictly increasing offsets.
func healthyWindow(n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i].Offset = time.Duration(i) * 20 * time.Millisecond
		for ax := 0; ax < 3; ax++ {
			out[i].Accel[ax] = 0.05 * math.Sin(float64(i*(ax+1)))
			out[i].Gyro[ax] = 0.01 * math.Cos(float64(i+ax))
		}
	}
	return out
}

func TestCheckWindowFaultClasses(t *testing.T) {
	cfg := DefaultGuardConfig()
	tests := []struct {
		name    string
		corrupt func([]Sample) []Sample
		want    WindowFault
	}{
		{"healthy", func(w []Sample) []Sample { return w }, WindowOK},
		{"empty", func([]Sample) []Sample { return nil }, WindowOK},
		{"nan accel", func(w []Sample) []Sample {
			w[3].Accel[1] = math.NaN()
			return w
		}, WindowNonFinite},
		{"inf gyro", func(w []Sample) []Sample {
			w[7].Gyro[2] = math.Inf(1)
			return w
		}, WindowNonFinite},
		{"non-monotonic", func(w []Sample) []Sample {
			w[5].Offset = w[2].Offset - time.Millisecond
			return w
		}, WindowNonMonotonic},
		{"dropout gap", func(w []Sample) []Sample {
			for i := 10; i < len(w); i++ {
				w[i].Offset += 500 * time.Millisecond
			}
			return w
		}, WindowDropout},
		{"stuck axis", func(w []Sample) []Sample {
			for i := range w {
				w[i].Accel[0] = 0.1234
			}
			return w
		}, WindowStuck},
		{"saturated accel", func(w []Sample) []Sample {
			w[4].Accel[2] = 200
			return w
		}, WindowSaturated},
		{"saturated gyro", func(w []Sample) []Sample {
			w[9].Gyro[0] = -50
			return w
		}, WindowSaturated},
		{"clock skew negative", func(w []Sample) []Sample {
			for i := range w {
				w[i].Offset -= time.Hour
			}
			return w
		}, WindowClockSkew},
		{"clock skew span", func(w []Sample) []Sample {
			// Stretch to a >10 s span while keeping gaps under MaxGap
			// impossible — so widen MaxGap locally via offsets just under
			// the gap limit over many samples? Instead scale offsets so
			// each gap is 99 ms but the total span exceeds MaxSpan.
			for i := range w {
				w[i].Offset = time.Duration(i) * 99 * time.Millisecond
			}
			return w
		}, WindowClockSkew},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			n := 30
			if tc.name == "clock skew span" {
				n = 120 // 120 × 99 ms ≈ 11.9 s span with no dropout gaps
			}
			got := CheckWindow(tc.corrupt(healthyWindow(n)), cfg)
			if got != tc.want {
				t.Fatalf("CheckWindow(%s) = %v, want %v", tc.name, got, tc.want)
			}
		})
	}
}

func TestCheckWindowDisabledChecks(t *testing.T) {
	w := healthyWindow(30)
	for i := range w {
		w[i].Accel[0] = 0.5 // stuck
	}
	if got := CheckWindow(w, GuardConfig{}); got != WindowOK {
		t.Fatalf("zero config should disable threshold checks, got %v", got)
	}
	// Non-finite and non-monotonic are structural and stay on even with
	// a zero config.
	w2 := healthyWindow(5)
	w2[2].Gyro[1] = math.NaN()
	if got := CheckWindow(w2, GuardConfig{}); got != WindowNonFinite {
		t.Fatalf("non-finite must be detected regardless of config, got %v", got)
	}
}

func TestGuardConfigValidate(t *testing.T) {
	if err := DefaultGuardConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultGuardConfig()
	bad.MaxGap = -time.Second
	if err := bad.Validate(); err == nil {
		t.Fatal("negative MaxGap accepted")
	}
}

func TestGeneratedWindowsPassGuard(t *testing.T) {
	// Every regime the generator produces must pass the guard: guards
	// exist to catch faults, not to reject healthy traffic.
	cfg := DefaultGuardConfig()
	for _, regime := range []Regime{Stationary, Handheld, Walking, Panning} {
		gen, err := NewGenerator(100, 7)
		if err != nil {
			t.Fatal(err)
		}
		win, err := gen.Generate(regime, 0, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if got := CheckWindow(win, cfg); got != WindowOK {
			t.Fatalf("regime %v flagged %v", regime, got)
		}
	}
}

func TestWindowFaultString(t *testing.T) {
	for f, want := range map[WindowFault]string{
		WindowOK: "ok", WindowNonFinite: "non-finite", WindowNonMonotonic: "non-monotonic",
		WindowDropout: "dropout", WindowStuck: "stuck", WindowSaturated: "saturated",
		WindowClockSkew: "clock-skew", WindowFault(99): "WindowFault(99)",
	} {
		if got := f.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", int(f), got, want)
		}
	}
}
