GO ?= go

.PHONY: check build test race vet fmt bench

check: vet fmt test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
