// Package testutil holds small helpers shared by test files across
// packages. Production code must not import it.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// LeakGuard snapshots the current goroutine count and returns a check
// to run after the code under test has shut down. The check polls —
// exiting goroutines need a moment to unwind — and fails the test if,
// after two seconds, more than slack goroutines remain above the
// snapshot. Take the snapshot BEFORE constructing the system under
// test so its background goroutines are counted:
//
//	check := testutil.LeakGuard(t, 2)
//	... build, exercise, and Close the system ...
//	check()
func LeakGuard(t testing.TB, slack int) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before+slack && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if g := runtime.NumGoroutine(); g > before+slack {
			t.Fatalf("goroutine leak: %d before, %d after shutdown (slack %d)", before, g, slack)
		}
	}
}
