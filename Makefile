GO ?= go

# Alloc budgets for the hot-path benchmarks, enforced by cmd/benchgate.
# NearestInto/ExtractInto/CandidatesInto with a reused buffer must stay
# allocation-free. Substring-matched against benchmark names.
HOTPATH_BUDGETS = HotPathNearest=0,HotPathExactNearest=0,HotPathSignature=0,HotPathTopK=0,HotPathCandidates=0,HotPathFusedExtract=0,HotPathGridIntegral=0,HotPathHistogram=0

# The serving-scale regression gate: sharded store + micro-batched
# inference must beat the single-mutex baseline by at least this
# frames/sec factor at 16 concurrent streams.
MIN_THROUGHPUT_SPEEDUP = 3.0

# The overload-resilience gate: with deadlines + admission control on,
# the node must retain at least this fraction of its peak goodput when
# offered 4x its measured capacity.
MIN_GOODPUT_RETENTION = 0.85

# The lookup-pipeline gate: multi-probe + sketch + quantized candidate
# scoring at T/2 tables must beat the exact-bucket pipeline at T tables
# by at least this ns/op factor, at equal-or-better recall, with zero
# warm-path allocations.
MIN_LOOKUP_SPEEDUP = 1.3

# The cache-quality gate (E23): under recurring injected label drift
# the self-healing node (shadow audits + quarantine + recalibration)
# must recover at least this fraction of the no-drift baseline's tail
# accuracy while retaining this fraction of its latency savings.
MIN_ACCURACY_RECOVERY = 0.95
MIN_SAVINGS_RETENTION = 0.6

# The read-scalability gate (E24): the lock-free read path must beat
# the RWMutex-wrapped baseline by this factor at 16 concurrent readers
# on machines with >= 8 procs. benchgate relaxes the floor on smaller
# machines (1.2x for 2-7 procs, no-regression 0.9x on a single proc)
# because lock-freedom removes lock-word cache-line bouncing, and with
# nothing running in parallel there is no bouncing to remove.
MIN_READSCALE_SPEEDUP = 2.0

# The P2P wire-protocol gate (E25): the compact comms stack (quantized
# codec v2 + delta digests + query coalescing + gossip batching) must
# cut client wire bytes per session-frame by at least this factor at
# the most constrained link bandwidth, at equal-or-better peer hit
# rate versus the legacy float64 protocol.
MIN_P2P_REDUCTION = 4.0

.PHONY: check build test race vet fmt bench bench-hotpath bench-gate bench-throughput throughput-gate bench-overload overload-gate bench-lookup lookup-gate bench-quality quality-gate bench-readscale readscale-gate bench-p2p p2p-gate fault-matrix

check: vet fmt test race bench-gate throughput-gate overload-gate lookup-gate quality-gate readscale-gate p2p-gate fault-matrix

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Full hot-path benchmark run; records results in BENCH_hotpath.json and
# enforces the allocation budgets.
bench-hotpath:
	$(GO) test -run '^$$' -bench 'HotPath|GridNaive' -benchmem \
		./internal/lsh/ ./internal/feature/ | \
		$(GO) run ./cmd/benchgate -json BENCH_hotpath.json -budgets '$(HOTPATH_BUDGETS)'

# Fast allocation gate for `make check`: short benchtime is enough to
# measure allocs/op exactly (it is iteration-count independent).
bench-gate:
	$(GO) test -run '^$$' -bench HotPath -benchmem -benchtime 100x \
		./internal/lsh/ ./internal/feature/ | \
		$(GO) run ./cmd/benchgate -budgets '$(HOTPATH_BUDGETS)'

# Multi-session saturation benchmark: drives 16 concurrent streams
# through the architecture ladder (single-mutex → pool → sharded →
# sharded+batched), records BENCH_throughput.json, and enforces the
# speedup gate.
bench-throughput:
	$(GO) run ./cmd/approxbench -throughput -throughput-json BENCH_throughput.json
	$(GO) run ./cmd/benchgate -throughput-json BENCH_throughput.json -min-speedup $(MIN_THROUGHPUT_SPEEDUP)

# Fast serving gate for `make check`: re-measures the ladder (the run
# itself is only a few seconds) and fails on regression below the
# required speedup.
throughput-gate:
	$(GO) run ./cmd/approxbench -throughput -throughput-json /tmp/BENCH_throughput.gate.json
	$(GO) run ./cmd/benchgate -throughput-json /tmp/BENCH_throughput.gate.json -min-speedup $(MIN_THROUGHPUT_SPEEDUP)

# Overload resilience benchmark (E21): open-loop arrivals from 0.5x to
# 4x of measured capacity against a deadline+admission-protected node
# and an unprotected one; records BENCH_overload.json and enforces the
# goodput-retention gate.
bench-overload:
	$(GO) run ./cmd/approxbench -overload -overload-json BENCH_overload.json
	$(GO) run ./cmd/benchgate -overload-json BENCH_overload.json -min-retention $(MIN_GOODPUT_RETENTION)

# Fast overload gate for `make check`: re-runs the sweep (a few seconds
# of real wall-clock load) and fails if shedding stops protecting
# goodput under 4x overload.
overload-gate:
	$(GO) run ./cmd/approxbench -overload -overload-json /tmp/BENCH_overload.gate.json
	$(GO) run ./cmd/benchgate -overload-json /tmp/BENCH_overload.gate.json -min-retention $(MIN_GOODPUT_RETENTION)

# Lookup-bound hit-heavy benchmark: exact-bucket pipeline vs the
# multi-probe + sketch + quantized pipeline over a warm 4096-entry
# cache; records BENCH_lookup.json and enforces the lookup gate.
bench-lookup:
	$(GO) run ./cmd/approxbench -hitheavy -lookup-json BENCH_lookup.json
	$(GO) run ./cmd/benchgate -lookup-json BENCH_lookup.json -min-lookup-speedup $(MIN_LOOKUP_SPEEDUP)

# Fast lookup gate for `make check`: re-measures both pipelines (about
# a second of wall clock; timing passes are interleaved so the ratio is
# stable under machine noise) and fails on regression.
lookup-gate:
	$(GO) run ./cmd/approxbench -hitheavy -lookup-json /tmp/BENCH_lookup.gate.json
	$(GO) run ./cmd/benchgate -lookup-json /tmp/BENCH_lookup.gate.json -min-lookup-speedup $(MIN_LOOKUP_SPEEDUP)

# Cache-quality benchmark (E23): recurring label drift against a
# no-drift baseline, an unprotected node, and the self-healing node;
# records BENCH_quality.json and enforces the recovery + retention
# gates.
bench-quality:
	$(GO) run ./cmd/approxbench -drift -quality-json BENCH_quality.json
	$(GO) run ./cmd/benchgate -quality-json BENCH_quality.json \
		-min-accuracy-recovery $(MIN_ACCURACY_RECOVERY) -min-savings-retention $(MIN_SAVINGS_RETENTION)

# Fast quality gate for `make check`: the full drift replay is virtual-
# clock driven and takes well under a second of wall clock.
quality-gate:
	$(GO) run ./cmd/approxbench -drift -quality-json /tmp/BENCH_quality.gate.json
	$(GO) run ./cmd/benchgate -quality-json /tmp/BENCH_quality.gate.json \
		-min-accuracy-recovery $(MIN_ACCURACY_RECOVERY) -min-savings-retention $(MIN_SAVINGS_RETENTION)

# Read-scalability benchmark (E24): warmed 4096-entry index, reader
# sweep 1 -> 32 over the lock-free path vs the RWMutex baseline;
# records BENCH_readscale.json and enforces the parallelism-aware
# speedup gate plus the zero-allocation warm-path budget.
bench-readscale:
	$(GO) run ./cmd/approxbench -readscale -readscale-json BENCH_readscale.json
	$(GO) run ./cmd/benchgate -readscale-json BENCH_readscale.json -min-readscale-speedup $(MIN_READSCALE_SPEEDUP)

# Fast read-scale gate for `make check`: re-runs the sweep (a few
# seconds; passes are interleaved best-of so the ratio is stable) and
# fails on regression or a warm-path allocation.
readscale-gate:
	$(GO) run ./cmd/approxbench -readscale -readscale-json /tmp/BENCH_readscale.gate.json
	$(GO) run ./cmd/benchgate -readscale-json /tmp/BENCH_readscale.gate.json -min-readscale-speedup $(MIN_READSCALE_SPEEDUP)

# P2P wire benchmark (E25): legacy v1 float64 protocol vs the compact
# v2 stack on bandwidth-constrained links; records BENCH_p2p.json and
# enforces the bytes/frame reduction gate at no peer-hit-rate loss.
bench-p2p:
	$(GO) run ./cmd/approxbench -p2p -p2p-json BENCH_p2p.json
	$(GO) run ./cmd/benchgate -p2p-json BENCH_p2p.json -min-bytes-reduction $(MIN_P2P_REDUCTION)

# Fast p2p gate for `make check`: the sweep is virtual-clock driven and
# replays in well under a second of wall clock.
p2p-gate:
	$(GO) run ./cmd/approxbench -p2p -p2p-json /tmp/BENCH_p2p.gate.json
	$(GO) run ./cmd/benchgate -p2p-json /tmp/BENCH_p2p.gate.json -min-bytes-reduction $(MIN_P2P_REDUCTION)

# Device fault matrix (E19): every sensor fault class plus a DNN outage,
# guards and watchdog toggled. The acceptance test asserts the shape;
# this target prints the full table for inspection.
fault-matrix:
	$(GO) test -run 'TestFaultMatrixAcceptance|TestE19Report' -count=1 ./internal/eval/
	$(GO) run ./cmd/approxbench -exp E19 -frames 300
