package dnn

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"approxcache/internal/vision"
)

func testClasses(t *testing.T) *vision.ClassSet {
	t.Helper()
	cs, err := vision.NewClassSet(6, 64, 64, 21)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestProfileValidate(t *testing.T) {
	tests := []struct {
		name string
		p    Profile
		ok   bool
	}{
		{"mobilenet", MobileNetV2, true},
		{"no name", Profile{MeanLatency: time.Second, Top1Accuracy: 0.9}, false},
		{"zero latency", Profile{Name: "x", Top1Accuracy: 0.9}, false},
		{"negative jitter", Profile{Name: "x", MeanLatency: 1, LatencyJitter: -1, Top1Accuracy: 0.9}, false},
		{"negative energy", Profile{Name: "x", MeanLatency: 1, EnergyPerInference: -1, Top1Accuracy: 0.9}, false},
		{"zero accuracy", Profile{Name: "x", MeanLatency: 1}, false},
		{"accuracy > 1", Profile{Name: "x", MeanLatency: 1, Top1Accuracy: 1.5}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err == nil) != tt.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestZooProfilesAllValid(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %q invalid: %v", p.Name, err)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("resnet-50")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "resnet-50" {
		t.Fatalf("got %q", p.Name)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile should error")
	}
}

func TestNewClassifierValidation(t *testing.T) {
	cs := testClasses(t)
	if _, err := NewClassifier(Profile{}, cs, 1); err == nil {
		t.Fatal("bad profile accepted")
	}
	if _, err := NewClassifier(MobileNetV2, nil, 1); err == nil {
		t.Fatal("nil class set accepted")
	}
}

func TestLabels(t *testing.T) {
	cs := testClasses(t)
	c, err := NewClassifier(MobileNetV2, cs, 1)
	if err != nil {
		t.Fatal(err)
	}
	labels := c.Labels()
	if len(labels) != 6 {
		t.Fatalf("labels = %v", labels)
	}
	for i, l := range labels {
		if l != LabelOf(i) {
			t.Fatalf("label %d = %q", i, l)
		}
		if !strings.HasPrefix(l, "class-") {
			t.Fatalf("unexpected label form %q", l)
		}
	}
	labels[0] = "mutated"
	if c.Labels()[0] == "mutated" {
		t.Fatal("Labels exposes internal slice")
	}
}

func TestInferNilImage(t *testing.T) {
	cs := testClasses(t)
	c, err := NewClassifier(MobileNetV2, cs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Infer(nil); err == nil {
		t.Fatal("nil image accepted")
	}
}

func TestInferPerfectModelAlwaysCorrect(t *testing.T) {
	cs := testClasses(t)
	perfect := MobileNetV2
	perfect.Top1Accuracy = 1.0
	c, err := NewClassifier(perfect, cs, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		cls := trial % cs.NumClasses()
		im, err := cs.Render(cls, vision.DefaultPerturbation(), rng)
		if err != nil {
			t.Fatal(err)
		}
		inf, err := c.Infer(im)
		if err != nil {
			t.Fatal(err)
		}
		if inf.Label != LabelOf(cls) {
			t.Fatalf("trial %d: label %q, want %q", trial, inf.Label, LabelOf(cls))
		}
		if !inf.Correct {
			t.Fatal("perfect model reported incorrect")
		}
	}
}

func TestInferAccuracyMatchesProfile(t *testing.T) {
	cs := testClasses(t)
	p := MobileNetV2
	p.Top1Accuracy = 0.8
	c, err := NewClassifier(p, cs, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	const n = 600
	correct := 0
	for i := 0; i < n; i++ {
		cls := i % cs.NumClasses()
		im, err := cs.Render(cls, vision.DefaultPerturbation(), rng)
		if err != nil {
			t.Fatal(err)
		}
		inf, err := c.Infer(im)
		if err != nil {
			t.Fatal(err)
		}
		if inf.Label == LabelOf(cls) {
			correct++
		}
	}
	acc := float64(correct) / n
	if acc < 0.72 || acc > 0.88 {
		t.Fatalf("measured accuracy %v, want ~0.8", acc)
	}
}

func TestInferLatencyDistribution(t *testing.T) {
	cs := testClasses(t)
	c, err := NewClassifier(MobileNetV2, cs, 6)
	if err != nil {
		t.Fatal(err)
	}
	proto, _ := cs.Prototype(0)
	var total time.Duration
	const n = 200
	for i := 0; i < n; i++ {
		inf, err := c.Infer(proto)
		if err != nil {
			t.Fatal(err)
		}
		if inf.Latency < MobileNetV2.MeanLatency/2 {
			t.Fatalf("latency %v below floor", inf.Latency)
		}
		if inf.EnergyMJ != MobileNetV2.EnergyPerInference {
			t.Fatalf("energy = %v", inf.EnergyMJ)
		}
		total += inf.Latency
	}
	mean := total / n
	lo := MobileNetV2.MeanLatency - MobileNetV2.MeanLatency/10
	hi := MobileNetV2.MeanLatency + MobileNetV2.MeanLatency/10
	if mean < lo || mean > hi {
		t.Fatalf("mean latency %v, want within 10%% of %v", mean, MobileNetV2.MeanLatency)
	}
}

func TestInferConfidenceRange(t *testing.T) {
	cs := testClasses(t)
	c, err := NewClassifier(MobileNetV2, cs, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		im, err := cs.Render(i%cs.NumClasses(), vision.HardPerturbation(), rng)
		if err != nil {
			t.Fatal(err)
		}
		inf, err := c.Infer(im)
		if err != nil {
			t.Fatal(err)
		}
		if inf.Confidence < 0 || inf.Confidence > 1 {
			t.Fatalf("confidence %v out of range", inf.Confidence)
		}
	}
}

func TestInferDeterministicWithSeed(t *testing.T) {
	cs := testClasses(t)
	run := func() []string {
		c, err := NewClassifier(MobileNetV2, cs, 99)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(10))
		var out []string
		for i := 0; i < 30; i++ {
			im, err := cs.Render(i%cs.NumClasses(), vision.DefaultPerturbation(), rng)
			if err != nil {
				t.Fatal(err)
			}
			inf, err := c.Infer(im)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, inf.Label)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestInferTopK(t *testing.T) {
	cs := testClasses(t)
	c, err := NewClassifier(MobileNetV2, cs, 3)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := cs.Prototype(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.InferTopK(nil, 3); err == nil {
		t.Fatal("nil image accepted")
	}
	if _, err := c.InferTopK(proto, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	ranked, err := c.InferTopK(proto, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("len = %d", len(ranked))
	}
	if ranked[0].Label != LabelOf(2) {
		t.Fatalf("top label = %q", ranked[0].Label)
	}
	var sum float64
	for i, r := range ranked {
		if r.Score <= 0 || r.Score > 1 {
			t.Fatalf("score %d = %v", i, r.Score)
		}
		if i > 0 && r.Score > ranked[i-1].Score {
			t.Fatal("scores not descending")
		}
		sum += r.Score
	}
	if sum > 1+1e-9 {
		t.Fatalf("scores sum to %v", sum)
	}
	// An exact prototype query is dominated by its own class.
	if ranked[0].Score < 0.5 {
		t.Fatalf("top score = %v on exact prototype", ranked[0].Score)
	}
	// k beyond the vocabulary clamps.
	all, err := c.InferTopK(proto, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != cs.NumClasses() {
		t.Fatalf("clamped len = %d", len(all))
	}
}

func TestSingleClassNeverMisclassifies(t *testing.T) {
	cs, err := vision.NewClassSet(1, 32, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := MobileNetV2
	p.Top1Accuracy = 0.5
	c, err := NewClassifier(p, cs, 2)
	if err != nil {
		t.Fatal(err)
	}
	proto, _ := cs.Prototype(0)
	for i := 0; i < 20; i++ {
		inf, err := c.Infer(proto)
		if err != nil {
			t.Fatal(err)
		}
		if inf.Label != LabelOf(0) {
			t.Fatal("single-class classifier produced another label")
		}
	}
}
