// Deterministic device-input corruptors. Each function takes a healthy
// IMU window or frame and returns a corrupted copy reproducing one
// real-world sensor failure mode, so chaos experiments and guard tests
// can inject exactly the fault class they want to measure. Inputs are
// never mutated; all randomness comes from the caller's seeded rng.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"approxcache/internal/imu"
	"approxcache/internal/video"
	"approxcache/internal/vision"
)

// IMUFault selects an IMU window corruption.
type IMUFault int

// Supported IMU fault injections, mirroring imu's guard classes.
const (
	// IMUDropout removes the middle of the window, leaving a gap.
	IMUDropout IMUFault = iota + 1
	// IMUStuck freezes one axis at its first reading (a hung driver).
	IMUStuck
	// IMUSaturate clips readings to far beyond the sensor range.
	IMUSaturate
	// IMUNonMonotonic swaps timestamps so they go backwards.
	IMUNonMonotonic
	// IMUClockSkew shifts all offsets back before zero (sensor clock
	// disagreeing with the frame clock).
	IMUClockSkew
	// IMUNonFinite plants a NaN reading (corrupt HAL buffer).
	IMUNonFinite
)

// String returns the fault name.
func (f IMUFault) String() string {
	switch f {
	case IMUDropout:
		return "imu-dropout"
	case IMUStuck:
		return "imu-stuck"
	case IMUSaturate:
		return "imu-saturated"
	case IMUNonMonotonic:
		return "imu-non-monotonic"
	case IMUClockSkew:
		return "imu-clock-skew"
	case IMUNonFinite:
		return "imu-non-finite"
	default:
		return fmt.Sprintf("IMUFault(%d)", int(f))
	}
}

// CorruptIMUWindow returns a corrupted copy of win under fault. Windows
// too small to express the fault are returned as (copied) is.
func CorruptIMUWindow(win []imu.Sample, fault IMUFault, rng *rand.Rand) []imu.Sample {
	out := make([]imu.Sample, len(win))
	copy(out, win)
	if len(out) == 0 {
		return out
	}
	switch fault {
	case IMUDropout:
		if len(out) < 4 {
			return out
		}
		// Cut the middle half and close ranks: the two halves stay in
		// order but a large timestamp gap remains between them.
		q := len(out) / 4
		out = append(out[:q], out[len(out)-q:]...)
	case IMUStuck:
		ax := rng.Intn(3)
		v := out[0].Accel[ax]
		for i := range out {
			out[i].Accel[ax] = v
		}
	case IMUSaturate:
		// Pin readings just past full scale with a little per-sample
		// ripple so the guard sees saturation, not a frozen axis.
		for i := range out {
			jit := float64(i%9) * 0.01
			for ax := 0; ax < 3; ax++ {
				out[i].Accel[ax] = math.Copysign(100+jit, out[i].Accel[ax])
				out[i].Gyro[ax] = math.Copysign(50+jit, out[i].Gyro[ax])
			}
		}
	case IMUNonMonotonic:
		if len(out) < 2 {
			return out
		}
		i := 1 + rng.Intn(len(out)-1)
		out[i].Offset = out[i-1].Offset - 5*time.Millisecond
	case IMUClockSkew:
		for i := range out {
			out[i].Offset -= time.Hour
		}
	case IMUNonFinite:
		out[rng.Intn(len(out))].Gyro[rng.Intn(3)] = math.NaN()
	}
	return out
}

// FrameFault selects a camera frame corruption.
type FrameFault int

// Supported frame fault injections.
const (
	// FrameBlack replaces the frame with an all-black capture (covered
	// lens, failed exposure).
	FrameBlack FrameFault = iota + 1
	// FrameFlat replaces the frame with a uniform mid-gray (sensor
	// readout fault).
	FrameFlat
	// FrameNonFinite plants NaN pixels (corrupt camera buffer).
	FrameNonFinite
)

// String returns the fault name.
func (f FrameFault) String() string {
	switch f {
	case FrameBlack:
		return "frame-black"
	case FrameFlat:
		return "frame-flat"
	case FrameNonFinite:
		return "frame-non-finite"
	default:
		return fmt.Sprintf("FrameFault(%d)", int(f))
	}
}

// SwapScenes returns a copy of w in which, from frame index fromFrame
// onward, the true class behind every scene is rotated by shift (mod
// the workload's class count) while the rendered images stay exactly
// as they were. This is world drift as the cache experiences it: the
// same-looking scenes silently change meaning, so every result cached
// before the swap is wrong afterwards — and nothing on the device
// errors, slows down, or looks different. The input workload is never
// mutated (frame records are copied; immutable images are shared).
func SwapScenes(w *Workload, fromFrame, shift int) *Workload {
	out := &Workload{Spec: w.Spec, Classes: w.Classes, IMU: w.IMU}
	out.Frames = make([]video.Frame, len(w.Frames))
	copy(out.Frames, w.Frames)
	n := w.Spec.NumClasses
	if n <= 0 {
		return out
	}
	for i := range out.Frames {
		if out.Frames[i].Index < fromFrame {
			continue
		}
		out.Frames[i].Class = ((out.Frames[i].Class+shift)%n + n) % n
	}
	return out
}

// CorruptFrame returns a corrupted copy of im under fault.
func CorruptFrame(im *vision.Image, fault FrameFault, rng *rand.Rand) *vision.Image {
	out := im.Clone()
	switch fault {
	case FrameBlack:
		for i := range out.Pix {
			out.Pix[i] = 0
		}
	case FrameFlat:
		for i := range out.Pix {
			out.Pix[i] = 0.5
		}
	case FrameNonFinite:
		for k := 0; k < 3 && len(out.Pix) > 0; k++ {
			out.Pix[rng.Intn(len(out.Pix))] = math.NaN()
		}
	}
	return out
}
