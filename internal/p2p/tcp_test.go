package p2p

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"approxcache/internal/feature"
)

func startServer(t *testing.T) (*TCPServer, *Service) {
	t.Helper()
	svc, err := NewService(DefaultServiceConfig("tcp-node"), newStore(t, 32))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServe("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, svc
}

func newTCPClient(t *testing.T) *TCPTransport {
	t.Helper()
	tr, err := NewTCPTransport(time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tr.Close() })
	return tr
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, payload) {
		t.Fatalf("frame = %q", out)
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, MaxFrameSize+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Oversized declared length is rejected before allocation.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("oversized declared frame accepted")
	}
	// Truncated frame.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 10, 1, 2})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestNewTCPTransportValidation(t *testing.T) {
	if _, err := NewTCPTransport(0, time.Second); err == nil {
		t.Fatal("zero dial timeout accepted")
	}
	if _, err := NewTCPTransport(time.Second, 0); err == nil {
		t.Fatal("zero io timeout accepted")
	}
}

func TestTCPQueryRoundTrip(t *testing.T) {
	srv, svc := startServer(t)
	if _, err := svc.Store().Insert(feature.Vector{1, 0}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	tr := newTCPClient(t)
	cl, err := NewClient(DefaultClientConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetPeers([]string{srv.Addr()})
	hit, rtt, found, err := cl.Query(feature.Vector{1, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !found || hit.Label != "cat" {
		t.Fatalf("hit = %+v found=%v", hit, found)
	}
	if rtt <= 0 {
		t.Fatalf("rtt = %v", rtt)
	}
}

func TestTCPGossipAndPing(t *testing.T) {
	srv, svc := startServer(t)
	tr := newTCPClient(t)
	cl, err := NewClient(DefaultClientConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetPeers([]string{srv.Addr()})
	if _, err := cl.Gossip(feature.Vector{1, 0}, "dog", 0.8, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if svc.Store().Len() != 1 {
		t.Fatalf("gossip not admitted, store len = %d", svc.Store().Len())
	}
	pong, _, err := cl.Ping("me", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if pong.From != "tcp-node" || pong.Entries != 1 {
		t.Fatalf("pong = %+v", pong)
	}
}

func TestTCPConnectionReuse(t *testing.T) {
	srv, svc := startServer(t)
	if _, err := svc.Store().Insert(feature.Vector{1, 0}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	tr := newTCPClient(t)
	req, err := Encode(Query{Vec: feature.Vector{1, 0}, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := tr.Call(srv.Addr(), req); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	tr.mu.Lock()
	pooled := len(tr.conns)
	tr.mu.Unlock()
	if pooled != 1 {
		t.Fatalf("pooled conns = %d, want 1", pooled)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv, svc := startServer(t)
	if _, err := svc.Store().Insert(feature.Vector{1, 0}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	req, err := Encode(Query{Vec: feature.Vector{1, 0}, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, err := NewTCPTransport(time.Second, 2*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer tr.Close()
			for i := 0; i < 25; i++ {
				if _, _, err := tr.Call(srv.Addr(), req); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestTCPCallUnreachable(t *testing.T) {
	tr := newTCPClient(t)
	// Reserved port on localhost that nothing listens on: dial must
	// fail quickly, not hang.
	_, _, err := tr.Call("127.0.0.1:1", []byte{1})
	if err == nil {
		t.Fatal("unreachable peer accepted")
	}
	if !strings.Contains(err.Error(), "dial") {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPServerCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	// Calls after close fail.
	tr := newTCPClient(t)
	if _, _, err := tr.Call(srv.Addr(), []byte{1}); err == nil {
		t.Fatal("call to closed server succeeded")
	}
}

func TestTCPServerDropsGarbageConnection(t *testing.T) {
	srv, svc := startServer(t)
	tr := newTCPClient(t)
	// Send a frame that decodes to garbage: server drops the
	// connection, client sees a read error.
	if _, _, err := tr.Call(srv.Addr(), []byte{0xEE, 0xEE}); err == nil {
		t.Fatal("garbage frame got a response")
	}
	// Server must still serve subsequent well-formed traffic.
	if _, err := svc.Store().Insert(feature.Vector{1, 0}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	req, err := Encode(Query{Vec: feature.Vector{1, 0}, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Call(srv.Addr(), req); err != nil {
		t.Fatalf("post-garbage call failed: %v", err)
	}
}

func TestTCPCallSilentPeerTimesOut(t *testing.T) {
	// A peer that accepts the connection and then never responds is
	// the nastiest failure mode: without an I/O deadline the call
	// would hang forever. The deadline must fire, and the error must
	// classify as a timeout so the health tracker charges the right
	// failure class.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		<-done // hold the connection open, never write a byte
	}()

	tr, err := NewTCPTransport(time.Second, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	start := time.Now()
	_, rtt, err := tr.Call(ln.Addr().String(), []byte{1})
	if err == nil {
		t.Fatal("silent peer produced a response")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("deadline took %v to fire, want ~50ms", elapsed)
	}
	if rtt < 50*time.Millisecond {
		t.Fatalf("rtt %v below the io timeout", rtt)
	}
	if got := Classify(err); got != ErrClassTimeout {
		t.Fatalf("Classify(%v) = %v, want timeout", err, got)
	}
}
