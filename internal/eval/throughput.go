package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"approxcache/internal/cachestore"
	"approxcache/internal/core"
	"approxcache/internal/dnn"
	"approxcache/internal/lsh"
	"approxcache/internal/metrics"
	"approxcache/internal/simclock"
	"approxcache/internal/vision"
)

// The saturation benchmark: M concurrent synthetic client streams
// against one serving node, comparing store/scheduler architectures.
//
// Most of this package replays workloads on a virtual clock, where
// lock contention is invisible. Throughput under concurrency is a
// wall-clock property, so this harness inverts the usual setup: the
// engine still charges simulated costs to a virtual clock (instantly),
// but the classifier is wrapped in an accelerator occupancy model — a
// mutex held while REALLY sleeping a scaled-down share of the model's
// simulated latency. One invocation at a time, like a physical NPU.
// Architectures then differ honestly: a single-mutex store serializes
// streams around both the store and the accelerator; sharding removes
// store contention; micro-batching amortizes accelerator occupancy
// across concurrent misses (one fixed invocation cost per batch
// instead of per frame). The measured frames/sec ordering reflects the
// mechanisms, not CPU-count luck, so it holds on a single-core CI box.

// Throughput mode names, in report order.
const (
	ModeSingleMutex = "single-mutex"
	ModePool1Shard  = "pool-1shard"
	ModePoolSharded = "pool-sharded"
	ModePoolBatched = "pool-sharded-batched"
)

// ThroughputModes lists the benchmark's architecture variants.
func ThroughputModes() []string {
	return []string{ModeSingleMutex, ModePool1Shard, ModePoolSharded, ModePoolBatched}
}

// ThroughputConfig shapes the saturation benchmark.
type ThroughputConfig struct {
	// Streams is the number of concurrent client streams (default 16).
	Streams int
	// Frames is the per-stream frame count (default 30).
	Frames int
	// Shards is the sharded store's stripe count (default 8).
	Shards int
	// Classes is the synthetic vocabulary size (default 24).
	Classes int
	// Capacity is the node's total cache capacity (default 512).
	Capacity int
	// Seed anchors all randomness.
	Seed int64
	// Scale converts simulated inference latency to real accelerator
	// occupancy: realSleep = Scale × simulatedLatency. Default 1/15
	// (a 120 ms simulated inference occupies the accelerator 8 ms).
	Scale float64
	// Profile is the model profile (default MobileNetV2).
	Profile dnn.Profile
	// Batcher is the micro-batching policy for the batched mode
	// (default: 16 frames or 5 ms).
	Batcher dnn.BatcherConfig
	// MaxReuseStreak bounds reuse before forced revalidation. The
	// default (2) keeps the DNN hot — this is a saturation benchmark
	// of the serving layer, not a best-case hit-rate demo.
	MaxReuseStreak int
}

func (c *ThroughputConfig) defaults() {
	if c.Streams == 0 {
		c.Streams = 16
	}
	if c.Frames == 0 {
		c.Frames = 30
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.Classes == 0 {
		c.Classes = 24
	}
	if c.Capacity == 0 {
		c.Capacity = 512
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Scale == 0 {
		c.Scale = 1.0 / 15
	}
	if c.Profile.Name == "" {
		c.Profile = dnn.MobileNetV2
	}
	if c.Batcher.MaxBatch == 0 {
		c.Batcher = dnn.BatcherConfig{MaxBatch: 16, MaxWait: 5 * time.Millisecond}
	}
	if c.MaxReuseStreak == 0 {
		c.MaxReuseStreak = 2
	}
}

// ThroughputResult is one architecture variant's measurement.
type ThroughputResult struct {
	Mode      string  `json:"mode"`
	Frames    int     `json:"frames"`
	WallMS    float64 `json:"wall_ms"`
	FPS       float64 `json:"fps"`
	P50MS     float64 `json:"p50_ms"`
	P95MS     float64 `json:"p95_ms"`
	P99MS     float64 `json:"p99_ms"`
	DNNFrames int     `json:"dnn_frames"`
	HitRate   float64 `json:"hit_rate"`
	// Shards carries per-shard occupancy/contention counters (pool
	// modes only).
	Shards []metrics.ShardStat `json:"shards,omitempty"`
	// Batcher carries scheduler counters (batched mode only).
	Batcher *metrics.BatcherStats `json:"batcher,omitempty"`
}

// ThroughputReport is the full benchmark outcome, serialized to
// BENCH_throughput.json and gated by cmd/benchgate.
type ThroughputReport struct {
	Streams  int                `json:"streams"`
	Frames   int                `json:"frames_per_stream"`
	Shards   int                `json:"shards"`
	MaxBatch int                `json:"max_batch"`
	Results  []ThroughputResult `json:"results"`
	// Speedup is sharded+batched frames/sec over single-mutex
	// frames/sec — the number the regression gate enforces.
	Speedup float64 `json:"speedup"`
}

// streamWorkload is one stream's pre-rendered frames (rendering is
// pure CPU cost that would otherwise pollute the serving measurement).
type streamWorkload struct {
	images []*vision.Image
	truths []string
}

func renderStreams(cfg ThroughputConfig, classes *vision.ClassSet) ([]streamWorkload, error) {
	out := make([]streamWorkload, cfg.Streams)
	for s := range out {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(s)*7919))
		out[s].images = make([]*vision.Image, cfg.Frames)
		out[s].truths = make([]string, cfg.Frames)
		for i := 0; i < cfg.Frames; i++ {
			class := (s + i) % classes.NumClasses()
			im, err := classes.Render(class, vision.DefaultPerturbation(), rng)
			if err != nil {
				return nil, fmt.Errorf("render stream %d frame %d: %w", s, i, err)
			}
			out[s].images[i] = im
			out[s].truths[i] = dnn.LabelOf(class)
		}
	}
	return out, nil
}

// occupiedModel models a serial accelerator: one invocation at a time,
// really occupying it for Scale × simulated latency. Batched
// invocations occupy it once for the whole batch — the amortization
// micro-batching exists to exploit.
type occupiedModel struct {
	inner *dnn.Classifier
	scale float64
	mu    sync.Mutex
}

func (m *occupiedModel) Profile() dnn.Profile { return m.inner.Profile() }

func (m *occupiedModel) Infer(im *vision.Image) (dnn.Inference, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	inf, err := m.inner.Infer(im)
	if err != nil {
		return inf, err
	}
	time.Sleep(time.Duration(m.scale * float64(inf.Latency)))
	return inf, nil
}

func (m *occupiedModel) InferBatch(ims []*vision.Image) ([]dnn.Inference, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	infs, err := m.inner.InferBatch(ims)
	if err != nil {
		return nil, err
	}
	var occupancy time.Duration
	for _, inf := range infs {
		occupancy += inf.Latency // per-frame amortized shares sum to the batch cost
	}
	time.Sleep(time.Duration(m.scale * float64(occupancy)))
	return infs, nil
}

// throughputEngineConfig is the serving-node pipeline: gates that
// reason about one camera's motion are off (streams here are
// independent synthetic clients), so every frame exercises the cache
// lookup and, on a miss, the classifier — the two layers under test.
func throughputEngineConfig(maxStreak int) core.Config {
	cfg := core.DefaultConfig()
	cfg.DisableIMUGate = true
	cfg.DisableVideoGate = true
	cfg.DisableSensorGuards = true
	cfg.MaxReuseStreak = maxStreak
	return cfg
}

// RunThroughputMode measures one architecture variant and returns its
// result.
func RunThroughputMode(cfg ThroughputConfig, mode string) (ThroughputResult, error) {
	cfg.defaults()
	classes, err := vision.NewClassSet(cfg.Classes, 48, 48, cfg.Seed)
	if err != nil {
		return ThroughputResult{}, err
	}
	streams, err := renderStreams(cfg, classes)
	if err != nil {
		return ThroughputResult{}, err
	}
	classifier, err := dnn.NewClassifier(cfg.Profile, classes, cfg.Seed)
	if err != nil {
		return ThroughputResult{}, err
	}
	model := &occupiedModel{inner: classifier, scale: cfg.Scale}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	ecfg := throughputEngineConfig(cfg.MaxReuseStreak)
	dim := ecfg.Extractor.Dim()
	newIndex := func(int) (lsh.Index, error) {
		return lsh.NewHyperplane(dim, 12, 4, cfg.Seed)
	}

	var engines []*core.Engine
	var sharded *cachestore.ShardedStore
	var batcher *dnn.Batcher
	var stats *metrics.SessionStats
	switch mode {
	case ModeSingleMutex:
		// The pre-sharding architecture: every stream funnels through
		// ONE engine over ONE exclusive-mutex store, unbatched.
		idx, err := newIndex(0)
		if err != nil {
			return ThroughputResult{}, err
		}
		inner, err := cachestore.New(cachestore.Config{Capacity: cfg.Capacity}, idx, clock)
		if err != nil {
			return ThroughputResult{}, err
		}
		eng, err := core.New(ecfg, core.Deps{
			Clock: clock, Classifier: model, Store: cachestore.NewSerialized(inner),
		})
		if err != nil {
			return ThroughputResult{}, err
		}
		stats = eng.Stats()
		engines = make([]*core.Engine, cfg.Streams)
		for i := range engines {
			engines[i] = eng
		}
	case ModePool1Shard, ModePoolSharded, ModePoolBatched:
		shards := cfg.Shards
		if mode == ModePool1Shard {
			shards = 1
		}
		sharded, err = cachestore.NewSharded(cachestore.ShardedConfig{
			Config: cachestore.Config{Capacity: cfg.Capacity},
			Dim:    dim,
			Shards: shards,
		}, newIndex, clock)
		if err != nil {
			return ThroughputResult{}, err
		}
		var cls core.Classifier = model
		if mode == ModePoolBatched {
			batcher, err = dnn.NewBatcher(cfg.Batcher, model)
			if err != nil {
				return ThroughputResult{}, err
			}
			defer batcher.Close()
			cls = batcher
		}
		pool, err := core.NewPool(cfg.Streams, ecfg, core.Deps{
			Clock: clock, Classifier: cls, Store: sharded,
		})
		if err != nil {
			return ThroughputResult{}, err
		}
		stats = pool.Stats()
		engines = pool.Sessions()
	default:
		return ThroughputResult{}, fmt.Errorf("eval: unknown throughput mode %q", mode)
	}

	// Drive all streams concurrently, recording per-frame wall time.
	perStream := make([][]time.Duration, cfg.Streams)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	start := time.Now()
	for s := 0; s < cfg.Streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, cfg.Frames)
			eng := engines[s]
			w := streams[s]
			for i := 0; i < cfg.Frames; i++ {
				t0 := time.Now()
				if _, err := eng.ProcessWithTruth(w.images[i], nil, w.truths[i]); err != nil {
					errOnce.Do(func() { firstErr = fmt.Errorf("stream %d frame %d: %w", s, i, err) })
					return
				}
				lat = append(lat, time.Since(t0))
			}
			perStream[s] = lat
		}(s)
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return ThroughputResult{}, firstErr
	}

	var all []time.Duration
	for _, lat := range perStream {
		all = append(all, lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p/100*float64(len(all))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(all) {
			i = len(all) - 1
		}
		return float64(all[i]) / float64(time.Millisecond)
	}
	res := ThroughputResult{
		Mode:      mode,
		Frames:    len(all),
		WallMS:    float64(wall) / float64(time.Millisecond),
		FPS:       float64(len(all)) / wall.Seconds(),
		P50MS:     pct(50),
		P95MS:     pct(95),
		P99MS:     pct(99),
		DNNFrames: stats.CountBySource()[metrics.SourceDNN],
		HitRate:   stats.HitRate(),
	}
	if sharded != nil {
		res.Shards = sharded.ShardStats()
	}
	if batcher != nil {
		st := batcher.Stats()
		res.Batcher = &st
	}
	return res, nil
}

// RunThroughput measures all four architecture variants and computes
// the headline speedup (sharded+batched over single-mutex).
func RunThroughput(cfg ThroughputConfig) (ThroughputReport, error) {
	cfg.defaults()
	rep := ThroughputReport{
		Streams:  cfg.Streams,
		Frames:   cfg.Frames,
		Shards:   cfg.Shards,
		MaxBatch: cfg.Batcher.MaxBatch,
	}
	var base, best float64
	for _, mode := range ThroughputModes() {
		res, err := RunThroughputMode(cfg, mode)
		if err != nil {
			return ThroughputReport{}, fmt.Errorf("mode %s: %w", mode, err)
		}
		rep.Results = append(rep.Results, res)
		switch mode {
		case ModeSingleMutex:
			base = res.FPS
		case ModePoolBatched:
			best = res.FPS
		}
	}
	if base > 0 {
		rep.Speedup = best / base
	}
	return rep, nil
}

// E20Throughput is the serving-scale experiment: the architecture
// ladder from single-mutex to sharded+batched at a test-friendly size.
func E20Throughput(scale Scale) (Report, error) {
	cfg := ThroughputConfig{Seed: scale.Seed}
	if scale.Frames < DefaultScale().Frames {
		// Small scale: fewer streams/frames, same architecture ladder.
		cfg.Streams = 8
		cfg.Frames = 12
	}
	rep, err := RunThroughput(cfg)
	if err != nil {
		return Report{}, err
	}
	out := Report{
		ID:    "E20",
		Title: "Serving throughput: store/scheduler architecture ladder",
		Headers: []string{"architecture", "frames/sec", "p50 ms", "p95 ms",
			"p99 ms", "dnn frames", "hit-rate", "contended ops", "avg batch"},
	}
	for _, r := range rep.Results {
		var contended int64
		for _, sh := range r.Shards {
			contended += sh.Contended
		}
		avgBatch := "-"
		if r.Batcher != nil {
			avgBatch = fmtF(r.Batcher.AvgSize())
		}
		out.Rows = append(out.Rows, []string{
			r.Mode, fmtF(r.FPS), fmtF(r.P50MS), fmtF(r.P95MS), fmtF(r.P99MS),
			fmt.Sprintf("%d", r.DNNFrames), fmtPct(r.HitRate),
			fmt.Sprintf("%d", contended), avgBatch,
		})
	}
	out.Notes = append(out.Notes,
		fmt.Sprintf("%d streams × %d frames; accelerator occupancy model (serial, scaled %s)",
			rep.Streams, rep.Frames, "1/15"),
		fmt.Sprintf("speedup sharded+batched vs single-mutex: %.2fx", rep.Speedup),
	)
	return out, nil
}
