package p2p

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"approxcache/internal/simclock"
)

// PeerInfo is the roster's view of one peer.
type PeerInfo struct {
	// Name is the peer's address on the transport.
	Name string
	// Alive reports whether the last probe succeeded.
	Alive bool
	// Entries is the cache occupancy the peer advertised.
	Entries uint32
	// RTT is the last successful probe's round-trip time.
	RTT time.Duration
	// LastSeen is when the peer last answered.
	LastSeen time.Time
	// Failures counts consecutive failed probes.
	Failures int
}

// Roster tracks the liveness and warmth of known peers via the
// protocol's Ping, and ranks them so querying devices prefer warm,
// close, alive caches. Roster is safe for concurrent use.
type Roster struct {
	self   string
	client *Client
	clock  simclock.Clock

	mu    sync.Mutex
	peers map[string]*PeerInfo
}

// NewRoster builds a roster probing through client, identifying as
// self.
func NewRoster(self string, client *Client, clock simclock.Clock) (*Roster, error) {
	if self == "" {
		return nil, fmt.Errorf("p2p: roster needs a self name")
	}
	if client == nil {
		return nil, fmt.Errorf("p2p: nil client")
	}
	if clock == nil {
		return nil, fmt.Errorf("p2p: nil clock")
	}
	return &Roster{
		self:   self,
		client: client,
		clock:  clock,
		peers:  make(map[string]*PeerInfo),
	}, nil
}

// Add registers peers by name. Known names are kept.
func (r *Roster) Add(names ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range names {
		if n == "" || n == r.self {
			continue
		}
		if _, ok := r.peers[n]; !ok {
			r.peers[n] = &PeerInfo{Name: n}
		}
	}
}

// Remove forgets a peer.
func (r *Roster) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.peers, name)
}

// Known returns all tracked peer names, sorted.
func (r *Roster) Known() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.peers))
	for n := range r.peers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Info returns a snapshot of one peer's state.
func (r *Roster) Info(name string) (PeerInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.peers[name]
	if !ok {
		return PeerInfo{}, false
	}
	return *p, true
}

// Refresh probes every known peer once and updates liveness, RTT, and
// advertised cache occupancy. It returns how many peers answered.
func (r *Roster) Refresh() int {
	names := r.Known()
	alive := 0
	for _, name := range names {
		pong, rtt, err := r.client.Ping(r.self, name)
		r.mu.Lock()
		p, ok := r.peers[name]
		if !ok { // removed concurrently
			r.mu.Unlock()
			continue
		}
		if err != nil {
			p.Failures++
			p.Alive = false
		} else {
			p.Failures = 0
			p.Alive = true
			p.Entries = pong.Entries
			p.RTT = rtt
			p.LastSeen = r.clock.Now()
			alive++
		}
		r.mu.Unlock()
	}
	return alive
}

// Best returns up to n alive peers, warmest first (more advertised
// entries, then lower RTT, then name for determinism). n <= 0 returns
// all alive peers.
func (r *Roster) Best(n int) []string {
	r.mu.Lock()
	infos := make([]PeerInfo, 0, len(r.peers))
	for _, p := range r.peers {
		if p.Alive {
			infos = append(infos, *p)
		}
	}
	r.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].Entries != infos[j].Entries {
			return infos[i].Entries > infos[j].Entries
		}
		if infos[i].RTT != infos[j].RTT {
			return infos[i].RTT < infos[j].RTT
		}
		return infos[i].Name < infos[j].Name
	})
	if n > 0 && len(infos) > n {
		infos = infos[:n]
	}
	out := make([]string, len(infos))
	for i, p := range infos {
		out[i] = p.Name
	}
	return out
}

// ApplyBest refreshes the roster and points the client at the best n
// peers. It returns the selected peer list.
func (r *Roster) ApplyBest(n int) []string {
	r.Refresh()
	best := r.Best(n)
	r.client.SetPeers(best)
	return best
}
