package metrics

import "sync"

// WireKindStats aggregates traffic for one message kind.
type WireKindStats struct {
	// SentMsgs/SentBytes count encoded payloads handed to the
	// transport; RecvMsgs/RecvBytes count payloads received and
	// decoded (by the decoded kind).
	SentMsgs, SentBytes int64
	RecvMsgs, RecvBytes int64
}

// WireStats is a point-in-time snapshot of a WireTally.
type WireStats struct {
	// Kinds breaks traffic down per message kind (by Kind.String()).
	Kinds map[string]WireKindStats
	// Totals across all kinds.
	SentMsgs, SentBytes int64
	RecvMsgs, RecvBytes int64
	// CoalescedInFlight counts queries answered by joining an
	// identical in-flight exchange; CoalescedCached counts queries
	// answered from the TTL'd peer-answer cache. Either way no bytes
	// hit the wire.
	CoalescedInFlight, CoalescedCached int64
	// Batches counts gossip flushes that went out as a batch message;
	// BatchedItems is the total gossip items they carried.
	Batches, BatchedItems int64
}

// AvgBatch returns the mean items per gossip batch (0 when none).
func (s WireStats) AvgBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchedItems) / float64(s.Batches)
}

// WireTally accumulates per-kind wire traffic and comms-optimization
// counters for one protocol endpoint. Unlike the package-level Counter
// vars, a tally is per-client/per-service state: multi-node experiments
// run many endpoints in one process and must not mix their byte counts.
// The zero value is ready to use; all methods are safe for concurrent
// use.
type WireTally struct {
	mu    sync.Mutex
	kinds map[string]*WireKindStats

	coalFlight, coalCached int64
	batches, batchedItems  int64
}

func (t *WireTally) kind(name string) *WireKindStats {
	if t.kinds == nil {
		t.kinds = make(map[string]*WireKindStats)
	}
	k := t.kinds[name]
	if k == nil {
		k = &WireKindStats{}
		t.kinds[name] = k
	}
	return k
}

// Sent books one encoded payload of n bytes handed to the transport.
func (t *WireTally) Sent(kind string, n int) {
	t.mu.Lock()
	k := t.kind(kind)
	k.SentMsgs++
	k.SentBytes += int64(n)
	t.mu.Unlock()
}

// Recv books one received payload of n bytes.
func (t *WireTally) Recv(kind string, n int) {
	t.mu.Lock()
	k := t.kind(kind)
	k.RecvMsgs++
	k.RecvBytes += int64(n)
	t.mu.Unlock()
}

// CoalesceInFlight books a query answered by an in-flight duplicate.
func (t *WireTally) CoalesceInFlight() {
	t.mu.Lock()
	t.coalFlight++
	t.mu.Unlock()
}

// CoalesceCached books a query answered from the TTL answer cache.
func (t *WireTally) CoalesceCached() {
	t.mu.Lock()
	t.coalCached++
	t.mu.Unlock()
}

// ObserveBatch books one gossip batch flush of items entries.
func (t *WireTally) ObserveBatch(items int) {
	t.mu.Lock()
	t.batches++
	t.batchedItems += int64(items)
	t.mu.Unlock()
}

// Snapshot returns a copy of the current totals.
func (t *WireTally) Snapshot() WireStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := WireStats{
		Kinds:             make(map[string]WireKindStats, len(t.kinds)),
		CoalescedInFlight: t.coalFlight,
		CoalescedCached:   t.coalCached,
		Batches:           t.batches,
		BatchedItems:      t.batchedItems,
	}
	for name, k := range t.kinds {
		s.Kinds[name] = *k
		s.SentMsgs += k.SentMsgs
		s.SentBytes += k.SentBytes
		s.RecvMsgs += k.RecvMsgs
		s.RecvBytes += k.RecvBytes
	}
	return s
}
