package p2p

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"approxcache/internal/feature"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	b, err := Encode(m)
	if err != nil {
		t.Fatalf("encode %T: %v", m, err)
	}
	out, err := Decode(b)
	if err != nil {
		t.Fatalf("decode %T: %v", m, err)
	}
	return out
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindQuery:     "query",
		KindQueryResp: "query-resp",
		KindGossip:    "gossip",
		KindAck:       "ack",
		KindPing:      "ping",
		KindPong:      "pong",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatalf("unknown kind = %q", Kind(99).String())
	}
}

func TestQueryRoundTrip(t *testing.T) {
	in := Query{Vec: feature.Vector{0.25, -1.5, 3e-9}, K: 7}
	out, ok := roundTrip(t, in).(Query)
	if !ok {
		t.Fatal("wrong type")
	}
	if out.K != 7 || len(out.Vec) != 3 {
		t.Fatalf("out = %+v", out)
	}
	for i := range in.Vec {
		if in.Vec[i] != out.Vec[i] {
			t.Fatalf("vec[%d] = %v, want %v", i, out.Vec[i], in.Vec[i])
		}
	}
}

func TestQueryRespRoundTrip(t *testing.T) {
	in := QueryResp{Found: true, Label: "class-3", Confidence: 0.875, Distance: 0.0625}
	out, ok := roundTrip(t, in).(QueryResp)
	if !ok {
		t.Fatal("wrong type")
	}
	if out != in {
		t.Fatalf("out = %+v, want %+v", out, in)
	}
	// Not-found response with empty label.
	miss := QueryResp{}
	out2, ok := roundTrip(t, miss).(QueryResp)
	if !ok || out2 != miss {
		t.Fatalf("miss round trip = %+v", out2)
	}
}

func TestGossipRoundTrip(t *testing.T) {
	in := Gossip{
		Vec:        feature.Vector{1, 2, 3, 4},
		Label:      "class-1",
		Confidence: 0.5,
		SavedCost:  120 * time.Millisecond,
	}
	out, ok := roundTrip(t, in).(Gossip)
	if !ok {
		t.Fatal("wrong type")
	}
	if out.Label != in.Label || out.Confidence != in.Confidence || out.SavedCost != in.SavedCost {
		t.Fatalf("out = %+v", out)
	}
}

func TestAckPingPongRoundTrip(t *testing.T) {
	if _, ok := roundTrip(t, Ack{}).(Ack); !ok {
		t.Fatal("ack round trip failed")
	}
	p, ok := roundTrip(t, Ping{From: "node-a"}).(Ping)
	if !ok || p.From != "node-a" {
		t.Fatalf("ping = %+v", p)
	}
	po, ok := roundTrip(t, Pong{From: "node-b", Entries: 42}).(Pong)
	if !ok || po.From != "node-b" || po.Entries != 42 {
		t.Fatalf("pong = %+v", po)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("nil payload: %v", err)
	}
	if _, err := Decode([]byte{200}); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("unknown kind: %v", err)
	}
	// Truncated query.
	b, err := Encode(Query{Vec: feature.Vector{1, 2}, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(b); cut++ {
		if _, err := Decode(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage.
	if _, err := Decode(append(b, 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestEncodeLimits(t *testing.T) {
	big := make(feature.Vector, MaxVectorDim+1)
	if _, err := Encode(Query{Vec: big, K: 1}); err == nil {
		t.Fatal("oversized vector accepted")
	}
	longLabel := string(make([]byte, MaxLabelLen+1))
	if _, err := Encode(QueryResp{Label: longLabel}); err == nil {
		t.Fatal("oversized label accepted")
	}
}

func TestDecodeRejectsOversizedDeclaredVector(t *testing.T) {
	// Declared dim beyond the cap must be rejected before allocation.
	b := []byte{byte(KindQuery), 1, 0xFF, 0xFF}
	if _, err := Decode(b); err == nil {
		t.Fatal("oversized declared dim accepted")
	}
}

func TestEncodeUnknownType(t *testing.T) {
	type fake struct{ Message }
	if _, err := Encode(fake{}); err == nil {
		t.Fatal("unknown type accepted")
	}
}

// Property: all messages survive an encode/decode round trip bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vec := make(feature.Vector, r.Intn(64))
		for i := range vec {
			vec[i] = r.NormFloat64()
		}
		msgs := []Message{
			Query{Vec: vec, K: uint8(r.Intn(256))},
			QueryResp{
				Found:      r.Intn(2) == 0,
				Label:      labelFor(r),
				Confidence: r.Float64(),
				Distance:   math.Abs(r.NormFloat64()),
			},
			Gossip{
				Vec:        vec,
				Label:      labelFor(r),
				Confidence: r.Float64(),
				SavedCost:  time.Duration(r.Int63n(int64(time.Second))),
			},
			Ping{From: labelFor(r)},
			Pong{From: labelFor(r), Entries: r.Uint32()},
			Ack{},
		}
		for _, m := range msgs {
			b, err := Encode(m)
			if err != nil {
				return false
			}
			out, err := Decode(b)
			if err != nil {
				return false
			}
			switch in := m.(type) {
			case Query:
				o, ok := out.(Query)
				if !ok || o.K != in.K || !vecEqual(o.Vec, in.Vec) {
					return false
				}
			case QueryResp:
				if o, ok := out.(QueryResp); !ok || o != in {
					return false
				}
			case Gossip:
				o, ok := out.(Gossip)
				if !ok || o.Label != in.Label || o.Confidence != in.Confidence ||
					o.SavedCost != in.SavedCost || !vecEqual(o.Vec, in.Vec) {
					return false
				}
			case Ping:
				if o, ok := out.(Ping); !ok || o != in {
					return false
				}
			case Pong:
				if o, ok := out.(Pong); !ok || o != in {
					return false
				}
			case Ack:
				if _, ok := out.(Ack); !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode never panics on arbitrary bytes.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWireSizeHelpers(t *testing.T) {
	vec := make(feature.Vector, 80)
	b, err := Encode(Query{Vec: vec, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != QueryWireSize(80) {
		t.Fatalf("QueryWireSize = %d, actual %d", QueryWireSize(80), len(b))
	}
	g, err := Encode(Gossip{Vec: vec, Label: "class-12", Confidence: 1, SavedCost: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != GossipWireSize(80, len("class-12")) {
		t.Fatalf("GossipWireSize = %d, actual %d", GossipWireSize(80, 8), len(g))
	}
}

func labelFor(r *rand.Rand) string {
	const alphabet = "abcdefghij-0123456789"
	n := r.Intn(20)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(b)
}

func vecEqual(a, b feature.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			return false
		}
	}
	return true
}
