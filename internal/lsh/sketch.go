package lsh

import "math/bits"

// Packed binary sign sketches. Each resident vector carries a 64- or
// 128-bit SimHash sketch — the signs of projections onto a dedicated
// set of sketch hyperplanes — packed into a flat []uint64 arena
// parallel to the vector arena. A lookup computes the query's sketch
// once, then rejects candidates whose sketch differs by more than the
// configured Hamming threshold using XOR + popcount: branch-free
// integer work on 8–16 bytes per candidate, before any float math.
//
// Sketch hyperplanes are drawn from an RNG seeded by a fixed function
// of the index seed, AFTER the table hyperplanes, so adding a sketch
// never perturbs the table signatures and the same (seed, SketchBits)
// always yields the same sketches — the invariant that lets snapshot
// import simply recompute them.

// sketchSeedMix derives the sketch-plane RNG seed from the index seed.
// The constant is arbitrary but fixed: it is part of the index's
// identity, like the hyperplane draw order.
const sketchSeedMix = 0x536b6574 // "Sket"

// hamming returns the Hamming distance between two packed sketches of
// equal word count (1 or 2 words in practice).
func hamming(a, b []uint64) int {
	d := bits.OnesCount64(a[0] ^ b[0])
	if len(a) > 1 {
		d += bits.OnesCount64(a[1] ^ b[1])
	}
	return d
}

// slotSketch returns slot s's packed sketch as a view into the arena.
func (x *HyperplaneIndex) slotSketch(s int32) []uint64 {
	off := int(s) * x.sketchWords
	return x.sketch[off : off+x.sketchWords : off+x.sketchWords]
}

// sketchInto writes v's packed sign sketch into dst, which must have
// x.sketchWords words. Like signature(), the projections run four
// independent chains at a time with each chain summing dimensions in
// ascending order, so sketches are a bit-deterministic function of
// (seed, SketchBits, v).
func (x *HyperplaneIndex) sketchInto(v []float64, dst []uint64) {
	for w := range dst {
		dst[w] = 0
	}
	n := x.dim
	nbits := x.tun.SketchBits
	setBit := func(b int) {
		dst[b>>6] |= 1 << uint(b&63)
	}
	b := 0
	for ; b+4 <= nbits; b += 4 {
		off := b * n
		r0 := x.sketchPlanes[off : off+n : off+n]
		r1 := x.sketchPlanes[off+n : off+2*n : off+2*n][:len(r0)]
		r2 := x.sketchPlanes[off+2*n : off+3*n : off+3*n][:len(r0)]
		r3 := x.sketchPlanes[off+3*n : off+4*n : off+4*n][:len(r0)]
		vs := v[:len(r0)]
		var d0, d1, d2, d3 float64
		if x.center == nil {
			for d, p0 := range r0 {
				vv := vs[d]
				d0 += p0 * vv
				d1 += r1[d] * vv
				d2 += r2[d] * vv
				d3 += r3[d] * vv
			}
		} else {
			ct := x.center[:len(r0)]
			for d, p0 := range r0 {
				c := vs[d] - ct[d]
				d0 += p0 * c
				d1 += r1[d] * c
				d2 += r2[d] * c
				d3 += r3[d] * c
			}
		}
		if d0 >= 0 {
			setBit(b)
		}
		if d1 >= 0 {
			setBit(b + 1)
		}
		if d2 >= 0 {
			setBit(b + 2)
		}
		if d3 >= 0 {
			setBit(b + 3)
		}
	}
	for ; b < nbits; b++ {
		off := b * n
		row := x.sketchPlanes[off : off+n : off+n]
		var dot float64
		if x.center == nil {
			for d, p := range row {
				dot += p * v[d]
			}
		} else {
			for d, p := range row {
				dot += p * (v[d] - x.center[d])
			}
		}
		if dot >= 0 {
			setBit(b)
		}
	}
}
