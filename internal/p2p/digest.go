package p2p

import (
	"fmt"

	"approxcache/internal/feature"
)

// Digest is a compact summary of a peer's cache coverage: leader-
// clustered centroids of its cached feature vectors. A requester whose
// query is far from every centroid knows the peer cannot answer and
// skips the round trip — the scalability valve for large neighborhoods.
type Digest struct {
	// Centroids are cluster representatives of the peer's entries.
	Centroids []feature.Vector
}

// MaxDigestCentroids bounds a digest's size on the wire.
const MaxDigestCentroids = 16

// BuildDigest summarizes vectors by greedy leader clustering: scan the
// vectors, open a new cluster whenever none is within radius, and
// return the running means. It is order-dependent but cheap (one pass)
// and good enough for a coverage hint.
func BuildDigest(vecs []feature.Vector, radius float64, maxCentroids int) (Digest, error) {
	if radius <= 0 {
		return Digest{}, fmt.Errorf("p2p: digest radius must be positive, got %v", radius)
	}
	if maxCentroids <= 0 || maxCentroids > MaxDigestCentroids {
		return Digest{}, fmt.Errorf("p2p: digest centroids must be in [1,%d], got %d",
			MaxDigestCentroids, maxCentroids)
	}
	var clusters []*digestCluster
	for _, v := range vecs {
		if len(v) == 0 {
			continue
		}
		var best *digestCluster
		bestD := radius
		for _, c := range clusters {
			mean := c.mean()
			if d := feature.MustEuclidean(mean, v); d <= bestD {
				best, bestD = c, d
			}
		}
		if best != nil {
			for i := range v {
				best.sum[i] += v[i]
			}
			best.n++
			continue
		}
		if len(clusters) < maxCentroids {
			clusters = append(clusters, &digestCluster{sum: v.Clone(), n: 1})
		}
		// Past capacity, outliers are simply not represented: the
		// digest is a hint, and false "can't help" only costs a
		// missed peer hit, never correctness.
	}
	d := Digest{Centroids: make([]feature.Vector, 0, len(clusters))}
	for _, c := range clusters {
		d.Centroids = append(d.Centroids, c.mean())
	}
	return d, nil
}

// digestCluster is one running cluster during digest construction.
type digestCluster struct {
	sum feature.Vector
	n   int
}

func (c *digestCluster) mean() feature.Vector {
	out := c.sum.Clone()
	for i := range out {
		out[i] /= float64(c.n)
	}
	return out
}

// MayCover reports whether the digest suggests the peer could answer a
// query at vec within maxDistance: some centroid lies within
// maxDistance+slack (slack accounts for cluster radius). An empty
// digest covers nothing.
func (d Digest) MayCover(vec feature.Vector, maxDistance, slack float64) bool {
	for _, c := range d.Centroids {
		if feature.MustEuclidean(c, vec) <= maxDistance+slack {
			return true
		}
	}
	return false
}

// encodeDigest serializes the digest: uint8 count, then per centroid a
// uint16 dim and float64 components.
func encodeDigest(b []byte, d Digest) ([]byte, error) {
	if len(d.Centroids) > MaxDigestCentroids {
		return nil, fmt.Errorf("p2p: digest has %d centroids, max %d",
			len(d.Centroids), MaxDigestCentroids)
	}
	b = append(b, byte(len(d.Centroids)))
	for _, c := range d.Centroids {
		var err error
		b, err = appendVec(b, c)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

// decodeDigest parses a digest written by encodeDigest.
func decodeDigest(b []byte) (Digest, []byte, error) {
	if len(b) < 1 {
		return Digest{}, nil, ErrTruncated
	}
	n := int(b[0])
	b = b[1:]
	if n > MaxDigestCentroids {
		return Digest{}, nil, fmt.Errorf("p2p: digest declares %d centroids", n)
	}
	d := Digest{Centroids: make([]feature.Vector, 0, n)}
	for i := 0; i < n; i++ {
		var c feature.Vector
		var err error
		c, b, err = readVec(b)
		if err != nil {
			return Digest{}, nil, err
		}
		d.Centroids = append(d.Centroids, c)
	}
	return d, b, nil
}

// DigestReq asks a peer for its coverage digest.
type DigestReq struct{}

// MsgKind implements Message.
func (DigestReq) MsgKind() Kind { return KindDigestReq }

// DigestResp carries a peer's coverage digest.
type DigestResp struct {
	Digest Digest
}

// MsgKind implements Message.
func (DigestResp) MsgKind() Kind { return KindDigestResp }
