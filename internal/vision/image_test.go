package vision

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewImageZeroed(t *testing.T) {
	im := NewImage(4, 3)
	if im.W != 4 || im.H != 3 || len(im.Pix) != 12 {
		t.Fatalf("bad image shape: %dx%d len=%d", im.W, im.H, len(im.Pix))
	}
	for i, v := range im.Pix {
		if v != 0 {
			t.Fatalf("pixel %d = %v, want 0", i, v)
		}
	}
}

func TestAtSetBounds(t *testing.T) {
	im := NewImage(2, 2)
	im.Set(0, 0, 0.5)
	if im.At(0, 0) != 0.5 {
		t.Fatalf("At(0,0) = %v", im.At(0, 0))
	}
	// Out of bounds reads return 0; writes are ignored.
	if im.At(-1, 0) != 0 || im.At(0, 5) != 0 {
		t.Fatal("out-of-bounds read should be 0")
	}
	im.Set(-1, 0, 1)
	im.Set(5, 5, 1)
	for _, v := range im.Pix[1:] {
		if v != 0 {
			t.Fatal("out-of-bounds write mutated image")
		}
	}
}

func TestSetClamps(t *testing.T) {
	im := NewImage(1, 1)
	im.Set(0, 0, 2)
	if im.At(0, 0) != 1 {
		t.Fatalf("clamp high: %v", im.At(0, 0))
	}
	im.Set(0, 0, -3)
	if im.At(0, 0) != 0 {
		t.Fatalf("clamp low: %v", im.At(0, 0))
	}
}

func TestCloneIndependent(t *testing.T) {
	im := NewImage(2, 2)
	im.Set(1, 1, 0.7)
	c := im.Clone()
	c.Set(1, 1, 0.1)
	if im.At(1, 1) != 0.7 {
		t.Fatal("clone aliases original")
	}
}

func TestMeanAbsDiff(t *testing.T) {
	a := NewImage(2, 2)
	b := NewImage(2, 2)
	if d := MeanAbsDiff(a, b); d != 0 {
		t.Fatalf("identical diff = %v", d)
	}
	for i := range b.Pix {
		b.Pix[i] = 1
	}
	if d := MeanAbsDiff(a, b); d != 1 {
		t.Fatalf("max diff = %v, want 1", d)
	}
	if d := MeanAbsDiff(a, NewImage(3, 3)); d != 1 {
		t.Fatalf("size mismatch diff = %v, want 1", d)
	}
}

func TestNewClassSetValidation(t *testing.T) {
	if _, err := NewClassSet(0, 8, 8, 1); err == nil {
		t.Fatal("zero classes should error")
	}
	if _, err := NewClassSet(2, 0, 8, 1); err == nil {
		t.Fatal("zero width should error")
	}
	cs, err := NewClassSet(3, 16, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cs.NumClasses() != 3 {
		t.Fatalf("NumClasses = %d", cs.NumClasses())
	}
	w, h := cs.Size()
	if w != 16 || h != 16 {
		t.Fatalf("Size = %dx%d", w, h)
	}
}

func TestPrototypeRangeAndDeterminism(t *testing.T) {
	cs1, err := NewClassSet(2, 16, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	cs2, err := NewClassSet(2, 16, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs1.Prototype(-1); err == nil {
		t.Fatal("negative class should error")
	}
	if _, err := cs1.Prototype(2); err == nil {
		t.Fatal("out-of-range class should error")
	}
	p1, err := cs1.Prototype(1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := cs2.Prototype(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Pix {
		if p1.Pix[i] != p2.Pix[i] {
			t.Fatal("same seed produced different prototypes")
		}
	}
}

func TestPrototypesDistinct(t *testing.T) {
	cs, err := NewClassSet(4, 32, 32, 9)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			pa, _ := cs.Prototype(a)
			pb, _ := cs.Prototype(b)
			if MeanAbsDiff(pa, pb) < 0.05 {
				t.Fatalf("prototypes %d and %d nearly identical", a, b)
			}
		}
	}
}

func TestRenderZeroPerturbationEqualsPrototype(t *testing.T) {
	cs, err := NewClassSet(2, 16, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	im, err := cs.Render(0, Perturbation{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	proto, _ := cs.Prototype(0)
	if MeanAbsDiff(im, proto) != 0 {
		t.Fatal("zero perturbation should render the prototype exactly")
	}
}

func TestRenderInvalidClass(t *testing.T) {
	cs, err := NewClassSet(2, 16, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Render(7, Perturbation{}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid class should error")
	}
}

func TestRenderStaysCloseToPrototype(t *testing.T) {
	cs, err := NewClassSet(4, 48, 48, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for c := 0; c < 4; c++ {
		proto, _ := cs.Prototype(c)
		for i := 0; i < 5; i++ {
			im, err := cs.Render(c, DefaultPerturbation(), rng)
			if err != nil {
				t.Fatal(err)
			}
			own := MeanAbsDiff(im, proto)
			for other := 0; other < 4; other++ {
				if other == c {
					continue
				}
				po, _ := cs.Prototype(other)
				if MeanAbsDiff(im, po) <= own {
					t.Fatalf("render of class %d closer to prototype %d", c, other)
				}
			}
		}
	}
}

// Property: every rendered pixel stays in [0,1] under arbitrary
// perturbation profiles.
func TestRenderPixelRangeProperty(t *testing.T) {
	cs, err := NewClassSet(2, 24, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, noise, bright float64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Perturbation{
			Noise:         math.Abs(noise) / 4,
			MaxBrightness: math.Abs(bright) / 4,
			MaxShift:      rng.Intn(6),
			OcclusionProb: rng.Float64(),
		}
		im, err := cs.Render(rng.Intn(2), p, rng)
		if err != nil {
			return false
		}
		for _, v := range im.Pix {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHardPerturbationMoreDistortion(t *testing.T) {
	cs, err := NewClassSet(1, 48, 48, 13)
	if err != nil {
		t.Fatal(err)
	}
	proto, _ := cs.Prototype(0)
	rngA := rand.New(rand.NewSource(4))
	rngB := rand.New(rand.NewSource(4))
	var easy, hard float64
	const n = 10
	for i := 0; i < n; i++ {
		e, err := cs.Render(0, DefaultPerturbation(), rngA)
		if err != nil {
			t.Fatal(err)
		}
		h, err := cs.Render(0, HardPerturbation(), rngB)
		if err != nil {
			t.Fatal(err)
		}
		easy += MeanAbsDiff(e, proto)
		hard += MeanAbsDiff(h, proto)
	}
	if hard <= easy {
		t.Fatalf("hard perturbation (%v) not harder than default (%v)", hard/n, easy/n)
	}
}
