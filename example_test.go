package approxcache_test

import (
	"fmt"
	"time"

	"approxcache"
)

// Example demonstrates the complete flow: generate a workload, front a
// simulated classifier with the approximate cache, replay the trace on
// a virtual clock, and read the session statistics. Output is
// deterministic because every component is seeded.
func Example() {
	spec := approxcache.StationaryHeavyWorkload(300, 7)
	workload, err := approxcache.GenerateWorkload(spec)
	if err != nil {
		fmt.Println("workload:", err)
		return
	}
	classifier, err := approxcache.NewSimulatedClassifier(approxcache.MobileNetV2, workload, 7)
	if err != nil {
		fmt.Println("classifier:", err)
		return
	}
	cache, err := approxcache.New(classifier, approxcache.Options{
		Clock: approxcache.NewVirtualClock(),
	})
	if err != nil {
		fmt.Println("cache:", err)
		return
	}
	prev := time.Duration(0)
	for _, frame := range workload.Frames {
		win := workload.IMUWindow(prev, frame.Offset)
		prev = frame.Offset
		if _, err := cache.ProcessWithTruth(frame.Image, win, approxcache.LabelOf(frame.Class)); err != nil {
			fmt.Println("process:", err)
			return
		}
	}
	stats := cache.Stats()
	fmt.Printf("frames=%d hit-rate=%.0f%% reduction=%.0f%%\n",
		stats.Frames(),
		stats.HitRate()*100,
		(1-float64(stats.Latency().Mean())/float64(approxcache.MobileNetV2.MeanLatency))*100)
	// Output:
	// frames=300 hit-rate=95% reduction=94%
}
