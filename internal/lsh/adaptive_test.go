package lsh

import (
	"math/rand"
	"testing"

	"approxcache/internal/feature"
)

// positiveOrthantVec mimics image descriptors: every component
// non-negative, unit norm. Uncentered hyperplanes see these as heavily
// sign-correlated.
func positiveOrthantVec(r *rand.Rand, dim int) feature.Vector {
	v := make(feature.Vector, dim)
	for i := range v {
		v[i] = r.Float64()
	}
	v.Normalize()
	return v
}

func TestAdaptiveConfigValidate(t *testing.T) {
	if err := DefaultAdaptiveConfig(16).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []AdaptiveConfig{
		{Dim: 0, Bits: 8, Tables: 2, CheckEvery: 8, SkewThreshold: 0.5},
		{Dim: 8, Bits: 0, Tables: 2, CheckEvery: 8, SkewThreshold: 0.5},
		{Dim: 8, Bits: 8, Tables: 0, CheckEvery: 8, SkewThreshold: 0.5},
		{Dim: 8, Bits: 8, Tables: 2, CheckEvery: 0, SkewThreshold: 0.5},
		{Dim: 8, Bits: 8, Tables: 2, CheckEvery: 8, SkewThreshold: 0},
		{Dim: 8, Bits: 8, Tables: 2, CheckEvery: 8, SkewThreshold: 1.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewAdaptive(AdaptiveConfig{}); err == nil {
		t.Fatal("NewAdaptive accepted bad config")
	}
}

func TestCenteredIndexValidation(t *testing.T) {
	if _, err := NewHyperplaneCentered(4, 8, 2, 1, feature.Vector{1, 2}); err == nil {
		t.Fatal("center dim mismatch accepted")
	}
	x, err := NewHyperplaneCentered(2, 8, 2, 1, feature.Vector{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Insert(1, feature.Vector{1, 0}); err != nil {
		t.Fatal(err)
	}
	ns, err := x.Nearest(feature.Vector{1, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || ns[0].Distance > 1e-9 {
		t.Fatalf("centered index lost identical vector: %+v", ns)
	}
}

func TestCenteringSpreadsPositiveOrthantData(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const dim, n = 32, 400
	vecs := make([]feature.Vector, n)
	center := make(feature.Vector, dim)
	for i := range vecs {
		vecs[i] = positiveOrthantVec(r, dim)
		for d := range center {
			center[d] += vecs[i][d]
		}
	}
	for d := range center {
		center[d] /= n
	}
	plain, err := NewHyperplane(dim, 10, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	centered, err := NewHyperplaneCentered(dim, 10, 2, 5, center)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vecs {
		if err := plain.Insert(ID(i), v); err != nil {
			t.Fatal(err)
		}
		if err := centered.Insert(ID(i), v); err != nil {
			t.Fatal(err)
		}
	}
	ps, cs := plain.Stats(), centered.Stats()
	if cs.MaxBucket >= ps.MaxBucket {
		t.Fatalf("centering did not reduce skew: plain max=%d centered max=%d",
			ps.MaxBucket, cs.MaxBucket)
	}
	if cs.Buckets <= ps.Buckets {
		t.Fatalf("centering did not use more buckets: plain=%d centered=%d",
			ps.Buckets, cs.Buckets)
	}
}

func TestAdaptiveRebuildsOnSkew(t *testing.T) {
	cfg := AdaptiveConfig{
		Dim: 32, Bits: 10, Tables: 2, Seed: 7,
		CheckEvery: 32, SkewThreshold: 0.3,
	}
	a, err := NewAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	vecs := make([]feature.Vector, 400)
	for i := range vecs {
		vecs[i] = positiveOrthantVec(r, 32)
		if err := a.Insert(ID(i), vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if a.Rebuilds() == 0 {
		t.Fatalf("skewed positive-orthant data never triggered a rebuild (stats %+v)", a.Stats())
	}
	if a.Len() != 400 {
		t.Fatalf("rebuild lost items: %d", a.Len())
	}
	// Post-rebuild skew is bounded.
	st := a.Stats()
	if float64(st.MaxBucket) > 0.6*float64(st.Items) {
		t.Fatalf("still skewed after rebuild: %+v", st)
	}
	// Indexed vectors always collide with themselves post-rebuild.
	for i := 0; i < len(vecs); i += 41 {
		ns, err := a.Nearest(vecs[i], 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(ns) == 0 || ns[0].ID != ID(i) || ns[0].Distance > 1e-9 {
			t.Fatalf("vector %d lost after rebuild: %+v", i, ns)
		}
	}
}

func TestAdaptiveNoRebuildOnBalancedData(t *testing.T) {
	cfg := AdaptiveConfig{
		Dim: 32, Bits: 10, Tables: 2, Seed: 7,
		CheckEvery: 32, SkewThreshold: 0.3,
	}
	a, err := NewAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		if err := a.Insert(ID(i), randUnit(r, 32)); err != nil { // zero-mean data
			t.Fatal(err)
		}
	}
	if a.Rebuilds() != 0 {
		t.Fatalf("balanced data triggered %d rebuilds", a.Rebuilds())
	}
}

func TestAdaptiveFindsIdenticalAfterRebuild(t *testing.T) {
	cfg := AdaptiveConfig{
		Dim: 16, Bits: 8, Tables: 3, Seed: 2,
		CheckEvery: 16, SkewThreshold: 0.3,
	}
	a, err := NewAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(13))
	vecs := make([]feature.Vector, 200)
	for i := range vecs {
		vecs[i] = positiveOrthantVec(r, 16)
		if err := a.Insert(ID(i), vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range vecs {
		ns, err := a.Nearest(v, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(ns) == 0 || ns[0].ID != ID(i) || ns[0].Distance > 1e-9 {
			t.Fatalf("vector %d lost after adaptation: %+v", i, ns)
		}
	}
}

func TestAdaptiveRemove(t *testing.T) {
	a, err := NewAdaptive(DefaultAdaptiveConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(17))
	v := positiveOrthantVec(r, 8)
	if err := a.Insert(1, v); err != nil {
		t.Fatal(err)
	}
	a.Remove(1)
	if a.Len() != 0 {
		t.Fatalf("len = %d", a.Len())
	}
	cands, err := a.Candidates(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Fatal("removed id still a candidate")
	}
}
