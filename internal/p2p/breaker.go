package p2p

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"approxcache/internal/simclock"
)

// BreakerState is one peer's circuit state.
type BreakerState int

// Circuit states.
const (
	// StateClosed admits traffic normally.
	StateClosed BreakerState = iota
	// StateOpen rejects traffic until a backoff elapses.
	StateOpen
	// StateHalfOpen admits a single probe to test recovery.
	StateHalfOpen
)

// String returns the state name.
func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// BreakerConfig tunes the per-peer circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip the
	// circuit open. Zero selects the default (3).
	FailureThreshold int
	// BaseBackoff is the first open interval. Zero selects the default
	// (250 ms). Each re-trip from half-open doubles the interval.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling. Zero selects the default (10 s).
	MaxBackoff time.Duration
	// JitterFrac randomizes each backoff by ±JitterFrac so a fleet of
	// devices does not re-probe a healed peer in lockstep. Zero selects
	// the default (0.2); negative disables jitter.
	JitterFrac float64
	// Seed drives the (deterministic) jitter. Zero selects 1.
	Seed int64
	// Disabled turns the breaker off: every peer always reads closed.
	// Used by the chaos experiment's unguarded baseline.
	Disabled bool
}

// Validate reports whether the configuration is usable.
func (c BreakerConfig) Validate() error {
	if c.FailureThreshold < 0 {
		return fmt.Errorf("p2p: breaker FailureThreshold must be non-negative, got %d", c.FailureThreshold)
	}
	if c.BaseBackoff < 0 || c.MaxBackoff < 0 {
		return fmt.Errorf("p2p: breaker backoffs must be non-negative (%v, %v)", c.BaseBackoff, c.MaxBackoff)
	}
	if c.JitterFrac > 1 {
		return fmt.Errorf("p2p: breaker JitterFrac must be at most 1, got %v", c.JitterFrac)
	}
	return nil
}

// DefaultBreakerConfig returns the standard tripping policy: 3
// consecutive failures open the circuit for 250 ms, doubling up to 10 s
// with ±20% jitter.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		FailureThreshold: 3,
		BaseBackoff:      250 * time.Millisecond,
		MaxBackoff:       10 * time.Second,
		JitterFrac:       0.2,
		Seed:             1,
	}
}

// withDefaults fills zero fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	def := DefaultBreakerConfig()
	if c.FailureThreshold == 0 {
		c.FailureThreshold = def.FailureThreshold
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = def.BaseBackoff
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = def.MaxBackoff
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = def.JitterFrac
	}
	if c.Seed == 0 {
		c.Seed = def.Seed
	}
	return c
}

// breakerEntry is one peer's circuit.
type breakerEntry struct {
	state     BreakerState
	fails     int           // consecutive failures while closed
	backoff   time.Duration // current open interval
	openUntil time.Time
	probing   bool // a half-open probe is in flight
}

// Breaker is a set of per-peer circuit breakers driven by an injected
// clock (virtual in experiments, wall in live use). A peer trips open
// after FailureThreshold consecutive failures; once its backoff
// elapses, the next Allow admits exactly one half-open probe. A probe
// success closes the circuit; a probe failure re-opens it with doubled
// backoff. Breaker is safe for concurrent use.
type Breaker struct {
	cfg   BreakerConfig
	clock simclock.Clock

	mu         sync.Mutex
	rng        *rand.Rand
	peers      map[string]*breakerEntry
	trips      int
	recoveries int
}

// NewBreaker builds a breaker on clock (nil selects the wall clock).
func NewBreaker(cfg BreakerConfig, clock simclock.Clock) (*Breaker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Breaker{
		cfg:   cfg,
		clock: clock,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		peers: make(map[string]*breakerEntry),
	}, nil
}

// entry returns (creating if needed) peer's circuit. Caller holds b.mu.
func (b *Breaker) entry(peer string) *breakerEntry {
	e := b.peers[peer]
	if e == nil {
		e = &breakerEntry{backoff: b.cfg.BaseBackoff}
		b.peers[peer] = e
	}
	return e
}

// Allow reports whether an exchange with peer may proceed now. An open
// circuit whose backoff has elapsed transitions to half-open and admits
// this one call as the probe; further calls are rejected until the
// probe resolves via OnSuccess/OnFailure.
func (b *Breaker) Allow(peer string) bool {
	if b.cfg.Disabled {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(peer)
	switch e.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.clock.Now().Before(e.openUntil) {
			return false
		}
		e.state = StateHalfOpen
		e.probing = true
		return true
	default: // StateHalfOpen
		if e.probing {
			return false
		}
		e.probing = true
		return true
	}
}

// OnSuccess records a successful exchange with peer. Any non-closed
// circuit closes (a recovery), whatever state it was in: evidence the
// peer answered beats the backoff schedule.
func (b *Breaker) OnSuccess(peer string) (recovered bool) {
	if b.cfg.Disabled {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(peer)
	recovered = e.state != StateClosed
	e.state = StateClosed
	e.fails = 0
	e.probing = false
	e.backoff = b.cfg.BaseBackoff
	if recovered {
		b.recoveries++
	}
	return recovered
}

// OnFailure records a failed exchange with peer and reports whether it
// tripped the circuit open (from closed) or re-opened it (a failed
// half-open probe).
func (b *Breaker) OnFailure(peer string) (tripped bool) {
	if b.cfg.Disabled {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(peer)
	switch e.state {
	case StateClosed:
		e.fails++
		if e.fails < b.cfg.FailureThreshold {
			return false
		}
		b.openLocked(e, b.cfg.BaseBackoff)
		return true
	case StateHalfOpen:
		// The probe failed: re-open with doubled backoff.
		next := e.backoff * 2
		if next > b.cfg.MaxBackoff {
			next = b.cfg.MaxBackoff
		}
		b.openLocked(e, next)
		return true
	default: // StateOpen: a straggler failure; no state change.
		return false
	}
}

// openLocked trips e open for backoff (± jitter). Caller holds b.mu.
func (b *Breaker) openLocked(e *breakerEntry, backoff time.Duration) {
	e.state = StateOpen
	e.fails = 0
	e.probing = false
	e.backoff = backoff
	d := backoff
	if b.cfg.JitterFrac > 0 {
		f := 1 + b.cfg.JitterFrac*(2*b.rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	e.openUntil = b.clock.Now().Add(d)
	b.trips++
}

// State returns peer's current circuit state (closed if never seen).
// An open circuit whose backoff has elapsed reads as half-open.
func (b *Breaker) State(peer string) BreakerState {
	if b.cfg.Disabled {
		return StateClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.peers[peer]
	if !ok {
		return StateClosed
	}
	if e.state == StateOpen && !b.clock.Now().Before(e.openUntil) {
		return StateHalfOpen
	}
	return e.state
}

// Open returns the peers whose circuits are currently open (still
// inside backoff), sorted by name.
func (b *Breaker) Open() []string {
	if b.cfg.Disabled {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.clock.Now()
	var out []string
	for name, e := range b.peers {
		if e.state == StateOpen && now.Before(e.openUntil) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Counts returns how many times circuits tripped open and recovered.
func (b *Breaker) Counts() (trips, recoveries int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips, b.recoveries
}

// Forget drops all circuit state for peer.
func (b *Breaker) Forget(peer string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.peers, peer)
}
