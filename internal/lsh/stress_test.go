package lsh

import (
	"math/rand"
	"sync"
	"testing"
)

// stressIndex hammers idx with concurrent inserts, removes, and lookups.
// Run under -race (make check does) this validates the RWMutex split,
// the pooled query scratch, and arena slot reuse.
func stressIndex(t *testing.T, idx Index, dim int) {
	t.Helper()
	const (
		writers = 4
		readers = 4
		ops     = 300
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < ops; i++ {
				id := ID(w*ops + rng.Intn(ops))
				if rng.Float64() < 0.7 {
					if err := idx.Insert(id, randVec(rng, dim)); err != nil {
						t.Error(err)
						return
					}
				} else {
					idx.Remove(id)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			dst := make([]Neighbor, 0, 8)
			ii, hasInto := idx.(IntoIndex)
			for i := 0; i < ops; i++ {
				q := randVec(rng, dim)
				k := 1 + rng.Intn(8)
				var ns []Neighbor
				var err error
				if hasInto && i%2 == 0 {
					ns, err = ii.NearestInto(q, k, dst)
					if err == nil {
						dst = ns[:0]
					}
				} else {
					ns, err = idx.Nearest(q, k)
				}
				if err != nil {
					t.Error(err)
					return
				}
				if len(ns) > k {
					t.Errorf("got %d neighbors for k=%d", len(ns), k)
					return
				}
				for j := 1; j < len(ns); j++ {
					if neighborWorse(ns[j-1], ns[j]) {
						t.Errorf("neighbors out of order: %+v", ns)
						return
					}
				}
				idx.Len()
			}
		}(r)
	}
	wg.Wait()
}

func TestHyperplaneConcurrentStress(t *testing.T) {
	idx, err := NewHyperplane(8, 6, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	stressIndex(t, idx, 8)
}

func TestHyperplaneTunedConcurrentStress(t *testing.T) {
	// The full tuned pipeline — multi-probe walks, sketch arena reads,
	// quantized scoring — racing writers that grow and recycle the very
	// arenas the readers walk.
	tun := DefaultTuning()
	tun.Probes = 4
	idx, err := NewHyperplaneTuned(8, 6, 3, 42, tun)
	if err != nil {
		t.Fatal(err)
	}
	stressIndex(t, idx, 8)
}

func TestExactConcurrentStress(t *testing.T) {
	idx, err := NewExact(8)
	if err != nil {
		t.Fatal(err)
	}
	stressIndex(t, idx, 8)
}

func TestAdaptiveConcurrentStress(t *testing.T) {
	idx, err := NewAdaptive(AdaptiveConfig{
		Dim: 8, Bits: 6, Tables: 3, Seed: 42,
		CheckEvery: 64, SkewThreshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	stressIndex(t, idx, 8)
}

// TestBucketShrinkAfterChurn verifies that removals both clear the
// swapped-from tail slot and hand grossly over-capacity buckets back to
// the allocator instead of pinning their high-water backing arrays.
func TestBucketShrinkAfterChurn(t *testing.T) {
	// One bit and one table funnels everything into at most two buckets,
	// so they grow large before the churn.
	idx, err := NewHyperplane(4, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	const n = 1024
	for i := 0; i < n; i++ {
		if err := idx.Insert(ID(i), randVec(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n-8; i++ {
		idx.Remove(ID(i))
	}
	arenaLen := func() int {
		idx.wmu.Lock()
		defer idx.wmu.Unlock()
		// The shrink invariant must hold on BOTH left-right sides: the
		// retired side receives every mutation after the grace period.
		for si := range idx.sides {
			for t0, table := range idx.sides[si] {
				for sig, bucket := range table {
					if len(bucket) == 0 {
						t.Errorf("side %d table %d sig %x: empty bucket retained", si, t0, sig)
					}
					if cap(bucket) >= bucketShrinkMin && cap(bucket) >= 4*len(bucket) {
						t.Errorf("side %d table %d sig %x: bucket len %d cap %d not shrunk",
							si, t0, sig, len(bucket), cap(bucket))
					}
				}
			}
		}
		return len(idx.arena)
	}()
	// Freed slots must be recycled: re-inserting the same population
	// cannot grow the arena beyond its high-water mark.
	for i := 0; i < n-8; i++ {
		if err := idx.Insert(ID(i), randVec(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	idx.wmu.Lock()
	defer idx.wmu.Unlock()
	if len(idx.arena) > arenaLen {
		t.Errorf("arena grew past high-water mark: %d floats, was %d", len(idx.arena), arenaLen)
	}
}
