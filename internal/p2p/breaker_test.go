package p2p

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"approxcache/internal/simclock"
	"approxcache/internal/simnet"
)

func newTestBreaker(t *testing.T, clock simclock.Clock) *Breaker {
	t.Helper()
	b, err := NewBreaker(BreakerConfig{JitterFrac: -1}, clock)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	b := newTestBreaker(t, clock)

	if !b.Allow("p") {
		t.Fatal("fresh peer not allowed")
	}
	if b.OnFailure("p") {
		t.Fatal("tripped on first failure")
	}
	if b.OnFailure("p") {
		t.Fatal("tripped on second failure")
	}
	if !b.OnFailure("p") {
		t.Fatal("did not trip on third failure")
	}
	if b.Allow("p") {
		t.Fatal("open circuit allowed traffic")
	}
	if got := b.State("p"); got != StateOpen {
		t.Fatalf("state = %v, want open", got)
	}
	trips, recoveries := b.Counts()
	if trips != 1 || recoveries != 0 {
		t.Fatalf("counts = (%d,%d), want (1,0)", trips, recoveries)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	b := newTestBreaker(t, clock)
	b.OnFailure("p")
	b.OnFailure("p")
	b.OnSuccess("p")
	if b.OnFailure("p") || b.OnFailure("p") {
		t.Fatal("tripped before threshold after a reset")
	}
	if got := b.State("p"); got != StateClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

func TestBreakerHalfOpenProbeAndRecovery(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	b := newTestBreaker(t, clock)
	for i := 0; i < 3; i++ {
		b.OnFailure("p")
	}
	if b.Allow("p") {
		t.Fatal("open circuit allowed before backoff")
	}
	clock.Advance(251 * time.Millisecond)
	if got := b.State("p"); got != StateHalfOpen {
		t.Fatalf("state after backoff = %v, want half-open", got)
	}
	if !b.Allow("p") {
		t.Fatal("half-open did not admit a probe")
	}
	if b.Allow("p") {
		t.Fatal("second concurrent probe admitted")
	}
	if !b.OnSuccess("p") {
		t.Fatal("probe success did not count as recovery")
	}
	if got := b.State("p"); got != StateClosed {
		t.Fatalf("state after recovery = %v, want closed", got)
	}
	_, recoveries := b.Counts()
	if recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", recoveries)
	}
}

func TestBreakerFailedProbeDoublesBackoff(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	b := newTestBreaker(t, clock)
	for i := 0; i < 3; i++ {
		b.OnFailure("p")
	}
	clock.Advance(251 * time.Millisecond)
	if !b.Allow("p") {
		t.Fatal("no probe admitted")
	}
	if !b.OnFailure("p") {
		t.Fatal("failed probe did not re-trip")
	}
	// Backoff doubled to 500 ms: after 251 ms it is still open...
	clock.Advance(251 * time.Millisecond)
	if b.Allow("p") {
		t.Fatal("re-opened circuit allowed before doubled backoff")
	}
	// ...but after the full 500 ms a probe is admitted again.
	clock.Advance(250 * time.Millisecond)
	if !b.Allow("p") {
		t.Fatal("no probe after doubled backoff")
	}
}

func TestBreakerBackoffCapped(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	b, err := NewBreaker(BreakerConfig{
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  200 * time.Millisecond,
		JitterFrac:  -1,
	}, clock)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		b.OnFailure("p")
	}
	// Fail many probes; backoff must never exceed MaxBackoff.
	for i := 0; i < 6; i++ {
		clock.Advance(201 * time.Millisecond)
		if !b.Allow("p") {
			t.Fatalf("probe %d not admitted within MaxBackoff", i)
		}
		b.OnFailure("p")
	}
}

func TestBreakerOpenListsTrippedPeers(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	b := newTestBreaker(t, clock)
	for i := 0; i < 3; i++ {
		b.OnFailure("b")
		b.OnFailure("a")
	}
	b.OnSuccess("c")
	open := b.Open()
	if len(open) != 2 || open[0] != "a" || open[1] != "b" {
		t.Fatalf("open = %v, want [a b]", open)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b, err := NewBreaker(BreakerConfig{Disabled: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if b.OnFailure("p") {
			t.Fatal("disabled breaker tripped")
		}
	}
	if !b.Allow("p") || b.State("p") != StateClosed {
		t.Fatal("disabled breaker blocked traffic")
	}
}

func TestBreakerJitterStaysInBounds(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	b, err := NewBreaker(BreakerConfig{
		BaseBackoff: 100 * time.Millisecond,
		JitterFrac:  0.2,
		Seed:        7,
	}, clock)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		b.OnFailure("p")
	}
	// Open interval is within [80ms, 120ms]: definitely open at 79 ms,
	// definitely probing at 121 ms.
	clock.Advance(79 * time.Millisecond)
	if b.Allow("p") {
		t.Fatal("allowed below jitter lower bound")
	}
	clock.Advance(42 * time.Millisecond)
	if !b.Allow("p") {
		t.Fatal("not allowed past jitter upper bound")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want ErrClass
	}{
		{nil, ErrClassNone},
		{simnet.ErrLost, ErrClassLost},
		{fmt.Errorf("wrap: %w", simnet.ErrPartitioned), ErrClassUnreachable},
		{fmt.Errorf("wrap: %w", simnet.ErrCrashed), ErrClassUnreachable},
		{fmt.Errorf("wrap: %w", simnet.ErrUnknownNode), ErrClassUnreachable},
		{fmt.Errorf("budget: %w", ErrBudgetExceeded), ErrClassTimeout},
		{os.ErrDeadlineExceeded, ErrClassTimeout},
		{ErrTruncated, ErrClassBadResponse},
		{fmt.Errorf("decode: %w", ErrUnknownKind), ErrClassBadResponse},
		{errors.New("anything else"), ErrClassOther},
	}
	for i, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("case %d: Classify(%v) = %v, want %v", i, c.err, got, c.want)
		}
	}
}
