module approxcache

go 1.22
