package eval

import (
	"strings"
	"testing"
	"time"
)

func TestOverloadDefaults(t *testing.T) {
	var cfg OverloadConfig
	cfg.defaults()
	if cfg.Sessions != 8 || len(cfg.Loads) != 4 || cfg.Loads[3] != 4 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.Deadline != 80*time.Millisecond || cfg.Window != 700*time.Millisecond {
		t.Fatalf("defaults = %+v", cfg)
	}
	if !cfg.Admission.Enabled {
		t.Fatal("defaults left admission disabled")
	}
	if cfg.Batcher.MaxBatch != 4 {
		t.Fatalf("batcher defaults = %+v", cfg.Batcher)
	}
}

func TestOverloadUnknownMode(t *testing.T) {
	var cfg OverloadConfig
	cfg.defaults()
	if _, err := buildOverloadNode(cfg, "warp-drive", nil); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestDurPctMS(t *testing.T) {
	if got := durPctMS(nil, 99); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	sorted := []time.Duration{time.Millisecond, 2 * time.Millisecond, 10 * time.Millisecond}
	if got := durPctMS(sorted, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := durPctMS(sorted, 100); got != 10 {
		t.Fatalf("p100 = %v", got)
	}
}

// TestE21Small runs the registered experiment at small scale. Like
// E20, it sleeps real accelerator occupancy and offers real wall-clock
// load, so it is skipped under -short.
func TestE21Small(t *testing.T) {
	if testing.Short() {
		t.Skip("E21 offers real wall-clock load")
	}
	rep, err := E21Overload(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 4; len(rep.Rows) != want {
		t.Fatalf("%d rows, want %d", len(rep.Rows), want)
	}
	var foundRetention bool
	for _, n := range rep.Notes {
		if strings.Contains(n, "retention") {
			foundRetention = true
		}
	}
	if !foundRetention {
		t.Fatalf("notes missing retention: %v", rep.Notes)
	}
	for _, row := range rep.Rows {
		if row[0] != OverloadResilient && row[0] != OverloadUnprotected {
			t.Fatalf("unknown mode in row: %v", row)
		}
	}
}
