package metrics

// Serving-scale counters: per-shard occupancy/contention for the
// sharded cache store and aggregate micro-batcher statistics. Both are
// plain value snapshots — the live counters stay inside their owners
// (cachestore.ShardedStore, dnn.Batcher) and are copied out here for
// reporting, so the metrics package never holds locks on the hot path.

// ShardStat is one shard's occupancy and contention snapshot.
type ShardStat struct {
	// Shard is the shard number in [0, shards).
	Shard int
	// Entries is the shard's live entry count.
	Entries int
	// Lookups and Inserts count operations routed to this shard.
	Lookups int64
	Inserts int64
	// Contended counts operations that began while another operation
	// was already in flight on the same shard — an approximation of
	// how often the old single-mutex design would have blocked.
	Contended int64
}

// BatcherStats summarizes a micro-batching scheduler's behavior.
type BatcherStats struct {
	// Batches is the number of batches dispatched.
	Batches int64
	// Frames is the total frames classified through the batcher.
	Frames int64
	// SizeSum sums dispatched batch sizes (AvgSize = SizeSum/Batches).
	SizeSum int64
	// FullFlushes counts batches dispatched because they reached
	// MaxBatch; DeadlineFlushes counts batches dispatched by the
	// MaxWait timer with spare capacity left.
	FullFlushes     int64
	DeadlineFlushes int64
	// ExpiredDrops counts frames stale-dropped because their request
	// deadline passed before the accelerator saw them (on arrival or at
	// dispatch time).
	ExpiredDrops int64
	// Overflows counts frames refused because the bounded pending queue
	// was full.
	Overflows int64
}

// AvgSize returns the mean dispatched batch size, or 0 before any
// batch has been dispatched.
func (b BatcherStats) AvgSize() float64 {
	if b.Batches == 0 {
		return 0
	}
	return float64(b.SizeSum) / float64(b.Batches)
}
