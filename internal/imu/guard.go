package imu

import (
	"fmt"
	"math"
	"time"
)

// WindowFault classifies what is wrong with an IMU sample window. The
// motion gate trusts window statistics to decide "the device has not
// moved"; a malformed window can fake exactly that (a stuck sensor has
// zero variance, a saturated one a constant magnitude), so the pipeline
// checks every window before feeding the detector and routes faulty
// ones past the inertial gate instead.
type WindowFault int

// Window fault classes, ordered roughly by severity.
const (
	// WindowOK: the window is usable.
	WindowOK WindowFault = iota
	// WindowNonFinite: a sample carries NaN or ±Inf readings — corrupt
	// sensor data that would poison every statistic downstream.
	WindowNonFinite
	// WindowNonMonotonic: sample timestamps go backwards.
	WindowNonMonotonic
	// WindowDropout: a gap between consecutive samples exceeds the
	// configured maximum — the sensor stream stalled mid-window.
	WindowDropout
	// WindowStuck: an axis repeats the exact same reading for too many
	// consecutive samples — a frozen sensor reports zero variance and
	// fakes "stationary".
	WindowStuck
	// WindowSaturated: readings sit at or beyond the sensor's physical
	// range — clipped data understates motion.
	WindowSaturated
	// WindowClockSkew: the window spans an implausibly long interval or
	// starts with a negative offset — the sensor clock and the frame
	// clock disagree.
	WindowClockSkew
)

// String returns the fault name.
func (f WindowFault) String() string {
	switch f {
	case WindowOK:
		return "ok"
	case WindowNonFinite:
		return "non-finite"
	case WindowNonMonotonic:
		return "non-monotonic"
	case WindowDropout:
		return "dropout"
	case WindowStuck:
		return "stuck"
	case WindowSaturated:
		return "saturated"
	case WindowClockSkew:
		return "clock-skew"
	default:
		return fmt.Sprintf("WindowFault(%d)", int(f))
	}
}

// GuardConfig tunes the IMU window guard.
type GuardConfig struct {
	// MaxGap is the largest tolerated interval between consecutive
	// samples before the window counts as a dropout. Zero disables the
	// check.
	MaxGap time.Duration
	// MaxAccel is the accelerometer's plausible per-axis range, m/s².
	// Readings at or beyond it count as saturated. Zero disables.
	MaxAccel float64
	// MaxGyro is the gyroscope's plausible per-axis range, rad/s.
	// Readings at or beyond it count as saturated. Zero disables.
	MaxGyro float64
	// StuckRun is how many consecutive bit-identical readings on one
	// axis flag a frozen sensor. Zero disables the check.
	StuckRun int
	// MaxSpan is the longest plausible window duration; a window
	// spanning more (or starting at a negative offset) indicates clock
	// skew between the sensor and frame timelines. Zero disables.
	MaxSpan time.Duration
}

// DefaultGuardConfig returns thresholds sized to smartphone IMU
// hardware: 50–200 Hz streams (a 100 ms gap is ≥ 5 missed samples),
// ±8 g accelerometers, ±2000 °/s gyroscopes.
func DefaultGuardConfig() GuardConfig {
	return GuardConfig{
		MaxGap:   100 * time.Millisecond,
		MaxAccel: 78.5, // ±8 g
		MaxGyro:  34.9, // ±2000 °/s
		StuckRun: 25,
		MaxSpan:  10 * time.Second,
	}
}

// Validate reports whether the configuration is usable.
func (c GuardConfig) Validate() error {
	if c.MaxGap < 0 {
		return fmt.Errorf("imu: guard MaxGap must be non-negative, got %v", c.MaxGap)
	}
	if c.MaxAccel < 0 || c.MaxGyro < 0 {
		return fmt.Errorf("imu: guard sensor ranges must be non-negative")
	}
	if c.StuckRun < 0 {
		return fmt.Errorf("imu: guard StuckRun must be non-negative, got %d", c.StuckRun)
	}
	if c.MaxSpan < 0 {
		return fmt.Errorf("imu: guard MaxSpan must be non-negative, got %v", c.MaxSpan)
	}
	return nil
}

// CheckWindow inspects one frame's IMU window and returns the first
// fault found (most severe classes are checked first), or WindowOK. An
// empty window is WindowOK: "no samples arrived" is a legitimate state
// the detector already treats conservatively.
func CheckWindow(win []Sample, cfg GuardConfig) WindowFault {
	if len(win) == 0 {
		return WindowOK
	}
	for i := range win {
		for ax := 0; ax < 3; ax++ {
			if !isFinite(win[i].Accel[ax]) || !isFinite(win[i].Gyro[ax]) {
				return WindowNonFinite
			}
		}
	}
	for i := 1; i < len(win); i++ {
		if win[i].Offset < win[i-1].Offset {
			return WindowNonMonotonic
		}
	}
	if cfg.MaxGap > 0 {
		for i := 1; i < len(win); i++ {
			if win[i].Offset-win[i-1].Offset > cfg.MaxGap {
				return WindowDropout
			}
		}
	}
	if stuckAxis(win, cfg.StuckRun) {
		return WindowStuck
	}
	if cfg.MaxAccel > 0 || cfg.MaxGyro > 0 {
		for i := range win {
			for ax := 0; ax < 3; ax++ {
				if cfg.MaxAccel > 0 && math.Abs(win[i].Accel[ax]) >= cfg.MaxAccel {
					return WindowSaturated
				}
				if cfg.MaxGyro > 0 && math.Abs(win[i].Gyro[ax]) >= cfg.MaxGyro {
					return WindowSaturated
				}
			}
		}
	}
	if cfg.MaxSpan > 0 {
		if win[0].Offset < 0 || win[len(win)-1].Offset-win[0].Offset > cfg.MaxSpan {
			return WindowClockSkew
		}
	}
	return WindowOK
}

// stuckAxis reports whether any single axis repeats the exact same
// reading for run or more consecutive samples. Real sensors carry noise
// in the low-order bits; bit-identical runs mean the driver stopped
// updating.
func stuckAxis(win []Sample, run int) bool {
	if run <= 0 || len(win) < run {
		return false
	}
	for ax := 0; ax < 3; ax++ {
		if runLength(win, run, func(s Sample) float64 { return s.Accel[ax] }) ||
			runLength(win, run, func(s Sample) float64 { return s.Gyro[ax] }) {
			return true
		}
	}
	return false
}

func runLength(win []Sample, run int, get func(Sample) float64) bool {
	streak := 1
	for i := 1; i < len(win); i++ {
		if get(win[i]) == get(win[i-1]) {
			streak++
			if streak >= run {
				return true
			}
		} else {
			streak = 1
		}
	}
	return false
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
