package core

import (
	"testing"
	"time"

	"approxcache/internal/dnn"
	"approxcache/internal/metrics"
)

// poisonCache inserts a wrong-label entry exactly where the prototype's
// feature vector sits, so the local cache would serve it.
func poisonCache(t *testing.T, f *fixture, cfg Config, class int, wrongLabel string) {
	t.Helper()
	proto, err := f.classes.Prototype(class)
	if err != nil {
		t.Fatal(err)
	}
	vec, err := cfg.Extractor.Extract(proto)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.store.Insert(vec, wrongLabel, 0.99, "dnn", 120*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

func TestRepairPurgesContradictedEntries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableIMUGate = true
	cfg.DisableVideoGate = true
	cfg.MaxReuseStreak = 1 // revalidate aggressively
	f := newFixture(t, cfg, nil)
	poisonCache(t, f, cfg, 0, "poison")
	proto, err := f.classes.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}
	// First frame: served by the poisoned local entry.
	res, err := f.engine.ProcessWithTruth(proto, nil, dnn.LabelOf(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != metrics.SourceLocal || res.Label != "poison" {
		t.Fatalf("poisoned entry not served: %+v", res)
	}
	// Second frame: streak bound forces revalidation; the DNN (perfect
	// in this fixture) contradicts the poison, which must be purged.
	res, err = f.engine.ProcessWithTruth(proto, nil, dnn.LabelOf(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != metrics.SourceDNN || res.Label != dnn.LabelOf(0) {
		t.Fatalf("revalidation did not run: %+v", res)
	}
	if got := f.engine.Stats().Repairs(); got != 1 {
		t.Fatalf("repairs = %d, want 1", got)
	}
	// Third frame (streak reset, next reuse attempt): the poison is
	// gone, so the vote now returns the correct label.
	res, err = f.engine.ProcessWithTruth(proto, nil, dnn.LabelOf(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != dnn.LabelOf(0) {
		t.Fatalf("poison survived repair: %+v", res)
	}
}

func TestRepairDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableIMUGate = true
	cfg.DisableVideoGate = true
	cfg.DisableRepair = true
	cfg.MaxReuseStreak = 1
	f := newFixture(t, cfg, nil)
	poisonCache(t, f, cfg, 1, "poison")
	proto, err := f.classes.Prototype(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.engine.ProcessWithTruth(proto, nil, dnn.LabelOf(1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.engine.Stats().Repairs(); got != 0 {
		t.Fatalf("repairs = %d with repair disabled", got)
	}
}

func TestRepairDoesNotPurgeAgreeingEntries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableIMUGate = true
	cfg.DisableVideoGate = true
	cfg.MaxReuseStreak = 1
	f := newFixture(t, cfg, nil)
	// Correct-label entry at the prototype's position.
	poisonCache(t, f, cfg, 2, dnn.LabelOf(2))
	proto, err := f.classes.Prototype(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.engine.ProcessWithTruth(proto, nil, dnn.LabelOf(2)); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.engine.Stats().Repairs(); got != 0 {
		t.Fatalf("agreeing entry purged: repairs = %d", got)
	}
}
