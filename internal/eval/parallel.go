package eval

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelEach runs fn(0..n-1) across at most workers goroutines and
// waits for all of them. Work items must be independent — every sweep
// point and experiment in this package builds its own virtual clock,
// RNGs, and network, so running them concurrently cannot change their
// results, only the wall time. The first error (by lowest index) wins.
func parallelEach(n, workers int, fn func(i int) error) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunExperiments executes exps at scale s, fanning independent
// experiments across s.Workers goroutines, and returns their reports in
// the input order. Reports are identical to a serial run: parallelism
// never reorders rows or perturbs the simulations.
func RunExperiments(exps []Experiment, s Scale) ([]Report, error) {
	reports := make([]Report, len(exps))
	err := parallelEach(len(exps), s.workers(), func(i int) error {
		r, err := exps[i].Run(s)
		if err != nil {
			return fmt.Errorf("%s: %w", exps[i].ID, err)
		}
		reports[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reports, nil
}

// workers resolves the Scale's worker count: 0 or 1 is serial, negative
// means one worker per CPU.
func (s Scale) workers() int {
	if s.Workers < 0 {
		return runtime.NumCPU()
	}
	if s.Workers == 0 {
		return 1
	}
	return s.Workers
}
