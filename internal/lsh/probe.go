package lsh

import "math/bits"

// Multi-probe sequence generation (Lv et al., "Multi-Probe LSH"). A
// query that lands in one bucket of a table is likely to find its near
// neighbors in the buckets whose signatures differ only in bits the
// query was close to flipping — bits whose hyperplane projection had a
// small magnitude. The probe sequence visits perturbed buckets in
// increasing total perturbation cost (the sum of |margin| over flipped
// bits), so each extra probe buys the next-most-likely bucket.
//
// Perturbation sets are generated with the classic shift/expand min-heap
// over margin-sorted bit positions: starting from {0} (flip the
// cheapest bit), popping a set S with maximum element j yields two
// successors — shift(S) replaces j with j+1, expand(S) adds j+1. Every
// subset is reachable exactly once and sets pop in non-decreasing
// score, so the sequence is a deterministic function of the margins.
// Ties (equal scores) break by the set's position mask, fixing the
// order bit-for-bit across runs, shards, and snapshot reloads.

// probeSet is one perturbation set: a bitmask over margin-sorted
// positions plus its summed-margin score.
type probeSet struct {
	score float64
	mask  uint64
}

// probeSetLess orders the generation heap: by score, ties by mask.
func probeSetLess(a, b probeSet) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.mask < b.mask
}

// probeGen enumerates the probe sequence for one (query, table) pair.
// All state lives in caller-provided scratch, so generation allocates
// nothing once the scratch is warm.
type probeGen struct {
	sig     uint64
	nbits   int
	order   []int     // bit indices sorted by margin ascending
	margins []float64 // |margin| indexed by SORTED position
	heap    []probeSet
	started bool
}

// init readies the generator. absMargins is indexed by bit; order and
// sorted are scratch slices of length ≥ nbits that the generator takes
// over for this query.
func (g *probeGen) init(sig uint64, nbits int, absMargins, sorted []float64, order []int, heap []probeSet) {
	g.sig = sig
	g.nbits = nbits
	g.order = order[:nbits]
	g.margins = sorted[:nbits]
	g.heap = heap[:0]
	g.started = false
	for b := 0; b < nbits; b++ {
		g.order[b] = b
	}
	// Insertion-sort positions by (margin, bit index): nbits ≤ 64 and
	// typically ~12, where insertion sort beats sort.Sort and allocates
	// nothing. The bit-index tie-break makes the order deterministic
	// even with duplicated margins.
	for i := 1; i < nbits; i++ {
		b := g.order[i]
		m := absMargins[b]
		j := i
		for ; j > 0; j-- {
			p := g.order[j-1]
			if absMargins[p] < m || (absMargins[p] == m && p < b) {
				break
			}
			g.order[j] = p
		}
		g.order[j] = b
	}
	for i, b := range g.order {
		g.margins[i] = absMargins[b]
	}
}

// next returns the next bucket signature to probe. The first call
// returns the unperturbed signature; subsequent calls pop perturbation
// sets in increasing cost. ok is false once every subset is exhausted.
func (g *probeGen) next() (uint64, bool) {
	if !g.started {
		g.started = true
		if g.nbits > 0 {
			g.push(probeSet{score: g.margins[0], mask: 1})
		}
		return g.sig, true
	}
	if len(g.heap) == 0 {
		return 0, false
	}
	s := g.pop()
	j := 63 - bits.LeadingZeros64(s.mask)
	if j+1 < g.nbits {
		step := g.margins[j+1]
		// shift: replace the max element j with j+1.
		g.push(probeSet{score: s.score - g.margins[j] + step, mask: s.mask&^(1<<j) | 1<<(j+1)})
		// expand: add j+1 alongside j.
		g.push(probeSet{score: s.score + step, mask: s.mask | 1<<(j+1)})
	}
	return g.sig ^ g.flips(s.mask), true
}

// flips maps a sorted-position mask to the actual signature bits to
// flip.
func (g *probeGen) flips(mask uint64) uint64 {
	var f uint64
	for m := mask; m != 0; m &= m - 1 {
		f |= 1 << uint(g.order[bits.TrailingZeros64(m)])
	}
	return f
}

// push/pop implement a small binary min-heap under probeSetLess.
func (g *probeGen) push(s probeSet) {
	g.heap = append(g.heap, s)
	i := len(g.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !probeSetLess(g.heap[i], g.heap[p]) {
			break
		}
		g.heap[i], g.heap[p] = g.heap[p], g.heap[i]
		i = p
	}
}

func (g *probeGen) pop() probeSet {
	top := g.heap[0]
	last := len(g.heap) - 1
	g.heap[0] = g.heap[last]
	g.heap = g.heap[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= len(g.heap) {
			break
		}
		m := l
		if r := l + 1; r < len(g.heap) && probeSetLess(g.heap[r], g.heap[l]) {
			m = r
		}
		if !probeSetLess(g.heap[m], g.heap[i]) {
			break
		}
		g.heap[i], g.heap[m] = g.heap[m], g.heap[i]
		i = m
	}
	return top
}
