package metrics

import (
	"sync"
	"testing"
)

func TestWireTallyCounts(t *testing.T) {
	var w WireTally
	w.Sent("query", 100)
	w.Sent("query", 50)
	w.Sent("gossip", 25)
	w.Recv("query-resp", 10)
	w.CoalesceInFlight()
	w.CoalesceCached()
	w.CoalesceCached()
	w.ObserveBatch(4)
	w.ObserveBatch(2)

	s := w.Snapshot()
	if s.SentMsgs != 3 || s.SentBytes != 175 {
		t.Fatalf("sent %d msgs / %d bytes", s.SentMsgs, s.SentBytes)
	}
	if s.RecvMsgs != 1 || s.RecvBytes != 10 {
		t.Fatalf("recv %d msgs / %d bytes", s.RecvMsgs, s.RecvBytes)
	}
	if q := s.Kinds["query"]; q.SentMsgs != 2 || q.SentBytes != 150 {
		t.Fatalf("query kind = %+v", q)
	}
	if s.CoalescedInFlight != 1 || s.CoalescedCached != 2 {
		t.Fatalf("coalesce = %d/%d", s.CoalescedInFlight, s.CoalescedCached)
	}
	if s.Batches != 2 || s.BatchedItems != 6 {
		t.Fatalf("batches = %d items = %d", s.Batches, s.BatchedItems)
	}
	if got := s.AvgBatch(); got != 3 {
		t.Fatalf("avg batch = %v", got)
	}
	// Snapshot is a copy: mutating the tally afterwards must not
	// change it.
	w.Sent("query", 1)
	if s.SentMsgs != 3 || s.Kinds["query"].SentMsgs != 2 {
		t.Fatal("snapshot aliased live state")
	}
}

func TestWireTallyZeroValue(t *testing.T) {
	var w WireTally
	s := w.Snapshot()
	if s.SentMsgs != 0 || s.RecvMsgs != 0 || len(s.Kinds) != 0 {
		t.Fatalf("zero tally snapshot = %+v", s)
	}
	if got := s.AvgBatch(); got != 0 {
		t.Fatalf("avg batch of no batches = %v", got)
	}
}

func TestWireTallyConcurrent(t *testing.T) {
	var w WireTally
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				w.Sent("query", 10)
				w.Recv("query-resp", 5)
				w.CoalesceCached()
				w.ObserveBatch(2)
			}
		}()
	}
	wg.Wait()
	s := w.Snapshot()
	if s.SentMsgs != 800 || s.SentBytes != 8000 || s.CoalescedCached != 800 || s.BatchedItems != 1600 {
		t.Fatalf("concurrent tally lost updates: %+v", s)
	}
}
