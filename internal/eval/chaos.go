// Chaos harness: replays one device's workload against a peer set that
// crashes mid-session and heals later, per a scheduled FaultPlan, and
// windows the per-frame results into pre-crash / crash / post-heal
// phases. E18 and the acceptance chaos test both run on it.
package eval

import (
	"fmt"
	"time"

	"approxcache/internal/core"
	"approxcache/internal/metrics"
	"approxcache/internal/p2p"
	"approxcache/internal/simclock"
	"approxcache/internal/simnet"
	"approxcache/internal/trace"
)

// Chaos phase windows, delimited by the fault plan's crash and heal
// offsets.
const (
	// PhasePre is before every peer crashes.
	PhasePre = iota
	// PhaseCrash is while every peer is down.
	PhaseCrash
	// PhaseHeal is after the scheduled heal.
	PhaseHeal
	chaosPhases
)

// ChaosConfig sizes a chaos run.
type ChaosConfig struct {
	// Frames is the main device's workload length (default 240).
	Frames int
	// Peers is how many warm peers surround the main device (default 2).
	Peers int
	// Seed anchors all randomness (default 1).
	Seed int64
	// DeadCost is the radio timeout charged for exchanges with a
	// crashed peer (default 80 ms) — what an unguarded client keeps
	// paying, frame after frame.
	DeadCost time.Duration
	// Budget is the main device's per-frame P2P time budget (default
	// 12 ms): just above the healthy link round trip (~10.6 ms at the
	// 5 ms / 1 MB/s profile), so a live peer always answers in budget
	// while trips and re-probes against dead peers cost at most the
	// budget instead of DeadCost. Negative disables the budget — the
	// fully unguarded configuration.
	Budget time.Duration
	// Breaker is the main device's breaker policy. The zero value
	// selects the defaults; Disabled runs the unguarded baseline.
	Breaker p2p.BreakerConfig
}

func (c *ChaosConfig) defaults() {
	if c.Frames == 0 {
		c.Frames = 240
	}
	if c.Peers == 0 {
		c.Peers = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.DeadCost == 0 {
		c.DeadCost = 80 * time.Millisecond
	}
	if c.Budget == 0 {
		c.Budget = 12 * time.Millisecond
	}
}

// ChaosPhase aggregates one window of frames.
type ChaosPhase struct {
	// Frames is how many frames fell in the window.
	Frames int
	// Mean is the window's mean frame latency.
	Mean time.Duration
	// PeerHits counts frames served by the P2P gate.
	PeerHits int
}

// ChaosResult is the outcome of one chaos run.
type ChaosResult struct {
	// Baseline is the same device and workload with no peers at all —
	// the latency the pipeline owes regardless of the network.
	Baseline [chaosPhases]ChaosPhase
	// Run is the device under test: peers attached, fault plan active.
	Run [chaosPhases]ChaosPhase
	// Stats is the run's session stats (trips, timeouts, degraded
	// frames, hit sources).
	Stats *metrics.SessionStats
	// Health is the client's final health snapshot.
	Health p2p.HealthSnapshot
}

// RunChaos warms cfg.Peers peer caches on the main device's exact
// workload, then replays the main device while a FaultScheduler crashes
// every peer ~40% in and restarts them ~70% in (offsets on the
// workload's arrival timeline). A no-peers baseline run of the same
// workload provides the reference latency per phase.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	cfg.defaults()
	if cfg.Frames < 30 {
		return ChaosResult{}, fmt.Errorf("eval: chaos needs ≥ 30 frames, got %d", cfg.Frames)
	}

	// An all-panning route over a vocabulary much larger than the main
	// device's cache: constant scene changes defeat the IMU/video
	// gates and evictions defeat the local gate, so frames reach the
	// P2P gate (and, without peers, the DNN) at a steady rate in every
	// phase. A stationary or handheld tail would be absorbed by the
	// IMU gate — whose periodic revalidation frames bypass gate 4 by
	// design — and post-heal peer reuse could never show up.
	spec := trace.PanningSweep(cfg.Frames, cfg.Seed)
	spec.NumClasses = 24
	spec.Segments = []trace.SegmentSpec{{Regime: "panning", Frames: cfg.Frames}}
	// A near-empty local cache keeps the main device's gate composition
	// identical with and without peers (the local gate serves almost
	// nothing either way), so the crash-window latency comparison
	// isolates the resilience layer's own overhead.
	const mainCapacity = 2

	// Fault offsets on the arrival timeline (the replay pins the clock
	// to each frame's arrival, so these fire mid-session for any
	// pipeline speed).
	w, err := trace.Generate(spec)
	if err != nil {
		return ChaosResult{}, err
	}
	crashAt := w.Frames[cfg.Frames*2/5].Offset
	healAt := w.Frames[cfg.Frames*7/10].Offset

	classify := func(elapsed time.Duration) int {
		switch {
		case elapsed < crashAt:
			return PhasePre
		case elapsed < healAt:
			return PhaseCrash
		default:
			return PhaseHeal
		}
	}

	// replay runs dev's whole workload, pinning the clock to each
	// frame's arrival offset and ticking the scheduler (if any) between
	// frames.
	replay := func(dev *device, clock *simclock.Virtual, sched *simnet.FaultScheduler) ([chaosPhases]ChaosPhase, error) {
		var sums [chaosPhases]time.Duration
		var phases [chaosPhases]ChaosPhase
		start := clock.Now()
		for dev.next < len(dev.work.Frames) {
			clock.Set(start.Add(dev.work.Frames[dev.next].Offset))
			if sched != nil {
				sched.Tick()
			}
			phase := classify(clock.Now().Sub(start))
			res, ok, err := dev.stepResult()
			if err != nil {
				return phases, err
			}
			if !ok {
				break
			}
			phases[phase].Frames++
			sums[phase] += res.Latency
			if res.Source == metrics.SourcePeer {
				phases[phase].PeerHits++
			}
		}
		for i := range phases {
			if phases[i].Frames > 0 {
				phases[i].Mean = sums[i] / time.Duration(phases[i].Frames)
			}
		}
		return phases, nil
	}

	var out ChaosResult

	// No-peers baseline.
	baseClock := simclock.NewVirtual(time.Unix(0, 0))
	baseDev, err := buildDevice(DeviceConfig{
		Name: "main", Spec: spec, Engine: core.DefaultConfig(),
		Capacity: mainCapacity, Seed: cfg.Seed,
	}, baseClock, nil)
	if err != nil {
		return ChaosResult{}, err
	}
	if out.Baseline, err = replay(baseDev, baseClock, nil); err != nil {
		return ChaosResult{}, err
	}

	// Faulted run: warm peers first (identical workload, so their
	// caches cover exactly what the main device will ask), then replay
	// the main device under the fault plan.
	clock := simclock.NewVirtual(time.Unix(0, 0))
	net, err := simnet.New(simnet.LinkProfile{
		Latency: 5 * time.Millisecond, BandwidthBps: 1 << 20,
	}, cfg.Seed)
	if err != nil {
		return ChaosResult{}, err
	}
	net.SetDeadCost(cfg.DeadCost)
	peerNames := make([]string, cfg.Peers)
	for i := range peerNames {
		peerNames[i] = fmt.Sprintf("peer-%d", i)
		peer, err := buildDevice(DeviceConfig{
			Name: peerNames[i], Spec: spec, Engine: core.DefaultConfig(),
			Seed: cfg.Seed,
		}, clock, net)
		if err != nil {
			return ChaosResult{}, err
		}
		for {
			ok, err := peer.step()
			if err != nil {
				return ChaosResult{}, err
			}
			if !ok {
				break
			}
		}
	}
	ccfg := p2p.DefaultClientConfig()
	ccfg.Breaker = cfg.Breaker
	ecfg := core.DefaultConfig()
	if cfg.Budget > 0 {
		ecfg.PeerBudget = cfg.Budget
	} else {
		ecfg.PeerBudgetFraction = -1 // unbounded
	}
	dev, err := buildDevice(DeviceConfig{
		Name: "main", Spec: spec, Engine: ecfg,
		Capacity: mainCapacity, Seed: cfg.Seed, Client: &ccfg,
	}, clock, net)
	if err != nil {
		return ChaosResult{}, err
	}
	dev.client.SetPeers(peerNames)

	var plan simnet.FaultPlan
	for _, name := range peerNames {
		plan = append(plan,
			simnet.FaultEvent{At: crashAt, Kind: simnet.FaultCrash, Node: simnet.NodeID(name)},
			simnet.FaultEvent{At: healAt, Kind: simnet.FaultRestart, Node: simnet.NodeID(name)},
		)
	}
	sched, err := simnet.NewFaultScheduler(net, clock, plan)
	if err != nil {
		return ChaosResult{}, err
	}
	if out.Run, err = replay(dev, clock, sched); err != nil {
		return ChaosResult{}, err
	}
	out.Stats = dev.engine.Stats()
	out.Health = dev.client.Health()
	return out, nil
}
