package p2p

import (
	"math"
	"testing"
	"time"
)

func TestHealthTrackerCounts(t *testing.T) {
	h, err := NewHealthTracker(HealthConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h.Observe("p", 10*time.Millisecond, ErrClassNone)
	h.Observe("p", 12*time.Millisecond, ErrClassTimeout)
	h.Observe("p", 8*time.Millisecond, ErrClassLost)
	ph, ok := h.Peer("p")
	if !ok {
		t.Fatal("peer not tracked")
	}
	if ph.Successes != 1 || ph.Failures != 2 || ph.ConsecFailures != 2 {
		t.Fatalf("counts = %+v", ph)
	}
	if ph.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", ph.Timeouts)
	}
	if ph.LastClass != ErrClassLost {
		t.Fatalf("last class = %v, want lost", ph.LastClass)
	}
	h.Observe("p", 10*time.Millisecond, ErrClassNone)
	ph, _ = h.Peer("p")
	if ph.ConsecFailures != 0 {
		t.Fatalf("success did not reset consecutive failures: %d", ph.ConsecFailures)
	}
}

func TestHealthTrackerEWMA(t *testing.T) {
	h, err := NewHealthTracker(HealthConfig{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// First sample initializes the EWMAs directly.
	h.Observe("p", 10*time.Millisecond, ErrClassNone)
	ph, _ := h.Peer("p")
	if ph.LatencyEWMA != 10*time.Millisecond || ph.SuccessEWMA != 1 {
		t.Fatalf("after first sample: %+v", ph)
	}
	// Second sample blends: latency (10+20)/2 = 15 ms, success (1+0)/2 = 0.5.
	h.Observe("p", 20*time.Millisecond, ErrClassTimeout)
	ph, _ = h.Peer("p")
	if ph.LatencyEWMA != 15*time.Millisecond {
		t.Fatalf("latency EWMA = %v, want 15ms", ph.LatencyEWMA)
	}
	if math.Abs(ph.SuccessEWMA-0.5) > 1e-9 {
		t.Fatalf("success EWMA = %v, want 0.5", ph.SuccessEWMA)
	}
}

func TestHealthTrackerSnapshotSortedAndForget(t *testing.T) {
	h, err := NewHealthTracker(HealthConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h.Observe("b", time.Millisecond, ErrClassNone)
	h.Observe("a", time.Millisecond, ErrClassNone)
	h.Observe("c", time.Millisecond, ErrClassNone)
	snap := h.Snapshot()
	if len(snap) != 3 || snap[0].Peer != "a" || snap[1].Peer != "b" || snap[2].Peer != "c" {
		t.Fatalf("snapshot = %+v", snap)
	}
	h.Forget("b")
	if _, ok := h.Peer("b"); ok {
		t.Fatal("forgotten peer still tracked")
	}
	if len(h.Snapshot()) != 2 {
		t.Fatal("forget did not shrink snapshot")
	}
}

func TestHealthConfigValidate(t *testing.T) {
	if err := (HealthConfig{Alpha: -0.1}).Validate(); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if err := (HealthConfig{Alpha: 1.5}).Validate(); err == nil {
		t.Fatal("alpha > 1 accepted")
	}
	if err := DefaultHealthConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}
