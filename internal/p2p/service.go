package p2p

import (
	"fmt"

	"approxcache/internal/cachestore"
	"approxcache/internal/feature"
	"approxcache/internal/lsh"
	"approxcache/internal/metrics"
)

// ServiceConfig parameterizes a peer's serving side.
type ServiceConfig struct {
	// Name identifies this node in Pings/Pongs and logs.
	Name string
	// Vote is the acceptance policy applied when answering queries.
	Vote lsh.VoteConfig
	// MinGossipConfidence drops incoming gossip below this
	// confidence, an admission filter against polluting the local
	// cache with peers' uncertain results.
	MinGossipConfidence float64
	// WireV1Only makes the service reject v2-framed requests with
	// ErrWireVersion, emulating a legacy node for interop tests and
	// the bandwidth baseline.
	WireV1Only bool
}

// Validate reports whether the configuration is usable.
func (c ServiceConfig) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("p2p: service needs a name")
	}
	if err := c.Vote.Validate(); err != nil {
		return err
	}
	if c.MinGossipConfidence < 0 || c.MinGossipConfidence > 1 {
		return fmt.Errorf("p2p: MinGossipConfidence must be in [0,1], got %v",
			c.MinGossipConfidence)
	}
	return nil
}

// DefaultServiceConfig returns the standard serving policy for name.
func DefaultServiceConfig(name string) ServiceConfig {
	return ServiceConfig{
		Name:                name,
		Vote:                lsh.DefaultVoteConfig(),
		MinGossipConfidence: 0.5,
	}
}

// Service answers peer protocol messages against a local cache store
// of any shape (single, sharded, or serialized). Service is safe for
// concurrent use.
type Service struct {
	cfg    ServiceConfig
	store  cachestore.Interface
	digest *digestEpochs
	wire   metrics.WireTally
}

// NewService builds a service over store.
func NewService(cfg ServiceConfig, store cachestore.Interface) (*Service, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if store == nil {
		return nil, fmt.Errorf("p2p: nil store")
	}
	return &Service{cfg: cfg, store: store, digest: newDigestEpochs()}, nil
}

// WireStats returns this service's per-kind wire traffic totals.
func (s *Service) WireStats() metrics.WireStats { return s.wire.Snapshot() }

// Name returns the node name.
func (s *Service) Name() string { return s.cfg.Name }

// Store returns the backing cache store.
func (s *Service) Store() cachestore.Interface { return s.store }

// HandleQuery answers a cache query with a homogenized-kNN vote over
// the local store.
func (s *Service) HandleQuery(q Query) (QueryResp, error) {
	if len(q.Vec) == 0 {
		return QueryResp{}, fmt.Errorf("p2p: empty query vector")
	}
	k := int(q.K)
	if k <= 0 || k > s.cfg.Vote.K {
		k = s.cfg.Vote.K
	}
	ns, err := s.store.Nearest(q.Vec, k)
	if err != nil {
		return QueryResp{}, fmt.Errorf("nearest: %w", err)
	}
	// Quarantined entries are withheld from the index, so ns cannot
	// contain them, and the Label callback refuses them besides: a
	// suspect answer must not escape to the swarm through either path.
	verdict, err := lsh.Vote(ns, s.store.Label, s.cfg.Vote)
	if err != nil {
		return QueryResp{}, fmt.Errorf("vote: %w", err)
	}
	if !verdict.Accepted {
		return QueryResp{}, nil
	}
	return QueryResp{
		Found:      true,
		Label:      verdict.Label,
		Confidence: verdict.Confidence,
		Distance:   verdict.BestDistance,
	}, nil
}

// HandleGossip admits a peer's shared result into the local store if it
// clears the confidence filter and is not a near-duplicate of an
// existing entry.
func (s *Service) HandleGossip(g Gossip) error {
	if len(g.Vec) == 0 {
		return fmt.Errorf("p2p: empty gossip vector")
	}
	if g.Label == "" {
		return fmt.Errorf("p2p: empty gossip label")
	}
	if g.Confidence < s.cfg.MinGossipConfidence {
		return nil // silently dropped by admission policy
	}
	// Near-duplicate suppression: if an entry with the same label
	// already sits within half the vote radius, the gossip adds no
	// information.
	ns, err := s.store.Nearest(g.Vec, 1)
	if err != nil {
		return fmt.Errorf("nearest: %w", err)
	}
	if len(ns) == 1 && ns[0].Distance < s.cfg.Vote.MaxDistance/2 {
		if label, ok := s.store.Label(ns[0].ID); ok && label == g.Label {
			return nil
		}
	}
	if _, err := s.store.Insert(g.Vec, g.Label, g.Confidence, "peer", g.SavedCost); err != nil {
		return fmt.Errorf("insert gossip: %w", err)
	}
	return nil
}

// HandlePing answers a liveness probe with this node's identity and
// cache occupancy.
func (s *Service) HandlePing(Ping) Pong {
	return Pong{From: s.cfg.Name, Entries: uint32(s.store.Len())}
}

// HandleDigestReq summarizes the store's coverage for a requester. The
// clustering radius is the vote's reuse radius: any query a centroid
// covers at that scale could plausibly be answered. Quarantined
// entries are withheld — advertising coverage this node itself refuses
// to serve would send peers here for answers they cannot get.
func (s *Service) HandleDigestReq(DigestReq) (DigestResp, error) {
	d, err := s.buildDigest()
	if err != nil {
		return DigestResp{}, err
	}
	return DigestResp{Digest: d}, nil
}

// buildDigest clusters the store's non-quarantined entries into the
// current coverage digest.
func (s *Service) buildDigest() (Digest, error) {
	entries := s.store.Snapshot()
	vecs := make([]feature.Vector, 0, len(entries))
	var suppressed int64
	for _, e := range entries {
		if e.Quarantined {
			suppressed++
			continue
		}
		vecs = append(vecs, e.Vec)
	}
	if suppressed > 0 {
		metrics.QuarantineSuppressed.Add(suppressed)
	}
	d, err := BuildDigest(vecs, s.cfg.Vote.MaxDistance, MaxDigestCentroids)
	if err != nil {
		return Digest{}, fmt.Errorf("build digest: %w", err)
	}
	return d, nil
}

// HandleDigestDelta answers an epoch-versioned digest request: the
// current centroid set is rebuilt, the digest epoch advanced if it
// changed, and the requester receives only the additions and removals
// since the epoch it named — or a full snapshot when that epoch is
// unknown (first contact, evicted history, or a service restart).
func (s *Service) HandleDigestDelta(req DigestDeltaReq) (DigestDeltaResp, error) {
	d, err := s.buildDigest()
	if err != nil {
		return DigestDeltaResp{}, err
	}
	return s.digest.serve(d.Centroids, req.Since), nil
}

// HandleGossipBatch admits each item of a coalesced gossip batch. Item
// failures are independent — a batch is only an error when every item
// fails, mirroring gossip's fire-and-forget semantics.
func (s *Service) HandleGossipBatch(b GossipBatch) error {
	if len(b.Items) == 0 {
		return nil
	}
	var firstErr error
	failed := 0
	for _, g := range b.Items {
		if err := s.HandleGossip(g); err != nil {
			failed++
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if failed == len(b.Items) {
		return fmt.Errorf("gossip batch: all %d items failed: %w", failed, firstErr)
	}
	return nil
}

// HandleRaw decodes payload, dispatches to the matching handler, and
// encodes the response. It is the single entry point transports call;
// its signature (modulo the from argument's type) matches
// simnet.Handler.
func (s *Service) HandleRaw(from string, payload []byte) ([]byte, error) {
	return s.HandleRawAppend(from, payload, nil)
}

// HandleRawAppend is HandleRaw appending the response to buf, so
// connection loops can reuse one response buffer across exchanges
// instead of allocating per message. The response is answered in the
// request's wire version: v2 requesters get v2 frames, everyone else
// gets v1, which is what makes mixed-version meshes interoperate.
func (s *Service) HandleRawAppend(from string, payload []byte, buf []byte) ([]byte, error) {
	msg, ver, err := DecodeWire(payload)
	if err != nil {
		return nil, fmt.Errorf("decode from %q: %w", from, err)
	}
	if ver == WireV2 && s.cfg.WireV1Only {
		return nil, fmt.Errorf("p2p: %q sent a v2 frame to a v1-only node: %w", from, ErrWireVersion)
	}
	s.wire.Recv(msg.MsgKind().String(), len(payload))
	var resp Message
	switch m := msg.(type) {
	case Query:
		r, err := s.HandleQuery(m)
		if err != nil {
			return nil, err
		}
		resp = r
	case Gossip:
		if err := s.HandleGossip(m); err != nil {
			return nil, err
		}
		resp = Ack{}
	case GossipBatch:
		if err := s.HandleGossipBatch(m); err != nil {
			return nil, err
		}
		resp = Ack{}
	case Ping:
		resp = s.HandlePing(m)
	case DigestReq:
		r, err := s.HandleDigestReq(m)
		if err != nil {
			return nil, err
		}
		resp = r
	case DigestDeltaReq:
		r, err := s.HandleDigestDelta(m)
		if err != nil {
			return nil, err
		}
		resp = r
	default:
		return nil, fmt.Errorf("p2p: unexpected request kind %v", msg.MsgKind())
	}
	var out []byte
	if ver == WireV2 {
		out, err = AppendEncodeV2(buf, resp)
	} else {
		out, err = AppendEncode(buf, resp)
	}
	if err != nil {
		return nil, fmt.Errorf("encode response: %w", err)
	}
	s.wire.Sent(resp.MsgKind().String(), len(out)-len(buf))
	return out, nil
}

// RadioEnergyModel estimates the radio energy cost of protocol traffic,
// for the energy experiment (E6). Defaults approximate short-range
// Wi-Fi: a fixed wake-up cost per message plus a per-byte cost.
type RadioEnergyModel struct {
	// PerMessageMJ is the fixed cost of sending or receiving one
	// message, in millijoules.
	PerMessageMJ float64
	// PerByteMJ is the marginal cost per payload byte.
	PerByteMJ float64
}

// DefaultRadioEnergyModel returns Wi-Fi-Direct-class constants.
func DefaultRadioEnergyModel() RadioEnergyModel {
	return RadioEnergyModel{PerMessageMJ: 0.8, PerByteMJ: 0.0008}
}

// MessageCost returns the energy to exchange a message of size bytes.
func (m RadioEnergyModel) MessageCost(size int) float64 {
	return m.PerMessageMJ + m.PerByteMJ*float64(size)
}

// RTTCost returns the energy of a request/response exchange.
func (m RadioEnergyModel) RTTCost(reqSize, respSize int) float64 {
	return m.MessageCost(reqSize) + m.MessageCost(respSize)
}
