package trace

import (
	"encoding/json"
	"fmt"
)

// Scenario describes a multi-device run: several workloads over a
// shared object vocabulary on one wireless neighborhood. Like Spec it
// is JSON-serializable, so whole peer experiments can be saved and
// regenerated bit-exactly.
type Scenario struct {
	// Name identifies the scenario.
	Name string `json:"name"`
	// ClassSeed is the shared vocabulary seed, applied to every
	// device (overriding any per-device value).
	ClassSeed int64 `json:"classSeed"`
	// NetSeed drives the simulated network's jitter and loss.
	NetSeed int64 `json:"netSeed"`
	// Devices are the per-device workloads. Names must be unique.
	Devices []Spec `json:"devices"`
}

// Validate reports whether the scenario is usable.
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("trace: scenario needs a name")
	}
	if sc.ClassSeed == 0 {
		return fmt.Errorf("trace: scenario needs a shared class seed")
	}
	if len(sc.Devices) == 0 {
		return fmt.Errorf("trace: scenario needs at least one device")
	}
	seen := make(map[string]bool, len(sc.Devices))
	for i, d := range sc.Devices {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("trace: device %d: %w", i, err)
		}
		if seen[d.Name] {
			return fmt.Errorf("trace: duplicate device name %q", d.Name)
		}
		seen[d.Name] = true
	}
	// All devices must agree on the vocabulary shape, or shared
	// recognition results would be meaningless.
	first := sc.Devices[0]
	for _, d := range sc.Devices[1:] {
		if d.NumClasses != first.NumClasses || d.ImageW != first.ImageW || d.ImageH != first.ImageH {
			return fmt.Errorf("trace: device %q vocabulary shape differs from %q",
				d.Name, first.Name)
		}
	}
	return nil
}

// DeviceSpecs returns the device specs with the shared ClassSeed
// applied, ready for generation.
func (sc Scenario) DeviceSpecs() []Spec {
	out := make([]Spec, len(sc.Devices))
	for i, d := range sc.Devices {
		d.ClassSeed = sc.ClassSeed
		out[i] = d
	}
	return out
}

// EncodeScenario serializes sc to JSON.
func EncodeScenario(sc Scenario) ([]byte, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(sc, "", "  ")
}

// DecodeScenario parses and validates a JSON scenario.
func DecodeScenario(data []byte) (Scenario, error) {
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return Scenario{}, fmt.Errorf("trace: parse scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// CrowdScenario builds a standard N-device scenario: every device walks
// its own route (distinct Seeds) past the same Zipf-popular exhibits.
func CrowdScenario(devices, framesPerDevice int, seed int64) Scenario {
	sc := Scenario{
		Name:      fmt.Sprintf("crowd-%d", devices),
		ClassSeed: seed + 100000,
		NetSeed:   seed,
	}
	for i := 0; i < devices; i++ {
		spec := WalkingTour(framesPerDevice, seed+int64(i+1)*101)
		spec.Name = fmt.Sprintf("device-%d", i)
		spec.ClassSkew = 0.8
		sc.Devices = append(sc.Devices, spec)
	}
	return sc
}
