package cachestore

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"approxcache/internal/feature"
	"approxcache/internal/lsh"
	"approxcache/internal/metrics"
	"approxcache/internal/simclock"
)

// ShardedConfig parameterizes a ShardedStore.
type ShardedConfig struct {
	// Config is the aggregate store shape; Capacity is the TOTAL
	// across shards (split evenly, rounded up).
	Config
	// Dim is the feature vector dimensionality (the router projects
	// vectors onto its own hyperplanes to pick a shard).
	Dim int
	// Shards is the number of lock stripes, in [1, 256].
	Shards int
	// RouterSeed seeds the routing hyperplanes. Routing is part of
	// the store's identity only in memory — snapshots persist entries,
	// not shard assignments — so any seed round-trips.
	RouterSeed int64
}

// shardCounters is one shard's hot-path instrumentation. inflight is a
// gauge of operations currently inside the shard; an operation that
// begins while the gauge is already positive increments contended,
// approximating how often a single shared mutex would have blocked.
// Padded to a cache line so neighboring shards' counters don't
// false-share.
type shardCounters struct {
	lookups   atomic.Int64
	inserts   atomic.Int64
	contended atomic.Int64
	inflight  atomic.Int64
	_         [4]int64
}

func (c *shardCounters) enter() {
	if c.inflight.Add(1) > 1 {
		c.contended.Add(1)
	}
}

func (c *shardCounters) exit() { c.inflight.Add(-1) }

// ShardedStore partitions the cache across N independent Store shards,
// routed by LSH signature prefix over dedicated hyperplanes. Writers
// touching different shards never contend; a lookup fans out to every
// shard (each under its own read lock) and k-way-merges the per-shard
// top-k lists under the same (distance, ID) total order the unsharded
// index uses, so results are bit-identical to a single-shard store
// built from the same inserts with the same index seed.
//
// IDs are globalized as local*Shards + shard: decoding is a mod/div,
// and because per-shard local IDs start at 1, no global ID collides
// with another shard's.
type ShardedStore struct {
	cfg      ShardedConfig
	router   *lsh.Router
	shards   []*Store
	counters []shardCounters
	merge    sync.Pool // *mergeScratch
}

// mergeScratch holds the reusable per-lookup state: one top-k buffer
// per shard plus cursor positions for the k-way merge.
type mergeScratch struct {
	bufs [][]lsh.Neighbor
	pos  []int
}

// NewSharded builds a sharded store. newIndex constructs shard i's
// nearest-neighbor index; to keep sharded lookups bit-identical to an
// unsharded store, give every shard the same index seed.
func NewSharded(cfg ShardedConfig, newIndex func(shard int) (lsh.Index, error), clock simclock.Clock) (*ShardedStore, error) {
	if err := cfg.Config.Validate(); err != nil {
		return nil, err
	}
	if cfg.Shards < 1 || cfg.Shards > 256 {
		return nil, fmt.Errorf("cachestore: shards must be in [1,256], got %d", cfg.Shards)
	}
	if newIndex == nil {
		return nil, fmt.Errorf("cachestore: nil index constructor")
	}
	router, err := lsh.NewRouter(cfg.Dim, cfg.Shards, cfg.RouterSeed)
	if err != nil {
		return nil, err
	}
	perShard := cfg.Config
	perShard.Capacity = (cfg.Capacity + cfg.Shards - 1) / cfg.Shards
	s := &ShardedStore{
		cfg:      cfg,
		router:   router,
		shards:   make([]*Store, cfg.Shards),
		counters: make([]shardCounters, cfg.Shards),
	}
	for i := range s.shards {
		idx, err := newIndex(i)
		if err != nil {
			return nil, fmt.Errorf("cachestore: shard %d index: %w", i, err)
		}
		s.shards[i], err = New(perShard, idx, clock)
		if err != nil {
			return nil, err
		}
	}
	s.merge.New = func() any {
		return &mergeScratch{
			bufs: make([][]lsh.Neighbor, cfg.Shards),
			pos:  make([]int, cfg.Shards),
		}
	}
	return s, nil
}

// Shards returns the number of shards.
func (s *ShardedStore) Shards() int { return len(s.shards) }

func (s *ShardedStore) global(shard int, local lsh.ID) lsh.ID {
	return local*lsh.ID(len(s.shards)) + lsh.ID(shard)
}

func (s *ShardedStore) split(global lsh.ID) (shard int, local lsh.ID) {
	n := lsh.ID(len(s.shards))
	return int(global % n), global / n
}

// Insert routes the vector to its shard and stores it there, evicting
// within that shard if it is full. The returned ID is global.
func (s *ShardedStore) Insert(vec feature.Vector, label string, confidence float64, source string, savedCost time.Duration) (lsh.ID, error) {
	shard, err := s.router.Route(vec)
	if err != nil {
		return 0, err
	}
	c := &s.counters[shard]
	c.inserts.Add(1)
	c.enter()
	local, err := s.shards[shard].Insert(vec, label, confidence, source, savedCost)
	c.exit()
	if err != nil {
		return 0, err
	}
	return s.global(shard, local), nil
}

// Get returns a snapshot of the entry under its global ID.
func (s *ShardedStore) Get(id lsh.ID) (Entry, bool) {
	shard, local := s.split(id)
	e, ok := s.shards[shard].Get(local)
	if !ok {
		return Entry{}, false
	}
	e.ID = id
	return e, true
}

// Touch records a cache hit on the global id.
func (s *ShardedStore) Touch(id lsh.ID) {
	shard, local := s.split(id)
	s.shards[shard].Touch(local)
}

// Label resolves the global id to its label if live.
func (s *ShardedStore) Label(id lsh.ID) (string, bool) {
	shard, local := s.split(id)
	return s.shards[shard].Label(local)
}

// Remove deletes the global id.
func (s *ShardedStore) Remove(id lsh.ID) {
	shard, local := s.split(id)
	s.shards[shard].Remove(local)
}

// Confirm records an audit agreement on the global id.
func (s *ShardedStore) Confirm(id lsh.ID) {
	shard, local := s.split(id)
	s.shards[shard].Confirm(local)
}

// Refute records an audit disagreement on the global id.
func (s *ShardedStore) Refute(id lsh.ID) bool {
	shard, local := s.split(id)
	return s.shards[shard].Refute(local)
}

// Parole records a re-verification outcome for the global id.
func (s *ShardedStore) Parole(id lsh.ID, ok bool) ParoleOutcome {
	shard, local := s.split(id)
	return s.shards[shard].Parole(local, ok)
}

// Quarantined reports whether the global id is quarantined.
func (s *ShardedStore) Quarantined(id lsh.ID) bool {
	shard, local := s.split(id)
	return s.shards[shard].Quarantined(local)
}

// QuarantineStats aggregates quarantine activity across shards.
func (s *ShardedStore) QuarantineStats() QuarantineStats {
	var agg QuarantineStats
	for _, sh := range s.shards {
		st := sh.QuarantineStats()
		agg.Active += st.Active
		agg.Total += st.Total
		agg.Paroled += st.Paroled
		agg.Evicted += st.Evicted
	}
	return agg
}

// Nearest returns up to k neighbors of q across all shards.
func (s *ShardedStore) Nearest(q feature.Vector, k int) ([]lsh.Neighbor, error) {
	return s.NearestInto(q, k, nil)
}

// NearestInto fans the lookup out to every shard and merges the
// per-shard top-k lists. Per-shard buffers come from a pool, so a
// steady-state lookup with a caller-provided dst allocates nothing.
func (s *ShardedStore) NearestInto(q feature.Vector, k int, dst []lsh.Neighbor) ([]lsh.Neighbor, error) {
	if len(s.shards) == 1 {
		c := &s.counters[0]
		c.lookups.Add(1)
		c.enter()
		out, err := s.shards[0].NearestInto(q, k, dst)
		c.exit()
		return out, err
	}
	sc := s.merge.Get().(*mergeScratch)
	defer s.merge.Put(sc)
	for i, sh := range s.shards {
		c := &s.counters[i]
		c.lookups.Add(1)
		c.enter()
		ns, err := sh.NearestInto(q, k, sc.bufs[i][:0])
		c.exit()
		if err != nil {
			return nil, err
		}
		// Globalize in place: within one shard local order is global
		// order (global = local*S + shard is monotone in local), so
		// the list stays sorted under (distance, global ID).
		for j := range ns {
			ns[j].ID = s.global(i, ns[j].ID)
		}
		sc.bufs[i] = ns
		sc.pos[i] = 0
	}
	// K-way merge under the same total order the per-shard selectors
	// used, so the result equals one unsharded selection.
	out := dst[:0]
	for len(out) < k {
		best := -1
		for i := range sc.bufs {
			if sc.pos[i] >= len(sc.bufs[i]) {
				continue
			}
			if best < 0 || lsh.NeighborWorse(sc.bufs[best][sc.pos[best]], sc.bufs[i][sc.pos[i]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, sc.bufs[best][sc.pos[best]])
		sc.pos[best]++
	}
	return out, nil
}

// Len returns the live entry count across shards.
func (s *ShardedStore) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Evictions returns total capacity evictions across shards.
func (s *ShardedStore) Evictions() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Evictions()
	}
	return n
}

// Expiries returns total TTL expiries across shards.
func (s *ShardedStore) Expiries() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Expiries()
	}
	return n
}

// Stats aggregates occupancy/churn across shards.
func (s *ShardedStore) Stats() StoreStats {
	agg := StoreStats{BySource: make(map[string]int)}
	for _, sh := range s.shards {
		st := sh.Stats()
		agg.Entries += st.Entries
		agg.Evictions += st.Evictions
		agg.Expiries += st.Expiries
		agg.TotalHits += st.TotalHits
		agg.SavedTotal += st.SavedTotal
		for src, n := range st.BySource {
			agg.BySource[src] += n
		}
	}
	return agg
}

// ShardStats returns one occupancy/contention snapshot per shard.
func (s *ShardedStore) ShardStats() []metrics.ShardStat {
	out := make([]metrics.ShardStat, len(s.shards))
	for i, sh := range s.shards {
		c := &s.counters[i]
		out[i] = metrics.ShardStat{
			Shard:     i,
			Entries:   sh.Len(),
			Lookups:   c.lookups.Load(),
			Inserts:   c.inserts.Load(),
			Contended: c.contended.Load(),
		}
	}
	return out
}

// Snapshot returns copies of all live entries with global IDs.
func (s *ShardedStore) Snapshot() []Entry {
	var out []Entry
	for i, sh := range s.shards {
		for _, e := range sh.Snapshot() {
			e.ID = s.global(i, e.ID)
			out = append(out, e)
		}
	}
	return out
}

// Export writes all live entries in the shared snapshot format. Shard
// assignments are not persisted — the wire format carries entries, not
// topology — so a snapshot written by any store shape imports into any
// other, and re-importing re-routes each entry.
func (s *ShardedStore) Export(w io.Writer) error {
	entries := s.Snapshot()
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	return writeSnapshot(w, entries)
}

// Import reads a snapshot and inserts its entries, each routed to its
// shard. Validation is all-or-nothing: a corrupt snapshot returns
// ErrCorruptSnapshot without touching any shard.
func (s *ShardedStore) Import(r io.Reader) (int, error) {
	in, err := readSnapshot(r)
	if err != nil {
		return 0, err
	}
	inserted := 0
	for i, e := range in.Entries {
		id, err := s.Insert(feature.Vector(e.Vec), e.Label, e.Confidence, e.Source,
			time.Duration(e.SavedCostMicros)*time.Microsecond)
		if err != nil {
			return inserted, fmt.Errorf("cachestore: import entry %d: %w", i, err)
		}
		shard, local := s.split(id)
		s.shards[shard].applyWireQuality(local, e)
		inserted++
	}
	return inserted, nil
}
