// Package imu provides the inertial-sensing substrate: a synthetic
// accelerometer/gyroscope trace generator with distinct motion regimes,
// and the sliding-window motion detector whose output gates the
// cheapest reuse path ("the phone has not moved, so the scene has not
// changed").
//
// Real IMU hardware is not available; the generator reproduces the
// second-order statistics each regime exhibits (noise floors, step
// oscillation while walking, sustained yaw rate while panning), which
// is all the detector consumes — and, unlike real traces, comes with
// exact ground truth so false-reuse rates can be measured.
package imu

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Sample is one inertial reading. Accel is linear acceleration in m/s²
// (gravity removed); Gyro is angular velocity in rad/s.
type Sample struct {
	// Offset is the sample time relative to trace start.
	Offset time.Duration
	Accel  [3]float64
	Gyro   [3]float64
}

// AccelMagnitude returns |Accel|.
func (s Sample) AccelMagnitude() float64 {
	return math.Sqrt(s.Accel[0]*s.Accel[0] + s.Accel[1]*s.Accel[1] + s.Accel[2]*s.Accel[2])
}

// GyroMagnitude returns |Gyro|.
func (s Sample) GyroMagnitude() float64 {
	return math.Sqrt(s.Gyro[0]*s.Gyro[0] + s.Gyro[1]*s.Gyro[1] + s.Gyro[2]*s.Gyro[2])
}

// Regime is a device motion regime.
type Regime int

// Supported motion regimes.
const (
	// Stationary: device resting on a surface or tripod.
	Stationary Regime = iota + 1
	// Handheld: user holding the device still (physiological tremor).
	Handheld
	// Walking: user walking with the device (step oscillation).
	Walking
	// Panning: user sweeping the camera across a scene (sustained
	// rotation).
	Panning
)

// String returns the regime name.
func (r Regime) String() string {
	switch r {
	case Stationary:
		return "stationary"
	case Handheld:
		return "handheld"
	case Walking:
		return "walking"
	case Panning:
		return "panning"
	default:
		return fmt.Sprintf("Regime(%d)", int(r))
	}
}

// SceneStable reports whether the regime's ground truth is "the camera
// keeps seeing the same scene". It is what the motion gate tries to
// infer from sensor data alone.
func (r Regime) SceneStable() bool {
	return r == Stationary || r == Handheld
}

// regimeParams are the per-regime noise statistics.
type regimeParams struct {
	accelNoise float64 // σ of per-axis accel noise, m/s²
	gyroNoise  float64 // σ of per-axis gyro noise, rad/s
	stepAmp    float64 // walking step oscillation amplitude, m/s²
	stepHz     float64 // step frequency
	panRate    float64 // sustained yaw rate, rad/s
}

func paramsFor(r Regime) (regimeParams, error) {
	switch r {
	case Stationary:
		return regimeParams{accelNoise: 0.02, gyroNoise: 0.004}, nil
	case Handheld:
		return regimeParams{accelNoise: 0.12, gyroNoise: 0.03}, nil
	case Walking:
		return regimeParams{accelNoise: 0.4, gyroNoise: 0.15, stepAmp: 2.2, stepHz: 1.9}, nil
	case Panning:
		return regimeParams{accelNoise: 0.1, gyroNoise: 0.05, panRate: 0.9}, nil
	default:
		return regimeParams{}, fmt.Errorf("imu: unknown regime %d", int(r))
	}
}

// Generator produces synthetic IMU traces at a fixed sample rate.
type Generator struct {
	rateHz int
	rng    *rand.Rand
}

// NewGenerator builds a generator sampling at rateHz Hz, seeded for
// reproducibility. Typical smartphone IMU rates are 50–200 Hz.
func NewGenerator(rateHz int, seed int64) (*Generator, error) {
	if rateHz <= 0 {
		return nil, fmt.Errorf("imu: rate must be positive, got %d", rateHz)
	}
	return &Generator{rateHz: rateHz, rng: rand.New(rand.NewSource(seed))}, nil
}

// RateHz returns the sample rate.
func (g *Generator) RateHz() int { return g.rateHz }

// Generate produces dur worth of samples in regime r, starting at
// offset start. Samples are spaced 1/rate apart.
func (g *Generator) Generate(r Regime, start, dur time.Duration) ([]Sample, error) {
	p, err := paramsFor(r)
	if err != nil {
		return nil, err
	}
	if dur < 0 {
		return nil, fmt.Errorf("imu: negative duration %v", dur)
	}
	step := time.Second / time.Duration(g.rateHz)
	n := int(dur / step)
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		off := start + time.Duration(i)*step
		t := off.Seconds()
		var s Sample
		s.Offset = off
		for ax := 0; ax < 3; ax++ {
			s.Accel[ax] = g.rng.NormFloat64() * p.accelNoise
			s.Gyro[ax] = g.rng.NormFloat64() * p.gyroNoise
		}
		if p.stepAmp > 0 {
			// Vertical step oscillation plus a weaker fore-aft
			// component, as in walking traces.
			s.Accel[2] += p.stepAmp * math.Sin(2*math.Pi*p.stepHz*t)
			s.Accel[0] += 0.4 * p.stepAmp * math.Sin(2*math.Pi*p.stepHz*t+math.Pi/3)
		}
		if p.panRate > 0 {
			s.Gyro[1] += p.panRate
		}
		out = append(out, s)
	}
	return out, nil
}

// DetectorConfig tunes the motion detector. The thresholds separate
// "scene stable" regimes (stationary, handheld) from "scene changing"
// regimes (walking, panning).
type DetectorConfig struct {
	// Window is the sliding statistics window.
	Window time.Duration
	// AccelVarThreshold is the maximum accel-magnitude variance
	// ((m/s²)²) considered stationary.
	AccelVarThreshold float64
	// GyroMeanThreshold is the maximum mean gyro magnitude (rad/s)
	// considered stationary.
	GyroMeanThreshold float64
	// MaxRotation is the maximum integrated rotation (radians) since
	// the last Mark before reuse is disallowed.
	MaxRotation float64
}

// Validate reports whether the configuration is usable.
func (c DetectorConfig) Validate() error {
	if c.Window <= 0 {
		return fmt.Errorf("imu: window must be positive, got %v", c.Window)
	}
	if c.AccelVarThreshold <= 0 {
		return fmt.Errorf("imu: accel variance threshold must be positive, got %v", c.AccelVarThreshold)
	}
	if c.GyroMeanThreshold <= 0 {
		return fmt.Errorf("imu: gyro threshold must be positive, got %v", c.GyroMeanThreshold)
	}
	if c.MaxRotation <= 0 {
		return fmt.Errorf("imu: max rotation must be positive, got %v", c.MaxRotation)
	}
	return nil
}

// DefaultDetectorConfig returns thresholds tuned to the generator's
// regime statistics: stationary and handheld pass, walking and panning
// fail.
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{
		Window:            500 * time.Millisecond,
		AccelVarThreshold: 0.12,
		GyroMeanThreshold: 0.12,
		MaxRotation:       0.15,
	}
}

// State is the detector's current assessment.
type State struct {
	// Stationary reports whether the window statistics are below both
	// thresholds.
	Stationary bool
	// RotationSinceMark is the integrated |gyro| since the last Mark,
	// in radians.
	RotationSinceMark float64
	// AccelVariance is the accel-magnitude variance over the window.
	AccelVariance float64
	// GyroMean is the mean gyro magnitude over the window.
	GyroMean float64
	// Samples is the number of samples in the window.
	Samples int
}

// Detector maintains sliding-window motion statistics over a sample
// stream. Detector is not safe for concurrent use; each device pipeline
// owns one.
type Detector struct {
	cfg DetectorConfig
	// base keeps the configured thresholds so SetStrictness scales from
	// the original values, not compounding on itself.
	base     DetectorConfig
	window   []Sample
	rotation float64
	lastOff  time.Duration
	started  bool
}

// NewDetector builds a detector with cfg.
func NewDetector(cfg DetectorConfig) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg, base: cfg}, nil
}

// SetStrictness scales the reuse thresholds to scale× their configured
// values: 1 restores the configured gate, smaller values demand the
// device be stiller (and have rotated less) before the gate may reuse.
// Scales outside (0, 1] are ignored. Like every Detector method, the
// caller synchronizes.
func (d *Detector) SetStrictness(scale float64) {
	if scale <= 0 || scale > 1 {
		return
	}
	d.cfg.AccelVarThreshold = d.base.AccelVarThreshold * scale
	d.cfg.GyroMeanThreshold = d.base.GyroMeanThreshold * scale
	d.cfg.MaxRotation = d.base.MaxRotation * scale
}

// Observe feeds one sample. Samples must arrive in non-decreasing
// Offset order; out-of-order samples are dropped.
func (d *Detector) Observe(s Sample) {
	if d.started && s.Offset < d.lastOff {
		return
	}
	if d.started {
		dt := (s.Offset - d.lastOff).Seconds()
		d.rotation += s.GyroMagnitude() * dt
	}
	d.started = true
	d.lastOff = s.Offset
	d.window = append(d.window, s)
	cutoff := s.Offset - d.cfg.Window
	trim := 0
	for trim < len(d.window) && d.window[trim].Offset < cutoff {
		trim++
	}
	if trim > 0 {
		d.window = append(d.window[:0], d.window[trim:]...)
	}
}

// ObserveAll feeds a batch of samples.
func (d *Detector) ObserveAll(ss []Sample) {
	for _, s := range ss {
		d.Observe(s)
	}
}

// Mark resets the rotation integrator. The pipeline calls Mark whenever
// a fresh recognition result is produced, so RotationSinceMark measures
// how far the camera has turned away from the last recognized scene.
func (d *Detector) Mark() { d.rotation = 0 }

// State returns the current assessment. With fewer than two samples in
// the window the detector conservatively reports non-stationary.
func (d *Detector) State() State {
	st := State{RotationSinceMark: d.rotation, Samples: len(d.window)}
	if len(d.window) < 2 {
		return st
	}
	var sum, sumSq, gyro float64
	for _, s := range d.window {
		m := s.AccelMagnitude()
		sum += m
		sumSq += m * m
		gyro += s.GyroMagnitude()
	}
	n := float64(len(d.window))
	mean := sum / n
	st.AccelVariance = sumSq/n - mean*mean
	if st.AccelVariance < 0 {
		st.AccelVariance = 0
	}
	st.GyroMean = gyro / n
	st.Stationary = st.AccelVariance <= d.cfg.AccelVarThreshold &&
		st.GyroMean <= d.cfg.GyroMeanThreshold
	return st
}

// AllowReuse reports whether the inertial gate permits reusing the last
// recognition result: the device is stationary and has not rotated past
// MaxRotation since the result was produced.
func (d *Detector) AllowReuse() bool {
	st := d.State()
	return st.Stationary && st.RotationSinceMark <= d.cfg.MaxRotation && st.Samples >= 2
}
