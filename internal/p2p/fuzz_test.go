package p2p

import (
	"testing"
	"time"

	"approxcache/internal/feature"
)

// FuzzDecode exercises the wire decoder with arbitrary bytes: it must
// never panic, and anything it accepts must re-encode and re-decode to
// the same kind (round-trip stability).
func FuzzDecode(f *testing.F) {
	// Seed corpus: every message kind plus hostile shapes.
	seeds := []Message{
		Query{Vec: feature.Vector{1, 2, 3}, K: 4},
		QueryResp{Found: true, Label: "class-1", Confidence: 0.5, Distance: 0.1},
		Gossip{Vec: feature.Vector{0.5}, Label: "x", Confidence: 1, SavedCost: time.Second},
		Ack{},
		Ping{From: "a"},
		Pong{From: "b", Entries: 7},
		DigestReq{},
		DigestResp{Digest: Digest{Centroids: []feature.Vector{{1, 0}, {0, 1}}}},
	}
	for _, m := range seeds {
		b, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Add([]byte{byte(KindQuery), 4, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		re, err := Encode(msg)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		msg2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		if msg.MsgKind() != msg2.MsgKind() {
			t.Fatalf("kind changed across round trip: %v vs %v",
				msg.MsgKind(), msg2.MsgKind())
		}
	})
}
