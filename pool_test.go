package approxcache_test

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"approxcache"
	"approxcache/internal/testutil"
)

// stubClassifier implements Classifier but not BatchClassifier, to
// exercise the BatchSize capability check.
type stubClassifier struct{ approxcache.Classifier }

func newPool(t *testing.T, sessions int, w *approxcache.Workload, opts approxcache.Options) *approxcache.Pool {
	t.Helper()
	clf, err := approxcache.NewSimulatedClassifier(approxcache.MobileNetV2, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Clock == nil {
		opts.Clock = approxcache.NewVirtualClock()
	}
	p, err := approxcache.NewPool(sessions, clf, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestNewPoolValidation(t *testing.T) {
	if _, err := approxcache.NewPool(2, nil, approxcache.Options{}); err == nil {
		t.Fatal("nil classifier accepted")
	}
	w := testWorkload(t, 10)
	clf, err := approxcache.NewSimulatedClassifier(approxcache.MobileNetV2, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := approxcache.NewPool(0, clf, approxcache.Options{}); err == nil {
		t.Fatal("pool of 0 sessions accepted")
	}
	// BatchSize requires batch-capable inference.
	if _, err := approxcache.NewPool(2, stubClassifier{clf}, approxcache.Options{BatchSize: 4}); err == nil {
		t.Fatal("BatchSize accepted for a classifier without InferBatch")
	}
}

// TestPoolConcurrentSessions drives the full serving-scale facade —
// sharded store, micro-batcher, N concurrent streams — under -race.
func TestPoolConcurrentSessions(t *testing.T) {
	const sessions = 4
	w := testWorkload(t, 40)
	p := newPool(t, sessions, w, approxcache.Options{
		Shards:    4,
		BatchSize: 4,
		BatchWait: time.Millisecond,
	})
	if p.Size() != sessions || len(p.Sessions()) != sessions {
		t.Fatalf("size = %d, want %d", p.Size(), sessions)
	}
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c := p.Session(s)
			prev := time.Duration(0)
			for _, fr := range w.Frames {
				win := w.IMUWindow(prev, fr.Offset)
				prev = fr.Offset
				if _, err := c.ProcessWithTruth(fr.Image, win, approxcache.LabelOf(fr.Class)); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if got := p.Stats().Frames(); got != sessions*len(w.Frames) {
		t.Fatalf("shared scoreboard saw %d frames, want %d", got, sessions*len(w.Frames))
	}
	if p.Len() == 0 {
		t.Fatal("shared store is empty")
	}
	shards := p.ShardStats()
	if len(shards) != 4 {
		t.Fatalf("%d shard stats, want 4", len(shards))
	}
	var entries int
	for _, sh := range shards {
		entries += sh.Entries
	}
	if entries != p.Len() {
		t.Fatalf("shard entries sum %d != store len %d", entries, p.Len())
	}
	bs, ok := p.BatcherStats()
	if !ok || bs.Frames == 0 {
		t.Fatalf("batcher stats = %+v ok=%v", bs, ok)
	}
	// Every session's stats handle is the shared scoreboard.
	for s := 0; s < sessions; s++ {
		if p.Session(s).Stats() != p.Stats() {
			t.Fatalf("session %d has a private scoreboard", s)
		}
	}
}

// TestPoolUnshardedUnbatched: the zero-valued serving options still
// yield a working pool (single-shard store, no batcher).
func TestPoolUnshardedUnbatched(t *testing.T) {
	w := testWorkload(t, 10)
	p := newPool(t, 2, w, approxcache.Options{})
	replay(t, p.Session(0), w)
	if p.ShardStats() != nil {
		t.Fatal("unsharded pool reported shard stats")
	}
	if _, ok := p.BatcherStats(); ok {
		t.Fatal("unbatched pool reported batcher stats")
	}
	if p.Len() == 0 {
		t.Fatal("store empty after replay")
	}
}

// TestPoolShutdownRace drives sessions mid-Process against a
// concurrent snapshot save and the pool shutdown, under -race. A
// Process that loses the race must either succeed (ladder absorbed the
// refusal) or fail with the typed ErrBatcherClosed — never panic or
// return an untyped error — and the batcher goroutine must not leak.
func TestPoolShutdownRace(t *testing.T) {
	const sessions = 4
	w := testWorkload(t, 30)
	checkLeak := testutil.LeakGuard(t, 2)
	clf, err := approxcache.NewSimulatedClassifier(approxcache.MobileNetV2, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := approxcache.NewPool(sessions, clf, approxcache.Options{
		Shards:    4,
		BatchSize: 4,
		BatchWait: time.Millisecond,
		Clock:     approxcache.NewVirtualClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c := p.Session(s)
			for round := 0; round < 3; round++ {
				prev := time.Duration(0)
				for _, fr := range w.Frames {
					win := w.IMUWindow(prev, fr.Offset)
					prev = fr.Offset
					_, err := c.Process(fr.Image, win)
					if err != nil && !errors.Is(err, approxcache.ErrBatcherClosed) {
						t.Errorf("session %d: untyped mid-shutdown error: %v", s, err)
						return
					}
				}
			}
		}(s)
	}
	// The snapshot save races both the streams and the shutdown.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := p.Session(0).SaveSnapshot(io.Discard); err != nil {
			t.Errorf("snapshot save during shutdown: %v", err)
		}
	}()
	time.Sleep(2 * time.Millisecond) // let the streams get mid-Process
	p.Close()
	wg.Wait()
	p.Close() // second Close is a no-op
	// The micro-batcher's flush goroutine must have exited.
	checkLeak()
}

// TestShardedSnapshotFacade: a sharded cache's snapshot warm-starts an
// unsharded one and vice versa — the wire format carries entries, not
// topology.
func TestShardedSnapshotFacade(t *testing.T) {
	w := testWorkload(t, 60)
	sharded := newCache(t, w, approxcache.Options{Shards: 4})
	replay(t, sharded, w)
	if sharded.Len() == 0 {
		t.Fatal("sharded cache empty after replay")
	}
	var buf bytes.Buffer
	if err := sharded.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	plain := newCache(t, w, approxcache.Options{})
	if n, err := plain.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil || n != sharded.Len() {
		t.Fatalf("plain load = %d, %v; want %d", n, err, sharded.Len())
	}
	var back bytes.Buffer
	if err := plain.SaveSnapshot(&back); err != nil {
		t.Fatal(err)
	}
	sharded2 := newCache(t, w, approxcache.Options{Shards: 8})
	if n, err := sharded2.LoadSnapshot(&back); err != nil || n != plain.Len() {
		t.Fatalf("sharded reload = %d, %v; want %d", n, err, plain.Len())
	}
}
