package dnn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"approxcache/internal/metrics"
	"approxcache/internal/vision"
)

// Typed overload errors. Callers (the engine's degradation ladder, the
// admission controller) dispatch on these rather than string-matching.
var (
	// ErrBatcherClosed is returned by Infer/InferDeadline after Close.
	// The behavior is deliberately explicit: a closed batcher refuses
	// work instead of silently falling through to unbatched inference,
	// so a shutdown race surfaces as a typed error the engine's
	// degradation ladder can absorb.
	ErrBatcherClosed = errors.New("dnn: batcher closed")
	// ErrQueueFull is returned when the bounded pending queue refuses a
	// frame. The request never reached the accelerator.
	ErrQueueFull = errors.New("dnn: batcher queue full")
	// ErrExpiredInQueue is returned when a frame's deadline passed
	// while it waited in the pending queue (stale-drop) or had already
	// passed on arrival. The accelerator never saw it.
	ErrExpiredInQueue = errors.New("dnn: request expired in queue")
)

// IsOverloadError reports whether err is a queue-pressure signal
// (ErrQueueFull or ErrExpiredInQueue) — a request the accelerator never
// processed, as opposed to a classifier failure. The watchdog passes
// these through without charging its breaker, and the admission
// controller treats them as backoff signals.
func IsOverloadError(err error) bool {
	return errors.Is(err, ErrQueueFull) || errors.Is(err, ErrExpiredInQueue)
}

// DeadlineInferrer is a classifier front that accepts a per-request
// wall-clock deadline. The batcher implements it: frames whose deadline
// passes while they sit in the pending queue are dropped at dispatch
// time instead of occupying the accelerator.
type DeadlineInferrer interface {
	InferDeadline(im *vision.Image, deadline time.Time) (Inference, error)
}

// BatcherConfig tunes the micro-batching scheduler.
type BatcherConfig struct {
	// MaxBatch is the largest batch dispatched in one invocation. A
	// batch dispatches immediately when it fills.
	MaxBatch int
	// MaxWait bounds how long the first frame of a batch waits for
	// company before the batch dispatches anyway (wall-clock: batching
	// trades a bounded real delay for amortized model cost).
	MaxWait time.Duration
	// MaxPending bounds the frames admitted into the batcher and not
	// yet completed (queued plus dispatched-in-flight). Above the bound
	// Infer returns ErrQueueFull immediately instead of queueing
	// without limit in front of a saturated accelerator. Zero means the
	// default bound (8×MaxBatch); negative means unbounded, preserving
	// the pre-overload-protection behavior.
	MaxPending int
}

// DefaultBatcherConfig returns the production batching policy: up to 8
// frames or 5 ms, whichever comes first, with the default queue bound.
func DefaultBatcherConfig() BatcherConfig {
	return BatcherConfig{MaxBatch: 8, MaxWait: 5 * time.Millisecond}
}

// Validate reports whether the configuration is usable.
func (c BatcherConfig) Validate() error {
	if c.MaxBatch <= 0 {
		return fmt.Errorf("dnn: MaxBatch must be positive, got %d", c.MaxBatch)
	}
	if c.MaxWait <= 0 {
		return fmt.Errorf("dnn: MaxWait must be positive, got %v", c.MaxWait)
	}
	return nil
}

// bound returns the effective in-flight bound, or 0 for unbounded.
func (c BatcherConfig) bound() int {
	if c.MaxPending < 0 {
		return 0
	}
	if c.MaxPending == 0 {
		return 8 * c.MaxBatch
	}
	return c.MaxPending
}

// batchCall is one caller's slot in a pending batch.
type batchCall struct {
	im       *vision.Image
	deadline time.Time // zero means no deadline
	done     chan struct{}
	inf      Inference
	err      error
}

// Batcher coalesces concurrent Infer calls into bounded batches
// against a BatchClassifier. A batch dispatches when it reaches
// MaxBatch frames (full flush) or when its oldest frame has waited
// MaxWait (deadline flush). Single callers therefore pay at most
// MaxWait extra latency; saturated callers get near-BatchLatency
// amortization. Batcher implements the engine-facing classifier
// interface (Infer + Profile), so it drops in front of the watchdog
// unchanged, and DeadlineInferrer for deadline-aware callers.
//
// Dispatch runs on the caller's goroutine for full flushes and on the
// timer goroutine for deadline flushes; the pending queue is swapped
// out under the mutex either way, so a batch is dispatched exactly
// once. Frames whose request deadline has passed by dispatch time are
// stale-dropped: completed with ErrExpiredInQueue without touching the
// model. After Close, Infer returns ErrBatcherClosed.
type Batcher struct {
	cfg   BatcherConfig
	inner BatchClassifier

	mu       sync.Mutex
	pending  []*batchCall
	inflight int    // admitted and not yet completed (queued + dispatched)
	gen      uint64 // incremented per flush; lets a stale timer no-op
	timer    *time.Timer
	closed   bool

	batches         atomic.Int64
	frames          atomic.Int64
	sizeSum         atomic.Int64
	fullFlushes     atomic.Int64
	deadlineFlushes atomic.Int64
	expiredDrops    atomic.Int64
	overflows       atomic.Int64
}

// NewBatcher builds a micro-batching front for inner.
func NewBatcher(cfg BatcherConfig, inner BatchClassifier) (*Batcher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if inner == nil {
		return nil, fmt.Errorf("dnn: nil batch classifier")
	}
	return &Batcher{cfg: cfg, inner: inner}, nil
}

// Profile returns the wrapped model's profile.
func (b *Batcher) Profile() Profile { return b.inner.Profile() }

// Infer submits im and blocks until its batch completes.
func (b *Batcher) Infer(im *vision.Image) (Inference, error) {
	return b.InferDeadline(im, time.Time{})
}

// InferDeadline submits im with a wall-clock deadline and blocks until
// its batch completes or the frame is stale-dropped. A zero deadline
// means no deadline. Frames already expired on arrival, and frames
// whose deadline passes while they wait in the pending queue, complete
// with ErrExpiredInQueue without occupying the accelerator.
func (b *Batcher) InferDeadline(im *vision.Image, deadline time.Time) (Inference, error) {
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		b.expiredDrops.Add(1)
		return Inference{}, ErrExpiredInQueue
	}
	call := &batchCall{im: im, deadline: deadline, done: make(chan struct{})}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return Inference{}, ErrBatcherClosed
	}
	if bound := b.cfg.bound(); bound > 0 && b.inflight >= bound {
		b.mu.Unlock()
		b.overflows.Add(1)
		return Inference{}, ErrQueueFull
	}
	b.inflight++
	b.pending = append(b.pending, call)
	if len(b.pending) >= b.cfg.MaxBatch {
		batch := b.takeLocked()
		b.fullFlushes.Add(1)
		b.mu.Unlock()
		b.dispatch(batch)
		<-call.done
		return call.inf, call.err
	}
	if len(b.pending) == 1 {
		gen := b.gen
		b.timer = time.AfterFunc(b.cfg.MaxWait, func() { b.deadline(gen) })
	}
	b.mu.Unlock()

	<-call.done
	return call.inf, call.err
}

// takeLocked swaps out the pending queue and advances the generation
// so any armed deadline timer for it becomes a no-op.
func (b *Batcher) takeLocked() []*batchCall {
	batch := b.pending
	b.pending = nil
	b.gen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// deadline fires when a batch's oldest frame has waited MaxWait.
func (b *Batcher) deadline(gen uint64) {
	b.mu.Lock()
	if b.gen != gen || len(b.pending) == 0 {
		b.mu.Unlock()
		return // the batch it was armed for already flushed full
	}
	batch := b.takeLocked()
	b.deadlineFlushes.Add(1)
	b.mu.Unlock()
	b.dispatch(batch)
}

// complete finishes one call and releases its in-flight slot.
func (b *Batcher) complete(c *batchCall, inf Inference, err error) {
	c.inf = inf
	c.err = err
	close(c.done)
	b.mu.Lock()
	b.inflight--
	b.mu.Unlock()
}

// dispatch runs one batch through the model and completes its calls.
// Frames whose request deadline has already passed are stale-dropped
// here — the whole point of checking at dispatch time rather than
// enqueue time is that queueing delay is exactly what blows deadlines
// under overload.
func (b *Batcher) dispatch(batch []*batchCall) {
	if len(batch) == 0 {
		return
	}
	live := batch[:0]
	now := time.Now()
	for _, c := range batch {
		if !c.deadline.IsZero() && !now.Before(c.deadline) {
			b.expiredDrops.Add(1)
			b.complete(c, Inference{}, ErrExpiredInQueue)
			continue
		}
		live = append(live, c)
	}
	if len(live) == 0 {
		return
	}
	b.batches.Add(1)
	b.frames.Add(int64(len(live)))
	b.sizeSum.Add(int64(len(live)))
	ims := make([]*vision.Image, len(live))
	for i, c := range live {
		ims[i] = c.im
	}
	infs, err := b.inner.InferBatch(ims)
	for i, c := range live {
		if err != nil {
			b.complete(c, Inference{}, err)
		} else {
			b.complete(c, infs[i], nil)
		}
	}
}

// Close flushes any pending batch and stops accepting work. Subsequent
// Infer/InferDeadline calls return ErrBatcherClosed; callers racing
// Close either get their batch's result or the typed error, never a
// hang. Close is safe to call more than once.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	batch := b.takeLocked()
	b.mu.Unlock()
	b.dispatch(batch)
}

// Stats returns a snapshot of the batcher's dispatch counters.
func (b *Batcher) Stats() metrics.BatcherStats {
	return metrics.BatcherStats{
		Batches:         b.batches.Load(),
		Frames:          b.frames.Load(),
		SizeSum:         b.sizeSum.Load(),
		FullFlushes:     b.fullFlushes.Load(),
		DeadlineFlushes: b.deadlineFlushes.Load(),
		ExpiredDrops:    b.expiredDrops.Load(),
		Overflows:       b.overflows.Load(),
	}
}
