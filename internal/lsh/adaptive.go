package lsh

import (
	"fmt"
	"sync"

	"approxcache/internal/feature"
)

// NewHyperplaneCentered is NewHyperplane with projections centered on
// center: bits are the signs of ⟨plane, v−center⟩. Centering matters
// when the data lives off-origin (image descriptors are all-positive,
// so uncentered random hyperplanes see correlated signs and pile items
// into a few buckets).
func NewHyperplaneCentered(dim, bits, tables int, seed int64, center feature.Vector) (*HyperplaneIndex, error) {
	return NewHyperplaneCenteredTuned(dim, bits, tables, seed, center, Tuning{})
}

// NewHyperplaneCenteredTuned is NewHyperplaneCentered with an explicit
// candidate-pipeline tuning. The center applies to sketch projections
// too, so sketches stay meaningful for off-origin data.
func NewHyperplaneCenteredTuned(dim, bits, tables int, seed int64, center feature.Vector, tun Tuning) (*HyperplaneIndex, error) {
	x, err := NewHyperplaneTuned(dim, bits, tables, seed, tun)
	if err != nil {
		return nil, err
	}
	if center != nil {
		if len(center) != dim {
			return nil, fmt.Errorf("lsh: center dim %d, index dim %d: %w",
				len(center), dim, feature.ErrDimensionMismatch)
		}
		x.center = center.Clone()
	}
	return x, nil
}

// AdaptiveConfig tunes the adaptive index's rebuild policy.
type AdaptiveConfig struct {
	// Dim, Bits, Tables, Seed shape the underlying hyperplane index.
	Dim, Bits, Tables int
	Seed              int64
	// CheckEvery is how many inserts pass between skew checks.
	CheckEvery int
	// SkewThreshold triggers a rebuild when the largest bucket holds
	// more than this fraction of all items (0 < t <= 1).
	SkewThreshold float64
	// Tuning configures the candidate pipeline of the underlying index
	// (and of every rebuilt index). Zero value = classic pipeline.
	Tuning Tuning
}

// Validate reports whether the configuration is usable.
func (c AdaptiveConfig) Validate() error {
	if c.Dim <= 0 || c.Bits <= 0 || c.Bits > MaxSignatureBits || c.Tables <= 0 {
		return fmt.Errorf("lsh: bad adaptive shape dim=%d bits=%d tables=%d",
			c.Dim, c.Bits, c.Tables)
	}
	if c.CheckEvery <= 0 {
		return fmt.Errorf("lsh: CheckEvery must be positive, got %d", c.CheckEvery)
	}
	if c.SkewThreshold <= 0 || c.SkewThreshold > 1 {
		return fmt.Errorf("lsh: SkewThreshold must be in (0,1], got %v", c.SkewThreshold)
	}
	return c.Tuning.Validate()
}

// DefaultAdaptiveConfig returns the production rebuild policy for a
// dim-dimensional index.
func DefaultAdaptiveConfig(dim int) AdaptiveConfig {
	return AdaptiveConfig{
		Dim:           dim,
		Bits:          12,
		Tables:        4,
		Seed:          1,
		CheckEvery:    64,
		SkewThreshold: 0.5,
	}
}

// AdaptiveIndex wraps a hyperplane index and rebuilds it — re-seeding
// the hyperplanes and centering projections on the observed data mean —
// whenever bucket occupancy skews past the configured threshold. This
// is the FoggyCache-style adaptive LSH: the index tracks the data
// distribution instead of assuming a centered one.
type AdaptiveIndex struct {
	cfg AdaptiveConfig

	mu       sync.Mutex
	inner    *HyperplaneIndex
	inserts  int
	rebuilds int
}

var _ Index = (*AdaptiveIndex)(nil)

// NewAdaptive builds an adaptive index.
func NewAdaptive(cfg AdaptiveConfig) (*AdaptiveIndex, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inner, err := NewHyperplaneTuned(cfg.Dim, cfg.Bits, cfg.Tables, cfg.Seed, cfg.Tuning)
	if err != nil {
		return nil, err
	}
	return &AdaptiveIndex{cfg: cfg, inner: inner}, nil
}

// Rebuilds returns how many times the index has re-tuned itself.
func (a *AdaptiveIndex) Rebuilds() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rebuilds
}

// Len returns the number of indexed vectors.
func (a *AdaptiveIndex) Len() int {
	a.mu.Lock()
	inner := a.inner
	a.mu.Unlock()
	return inner.Len()
}

// Stats returns the current underlying occupancy statistics.
func (a *AdaptiveIndex) Stats() Stats {
	a.mu.Lock()
	inner := a.inner
	a.mu.Unlock()
	return inner.Stats()
}

// Insert adds (id, v), possibly triggering a rebuild.
func (a *AdaptiveIndex) Insert(id ID, v feature.Vector) error {
	a.mu.Lock()
	inner := a.inner
	a.inserts++
	check := a.inserts%a.cfg.CheckEvery == 0
	a.mu.Unlock()
	if err := inner.Insert(id, v); err != nil {
		return err
	}
	if check {
		a.maybeRebuild()
	}
	return nil
}

// Remove deletes id.
func (a *AdaptiveIndex) Remove(id ID) {
	a.mu.Lock()
	inner := a.inner
	a.mu.Unlock()
	inner.Remove(id)
}

// Nearest returns up to k approximate nearest neighbors of q.
func (a *AdaptiveIndex) Nearest(q feature.Vector, k int) ([]Neighbor, error) {
	a.mu.Lock()
	inner := a.inner
	a.mu.Unlock()
	return inner.Nearest(q, k)
}

// NearestInto is Nearest writing into dst's backing array.
func (a *AdaptiveIndex) NearestInto(q feature.Vector, k int, dst []Neighbor) ([]Neighbor, error) {
	a.mu.Lock()
	inner := a.inner
	a.mu.Unlock()
	return inner.NearestInto(q, k, dst)
}

// Candidates returns q's LSH candidate set.
func (a *AdaptiveIndex) Candidates(q feature.Vector) ([]ID, error) {
	a.mu.Lock()
	inner := a.inner
	a.mu.Unlock()
	return inner.Candidates(q)
}

// CandidatesInto is Candidates appending into dst's backing array.
func (a *AdaptiveIndex) CandidatesInto(q feature.Vector, dst []ID) ([]ID, error) {
	a.mu.Lock()
	inner := a.inner
	a.mu.Unlock()
	return inner.CandidatesInto(q, dst)
}

// maybeRebuild checks occupancy skew and rebuilds if needed.
func (a *AdaptiveIndex) maybeRebuild() {
	a.mu.Lock()
	inner := a.inner
	a.mu.Unlock()

	st := inner.Stats()
	if st.Items < a.cfg.CheckEvery {
		return
	}
	if float64(st.MaxBucket) <= a.cfg.SkewThreshold*float64(st.Items) {
		return
	}

	// Rebuild: fresh hyperplanes, centered on the data mean.
	items := inner.Items()
	if len(items) == 0 {
		return
	}
	center := make(feature.Vector, a.cfg.Dim)
	for _, it := range items {
		for d := range center {
			center[d] += it.Vec[d]
		}
	}
	for d := range center {
		center[d] /= float64(len(items))
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inner != inner {
		return // lost a race with another rebuild
	}
	seed := a.cfg.Seed + int64(a.rebuilds+1)*7919
	fresh, err := NewHyperplaneCenteredTuned(a.cfg.Dim, a.cfg.Bits, a.cfg.Tables, seed, center, a.cfg.Tuning)
	if err != nil {
		return // static config was validated; unreachable in practice
	}
	for _, it := range items {
		if err := fresh.Insert(it.ID, it.Vec); err != nil {
			return
		}
	}
	a.inner = fresh
	a.rebuilds++
}

// Item is one indexed (id, vector) pair.
type Item struct {
	ID  ID
	Vec feature.Vector
}

// Items returns copies of all indexed vectors.
func (x *HyperplaneIndex) Items() []Item {
	x.mu.RLock()
	defer x.mu.RUnlock()
	out := make([]Item, 0, len(x.idSlot))
	for id, slot := range x.idSlot {
		out = append(out, Item{ID: id, Vec: x.slotVec(slot).Clone()})
	}
	return out
}
