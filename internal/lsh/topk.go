package lsh

// Bounded top-k selection for the query hot path. The previous
// implementation collected every candidate and fully sorted the set per
// query; for k ≪ candidates that is wasted work and a fresh allocation
// per lookup. kSelector keeps only the k best neighbors seen so far —
// by insertion into a small sorted buffer for typical cache k, or a
// max-heap once k is large — and produces exactly the same result as
// sort-everything-then-truncate under the (distance, ID) total order.

// insertionSelectK is the largest k served by the sorted-buffer
// strategy; beyond it the selector switches to a max-heap, whose
// replace-root is O(log k) instead of O(k).
const insertionSelectK = 32

// neighborWorse reports whether a ranks strictly after b: farther, or
// equally far with a larger ID. IDs are unique within a query, so this
// is a strict total order and top-k selection has a unique answer.
func neighborWorse(a, b Neighbor) bool {
	if a.Distance != b.Distance {
		return a.Distance > b.Distance
	}
	return a.ID > b.ID
}

// NeighborWorse exposes the selection order for callers that merge
// per-shard result lists: a cross-shard merge using the same total
// order reproduces exactly what one unsharded index would return.
func NeighborWorse(a, b Neighbor) bool { return neighborWorse(a, b) }

// kSelector accumulates neighbors, retaining the k best. The zero value
// is not usable; call reset first. buf never exceeds k entries, so a
// caller-provided buffer of capacity k makes the whole selection
// allocation-free.
type kSelector struct {
	k      int
	buf    []Neighbor
	heaped bool
}

// reset prepares the selector to keep the k best, accumulating into
// buf's backing array.
func (s *kSelector) reset(k int, buf []Neighbor) {
	s.k = k
	s.buf = buf[:0]
	s.heaped = false
}

// add offers one neighbor to the selection.
func (s *kSelector) add(n Neighbor) {
	if len(s.buf) < s.k {
		s.buf = append(s.buf, n)
		if s.k <= insertionSelectK {
			// Keep buf sorted ascending so the worst is always last.
			for i := len(s.buf) - 1; i > 0 && neighborWorse(s.buf[i-1], s.buf[i]); i-- {
				s.buf[i-1], s.buf[i] = s.buf[i], s.buf[i-1]
			}
		} else if len(s.buf) == s.k {
			s.heapify()
		}
		return
	}
	if s.heaped {
		if neighborWorse(n, s.buf[0]) {
			return // not better than the current worst
		}
		s.buf[0] = n
		s.siftDown(0, len(s.buf))
		return
	}
	if neighborWorse(n, s.buf[len(s.buf)-1]) {
		return
	}
	s.buf[len(s.buf)-1] = n
	for i := len(s.buf) - 1; i > 0 && neighborWorse(s.buf[i-1], s.buf[i]); i-- {
		s.buf[i-1], s.buf[i] = s.buf[i], s.buf[i-1]
	}
}

// finish returns the selected neighbors in increasing (distance, ID)
// order. The returned slice aliases the reset buffer.
func (s *kSelector) finish() []Neighbor {
	if !s.heaped {
		if s.k <= insertionSelectK {
			return s.buf // insertion path keeps buf sorted
		}
		// Large k that never filled: buf is raw append order.
		s.heapify()
	}
	// Heap-sort in place: repeatedly move the max to the end.
	for end := len(s.buf) - 1; end > 0; end-- {
		s.buf[0], s.buf[end] = s.buf[end], s.buf[0]
		s.siftDown(0, end)
	}
	return s.buf
}

// heapify turns buf into a max-heap under neighborWorse.
func (s *kSelector) heapify() {
	s.heaped = true
	for i := len(s.buf)/2 - 1; i >= 0; i-- {
		s.siftDown(i, len(s.buf))
	}
}

// siftDown restores the max-heap property for the subtree rooted at i,
// considering only buf[:end].
func (s *kSelector) siftDown(i, end int) {
	for {
		l := 2*i + 1
		if l >= end {
			return
		}
		worst := l
		if r := l + 1; r < end && neighborWorse(s.buf[r], s.buf[l]) {
			worst = r
		}
		if !neighborWorse(s.buf[worst], s.buf[i]) {
			return
		}
		s.buf[i], s.buf[worst] = s.buf[worst], s.buf[i]
		i = worst
	}
}
