package video

import (
	"fmt"
	"testing"

	"approxcache/internal/vision"
)

func flatImage(w, h int, v float64) *vision.Image {
	im := vision.NewImage(w, h)
	for i := range im.Pix {
		im.Pix[i] = v
	}
	return im
}

func TestNewKeyframeLibraryValidation(t *testing.T) {
	if _, err := NewKeyframeLibrary(DiffGateConfig{}, 4); err == nil {
		t.Fatal("bad gate config accepted")
	}
	if _, err := NewKeyframeLibrary(DefaultDiffGateConfig(), 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	l, err := NewKeyframeLibrary(DefaultDiffGateConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 {
		t.Fatal("fresh library not empty")
	}
}

func TestKeyframeMatchEmptyAndNil(t *testing.T) {
	l, err := NewKeyframeLibrary(DefaultDiffGateConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Match(flatImage(8, 8, 0.5)); ok {
		t.Fatal("empty library matched")
	}
	l.Push(flatImage(8, 8, 0.5), "a", 1)
	if _, ok := l.Match(nil); ok {
		t.Fatal("nil image matched")
	}
}

func TestKeyframePushIgnoresInvalid(t *testing.T) {
	l, err := NewKeyframeLibrary(DefaultDiffGateConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	l.Push(nil, "a", 1)
	l.Push(flatImage(8, 8, 0.5), "", 1)
	if l.Len() != 0 {
		t.Fatalf("invalid pushes stored: %d", l.Len())
	}
}

func TestKeyframeMatchPicksClosest(t *testing.T) {
	l, err := NewKeyframeLibrary(DefaultDiffGateConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	l.Push(flatImage(8, 8, 0.30), "dark", 1)
	l.Push(flatImage(8, 8, 0.40), "mid", 1)
	kf, ok := l.Match(flatImage(8, 8, 0.41))
	if !ok || kf.Label != "mid" {
		t.Fatalf("match = %+v ok=%v", kf, ok)
	}
	// Outside threshold of everything: no match.
	if _, ok := l.Match(flatImage(8, 8, 0.99)); ok {
		t.Fatal("far frame matched")
	}
}

func TestKeyframeEvictsOldest(t *testing.T) {
	l, err := NewKeyframeLibrary(DefaultDiffGateConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct scenes (well past the 0.13 threshold apart).
	l.Push(flatImage(8, 8, 0.10), "a", 1)
	l.Push(flatImage(8, 8, 0.50), "b", 1)
	l.Push(flatImage(8, 8, 0.90), "c", 1)
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	if _, ok := l.Match(flatImage(8, 8, 0.10)); ok {
		t.Fatal("oldest keyframe survived eviction")
	}
	if kf, ok := l.Match(flatImage(8, 8, 0.50)); !ok || kf.Label != "b" {
		t.Fatal("recent keyframe lost")
	}
}

func TestKeyframeDisplacesSameScene(t *testing.T) {
	l, err := NewKeyframeLibrary(DefaultDiffGateConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	l.Push(flatImage(8, 8, 0.50), "a", 0.8)
	l.Push(flatImage(8, 8, 0.51), "a", 0.9) // near-duplicate, same label
	if l.Len() != 1 {
		t.Fatalf("duplicate stored: len = %d", l.Len())
	}
	kf, ok := l.Match(flatImage(8, 8, 0.51))
	if !ok || kf.Confidence != 0.9 {
		t.Fatalf("refresh did not update: %+v", kf)
	}
	// Same scene, different label: the fresh result DISPLACES the
	// stale keyframe — otherwise an outdated recognition keeps
	// winning matches for this scene.
	l.Push(flatImage(8, 8, 0.50), "b", 1)
	if l.Len() != 1 {
		t.Fatalf("stale keyframe kept: len = %d", l.Len())
	}
	kf, ok = l.Match(flatImage(8, 8, 0.50))
	if !ok || kf.Label != "b" {
		t.Fatalf("stale label survived: %+v", kf)
	}
}

func TestKeyframeRefreshKeepsEntryAliveLonger(t *testing.T) {
	l, err := NewKeyframeLibrary(DefaultDiffGateConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	l.Push(flatImage(8, 8, 0.10), "a", 1)
	l.Push(flatImage(8, 8, 0.50), "b", 1)
	// Refresh "a": it becomes newest, so pushing "c" evicts "b".
	l.Push(flatImage(8, 8, 0.10), "a", 1)
	l.Push(flatImage(8, 8, 0.90), "c", 1)
	if _, ok := l.Match(flatImage(8, 8, 0.10)); !ok {
		t.Fatal("refreshed keyframe evicted")
	}
	if _, ok := l.Match(flatImage(8, 8, 0.50)); ok {
		t.Fatal("stale keyframe survived")
	}
}

func TestKeyframePushIsCopied(t *testing.T) {
	l, err := NewKeyframeLibrary(DefaultDiffGateConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	im := flatImage(8, 8, 0.5)
	l.Push(im, "a", 1)
	for i := range im.Pix {
		im.Pix[i] = 0 // mutate caller's image
	}
	if _, ok := l.Match(flatImage(8, 8, 0.5)); !ok {
		t.Fatal("library aliases caller's image")
	}
}

func TestKeyframeReset(t *testing.T) {
	l, err := NewKeyframeLibrary(DefaultDiffGateConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	l.Push(flatImage(8, 8, 0.5), "a", 1)
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("reset did not clear")
	}
}

// A capacity-K library remembers K distinct scenes; a pan cycle over K
// scenes then hits every revisit, while a single-keyframe gate misses
// them all.
func TestKeyframeLibraryBeatsSingleKeyOnPanCycle(t *testing.T) {
	scenes := []*vision.Image{
		flatImage(8, 8, 0.10),
		flatImage(8, 8, 0.40),
		flatImage(8, 8, 0.70),
	}
	lib, err := NewKeyframeLibrary(DefaultDiffGateConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewDiffGate(DefaultDiffGateConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scenes {
		lib.Push(s, fmt.Sprintf("s%d", i), 1)
		single.SetKey(s)
	}
	// Second pass over the cycle.
	libHits, singleHits := 0, 0
	for _, s := range scenes {
		if _, ok := lib.Match(s); ok {
			libHits++
		}
		if ok, _ := single.Similar(s); ok {
			singleHits++
		}
	}
	if libHits != 3 {
		t.Fatalf("library hits = %d, want 3", libHits)
	}
	if singleHits != 1 {
		t.Fatalf("single-key hits = %d, want 1 (only the last scene)", singleHits)
	}
}
