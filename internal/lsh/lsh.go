// Package lsh implements the approximate nearest-neighbor machinery the
// cache lookup path is built on: a random-hyperplane locality-sensitive
// hash index (k bits × L tables), an exact linear-scan baseline, and the
// homogenized-kNN vote (FoggyCache-style) that decides whether a cached
// result is trustworthy enough to reuse.
//
// The lookup path is the per-frame reuse check the whole system exists
// to make cheap, so both indexes are built for zero steady-state
// allocation: vectors live in a flat arena addressed by slot (no map
// chase inside distance loops), hyperplanes are one contiguous matrix
// swept by a strided dot product, per-query candidate dedup is an
// epoch-stamped visited array drawn from a pool, and ranking is bounded
// top-k selection instead of a full sort.
//
// Reads are also lock-free: writers publish immutable snapshots of the
// bucket state through an atomic pointer and reclaim recycled arena
// memory only after a grace period (see epoch.go), so a lookup never
// takes a mutex and concurrent readers never serialize on a shared
// lock word.
package lsh

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"

	"approxcache/internal/feature"
)

// ID identifies an indexed vector. IDs are assigned by the caller
// (typically the cache store).
type ID uint64

// Neighbor is one kNN search result.
type Neighbor struct {
	ID       ID
	Distance float64
}

// Index is the nearest-neighbor interface shared by the LSH index and
// the exact baseline. Implementations are safe for concurrent use.
type Index interface {
	// Insert adds (id, v) to the index, replacing any previous vector
	// under the same id.
	Insert(id ID, v feature.Vector) error
	// Remove deletes id from the index. Removing an absent id is a
	// no-op.
	Remove(id ID)
	// Nearest returns up to k neighbors of q ordered by increasing
	// distance.
	Nearest(q feature.Vector, k int) ([]Neighbor, error)
	// Len returns the number of indexed vectors.
	Len() int
}

// IntoIndex is implemented by indexes whose lookup can write results
// into a caller-provided buffer, so steady-state queries allocate
// nothing.
type IntoIndex interface {
	Index
	// NearestInto is Nearest appending into dst's backing array
	// (which may be nil). The returned slice aliases dst when its
	// capacity suffices.
	NearestInto(q feature.Vector, k int, dst []Neighbor) ([]Neighbor, error)
}

// HyperplaneIndex is a random-hyperplane (SimHash) LSH index. Each of
// the L tables hashes a vector to a B-bit signature whose bits are the
// signs of projections onto B random hyperplanes; a query is compared
// only against vectors that collide in at least one table.
type HyperplaneIndex struct {
	dim    int
	bits   int
	tables int

	// planes is the flattened hyperplane matrix: hyperplane b of table
	// t occupies planes[(t*bits+b)*dim : (t*bits+b+1)*dim], so a
	// signature is one strided sweep over contiguous memory.
	planes []float64
	// center, when non-nil, is subtracted from vectors before
	// projection (see NewHyperplaneCentered).
	center feature.Vector

	// tun configures the candidate pipeline (multi-probe, sketch
	// prefilter, quantized re-rank). The zero value keeps the classic
	// exact-bucket path byte-for-byte.
	tun Tuning
	// sketchPlanes is the dedicated sketch hyperplane matrix (row b at
	// [b*dim:(b+1)*dim]); sketchWords = SketchBits/64 is the packed
	// sketch width. Both are nil/0 when the sketch is off.
	sketchPlanes []float64
	sketchWords  int

	// wmu serializes writers (insert/remove/import). Readers never
	// touch it: they pin the published view below.
	wmu sync.Mutex
	// sides are the TWO bucket instances of the left-right scheme.
	// sides[i][t] maps a table-t signature to the arena slots holding
	// colliding vectors. Buckets hold slots, not IDs, so the distance
	// loop reads the arena directly. Exactly one side is referenced by
	// the published view at any time; the other is writer-private and
	// receives each mutation first. The two sides never share bucket
	// backing arrays (each grows its slices independently), so
	// in-place swap-deletes on the writer-private side cannot be
	// observed through the published one.
	sides [2][]map[uint64][]int32
	// active is the side the current view publishes (writer-owned).
	active int
	// arena holds slot s's vector at arena[s*dim:(s+1)*dim]. Freed
	// slots are recycled through free — but only after the grace
	// period proves no reader still holds a view referencing them;
	// slotID/slotSig are parallel per-slot metadata (slotSig[s*tables+t]
	// is slot s's signature in table t).
	arena   []float64
	slotID  []ID
	slotSig []uint64
	free    []int32
	// Tuned-pipeline per-slot arenas, parallel to arena: sketch holds
	// slot s's packed sketch at [s*sketchWords:(s+1)*sketchWords],
	// codes its int8 quantized copy at [s*dim:(s+1)*dim], quant its
	// quantization map. Empty when the corresponding mechanism is off.
	sketch []uint64
	codes  []int8
	quant  []feature.Quant
	// idSlot maps an ID to its slot. Only Insert/Remove touch it; the
	// query path never chases it.
	idSlot map[ID]int32

	// view is the published snapshot every reader runs against; epoch
	// counts publications (diagnostics and tests); arriveAt selects
	// which read indicator new readers stamp (see epoch.go).
	view     atomic.Pointer[indexView]
	epoch    atomic.Uint64
	arriveAt atomic.Uint32
	readers  [2]readIndicator
	// stripeSeq hands each new query scratch its indicator stripe.
	stripeSeq atomic.Uint32

	scratch sync.Pool // *queryScratch
	idBuf   sync.Pool // *[]ID, gather buffer for Candidates
}

var _ IntoIndex = (*HyperplaneIndex)(nil)

// indexView is one published snapshot of the index: the active bucket
// side plus the slice headers of every per-slot arena as of
// publication. All fields are immutable for the lifetime of the view
// from a reader's perspective — the buckets maps are only mutated
// again after the grace period drains every reader pinned to this
// view, arena slots referenced by these buckets are only overwritten
// after the same grace period, and growth reallocations leave the
// captured backing arrays untouched.
type indexView struct {
	buckets []map[uint64][]int32
	arena   []float64
	slotID  []ID
	sketch  []uint64
	codes   []int8
	quant   []feature.Quant
	live    int
}

// slotVec returns slot s's vector as a view into the snapshot arena.
func (v *indexView) slotVec(dim int, s int32) feature.Vector {
	off := int(s) * dim
	return feature.Vector(v.arena[off : off+dim : off+dim])
}

// slotCodes returns slot s's int8 code vector within the snapshot.
func (v *indexView) slotCodes(dim int, s int32) []int8 {
	off := int(s) * dim
	return v.codes[off : off+dim : off+dim]
}

// pin stamps the read indicator and loads the current snapshot. The
// arrival MUST precede the view load (see epoch.go invariant 1);
// callers pass the same stripe to unpin.
func (x *HyperplaneIndex) pin(stripe uint32) (*indexView, uint32) {
	vi := x.arriveAt.Load()
	x.readers[vi&1].arrive(stripe)
	return x.view.Load(), vi
}

// unpin departs the indicator pinned by pin.
func (x *HyperplaneIndex) unpin(vi, stripe uint32) {
	x.readers[vi&1].depart(stripe)
}

// publishLocked runs one write round: apply mutate to the inactive
// side, publish it as the new snapshot, advance the epoch, wait the
// grace period for every reader of the old snapshot to depart, then
// apply the same mutation to the retired side so both instances
// converge. On return no reader holds the previous snapshot, so the
// caller may recycle any slots the mutation retired. Caller holds wmu.
func (x *HyperplaneIndex) publishLocked(mutate func(side []map[uint64][]int32)) {
	next := 1 - x.active
	mutate(x.sides[next])
	x.view.Store(&indexView{
		buckets: x.sides[next],
		arena:   x.arena,
		slotID:  x.slotID,
		sketch:  x.sketch,
		codes:   x.codes,
		quant:   x.quant,
		live:    len(x.idSlot),
	})
	x.epoch.Add(1)
	x.active = next
	// Grace period: drain the indicator new readers are no longer
	// arriving at, flip arrivals, then drain the other. Every reader
	// that could have loaded the previous snapshot arrived before the
	// publish above and is therefore covered by one of the two waits.
	vi := x.arriveAt.Load()
	x.readers[1-vi&1].wait()
	x.arriveAt.Store(1 - vi&1)
	x.readers[vi&1].wait()
	mutate(x.sides[1-next])
}

// queryScratch is the reusable per-query state: an epoch-stamped
// visited array replacing the old per-query map[ID]struct{} dedup.
// Each concurrent query checks out its own scratch from the pool.
type queryScratch struct {
	visited []uint32
	epoch   uint32
	// stripe is this scratch's read-indicator stripe (epoch.go).
	// sync.Pool is per-P, so concurrent readers hold distinct
	// scratches and therefore stamp distinct stripes.
	stripe uint32

	// Tuned-pipeline scratch, sized lazily on first tuned lookup:
	// margins holds per-bit |projection| for the probed table, sorted
	// and order back the probe generator's margin argsort, heap its
	// perturbation-set frontier, qcodes the query's int8 codes, and
	// approx the quantized-stage selection buffer.
	margins []float64
	sorted  []float64
	order   []int
	heap    []probeSet
	qcodes  []int8
	approx  []Neighbor
}

// ensureTuned sizes the tuned-pipeline scratch for an index with the
// given signature width and dimensionality.
func (sc *queryScratch) ensureTuned(bits, dim int) {
	if cap(sc.margins) < bits {
		sc.margins = make([]float64, bits)
		sc.sorted = make([]float64, bits)
		sc.order = make([]int, bits)
	}
	sc.margins = sc.margins[:bits]
	sc.sorted = sc.sorted[:bits]
	sc.order = sc.order[:bits]
	if cap(sc.qcodes) < dim {
		sc.qcodes = make([]int8, dim)
	}
	sc.qcodes = sc.qcodes[:dim]
}

// begin readies the scratch for one query over nslots slots.
func (sc *queryScratch) begin(nslots int) {
	if cap(sc.visited) < nslots {
		sc.visited = make([]uint32, nslots)
		sc.epoch = 0
	}
	sc.visited = sc.visited[:nslots]
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stamps from 2^32 queries ago linger
		clear(sc.visited)
		sc.epoch = 1
	}
}

// MaxSignatureBits bounds the per-table signature width so it fits a
// uint64 bucket key.
const MaxSignatureBits = 64

// NewHyperplane builds an LSH index over dim-dimensional vectors with
// bits hyperplanes per table and tables hash tables, seeding all
// hyperplanes deterministically from seed. The candidate pipeline is
// the classic one: exact-bucket probing, full-precision distances.
func NewHyperplane(dim, bits, tables int, seed int64) (*HyperplaneIndex, error) {
	return NewHyperplaneTuned(dim, bits, tables, seed, Tuning{})
}

// NewHyperplaneTuned is NewHyperplane with an explicit candidate
// pipeline tuning (multi-probe, sketch prefilter, quantized re-rank).
// A zero Tuning reproduces NewHyperplane exactly: the table hyperplanes
// are drawn first and identically regardless of tuning, and the sketch
// hyperplanes come from a separate RNG derived from seed, so enabling
// the sketch never perturbs signatures.
func NewHyperplaneTuned(dim, bits, tables int, seed int64, tun Tuning) (*HyperplaneIndex, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("lsh: dim must be positive, got %d", dim)
	}
	if bits <= 0 || bits > MaxSignatureBits {
		return nil, fmt.Errorf("lsh: bits must be in [1,%d], got %d", MaxSignatureBits, bits)
	}
	if tables <= 0 {
		return nil, fmt.Errorf("lsh: tables must be positive, got %d", tables)
	}
	if err := tun.Validate(); err != nil {
		return nil, err
	}
	tun = tun.normalize()
	rng := rand.New(rand.NewSource(seed))
	x := &HyperplaneIndex{
		dim:         dim,
		bits:        bits,
		tables:      tables,
		planes:      make([]float64, tables*bits*dim),
		idSlot:      make(map[ID]int32),
		tun:         tun,
		sketchWords: tun.SketchBits / 64,
	}
	for side := range x.sides {
		x.sides[side] = make([]map[uint64][]int32, tables)
		for t := 0; t < tables; t++ {
			x.sides[side][t] = make(map[uint64][]int32)
		}
	}
	x.view.Store(&indexView{buckets: x.sides[0]})
	// Draw order (table, bit, dim) is part of the index's identity:
	// the same seed must yield the same hyperplanes across versions.
	for t := 0; t < tables; t++ {
		for b := 0; b < bits; b++ {
			row := x.planeRow(t, b)
			for d := range row {
				row[d] = rng.NormFloat64()
			}
		}
	}
	if tun.SketchBits > 0 {
		srng := rand.New(rand.NewSource(seed ^ sketchSeedMix))
		x.sketchPlanes = make([]float64, tun.SketchBits*dim)
		for i := range x.sketchPlanes {
			x.sketchPlanes[i] = srng.NormFloat64()
		}
		// Make every sketch hyperplane zero-sum: ⟨p, v⟩ is then
		// invariant to a uniform offset of v. Image descriptors are
		// all-positive, and without this their shared mean dominates
		// every projection, correlating all sketch signs and defanging
		// the Hamming prefilter. Zero-summing is a fixed, data-free
		// transform, so sketches stay a deterministic function of
		// (seed, SketchBits, v).
		for b := 0; b < tun.SketchBits; b++ {
			row := x.sketchPlanes[b*dim : (b+1)*dim]
			var m float64
			for _, p := range row {
				m += p
			}
			m /= float64(dim)
			for d := range row {
				row[d] -= m
			}
		}
	}
	return x, nil
}

// TuningConfig returns the index's normalized candidate-pipeline
// tuning.
func (x *HyperplaneIndex) TuningConfig() Tuning { return x.tun }

// planeRow returns hyperplane b of table t as a slice into the flat
// matrix.
func (x *HyperplaneIndex) planeRow(t, b int) []float64 {
	off := (t*x.bits + b) * x.dim
	return x.planes[off : off+x.dim : off+x.dim]
}

// Dim returns the index dimensionality.
func (x *HyperplaneIndex) Dim() int { return x.dim }

// Bits returns the per-table signature width.
func (x *HyperplaneIndex) Bits() int { return x.bits }

// Tables returns the hash-table count.
func (x *HyperplaneIndex) Tables() int { return x.tables }

// Len returns the number of indexed vectors. Lock-free: the count is
// an immutable field of the published snapshot.
func (x *HyperplaneIndex) Len() int {
	return x.view.Load().live
}

// Epoch returns the number of snapshots published so far (one per
// completed write round). Diagnostics and tests only.
func (x *HyperplaneIndex) Epoch() uint64 { return x.epoch.Load() }

// signature hashes v in table t. Caller must have validated dimensions.
//
// Bits are computed four at a time: the four dot products are
// independent chains, so interleaving them hides floating-point add
// latency. Each chain still sums dimensions in ascending order, so
// every bit is identical to the one-row-at-a-time computation.
func (x *HyperplaneIndex) signature(t int, v feature.Vector) uint64 {
	var sig uint64
	n := x.dim
	b := 0
	for ; b+4 <= x.bits; b += 4 {
		off := (t*x.bits + b) * n
		r0 := x.planes[off : off+n : off+n]
		// Re-slicing everything to len(r0) lets the compiler drop the
		// per-dimension bounds checks inside the loop.
		r1 := x.planes[off+n : off+2*n : off+2*n][:len(r0)]
		r2 := x.planes[off+2*n : off+3*n : off+3*n][:len(r0)]
		r3 := x.planes[off+3*n : off+4*n : off+4*n][:len(r0)]
		vs := v[:len(r0)]
		var d0, d1, d2, d3 float64
		if x.center == nil {
			for d, p0 := range r0 {
				vv := vs[d]
				d0 += p0 * vv
				d1 += r1[d] * vv
				d2 += r2[d] * vv
				d3 += r3[d] * vv
			}
		} else {
			ct := x.center[:len(r0)]
			for d, p0 := range r0 {
				c := vs[d] - ct[d]
				d0 += p0 * c
				d1 += r1[d] * c
				d2 += r2[d] * c
				d3 += r3[d] * c
			}
		}
		if d0 >= 0 {
			sig |= 1 << uint(b)
		}
		if d1 >= 0 {
			sig |= 1 << uint(b+1)
		}
		if d2 >= 0 {
			sig |= 1 << uint(b+2)
		}
		if d3 >= 0 {
			sig |= 1 << uint(b+3)
		}
	}
	for ; b < x.bits; b++ {
		row := x.planeRow(t, b)
		var dot float64
		if x.center == nil {
			for d, p := range row {
				dot += p * v[d]
			}
		} else {
			for d, p := range row {
				dot += p * (v[d] - x.center[d])
			}
		}
		if dot >= 0 {
			sig |= 1 << uint(b)
		}
	}
	return sig
}

// signatureMargins is signature() that additionally records each bit's
// margin — the |dot product| against its hyperplane, i.e. how close the
// query came to landing on the other side — into margins[0:bits]. The
// probe generator ranks bit flips by these margins. Bit values are
// computed with the same four-chain accumulation as signature(), so the
// returned signature is bit-identical to it.
func (x *HyperplaneIndex) signatureMargins(t int, v feature.Vector, margins []float64) uint64 {
	var sig uint64
	n := x.dim
	b := 0
	for ; b+4 <= x.bits; b += 4 {
		off := (t*x.bits + b) * n
		r0 := x.planes[off : off+n : off+n]
		r1 := x.planes[off+n : off+2*n : off+2*n][:len(r0)]
		r2 := x.planes[off+2*n : off+3*n : off+3*n][:len(r0)]
		r3 := x.planes[off+3*n : off+4*n : off+4*n][:len(r0)]
		vs := v[:len(r0)]
		var d0, d1, d2, d3 float64
		if x.center == nil {
			for d, p0 := range r0 {
				vv := vs[d]
				d0 += p0 * vv
				d1 += r1[d] * vv
				d2 += r2[d] * vv
				d3 += r3[d] * vv
			}
		} else {
			ct := x.center[:len(r0)]
			for d, p0 := range r0 {
				c := vs[d] - ct[d]
				d0 += p0 * c
				d1 += r1[d] * c
				d2 += r2[d] * c
				d3 += r3[d] * c
			}
		}
		if d0 >= 0 {
			sig |= 1 << uint(b)
		}
		if d1 >= 0 {
			sig |= 1 << uint(b+1)
		}
		if d2 >= 0 {
			sig |= 1 << uint(b+2)
		}
		if d3 >= 0 {
			sig |= 1 << uint(b+3)
		}
		margins[b] = math.Abs(d0)
		margins[b+1] = math.Abs(d1)
		margins[b+2] = math.Abs(d2)
		margins[b+3] = math.Abs(d3)
	}
	for ; b < x.bits; b++ {
		row := x.planeRow(t, b)
		var dot float64
		if x.center == nil {
			for d, p := range row {
				dot += p * v[d]
			}
		} else {
			for d, p := range row {
				dot += p * (v[d] - x.center[d])
			}
		}
		if dot >= 0 {
			sig |= 1 << uint(b)
		}
		margins[b] = math.Abs(dot)
	}
	return sig
}

// slotVec returns slot s's vector as a view into the arena.
func (x *HyperplaneIndex) slotVec(s int32) feature.Vector {
	off := int(s) * x.dim
	return feature.Vector(x.arena[off : off+x.dim : off+x.dim])
}

// slotCodes returns slot s's int8 code vector as a view into the arena.
func (x *HyperplaneIndex) slotCodes(s int32) []int8 {
	off := int(s) * x.dim
	return x.codes[off : off+x.dim : off+x.dim]
}

// allocSlotLocked returns a free arena slot, growing the arena if none
// is available.
func (x *HyperplaneIndex) allocSlotLocked() int32 {
	if n := len(x.free); n > 0 {
		s := x.free[n-1]
		x.free = x.free[:n-1]
		return s
	}
	s := int32(len(x.slotID))
	x.arena = append(x.arena, make([]float64, x.dim)...)
	x.slotID = append(x.slotID, 0)
	x.slotSig = append(x.slotSig, make([]uint64, x.tables)...)
	if x.sketchWords > 0 {
		x.sketch = append(x.sketch, make([]uint64, x.sketchWords)...)
	}
	if x.tun.Quantize {
		x.codes = append(x.codes, make([]int8, x.dim)...)
		x.quant = append(x.quant, feature.Quant{})
	}
	return s
}

// Insert adds (id, v) to all tables, replacing any prior entry for id.
func (x *HyperplaneIndex) Insert(id ID, v feature.Vector) error {
	if len(v) != x.dim {
		return fmt.Errorf("lsh: insert dim %d, index dim %d: %w",
			len(v), x.dim, feature.ErrDimensionMismatch)
	}
	x.wmu.Lock()
	defer x.wmu.Unlock()
	if slot, exists := x.idSlot[id]; exists {
		x.removeLocked(id, slot)
	}
	slot := x.allocSlotLocked()
	// The slot is either brand-new (no published bucket can reference
	// it yet) or recycled after a grace period (every reader that could
	// have seen it has departed), so these writes race with nothing;
	// the publish below is the release that makes them visible.
	copy(x.arena[int(slot)*x.dim:], v)
	x.slotID[slot] = id
	vc := x.slotVec(slot)
	for t := 0; t < x.tables; t++ {
		x.slotSig[int(slot)*x.tables+t] = x.signature(t, vc)
	}
	// Derived per-slot representations are recomputed, never stored:
	// snapshot import re-inserts through this same path, so sketches and
	// codes round-trip deterministically from (seed, vector) alone.
	if x.sketchWords > 0 {
		x.sketchInto(vc, x.slotSketch(slot))
	}
	if x.tun.Quantize {
		x.quant[slot] = feature.QuantizeInto(vc, x.slotCodes(slot))
	}
	x.idSlot[id] = slot
	x.publishLocked(func(side []map[uint64][]int32) {
		for t := 0; t < x.tables; t++ {
			sig := x.slotSig[int(slot)*x.tables+t]
			side[t][sig] = append(side[t][sig], slot)
		}
	})
	return nil
}

// Remove deletes id from all tables.
func (x *HyperplaneIndex) Remove(id ID) {
	x.wmu.Lock()
	defer x.wmu.Unlock()
	if slot, ok := x.idSlot[id]; ok {
		x.removeLocked(id, slot)
	}
}

// bucketShrinkMin is the smallest bucket capacity the shrink heuristic
// bothers reallocating; below it the retained memory is trivial.
const bucketShrinkMin = 16

// removeLocked unlinks slot from both bucket sides (via one publish
// round) and recycles it. The slot joins the free list only AFTER the
// grace period inside publishLocked, so no reader can still hold a
// view whose buckets reference it by the time a later insert
// overwrites its arena memory. Caller holds wmu.
func (x *HyperplaneIndex) removeLocked(id ID, slot int32) {
	delete(x.idSlot, id)
	x.publishLocked(func(side []map[uint64][]int32) {
		for t := 0; t < x.tables; t++ {
			sig := x.slotSig[int(slot)*x.tables+t]
			bucket := side[t][sig]
			for i, s := range bucket {
				if s == slot {
					last := len(bucket) - 1
					bucket[i] = bucket[last]
					bucket[last] = 0 // clear the swapped-from tail slot
					bucket = bucket[:last]
					break
				}
			}
			switch {
			case len(bucket) == 0:
				delete(side[t], sig)
			case cap(bucket) >= bucketShrinkMin && cap(bucket) >= 4*len(bucket):
				// Long churny runs otherwise retain grossly over-capacity
				// backing arrays for hot signatures.
				shrunk := make([]int32, len(bucket))
				copy(shrunk, bucket)
				side[t][sig] = shrunk
			default:
				side[t][sig] = bucket
			}
		}
	})
	if poisonRetired.Load() {
		x.poisonSlot(slot)
	}
	x.free = append(x.free, slot)
}

// getScratch checks out per-query scratch state. A fresh scratch is
// assigned the next read-indicator stripe round-robin; the pool is
// per-P, so concurrent readers end up stamping distinct stripes.
func (x *HyperplaneIndex) getScratch() *queryScratch {
	if sc, ok := x.scratch.Get().(*queryScratch); ok {
		return sc
	}
	return &queryScratch{stripe: x.stripeSeq.Add(1)}
}

// Candidates returns the deduplicated union of bucket contents that q
// collides with across all tables, in first-collision order. The gather
// runs through CandidatesInto on a pooled buffer, so the only per-call
// allocation is the exact-size result slice handed to the caller.
func (x *HyperplaneIndex) Candidates(q feature.Vector) ([]ID, error) {
	bufp, _ := x.idBuf.Get().(*[]ID)
	if bufp == nil {
		bufp = new([]ID)
	}
	ids, err := x.CandidatesInto(q, (*bufp)[:0])
	if err != nil {
		x.idBuf.Put(bufp)
		return nil, err
	}
	out := make([]ID, len(ids))
	copy(out, ids)
	*bufp = ids[:0] // keep any growth for the next caller
	x.idBuf.Put(bufp)
	return out, nil
}

// CandidatesInto is Candidates appending into dst's backing array (which
// may be nil). With a caller-reused dst of sufficient capacity the whole
// gather performs no allocation: the dedup state is pooled and the IDs
// land in caller-owned memory.
//
// Under a tuned pipeline the gather walks the full multi-probe sequence
// and applies the sketch prefilter, so the returned set is exactly the
// population NearestInto would score.
func (x *HyperplaneIndex) CandidatesInto(q feature.Vector, dst []ID) ([]ID, error) {
	if len(q) != x.dim {
		return nil, fmt.Errorf("lsh: query dim %d, index dim %d: %w",
			len(q), x.dim, feature.ErrDimensionMismatch)
	}
	sc := x.getScratch()
	defer x.scratch.Put(sc)
	v, vi := x.pin(sc.stripe)
	defer x.unpin(vi, sc.stripe)
	sc.begin(len(v.slotID))
	out := dst[:0]
	if !x.tun.enabled() {
		for t := 0; t < x.tables; t++ {
			sig := x.signature(t, q)
			for _, slot := range v.buckets[t][sig] {
				if sc.visited[slot] == sc.epoch {
					continue
				}
				sc.visited[slot] = sc.epoch
				out = append(out, v.slotID[slot])
			}
		}
		return out, nil
	}
	sc.ensureTuned(x.bits, x.dim)
	var qsk [2]uint64
	words := x.sketchWords
	if words > 0 {
		x.sketchInto(q, qsk[:words])
	}
	maxHam := x.tun.MaxHamming
	var pg probeGen
	for t := 0; t < x.tables; t++ {
		sig := x.signatureMargins(t, q, sc.margins)
		pg.init(sig, x.bits, sc.margins, sc.sorted, sc.order, sc.heap)
		for p := 0; p < x.tun.Probes; p++ {
			psig, ok := pg.next()
			if !ok {
				break
			}
			for _, slot := range v.buckets[t][psig] {
				if sc.visited[slot] == sc.epoch {
					continue
				}
				sc.visited[slot] = sc.epoch
				if words > 0 {
					// Inlined popcount Hamming; words is 1 or 2.
					off := int(slot) * words
					d := bits.OnesCount64(qsk[0] ^ v.sketch[off])
					if words == 2 {
						d += bits.OnesCount64(qsk[1] ^ v.sketch[off+1])
					}
					if d > maxHam {
						continue
					}
				}
				out = append(out, v.slotID[slot])
			}
		}
		sc.heap = pg.heap[:0] // retain heap growth across tables/queries
	}
	return out, nil
}

// Nearest returns up to k approximate nearest neighbors of q, drawn
// from the LSH candidate set and ordered by Euclidean distance.
func (x *HyperplaneIndex) Nearest(q feature.Vector, k int) ([]Neighbor, error) {
	return x.NearestInto(q, k, nil)
}

// NearestInto is Nearest writing into dst's backing array. With a
// caller-reused dst of capacity ≥ k, a warm-index lookup performs no
// allocation: signatures, candidate dedup, distances, and top-k
// selection all run on pooled or caller-owned memory.
func (x *HyperplaneIndex) NearestInto(q feature.Vector, k int, dst []Neighbor) ([]Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("lsh: k must be positive, got %d", k)
	}
	if len(q) != x.dim {
		return nil, fmt.Errorf("lsh: query dim %d, index dim %d: %w",
			len(q), x.dim, feature.ErrDimensionMismatch)
	}
	sc := x.getScratch()
	defer x.scratch.Put(sc)
	if x.tun.enabled() {
		return x.nearestTuned(q, k, dst, sc)
	}
	// Classic exact-bucket path. Selection runs on squared distances —
	// the same total order — and takes the square root only on the
	// final k survivors, which is bit-identical to sqrt-per-candidate
	// because MustSqEuclidean accumulates the same sum MustEuclidean
	// does.
	var sel kSelector
	sel.reset(k, dst[:0])
	v, vi := x.pin(sc.stripe)
	sc.begin(len(v.slotID))
	for t := 0; t < x.tables; t++ {
		sig := x.signature(t, q)
		for _, slot := range v.buckets[t][sig] {
			if sc.visited[slot] == sc.epoch {
				continue
			}
			sc.visited[slot] = sc.epoch
			sel.add(Neighbor{
				ID:       v.slotID[slot],
				Distance: feature.MustSqEuclidean(q, v.slotVec(x.dim, slot)),
			})
		}
	}
	x.unpin(vi, sc.stripe)
	out := sel.finish()
	for i := range out {
		out[i].Distance = math.Sqrt(out[i].Distance)
	}
	return out, nil
}

// nearestTuned is the tuned candidate pipeline: per table, walk the
// multi-probe bucket sequence; per candidate, dedup by slot epoch, then
// (optionally) reject on packed-sketch Hamming distance before any
// float math; score survivors either exactly (squared L2) or with the
// int8 integer-dot kernel, in which case only the top RerankK·k
// approximate candidates pay an exact distance. All stages run on
// pooled scratch, so a warm lookup with caller-provided dst allocates
// nothing.
func (x *HyperplaneIndex) nearestTuned(q feature.Vector, k int, dst []Neighbor, sc *queryScratch) ([]Neighbor, error) {
	var sel kSelector
	sel.reset(k, dst[:0])
	quantize := x.tun.Quantize
	var rsel kSelector
	if quantize {
		rsel.reset(x.tun.RerankK*k, sc.approx[:0])
	}
	sc.ensureTuned(x.bits, x.dim)
	v, vi := x.pin(sc.stripe)
	sc.begin(len(v.slotID))
	var qsk [2]uint64
	words := x.sketchWords
	if words > 0 {
		x.sketchInto(q, qsk[:words])
	}
	var qq feature.Quant
	if quantize {
		qq = feature.QuantizeInto(q, sc.qcodes)
	}
	maxHam := x.tun.MaxHamming
	var pg probeGen
	for t := 0; t < x.tables; t++ {
		sig := x.signatureMargins(t, q, sc.margins)
		pg.init(sig, x.bits, sc.margins, sc.sorted, sc.order, sc.heap)
		for p := 0; p < x.tun.Probes; p++ {
			psig, ok := pg.next()
			if !ok {
				break
			}
			for _, slot := range v.buckets[t][psig] {
				if sc.visited[slot] == sc.epoch {
					continue
				}
				sc.visited[slot] = sc.epoch
				if words > 0 {
					// Inlined popcount Hamming; words is 1 or 2.
					off := int(slot) * words
					d := bits.OnesCount64(qsk[0] ^ v.sketch[off])
					if words == 2 {
						d += bits.OnesCount64(qsk[1] ^ v.sketch[off+1])
					}
					if d > maxHam {
						continue
					}
				}
				if quantize {
					// The approximate stage selects on (approx distance,
					// slot): slots are assigned deterministically, so the
					// keep-set is stable across runs and reloads.
					dot := feature.DotInt8(sc.qcodes, v.slotCodes(x.dim, slot))
					rsel.add(Neighbor{
						ID:       ID(slot),
						Distance: feature.ApproxSqDistance(x.dim, qq, v.quant[slot], dot),
					})
				} else {
					sel.add(Neighbor{
						ID:       v.slotID[slot],
						Distance: feature.MustSqEuclidean(q, v.slotVec(x.dim, slot)),
					})
				}
			}
		}
		sc.heap = pg.heap[:0] // retain heap growth across tables/queries
	}
	if quantize {
		kept := rsel.finish()
		for _, n := range kept {
			slot := int32(n.ID)
			sel.add(Neighbor{
				ID:       v.slotID[slot],
				Distance: feature.MustSqEuclidean(q, v.slotVec(x.dim, slot)),
			})
		}
		sc.approx = kept[:0] // retain selector growth for the next query
	}
	x.unpin(vi, sc.stripe)
	out := sel.finish()
	for i := range out {
		out[i].Distance = math.Sqrt(out[i].Distance)
	}
	return out, nil
}

// Stats describes index occupancy, used by the LSH ablation experiment.
type Stats struct {
	Items            int
	Tables           int
	Bits             int
	Buckets          int
	MaxBucket        int
	MeanBucket       float64
	MeanCandidateSet float64 // expected candidate-set size for an indexed item
}

// Stats returns occupancy statistics. Lock-free: it walks the
// published snapshot under a pin, so stats polling never stalls
// writers or other readers.
func (x *HyperplaneIndex) Stats() Stats {
	stripe := x.stripeSeq.Add(1)
	v, vi := x.pin(stripe)
	defer x.unpin(vi, stripe)
	s := Stats{Items: v.live, Tables: x.tables, Bits: x.bits}
	var total int
	for t := 0; t < x.tables; t++ {
		for _, b := range v.buckets[t] {
			s.Buckets++
			total += len(b)
			if len(b) > s.MaxBucket {
				s.MaxBucket = len(b)
			}
		}
	}
	if s.Buckets > 0 {
		s.MeanBucket = float64(total) / float64(s.Buckets)
	}
	if v.live > 0 {
		// For each item, its candidate set is at least the sizes of
		// its own buckets; use the mean bucket size per table as an
		// estimate of per-query work.
		s.MeanCandidateSet = s.MeanBucket * float64(x.tables)
	}
	return s
}
