// Package trace composes the vision, video, and imu substrates into
// complete device workloads: a frame stream plus the matching inertial
// sensor stream, with full ground truth. Workloads are described by a
// compact, JSON-serializable Spec so any experiment input can be saved,
// inspected, and regenerated bit-exactly from its seed.
package trace

import (
	"encoding/json"
	"fmt"
	"time"

	"approxcache/internal/imu"
	"approxcache/internal/video"
	"approxcache/internal/vision"
)

// SegmentSpec is one motion-regime stretch of a workload.
type SegmentSpec struct {
	// Regime names the motion regime: "stationary", "handheld",
	// "walking", or "panning".
	Regime string `json:"regime"`
	// Frames is the segment length in frames.
	Frames int `json:"frames"`
}

// Spec fully describes a workload; equal specs generate identical
// workloads.
type Spec struct {
	// Name identifies the workload in reports.
	Name string `json:"name"`
	// FPS is the camera frame rate.
	FPS int `json:"fps"`
	// IMURateHz is the inertial sample rate.
	IMURateHz int `json:"imuRateHz"`
	// NumClasses is the size of the object vocabulary.
	NumClasses int `json:"numClasses"`
	// ImageW and ImageH are the frame dimensions.
	ImageW int `json:"imageW"`
	ImageH int `json:"imageH"`
	// Segments is the motion script.
	Segments []SegmentSpec `json:"segments"`
	// Hard selects the aggressive perturbation profile.
	Hard bool `json:"hard,omitempty"`
	// Seed drives all randomness.
	Seed int64 `json:"seed"`
	// ClassSeed, when non-zero, seeds the class prototypes separately
	// from the frame stream. Devices that share a ClassSeed see the
	// same object vocabulary (required for peer-to-peer reuse) while
	// different Seeds give them independent frame orders.
	ClassSeed int64 `json:"classSeed,omitempty"`
	// ClassSkew applies Zipf popularity to scene classes: weight of
	// rank-k class ∝ 1/k^ClassSkew. 0 is uniform; ~1 is the heavy
	// skew of real popularity distributions (everyone photographs the
	// same exhibits), which is what peer reuse feeds on.
	ClassSkew float64 `json:"classSkew,omitempty"`
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("trace: spec needs a name")
	}
	if s.FPS <= 0 {
		return fmt.Errorf("trace: fps must be positive, got %d", s.FPS)
	}
	if s.IMURateHz <= 0 {
		return fmt.Errorf("trace: imu rate must be positive, got %d", s.IMURateHz)
	}
	if s.NumClasses <= 0 {
		return fmt.Errorf("trace: numClasses must be positive, got %d", s.NumClasses)
	}
	if s.ImageW <= 0 || s.ImageH <= 0 {
		return fmt.Errorf("trace: image size must be positive, got %dx%d", s.ImageW, s.ImageH)
	}
	if len(s.Segments) == 0 {
		return fmt.Errorf("trace: spec needs at least one segment")
	}
	for i, seg := range s.Segments {
		if seg.Frames <= 0 {
			return fmt.Errorf("trace: segment %d has non-positive length", i)
		}
		if _, err := parseRegime(seg.Regime); err != nil {
			return fmt.Errorf("trace: segment %d: %w", i, err)
		}
	}
	if s.ClassSkew < 0 {
		return fmt.Errorf("trace: class skew must be non-negative, got %v", s.ClassSkew)
	}
	return nil
}

// TotalFrames returns the workload length in frames.
func (s Spec) TotalFrames() int {
	total := 0
	for _, seg := range s.Segments {
		total += seg.Frames
	}
	return total
}

// Duration returns the workload length in time.
func (s Spec) Duration() time.Duration {
	if s.FPS <= 0 {
		return 0
	}
	return time.Duration(s.TotalFrames()) * time.Second / time.Duration(s.FPS)
}

// parseRegime maps a wire regime name to its imu.Regime.
func parseRegime(name string) (imu.Regime, error) {
	switch name {
	case "stationary":
		return imu.Stationary, nil
	case "handheld":
		return imu.Handheld, nil
	case "walking":
		return imu.Walking, nil
	case "panning":
		return imu.Panning, nil
	default:
		return 0, fmt.Errorf("unknown regime %q", name)
	}
}

// RegimeName returns the wire name of r.
func RegimeName(r imu.Regime) string { return r.String() }

// Workload is a fully generated device input.
type Workload struct {
	// Spec is the generating description.
	Spec Spec
	// Classes is the class set frames were rendered from.
	Classes *vision.ClassSet
	// Frames is the video stream with ground truth.
	Frames []video.Frame
	// IMU is the matching inertial stream, covering the same
	// duration and regime script.
	IMU []imu.Sample
}

// IMUWindow returns the IMU samples in (from, to], the samples a
// pipeline would have received between two frames.
func (w *Workload) IMUWindow(from, to time.Duration) []imu.Sample {
	// Samples are sorted by offset; binary search would be overkill
	// for experiment-scale traces, but avoid re-scanning from zero by
	// a simple scan (called with monotonically increasing windows).
	var out []imu.Sample
	for _, s := range w.IMU {
		if s.Offset > from && s.Offset <= to {
			out = append(out, s)
		}
	}
	return out
}

// Generate renders the workload described by spec.
func Generate(spec Spec) (*Workload, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	classSeed := spec.ClassSeed
	if classSeed == 0 {
		classSeed = spec.Seed
	}
	classes, err := vision.NewClassSet(spec.NumClasses, spec.ImageW, spec.ImageH, classSeed)
	if err != nil {
		return nil, fmt.Errorf("class set: %w", err)
	}

	segs := make([]video.Segment, len(spec.Segments))
	for i, s := range spec.Segments {
		r, err := parseRegime(s.Regime)
		if err != nil {
			return nil, err
		}
		segs[i] = video.Segment{Regime: r, Frames: s.Frames}
	}
	perturb := vision.DefaultPerturbation()
	if spec.Hard {
		perturb = vision.HardPerturbation()
	}
	var weights []float64
	if spec.ClassSkew > 0 {
		weights = video.ZipfWeights(spec.NumClasses, spec.ClassSkew)
	}
	frames, err := video.Generate(video.StreamConfig{
		FPS:          spec.FPS,
		Segments:     segs,
		Perturb:      perturb,
		ClassWeights: weights,
		Seed:         spec.Seed + 1,
	}, classes)
	if err != nil {
		return nil, fmt.Errorf("video: %w", err)
	}

	gen, err := imu.NewGenerator(spec.IMURateHz, spec.Seed+2)
	if err != nil {
		return nil, fmt.Errorf("imu: %w", err)
	}
	var samples []imu.Sample
	frameDur := time.Second / time.Duration(spec.FPS)
	offset := time.Duration(0)
	for _, seg := range segs {
		segDur := time.Duration(seg.Frames) * frameDur
		ss, err := gen.Generate(seg.Regime, offset, segDur)
		if err != nil {
			return nil, fmt.Errorf("imu segment: %w", err)
		}
		samples = append(samples, ss...)
		offset += segDur
	}

	return &Workload{Spec: spec, Classes: classes, Frames: frames, IMU: samples}, nil
}

// EncodeSpec serializes spec to JSON.
func EncodeSpec(spec Spec) ([]byte, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(spec, "", "  ")
}

// DecodeSpec parses and validates a JSON spec.
func DecodeSpec(data []byte) (Spec, error) {
	var spec Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return Spec{}, fmt.Errorf("trace: parse spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// Standard workload shapes used across the evaluation. All take the
// total frame budget and a seed so experiments can scale them.

// StationaryHeavy models the poster's best case: a user mostly holding
// the camera on a scene (e.g. document or exhibit recognition), with
// brief repositioning walks.
func StationaryHeavy(frames int, seed int64) Spec {
	return standardSpec("stationary-heavy", frames, seed,
		[]string{"stationary", "handheld", "walking", "stationary"},
		[]int{45, 25, 10, 20})
}

// HandheldMix models casual handheld use with occasional pans.
func HandheldMix(frames int, seed int64) Spec {
	return standardSpec("handheld-mix", frames, seed,
		[]string{"handheld", "panning", "handheld", "walking"},
		[]int{40, 15, 30, 15})
}

// WalkingTour models a user walking through an environment, pausing at
// points of interest.
func WalkingTour(frames int, seed int64) Spec {
	return standardSpec("walking-tour", frames, seed,
		[]string{"walking", "stationary", "walking", "handheld"},
		[]int{35, 15, 35, 15})
}

// PanningSweep models continuous camera sweeps (the cache's hardest
// case: scenes change every few frames).
func PanningSweep(frames int, seed int64) Spec {
	return standardSpec("panning-sweep", frames, seed,
		[]string{"panning", "handheld"},
		[]int{70, 30})
}

// StandardSpecs returns the four canonical workloads at the given frame
// budget.
func StandardSpecs(frames int, seed int64) []Spec {
	return []Spec{
		StationaryHeavy(frames, seed),
		HandheldMix(frames, seed+100),
		WalkingTour(frames, seed+200),
		PanningSweep(frames, seed+300),
	}
}

// standardSpec splits frames across regimes by percentage; the last
// segment absorbs rounding so the total is exact.
func standardSpec(name string, frames int, seed int64, regimes []string, pcts []int) Spec {
	segs := make([]SegmentSpec, len(regimes))
	used := 0
	for i := range regimes {
		n := frames * pcts[i] / 100
		if n < 1 {
			n = 1
		}
		if i == len(regimes)-1 {
			n = frames - used
			if n < 1 {
				n = 1
			}
		}
		segs[i] = SegmentSpec{Regime: regimes[i], Frames: n}
		used += n
	}
	return Spec{
		Name:       name,
		FPS:        15,
		IMURateHz:  100,
		NumClasses: 8,
		ImageW:     48,
		ImageH:     48,
		Segments:   segs,
		Seed:       seed,
	}
}
