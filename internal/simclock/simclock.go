// Package simclock provides a clock abstraction with a deterministic
// virtual implementation for experiments and a wall-clock implementation
// for live use.
//
// All latency accounting in the experiment harness advances a Virtual
// clock instead of sleeping, so a multi-minute device trace replays in
// milliseconds while producing exact, reproducible timing results.
package simclock

import (
	"sync"
	"time"
)

// Clock is the minimal time source used throughout approxcache.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Sleep advances time by d. On a virtual clock this is
	// instantaneous in wall time.
	Sleep(d time.Duration)
}

// Virtual is a deterministic, manually-advanced clock. The zero value is
// not usable; construct with NewVirtual. Virtual is safe for concurrent
// use.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a virtual clock starting at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now returns the current virtual instant.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep advances the virtual clock by d without blocking. Negative
// durations are ignored so that callers never move time backwards.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now = v.now.Add(d)
}

// Advance is an alias for Sleep that reads better at call sites that
// drive the clock rather than simulate waiting.
func (v *Virtual) Advance(d time.Duration) { v.Sleep(d) }

// Set moves the clock to t if t is later than the current instant.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.After(v.now) {
		v.now = t
	}
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

var _ Clock = Real{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Sleep blocks for d using time.Sleep.
func (Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}
