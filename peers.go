package approxcache

import (
	"fmt"
	"sort"
	"time"

	"approxcache/internal/p2p"
	"approxcache/internal/simnet"
)

// NewSimNetwork builds a simulated device-to-device wireless network
// with the default short-range link profile (~6 ms one-way, 1% loss),
// seeding jitter and loss from seed.
func NewSimNetwork(seed int64) (*SimNetwork, error) {
	return simnet.New(simnet.DefaultLinkProfile(), seed)
}

// clientConfig returns the peer-client policy bound to this cache's
// clock, so breaker backoffs elapse in the cache's (possibly virtual)
// time.
func (c *Cache) clientConfig() p2p.ClientConfig {
	cfg := p2p.DefaultClientConfig()
	cfg.Clock = c.clock
	return cfg
}

// JoinSimNetwork exposes this cache's store to peers on net under name
// and installs a peer client on the pipeline. Use ConnectAll (or
// client.SetPeers) to point the returned client at the other nodes.
// The cache must be in ModeApprox.
func (c *Cache) JoinSimNetwork(net *SimNetwork, name string) (*PeerClient, error) {
	if c.store == nil {
		return nil, fmt.Errorf("approxcache: peer sharing requires ModeApprox")
	}
	if net == nil {
		return nil, fmt.Errorf("approxcache: nil network")
	}
	svc, err := p2p.NewService(p2p.DefaultServiceConfig(name), c.store)
	if err != nil {
		return nil, fmt.Errorf("approxcache: peer service: %w", err)
	}
	if err := p2p.RegisterService(net, svc); err != nil {
		return nil, fmt.Errorf("approxcache: register: %w", err)
	}
	tr, err := p2p.NewSimnetTransport(name, net)
	if err != nil {
		return nil, fmt.Errorf("approxcache: transport: %w", err)
	}
	client, err := p2p.NewClient(c.clientConfig(), tr)
	if err != nil {
		return nil, fmt.Errorf("approxcache: peer client: %w", err)
	}
	c.engine.SetPeers(client)
	return client, nil
}

// ConnectAll points every client at all the *other* named nodes,
// forming a full mesh. A client added later is invisible to the mesh
// until ConnectAll runs again — so re-run it whenever the network's
// membership epoch (SimNetwork.Epoch, bumped on every register and
// unregister) has moved. ConnectAll is idempotent and cheap: each call
// just replaces peer lists (sorted, so mesh formation is
// deterministic), and re-running it never disturbs negotiated wire
// versions, digests, or breaker state of peers that stayed. It errors
// on an empty or single-entry map — a mesh of one cannot share
// anything, and silently accepting it has historically hidden
// setup-ordering bugs.
func ConnectAll(clients map[string]*PeerClient) error {
	if len(clients) < 2 {
		return fmt.Errorf("approxcache: ConnectAll needs at least 2 clients, got %d", len(clients))
	}
	names := make([]string, 0, len(clients))
	for name := range clients {
		names = append(names, name)
	}
	sort.Strings(names)
	for self, client := range clients {
		peers := make([]string, 0, len(names)-1)
		for _, name := range names {
			if name != self {
				peers = append(peers, name)
			}
		}
		client.SetPeers(peers)
	}
	return nil
}

// PeerRoster tracks peer liveness and warmth via protocol pings and
// ranks peers so clients query the most useful caches first.
type PeerRoster = p2p.Roster

// PeerInfo is a roster's view of one peer.
type PeerInfo = p2p.PeerInfo

// PeerHealth is the resilience layer's view of one peer: success and
// latency EWMAs, failure classification, and circuit-breaker state.
type PeerHealth = p2p.PeerHealth

// PeerHealthSnapshot is a point-in-time view of a client's peer health
// and breaker activity; obtain one with PeerClient.Health.
type PeerHealthSnapshot = p2p.HealthSnapshot

// BreakerState is one peer's circuit state (closed, open, half-open).
type BreakerState = p2p.BreakerState

// Circuit-breaker states.
const (
	BreakerClosed   = p2p.StateClosed
	BreakerOpen     = p2p.StateOpen
	BreakerHalfOpen = p2p.StateHalfOpen
)

// FaultPlan schedules faults (crash, partition, latency spike, loss
// burst, corrupt responses, heal) against a SimNetwork for chaos
// experiments.
type FaultPlan = simnet.FaultPlan

// FaultEvent is one scheduled fault.
type FaultEvent = simnet.FaultEvent

// FaultScheduler replays a FaultPlan on a clock; Tick it between
// frames.
type FaultScheduler = simnet.FaultScheduler

// Fault kinds for FaultEvent.
const (
	FaultCrash        = simnet.FaultCrash
	FaultRestart      = simnet.FaultRestart
	FaultPartition    = simnet.FaultPartition
	FaultHeal         = simnet.FaultHeal
	FaultLatencySpike = simnet.FaultLatencySpike
	FaultLossBurst    = simnet.FaultLossBurst
	FaultCorrupt      = simnet.FaultCorrupt
	FaultClear        = simnet.FaultClear
)

// NewFaultScheduler builds a scheduler replaying plan against net,
// with event offsets measured from clock.Now().
func NewFaultScheduler(net *SimNetwork, clock Clock, plan FaultPlan) (*FaultScheduler, error) {
	return simnet.NewFaultScheduler(net, clock, plan)
}

// NewPeerRoster builds a roster probing through client, identifying as
// self in pings and timestamping liveness with clock.
func NewPeerRoster(self string, client *PeerClient, clock Clock) (*PeerRoster, error) {
	return p2p.NewRoster(self, client, clock)
}

// PeerMaintainer periodically refreshes a roster (and optionally peer
// coverage digests) in the background and re-points the client at the
// best peers. Stop it with Shutdown.
type PeerMaintainer = p2p.Maintainer

// StartPeerMaintainer launches background roster maintenance: every
// interval the roster is re-probed, the client's peer set re-ranked to
// the fanout best peers, and (when refreshDigests) each selected peer's
// coverage digest refreshed so queries can skip peers that cannot help.
// Probe outcomes also feed the client's health tracker and circuit
// breaker, so maintenance doubles as background recovery probing.
func StartPeerMaintainer(roster *PeerRoster, interval time.Duration, fanout int, refreshDigests bool) (*PeerMaintainer, error) {
	return p2p.StartMaintainer(p2p.MaintainerConfig{
		Interval:       interval,
		Fanout:         fanout,
		RefreshDigests: refreshDigests,
	}, roster)
}

// ServeTCP exposes this cache's store to peers over real TCP on addr
// (e.g. "127.0.0.1:0"), identifying as name in pings. The cache must be
// in ModeApprox. Close the returned server when done.
func (c *Cache) ServeTCP(name, addr string) (*PeerServer, error) {
	if c.store == nil {
		return nil, fmt.Errorf("approxcache: peer sharing requires ModeApprox")
	}
	svc, err := p2p.NewService(p2p.DefaultServiceConfig(name), c.store)
	if err != nil {
		return nil, fmt.Errorf("approxcache: peer service: %w", err)
	}
	srv, err := p2p.ListenAndServe(addr, svc)
	if err != nil {
		return nil, fmt.Errorf("approxcache: %w", err)
	}
	return srv, nil
}

// DialPeers installs a TCP peer client pointing at addrs
// ("host:port"), enabling the P2P gate against live nodes. The cache
// must be in ModeApprox.
func (c *Cache) DialPeers(addrs ...string) (*PeerClient, error) {
	if c.store == nil {
		return nil, fmt.Errorf("approxcache: peer sharing requires ModeApprox")
	}
	tr, err := p2p.NewTCPTransport(2*time.Second, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("approxcache: transport: %w", err)
	}
	client, err := p2p.NewClient(c.clientConfig(), tr)
	if err != nil {
		return nil, fmt.Errorf("approxcache: peer client: %w", err)
	}
	client.SetPeers(addrs)
	c.engine.SetPeers(client)
	return client, nil
}
