package dnn

import (
	"fmt"
	"math"
	"time"

	"approxcache/internal/feature"
	"approxcache/internal/vision"
)

// Batched inference: mobile accelerators (GPU/NPU delegates, NNAPI)
// pay a large fixed cost per model invocation — weight upload, kernel
// launch, memory fences — and a comparatively small marginal cost per
// extra image in the batch. Under concurrent load, coalescing cache
// misses into one invocation amortizes the fixed cost exactly where
// misses pile up.

// BatchFixedFraction is the fraction of single-frame inference latency
// that is per-invocation overhead rather than per-frame compute. A
// batch of n frames therefore occupies the accelerator for
// Mean×(f + (1−f)·n) instead of Mean×n.
const BatchFixedFraction = 0.85

// BatchLatency returns the simulated accelerator occupancy for one
// invocation classifying n frames under profile p. BatchLatency(p, 1)
// equals p.MeanLatency.
func BatchLatency(p Profile, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(float64(p.MeanLatency) *
		(BatchFixedFraction + (1-BatchFixedFraction)*float64(n)))
}

// BatchClassifier is a classifier that can serve several frames in one
// model invocation. *Classifier implements it; the micro-batching
// scheduler (Batcher) requires it.
type BatchClassifier interface {
	// Infer classifies one frame at full single-frame cost.
	Infer(im *vision.Image) (Inference, error)
	// InferBatch classifies ims in one invocation, returning one
	// result per frame in order. Per-frame latency and energy are the
	// invocation's amortized share.
	InferBatch(ims []*vision.Image) ([]Inference, error)
	// Profile returns the model's cost/quality profile.
	Profile() Profile
}

var _ BatchClassifier = (*Classifier)(nil)

// InferBatch classifies every frame in ims in one simulated model
// invocation. Feature extraction and the prototype decision are
// computed per frame exactly as Infer does; the reported latency is
// each frame's even share of the invocation's BatchLatency (plus one
// jittered draw for the whole invocation), and energy amortizes the
// same way, so a full batch is several times cheaper per frame than n
// separate Infer calls.
func (c *Classifier) InferBatch(ims []*vision.Image) ([]Inference, error) {
	if len(ims) == 0 {
		return nil, nil
	}
	out := make([]Inference, len(ims))
	type decision struct {
		best int
		conf float64
	}
	decisions := make([]decision, len(ims))
	for i, im := range ims {
		if im == nil {
			return nil, fmt.Errorf("dnn: nil image at batch index %d", i)
		}
		v, err := c.ex.Extract(im)
		if err != nil {
			return nil, fmt.Errorf("extract batch index %d: %w", i, err)
		}
		best := -1
		bestD, secondD := math.Inf(1), math.Inf(1)
		for p, proto := range c.protos {
			d := feature.MustEuclidean(v, proto)
			switch {
			case d < bestD:
				secondD = bestD
				best, bestD = p, d
			case d < secondD:
				secondD = d
			}
		}
		decisions[i] = decision{best: best, conf: confidenceFromMargin(bestD, secondD)}
	}

	n := len(ims)
	c.mu.Lock()
	batchLatency := BatchLatency(c.profile, n) +
		time.Duration(c.rng.NormFloat64()*float64(c.profile.LatencyJitter))
	type noise struct {
		misclassify bool
		wrong       int
	}
	noises := make([]noise, n)
	for i := range noises {
		noises[i].misclassify = c.rng.Float64() > c.profile.Top1Accuracy
		if noises[i].misclassify && len(c.protos) > 1 {
			noises[i].wrong = c.rng.Intn(len(c.protos) - 1)
		}
	}
	c.mu.Unlock()

	if floor := BatchLatency(c.profile, n) / 2; batchLatency < floor {
		batchLatency = floor
	}
	perFrame := batchLatency / time.Duration(n)
	perEnergy := c.profile.EnergyPerInference *
		(BatchFixedFraction + (1-BatchFixedFraction)*float64(n)) / float64(n)
	for i := range out {
		label := c.labels[decisions[i].best]
		conf := decisions[i].conf
		correct := true
		if noises[i].misclassify && len(c.protos) > 1 {
			wrong := noises[i].wrong
			if wrong >= decisions[i].best {
				wrong++
			}
			label = c.labels[wrong]
			correct = false
			conf *= 0.8
		}
		out[i] = Inference{
			Label:      label,
			Confidence: conf,
			Latency:    perFrame,
			EnergyMJ:   perEnergy,
			Correct:    correct,
		}
	}
	return out, nil
}
