package core

import (
	"sync"
	"testing"
	"time"

	"approxcache/internal/vision"
)

// TestEngineConcurrentProcess drives Process from several goroutines
// while others read LastResult and stats. Run under -race this
// validates the engine's read/write lock split and the pooled per-frame
// scratch buffers (each concurrent frame must get its own vector and
// neighbor buffer, never a teammate's).
func TestEngineConcurrentProcess(t *testing.T) {
	fx := newFixture(t, DefaultConfig(), nil)
	frames := make([]*vision.Image, 6)
	for i := range frames {
		im, err := fx.classes.Prototype(i % 4)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = im
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				im := frames[(w*50+i)%len(frames)]
				res, err := fx.engine.Process(im, stationaryWindow(time.Duration(i)*time.Second))
				if err != nil {
					t.Error(err)
					return
				}
				if res.Label == "" {
					t.Error("empty label from Process")
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				fx.engine.LastResult()
				fx.engine.Stats().HitRate()
				if fx.store != nil {
					fx.store.Stats()
				}
			}
		}()
	}
	wg.Wait()
	if fx.store != nil && fx.store.Len() == 0 {
		t.Fatal("no cache entries after concurrent processing")
	}
}
