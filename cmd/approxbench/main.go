// Command approxbench runs the evaluation suite (experiments E1–E24 from
// DESIGN.md) and prints the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	approxbench                 # run every experiment at full scale
//	approxbench -exp E1         # run one experiment
//	approxbench -frames 500     # smaller/faster runs
//	approxbench -parallel 8     # fan experiments/sweeps across workers
//	approxbench -list           # list the suite
//	approxbench -throughput     # multi-session saturation benchmark
//	approxbench -overload       # open-loop overload sweep
//	approxbench -drift          # label-drift cache-quality benchmark
//	approxbench -readscale      # concurrent-reader scaling benchmark
//
// Independent experiments and sweep points run concurrently under
// -parallel; tables are printed in suite order and are identical to a
// serial run. -cpuprofile/-memprofile write pprof profiles so hot-path
// work can be driven by data, and -mutexprofile/-blockprofile write
// contention profiles so a scaling regression caught by the readscale
// gate can be diagnosed from the same harness that measured it.
//
// -throughput drives concurrent synthetic client streams through the
// architecture ladder (single-mutex store → session pool → sharded
// store → sharded + micro-batched inference) against a serial
// accelerator occupancy model, and writes frames/sec, latency
// percentiles, and per-shard contention counters as JSON (default
// BENCH_throughput.json) for cmd/benchgate's speedup gate.
//
// -overload fires open-loop arrivals (0.5×–4× of measured capacity) at
// a deadline-and-admission-protected serving node and at an
// unprotected one, and writes goodput, latency percentiles, and shed
// counters as JSON (default BENCH_overload.json) for cmd/benchgate's
// goodput-retention gate.
//
// -drift replays one workload under recurring label drift against a
// no-drift baseline, an unprotected node, and a node with the
// self-healing quality layer (shadow audits, quarantine, gate
// recalibration), and writes tail accuracy, latency savings, and
// quality-layer activity as JSON (default BENCH_quality.json) for
// cmd/benchgate's accuracy-recovery and savings-retention gates.
//
// -readscale sweeps 1..32 concurrent readers over a warmed hit-heavy
// cache through the lock-free epoch-published index and through the
// same index behind a single RWMutex, and writes lookups/sec, p99
// latency, and the speedup curve as JSON (default BENCH_readscale.json)
// for cmd/benchgate's parallelism-aware scaling gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"approxcache/internal/eval"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "approxbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("approxbench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment id (E1..E23), name, or \"all\"")
		frames   = fs.Int("frames", eval.DefaultScale().Frames, "per-device workload length in frames")
		seed     = fs.Int64("seed", eval.DefaultScale().Seed, "root random seed")
		format   = fs.String("format", "table", "output format: table | csv | markdown")
		list     = fs.Bool("list", false, "list experiments and exit")
		parallel = fs.Int("parallel", 1, "worker count for experiments and sweep points (1 = serial, -1 = NumCPU)")
		cpuprof  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = fs.String("memprofile", "", "write a heap profile to this file on exit")
		tput     = fs.Bool("throughput", false, "run the multi-session saturation benchmark and exit")
		tputJSON = fs.String("throughput-json", "BENCH_throughput.json", "with -throughput, write the report JSON here (empty = stdout only)")
		streams  = fs.Int("streams", 0, "with -throughput, concurrent client streams (0 = default 16)")
		tpFrames = fs.Int("tp-frames", 0, "with -throughput, frames per stream (0 = default 30)")
		overload = fs.Bool("overload", false, "run the open-loop overload sweep and exit")
		olJSON   = fs.String("overload-json", "BENCH_overload.json", "with -overload, write the report JSON here (empty = stdout only)")
		sessions = fs.Int("sessions", 0, "with -overload, serving pool sessions (0 = default 8)")
		drift    = fs.Bool("drift", false, "run the label-drift cache-quality benchmark and exit")
		qJSON    = fs.String("quality-json", "BENCH_quality.json", "with -drift, write the report JSON here (empty = stdout only)")
		dFrames  = fs.Int("drift-frames", 0, "with -drift, workload length (0 = default 1800)")
		hitheavy = fs.Bool("hitheavy", false, "run the lookup-bound hit-heavy benchmark and exit")
		luJSON   = fs.String("lookup-json", "BENCH_lookup.json", "with -hitheavy, write the report JSON here (empty = stdout only)")
		entries  = fs.Int("entries", 0, "with -hitheavy, resident cache entries (0 = default 4096)")
		rscale   = fs.Bool("readscale", false, "run the concurrent-reader scaling benchmark and exit")
		rsJSON   = fs.String("readscale-json", "BENCH_readscale.json", "with -readscale, write the report JSON here (empty = stdout only)")
		p2pBench = fs.Bool("p2p", false, "run the bandwidth-constrained peer wire benchmark and exit")
		p2pJSON  = fs.String("p2p-json", "BENCH_p2p.json", "with -p2p, write the report JSON here (empty = stdout only)")
		p2pFr    = fs.Int("p2p-frames", 0, "with -p2p, scene frames per mode (0 = default 400)")
		mutexpr  = fs.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
		blockpr  = fs.String("blockprofile", "", "write a blocking profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mutexpr != "" {
		runtime.SetMutexProfileFraction(1)
		defer func() {
			if err := writeProfile("mutex", *mutexpr); err != nil {
				fmt.Fprintln(os.Stderr, "approxbench:", err)
			}
		}()
	}
	if *blockpr != "" {
		runtime.SetBlockProfileRate(1)
		defer func() {
			if err := writeProfile("block", *blockpr); err != nil {
				fmt.Fprintln(os.Stderr, "approxbench:", err)
			}
		}()
	}
	if *p2pBench {
		return runP2PBench(eval.P2PConfig{
			Frames: *p2pFr,
			Seed:   *seed,
		}, *p2pJSON)
	}
	if *rscale {
		return runReadScaleBench(eval.ReadScaleConfig{
			Entries: *entries,
			Seed:    *seed,
		}, *rsJSON)
	}
	if *hitheavy {
		return runLookupBench(eval.LookupConfig{
			Entries: *entries,
			Seed:    *seed,
		}, *luJSON)
	}
	if *tput {
		return runThroughput(eval.ThroughputConfig{
			Streams: *streams,
			Frames:  *tpFrames,
			Seed:    *seed,
		}, *tputJSON)
	}
	if *overload {
		return runOverloadBench(eval.OverloadConfig{
			Sessions: *sessions,
			Seed:     *seed,
		}, *olJSON)
	}
	if *drift {
		return runQualityBench(eval.QualityBenchConfig{
			Frames: *dFrames,
			Seed:   *seed,
		}, *qJSON)
	}
	if *list {
		for _, e := range eval.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return nil
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	scale := eval.Scale{Frames: *frames, Seed: *seed, Workers: *parallel}
	experiments := eval.All()
	if *exp != "all" {
		e, err := eval.ByID(*exp)
		if err != nil {
			return err
		}
		experiments = []eval.Experiment{e}
	}
	if *format != "table" && *format != "csv" && *format != "markdown" {
		return fmt.Errorf("unknown format %q", *format)
	}
	start := time.Now()
	reports, err := eval.RunExperiments(experiments, scale)
	if err != nil {
		return err
	}
	for _, report := range reports {
		switch *format {
		case "csv":
			fmt.Printf("# %s — %s\n%s\n", report.ID, report.Title, report.CSV())
		case "markdown":
			fmt.Println(report.Markdown())
		default:
			fmt.Println(report)
			fmt.Println()
		}
	}
	if *format == "table" {
		fmt.Printf("(%d experiment(s) completed in %v, parallel=%d)\n",
			len(reports), time.Since(start).Round(time.Millisecond), *parallel)
	}
	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}

// writeProfile dumps a named runtime profile (mutex, block) to path.
func writeProfile(name, path string) error {
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("%sprofile: profile not found", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("%sprofile: %w", name, err)
	}
	defer f.Close()
	if err := p.WriteTo(f, 0); err != nil {
		return fmt.Errorf("%sprofile: %w", name, err)
	}
	return nil
}

// runReadScaleBench executes the concurrent-reader scaling sweep,
// prints the speedup curve, and records the report for the readscale
// gate.
func runReadScaleBench(cfg eval.ReadScaleConfig, jsonPath string) error {
	start := time.Now()
	rep, err := eval.RunReadScale(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("readscale: %d entries, %d hit-heavy queries, dim %d, k=%d, GOMAXPROCS=%d\n",
		rep.Entries, rep.Queries, rep.Dim, rep.K, rep.MaxProcs)
	for _, pt := range rep.Points {
		fmt.Printf("  %2d readers  lock-free %10.0f ops/s (p99 %6.1fµs)  locked %10.0f ops/s (p99 %6.1fµs)  speedup %.2fx\n",
			pt.Readers, pt.LockFreeOps, pt.LockFreeP99Micros,
			pt.LockedOps, pt.LockedP99Micros, pt.Speedup)
	}
	fmt.Printf("speedup at 16 readers: %.2fx, warm allocs/op %.0f, in %v\n",
		rep.SpeedupAt16, rep.AllocsPerOp, time.Since(start).Round(time.Millisecond))
	if jsonPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// runThroughput executes the saturation benchmark, prints the
// architecture ladder, and records the report for the regression gate.
func runThroughput(cfg eval.ThroughputConfig, jsonPath string) error {
	start := time.Now()
	rep, err := eval.RunThroughput(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("throughput: %d streams × %d frames, %d shards, batch %d\n",
		rep.Streams, rep.Frames, rep.Shards, rep.MaxBatch)
	for _, r := range rep.Results {
		var contended int64
		for _, sh := range r.Shards {
			contended += sh.Contended
		}
		line := fmt.Sprintf("  %-22s %8.1f fps  p50=%6.2fms p95=%6.2fms p99=%6.2fms  dnn=%d hit=%.0f%%",
			r.Mode, r.FPS, r.P50MS, r.P95MS, r.P99MS, r.DNNFrames, r.HitRate*100)
		if r.Shards != nil {
			line += fmt.Sprintf(" contended=%d", contended)
		}
		if r.Batcher != nil {
			line += fmt.Sprintf(" avg-batch=%.1f", r.Batcher.AvgSize())
		}
		fmt.Println(line)
	}
	fmt.Printf("speedup (sharded+batched vs single-mutex): %.2fx in %v\n",
		rep.Speedup, time.Since(start).Round(time.Millisecond))
	if jsonPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// runLookupBench executes the lookup-bound hit-heavy benchmark, prints
// both pipeline configurations, and records the report for the lookup
// regression gate.
func runLookupBench(cfg eval.LookupConfig, jsonPath string) error {
	start := time.Now()
	rep, err := eval.RunLookup(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("lookup: %d entries, %d hit-heavy queries, dim %d, k=%d, %d bits\n",
		rep.Entries, rep.Queries, rep.Dim, rep.K, rep.Bits)
	for _, r := range rep.Results {
		sketch := "off"
		if r.SketchBits > 0 {
			sketch = fmt.Sprintf("%db+int8", r.SketchBits)
		}
		fmt.Printf("  %-24s tables=%d probes=%d sketch=%-8s %9.0f ns/op  recall=%.3f  cand=%.0f  allocs=%.0f\n",
			r.Name, r.Tables, r.Probes, sketch, r.NsPerOp, r.Recall, r.Candidates, r.AllocsPerOp)
	}
	fmt.Printf("speedup (tuned vs exact-bucket): %.2fx at recall %.3f vs %.3f in %v\n",
		rep.Speedup, rep.RecallTuned, rep.RecallBase, time.Since(start).Round(time.Millisecond))
	if jsonPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// runP2PBench executes the bandwidth-constrained peer wire benchmark,
// prints the legacy-vs-compact comparison per link speed, and records
// the report for the p2p regression gate.
func runP2PBench(cfg eval.P2PConfig, jsonPath string) error {
	start := time.Now()
	rep, err := eval.RunP2P(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("p2p: %d peers, %d sessions, %d frames, dim %d\n",
		rep.Nodes, rep.Sessions, rep.Frames, rep.Dim)
	for _, pt := range rep.Points {
		for _, m := range []eval.P2PModeResult{pt.Legacy, pt.Compact} {
			fmt.Printf("  %5.2f MB/s %-11s %8.1f B/frame  hit=%.3f  mean=%6.2fms p95=%6.2fms  coalesced=%d+%d  batches=%d (avg %.1f)\n",
				pt.BandwidthMBps, m.Mode, m.BytesPerFrame, m.PeerHitRate,
				m.MeanLatencyMS, m.P95LatencyMS,
				m.CoalescedInFlight, m.CoalescedCached, m.Batches, m.AvgBatchItems)
		}
		fmt.Printf("  %5.2f MB/s reduction %.1fx, latency speedup %.2fx\n",
			pt.BandwidthMBps, pt.BytesReduction, pt.LatencySpeedup)
	}
	fmt.Printf("at %.2f MB/s: %.1fx bytes/frame reduction, hit rate %.3f -> %.3f in %v\n",
		rep.ConstrainedMBps, rep.BytesReduction, rep.HitLegacy, rep.HitCompact,
		time.Since(start).Round(time.Millisecond))
	if jsonPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// runQualityBench executes the label-drift benchmark, prints the three
// node runs, and records the report for the quality regression gate.
func runQualityBench(cfg eval.QualityBenchConfig, jsonPath string) error {
	start := time.Now()
	rep, err := eval.RunQuality(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("drift: %d frames, label space rotated by %d every %d frames from frame %d\n",
		rep.Frames, rep.Shift, rep.Frames/8, rep.DriftFrame)
	for _, r := range rep.Runs {
		line := fmt.Sprintf("  %-12s tail-acc=%.3f full-acc=%.3f tail=%6.2fms savings=%.3f",
			r.Name, r.TailAccuracy, r.FullAccuracy, r.TailMeanLatencyMS, r.LatencySavings)
		if r.Audits > 0 {
			line += fmt.Sprintf("  audits=%d refutes=%d quar=%d parole=%d/%d recal=%d/%d refusals=%d",
				r.Audits, r.AuditRefutes, r.Quarantines, r.Paroles, r.ParoleEvictions,
				r.RecalTightens, r.RecalLoosens, r.ReuseRefusals)
		}
		fmt.Println(line)
	}
	fmt.Printf("accuracy recovery %.3f, savings retention %.3f (unprotected tail accuracy %.3f) in %v\n",
		rep.AccuracyRecovery, rep.SavingsRetention, rep.UnprotectedAccuracy,
		time.Since(start).Round(time.Millisecond))
	if jsonPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// runOverloadBench executes the open-loop overload sweep, prints the
// load ladder for both node configurations, and records the report for
// the goodput-retention gate.
func runOverloadBench(cfg eval.OverloadConfig, jsonPath string) error {
	start := time.Now()
	rep, err := eval.RunOverload(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("overload: %d sessions, capacity %.0f req/s (closed-loop), deadline %.0fms\n",
		rep.Sessions, rep.CapacityRPS, rep.DeadlineMS)
	for _, p := range rep.Points {
		line := fmt.Sprintf("  %-12s %4gx %8.0f req/s offered  goodput=%7.0f/s  p50=%8.2fms p99=%8.2fms  shed=%d err=%d unfinished=%d",
			p.Mode, p.Load, p.OfferedRPS, p.GoodputRPS, p.P50MS, p.P99MS,
			p.Shed, p.Errors, p.Unfinished)
		if p.AdmissionLimit > 0 {
			line += fmt.Sprintf("  limit=%d level=%s", p.AdmissionLimit, p.BrownoutLevel)
		}
		fmt.Println(line)
	}
	fmt.Printf("goodput retention at max load: %.2f (resilient p99 %.1fms vs unprotected %.1fms) in %v\n",
		rep.Retention, rep.ResilientP99MS, rep.UnprotectedP99MS,
		time.Since(start).Round(time.Millisecond))
	if jsonPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}
