package eval

import "testing"

func TestRunP2P(t *testing.T) {
	cfg := P2PConfig{Frames: 120, BandwidthsMBps: []float64{0.5, 3}, Seed: 7}
	rep, err := RunP2P(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	if rep.ConstrainedMBps != 0.5 {
		t.Fatalf("constrained bandwidth = %v", rep.ConstrainedMBps)
	}
	if rep.BytesReduction < 4 {
		t.Fatalf("bytes reduction = %.2fx, want >= 4x", rep.BytesReduction)
	}
	if rep.HitCompact < rep.HitLegacy {
		t.Fatalf("compact hit rate %.3f dropped below legacy %.3f", rep.HitCompact, rep.HitLegacy)
	}
	if rep.HitLegacy == 0 {
		t.Fatal("legacy peer hit rate is zero; workload is broken")
	}
	pt := rep.Points[0]
	if pt.Compact.CoalescedCached == 0 && pt.Compact.CoalescedInFlight == 0 {
		t.Fatal("compact mode never coalesced despite duplicate sessions")
	}
	if pt.Compact.Batches == 0 {
		t.Fatal("compact mode never batched gossip")
	}
	if pt.Legacy.CoalescedCached != 0 || pt.Legacy.CoalescedInFlight != 0 || pt.Legacy.Batches != 0 {
		t.Fatal("legacy mode must not coalesce or batch")
	}
	// A constrained link must not change what bytes are sent — only how
	// long they take.
	if rep.Points[0].Legacy.SentBytes != rep.Points[1].Legacy.SentBytes {
		t.Fatalf("legacy bytes vary with bandwidth: %d vs %d",
			rep.Points[0].Legacy.SentBytes, rep.Points[1].Legacy.SentBytes)
	}
}

func TestRunP2PValidate(t *testing.T) {
	bad := []P2PConfig{
		{Nodes: 1, Sessions: 1, Frames: 1, Dim: 1, PerNode: 1, GossipEvery: 1, DigestEvery: 1, BandwidthsMBps: []float64{1}},
		{Nodes: 2, Sessions: 1, Frames: 1, Dim: 1, PerNode: 1, GossipEvery: 1, DigestEvery: 1, BandwidthsMBps: []float64{-1}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d validated", i)
		}
	}
}

func TestE25P2PWireShape(t *testing.T) {
	r, err := E25P2PWire(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "E25" {
		t.Fatalf("id = %q", r.ID)
	}
	// Two rows (legacy + compact) per bandwidth point.
	if len(r.Rows) == 0 || len(r.Rows)%2 != 0 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if len(row) != len(r.Headers) {
			t.Fatalf("row width %d != headers %d", len(row), len(r.Headers))
		}
	}
}
