package video

import (
	"testing"
	"time"

	"approxcache/internal/imu"
	"approxcache/internal/vision"
)

func classes(t *testing.T, n int) *vision.ClassSet {
	t.Helper()
	cs, err := vision.NewClassSet(n, 48, 48, 31)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestStreamConfigValidate(t *testing.T) {
	good := StreamConfig{
		FPS:      15,
		Segments: []Segment{{Regime: imu.Stationary, Frames: 10}},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []StreamConfig{
		{Segments: []Segment{{Regime: imu.Stationary, Frames: 1}}},
		{FPS: 15},
		{FPS: 15, Segments: []Segment{{Regime: imu.Stationary, Frames: 0}}},
		{FPS: 15, Segments: []Segment{{Regime: imu.Regime(77), Frames: 5}}},
		{FPS: 15, SceneHold: -1, Segments: []Segment{{Regime: imu.Stationary, Frames: 1}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateNilClasses(t *testing.T) {
	cfg := StreamConfig{FPS: 15, Segments: []Segment{{Regime: imu.Stationary, Frames: 1}}}
	if _, err := Generate(cfg, nil); err == nil {
		t.Fatal("nil class set accepted")
	}
}

func TestGenerateBasicShape(t *testing.T) {
	cs := classes(t, 4)
	cfg := StreamConfig{
		FPS: 10,
		Segments: []Segment{
			{Regime: imu.Stationary, Frames: 20},
			{Regime: imu.Walking, Frames: 30},
		},
		Perturb: vision.DefaultPerturbation(),
		Seed:    1,
	}
	frames, err := Generate(cfg, cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 50 {
		t.Fatalf("len = %d, want 50", len(frames))
	}
	for i, f := range frames {
		if f.Index != i {
			t.Fatalf("frame %d has index %d", i, f.Index)
		}
		if f.Offset != time.Duration(i)*100*time.Millisecond {
			t.Fatalf("frame %d offset = %v", i, f.Offset)
		}
		if f.Image == nil {
			t.Fatalf("frame %d has nil image", i)
		}
		if f.Class < 0 || f.Class >= 4 {
			t.Fatalf("frame %d class = %d", i, f.Class)
		}
	}
	for i := 0; i < 20; i++ {
		if frames[i].Regime != imu.Stationary {
			t.Fatalf("frame %d regime = %v", i, frames[i].Regime)
		}
	}
	for i := 20; i < 50; i++ {
		if frames[i].Regime != imu.Walking {
			t.Fatalf("frame %d regime = %v", i, frames[i].Regime)
		}
	}
}

func TestStationarySegmentHoldsScene(t *testing.T) {
	cs := classes(t, 4)
	cfg := StreamConfig{
		FPS:      15,
		Segments: []Segment{{Regime: imu.Stationary, Frames: 40}},
		Seed:     2,
	}
	frames, err := Generate(cfg, cs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if f.Scene != frames[0].Scene || f.Class != frames[0].Class {
			t.Fatalf("stationary scene changed at frame %d", f.Index)
		}
	}
}

func TestWalkingChangesScenes(t *testing.T) {
	cs := classes(t, 6)
	cfg := StreamConfig{
		FPS:      15,
		Segments: []Segment{{Regime: imu.Walking, Frames: 90}},
		Seed:     3,
	}
	frames, err := Generate(cfg, cs)
	if err != nil {
		t.Fatal(err)
	}
	scenes := make(map[int]struct{})
	for _, f := range frames {
		scenes[f.Scene] = struct{}{}
	}
	// 90 frames at hold 15 → 6 scenes.
	if len(scenes) < 4 {
		t.Fatalf("walking produced only %d scenes", len(scenes))
	}
}

func TestPanningChangesFasterThanWalking(t *testing.T) {
	cs := classes(t, 6)
	count := func(r imu.Regime) int {
		cfg := StreamConfig{
			FPS:      15,
			Segments: []Segment{{Regime: r, Frames: 120}},
			Seed:     4,
		}
		frames, err := Generate(cfg, cs)
		if err != nil {
			t.Fatal(err)
		}
		scenes := make(map[int]struct{})
		for _, f := range frames {
			scenes[f.Scene] = struct{}{}
		}
		return len(scenes)
	}
	if count(imu.Panning) <= count(imu.Walking) {
		t.Fatal("panning should change scenes faster than walking")
	}
}

func TestSceneChangeChangesClassAndMonotonicSceneIDs(t *testing.T) {
	cs := classes(t, 6)
	cfg := StreamConfig{
		FPS:      15,
		Segments: []Segment{{Regime: imu.Panning, Frames: 80}},
		Seed:     5,
	}
	frames, err := Generate(cfg, cs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(frames); i++ {
		prev, cur := frames[i-1], frames[i]
		if cur.Scene < prev.Scene {
			t.Fatal("scene ids not monotonic")
		}
		if cur.Scene == prev.Scene && cur.Class != prev.Class {
			t.Fatal("class changed within a scene")
		}
		if cur.Scene != prev.Scene && cur.Class == prev.Class {
			t.Fatal("scene change kept the same class (should avoid immediate repeat)")
		}
	}
}

func TestSceneHoldOverride(t *testing.T) {
	cs := classes(t, 6)
	cfg := StreamConfig{
		FPS:       15,
		Segments:  []Segment{{Regime: imu.Walking, Frames: 30}},
		SceneHold: 5,
		Seed:      6,
	}
	frames, err := Generate(cfg, cs)
	if err != nil {
		t.Fatal(err)
	}
	scenes := make(map[int]struct{})
	for _, f := range frames {
		scenes[f.Scene] = struct{}{}
	}
	if len(scenes) != 6 {
		t.Fatalf("hold=5 over 30 frames should give 6 scenes, got %d", len(scenes))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cs := classes(t, 4)
	cfg := StreamConfig{
		FPS: 15,
		Segments: []Segment{
			{Regime: imu.Handheld, Frames: 10},
			{Regime: imu.Panning, Frames: 20},
		},
		Perturb: vision.DefaultPerturbation(),
		Seed:    7,
	}
	a, err := Generate(cfg, cs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, cs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Class != b[i].Class || a[i].Scene != b[i].Scene {
			t.Fatalf("streams diverged at frame %d", i)
		}
		if vision.MeanAbsDiff(a[i].Image, b[i].Image) != 0 {
			t.Fatalf("images diverged at frame %d", i)
		}
	}
}

func TestDiffGateConfigValidate(t *testing.T) {
	if err := DefaultDiffGateConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, th := range []float64{0, -0.1, 1, 2} {
		if err := (DiffGateConfig{Threshold: th}).Validate(); err == nil {
			t.Errorf("threshold %v accepted", th)
		}
	}
	if _, err := NewDiffGate(DiffGateConfig{}); err == nil {
		t.Fatal("NewDiffGate accepted bad config")
	}
}

func TestDiffGateLifecycle(t *testing.T) {
	g, err := NewDiffGate(DefaultDiffGateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if g.HasKey() {
		t.Fatal("fresh gate has a key")
	}
	im := vision.NewImage(8, 8)
	if ok, d := g.Similar(im); ok || d != 1 {
		t.Fatal("no-key gate should report dissimilar")
	}
	g.SetKey(im)
	if !g.HasKey() {
		t.Fatal("key not installed")
	}
	if ok, d := g.Similar(im); !ok || d != 0 {
		t.Fatalf("identical frame not similar: ok=%v d=%v", ok, d)
	}
	if ok, _ := g.Similar(nil); ok {
		t.Fatal("nil frame similar")
	}
	g.Reset()
	if g.HasKey() {
		t.Fatal("Reset did not clear key")
	}
	g.SetKey(nil)
	if g.HasKey() {
		t.Fatal("SetKey(nil) should clear key")
	}
}

func TestDiffGateKeyIsCopied(t *testing.T) {
	g, err := NewDiffGate(DefaultDiffGateConfig())
	if err != nil {
		t.Fatal(err)
	}
	im := vision.NewImage(4, 4)
	g.SetKey(im)
	for i := range im.Pix {
		im.Pix[i] = 1 // mutate after SetKey
	}
	if ok, _ := g.Similar(im); ok {
		t.Fatal("gate key aliases caller's image")
	}
}

// Within-scene frames must pass the default gate; cross-scene frames
// must fail it. This is the temporal-locality property the video gate
// exploits.
func TestDiffGateSeparatesScenes(t *testing.T) {
	cs := classes(t, 4)
	cfg := StreamConfig{
		FPS: 15,
		Segments: []Segment{
			{Regime: imu.Stationary, Frames: 10},
			{Regime: imu.Panning, Frames: 10},
		},
		Perturb: vision.DefaultPerturbation(),
		Seed:    8,
	}
	frames, err := Generate(cfg, cs)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewDiffGate(DefaultDiffGateConfig())
	if err != nil {
		t.Fatal(err)
	}
	g.SetKey(frames[0].Image)
	samePass, sameN := 0, 0
	crossPass, crossN := 0, 0
	for _, f := range frames[1:] {
		ok, _ := g.Similar(f.Image)
		// Grade by class: reusing the key's label is correct exactly
		// when the frame shows the same class.
		if f.Class == frames[0].Class {
			sameN++
			if ok {
				samePass++
			}
		} else {
			crossN++
			if ok {
				crossPass++
			}
		}
	}
	if sameN == 0 || crossN == 0 {
		t.Fatal("test stream did not produce both cases")
	}
	if samePass*2 < sameN {
		t.Fatalf("same-class pass rate too low: %d/%d", samePass, sameN)
	}
	if crossPass*4 > crossN {
		t.Fatalf("cross-class pass rate too high: %d/%d", crossPass, crossN)
	}
}
