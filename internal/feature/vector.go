// Package feature defines the feature-vector representation used as the
// approximate-cache key space, the distance metrics over it, and the
// extractors that map camera frames into it.
//
// Approximate computation reuse works in any feature space where
// "visually the same scene" implies "nearby vectors". The extractors in
// this package (downsampled luminance grid, intensity histogram, and
// their concatenation) provide that metric structure for the synthetic
// frames produced by internal/vision.
package feature

import (
	"errors"
	"fmt"
	"math"
)

// Vector is a dense feature vector. Vectors compared with the functions
// in this package must have equal dimension.
type Vector []float64

// ErrDimensionMismatch is returned when two vectors of different
// dimensions are compared.
var ErrDimensionMismatch = errors.New("feature: dimension mismatch")

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dim returns the dimensionality of v.
func (v Vector) Dim() int { return len(v) }

// Norm returns the L2 norm of v.
func (v Vector) Norm() float64 {
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// Normalize scales v in place to unit L2 norm. A zero vector is left
// unchanged.
func (v Vector) Normalize() {
	n := v.Norm()
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// Normalized returns a unit-norm copy of v.
func (v Vector) Normalized() Vector {
	out := v.Clone()
	out.Normalize()
	return out
}

// Dot returns the inner product of a and b.
func Dot(a, b Vector) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(a), len(b))
	}
	var sum float64
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum, nil
}

// Euclidean returns the L2 distance between a and b.
func Euclidean(a, b Vector) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(a), len(b))
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum), nil
}

// MustEuclidean is Euclidean for callers that have already validated
// dimensions (hot paths such as kNN scans). Mismatched dimensions return
// +Inf, which callers treat as "infinitely far".
func MustEuclidean(a, b Vector) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Cosine returns the cosine distance (1 - cosine similarity) between a
// and b. Zero vectors are at distance 1 from everything.
func Cosine(a, b Vector) (float64, error) {
	dot, err := Dot(a, b)
	if err != nil {
		return 0, err
	}
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 1, nil
	}
	sim := dot / (na * nb)
	// Clamp against floating point drift outside [-1, 1].
	if sim > 1 {
		sim = 1
	} else if sim < -1 {
		sim = -1
	}
	return 1 - sim, nil
}

// Metric identifies a distance function over Vectors.
type Metric int

// Supported metrics.
const (
	MetricEuclidean Metric = iota + 1
	MetricCosine
)

// String returns the metric name.
func (m Metric) String() string {
	switch m {
	case MetricEuclidean:
		return "euclidean"
	case MetricCosine:
		return "cosine"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Distance computes the metric's distance between a and b.
func (m Metric) Distance(a, b Vector) (float64, error) {
	switch m {
	case MetricEuclidean:
		return Euclidean(a, b)
	case MetricCosine:
		return Cosine(a, b)
	default:
		return 0, fmt.Errorf("feature: unknown metric %d", int(m))
	}
}
