package p2p

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrameSize bounds a single length-prefixed frame (hostile-input
// guard and back-pressure limit).
const MaxFrameSize = 1 << 20

// ErrFrameTooLarge is returned for frames exceeding MaxFrameSize.
var ErrFrameTooLarge = errors.New("p2p: frame too large")

// writeFrame writes a 4-byte big-endian length prefix followed by
// payload.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	return readFrameInto(r, nil)
}

// readFrameInto reads one length-prefixed frame into buf (grown as
// needed), so connection loops can recycle one request buffer.
func readFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	payload := buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// TCPServer serves the peer protocol on a TCP listener. Each inbound
// frame is dispatched to the Service and answered with one response
// frame; connections carry any number of sequential exchanges.
type TCPServer struct {
	svc *Service
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool
}

// ListenAndServe starts serving svc on addr (e.g. "127.0.0.1:0") and
// returns once the listener is bound.
func ListenAndServe(addr string, svc *Service) (*TCPServer, error) {
	if svc == nil {
		return nil, fmt.Errorf("p2p: nil service")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	s := &TCPServer{svc: svc, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, closes all connections, and waits for the
// serving goroutines to exit.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
		s.wg.Done()
	}()
	remote := conn.RemoteAddr().String()
	// Per-connection request/response buffers: sequential exchanges
	// reuse them, so a steady peer stream stops allocating per message.
	var reqBuf, respBuf []byte
	for {
		req, err := readFrameInto(conn, reqBuf)
		if err != nil {
			return // EOF or peer misbehaving: drop the connection
		}
		reqBuf = req[:0]
		resp, err := s.svc.HandleRawAppend(remote, req, respBuf[:0])
		if err != nil {
			return
		}
		respBuf = resp[:0]
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// TCPTransport is a Transport over real TCP connections. Peer names are
// "host:port" addresses. Connections are pooled and re-dialed on error.
type TCPTransport struct {
	dialTimeout time.Duration
	ioTimeout   time.Duration

	mu    sync.Mutex
	conns map[string]net.Conn
}

var _ Transport = (*TCPTransport)(nil)

// NewTCPTransport builds a transport with the given dial and per-call
// I/O timeouts.
func NewTCPTransport(dialTimeout, ioTimeout time.Duration) (*TCPTransport, error) {
	if dialTimeout <= 0 || ioTimeout <= 0 {
		return nil, fmt.Errorf("p2p: timeouts must be positive (%v, %v)", dialTimeout, ioTimeout)
	}
	return &TCPTransport{
		dialTimeout: dialTimeout,
		ioTimeout:   ioTimeout,
		conns:       make(map[string]net.Conn),
	}, nil
}

// Close closes all pooled connections.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var first error
	for addr, c := range t.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
		delete(t.conns, addr)
	}
	return first
}

// conn returns a pooled or fresh connection to addr. The caller holds
// exclusive use of the connection until release.
func (t *TCPTransport) conn(addr string) (net.Conn, error) {
	t.mu.Lock()
	c, ok := t.conns[addr]
	if ok {
		delete(t.conns, addr) // checked out
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()
	c, err := net.DialTimeout("tcp", addr, t.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	return c, nil
}

// release returns a healthy connection to the pool.
func (t *TCPTransport) release(addr string, c net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.conns[addr]; exists {
		// Another connection is already pooled; drop this one.
		_ = c.Close()
		return
	}
	t.conns[addr] = c
}

// Call implements Transport over a pooled TCP connection, measuring the
// real round-trip time.
func (t *TCPTransport) Call(peer string, req []byte) ([]byte, time.Duration, error) {
	c, err := t.conn(peer)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	deadline := start.Add(t.ioTimeout)
	if err := c.SetDeadline(deadline); err != nil {
		_ = c.Close()
		return nil, 0, err
	}
	if err := writeFrame(c, req); err != nil {
		_ = c.Close()
		return nil, time.Since(start), fmt.Errorf("write to %s: %w", peer, err)
	}
	resp, err := readFrame(c)
	rtt := time.Since(start)
	if err != nil {
		_ = c.Close()
		return nil, rtt, fmt.Errorf("read from %s: %w", peer, err)
	}
	t.release(peer, c)
	return resp, rtt, nil
}

// Send implements Transport. The peer protocol acknowledges gossip, so
// Send is a Call that discards the Ack; this keeps one-way messages
// flow-controlled on real networks.
func (t *TCPTransport) Send(peer string, payload []byte) (time.Duration, error) {
	_, cost, err := t.Call(peer, payload)
	return cost, err
}
