package core

import (
	"fmt"

	"approxcache/internal/admission"
	"approxcache/internal/metrics"
)

// Pool is a multi-session serving front: N engines, one per client
// stream, each with private gate state (IMU detector, keyframe
// library, last-result, reuse streak) over SHARED infrastructure — the
// cache store, the classifier (typically a micro-batching scheduler),
// the classifier watchdog, and one session-stats scoreboard.
//
// Private gate state matters because the cheap gates reason about ONE
// camera's temporal locality; interleaving streams through a single
// engine would let stream A's keyframes answer stream B's frames. The
// shared store matters for the opposite reason: recognition results
// are stream-independent, so every stream should hit every stream's
// cached work — that is the serving-scale analogue of the paper's
// cross-device sharing.
type Pool struct {
	engines []*Engine
	stats   *metrics.SessionStats
}

// NewPool builds n engines from cfg and deps. All engines share
// deps.Store, deps.Classifier, one watchdog (so classifier failures
// trip one breaker for the whole node, not per-stream), one admission
// controller (they contend for one accelerator, so one limiter governs
// them all), and one SessionStats. Each session gets its own retry
// jitter seed so a recovering classifier is not hit by synchronized
// retry storms.
func NewPool(n int, cfg Config, deps Deps) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: pool size must be positive, got %d", n)
	}
	// Build the first engine through the validating path; it creates
	// the shared stats, watchdog, and admission controller the siblings
	// attach to.
	first, err := newEngine(cfg, deps, nil, nil, nil, nil, 0)
	if err != nil {
		return nil, err
	}
	p := &Pool{engines: make([]*Engine, n), stats: first.stats}
	p.engines[0] = first
	for i := 1; i < n; i++ {
		e, err := newEngine(cfg, deps, first.stats, first.wd, first.ctrl, first.quality, i)
		if err != nil {
			return nil, err
		}
		p.engines[i] = e
	}
	return p, nil
}

// Size returns the number of sessions.
func (p *Pool) Size() int { return len(p.engines) }

// Session returns stream i's engine.
func (p *Pool) Session(i int) *Engine { return p.engines[i] }

// Sessions returns all engines, one per stream.
func (p *Pool) Sessions() []*Engine {
	out := make([]*Engine, len(p.engines))
	copy(out, p.engines)
	return out
}

// Stats returns the pool-wide session statistics (shared by every
// engine).
func (p *Pool) Stats() *metrics.SessionStats { return p.stats }

// AdmissionSnapshot returns the shared overload controller's state; ok
// is false when admission control is disabled.
func (p *Pool) AdmissionSnapshot() (admission.Snapshot, bool) {
	return p.engines[0].AdmissionSnapshot()
}
