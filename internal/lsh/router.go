package lsh

import (
	"fmt"
	"math/rand"

	"approxcache/internal/feature"
)

// Router assigns vectors to shards by random-hyperplane signature
// prefix. It is the partitioning half of the sharded cache store:
// every insert and every query routes through the same hyperplanes, so
// a query always lands on the shard holding its near neighbors'
// signatures — cross-shard merges are only needed because LSH is
// approximate, not because routing is lossy.
//
// The router draws its own hyperplanes (independent of any index
// seed): shard assignment must be stable across index rebuilds, and
// the adaptive index re-seeds its planes on skew.
type Router struct {
	dim    int
	shards int
	bits   int
	// planes holds one hyperplane per routing bit, flattened like
	// HyperplaneIndex.planes.
	planes []float64
}

// NewRouter builds a router over dim-dimensional vectors spreading
// load across shards partitions. shards must be in [1, 256].
func NewRouter(dim, shards int, seed int64) (*Router, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("lsh: router dim must be positive, got %d", dim)
	}
	if shards < 1 || shards > 256 {
		return nil, fmt.Errorf("lsh: router shards must be in [1,256], got %d", shards)
	}
	bits := 0
	for 1<<bits < shards {
		bits++
	}
	// At least one spare bit keeps signature%shards roughly uniform
	// when shards is not a power of two.
	if bits < 8 {
		bits = 8
	}
	r := &Router{
		dim:    dim,
		shards: shards,
		bits:   bits,
		planes: make([]float64, bits*dim),
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range r.planes {
		r.planes[i] = rng.NormFloat64()
	}
	return r, nil
}

// Shards returns the number of partitions.
func (r *Router) Shards() int { return r.shards }

// Route returns v's shard in [0, Shards()). A single-shard router
// always returns 0 without projecting.
func (r *Router) Route(v feature.Vector) (int, error) {
	if len(v) != r.dim {
		return 0, fmt.Errorf("lsh: router dim %d, vector dim %d: %w",
			r.dim, len(v), feature.ErrDimensionMismatch)
	}
	if r.shards == 1 {
		return 0, nil
	}
	var sig uint64
	for b := 0; b < r.bits; b++ {
		row := r.planes[b*r.dim : (b+1)*r.dim : (b+1)*r.dim]
		var dot float64
		for d, p := range row {
			dot += p * v[d]
		}
		if dot >= 0 {
			sig |= 1 << uint(b)
		}
	}
	return int(sig % uint64(r.shards)), nil
}
