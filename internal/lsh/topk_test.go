package lsh

import (
	"math/rand"
	"sort"
	"testing"
)

// sortSelect is the specification kSelector must match: rank everything
// by (distance, id) and truncate to k.
func sortSelect(ns []Neighbor, k int) []Neighbor {
	out := append([]Neighbor(nil), ns...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func runSelector(ns []Neighbor, k int) []Neighbor {
	var sel kSelector
	sel.reset(k, nil)
	for _, n := range ns {
		sel.add(n)
	}
	return sel.finish()
}

func checkSelect(t *testing.T, ns []Neighbor, k int) {
	t.Helper()
	got := runSelector(ns, k)
	want := sortSelect(ns, k)
	if len(got) != len(want) {
		t.Fatalf("k=%d n=%d: selected %d, want %d", k, len(ns), len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("k=%d n=%d pos %d: got %+v, want %+v\ngot:  %v\nwant: %v",
				k, len(ns), i, got[i], want[i], got, want)
		}
	}
}

// genNeighbors draws n candidates; quantizing distances to a few levels
// forces heavy ties so the ID tie-break is exercised.
func genNeighbors(rng *rand.Rand, n int, quantize bool) []Neighbor {
	ns := make([]Neighbor, n)
	for i := range ns {
		d := rng.Float64()
		if quantize {
			d = float64(int(d*4)) / 4
		}
		ns[i] = Neighbor{ID: ID(rng.Intn(n + 4)), Distance: d}
	}
	return ns
}

func TestSelectorMatchesSortAcrossRegimes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// k values straddling insertionSelectK exercise both the insertion
	// buffer and the heap; n straddling k exercises partial fills.
	for _, k := range []int{1, 2, insertionSelectK - 1, insertionSelectK, insertionSelectK + 1, 100} {
		for _, n := range []int{0, 1, k - 1, k, k + 1, 3 * k, 500} {
			if n < 0 {
				continue
			}
			for _, quantize := range []bool{false, true} {
				for rep := 0; rep < 20; rep++ {
					checkSelect(t, genNeighbors(rng, n, quantize), k)
				}
			}
		}
	}
}

func TestSelectorReusesBuffer(t *testing.T) {
	buf := make([]Neighbor, 0, 8)
	var sel kSelector
	sel.reset(4, buf)
	for i := 0; i < 100; i++ {
		sel.add(Neighbor{ID: ID(i), Distance: float64(100 - i)})
	}
	got := sel.finish()
	if len(got) != 4 {
		t.Fatalf("selected %d, want 4", len(got))
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("selector did not write into the caller's buffer")
	}
	for i, n := range got {
		if want := ID(99 - i); n.ID != want {
			t.Fatalf("pos %d: got ID %d, want %d", i, n.ID, want)
		}
	}
}

// FuzzSelectorMatchesSort is the property test as a fuzz target: any
// (seed, k, n, quantization) must satisfy selector ≡ sort-then-truncate.
func FuzzSelectorMatchesSort(f *testing.F) {
	f.Add(int64(1), 4, 512, true)
	f.Add(int64(2), 64, 100, false)
	f.Add(int64(3), 1, 1, true)
	f.Add(int64(4), 33, 32, true)
	f.Fuzz(func(t *testing.T, seed int64, k, n int, quantize bool) {
		if k <= 0 || k > 1024 || n < 0 || n > 4096 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		ns := genNeighbors(rng, n, quantize)
		got := runSelector(ns, k)
		want := sortSelect(ns, k)
		if len(got) != len(want) {
			t.Fatalf("selected %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("pos %d: got %+v, want %+v", i, got[i], want[i])
			}
		}
	})
}
