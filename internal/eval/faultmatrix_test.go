package eval

import (
	"testing"
)

// TestFaultMatrixAcceptance is the PR's acceptance gate for the
// device-side fault-tolerance layer: every guarded sensor-fault row
// keeps accuracy at the clean baseline, the DNN outage is served
// through (no aborts, bounded latency) with the breaker tripping and
// recovering on heal, and the guard counters are visible per row.
func TestFaultMatrixAcceptance(t *testing.T) {
	const frames = 150
	rows, err := RunFaultMatrix(DefaultFaultScenarios(), frames, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DefaultFaultScenarios()) {
		t.Fatalf("got %d rows, want %d", len(rows), len(DefaultFaultScenarios()))
	}
	byName := make(map[string]FaultMatrixRow, len(rows))
	for _, r := range rows {
		if r.Frames+r.Rejected != frames {
			t.Errorf("%s: %d served + %d rejected ≠ %d frames", r.Name, r.Frames, r.Rejected, frames)
		}
		byName[r.Name] = r
	}

	clean := byName["clean"]
	if clean.SensorFaults != 0 || clean.DegradedServes != 0 || clean.Trips != 0 {
		t.Fatalf("clean run not clean: %+v", clean)
	}
	if clean.Accuracy < 0.9 {
		t.Fatalf("clean accuracy %.3f, want ≥ 0.9", clean.Accuracy)
	}

	// Guarded IMU faults: detected, routed past the reuse gates, and
	// harmless to accuracy.
	for _, name := range []string{"imu-dropout (guarded)", "imu-stuck (guarded)", "imu-saturate (guarded)"} {
		r := byName[name]
		if r.SensorFaults == 0 {
			t.Errorf("%s: guards detected nothing", name)
		}
		if r.Accuracy < clean.Accuracy-0.02 {
			t.Errorf("%s: accuracy %.3f fell below clean %.3f", name, r.Accuracy, clean.Accuracy)
		}
	}
	// Degenerate frames: flagged and kept out of the cache; the DNN
	// still answers them (accuracy on unanswerable frames is not the
	// guard's to fix, pollution is).
	if r := byName["frame-black (guarded)"]; r.SensorFaults == 0 {
		t.Error("frame-black (guarded): guards detected nothing")
	}
	// Unguarded rows must show the guards actually off.
	for _, name := range []string{"imu-stuck (unguarded)", "frame-black (unguarded)"} {
		if r := byName[name]; r.SensorFaults != 0 {
			t.Errorf("%s: sensor faults counted with guards disabled", name)
		}
	}

	// DNN outage with the watchdog: the breaker trips, the engine
	// keeps serving (degraded, zero aborts), and it recovers on heal.
	wd := byName["dnn-outage (watchdog)"]
	if wd.Frames != frames {
		t.Errorf("outage aborted frames: served %d of %d", wd.Frames, frames)
	}
	if wd.Trips < 1 || wd.Recoveries < 1 {
		t.Errorf("outage trips=%d recoveries=%d, want ≥ 1 each", wd.Trips, wd.Recoveries)
	}
	if wd.FastFails == 0 {
		t.Error("outage: breaker never fast-failed while open")
	}
	if wd.DegradedServes == 0 {
		t.Error("outage: no degraded serves during the down window")
	}
	if wd.Accuracy < 0.9 {
		t.Errorf("outage accuracy %.3f, want ≥ 0.9 (cache-only serves of warm content)", wd.Accuracy)
	}
	// Without the watchdog there is no breaker bookkeeping, but the
	// engine's own fallback still serves the outage.
	raw := byName["dnn-outage (no watchdog)"]
	if raw.Trips != 0 || raw.FastFails != 0 {
		t.Errorf("no-watchdog row has breaker events: %+v", raw)
	}
	if raw.DegradedServes == 0 {
		t.Error("no-watchdog outage: no degraded serves")
	}
}

func TestE19Report(t *testing.T) {
	rep, err := E19DeviceFaults(Scale{Frames: 90, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "E19" {
		t.Fatalf("report ID = %q", rep.ID)
	}
	if len(rep.Rows) != len(DefaultFaultScenarios()) {
		t.Fatalf("report has %d rows, want %d", len(rep.Rows), len(DefaultFaultScenarios()))
	}
	if len(rep.Headers) == 0 || rep.Headers[0] != "scenario" {
		t.Fatalf("report headers = %v", rep.Headers)
	}
}

func TestFaultScenarioRejectsTinyRuns(t *testing.T) {
	if _, err := RunFaultScenario(FaultScenario{Name: "x"}, 10, 1); err == nil {
		t.Fatal("accepted a 10-frame run")
	}
}
