package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"approxcache/internal/dnn"
	"approxcache/internal/metrics"
	"approxcache/internal/simclock"
	"approxcache/internal/vision"
)

// Typed pipeline errors. Callers match with errors.Is.
var (
	// ErrBadFrame: the frame is structurally unusable (nil, zero
	// dimensions, non-finite pixels). The engine refuses it rather than
	// feeding garbage to the gates or the cache.
	ErrBadFrame = errors.New("core: bad frame")
	// ErrBadIMUWindow: the IMU window carries non-finite readings that
	// would poison the motion statistics.
	ErrBadIMUWindow = errors.New("core: bad imu window")
	// ErrClassifierDown: the classifier watchdog has tripped (or the
	// final attempt failed after the breaker opened) and no degraded
	// answer was available.
	ErrClassifierDown = errors.New("core: classifier down")
)

// DegradationLevel records how far down the serving ladder a frame's
// answer came from. The ladder is: full pipeline (DegradeNone) → best
// approximate cache hit under a relaxed radius (DegradeCacheOnly) →
// repeat of the last served result (DegradeLastResult). Anything
// degraded is served with halved confidence and Source
// metrics.SourceFallback so callers can tell stale answers apart.
type DegradationLevel int

// Degradation levels, best to worst.
const (
	// DegradeNone: the frame was served by the healthy pipeline.
	DegradeNone DegradationLevel = iota
	// DegradeCacheOnly: the DNN was unavailable; the answer is the
	// nearest cached entry within a relaxed distance.
	DegradeCacheOnly
	// DegradeLastResult: the DNN and the cache both had nothing; the
	// answer repeats the previous frame's result.
	DegradeLastResult
)

// String returns the level name.
func (d DegradationLevel) String() string {
	switch d {
	case DegradeNone:
		return "none"
	case DegradeCacheOnly:
		return "cache-only"
	case DegradeLastResult:
		return "last-result"
	default:
		return fmt.Sprintf("DegradationLevel(%d)", int(d))
	}
}

// WatchdogConfig tunes the classifier supervisor. The zero value is a
// transparent passthrough (no timeout, no retries, never trips), so
// configs built before the watchdog existed keep their behaviour.
type WatchdogConfig struct {
	// Disabled bypasses the watchdog entirely (ablation).
	Disabled bool
	// CallTimeout bounds one classifier call on the wall clock; a call
	// exceeding it counts as failed and its frame is charged the
	// timeout. Timeouts are not retried — a wedged delegate will not
	// un-wedge in a frame budget. Zero disables the bound.
	CallTimeout time.Duration
	// MaxRetries is how many times a *failed* (not timed-out) call is
	// retried before the frame gives up. Transient faults — an OOM-
	// killed delegate, a thermal abort — often clear immediately.
	MaxRetries int
	// RetryBackoff is the simulated pause charged to the frame before
	// each retry.
	RetryBackoff time.Duration
	// TripThreshold is how many consecutive failed calls open the
	// breaker. While open, calls fast-fail without touching the
	// classifier until Cooldown elapses on the engine clock, then one
	// probe is let through. Zero or negative never trips.
	TripThreshold int
	// Cooldown is how long (engine clock) the breaker stays open
	// between probes.
	Cooldown time.Duration
}

// DefaultWatchdogConfig returns supervision tuned for a ~100 ms-class
// model: a 1 s call deadline (10× the expected cost), one quick retry,
// and a breaker that opens after 3 straight failures and re-probes
// every 500 ms.
func DefaultWatchdogConfig() WatchdogConfig {
	return WatchdogConfig{
		CallTimeout:   time.Second,
		MaxRetries:    1,
		RetryBackoff:  20 * time.Millisecond,
		TripThreshold: 3,
		Cooldown:      500 * time.Millisecond,
	}
}

// Validate reports whether the configuration is usable.
func (c WatchdogConfig) Validate() error {
	if c.CallTimeout < 0 {
		return fmt.Errorf("core: watchdog CallTimeout must be non-negative, got %v", c.CallTimeout)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("core: watchdog MaxRetries must be non-negative, got %d", c.MaxRetries)
	}
	if c.RetryBackoff < 0 {
		return fmt.Errorf("core: watchdog RetryBackoff must be non-negative, got %v", c.RetryBackoff)
	}
	if c.Cooldown < 0 {
		return fmt.Errorf("core: watchdog Cooldown must be non-negative, got %v", c.Cooldown)
	}
	return nil
}

// watchdog supervises the classifier: per-call wall-clock deadline,
// bounded retry for transient errors, and a consecutive-failure breaker
// with engine-clock cooldown and half-open probing. It reports every
// event to the session stats. Safe for concurrent use.
type watchdog struct {
	cfg   WatchdogConfig
	inner Classifier
	clock simclock.Clock
	stats *metrics.SessionStats

	mu        sync.Mutex
	failures  int // consecutive failed calls
	tripped   bool
	trippedAt time.Time // engine clock
}

func newWatchdog(cfg WatchdogConfig, inner Classifier, clock simclock.Clock, stats *metrics.SessionStats) *watchdog {
	return &watchdog{cfg: cfg, inner: inner, clock: clock, stats: stats}
}

// infer runs one supervised classification. penalty is the simulated
// latency the supervision itself cost (timeouts, retry backoff) and
// must be charged to the frame whether or not the call succeeded.
func (w *watchdog) infer(im *vision.Image) (inf dnn.Inference, penalty time.Duration, err error) {
	if w.cfg.Disabled {
		inf, err = w.inner.Infer(im)
		return inf, 0, err
	}
	w.mu.Lock()
	if w.tripped && w.clock.Now().Sub(w.trippedAt) < w.cfg.Cooldown {
		w.mu.Unlock()
		w.stats.ObserveWatchdogFastFail()
		return dnn.Inference{}, 0, fmt.Errorf("%w: breaker open", ErrClassifierDown)
	}
	// Either healthy, or the cooldown elapsed: let this call probe.
	w.mu.Unlock()

	var lastErr error
	for attempt := 0; attempt <= w.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			penalty += w.cfg.RetryBackoff
			w.stats.ObserveWatchdogRetry()
		}
		var timedOut bool
		inf, lastErr, timedOut = w.callOnce(im)
		if timedOut {
			penalty += w.cfg.CallTimeout
			w.stats.ObserveWatchdogTimeout()
			break // a wedged call will not un-wedge within a frame
		}
		if lastErr == nil {
			w.observeSuccess()
			return inf, penalty, nil
		}
	}
	if w.observeFailure() {
		return dnn.Inference{}, penalty, fmt.Errorf("%w: %v", ErrClassifierDown, lastErr)
	}
	return dnn.Inference{}, penalty, fmt.Errorf("core: infer failed: %w", lastErr)
}

// callOnce runs a single classifier call under the wall-clock deadline.
// On timeout the call's goroutine is abandoned (it exits when the inner
// call eventually returns; the buffered channel never blocks it).
func (w *watchdog) callOnce(im *vision.Image) (dnn.Inference, error, bool) {
	if w.cfg.CallTimeout <= 0 {
		inf, err := w.inner.Infer(im)
		return inf, err, false
	}
	type outcome struct {
		inf dnn.Inference
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		inf, err := w.inner.Infer(im)
		ch <- outcome{inf, err}
	}()
	timer := time.NewTimer(w.cfg.CallTimeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.inf, o.err, false
	case <-timer.C:
		return dnn.Inference{}, fmt.Errorf("core: classifier call exceeded %v", w.cfg.CallTimeout), true
	}
}

func (w *watchdog) observeSuccess() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.tripped {
		w.tripped = false
		w.stats.ObserveWatchdogRecovery()
	}
	w.failures = 0
}

// observeFailure records a failed call and reports whether the breaker
// is (now) open. A failed half-open probe re-arms the cooldown.
func (w *watchdog) observeFailure() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.failures++
	if w.cfg.TripThreshold <= 0 {
		return false
	}
	if w.failures < w.cfg.TripThreshold && !w.tripped {
		return false
	}
	if !w.tripped {
		w.tripped = true
		w.stats.ObserveWatchdogTrip()
	}
	w.trippedAt = w.clock.Now()
	return true
}
