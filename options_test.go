package approxcache_test

import (
	"testing"
	"time"

	"approxcache"
)

func TestNaiveSkipOption(t *testing.T) {
	w := testWorkload(t, 100)
	c := newCache(t, w, approxcache.Options{Mode: approxcache.ModeNaiveSkip, SkipEvery: 5})
	replay(t, c, w)
	counts := c.Stats().CountBySource()
	dnn := counts[approxcache.SourceDNN]
	// SkipEvery=5 → roughly one inference in five.
	if dnn < 15 || dnn > 25 {
		t.Fatalf("dnn runs = %d, want ~20", dnn)
	}
	if c.Mode() != approxcache.ModeNaiveSkip {
		t.Fatalf("mode = %v", c.Mode())
	}
}

func TestNaiveSkipDefaultBudget(t *testing.T) {
	w := testWorkload(t, 100)
	c := newCache(t, w, approxcache.Options{Mode: approxcache.ModeNaiveSkip})
	replay(t, c, w)
	// Default SkipEvery=20 → ~5 inferences per 100 frames.
	if dnn := c.Stats().CountBySource()[approxcache.SourceDNN]; dnn < 4 || dnn > 8 {
		t.Fatalf("dnn runs = %d, want ~5", dnn)
	}
}

func TestAdaptiveLSHOption(t *testing.T) {
	w := testWorkload(t, 150)
	c := newCache(t, w, approxcache.Options{AdaptiveLSH: true})
	replay(t, c, w)
	if c.Stats().HitRate() < 0.5 {
		t.Fatalf("adaptive hit rate = %v", c.Stats().HitRate())
	}
	if c.Len() == 0 {
		t.Fatal("adaptive cache stayed empty")
	}
}

func TestTTLOption(t *testing.T) {
	w := testWorkload(t, 150)
	// A TTL far below the trace length: entries expire mid-run and
	// the pipeline keeps working.
	c := newCache(t, w, approxcache.Options{TTL: time.Second})
	replay(t, c, w)
	if c.Stats().Frames() != 150 {
		t.Fatalf("frames = %d", c.Stats().Frames())
	}
}

func TestKeyframeCapacityOption(t *testing.T) {
	w := testWorkload(t, 100)
	c := newCache(t, w, approxcache.Options{KeyframeCapacity: 1})
	replay(t, c, w)
	if c.Stats().Frames() != 100 {
		t.Fatalf("frames = %d", c.Stats().Frames())
	}
}

func TestMaxReuseStreakDisabled(t *testing.T) {
	w := testWorkload(t, 150)
	unbounded := newCache(t, w, approxcache.Options{MaxReuseStreak: -1})
	replay(t, unbounded, w)
	bounded := newCache(t, w, approxcache.Options{})
	replay(t, bounded, w)
	// Without the staleness bound, fewer DNN runs happen (no forced
	// revalidation).
	u := unbounded.Stats().CountBySource()[approxcache.SourceDNN]
	b := bounded.Stats().CountBySource()[approxcache.SourceDNN]
	if u >= b {
		t.Fatalf("unbounded dnn runs %d not below bounded %d", u, b)
	}
}

func TestVoteOverride(t *testing.T) {
	w := testWorkload(t, 100)
	strict := newCache(t, w, approxcache.Options{
		DisableIMUGate:   true,
		DisableVideoGate: true,
		Vote: approxcache.VoteConfig{
			K: 4, MaxDistance: 0.01, DominanceRatio: 2, MinVotes: 1,
		},
	})
	replay(t, strict, w)
	loose := newCache(t, w, approxcache.Options{
		DisableIMUGate:   true,
		DisableVideoGate: true,
	})
	replay(t, loose, w)
	s := strict.Stats().CountBySource()[approxcache.SourceLocal]
	l := loose.Stats().CountBySource()[approxcache.SourceLocal]
	if s >= l {
		t.Fatalf("strict vote local hits %d not below default %d", s, l)
	}
}

func TestEvictionPolicyOption(t *testing.T) {
	for _, policy := range []approxcache.EvictionPolicy{
		approxcache.EvictLRU, approxcache.EvictLFU, approxcache.EvictCostAware,
	} {
		w := testWorkload(t, 80)
		c := newCache(t, w, approxcache.Options{Eviction: policy, Capacity: 8})
		replay(t, c, w)
		if c.Len() > 8 {
			t.Fatalf("policy %v exceeded capacity", policy)
		}
	}
}
