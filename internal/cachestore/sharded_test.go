package cachestore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"approxcache/internal/feature"
	"approxcache/internal/lsh"
	"approxcache/internal/simclock"
)

const shardTestDim = 32

func shardTestVecs(tb testing.TB, n int, seed int64) []feature.Vector {
	tb.Helper()
	r := rand.New(rand.NewSource(seed))
	out := make([]feature.Vector, n)
	for i := range out {
		v := make(feature.Vector, shardTestDim)
		for d := range v {
			v[d] = r.NormFloat64()
		}
		v.Normalize()
		out[i] = v
	}
	return out
}

// newTestSharded builds a sharded store whose shards share index seed
// 99 — the configuration under which sharded lookups must reproduce
// unsharded results exactly.
func newTestSharded(tb testing.TB, shards, capacity int, clock simclock.Clock) *ShardedStore {
	tb.Helper()
	s, err := NewSharded(ShardedConfig{
		Config: Config{Capacity: capacity},
		Dim:    shardTestDim,
		Shards: shards,
	}, func(int) (lsh.Index, error) {
		return lsh.NewHyperplane(shardTestDim, 8, 4, 99)
	}, clock)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestShardedValidation(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	bad := []ShardedConfig{
		{Config: Config{Capacity: 0}, Dim: shardTestDim, Shards: 4},
		{Config: Config{Capacity: 64}, Dim: shardTestDim, Shards: 0},
		{Config: Config{Capacity: 64}, Dim: shardTestDim, Shards: 300},
		{Config: Config{Capacity: 64}, Dim: 0, Shards: 4},
	}
	for i, cfg := range bad {
		if _, err := NewSharded(cfg, func(int) (lsh.Index, error) {
			return lsh.NewHyperplane(shardTestDim, 8, 4, 99)
		}, clock); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
	if _, err := NewSharded(ShardedConfig{
		Config: Config{Capacity: 64}, Dim: shardTestDim, Shards: 4,
	}, nil, clock); err == nil {
		t.Error("nil index constructor: want error")
	}
}

// TestShardedDifferential: on identical inserts with identical index
// seeds, sharded NearestInto must return exactly what a single-shard
// store returns — same labels, same distances, same order.
func TestShardedDifferential(t *testing.T) {
	vecs := shardTestVecs(t, 300, 21)
	queries := shardTestVecs(t, 60, 22)
	for _, shards := range []int{2, 4, 7} {
		clock := simclock.NewVirtual(time.Unix(0, 0))
		single := newTestSharded(t, 1, 1024, clock)
		sharded := newTestSharded(t, shards, 1024, clock)
		for i, v := range vecs {
			label := fmt.Sprintf("class-%d", i%17)
			if _, err := single.Insert(v, label, 0.9, "dnn", time.Millisecond); err != nil {
				t.Fatal(err)
			}
			if _, err := sharded.Insert(v, label, 0.9, "dnn", time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		for qi, q := range queries {
			a, err := single.Nearest(q, 4)
			if err != nil {
				t.Fatal(err)
			}
			b, err := sharded.Nearest(q, 4)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("shards=%d query %d: %d vs %d results", shards, qi, len(a), len(b))
			}
			for i := range a {
				if a[i].Distance != b[i].Distance {
					t.Fatalf("shards=%d query %d rank %d: distance %v vs %v",
						shards, qi, i, a[i].Distance, b[i].Distance)
				}
				la, _ := single.Label(a[i].ID)
				lb, _ := sharded.Label(b[i].ID)
				if la != lb {
					t.Fatalf("shards=%d query %d rank %d: label %q vs %q",
						shards, qi, i, la, lb)
				}
			}
		}
	}
}

// TestShardedIDsRoundTrip: global IDs decode back to live entries and
// Get rewrites the entry ID to the global form.
func TestShardedIDsRoundTrip(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	s := newTestSharded(t, 4, 256, clock)
	vecs := shardTestVecs(t, 50, 31)
	ids := make([]lsh.ID, len(vecs))
	for i, v := range vecs {
		id, err := s.Insert(v, fmt.Sprintf("c%d", i), 0.8, "dnn", time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	seen := make(map[lsh.ID]bool)
	for i, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate global ID %d", id)
		}
		seen[id] = true
		e, ok := s.Get(id)
		if !ok {
			t.Fatalf("entry %d not live", i)
		}
		if e.ID != id {
			t.Fatalf("entry %d: Get ID %d, want global %d", i, e.ID, id)
		}
		if want := fmt.Sprintf("c%d", i); e.Label != want {
			t.Fatalf("entry %d: label %q, want %q", i, e.Label, want)
		}
		s.Touch(id)
	}
	if got := s.Stats().TotalHits; got != len(ids) {
		t.Fatalf("TotalHits = %d, want %d", got, len(ids))
	}
	s.Remove(ids[0])
	if _, ok := s.Get(ids[0]); ok {
		t.Fatal("removed entry still live")
	}
	if s.Len() != len(ids)-1 {
		t.Fatalf("Len = %d, want %d", s.Len(), len(ids)-1)
	}
}

// TestShardedPerShardEviction: filling past total capacity evicts
// within shards rather than growing without bound.
func TestShardedPerShardEviction(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	s := newTestSharded(t, 4, 64, clock)
	for i, v := range shardTestVecs(t, 200, 41) {
		if _, err := s.Insert(v, fmt.Sprintf("c%d", i), 0.8, "dnn", time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	// Per-shard capacity is 16; routing is not perfectly even, so the
	// total sits at or below 64 with every shard individually bounded.
	if got := s.Len(); got > 64 {
		t.Fatalf("Len = %d, want <= 64", got)
	}
	if s.Evictions() == 0 {
		t.Fatal("no evictions after 200 inserts into capacity 64")
	}
	for _, st := range s.ShardStats() {
		if st.Entries > 16 {
			t.Fatalf("shard %d holds %d entries, per-shard cap 16", st.Shard, st.Entries)
		}
	}
}

// TestShardedSnapshotRoundTrip: export from a sharded store, import
// into both sharded and unsharded stores, entries survive intact.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	src := newTestSharded(t, 4, 256, clock)
	vecs := shardTestVecs(t, 80, 51)
	for i, v := range vecs {
		if _, err := src.Insert(v, fmt.Sprintf("c%d", i%11), 0.8, "dnn", time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}
	exported := buf.Bytes()

	// Sharded → sharded (different shard count).
	dst := newTestSharded(t, 8, 256, clock)
	n, err := dst.Import(bytes.NewReader(exported))
	if err != nil {
		t.Fatal(err)
	}
	if n != src.Len() || dst.Len() != src.Len() {
		t.Fatalf("imported %d, dst len %d, want %d", n, dst.Len(), src.Len())
	}

	// Sharded → plain Store.
	idx, err := lsh.NewHyperplane(shardTestDim, 8, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(Config{Capacity: 256}, idx, clock)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Import(bytes.NewReader(exported)); err != nil {
		t.Fatal(err)
	}
	if plain.Len() != src.Len() {
		t.Fatalf("plain len %d, want %d", plain.Len(), src.Len())
	}

	// Label multisets must match across all three.
	labels := func(entries []Entry) []string {
		out := make([]string, len(entries))
		for i, e := range entries {
			out[i] = e.Label
		}
		sort.Strings(out)
		return out
	}
	want := labels(src.Snapshot())
	for name, st := range map[string]Interface{"sharded8": dst, "plain": plain} {
		got := labels(st.Snapshot())
		if len(got) != len(want) {
			t.Fatalf("%s: %d labels, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: label[%d] = %q, want %q", name, i, got[i], want[i])
			}
		}
	}

	// Corrupt snapshot leaves the store untouched.
	bad := append([]byte(nil), exported...)
	bad[len(bad)-2] ^= 0xff
	fresh := newTestSharded(t, 4, 256, clock)
	if _, err := fresh.Import(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt import succeeded")
	}
	if fresh.Len() != 0 {
		t.Fatalf("corrupt import inserted %d entries", fresh.Len())
	}
}

// TestShardedConcurrentStress hammers one sharded store from many
// goroutines mixing Insert, NearestInto, Remove (forced eviction
// pressure), and Export. Run under -race this is the data-race proof
// for the serving path.
func TestShardedConcurrentStress(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	s := newTestSharded(t, 4, 128, clock)
	vecs := shardTestVecs(t, 256, 61)
	const workers = 8
	const opsPerWorker = 300

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]lsh.Neighbor, 0, 4)
			for op := 0; op < opsPerWorker; op++ {
				v := vecs[(w*opsPerWorker+op)%len(vecs)]
				switch op % 4 {
				case 0, 1:
					ns, err := s.NearestInto(v, 4, dst)
					if err != nil {
						t.Error(err)
						return
					}
					for _, n := range ns {
						s.Touch(n.ID)
						s.Label(n.ID)
					}
					dst = ns[:0]
				case 2:
					id, err := s.Insert(v, fmt.Sprintf("w%d-%d", w, op), 0.8, "dnn", time.Millisecond)
					if err != nil {
						t.Error(err)
						return
					}
					if op%8 == 2 {
						s.Remove(id)
					}
				case 3:
					if op%30 == 3 {
						var buf bytes.Buffer
						if err := s.Export(&buf); err != nil {
							t.Error(err)
							return
						}
					} else {
						s.Stats()
						s.ShardStats()
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if got := s.Len(); got > 128 {
		t.Fatalf("Len = %d, want <= capacity 128", got)
	}
	var lookups, inserts int64
	for _, st := range s.ShardStats() {
		lookups += st.Lookups
		inserts += st.Inserts
	}
	if lookups == 0 || inserts == 0 {
		t.Fatalf("counters not advancing: lookups=%d inserts=%d", lookups, inserts)
	}
}

// TestSerializedStoreMatchesInner: the single-mutex baseline is a
// transparent wrapper.
func TestSerializedStoreMatchesInner(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	idx, err := lsh.NewHyperplane(shardTestDim, 8, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := New(Config{Capacity: 64}, idx, clock)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSerialized(inner)
	vecs := shardTestVecs(t, 20, 71)
	for i, v := range vecs {
		if _, err := s.Insert(v, fmt.Sprintf("c%d", i), 0.8, "dnn", time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 20 || inner.Len() != 20 {
		t.Fatalf("len %d/%d, want 20", s.Len(), inner.Len())
	}
	ns, err := s.Nearest(vecs[3], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 {
		t.Fatalf("got %d neighbors", len(ns))
	}
	if label, ok := s.Label(ns[0].ID); !ok || label != "c3" {
		t.Fatalf("label %q ok=%v, want c3", label, ok)
	}
	var buf bytes.Buffer
	if err := s.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Import(bytes.NewReader(buf.Bytes())); err != nil || n != 20 {
		t.Fatalf("import n=%d err=%v", n, err)
	}
}
