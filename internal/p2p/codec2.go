package p2p

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"approxcache/internal/feature"
)

// Wire codec v2: the compact framing for bandwidth-constrained peer
// links. A v2 frame is
//
//	0xF2 | kind byte | payload
//
// where payload fields use varint lengths and counters, and feature
// vectors travel as per-message int8 affine-quantized codes:
//
//	uvarint dim | float32 scale | float32 offset | dim × int8 code
//
// — 1 byte per dimension plus a 9-byte header instead of 8 bytes per
// dimension, an ~8× payload cut for the vector-carrying hot-path
// messages. The receiver dequantizes (feature.DequantizeInto) before
// voting, so the homogenized kNN semantics are unchanged up to the
// quantization step (≤ scale/2 per component). Scalars that must
// round-trip exactly (confidences, distances) stay full float64.
//
// The marker byte 0xF2 can never open a v1 frame (v1 kind bytes are
// small integers), so Decode dispatches on the first byte and v1 nodes
// reject v2 frames with ErrUnknownKind — the signal the version
// negotiation in Client.Ping uses to fall back to v1.

// wireV2Marker prefixes every v2 frame.
const wireV2Marker byte = 0xF2

// Wire protocol versions, as negotiated per peer.
const (
	// WireV1 is the float64 fixed-width codec every node speaks.
	WireV1 = 1
	// WireV2 is the quantized varint codec.
	WireV2 = 2
)

// ErrWireVersion is returned when a node rejects a frame because of its
// wire version (e.g. a WireV1Only service receiving a v2 frame).
var ErrWireVersion = errors.New("p2p: unsupported wire version")

// MaxGossipBatch bounds the items in one GossipBatch message.
const MaxGossipBatch = 64

// DigestDeltaReq asks a peer for the digest changes since the epoch the
// requester last saw (0 = never synced, always answered with a full
// digest). v2-only.
type DigestDeltaReq struct {
	// Since is the requester's last-applied digest epoch.
	Since uint64
}

// MsgKind implements Message.
func (DigestDeltaReq) MsgKind() Kind { return KindDigestDeltaReq }

// DigestCentroid is one identified digest centroid. IDs are stable per
// service: a centroid keeps its ID for as long as its value survives,
// so deltas can name removals without shipping vectors.
type DigestCentroid struct {
	ID  uint64
	Vec feature.Vector
}

// DigestDeltaResp carries digest changes since a requested epoch, or a
// full snapshot when the service cannot serve a delta (unknown or
// too-old epoch). v2-only.
type DigestDeltaResp struct {
	// Epoch is the service's current digest epoch; the requester
	// stores it and sends it back next time.
	Epoch uint64
	// Full marks a snapshot response: Added holds every centroid and
	// Removed is empty; the requester replaces its state wholesale.
	Full bool
	// Added are centroids present now but not at the requested epoch.
	Added []DigestCentroid
	// Removed are IDs of centroids gone since the requested epoch.
	Removed []uint64
}

// MsgKind implements Message.
func (DigestDeltaResp) MsgKind() Kind { return KindDigestDeltaResp }

// GossipBatch carries several coalesced gossip items in one frame, so a
// burst of fresh inserts pays one message overhead per peer instead of
// one per item. v2-only.
type GossipBatch struct {
	Items []Gossip
}

// MsgKind implements Message.
func (GossipBatch) MsgKind() Kind { return KindGossipBatch }

// qcodePool recycles int8 scratch for encode-side quantization.
var qcodePool = sync.Pool{
	New: func() any { s := make([]int8, 0, 512); return &s },
}

// appendQuantVec appends v in quantized form.
func appendQuantVec(b []byte, v feature.Vector) ([]byte, error) {
	if len(v) > MaxVectorDim {
		return nil, fmt.Errorf("p2p: vector dim %d exceeds %d", len(v), MaxVectorDim)
	}
	b = binary.AppendUvarint(b, uint64(len(v)))
	if len(v) == 0 {
		return b, nil
	}
	sp := qcodePool.Get().(*[]int8)
	codes := *sp
	if cap(codes) < len(v) {
		codes = make([]int8, len(v))
	}
	codes = codes[:len(v)]
	q := feature.QuantizeInto(v, codes)
	b = binary.BigEndian.AppendUint32(b, math.Float32bits(float32(q.Scale)))
	b = binary.BigEndian.AppendUint32(b, math.Float32bits(float32(q.Offset)))
	for _, c := range codes {
		b = append(b, byte(c))
	}
	*sp = codes[:0]
	qcodePool.Put(sp)
	return b, nil
}

// readQuantVec parses a quantized vector, dequantizing into a fresh
// float64 vector.
func readQuantVec(b []byte) (feature.Vector, []byte, error) {
	n64, b, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	n := int(n64)
	if n64 > MaxVectorDim {
		return nil, nil, fmt.Errorf("p2p: vector dim %d exceeds %d", n64, MaxVectorDim)
	}
	if n == 0 {
		return feature.Vector{}, b, nil
	}
	if len(b) < 8+n {
		return nil, nil, ErrTruncated
	}
	scale := float64(math.Float32frombits(binary.BigEndian.Uint32(b)))
	offset := float64(math.Float32frombits(binary.BigEndian.Uint32(b[4:])))
	v := make(feature.Vector, n)
	feature.DequantizeInto(v, b[8:8+n], scale, offset)
	return v, b[8+n:], nil
}

// readUvarint parses a varint with a typed truncation error.
func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, ErrTruncated
	}
	return v, b[n:], nil
}

func appendStringV2(b []byte, s string) ([]byte, error) {
	if len(s) > MaxLabelLen {
		return nil, fmt.Errorf("p2p: string length %d exceeds %d", len(s), MaxLabelLen)
	}
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...), nil
}

func readStringV2(b []byte) (string, []byte, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > MaxLabelLen {
		return "", nil, fmt.Errorf("p2p: string length %d exceeds %d", n, MaxLabelLen)
	}
	if uint64(len(b)) < n {
		return "", nil, ErrTruncated
	}
	return string(b[:n]), b[n:], nil
}

// appendGossipBody appends one gossip item's v2 payload (shared by
// Gossip and GossipBatch).
func appendGossipBody(b []byte, g Gossip) ([]byte, error) {
	b, err := appendQuantVec(b, g.Vec)
	if err != nil {
		return nil, err
	}
	b, err = appendStringV2(b, g.Label)
	if err != nil {
		return nil, err
	}
	b = appendFloat(b, g.Confidence)
	b = binary.AppendUvarint(b, uint64(g.SavedCost))
	return b, nil
}

func readGossipBody(b []byte) (Gossip, []byte, error) {
	var g Gossip
	var err error
	g.Vec, b, err = readQuantVec(b)
	if err != nil {
		return Gossip{}, nil, err
	}
	g.Label, b, err = readStringV2(b)
	if err != nil {
		return Gossip{}, nil, err
	}
	g.Confidence, b, err = readFloat(b)
	if err != nil {
		return Gossip{}, nil, err
	}
	cost, b, err := readUvarint(b)
	if err != nil {
		return Gossip{}, nil, err
	}
	g.SavedCost = time.Duration(cost)
	return g, b, nil
}

// AppendEncodeV2 appends m in v2 framing. Every message kind has a v2
// form; the v2-only kinds (delta digests, gossip batches) have no other.
func AppendEncodeV2(b []byte, m Message) ([]byte, error) {
	b = append(b, wireV2Marker, byte(m.MsgKind()))
	var err error
	switch v := m.(type) {
	case Query:
		b = append(b, v.K)
		return appendQuantVec(b, v.Vec)
	case QueryResp:
		b = append(b, boolByte(v.Found))
		if b, err = appendStringV2(b, v.Label); err != nil {
			return nil, err
		}
		b = appendFloat(b, v.Confidence)
		b = appendFloat(b, v.Distance)
		return b, nil
	case Gossip:
		return appendGossipBody(b, v)
	case GossipBatch:
		if len(v.Items) > MaxGossipBatch {
			return nil, fmt.Errorf("p2p: gossip batch of %d exceeds %d", len(v.Items), MaxGossipBatch)
		}
		b = binary.AppendUvarint(b, uint64(len(v.Items)))
		for _, g := range v.Items {
			if b, err = appendGossipBody(b, g); err != nil {
				return nil, err
			}
		}
		return b, nil
	case Ack:
		return b, nil
	case Ping:
		return appendStringV2(b, v.From)
	case Pong:
		if b, err = appendStringV2(b, v.From); err != nil {
			return nil, err
		}
		return binary.AppendUvarint(b, uint64(v.Entries)), nil
	case DigestReq:
		return b, nil
	case DigestResp:
		if len(v.Digest.Centroids) > MaxDigestCentroids {
			return nil, fmt.Errorf("p2p: digest has %d centroids, max %d",
				len(v.Digest.Centroids), MaxDigestCentroids)
		}
		b = binary.AppendUvarint(b, uint64(len(v.Digest.Centroids)))
		for _, c := range v.Digest.Centroids {
			if b, err = appendQuantVec(b, c); err != nil {
				return nil, err
			}
		}
		return b, nil
	case DigestDeltaReq:
		return binary.AppendUvarint(b, v.Since), nil
	case DigestDeltaResp:
		b = binary.AppendUvarint(b, v.Epoch)
		b = append(b, boolByte(v.Full))
		b = binary.AppendUvarint(b, uint64(len(v.Removed)))
		for _, id := range v.Removed {
			b = binary.AppendUvarint(b, id)
		}
		b = binary.AppendUvarint(b, uint64(len(v.Added)))
		for _, c := range v.Added {
			b = binary.AppendUvarint(b, c.ID)
			if b, err = appendQuantVec(b, c.Vec); err != nil {
				return nil, err
			}
		}
		return b, nil
	default:
		return nil, fmt.Errorf("p2p: cannot encode %T", m)
	}
}

// maxDeltaEntries bounds decoded delta lists: every centroid can change
// at most once per epoch, so honest responses never exceed the digest
// width; the slack tolerates one full turnover.
const maxDeltaEntries = 2 * MaxDigestCentroids

// decodeV2 parses a v2 payload (marker already stripped).
func decodeV2(b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, ErrTruncated
	}
	kind, rest := Kind(b[0]), b[1:]
	switch kind {
	case KindQuery:
		if len(rest) < 1 {
			return nil, ErrTruncated
		}
		k := rest[0]
		vec, rest, err := readQuantVec(rest[1:])
		if err != nil {
			return nil, err
		}
		if err := expectEmpty(rest); err != nil {
			return nil, err
		}
		return Query{Vec: vec, K: k}, nil
	case KindQueryResp:
		if len(rest) < 1 {
			return nil, ErrTruncated
		}
		found := rest[0] != 0
		label, rest, err := readStringV2(rest[1:])
		if err != nil {
			return nil, err
		}
		conf, rest, err := readFloat(rest)
		if err != nil {
			return nil, err
		}
		dist, rest, err := readFloat(rest)
		if err != nil {
			return nil, err
		}
		if err := expectEmpty(rest); err != nil {
			return nil, err
		}
		return QueryResp{Found: found, Label: label, Confidence: conf, Distance: dist}, nil
	case KindGossip:
		g, rest, err := readGossipBody(rest)
		if err != nil {
			return nil, err
		}
		if err := expectEmpty(rest); err != nil {
			return nil, err
		}
		return g, nil
	case KindGossipBatch:
		n, rest, err := readUvarint(rest)
		if err != nil {
			return nil, err
		}
		if n > MaxGossipBatch {
			return nil, fmt.Errorf("p2p: gossip batch declares %d items, max %d", n, MaxGossipBatch)
		}
		batch := GossipBatch{Items: make([]Gossip, 0, n)}
		for i := uint64(0); i < n; i++ {
			var g Gossip
			g, rest, err = readGossipBody(rest)
			if err != nil {
				return nil, err
			}
			batch.Items = append(batch.Items, g)
		}
		if err := expectEmpty(rest); err != nil {
			return nil, err
		}
		return batch, nil
	case KindAck:
		if err := expectEmpty(rest); err != nil {
			return nil, err
		}
		return Ack{}, nil
	case KindPing:
		from, rest, err := readStringV2(rest)
		if err != nil {
			return nil, err
		}
		if err := expectEmpty(rest); err != nil {
			return nil, err
		}
		return Ping{From: from}, nil
	case KindPong:
		from, rest, err := readStringV2(rest)
		if err != nil {
			return nil, err
		}
		entries, rest, err := readUvarint(rest)
		if err != nil {
			return nil, err
		}
		if entries > math.MaxUint32 {
			return nil, fmt.Errorf("p2p: pong entries %d overflows uint32", entries)
		}
		if err := expectEmpty(rest); err != nil {
			return nil, err
		}
		return Pong{From: from, Entries: uint32(entries)}, nil
	case KindDigestReq:
		if err := expectEmpty(rest); err != nil {
			return nil, err
		}
		return DigestReq{}, nil
	case KindDigestResp:
		n, rest, err := readUvarint(rest)
		if err != nil {
			return nil, err
		}
		if n > MaxDigestCentroids {
			return nil, fmt.Errorf("p2p: digest declares %d centroids", n)
		}
		d := Digest{Centroids: make([]feature.Vector, 0, n)}
		for i := uint64(0); i < n; i++ {
			var c feature.Vector
			c, rest, err = readQuantVec(rest)
			if err != nil {
				return nil, err
			}
			d.Centroids = append(d.Centroids, c)
		}
		if err := expectEmpty(rest); err != nil {
			return nil, err
		}
		return DigestResp{Digest: d}, nil
	case KindDigestDeltaReq:
		since, rest, err := readUvarint(rest)
		if err != nil {
			return nil, err
		}
		if err := expectEmpty(rest); err != nil {
			return nil, err
		}
		return DigestDeltaReq{Since: since}, nil
	case KindDigestDeltaResp:
		epoch, rest, err := readUvarint(rest)
		if err != nil {
			return nil, err
		}
		if len(rest) < 1 {
			return nil, ErrTruncated
		}
		full := rest[0] != 0
		nRem, rest, err := readUvarint(rest[1:])
		if err != nil {
			return nil, err
		}
		if nRem > maxDeltaEntries {
			return nil, fmt.Errorf("p2p: delta declares %d removals, max %d", nRem, maxDeltaEntries)
		}
		var removed []uint64
		for i := uint64(0); i < nRem; i++ {
			var id uint64
			id, rest, err = readUvarint(rest)
			if err != nil {
				return nil, err
			}
			removed = append(removed, id)
		}
		nAdd, rest, err := readUvarint(rest)
		if err != nil {
			return nil, err
		}
		if nAdd > maxDeltaEntries {
			return nil, fmt.Errorf("p2p: delta declares %d additions, max %d", nAdd, maxDeltaEntries)
		}
		var added []DigestCentroid
		for i := uint64(0); i < nAdd; i++ {
			var c DigestCentroid
			c.ID, rest, err = readUvarint(rest)
			if err != nil {
				return nil, err
			}
			c.Vec, rest, err = readQuantVec(rest)
			if err != nil {
				return nil, err
			}
			added = append(added, c)
		}
		if err := expectEmpty(rest); err != nil {
			return nil, err
		}
		return DigestDeltaResp{Epoch: epoch, Full: full, Added: added, Removed: removed}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, uint8(kind))
	}
}

// Wire-size estimators for the v2 codec, mirroring QueryWireSize and
// GossipWireSize for energy accounting.

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// quantVecWireSize returns the encoded size of a dim-vector in v2 form.
func quantVecWireSize(dim int) int {
	if dim == 0 {
		return 1
	}
	return uvarintLen(uint64(dim)) + 8 + dim
}

// QueryWireSizeV2 returns the v2-encoded size of a query for
// dim-dimensional vectors.
func QueryWireSizeV2(dim int) int { return 2 + 1 + quantVecWireSize(dim) }

// GossipWireSizeV2 returns the typical v2-encoded size of a standalone
// gossip message (assumes a small SavedCost varint).
func GossipWireSizeV2(dim, labelLen int) int {
	return 2 + quantVecWireSize(dim) + uvarintLen(uint64(labelLen)) + labelLen + 8 + 5
}
