package vision

import (
	"math"
	"math/rand"
	"testing"
)

func TestCheckFrameFaultClasses(t *testing.T) {
	cfg := DefaultFrameGuardConfig()
	mk := func(fill func(*Image)) *Image {
		im := NewImage(16, 16)
		for i := range im.Pix {
			im.Pix[i] = float64(i%7) / 7 // plenty of contrast
		}
		if fill != nil {
			fill(im)
		}
		return im
	}
	tests := []struct {
		name  string
		frame *Image
		want  FrameFault
	}{
		{"healthy", mk(nil), FrameOK},
		{"nil", nil, FrameNil},
		{"zero dims", &Image{}, FrameEmpty},
		{"pix mismatch", &Image{W: 4, H: 4, Pix: make([]float64, 3)}, FrameEmpty},
		{"nan pixel", mk(func(im *Image) { im.Pix[5] = math.NaN() }), FrameNonFinite},
		{"inf pixel", mk(func(im *Image) { im.Pix[9] = math.Inf(-1) }), FrameNonFinite},
		{"all black", mk(func(im *Image) {
			for i := range im.Pix {
				im.Pix[i] = 0
			}
		}), FrameLowEntropy},
		{"uniform gray", mk(func(im *Image) {
			for i := range im.Pix {
				im.Pix[i] = 0.5
			}
		}), FrameLowEntropy},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := CheckFrame(tc.frame, cfg); got != tc.want {
				t.Fatalf("CheckFrame(%s) = %v, want %v", tc.name, got, tc.want)
			}
		})
	}
}

func TestCheckFrameAcceptsRenderedFrames(t *testing.T) {
	cs, err := NewClassSet(4, 48, 48, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultFrameGuardConfig()
	for c := 0; c < 4; c++ {
		for i := 0; i < 8; i++ {
			im, err := cs.Render(c, HardPerturbation(), rng)
			if err != nil {
				t.Fatal(err)
			}
			if got := CheckFrame(im, cfg); got != FrameOK {
				t.Fatalf("rendered frame class %d flagged %v", c, got)
			}
		}
	}
}

func TestFrameFaultStructural(t *testing.T) {
	for f, want := range map[FrameFault]bool{
		FrameOK: false, FrameNil: true, FrameEmpty: true,
		FrameNonFinite: true, FrameLowEntropy: false,
	} {
		if got := f.Structural(); got != want {
			t.Fatalf("Structural(%v) = %v, want %v", f, got, want)
		}
	}
	if got := FrameFault(42).String(); got != "FrameFault(42)" {
		t.Fatalf("unknown fault string %q", got)
	}
}
