package cachestore

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"approxcache/internal/feature"
	"approxcache/internal/lsh"
	"approxcache/internal/simclock"
)

func randVec4(rng *rand.Rand) feature.Vector {
	v := make(feature.Vector, 4)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// TestLockFreeStoreDifferential replays one interleaved workload —
// inserts, removes, lookups, touches, TTL expiry, quarantine and
// parole — against a store over the lock-free index and against the
// same store wrapped in SerializedStore (the fully serialized
// correctness oracle), and requires element-identical observable state
// at every step. The lock-free read path must be bit-identical to the
// locked one.
func TestLockFreeStoreDifferential(t *testing.T) {
	const dim = 4
	cfg := Config{
		Capacity:            48,
		Policy:              LRU,
		TTL:                 90 * time.Second,
		QuarantineThreshold: 2,
	}
	mkStore := func() *Store {
		idx, err := lsh.NewHyperplane(dim, 6, 3, 42)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(cfg, idx, simclock.NewVirtual(time.Unix(0, 0)))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	freeInner := mkStore()
	free := Interface(freeInner)
	oracle := Interface(NewSerialized(mkStore()))

	// Both stores share one virtual clock by construction: the two
	// inner stores were created at the same instant and we advance
	// both in lockstep below.
	freeClk := freeInner.clock.(*simclock.Virtual)
	oracleClk := oracle.(*SerializedStore).inner.clock.(*simclock.Virtual)

	rng := rand.New(rand.NewSource(17))
	ids := make([]lsh.ID, 0, 512)
	var dstA, dstB []lsh.Neighbor
	for op := 0; op < 2000; op++ {
		switch r := rng.Float64(); {
		case r < 0.35:
			v := randVec4(rng)
			label := string(rune('a' + rng.Intn(8)))
			idA, errA := free.Insert(v, label, 0.9, "dnn", time.Millisecond)
			idB, errB := oracle.Insert(v, label, 0.9, "dnn", time.Millisecond)
			if (errA == nil) != (errB == nil) || idA != idB {
				t.Fatalf("op %d: insert diverged: (%v,%v) vs (%v,%v)", op, idA, errA, idB, errB)
			}
			ids = append(ids, idA)
		case r < 0.45 && len(ids) > 0:
			id := ids[rng.Intn(len(ids))]
			free.Remove(id)
			oracle.Remove(id)
		case r < 0.75:
			q := randVec4(rng)
			k := 1 + rng.Intn(4)
			nsA, errA := free.NearestInto(q, k, dstA)
			nsB, errB := oracle.NearestInto(q, k, dstB)
			if (errA == nil) != (errB == nil) || len(nsA) != len(nsB) {
				t.Fatalf("op %d: nearest diverged: (%d,%v) vs (%d,%v)",
					op, len(nsA), errA, len(nsB), errB)
			}
			for i := range nsA {
				if nsA[i] != nsB[i] {
					t.Fatalf("op %d: neighbor %d: %+v vs %+v", op, i, nsA[i], nsB[i])
				}
			}
			for _, n := range nsA {
				free.Touch(n.ID)
				oracle.Touch(n.ID)
			}
			dstA, dstB = nsA[:0], nsB[:0]
		case r < 0.85 && len(ids) > 0:
			id := ids[rng.Intn(len(ids))]
			qA := free.Refute(id)
			qB := oracle.Refute(id)
			if qA != qB {
				t.Fatalf("op %d: refute(%d) diverged: %v vs %v", op, id, qA, qB)
			}
			if qA && rng.Float64() < 0.5 {
				verdict := rng.Float64() < 0.5
				pA := free.Parole(id, verdict)
				pB := oracle.Parole(id, verdict)
				if pA != pB {
					t.Fatalf("op %d: parole(%d) diverged: %v vs %v", op, id, pA, pB)
				}
			}
		case r < 0.95 && len(ids) > 0:
			id := ids[rng.Intn(len(ids))]
			lA, okA := free.Label(id)
			lB, okB := oracle.Label(id)
			if lA != lB || okA != okB {
				t.Fatalf("op %d: label(%d) diverged: (%q,%v) vs (%q,%v)",
					op, id, lA, okA, lB, okB)
			}
		default:
			step := time.Duration(rng.Intn(40)) * time.Second
			freeClk.Advance(step)
			oracleClk.Advance(step)
		}
		if free.Len() != oracle.Len() {
			t.Fatalf("op %d: len %d vs %d", op, free.Len(), oracle.Len())
		}
	}
	if free.Evictions() != oracle.Evictions() {
		t.Fatalf("evictions %d vs %d", free.Evictions(), oracle.Evictions())
	}
	if free.Expiries() != oracle.Expiries() {
		t.Fatalf("expiries %d vs %d", free.Expiries(), oracle.Expiries())
	}
	sA, sB := free.Stats(), oracle.Stats()
	if sA.Entries != sB.Entries || sA.Evictions != sB.Evictions ||
		sA.Expiries != sB.Expiries || sA.TotalHits != sB.TotalHits {
		t.Fatalf("final stats diverged: %+v vs %+v", sA, sB)
	}
}

// TestReadersDuringImportRace floods a warm lock-free store with
// readers while Import bulk-inserts a snapshot on top of it. Run under
// -race this checks the reader pipeline against the heaviest write
// burst the store supports.
func TestReadersDuringImportRace(t *testing.T) {
	const dim = 4
	mk := func(seed int64, capacity int) *Store {
		idx, err := lsh.NewHyperplane(dim, 6, 3, 42)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Capacity: capacity}, idx, simclock.NewVirtual(time.Unix(0, 0)))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < capacity/2; i++ {
			if _, err := s.Insert(randVec4(rng), "x", 0.9, "dnn", time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	donor := mk(5, 64)
	var buf bytes.Buffer
	if err := donor.Export(&buf); err != nil {
		t.Fatal(err)
	}
	target := mk(6, 256)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			dst := make([]lsh.Neighbor, 0, 8)
			for !stop.Load() {
				ns, err := target.NearestInto(randVec4(rng), 3, dst)
				if err != nil {
					t.Error(err)
					return
				}
				for _, n := range ns {
					target.Label(n.ID)
				}
				dst = ns[:0]
				target.Len()
				runtime.Gosched()
			}
		}(r)
	}
	if _, err := target.Import(bytes.NewReader(buf.Bytes())); err != nil {
		t.Error(err)
	}
	stop.Store(true)
	wg.Wait()
}

// TestReadersDuringQuarantineRace drives lookups concurrent with
// refute/quarantine/parole churn — the write path that removes slots
// from the candidate index while readers are mid-pipeline. Under -race
// this exercises grace-period reclamation through the store.
func TestReadersDuringQuarantineRace(t *testing.T) {
	const dim = 4
	idx, err := lsh.NewHyperplane(dim, 6, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Capacity: 128, QuarantineThreshold: 1}, idx,
		simclock.NewVirtual(time.Unix(0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	ids := make([]lsh.ID, 0, 64)
	for i := 0; i < 64; i++ {
		id, err := s.Insert(randVec4(rng), "x", 0.9, "dnn", time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(int64(200 + r)))
			dst := make([]lsh.Neighbor, 0, 8)
			for !stop.Load() {
				ns, err := s.NearestInto(randVec4(rrng), 3, dst)
				if err != nil {
					t.Error(err)
					return
				}
				dst = ns[:0]
				runtime.Gosched()
			}
		}(r)
	}
	wrng := rand.New(rand.NewSource(300))
	for i := 0; i < 200; i++ {
		id := ids[wrng.Intn(len(ids))]
		if s.Refute(id) {
			s.Parole(id, wrng.Float64() < 0.7)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestReadersDuringAdaptiveRebuildRace points readers at a store whose
// index is an AdaptiveIndex and forces rebuilds under them: skewed
// all-positive data piles into few buckets, so inserts keep triggering
// re-centering rebuilds that swap the whole index out from under the
// read path.
func TestReadersDuringAdaptiveRebuildRace(t *testing.T) {
	const dim = 4
	adaptive, err := lsh.NewAdaptive(lsh.AdaptiveConfig{
		Dim: dim, Bits: 6, Tables: 2, Seed: 42,
		CheckEvery: 16, SkewThreshold: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Capacity: 512}, adaptive, simclock.NewVirtual(time.Unix(0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	skewed := func(rng *rand.Rand) feature.Vector {
		v := make(feature.Vector, dim)
		for i := range v {
			v[i] = 50 + rng.Float64() // off-origin: correlated signs
		}
		return v
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 64; i++ {
		if _, err := s.Insert(skewed(rng), "x", 0.9, "dnn", time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(int64(400 + r)))
			dst := make([]lsh.Neighbor, 0, 8)
			for !stop.Load() {
				ns, err := s.NearestInto(skewed(rrng), 3, dst)
				if err != nil {
					t.Error(err)
					return
				}
				dst = ns[:0]
				runtime.Gosched()
			}
		}(r)
	}
	for i := 0; i < 256; i++ {
		if _, err := s.Insert(skewed(rng), "x", 0.9, "dnn", time.Millisecond); err != nil {
			t.Error(err)
			break
		}
	}
	if adaptive.Rebuilds() == 0 {
		t.Log("no rebuild triggered; race coverage reduced this run")
	}
	stop.Store(true)
	wg.Wait()
}
