// Package eval is the experiment harness: it builds the workloads,
// engines, and device groups for experiments E1–E8 (see DESIGN.md),
// runs them on virtual clocks, and renders the tables and series the
// evaluation reports. cmd/approxbench is its CLI front end and
// bench_test.go its testing.B front end.
package eval

import (
	"fmt"
	"strings"
	"time"
)

// Report is one rendered experiment result: a titled table plus notes.
type Report struct {
	// ID is the experiment id ("E1"..."E8").
	ID string
	// Title describes what the table shows.
	Title string
	// Headers are the column names.
	Headers []string
	// Rows are the table body, one row per configuration.
	Rows [][]string
	// Notes carry the expected shape and caveats.
	Notes []string
}

// String renders the report as an aligned ASCII table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	if len(r.Headers) == 0 {
		return b.String()
	}
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// A row may carry more cells than there are headers (a
			// malformed report); render the extras unpadded rather than
			// panic mid-String.
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Headers)
	rule := make([]string, len(r.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the report as RFC 4180 CSV (header row first). Notes are
// omitted; cells containing commas or quotes are quoted.
func (r Report) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(cell))
		}
		b.WriteByte('\n')
	}
	writeRow(r.Headers)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the report as a GitHub-flavored markdown table with
// the title as a heading and notes as a trailing list.
func (r Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
	if len(r.Headers) == 0 {
		return b.String()
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, cell := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(r.Headers)
	rule := make([]string, len(r.Headers))
	for i := range rule {
		rule[i] = "---"
	}
	writeRow(rule)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

// csvEscape quotes a cell when needed.
func csvEscape(cell string) string {
	if !strings.ContainsAny(cell, ",\"\n") {
		return cell
	}
	return `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
}

// fmtDur renders a duration at millisecond precision for tables.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}

// fmtPct renders a fraction as a percentage.
func fmtPct(f float64) string {
	return fmt.Sprintf("%.1f%%", f*100)
}

// fmtF renders a float with two decimals.
func fmtF(f float64) string {
	return fmt.Sprintf("%.2f", f)
}
