package imu

import (
	"testing"
	"time"
)

func TestActivityConfigValidate(t *testing.T) {
	if err := DefaultActivityConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*ActivityConfig){
		func(c *ActivityConfig) { c.Window = 0 },
		func(c *ActivityConfig) { c.StationaryAccelVar = 0 },
		func(c *ActivityConfig) { c.HandheldAccelVar = c.StationaryAccelVar },
		func(c *ActivityConfig) { c.PanGyroMean = 0 },
		func(c *ActivityConfig) { c.StepBandLow = 0 },
		func(c *ActivityConfig) { c.StepBandHigh = c.StepBandLow },
		func(c *ActivityConfig) { c.StepPower = 0 },
	}
	for i, mut := range mutations {
		cfg := DefaultActivityConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := NewActivityClassifier(ActivityConfig{}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestClassifyInsufficientData(t *testing.T) {
	a, err := NewActivityClassifier(DefaultActivityConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r, conf := a.Classify(); r != 0 || conf != 0 {
		t.Fatalf("empty classifier returned %v/%v", r, conf)
	}
	a.Observe(Sample{Offset: time.Millisecond})
	if r, _ := a.Classify(); r != 0 {
		t.Fatal("single sample classified")
	}
}

func TestClassifyRecoversGeneratedRegimes(t *testing.T) {
	for _, regime := range []Regime{Stationary, Handheld, Walking, Panning} {
		t.Run(regime.String(), func(t *testing.T) {
			g, err := NewGenerator(100, 7)
			if err != nil {
				t.Fatal(err)
			}
			ss, err := g.Generate(regime, 0, 4*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			a, err := NewActivityClassifier(DefaultActivityConfig())
			if err != nil {
				t.Fatal(err)
			}
			a.ObserveAll(ss)
			got, conf := a.Classify()
			if got != regime {
				t.Fatalf("classified %v as %v (conf %v)", regime, got, conf)
			}
			if conf <= 0 || conf > 1 {
				t.Fatalf("confidence %v out of range", conf)
			}
		})
	}
}

func TestClassifyTracksRegimeChanges(t *testing.T) {
	g, err := NewGenerator(100, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewActivityClassifier(DefaultActivityConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 4 s stationary then 4 s walking: the window (2 s) must flip.
	s1, err := g.Generate(Stationary, 0, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	a.ObserveAll(s1)
	if got, _ := a.Classify(); got != Stationary {
		t.Fatalf("phase 1 = %v", got)
	}
	s2, err := g.Generate(Walking, 4*time.Second, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	a.ObserveAll(s2)
	if got, _ := a.Classify(); got != Walking {
		t.Fatalf("phase 2 = %v", got)
	}
}

func TestClassifierDropsOutOfOrder(t *testing.T) {
	a, err := NewActivityClassifier(DefaultActivityConfig())
	if err != nil {
		t.Fatal(err)
	}
	a.Observe(Sample{Offset: time.Second})
	a.Observe(Sample{Offset: 500 * time.Millisecond, Gyro: [3]float64{9, 9, 9}})
	if len(a.window) != 1 {
		t.Fatalf("out-of-order sample kept: %d", len(a.window))
	}
}

// Accuracy across many seeds: the classifier must recover the true
// regime in the overwhelming majority of windows.
func TestClassifyAccuracyAcrossSeeds(t *testing.T) {
	regimes := []Regime{Stationary, Handheld, Walking, Panning}
	correct, total := 0, 0
	for seed := int64(1); seed <= 10; seed++ {
		for _, regime := range regimes {
			g, err := NewGenerator(100, seed)
			if err != nil {
				t.Fatal(err)
			}
			ss, err := g.Generate(regime, 0, 3*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			a, err := NewActivityClassifier(DefaultActivityConfig())
			if err != nil {
				t.Fatal(err)
			}
			a.ObserveAll(ss)
			got, _ := a.Classify()
			total++
			if got == regime {
				correct++
			}
		}
	}
	if correct*100/total < 90 {
		t.Fatalf("activity accuracy = %d/%d", correct, total)
	}
}
