package vision

import (
	"fmt"
	"math"
)

// FrameFault classifies what is wrong with a camera frame. The reuse
// gates assume well-formed frames: a nil or dimension-less frame cannot
// be processed at all, a NaN pixel poisons every feature downstream,
// and an all-black / near-uniform frame (lens covered, sensor fault)
// carries no scene information — caching its features would cluster
// every such frame together and serve one stale label for all of them.
type FrameFault int

// Frame fault classes.
const (
	// FrameOK: the frame is usable.
	FrameOK FrameFault = iota
	// FrameNil: the frame pointer is nil.
	FrameNil
	// FrameEmpty: zero dimensions or a pixel buffer that does not match
	// them.
	FrameEmpty
	// FrameNonFinite: a pixel is NaN or ±Inf.
	FrameNonFinite
	// FrameLowEntropy: the frame is (near-)uniform — all-black, all-
	// white, or otherwise informationless.
	FrameLowEntropy
)

// String returns the fault name.
func (f FrameFault) String() string {
	switch f {
	case FrameOK:
		return "ok"
	case FrameNil:
		return "nil"
	case FrameEmpty:
		return "empty"
	case FrameNonFinite:
		return "non-finite"
	case FrameLowEntropy:
		return "low-entropy"
	default:
		return fmt.Sprintf("FrameFault(%d)", int(f))
	}
}

// Structural reports whether the fault makes the frame unprocessable
// (as opposed to a degraded-but-real capture like a covered lens).
func (f FrameFault) Structural() bool {
	return f == FrameNil || f == FrameEmpty || f == FrameNonFinite
}

// FrameGuardConfig tunes the frame guard.
type FrameGuardConfig struct {
	// MinStdDev is the minimum pixel standard deviation for a frame to
	// count as carrying scene information. Zero disables the
	// low-entropy check.
	MinStdDev float64
}

// DefaultFrameGuardConfig returns the standard threshold: well below
// any rendered scene's contrast (~0.2 for the synthetic class set) but
// above sensor noise on a covered lens.
func DefaultFrameGuardConfig() FrameGuardConfig {
	return FrameGuardConfig{MinStdDev: 0.01}
}

// Validate reports whether the configuration is usable.
func (c FrameGuardConfig) Validate() error {
	if c.MinStdDev < 0 {
		return fmt.Errorf("vision: guard MinStdDev must be non-negative, got %v", c.MinStdDev)
	}
	return nil
}

// CheckFrame inspects one frame and returns the first fault found, or
// FrameOK. It is a single pass over the pixels, cheaper than the
// frame-difference gate.
func CheckFrame(im *Image, cfg FrameGuardConfig) FrameFault {
	if im == nil {
		return FrameNil
	}
	if im.W <= 0 || im.H <= 0 || len(im.Pix) != im.W*im.H {
		return FrameEmpty
	}
	var sum, sumSq float64
	for _, p := range im.Pix {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return FrameNonFinite
		}
		sum += p
		sumSq += p * p
	}
	if cfg.MinStdDev > 0 {
		n := float64(len(im.Pix))
		mean := sum / n
		variance := sumSq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		if math.Sqrt(variance) < cfg.MinStdDev {
			return FrameLowEntropy
		}
	}
	return FrameOK
}
