// Package approxcache is an in-memory approximate-caching layer for
// mobile image recognition, reproducing "Poster: Approximate Caching
// for Mobile Image Recognition" (Mariani, Han, Xiao — ICDCS 2021).
//
// A Cache fronts an expensive image classifier and reuses previous
// recognition results through four gates, cheapest first:
//
//  1. Inertial gate — the device has not moved, so the scene has not
//     changed (smartphone IMU).
//  2. Video-locality gate — the frame is nearly identical to the last
//     recognized keyframe (temporal locality of video streams).
//  3. Local approximate cache — an LSH-indexed feature lookup with a
//     homogenized-kNN acceptance vote.
//  4. Peer-to-peer reuse — nearby devices answer cache queries over an
//     infrastructure-less protocol and receive gossiped results.
//
// Only when every gate misses does the classifier run; its result is
// cached locally and shared with peers.
//
// Quickstart:
//
//	spec := approxcache.StandardWorkloads(600, 1)[0]
//	w, _ := approxcache.GenerateWorkload(spec)
//	clf, _ := approxcache.NewSimulatedClassifier(approxcache.MobileNetV2, w, 1)
//	cache, _ := approxcache.New(clf, approxcache.Options{Clock: approxcache.NewVirtualClock()})
//	for _, frame := range w.Frames {
//		res, _ := cache.ProcessWithTruth(frame.Image, nil, approxcache.LabelOf(frame.Class))
//		_ = res
//	}
//	fmt.Println(cache.Stats().HitRate())
package approxcache

import (
	"fmt"
	"time"

	"approxcache/internal/admission"
	"approxcache/internal/cachestore"
	"approxcache/internal/core"
	"approxcache/internal/dnn"
	"approxcache/internal/imu"
	"approxcache/internal/lsh"
	"approxcache/internal/metrics"
	"approxcache/internal/p2p"
	"approxcache/internal/simclock"
	"approxcache/internal/simnet"
	"approxcache/internal/trace"
	"approxcache/internal/video"
	"approxcache/internal/vision"
)

// Re-exported types. These aliases make the internal substrate types
// part of the public API without duplicating them.
type (
	// Image is a grayscale camera frame with pixels in [0,1].
	Image = vision.Image
	// IMUSample is one inertial sensor reading.
	IMUSample = imu.Sample
	// MotionRegime is a device motion regime.
	MotionRegime = imu.Regime
	// Frame is a workload video frame with ground truth.
	Frame = video.Frame
	// WorkloadSpec is a serializable workload description.
	WorkloadSpec = trace.Spec
	// SegmentSpec is one motion segment of a workload.
	SegmentSpec = trace.SegmentSpec
	// Workload is a fully generated device input.
	Workload = trace.Workload
	// ModelProfile describes a classifier's cost and quality.
	ModelProfile = dnn.Profile
	// Classifier is the expensive recognition the cache fronts.
	Classifier = core.Classifier
	// Result is one frame's recognition outcome.
	Result = core.Result
	// Source identifies which pipeline stage served a frame.
	Source = metrics.Source
	// Mode selects the caching strategy.
	Mode = core.Mode
	// Stats aggregates a session's hits, latency, energy, accuracy.
	Stats = metrics.SessionStats
	// LatencySummary summarizes recorded latencies.
	LatencySummary = metrics.LatencySummary
	// Clock abstracts time; use NewVirtualClock for experiments.
	Clock = simclock.Clock
	// VirtualClock is a deterministic manually-advanced clock.
	VirtualClock = simclock.Virtual
	// VoteConfig tunes the homogenized-kNN acceptance policy.
	VoteConfig = lsh.VoteConfig
	// EvictionPolicy selects the cache eviction policy.
	EvictionPolicy = cachestore.Policy
	// ActivityClassifier infers the device's motion regime from raw
	// IMU samples (the inverse of the trace generator); context-aware
	// policies build on it.
	ActivityClassifier = imu.ActivityClassifier
	// SimNetwork is a simulated device-to-device wireless network.
	SimNetwork = simnet.Network
	// PeerClient queries and gossips to nearby devices.
	PeerClient = p2p.Client
	// PeerServer serves the peer protocol over TCP.
	PeerServer = p2p.TCPServer
	// WatchdogConfig tunes the classifier watchdog: per-call timeout,
	// bounded retry, and the consecutive-failure breaker.
	WatchdogConfig = core.WatchdogConfig
	// DegradationLevel names how far down the degradation ladder a
	// frame's answer came from (see Result.Degradation).
	DegradationLevel = core.DegradationLevel
	// IMUGuardConfig tunes the inertial-window validity guard.
	IMUGuardConfig = imu.GuardConfig
	// FrameGuardConfig tunes the camera-frame validity guard.
	FrameGuardConfig = vision.FrameGuardConfig
	// AdmissionConfig tunes the AIMD overload limiter gating the DNN
	// fallback (see Options.Admission). The zero value is disabled;
	// DefaultAdmissionConfig returns sensible serving defaults.
	AdmissionConfig = admission.Config
	// AdmissionSnapshot is a point-in-time view of the overload
	// limiter: current limit, in-flight count, shed/late counters, and
	// the brownout level.
	AdmissionSnapshot = admission.Snapshot
	// AdmissionLevel is the brownout degradation level the limiter is
	// operating at (full, no-peer, first-candidate).
	AdmissionLevel = admission.Level
	// QualityConfig tunes the self-healing quality layer: shadow
	// audits, entry quarantine, and drift-adaptive gate recalibration
	// (see Options.Quality). The zero value is disabled;
	// DefaultQualityConfig returns sensible defaults, enabled.
	QualityConfig = core.QualityConfig
	// QualitySnapshot is a point-in-time view of the quality layer:
	// live hit-accuracy estimate, sample count, gate scale, and any
	// pending reuse-refusal frames.
	QualitySnapshot = core.QualitySnapshot
	// QuarantineStats summarizes the store's quarantine lifecycle:
	// currently quarantined entries plus quarantine, reinstatement, and
	// parole-eviction counters.
	QuarantineStats = cachestore.QuarantineStats
)

// Typed input and availability errors surfaced by Process.
var (
	// ErrBadFrame reports a structurally unusable camera frame (nil,
	// empty, or non-finite pixels). The frame is refused outright.
	ErrBadFrame = core.ErrBadFrame
	// ErrBadIMUWindow reports non-finite inertial data. The window is
	// refused outright; recoverable IMU faults are instead routed past
	// the reuse gates and counted in Stats().SensorFaults().
	ErrBadIMUWindow = core.ErrBadIMUWindow
	// ErrClassifierDown reports that the watchdog's breaker is open and
	// no fallback answer was available.
	ErrClassifierDown = core.ErrClassifierDown
	// ErrDeadlineExceeded reports that a frame blew its RequestDeadline
	// and no degraded answer (cached or last-result) was available.
	ErrDeadlineExceeded = core.ErrDeadlineExceeded
	// ErrOverloadShed reports that admission control refused the DNN
	// fallback and no degraded answer was available.
	ErrOverloadShed = core.ErrOverloadShed
	// ErrBatcherClosed reports an inference submitted to a pool whose
	// micro-batcher has been Closed; the degradation ladder normally
	// absorbs it before it reaches the caller.
	ErrBatcherClosed = dnn.ErrBatcherClosed
)

// Re-exported mode, source, eviction, and regime constants.
const (
	ModeNoCache    = core.ModeNoCache
	ModeExactCache = core.ModeExactCache
	ModeApprox     = core.ModeApprox
	ModeNaiveSkip  = core.ModeNaiveSkip

	SourceIMU      = metrics.SourceIMU
	SourceVideo    = metrics.SourceVideo
	SourceLocal    = metrics.SourceLocal
	SourcePeer     = metrics.SourcePeer
	SourceDNN      = metrics.SourceDNN
	SourceFallback = metrics.SourceFallback
	SourceShed     = metrics.SourceShed

	DegradeNone       = core.DegradeNone
	DegradeCacheOnly  = core.DegradeCacheOnly
	DegradeLastResult = core.DegradeLastResult
	DegradeOverload   = core.DegradeOverload
	DegradeDeadline   = core.DegradeDeadline

	AdmissionFull           = admission.LevelFull
	AdmissionNoPeer         = admission.LevelNoPeer
	AdmissionFirstCandidate = admission.LevelFirstCandidate

	EvictLRU       = cachestore.LRU
	EvictLFU       = cachestore.LFU
	EvictCostAware = cachestore.CostAware

	RegimeStationary = imu.Stationary
	RegimeHandheld   = imu.Handheld
	RegimeWalking    = imu.Walking
	RegimePanning    = imu.Panning
)

// Re-exported model zoo profiles.
var (
	MobileNetV2 = dnn.MobileNetV2
	SqueezeNet  = dnn.SqueezeNet
	InceptionV3 = dnn.InceptionV3
	ResNet50    = dnn.ResNet50
)

// Options configures a Cache. The zero value selects the full
// approximate pipeline with production defaults.
type Options struct {
	// Mode selects the strategy. Defaults to ModeApprox; the other
	// modes are evaluation baselines.
	Mode Mode
	// Capacity is the maximum number of cached entries (default 256).
	Capacity int
	// Eviction selects the eviction policy (default cost-aware).
	Eviction EvictionPolicy
	// TTL expires entries this long after insertion (0 = never).
	TTL time.Duration
	// Vote overrides the homogenized-kNN acceptance policy.
	Vote VoteConfig
	// LSHBits and LSHTables shape the LSH index (defaults 12 and 4).
	LSHBits, LSHTables int
	// AdaptiveLSH enables the self-rebalancing index: when bucket
	// occupancy skews (image descriptors are all-positive, which
	// correlates hyperplane signs), the index rebuilds itself centered
	// on the observed data mean.
	AdaptiveLSH bool
	// Probes sets how many buckets each LSH table examines per lookup:
	// the query's own bucket plus Probes−1 perturbed buckets visited in
	// increasing hyperplane-margin cost (multi-probe LSH). 0 or 1 keeps
	// the classic single-bucket probe. With Probes ≈ 8, halving
	// LSHTables preserves recall while halving signature arithmetic —
	// see the lookup-tuning section of the README.
	Probes int
	// Sketch enables the packed-sketch + quantized scoring pipeline:
	// each cached entry carries a 64-bit binary sign sketch (candidates
	// are prefiltered by popcount Hamming distance before any float
	// math) and an int8 quantized copy scored with an integer dot
	// kernel; only the top few survivors pay a full-precision distance.
	// Results stay deterministic; the final ranking is exact over the
	// surviving candidates.
	Sketch bool
	// Seed drives the LSH hyperplanes (default 1).
	Seed int64
	// Clock supplies time; defaults to the wall clock. Experiments
	// pass NewVirtualClock so simulated latency replays instantly.
	Clock Clock
	// DisableIMUGate, DisableVideoGate, and DisableGossip switch off
	// individual reuse mechanisms (used by the ablation experiments).
	DisableIMUGate   bool
	DisableVideoGate bool
	DisableGossip    bool
	// MaxReuseStreak bounds how many consecutive frames may be served
	// by reuse before a forced revalidation inference. 0 keeps the
	// default (20); negative disables the bound.
	MaxReuseStreak int
	// SkipEvery, in ModeNaiveSkip, runs the DNN on every SkipEvery-th
	// frame (default 20, matching the approx pipeline's inference
	// budget). Ignored in other modes.
	SkipEvery int
	// KeyframeCapacity is how many recent recognized scenes the video
	// gate remembers (default 4). 1 reproduces a single-keyframe gate.
	KeyframeCapacity int
	// PeerBudget caps the time a frame may spend waiting on peers;
	// late answers are discarded and charged to the peer as timeouts.
	// Zero derives the budget as a quarter of the classifier's mean
	// inference latency; negative disables the cap.
	PeerBudget time.Duration
	// Peers installs a peer client at construction. JoinSimNetwork /
	// DialPeers can add one later.
	Peers *PeerClient
	// Watchdog overrides the classifier watchdog policy (per-call
	// timeout, bounded retry, consecutive-failure breaker). The zero
	// value keeps the defaults; set Watchdog.Disabled to run the
	// classifier unguarded.
	Watchdog WatchdogConfig
	// IMUGuard and FrameGuard override the sensor guard thresholds.
	// Zero values keep the defaults.
	IMUGuard   IMUGuardConfig
	FrameGuard FrameGuardConfig
	// DisableSensorGuards switches the input guards off entirely;
	// corrupt sensor data then flows into the gates unchecked.
	DisableSensorGuards bool
	// Shards splits the cache store into this many lock-striped shards
	// routed by an LSH signature prefix, so concurrent sessions stop
	// serializing on one store mutex. 0 or 1 keeps the single-shard
	// store. Lookups remain exact: every shard hashes with the same
	// seed, and cross-shard results merge in distance order.
	Shards int
	// BatchSize enables micro-batched DNN inference in NewPool: up to
	// BatchSize concurrent cache-miss classifications coalesce into one
	// batched invocation, amortizing the model's fixed per-invocation
	// cost. 0 or 1 runs unbatched. Requires a classifier implementing
	// BatchClassifier (the simulated classifier does). Ignored by New —
	// a single session has no concurrent misses to coalesce.
	BatchSize int
	// BatchWait caps how long a pending micro-batch waits for more
	// frames before dispatching anyway (default 5ms).
	BatchWait time.Duration
	// BatchPending bounds the micro-batcher's in-flight inferences
	// (queued plus dispatched); excess submissions are refused with a
	// typed overload error the degradation ladder absorbs. 0 keeps the
	// default (8×BatchSize); negative removes the bound.
	BatchPending int
	// RequestDeadline is the per-request wall-clock budget. A frame
	// that blows it is answered from the degradation ladder (typed
	// SourceShed / DegradeDeadline) instead of occupying the
	// classifier, and the micro-batcher drops it if it expires while
	// queued. Zero (the default) disables deadlines. Deadlines are
	// wall-clock even under a virtual Clock: queueing delay and
	// accelerator occupancy are wall-clock phenomena.
	RequestDeadline time.Duration
	// Admission enables the AIMD overload limiter gating the DNN
	// fallback. The zero value is disabled; start from
	// DefaultAdmissionConfig. Shed frames are answered from the
	// degradation ladder, typed SourceShed / DegradeOverload. Under
	// sustained pressure the limiter also browns out the expensive
	// reuse machinery (peer queries first, then the kNN vote).
	Admission AdmissionConfig
	// Quality enables the self-healing quality layer: a sampled
	// fraction of reuse hits is shadow-audited against the classifier,
	// refuted entries are quarantined and repaired, and the reuse gates
	// recalibrate to hold a live-accuracy target under drift. The zero
	// value is disabled; start from DefaultQualityConfig.
	Quality QualityConfig
	// QuarantineThreshold quarantines a cache entry once its audits
	// leave it with this many more refutes than confirms (0 keeps the
	// store default of 2; only meaningful with Quality enabled).
	QuarantineThreshold int
	// ParoleFailLimit evicts a quarantined entry after this many failed
	// parole re-verifications (0 keeps the store default of 2).
	ParoleFailLimit int
	// LastResultTTL bounds how stale the degradation ladder's
	// last-result answer may be: past the TTL the rung falls through to
	// the typed availability error instead of replaying an old label.
	// Zero (the default) keeps the last result usable indefinitely.
	LastResultTTL time.Duration
}

// DefaultAdmissionConfig returns the standard overload limiter
// configuration, enabled. Assign it to Options.Admission to turn
// admission control on.
func DefaultAdmissionConfig() AdmissionConfig {
	return admission.DefaultConfig()
}

// DefaultQualityConfig returns the standard self-healing quality layer
// configuration, enabled. Assign it to Options.Quality to turn shadow
// audits, quarantine, and gate recalibration on.
func DefaultQualityConfig() QualityConfig {
	return core.DefaultQualityConfig()
}

// Cache is the user-facing approximate recognition cache.
type Cache struct {
	engine *core.Engine
	store  cachestore.Interface
	clock  Clock
	cfg    core.Config
}

// New builds a Cache fronting classifier.
func New(classifier Classifier, opts Options) (*Cache, error) {
	if classifier == nil {
		return nil, fmt.Errorf("approxcache: nil classifier")
	}
	cfg := engineConfig(opts)
	clock := opts.Clock
	if clock == nil {
		clock = simclock.Real{}
	}
	store, err := newStore(cfg, opts, clock)
	if err != nil {
		return nil, err
	}
	engine, err := core.New(cfg, core.Deps{
		Clock:      clock,
		Classifier: classifier,
		Store:      store,
		Peers:      opts.Peers,
	})
	if err != nil {
		return nil, fmt.Errorf("approxcache: %w", err)
	}
	return &Cache{engine: engine, store: store, clock: clock, cfg: cfg}, nil
}

// engineConfig translates Options into the pipeline configuration.
func engineConfig(opts Options) core.Config {
	cfg := core.DefaultConfig()
	if opts.Mode != 0 {
		cfg.Mode = opts.Mode
	}
	if opts.Vote != (VoteConfig{}) {
		cfg.Vote = opts.Vote
	}
	cfg.DisableIMUGate = opts.DisableIMUGate
	cfg.DisableVideoGate = opts.DisableVideoGate
	cfg.DisableGossip = opts.DisableGossip
	if opts.MaxReuseStreak > 0 {
		cfg.MaxReuseStreak = opts.MaxReuseStreak
	} else if opts.MaxReuseStreak < 0 {
		cfg.MaxReuseStreak = 0
	}
	if cfg.Mode == ModeNaiveSkip {
		cfg.SkipEvery = opts.SkipEvery
		if cfg.SkipEvery == 0 {
			cfg.SkipEvery = 20
		}
	}
	if opts.KeyframeCapacity > 0 {
		cfg.KeyframeCapacity = opts.KeyframeCapacity
	}
	if opts.PeerBudget > 0 {
		cfg.PeerBudget = opts.PeerBudget
	} else if opts.PeerBudget < 0 {
		cfg.PeerBudget = 0
		cfg.PeerBudgetFraction = -1
	}
	if opts.Watchdog != (WatchdogConfig{}) {
		cfg.Watchdog = opts.Watchdog
	}
	if opts.IMUGuard != (IMUGuardConfig{}) {
		cfg.IMUGuard = opts.IMUGuard
	}
	if opts.FrameGuard != (FrameGuardConfig{}) {
		cfg.FrameGuard = opts.FrameGuard
	}
	cfg.DisableSensorGuards = opts.DisableSensorGuards
	if opts.RequestDeadline > 0 {
		cfg.RequestDeadline = opts.RequestDeadline
	}
	cfg.Admission = opts.Admission
	cfg.Quality = opts.Quality
	if opts.LastResultTTL > 0 {
		cfg.LastResultTTL = opts.LastResultTTL
	}
	if opts.Probes > 1 {
		cfg.IndexTuning.Probes = opts.Probes
	}
	if opts.Sketch {
		cfg.IndexTuning.SketchBits = 64
		cfg.IndexTuning.Quantize = true
	}
	return cfg
}

// newStore builds the cache store Options describes: nil outside
// ModeApprox, a single-mutex store by default, a sharded store when
// opts.Shards > 1. Every shard hashes with the same seed, so sharded
// lookups return exactly what an unsharded store would.
func newStore(cfg core.Config, opts Options, clock Clock) (cachestore.Interface, error) {
	if cfg.Mode != ModeApprox {
		return nil, nil
	}
	capacity := opts.Capacity
	if capacity == 0 {
		capacity = 256
	}
	policy := opts.Eviction
	if policy == 0 {
		policy = EvictCostAware
	}
	bits := opts.LSHBits
	if bits == 0 {
		bits = 12
	}
	tables := opts.LSHTables
	if tables == 0 {
		tables = 4
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	dim := cfg.Extractor.Dim()
	tuning := cfg.IndexTuning
	newIndex := func(int) (lsh.Index, error) {
		if opts.AdaptiveLSH {
			acfg := lsh.DefaultAdaptiveConfig(dim)
			acfg.Bits = bits
			acfg.Tables = tables
			acfg.Seed = seed
			acfg.Tuning = tuning
			return lsh.NewAdaptive(acfg)
		}
		return lsh.NewHyperplaneTuned(dim, bits, tables, seed, tuning)
	}
	scfg := cachestore.Config{
		Capacity:            capacity,
		Policy:              policy,
		TTL:                 opts.TTL,
		QuarantineThreshold: opts.QuarantineThreshold,
		ParoleFailLimit:     opts.ParoleFailLimit,
	}
	if opts.Quality.Enabled && scfg.QuarantineThreshold == 0 {
		scfg.QuarantineThreshold = 2
	}
	if opts.Shards > 1 {
		store, err := cachestore.NewSharded(cachestore.ShardedConfig{
			Config:     scfg,
			Dim:        dim,
			Shards:     opts.Shards,
			RouterSeed: seed,
		}, newIndex, clock)
		if err != nil {
			return nil, fmt.Errorf("approxcache: store: %w", err)
		}
		return store, nil
	}
	idx, err := newIndex(0)
	if err != nil {
		return nil, fmt.Errorf("approxcache: lsh index: %w", err)
	}
	store, err := cachestore.New(scfg, idx, clock)
	if err != nil {
		return nil, fmt.Errorf("approxcache: store: %w", err)
	}
	return store, nil
}

// Process recognizes one frame, charging all costs to the cache's
// clock. imuWindow carries the inertial samples received since the
// previous frame (pass nil when unavailable; the inertial gate then
// stays conservative).
func (c *Cache) Process(im *Image, imuWindow []IMUSample) (Result, error) {
	return c.engine.Process(im, imuWindow)
}

// ProcessWithTruth is Process plus ground-truth accuracy accounting,
// for experiments where the true label is known.
func (c *Cache) ProcessWithTruth(im *Image, imuWindow []IMUSample, truth string) (Result, error) {
	return c.engine.ProcessWithTruth(im, imuWindow, truth)
}

// Stats returns the session statistics.
func (c *Cache) Stats() *Stats { return c.engine.Stats() }

// AdmissionSnapshot returns the overload limiter's state; ok is false
// when Options.Admission is disabled.
func (c *Cache) AdmissionSnapshot() (AdmissionSnapshot, bool) {
	return c.engine.AdmissionSnapshot()
}

// QualitySnapshot returns the quality layer's live state; ok is false
// when Options.Quality is disabled.
func (c *Cache) QualitySnapshot() (QualitySnapshot, bool) {
	return c.engine.QualitySnapshot()
}

// QuarantineStats returns the store's quarantine lifecycle counters
// (zero value outside ModeApprox).
func (c *Cache) QuarantineStats() QuarantineStats {
	if c.store == nil {
		return QuarantineStats{}
	}
	return c.store.QuarantineStats()
}

// DrainAudits blocks until every in-flight shadow audit has completed.
// Call before reading final statistics when Options.Quality runs
// asynchronous audits.
func (c *Cache) DrainAudits() { c.engine.DrainAudits() }

// Mode returns the configured strategy.
func (c *Cache) Mode() Mode { return c.engine.Mode() }

// LastResult returns the most recent recognition, if any.
func (c *Cache) LastResult() (Result, bool) { return c.engine.LastResult() }

// Len returns the number of live cache entries (0 outside ModeApprox).
func (c *Cache) Len() int {
	if c.store == nil {
		return 0
	}
	return c.store.Len()
}

// Evictions returns how many entries were evicted under capacity
// pressure (0 outside ModeApprox).
func (c *Cache) Evictions() int {
	if c.store == nil {
		return 0
	}
	return c.store.Evictions()
}

// StoreStats summarizes cache occupancy and churn.
type StoreStats = cachestore.StoreStats

// StoreStats returns occupancy/churn details of the cache store (zero
// value outside ModeApprox).
func (c *Cache) StoreStats() StoreStats {
	if c.store == nil {
		return StoreStats{}
	}
	return c.store.Stats()
}

// NewVirtualClock returns a deterministic clock starting at the Unix
// epoch, for experiments.
func NewVirtualClock() *VirtualClock {
	return simclock.NewVirtual(time.Unix(0, 0))
}

// NewSimulatedClassifier builds the simulated DNN over a workload's
// class set. profile selects the model's cost/quality (e.g.
// MobileNetV2); seed drives label noise and latency jitter.
func NewSimulatedClassifier(profile ModelProfile, w *Workload, seed int64) (Classifier, error) {
	if w == nil {
		return nil, fmt.Errorf("approxcache: nil workload")
	}
	return dnn.NewClassifier(profile, w.Classes, seed)
}

// LabelOf returns the canonical label for workload class index c.
func LabelOf(c int) string { return dnn.LabelOf(c) }

// NewActivityClassifier builds a motion-activity classifier with the
// default thresholds.
func NewActivityClassifier() (*ActivityClassifier, error) {
	return imu.NewActivityClassifier(imu.DefaultActivityConfig())
}

// GenerateWorkload renders the workload described by spec.
func GenerateWorkload(spec WorkloadSpec) (*Workload, error) { return trace.Generate(spec) }

// StandardWorkloads returns the four canonical workload specs
// (stationary-heavy, handheld-mix, walking-tour, panning-sweep) at the
// given frame budget.
func StandardWorkloads(frames int, seed int64) []WorkloadSpec {
	return trace.StandardSpecs(frames, seed)
}

// StationaryHeavyWorkload returns the poster's best-case workload spec.
func StationaryHeavyWorkload(frames int, seed int64) WorkloadSpec {
	return trace.StationaryHeavy(frames, seed)
}
