package dnn

import (
	"errors"
	"testing"
	"time"

	"approxcache/internal/vision"
)

// stubModel is a minimal Recognizer whose answers are fixed.
type stubModel struct {
	inf Inference
}

func (s *stubModel) Infer(im *vision.Image) (Inference, error) { return s.inf, nil }
func (s *stubModel) Profile() Profile                          { return Profile{Name: "stub"} }

func newStub() *stubModel {
	return &stubModel{inf: Inference{Label: "cat", Confidence: 0.9, Latency: 10 * time.Millisecond}}
}

func TestFaultPlanValidate(t *testing.T) {
	good := FaultPlan{{From: 0, To: 3, Kind: FaultError}, {From: 5, To: 5, Kind: FaultSlow, Extra: time.Second}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
	bad := []FaultPlan{
		{{From: -1, To: 2, Kind: FaultError}},
		{{From: 4, To: 2, Kind: FaultError}},
		{{From: 0, To: 1, Kind: FaultKind(9)}},
		{{From: 0, To: 1, Kind: FaultSlow, Extra: -time.Second}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad plan %d accepted", i)
		}
	}
	if _, err := NewFaultyClassifier(nil, nil); err == nil {
		t.Fatal("nil inner accepted")
	}
	if _, err := NewFaultyClassifier(newStub(), bad[0]); err == nil {
		t.Fatal("bad plan accepted by constructor")
	}
}

func TestFaultErrorWindow(t *testing.T) {
	fc, err := NewFaultyClassifier(newStub(), FaultPlan{{From: 2, To: 4, Kind: FaultError}})
	if err != nil {
		t.Fatal(err)
	}
	im := vision.NewImage(4, 4)
	for call := 0; call < 6; call++ {
		inf, err := fc.Infer(im)
		inWindow := call >= 2 && call < 4
		if inWindow {
			if !errors.Is(err, ErrInjectedFault) {
				t.Fatalf("call %d: want injected fault, got %v", call, err)
			}
		} else if err != nil || inf.Label != "cat" {
			t.Fatalf("call %d: want success, got %v %v", call, inf, err)
		}
	}
	if fc.Calls() != 6 {
		t.Fatalf("Calls = %d", fc.Calls())
	}
}

func TestFaultyClassifierSetDown(t *testing.T) {
	fc, err := NewFaultyClassifier(newStub(), nil)
	if err != nil {
		t.Fatal(err)
	}
	im := vision.NewImage(4, 4)
	if _, err := fc.Infer(im); err != nil {
		t.Fatalf("healthy call failed: %v", err)
	}
	fc.SetDown(true)
	for i := 0; i < 3; i++ {
		if _, err := fc.Infer(im); !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("down call %d: want injected fault, got %v", i, err)
		}
	}
	fc.SetDown(false)
	if inf, err := fc.Infer(im); err != nil || inf.Label != "cat" {
		t.Fatalf("healed call: got %v %v", inf, err)
	}
	if fc.Profile().Name != "stub" {
		t.Fatal("profile not delegated")
	}
}

func TestFaultHangBlocksThenErrors(t *testing.T) {
	fc, err := NewFaultyClassifier(newStub(), FaultPlan{{From: 0, To: 1, Kind: FaultHang, Extra: 20 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, ferr := fc.Infer(vision.NewImage(4, 4))
	if !errors.Is(ferr, ErrInjectedFault) {
		t.Fatalf("want injected fault, got %v", ferr)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("hang returned after only %v", el)
	}
}

func TestFaultHangRelease(t *testing.T) {
	// Extra 0 hangs until Release; the call must return promptly after.
	fc, err := NewFaultyClassifier(newStub(), FaultPlan{{From: 0, To: 1, Kind: FaultHang}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, ferr := fc.Infer(vision.NewImage(4, 4))
		done <- ferr
	}()
	select {
	case <-done:
		t.Fatal("hang returned before Release")
	case <-time.After(20 * time.Millisecond):
	}
	fc.Release()
	select {
	case ferr := <-done:
		if !errors.Is(ferr, ErrInjectedFault) {
			t.Fatalf("want injected fault, got %v", ferr)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Release did not unblock the hung call")
	}
}

func TestFaultSlowInflatesLatency(t *testing.T) {
	fc, err := NewFaultyClassifier(newStub(), FaultPlan{{From: 0, To: 1, Kind: FaultSlow, Extra: 90 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	inf, err := fc.Infer(vision.NewImage(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if inf.Latency != 100*time.Millisecond {
		t.Fatalf("Latency = %v, want 100ms", inf.Latency)
	}
	// Outside the window, latency reverts.
	inf, err = fc.Infer(vision.NewImage(4, 4))
	if err != nil || inf.Latency != 10*time.Millisecond {
		t.Fatalf("post-window = %v %v", inf, err)
	}
}

func TestFaultKindStrings(t *testing.T) {
	for k, want := range map[FaultKind]string{
		FaultError: "error", FaultHang: "hang", FaultSlow: "slow",
	} {
		if got := k.String(); got != want {
			t.Fatalf("String(%d) = %q", int(k), got)
		}
	}
	if got := FaultKind(7).String(); got != "FaultKind(7)" {
		t.Fatalf("unknown kind string %q", got)
	}
}
