package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"approxcache/internal/cachestore"
	"approxcache/internal/dnn"
	"approxcache/internal/imu"
	"approxcache/internal/lsh"
	"approxcache/internal/metrics"
	"approxcache/internal/simclock"
	"approxcache/internal/vision"
)

// newFaultyFixture is newFixture with the classifier wrapped in a
// deterministic fault injector.
func newFaultyFixture(t *testing.T, cfg Config, plan dnn.FaultPlan) (*fixture, *dnn.FaultyClassifier) {
	t.Helper()
	classes, err := vision.NewClassSet(6, 48, 48, 77)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	inner, err := dnn.NewClassifier(perfectProfile(), classes, 1)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := dnn.NewFaultyClassifier(inner, plan)
	if err != nil {
		t.Fatal(err)
	}
	var store *cachestore.Store
	if cfg.Mode == ModeApprox {
		idx, err := lsh.NewHyperplane(cfg.Extractor.Dim(), 12, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		store, err = cachestore.New(cachestore.Config{Capacity: 128}, idx, clock)
		if err != nil {
			t.Fatal(err)
		}
	}
	eng, err := New(cfg, Deps{Clock: clock, Classifier: faulty, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{engine: eng, clock: clock, store: store, classes: classes}, faulty
}

// stuckWindow is long enough for the stuck-axis check and freezes one
// accelerometer axis bit-identically. Its readings are quiet: to the
// unguarded motion detector it is indistinguishable from stillness,
// which is exactly the hazard the guard exists for.
func stuckWindow(off time.Duration) []imu.Sample {
	var out []imu.Sample
	for i := 0; i < 30; i++ {
		out = append(out, imu.Sample{
			Offset: off + time.Duration(i)*10*time.Millisecond,
			Accel:  [3]float64{0.125, 0.001 * float64(i%5), 0},
			Gyro:   [3]float64{0.001 * float64(i%7), 0, 0.002},
		})
	}
	return out
}

func TestProcessTypedErrors(t *testing.T) {
	f := newFixture(t, DefaultConfig(), nil)
	proto, err := f.classes.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.engine.Process(nil, stationaryWindow(0)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("nil frame error = %v, want ErrBadFrame", err)
	}
	bad := proto.Clone()
	bad.Pix[7] = math.NaN()
	if _, err := f.engine.Process(bad, stationaryWindow(0)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("NaN frame error = %v, want ErrBadFrame", err)
	}
	win := stationaryWindow(0)
	win[3].Gyro[1] = math.Inf(1)
	if _, err := f.engine.Process(proto, win); !errors.Is(err, ErrBadIMUWindow) {
		t.Fatalf("Inf window error = %v, want ErrBadIMUWindow", err)
	}
	faults := f.engine.Stats().SensorFaults()
	if faults["frame-nil"] != 1 || faults["frame-non-finite"] != 1 || faults["imu-non-finite"] != 1 {
		t.Fatalf("sensor fault counters = %v", faults)
	}
	if f.engine.Stats().Frames() != 0 {
		t.Fatalf("refused frames were observed: %d", f.engine.Stats().Frames())
	}
}

// A frozen IMU stream fakes perfect stillness; the guard must route it
// past the inertial gate so it cannot serve stale results forever.
func TestStuckIMUWindowRoutedPastGate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableVideoGate = true
	f := newFixture(t, cfg, nil)
	proto, err := f.classes.Prototype(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.engine.Process(proto, stationaryWindow(0)); err != nil {
		t.Fatal(err)
	}
	// Sanity: a genuine stationary window reuses via the IMU gate.
	res, err := f.engine.Process(proto, stationaryWindow(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != metrics.SourceIMU {
		t.Fatalf("stationary source = %v, want imu", res.Source)
	}
	// A stuck window must not: the frame is served, but by a later gate.
	res, err = f.engine.Process(proto, stuckWindow(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source == metrics.SourceIMU {
		t.Fatal("stuck window served through the inertial gate")
	}
	if got := f.engine.Stats().SensorFaults()["imu-stuck"]; got != 1 {
		t.Fatalf("imu-stuck count = %d", got)
	}
}

// Low-entropy frames (covered lens) are classified by the DNN alone and
// never pollute the cache, keyframes, or motion anchor.
func TestLowEntropyFrameBypassesCache(t *testing.T) {
	f := newFixture(t, DefaultConfig(), nil)
	flat := vision.NewImage(48, 48)
	for i := range flat.Pix {
		flat.Pix[i] = 0.5
	}
	before := f.store.Len()
	res, err := f.engine.Process(flat, movingWindow(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != metrics.SourceDNN {
		t.Fatalf("flat frame source = %v, want dnn", res.Source)
	}
	if after := f.store.Len(); after != before {
		t.Fatalf("flat frame inserted into cache: %d -> %d", before, after)
	}
	if got := f.engine.Stats().SensorFaults()["frame-low-entropy"]; got != 1 {
		t.Fatalf("frame-low-entropy count = %d", got)
	}
	// A second identical flat frame still goes to the DNN: nothing was
	// cached or keyframed from the first.
	res, err = f.engine.Process(flat, movingWindow(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != metrics.SourceDNN {
		t.Fatalf("second flat frame source = %v, want dnn", res.Source)
	}
}

// Ablation: with guards off, quality faults pass straight through (and
// nil frames still error — nothing downstream can use them).
func TestSensorGuardsDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableSensorGuards = true
	f := newFixture(t, cfg, nil)
	proto, err := f.classes.Prototype(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.engine.Process(proto, stationaryWindow(0)); err != nil {
		t.Fatal(err)
	}
	// The stuck window now reaches the detector and fakes stillness.
	res, err := f.engine.Process(proto, stuckWindow(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != metrics.SourceIMU {
		t.Fatalf("unguarded stuck window source = %v, want imu", res.Source)
	}
	if total := f.engine.Stats().SensorFaultTotal(); total != 0 {
		t.Fatalf("guards disabled but %d faults counted", total)
	}
	if _, err := f.engine.Process(nil, nil); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("nil frame error = %v, want ErrBadFrame", err)
	}
}

// During a DNN outage the engine keeps answering from the cache at
// halved confidence, trips the breaker, fast-fails while down, and
// recovers on its own once the model heals.
func TestWatchdogOutageDegradesAndRecovers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Watchdog = WatchdogConfig{
		MaxRetries:    0,
		TripThreshold: 3,
		Cooldown:      500 * time.Millisecond,
	}
	f, faulty := newFaultyFixture(t, cfg, nil)

	// Warm the cache with one healthy recognition per class.
	protos := make([]*vision.Image, 3)
	for c := 0; c < 3; c++ {
		p, err := f.classes.Prototype(c)
		if err != nil {
			t.Fatal(err)
		}
		protos[c] = p
		res, err := f.engine.Process(p, movingWindow(time.Duration(c)*100*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		if res.Source != metrics.SourceDNN {
			t.Fatalf("warmup %d source = %v", c, res.Source)
		}
	}

	faulty.SetDown(true)
	for i := 0; i < 12; i++ {
		// Show classes the cache has never seen, so every gate misses
		// and the frame needs the (down) DNN.
		p, err := f.classes.Prototype(3 + i%2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.engine.Process(p, movingWindow(time.Duration(3+i)*100*time.Millisecond))
		if err != nil {
			t.Fatalf("outage frame %d: %v", i, err)
		}
		switch res.Source {
		case metrics.SourceFallback:
			if res.Degradation == DegradeNone {
				t.Fatalf("outage frame %d: fallback with DegradeNone", i)
			}
			if res.Confidence >= 1 {
				t.Fatalf("outage frame %d: undiscounted confidence %v", i, res.Confidence)
			}
		case metrics.SourceDNN:
			t.Fatalf("outage frame %d served by a down DNN", i)
		}
	}
	if f.engine.Stats().DegradedServeTotal() == 0 {
		t.Fatal("no degraded serves counted")
	}
	timeouts, _, trips, recoveries, fastFails := f.engine.Stats().WatchdogEvents()
	if trips != 1 {
		t.Fatalf("trips = %d, want 1", trips)
	}
	if fastFails == 0 {
		t.Fatal("breaker never fast-failed during outage")
	}
	if timeouts != 0 || recoveries != 0 {
		t.Fatalf("unexpected events: timeouts=%d recoveries=%d", timeouts, recoveries)
	}

	// Heal the model, let the cooldown elapse, and confirm the next
	// cache-missing frame probes through and recovers.
	faulty.SetDown(false)
	f.clock.Advance(time.Second)
	p5, err := f.classes.Prototype(5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.engine.Process(p5, movingWindow(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != metrics.SourceDNN || res.Degradation != DegradeNone {
		t.Fatalf("post-heal result = %+v, want fresh DNN", res)
	}
	if _, _, _, recoveries, _ := f.engine.Stats().WatchdogEvents(); recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", recoveries)
	}
}

// A wedged classifier call is cut off at the wall-clock deadline and
// the frame degrades to the last result instead of stalling.
func TestWatchdogTimeoutBoundsHungCall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Watchdog = WatchdogConfig{
		CallTimeout:   30 * time.Millisecond,
		TripThreshold: 3,
		Cooldown:      500 * time.Millisecond,
	}
	// Call 1 hangs far past the deadline.
	f, faulty := newFaultyFixture(t, cfg, dnn.FaultPlan{
		{From: 1, To: 2, Kind: dnn.FaultHang, Extra: 10 * time.Second},
	})
	defer faulty.Release()
	proto, err := f.classes.Prototype(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.engine.Process(proto, movingWindow(0)); err != nil {
		t.Fatal(err)
	}
	other, err := f.classes.Prototype(3)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := f.engine.Process(other, movingWindow(100*time.Millisecond))
	if err != nil {
		t.Fatalf("hung frame errored: %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("hung call stalled the frame for %v", el)
	}
	if res.Source != metrics.SourceFallback {
		t.Fatalf("hung frame source = %v, want fallback", res.Source)
	}
	if res.Latency < cfg.Watchdog.CallTimeout {
		t.Fatalf("timeout not charged: latency = %v", res.Latency)
	}
	if timeouts, _, _, _, _ := f.engine.Stats().WatchdogEvents(); timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", timeouts)
	}
}

// A transient error clears on the watchdog's immediate retry.
func TestWatchdogRetriesTransientError(t *testing.T) {
	cfg := Config{Mode: ModeNoCache, Watchdog: WatchdogConfig{
		MaxRetries:    1,
		RetryBackoff:  10 * time.Millisecond,
		TripThreshold: 3,
	}}
	f, _ := newFaultyFixture(t, cfg, dnn.FaultPlan{
		{From: 0, To: 1, Kind: dnn.FaultError},
	})
	proto, err := f.classes.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.engine.Process(proto, nil)
	if err != nil {
		t.Fatalf("transient error not retried: %v", err)
	}
	if res.Source != metrics.SourceDNN {
		t.Fatalf("source = %v", res.Source)
	}
	if res.Latency < cfg.Watchdog.RetryBackoff {
		t.Fatalf("backoff not charged: latency = %v", res.Latency)
	}
	if _, retries, trips, _, _ := f.engine.Stats().WatchdogEvents(); retries != 1 || trips != 0 {
		t.Fatalf("retries=%d trips=%d", retries, trips)
	}
}

// The naive-skip baseline has no cache: a due inference during an
// outage repeats the last answer at reduced confidence.
func TestNaiveSkipDegradesToLastResult(t *testing.T) {
	cfg := Config{Mode: ModeNaiveSkip, SkipEvery: 2, Costs: DefaultCostModel(),
		Watchdog: WatchdogConfig{TripThreshold: 1}}
	f, faulty := newFaultyFixture(t, cfg, nil)
	proto, err := f.classes.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}
	first, err := f.engine.Process(proto, nil)
	if err != nil {
		t.Fatal(err)
	}
	faulty.SetDown(true)
	sawFallback := false
	for i := 0; i < 4; i++ {
		res, err := f.engine.Process(proto, nil)
		if err != nil {
			t.Fatalf("outage frame %d: %v", i, err)
		}
		if res.Label != first.Label {
			t.Fatalf("outage frame %d label = %q", i, res.Label)
		}
		if res.Source == metrics.SourceFallback {
			sawFallback = true
			if res.Degradation != DegradeLastResult {
				t.Fatalf("naive-skip degradation = %v", res.Degradation)
			}
		}
	}
	if !sawFallback {
		t.Fatal("no due inference degraded during the outage")
	}
}

// TestLastResultTTLExpiresLadderRung: with LastResultTTL set, the
// degradation ladder's last-result rung only serves answers younger
// than the TTL — a stale label is worse than an honest error.
func TestLastResultTTLExpiresLadderRung(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LastResultTTL = time.Second
	cfg.Watchdog = WatchdogConfig{TripThreshold: 1, Cooldown: time.Hour}
	f, faulty := newFaultyFixture(t, cfg, nil)
	proto, err := f.classes.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}
	// Cold outage with only a seeded last result: the cache is empty,
	// so the ladder reaches the last-result rung directly.
	faulty.SetDown(true)
	seedLastResult(f.engine, "seeded")
	res, err := f.engine.Process(proto, movingWindow(0))
	if err != nil {
		t.Fatalf("in-TTL outage frame: %v", err)
	}
	if res.Label != "seeded" || res.Degradation != DegradeLastResult {
		t.Fatalf("in-TTL fallback = %+v", res)
	}
	// Serving from the ladder does not refresh the stamp: once the
	// seeded recognition ages past the TTL, the rung falls through.
	f.clock.Advance(2 * time.Second)
	if _, err := f.engine.Process(proto, movingWindow(time.Hour)); !errors.Is(err, ErrClassifierDown) {
		t.Fatalf("stale outage frame error = %v, want ErrClassifierDown", err)
	}
}

// With an empty cache, no last result, and a down DNN there is nothing
// left to serve: the error names the classifier.
func TestOutageWithNothingToServeErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Watchdog = WatchdogConfig{TripThreshold: 1, Cooldown: time.Minute}
	f, faulty := newFaultyFixture(t, cfg, nil)
	faulty.SetDown(true)
	proto, err := f.classes.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.engine.Process(proto, movingWindow(0)); !errors.Is(err, ErrClassifierDown) {
		t.Fatalf("cold outage error = %v, want ErrClassifierDown", err)
	}
	// The breaker is now open: the next attempt fast-fails.
	if _, err := f.engine.Process(proto, movingWindow(100*time.Millisecond)); !errors.Is(err, ErrClassifierDown) {
		t.Fatalf("fast-fail error = %v, want ErrClassifierDown", err)
	}
	if _, _, _, _, fastFails := f.engine.Stats().WatchdogEvents(); fastFails != 1 {
		t.Fatalf("fastFails = %d, want 1", fastFails)
	}
}

func TestDegradationLevelStrings(t *testing.T) {
	if DegradeNone.String() != "none" || DegradeCacheOnly.String() != "cache-only" ||
		DegradeLastResult.String() != "last-result" {
		t.Fatal("degradation names wrong")
	}
	if got := DegradationLevel(9).String(); got != "DegradationLevel(9)" {
		t.Fatalf("unknown level string %q", got)
	}
}

func TestWatchdogConfigValidate(t *testing.T) {
	if err := DefaultWatchdogConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []WatchdogConfig{
		{CallTimeout: -1},
		{MaxRetries: -1},
		{RetryBackoff: -1},
		{Cooldown: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad watchdog config %d accepted", i)
		}
	}
}
