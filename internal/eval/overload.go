package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"approxcache/internal/admission"
	"approxcache/internal/cachestore"
	"approxcache/internal/core"
	"approxcache/internal/dnn"
	"approxcache/internal/lsh"
	"approxcache/internal/metrics"
	"approxcache/internal/simclock"
	"approxcache/internal/vision"
)

// The overload benchmark: an OPEN-LOOP arrival generator against one
// serving node, sweeping offered load from half capacity to 4×.
//
// The throughput benchmark (E20) is closed-loop: each stream waits for
// its previous frame, so offered load can never exceed service rate
// and the node never truly overloads. Real mobile clients do not wait
// — frames arrive at camera rate regardless of how far behind the
// node is. This harness therefore fires requests on a fixed schedule
// and measures GOODPUT: completions that returned a fresh-quality
// answer (not shed) within the request deadline, per second.
//
// Two node configurations run the same sweep:
//
//   - resilient: request deadlines on, AIMD admission control gating
//     the DNN fallback, bounded batcher queue. Excess load is shed
//     through the degradation ladder in microseconds, so the
//     accelerator keeps serving admitted work at capacity.
//   - unprotected: no deadlines, no admission, unbounded batcher
//     queue. Excess load piles up; every queued frame completes
//     eventually but long after its answer stopped being useful.
//
// The regression gate (cmd/benchgate -overload-json) enforces that the
// resilient node retains its goodput at the highest load multiplier:
// goodput@4× ≥ 0.85 × peak goodput across the sweep.

// Overload mode names, in report order.
const (
	OverloadResilient   = "resilient"
	OverloadUnprotected = "unprotected"
)

// OverloadModes lists the benchmark's node configurations.
func OverloadModes() []string {
	return []string{OverloadResilient, OverloadUnprotected}
}

// OverloadConfig shapes the overload benchmark.
type OverloadConfig struct {
	// Sessions is the serving pool size (default 8).
	Sessions int
	// Loads are the offered-load multipliers of measured capacity
	// (default 0.5, 1, 2, 4).
	Loads []float64
	// Window is how long each load point offers traffic (default 700ms).
	Window time.Duration
	// Deadline is the per-request budget; the resilient node enforces
	// it, and the harness judges BOTH nodes' completions against it
	// (default 80ms).
	Deadline time.Duration
	// Scale converts simulated inference latency to real accelerator
	// occupancy (default 1/5 — slower than E20's 1/15, so capacity is
	// low enough for the generator to comfortably outrun it).
	Scale float64
	// Classes is the synthetic vocabulary size (default 24).
	Classes int
	// Capacity is the node's cache capacity (default 512).
	Capacity int
	// Seed anchors all randomness.
	Seed int64
	// Profile is the model profile (default MobileNetV2).
	Profile dnn.Profile
	// Batcher is the micro-batching policy (default: 4 frames or 2ms;
	// the unprotected mode removes its pending bound).
	Batcher dnn.BatcherConfig
	// Admission is the resilient node's limiter policy (default
	// admission.DefaultConfig).
	Admission admission.Config
	// MaxReuseStreak bounds reuse before forced revalidation (default
	// 2, keeping the DNN fallback hot under load).
	MaxReuseStreak int
	// Calibration is the closed-loop capacity measurement duration
	// (default 250ms).
	Calibration time.Duration
	// DrainTimeout bounds how long a load point waits for stragglers
	// after the offered window closes; requests still in flight past it
	// are counted unfinished (default 2s).
	DrainTimeout time.Duration
}

func (c *OverloadConfig) defaults() {
	if c.Sessions == 0 {
		c.Sessions = 8
	}
	if len(c.Loads) == 0 {
		c.Loads = []float64{0.5, 1, 2, 4}
	}
	if c.Window == 0 {
		c.Window = 700 * time.Millisecond
	}
	if c.Deadline == 0 {
		c.Deadline = 80 * time.Millisecond
	}
	if c.Scale == 0 {
		c.Scale = 1.0 / 5
	}
	if c.Classes == 0 {
		c.Classes = 24
	}
	if c.Capacity == 0 {
		c.Capacity = 512
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Profile.Name == "" {
		c.Profile = dnn.MobileNetV2
	}
	if c.Batcher.MaxBatch == 0 {
		c.Batcher = dnn.BatcherConfig{MaxBatch: 4, MaxWait: 2 * time.Millisecond}
	}
	if !c.Admission.Enabled {
		c.Admission = admission.DefaultConfig()
	}
	if c.MaxReuseStreak == 0 {
		c.MaxReuseStreak = 2
	}
	if c.Calibration == 0 {
		c.Calibration = 250 * time.Millisecond
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 2 * time.Second
	}
}

// OverloadPoint is one (mode, load multiplier) measurement.
type OverloadPoint struct {
	Mode       string  `json:"mode"`
	Load       float64 `json:"load"`
	OfferedRPS float64 `json:"offered_rps"`
	Offered    int     `json:"offered"`
	Completed  int     `json:"completed"`
	// Good counts completions that returned a fresh-quality (non-shed)
	// answer within the deadline; GoodputRPS is Good over the offered
	// window.
	Good       int     `json:"good"`
	GoodputRPS float64 `json:"goodput_rps"`
	// Shed counts completions answered from the degradation ladder
	// with a typed shed marker; Errors counts typed refusals where no
	// degraded answer existed. Neither is silent loss.
	Shed   int `json:"shed"`
	Errors int `json:"errors"`
	// Unfinished counts requests still in flight when the drain
	// timeout expired — the unbounded-queue failure mode.
	Unfinished int     `json:"unfinished"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	// Admission limiter state at the end of the point (resilient only).
	AdmissionLimit int    `json:"admission_limit,omitempty"`
	BrownoutLevel  string `json:"brownout_level,omitempty"`
	BrownoutRaised int64  `json:"brownout_raised,omitempty"`
	// Batcher overload counters.
	ExpiredDrops   int64 `json:"expired_drops,omitempty"`
	QueueOverflows int64 `json:"queue_overflows,omitempty"`
}

// OverloadReport is the full benchmark outcome, serialized to
// BENCH_overload.json and gated by cmd/benchgate.
type OverloadReport struct {
	Sessions    int             `json:"sessions"`
	DeadlineMS  float64         `json:"deadline_ms"`
	WindowMS    float64         `json:"window_ms"`
	CapacityRPS float64         `json:"capacity_rps"`
	Points      []OverloadPoint `json:"points"`
	// PeakGoodput is the best resilient goodput across the sweep;
	// GoodputAtMax is the resilient goodput at the highest multiplier.
	// Retention = GoodputAtMax / PeakGoodput is the gated number.
	PeakGoodput  float64 `json:"peak_goodput_rps"`
	GoodputAtMax float64 `json:"goodput_at_max_rps"`
	Retention    float64 `json:"retention"`
	// P99 at the highest multiplier for both modes — the latency
	// collapse the unprotected node exists to demonstrate.
	ResilientP99MS   float64 `json:"resilient_p99_ms"`
	UnprotectedP99MS float64 `json:"unprotected_p99_ms"`
}

// overloadNode is one freshly built serving node (every load point
// gets its own, so backlog from one point cannot pollute the next).
type overloadNode struct {
	pool    *core.Pool
	batcher *dnn.Batcher
	store   *cachestore.ShardedStore
}

func (n *overloadNode) close() {
	if n.batcher != nil {
		n.batcher.Close()
	}
}

// buildOverloadNode assembles a sharded + micro-batched serving pool.
// The resilient mode adds request deadlines, admission control, and
// the batcher's pending bound; the unprotected mode strips all three.
func buildOverloadNode(cfg OverloadConfig, mode string, classifier *dnn.Classifier) (*overloadNode, error) {
	ecfg := throughputEngineConfig(cfg.MaxReuseStreak)
	bcfg := cfg.Batcher
	switch mode {
	case OverloadResilient:
		ecfg.RequestDeadline = cfg.Deadline
		ecfg.Admission = cfg.Admission
	case OverloadUnprotected:
		bcfg.MaxPending = -1
	default:
		return nil, fmt.Errorf("eval: unknown overload mode %q", mode)
	}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	dim := ecfg.Extractor.Dim()
	store, err := cachestore.NewSharded(cachestore.ShardedConfig{
		Config: cachestore.Config{Capacity: cfg.Capacity},
		Dim:    dim,
		Shards: 8,
	}, func(int) (lsh.Index, error) {
		return lsh.NewHyperplane(dim, 12, 4, cfg.Seed)
	}, clock)
	if err != nil {
		return nil, err
	}
	model := &occupiedModel{inner: classifier, scale: cfg.Scale}
	batcher, err := dnn.NewBatcher(bcfg, model)
	if err != nil {
		return nil, err
	}
	pool, err := core.NewPool(cfg.Sessions, ecfg, core.Deps{
		Clock: clock, Classifier: batcher, Store: store,
	})
	if err != nil {
		batcher.Close()
		return nil, err
	}
	return &overloadNode{pool: pool, batcher: batcher, store: store}, nil
}

// renderOverloadImages pre-renders the request population: three
// perturbed variants per class, cycled by the generator. Rendering is
// pure CPU cost that must not pollute the serving measurement.
func renderOverloadImages(cfg OverloadConfig, classes *vision.ClassSet) ([]*vision.Image, []int, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := 3 * cfg.Classes
	images := make([]*vision.Image, n)
	klass := make([]int, n)
	for i := range images {
		c := i % cfg.Classes
		im, err := classes.Render(c, vision.DefaultPerturbation(), rng)
		if err != nil {
			return nil, nil, fmt.Errorf("render image %d: %w", i, err)
		}
		images[i] = im
		klass[i] = c
	}
	return images, klass, nil
}

// warmStore seeds a node's cache with one entry per request image,
// bypassing the engine: a cold cache would make every load point start
// with a miss flood that measures warm-up, not overload behavior. The
// entries carry the true labels — exactly what a prior serving epoch
// would have cached.
func warmStore(cfg OverloadConfig, node *overloadNode, images []*vision.Image, klass []int) error {
	ex := throughputEngineConfig(cfg.MaxReuseStreak).Extractor
	for i, im := range images {
		vec, err := ex.Extract(im)
		if err != nil {
			return err
		}
		if _, err := node.store.Insert(vec, dnn.LabelOf(klass[i]), 0.9, "dnn",
			cfg.Profile.MeanLatency); err != nil {
			return err
		}
	}
	return nil
}

// calibrateCapacity measures the node's sustainable service rate with
// a CLOSED loop: cfg.Sessions streams each driving frames back to
// back, so the node is busy but never backlogged. The open-loop sweep
// offers multiples of this rate.
func calibrateCapacity(cfg OverloadConfig, classifier *dnn.Classifier, images []*vision.Image, klass []int) (float64, error) {
	node, err := buildOverloadNode(cfg, OverloadUnprotected, classifier)
	if err != nil {
		return 0, err
	}
	defer node.close()
	if err := warmStore(cfg, node, images, klass); err != nil {
		return 0, err
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	start := time.Now()
	until := start.Add(cfg.Calibration)
	for s := 0; s < cfg.Sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			eng := node.pool.Session(s)
			n := 0
			for i := 0; time.Now().Before(until); i++ {
				if _, err := eng.Process(images[(s*31+i)%len(images)], nil); err == nil {
					n++
				}
			}
			mu.Lock()
			done += n
			mu.Unlock()
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if done == 0 || elapsed <= 0 {
		return 0, fmt.Errorf("eval: capacity calibration served nothing")
	}
	return float64(done) / elapsed.Seconds(), nil
}

// overloadOutcome is one request's fate as the harness saw it.
type overloadOutcome struct {
	latency time.Duration
	source  metrics.Source
	err     error
}

// runOverloadPoint offers load×capacity req/s to a fresh node for one
// window and scores every completion against the deadline.
func runOverloadPoint(cfg OverloadConfig, mode string, load, capacity float64,
	classifier *dnn.Classifier, images []*vision.Image, klass []int) (OverloadPoint, error) {
	node, err := buildOverloadNode(cfg, mode, classifier)
	if err != nil {
		return OverloadPoint{}, err
	}
	if err := warmStore(cfg, node, images, klass); err != nil {
		node.close()
		return OverloadPoint{}, err
	}
	rate := load * capacity
	interval := time.Duration(float64(time.Second) / rate)

	var mu sync.Mutex
	var outcomes []overloadOutcome
	var wg sync.WaitGroup
	offered := 0
	start := time.Now()
	next := start
	for time.Since(start) < cfg.Window {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		// If the sleep overshot, the loop dispatches back-to-back until
		// the schedule catches up — the average rate holds.
		next = next.Add(interval)
		i := offered
		offered++
		t0 := time.Now()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng := node.pool.Session(i % cfg.Sessions)
			res, perr := eng.Process(images[i%len(images)], nil)
			o := overloadOutcome{latency: time.Since(t0), source: res.Source, err: perr}
			mu.Lock()
			outcomes = append(outcomes, o)
			mu.Unlock()
		}(i)
	}
	window := time.Since(start)

	// Drain stragglers, bounded: an unbounded backlog (the unprotected
	// failure mode) must not stall the whole sweep. Abandoned requests
	// finish in the background against this point's private node.
	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	timedOut := false
	select {
	case <-drained:
	case <-time.After(cfg.DrainTimeout):
		timedOut = true
	}
	if timedOut {
		go func() { <-drained; node.close() }()
	} else {
		node.close()
	}

	mu.Lock()
	snap := make([]overloadOutcome, len(outcomes))
	copy(snap, outcomes)
	mu.Unlock()

	pt := OverloadPoint{
		Mode:       mode,
		Load:       load,
		OfferedRPS: float64(offered) / window.Seconds(),
		Offered:    offered,
		Completed:  len(snap),
		Unfinished: offered - len(snap),
	}
	var lats []time.Duration
	for _, o := range snap {
		switch {
		case o.err != nil:
			pt.Errors++
		case o.source == metrics.SourceShed:
			pt.Shed++
			lats = append(lats, o.latency)
		default:
			lats = append(lats, o.latency)
			if o.latency <= cfg.Deadline {
				pt.Good++
			}
		}
	}
	pt.GoodputRPS = float64(pt.Good) / window.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pt.P50MS = durPctMS(lats, 50)
	pt.P99MS = durPctMS(lats, 99)
	if snap, ok := node.pool.AdmissionSnapshot(); ok {
		pt.AdmissionLimit = snap.Limit
		pt.BrownoutLevel = snap.Level.String()
		pt.BrownoutRaised = snap.Transitions
	}
	bs := node.batcher.Stats()
	pt.ExpiredDrops = bs.ExpiredDrops
	pt.QueueOverflows = bs.Overflows
	return pt, nil
}

// durPctMS returns the p-th percentile of sorted latencies, in ms.
func durPctMS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p/100*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}

// RunOverload measures both node configurations across the load sweep
// and computes the headline retention number.
func RunOverload(cfg OverloadConfig) (OverloadReport, error) {
	cfg.defaults()
	classes, err := vision.NewClassSet(cfg.Classes, 48, 48, cfg.Seed)
	if err != nil {
		return OverloadReport{}, err
	}
	images, klass, err := renderOverloadImages(cfg, classes)
	if err != nil {
		return OverloadReport{}, err
	}
	classifier, err := dnn.NewClassifier(cfg.Profile, classes, cfg.Seed)
	if err != nil {
		return OverloadReport{}, err
	}
	capacity, err := calibrateCapacity(cfg, classifier, images, klass)
	if err != nil {
		return OverloadReport{}, err
	}
	rep := OverloadReport{
		Sessions:    cfg.Sessions,
		DeadlineMS:  float64(cfg.Deadline) / float64(time.Millisecond),
		WindowMS:    float64(cfg.Window) / float64(time.Millisecond),
		CapacityRPS: capacity,
	}
	maxLoad := cfg.Loads[0]
	for _, l := range cfg.Loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	for _, mode := range OverloadModes() {
		for _, load := range cfg.Loads {
			pt, err := runOverloadPoint(cfg, mode, load, capacity, classifier, images, klass)
			if err != nil {
				return OverloadReport{}, fmt.Errorf("%s ×%g: %w", mode, load, err)
			}
			rep.Points = append(rep.Points, pt)
			if mode == OverloadResilient {
				if pt.GoodputRPS > rep.PeakGoodput {
					rep.PeakGoodput = pt.GoodputRPS
				}
				if pt.Load == maxLoad {
					rep.GoodputAtMax = pt.GoodputRPS
					rep.ResilientP99MS = pt.P99MS
				}
			} else if pt.Load == maxLoad {
				rep.UnprotectedP99MS = pt.P99MS
			}
		}
	}
	if rep.PeakGoodput > 0 {
		rep.Retention = rep.GoodputAtMax / rep.PeakGoodput
	}
	return rep, nil
}

// E21Overload is the overload-resilience experiment: the open-loop
// load sweep over both node configurations at a test-friendly size.
func E21Overload(scale Scale) (Report, error) {
	cfg := OverloadConfig{Seed: scale.Seed}
	if scale.Frames < DefaultScale().Frames {
		cfg.Sessions = 4
		cfg.Window = 250 * time.Millisecond
		cfg.Calibration = 150 * time.Millisecond
		cfg.DrainTimeout = time.Second
	}
	rep, err := RunOverload(cfg)
	if err != nil {
		return Report{}, err
	}
	out := Report{
		ID:    "E21",
		Title: "Overload resilience: open-loop load sweep, admission on vs off",
		Headers: []string{"node", "load", "offered/s", "goodput/s", "p50 ms",
			"p99 ms", "shed", "errors", "unfinished", "adm-limit", "brownout"},
	}
	for _, p := range rep.Points {
		limit, level := "-", "-"
		if p.AdmissionLimit > 0 {
			limit = fmt.Sprintf("%d", p.AdmissionLimit)
			level = p.BrownoutLevel
		}
		out.Rows = append(out.Rows, []string{
			p.Mode, fmt.Sprintf("%gx", p.Load), fmtF(p.OfferedRPS), fmtF(p.GoodputRPS),
			fmtF(p.P50MS), fmtF(p.P99MS), fmt.Sprintf("%d", p.Shed),
			fmt.Sprintf("%d", p.Errors), fmt.Sprintf("%d", p.Unfinished), limit, level,
		})
	}
	out.Notes = append(out.Notes,
		fmt.Sprintf("capacity %s req/s (closed-loop, %d sessions); deadline %v",
			fmtF(rep.CapacityRPS), rep.Sessions, time.Duration(rep.DeadlineMS*float64(time.Millisecond))),
		fmt.Sprintf("resilient goodput retention at max load: %.2f (gate ≥ 0.85)", rep.Retention),
		fmt.Sprintf("p99 at max load: resilient %sms vs unprotected %sms",
			fmtF(rep.ResilientP99MS), fmtF(rep.UnprotectedP99MS)),
	)
	return out, nil
}
