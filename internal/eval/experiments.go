package eval

import (
	"fmt"
	"math/rand"
	"time"

	"approxcache/internal/cachestore"
	"approxcache/internal/core"
	"approxcache/internal/feature"
	"approxcache/internal/imu"
	"approxcache/internal/lsh"
	"approxcache/internal/metrics"
	"approxcache/internal/trace"
)

// Scale controls experiment size so the same code serves the CLI
// (full) and the benchmarks (small).
type Scale struct {
	// Frames is the per-device workload length.
	Frames int
	// Seed anchors all randomness.
	Seed int64
	// Workers is how many experiments/sweep points may run
	// concurrently. 0 or 1 is serial; negative means one per CPU.
	// Results are identical at any worker count — each work item is an
	// independent simulation on its own virtual clock.
	Workers int
}

// DefaultScale is the size used by cmd/approxbench.
func DefaultScale() Scale { return Scale{Frames: 2000, Seed: 42} }

// SmallScale is a fast size for tests and benchmarks.
func SmallScale() Scale { return Scale{Frames: 300, Seed: 42} }

func (s Scale) validate() error {
	if s.Frames <= 0 {
		return fmt.Errorf("eval: frames must be positive, got %d", s.Frames)
	}
	return nil
}

// Experiment is one runnable experiment.
type Experiment struct {
	// ID is "E1".."E8".
	ID string
	// Name is a short slug.
	Name string
	// Run executes the experiment at the given scale.
	Run func(Scale) (Report, error)
}

// All returns the full experiment suite in order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Name: "headline-latency", Run: E1Headline},
		{ID: "E2", Name: "threshold-sweep", Run: E2ThresholdSweep},
		{ID: "E3", Name: "hit-breakdown", Run: E3HitBreakdown},
		{ID: "E4", Name: "peer-sweep", Run: E4PeerSweep},
		{ID: "E5", Name: "capacity-sweep", Run: E5CapacitySweep},
		{ID: "E6", Name: "energy", Run: E6Energy},
		{ID: "E7", Name: "lsh-ablation", Run: E7LSHAblation},
		{ID: "E8", Name: "motion-gate", Run: E8MotionGate},
		{ID: "E9", Name: "adaptive-lsh", Run: E9AdaptiveLSH},
		{ID: "E10", Name: "model-sweep", Run: E10ModelSweep},
		{ID: "E11", Name: "robustness", Run: E11Robustness},
		{ID: "E12", Name: "lossy-network", Run: E12LossyNetwork},
		{ID: "E13", Name: "battery", Run: E13Battery},
		{ID: "E14", Name: "gate-grid", Run: E14GateGrid},
		{ID: "E15", Name: "latency-cdf", Run: E15LatencyCDF},
		{ID: "E16", Name: "digest-filter", Run: E16DigestFilter},
		{ID: "E17", Name: "peer-churn", Run: E17PeerChurn},
		{ID: "E18", Name: "chaos-resilience", Run: E18ChaosResilience},
		{ID: "E19", Name: "device-faults", Run: E19DeviceFaults},
		{ID: "E20", Name: "serving-throughput", Run: E20Throughput},
		{ID: "E21", Name: "overload-resilience", Run: E21Overload},
		{ID: "E22", Name: "lookup-pipeline", Run: E22Lookup},
		{ID: "E23", Name: "cache-quality", Run: E23Quality},
		{ID: "E24", Name: "read-scalability", Run: E24ReadScale},
		{ID: "E25", Name: "p2p-wire", Run: E25P2PWire},
	}
}

// ByID resolves an experiment by id ("E1") or name.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id || e.Name == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("eval: unknown experiment %q", id)
}

// E1Headline reproduces the poster's headline claim: average latency of
// standard mobile image recognition reduced by up to 94% with minimal
// accuracy loss, on the reuse-friendly stationary-heavy workload.
func E1Headline(s Scale) (Report, error) {
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	spec := trace.StationaryHeavy(s.Frames, s.Seed)

	type system struct {
		name string
		cfg  core.Config
		peer bool
	}
	approx := core.DefaultConfig()
	systems := []system{
		{name: "no-cache", cfg: core.Config{Mode: core.ModeNoCache, Costs: core.DefaultCostModel()}},
		{name: "exact-cache", cfg: core.Config{Mode: core.ModeExactCache, Costs: core.DefaultCostModel()}},
		{name: "naive-skip (1/20)", cfg: core.Config{
			Mode: core.ModeNaiveSkip, SkipEvery: 20, Costs: core.DefaultCostModel(),
		}},
		{name: "approx (local)", cfg: approx},
		{name: "approx (full, 2 peers)", cfg: approx, peer: true},
	}

	var baseMean time.Duration
	report := Report{
		ID:      "E1",
		Title:   "Average recognition latency by system (stationary-heavy workload)",
		Headers: []string{"system", "mean", "p50", "p99", "hit-rate", "accuracy", "latency-reduction"},
		Notes: []string{
			"poster claim: up to 94% lower average latency with minimal accuracy loss",
			"exact-cache ≈ no-cache: bit-identical frames almost never recur (why approximation is needed)",
			"naive-skip matches the inference budget but reuses blindly through scene changes (accuracy cost)",
		},
	}
	for _, sys := range systems {
		var stats *metrics.SessionStats
		if sys.peer {
			group, err := e1Group(spec, sys.cfg, s)
			if err != nil {
				return Report{}, fmt.Errorf("%s: %w", sys.name, err)
			}
			stats = group["main"]
		} else {
			var err error
			stats, _, err = RunSingle(DeviceConfig{
				Name: "main", Spec: spec, Engine: sys.cfg, Seed: s.Seed,
			})
			if err != nil {
				return Report{}, fmt.Errorf("%s: %w", sys.name, err)
			}
		}
		sum := stats.Latency().Summary()
		if sys.name == "no-cache" {
			baseMean = sum.Mean
		}
		reduction := "-"
		if baseMean > 0 && sys.name != "no-cache" {
			reduction = fmtPct(1 - float64(sum.Mean)/float64(baseMean))
		}
		report.Rows = append(report.Rows, []string{
			sys.name,
			fmtDur(sum.Mean),
			fmtDur(sum.P50),
			fmtDur(sum.P99),
			fmtPct(stats.HitRate()),
			fmtPct(stats.Accuracy()),
			reduction,
		})
	}
	return report, nil
}

// e1Group runs the main device plus two helpers sharing its class set.
func e1Group(spec trace.Spec, cfg core.Config, s Scale) (map[string]*metrics.SessionStats, error) {
	classSeed := spec.Seed
	main := spec
	main.ClassSeed = classSeed
	cfgs := []DeviceConfig{{Name: "main", Spec: main, Engine: cfg, Seed: s.Seed}}
	for i := 0; i < 2; i++ {
		helper := trace.StationaryHeavy(spec.TotalFrames(), s.Seed+int64(i+1)*17)
		helper.Name = fmt.Sprintf("helper-%d", i)
		helper.ClassSeed = classSeed
		cfgs = append(cfgs, DeviceConfig{
			Name:   fmt.Sprintf("helper-%d", i),
			Spec:   helper,
			Engine: cfg,
			Seed:   s.Seed + int64(i+2),
		})
	}
	return RunGroup(cfgs, s.Seed)
}

// E2ThresholdSweep traces the accuracy/latency trade-off as the reuse
// radius (the vote's MaxDistance) grows.
func E2ThresholdSweep(s Scale) (Report, error) {
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	spec := trace.HandheldMix(s.Frames, s.Seed)
	report := Report{
		ID:      "E2",
		Title:   "Accuracy vs reuse aggressiveness (vote distance threshold, handheld-mix)",
		Headers: []string{"max-distance", "hit-rate", "local-hits", "accuracy", "mean-latency"},
		Notes: []string{
			"small thresholds barely reuse; large thresholds reuse across class boundaries and accuracy degrades",
		},
	}
	thresholds := []float64{0.05, 0.10, 0.15, 0.25, 0.35, 0.50, 0.70}
	rows := make([][]string, len(thresholds))
	err := parallelEach(len(thresholds), s.workers(), func(i int) error {
		th := thresholds[i]
		cfg := core.DefaultConfig()
		cfg.Vote.MaxDistance = th
		// Isolate the feature-space decision: cheap gates off.
		cfg.DisableIMUGate = true
		cfg.DisableVideoGate = true
		stats, _, err := RunSingle(DeviceConfig{
			Name: "main", Spec: spec, Engine: cfg, Seed: s.Seed,
		})
		if err != nil {
			return fmt.Errorf("threshold %v: %w", th, err)
		}
		counts := stats.CountBySource()
		rows[i] = []string{
			fmtF(th),
			fmtPct(stats.HitRate()),
			fmt.Sprintf("%d", counts[metrics.SourceLocal]),
			fmtPct(stats.Accuracy()),
			fmtDur(stats.Latency().Mean()),
		}
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	report.Rows = append(report.Rows, rows...)
	return report, nil
}

// E3HitBreakdown shows which reuse mechanism serves frames under each
// motion profile.
func E3HitBreakdown(s Scale) (Report, error) {
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	// Source columns are derived from metrics.Sources() so the headers
	// can never drift from the per-source cells appended below.
	headers := []string{"workload"}
	for _, src := range metrics.Sources() {
		headers = append(headers, string(src))
	}
	headers = append(headers, "hit-rate", "accuracy")
	report := Report{
		ID:      "E3",
		Title:   "Hit-rate breakdown by reuse source and workload",
		Headers: headers,
		Notes: []string{
			"IMU reuse dominates stationary regimes; video locality absorbs handheld jitter; panning forces DNN work",
		},
	}
	for _, spec := range trace.StandardSpecs(s.Frames, s.Seed) {
		stats, _, err := RunSingle(DeviceConfig{
			Name: "main", Spec: spec, Engine: core.DefaultConfig(), Seed: s.Seed,
		})
		if err != nil {
			return Report{}, fmt.Errorf("%s: %w", spec.Name, err)
		}
		frames := float64(stats.Frames())
		counts := stats.CountBySource()
		row := []string{spec.Name}
		for _, src := range metrics.Sources() {
			row = append(row, fmtPct(float64(counts[src])/frames))
		}
		row = append(row, fmtPct(stats.HitRate()), fmtPct(stats.Accuracy()))
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

// E4PeerSweep measures the benefit of nearby devices: hit rate and
// latency as the peer count grows.
func E4PeerSweep(s Scale) (Report, error) {
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	report := Report{
		ID:      "E4",
		Title:   "Benefit of nearby peers (walking-tour, shared vocabulary)",
		Headers: []string{"peers", "peer-hits", "peer-queries", "hit-rate", "mean-latency", "accuracy"},
		Notes: []string{
			"more peers raise the chance someone has already recognized the scene; returns diminish",
		},
	}
	for _, peers := range []int{0, 1, 2, 4, 8} {
		spec := trace.WalkingTour(s.Frames, s.Seed)
		spec.ClassSeed = s.Seed + 999
		spec.ClassSkew = 0.8 // popular exhibits: what peers share
		cfgs := []DeviceConfig{{
			Name: "main", Spec: spec, Engine: core.DefaultConfig(), Seed: s.Seed,
		}}
		for i := 0; i < peers; i++ {
			helper := trace.WalkingTour(s.Frames, s.Seed+int64(i+1)*31)
			helper.ClassSeed = spec.ClassSeed
			helper.ClassSkew = spec.ClassSkew
			helper.Name = fmt.Sprintf("peer-%d", i)
			cfgs = append(cfgs, DeviceConfig{
				Name:   fmt.Sprintf("peer-%d", i),
				Spec:   helper,
				Engine: core.DefaultConfig(),
				Seed:   s.Seed + int64(i+5),
			})
		}
		var stats *metrics.SessionStats
		if peers == 0 {
			var err error
			stats, _, err = RunSingle(cfgs[0])
			if err != nil {
				return Report{}, err
			}
		} else {
			group, err := RunGroup(cfgs, s.Seed)
			if err != nil {
				return Report{}, err
			}
			stats = group["main"]
		}
		queries, hits := stats.PeerQueries()
		report.Rows = append(report.Rows, []string{
			fmt.Sprintf("%d", peers),
			fmt.Sprintf("%d", hits),
			fmt.Sprintf("%d", queries),
			fmtPct(stats.HitRate()),
			fmtDur(stats.Latency().Mean()),
			fmtPct(stats.Accuracy()),
		})
	}
	return report, nil
}

// E5CapacitySweep compares eviction policies across cache sizes on the
// highest-pressure workload.
func E5CapacitySweep(s Scale) (Report, error) {
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	spec := trace.PanningSweep(s.Frames, s.Seed)
	report := Report{
		ID:      "E5",
		Title:   "Cache capacity and eviction policy (panning-sweep)",
		Headers: []string{"capacity", "policy", "hit-rate", "mean-latency", "evictions"},
		Notes: []string{
			"cost-aware eviction keeps the entries whose reuse saves the most inference time",
		},
	}
	type point struct {
		capacity int
		policy   cachestore.Policy
	}
	var points []point
	for _, capacity := range []int{8, 16, 32, 64, 128} {
		for _, policy := range []cachestore.Policy{cachestore.LRU, cachestore.LFU, cachestore.CostAware} {
			points = append(points, point{capacity, policy})
		}
	}
	rows := make([][]string, len(points))
	err := parallelEach(len(points), s.workers(), func(i int) error {
		p := points[i]
		stats, store, err := RunSingle(DeviceConfig{
			Name:     "main",
			Spec:     spec,
			Engine:   core.DefaultConfig(),
			Capacity: p.capacity,
			Policy:   p.policy,
			Seed:     s.Seed,
		})
		if err != nil {
			return fmt.Errorf("cap %d %v: %w", p.capacity, p.policy, err)
		}
		rows[i] = []string{
			fmt.Sprintf("%d", p.capacity),
			p.policy.String(),
			fmtPct(stats.HitRate()),
			fmtDur(stats.Latency().Mean()),
			fmt.Sprintf("%d", store.Evictions()),
		}
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	report.Rows = append(report.Rows, rows...)
	return report, nil
}

// E6Energy compares per-frame energy across systems, including the
// radio tax of P2P collaboration.
func E6Energy(s Scale) (Report, error) {
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	spec := trace.StationaryHeavy(s.Frames, s.Seed)
	report := Report{
		ID:      "E6",
		Title:   "Energy per frame by system (stationary-heavy)",
		Headers: []string{"system", "energy/frame (mJ)", "total (J)", "hit-rate"},
		Notes: []string{
			"energy tracks latency: avoided inferences dominate; P2P adds a small radio tax on misses",
		},
	}
	run := func(name string, cfg core.Config, peer bool) error {
		var stats *metrics.SessionStats
		if peer {
			group, err := e1Group(spec, cfg, s)
			if err != nil {
				return err
			}
			stats = group["main"]
		} else {
			var err error
			stats, _, err = RunSingle(DeviceConfig{Name: "main", Spec: spec, Engine: cfg, Seed: s.Seed})
			if err != nil {
				return err
			}
		}
		perFrame := stats.EnergyMJ() / float64(stats.Frames())
		report.Rows = append(report.Rows, []string{
			name,
			fmtF(perFrame),
			fmtF(stats.EnergyMJ() / 1000),
			fmtPct(stats.HitRate()),
		})
		return nil
	}
	if err := run("no-cache", core.Config{Mode: core.ModeNoCache, Costs: core.DefaultCostModel()}, false); err != nil {
		return Report{}, err
	}
	if err := run("exact-cache", core.Config{Mode: core.ModeExactCache, Costs: core.DefaultCostModel()}, false); err != nil {
		return Report{}, err
	}
	if err := run("approx (local)", core.DefaultConfig(), false); err != nil {
		return Report{}, err
	}
	if err := run("approx (full, 2 peers)", core.DefaultConfig(), true); err != nil {
		return Report{}, err
	}
	return report, nil
}

// E7LSHAblation grades the LSH index design: recall against exact
// search, candidate-set size, and measured lookup time.
func E7LSHAblation(s Scale) (Report, error) {
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	const dim = 80
	items := s.Frames // index size scales with the experiment
	if items > 5000 {
		items = 5000
	}
	queries := 200
	rng := rand.New(rand.NewSource(s.Seed))
	// Clustered vectors: same structure the cache indexes.
	centers := make([]feature.Vector, 16)
	for i := range centers {
		centers[i] = randUnitVec(rng, dim)
	}
	makeVec := func() feature.Vector {
		c := centers[rng.Intn(len(centers))]
		v := c.Clone()
		for d := range v {
			v[d] += rng.NormFloat64() * 0.05
		}
		v.Normalize()
		return v
	}
	vecs := make([]feature.Vector, items)
	exact, err := lsh.NewExact(dim)
	if err != nil {
		return Report{}, err
	}
	for i := range vecs {
		vecs[i] = makeVec()
		if err := exact.Insert(lsh.ID(i), vecs[i]); err != nil {
			return Report{}, err
		}
	}
	qs := make([]feature.Vector, queries)
	truth := make([]lsh.ID, queries)
	for i := range qs {
		qs[i] = makeVec()
		ns, err := exact.Nearest(qs[i], 1)
		if err != nil {
			return Report{}, err
		}
		truth[i] = ns[0].ID
	}

	report := Report{
		ID:      "E7",
		Title:   "LSH design ablation (recall@1 vs exact search, clustered 80-d vectors)",
		Headers: []string{"bits", "tables", "recall@1", "mean-candidates", "lookup"},
		Notes: []string{
			"more tables recover recall lost to narrower buckets; lookup time tracks candidate volume",
		},
	}
	// This grid stays serial even when Scale.Workers allows more: the
	// lookup column is a wall-clock measurement, and concurrent sweep
	// points would contend for cores and skew it.
	for _, bits := range []int{8, 12, 16, 20} {
		for _, tables := range []int{1, 2, 4, 8} {
			idx, err := lsh.NewHyperplane(dim, bits, tables, s.Seed)
			if err != nil {
				return Report{}, err
			}
			for i, v := range vecs {
				if err := idx.Insert(lsh.ID(i), v); err != nil {
					return Report{}, err
				}
			}
			hits := 0
			var candTotal int
			start := time.Now()
			for i, q := range qs {
				cands, err := idx.Candidates(q)
				if err != nil {
					return Report{}, err
				}
				candTotal += len(cands)
				ns, err := idx.Nearest(q, 1)
				if err != nil {
					return Report{}, err
				}
				if len(ns) > 0 && ns[0].ID == truth[i] {
					hits++
				}
			}
			elapsed := time.Since(start) / time.Duration(queries)
			report.Rows = append(report.Rows, []string{
				fmt.Sprintf("%d", bits),
				fmt.Sprintf("%d", tables),
				fmtPct(float64(hits) / float64(queries)),
				fmtF(float64(candTotal) / float64(queries)),
				fmt.Sprintf("%.1fµs", float64(elapsed)/float64(time.Microsecond)),
			})
		}
	}
	return report, nil
}

// E8MotionGate sweeps the inertial gate thresholds, trading reuse rate
// against false reuse (IMU-served frames whose label was wrong).
func E8MotionGate(s Scale) (Report, error) {
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	report := Report{
		ID:      "E8",
		Title:   "Inertial gate threshold sweep (handheld-mix)",
		Headers: []string{"threshold-scale", "imu-hits", "imu-share", "hit-rate", "accuracy", "mean-latency"},
		Notes: []string{
			"loose thresholds reuse through real motion and cost accuracy; tight ones forfeit the cheapest gate",
		},
	}
	spec := trace.HandheldMix(s.Frames, s.Seed)
	scales := []float64{0.25, 0.5, 1, 2, 4, 8}
	rows := make([][]string, len(scales))
	err := parallelEach(len(scales), s.workers(), func(i int) error {
		scale := scales[i]
		cfg := core.DefaultConfig()
		base := imu.DefaultDetectorConfig()
		cfg.IMU = imu.DetectorConfig{
			Window:            base.Window,
			AccelVarThreshold: base.AccelVarThreshold * scale,
			GyroMeanThreshold: base.GyroMeanThreshold * scale,
			MaxRotation:       base.MaxRotation * scale,
		}
		stats, _, err := RunSingle(DeviceConfig{
			Name: "main", Spec: spec, Engine: cfg, Seed: s.Seed,
		})
		if err != nil {
			return fmt.Errorf("scale %v: %w", scale, err)
		}
		counts := stats.CountBySource()
		rows[i] = []string{
			fmtF(scale),
			fmt.Sprintf("%d", counts[metrics.SourceIMU]),
			fmtPct(float64(counts[metrics.SourceIMU]) / float64(stats.Frames())),
			fmtPct(stats.HitRate()),
			fmtPct(stats.Accuracy()),
			fmtDur(stats.Latency().Mean()),
		}
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	report.Rows = append(report.Rows, rows...)
	return report, nil
}

func randUnitVec(r *rand.Rand, dim int) feature.Vector {
	v := make(feature.Vector, dim)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	v.Normalize()
	return v
}
