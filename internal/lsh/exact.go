package lsh

import (
	"fmt"
	"math"
	"sync"

	"approxcache/internal/feature"
)

// ExactIndex is the exhaustive linear-scan baseline. It returns the true
// nearest neighbors and is used both as the exact-match-cache baseline
// component and as ground truth for LSH recall measurements.
//
// Vectors live in a dense flat arena kept compact by swap-with-last
// removal, so a query is one sequential sweep over contiguous memory
// with bounded top-k selection — no ID materialization, no map chase,
// and no allocation when the caller supplies a result buffer.
type ExactIndex struct {
	dim    int
	mu     sync.RWMutex
	arena  []float64 // slot s's vector at arena[s*dim:(s+1)*dim]
	slotID []ID      // parallel slot → ID
	idSlot map[ID]int32
}

var _ IntoIndex = (*ExactIndex)(nil)

// NewExact builds an exact index over dim-dimensional vectors.
func NewExact(dim int) (*ExactIndex, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("lsh: dim must be positive, got %d", dim)
	}
	return &ExactIndex{dim: dim, idSlot: make(map[ID]int32)}, nil
}

// Len returns the number of indexed vectors.
func (x *ExactIndex) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.slotID)
}

// Insert adds (id, v), replacing any prior entry.
func (x *ExactIndex) Insert(id ID, v feature.Vector) error {
	if len(v) != x.dim {
		return fmt.Errorf("lsh: insert dim %d, index dim %d: %w",
			len(v), x.dim, feature.ErrDimensionMismatch)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	slot, ok := x.idSlot[id]
	if !ok {
		slot = int32(len(x.slotID))
		x.arena = append(x.arena, make([]float64, x.dim)...)
		x.slotID = append(x.slotID, id)
		x.idSlot[id] = slot
	}
	copy(x.arena[int(slot)*x.dim:(int(slot)+1)*x.dim], v)
	return nil
}

// Remove deletes id, compacting the arena by moving the last slot into
// the vacated one.
func (x *ExactIndex) Remove(id ID) {
	x.mu.Lock()
	defer x.mu.Unlock()
	slot, ok := x.idSlot[id]
	if !ok {
		return
	}
	last := int32(len(x.slotID) - 1)
	if slot != last {
		copy(x.arena[int(slot)*x.dim:(int(slot)+1)*x.dim],
			x.arena[int(last)*x.dim:(int(last)+1)*x.dim])
		moved := x.slotID[last]
		x.slotID[slot] = moved
		x.idSlot[moved] = slot
	}
	x.arena = x.arena[:int(last)*x.dim]
	x.slotID = x.slotID[:last]
	delete(x.idSlot, id)
}

// Nearest returns the true k nearest neighbors of q.
func (x *ExactIndex) Nearest(q feature.Vector, k int) ([]Neighbor, error) {
	return x.NearestInto(q, k, nil)
}

// NearestInto is Nearest writing into dst's backing array; with a
// caller-reused dst of capacity ≥ k the scan allocates nothing.
func (x *ExactIndex) NearestInto(q feature.Vector, k int, dst []Neighbor) ([]Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("lsh: k must be positive, got %d", k)
	}
	if len(q) != x.dim {
		return nil, fmt.Errorf("lsh: query dim %d, index dim %d: %w",
			len(q), x.dim, feature.ErrDimensionMismatch)
	}
	var sel kSelector
	sel.reset(k, dst[:0])
	x.mu.RLock()
	// Select on squared distances (same order), sqrt only the final k:
	// saves one sqrt per scanned vector with bit-identical results.
	for s := 0; s < len(x.slotID); s++ {
		off := s * x.dim
		v := feature.Vector(x.arena[off : off+x.dim : off+x.dim])
		sel.add(Neighbor{ID: x.slotID[s], Distance: feature.MustSqEuclidean(q, v)})
	}
	x.mu.RUnlock()
	out := sel.finish()
	for i := range out {
		out[i].Distance = math.Sqrt(out[i].Distance)
	}
	return out, nil
}
