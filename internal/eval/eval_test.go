package eval

import (
	"strconv"
	"strings"
	"testing"

	"approxcache/internal/core"
	"approxcache/internal/trace"
)

func tinyScale() Scale { return Scale{Frames: 200, Seed: 42} }

// parsePct converts a rendered "93.4%" cell back to a float.
func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("parse pct %q: %v", cell, err)
	}
	return v / 100
}

// parseMs converts a rendered "12.34ms" cell back to milliseconds.
func parseMs(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "ms"), 64)
	if err != nil {
		t.Fatalf("parse ms %q: %v", cell, err)
	}
	return v
}

func TestScaleValidate(t *testing.T) {
	if err := (Scale{}).validate(); err == nil {
		t.Fatal("zero scale accepted")
	}
	if err := DefaultScale().validate(); err != nil {
		t.Fatal(err)
	}
	if err := SmallScale().validate(); err != nil {
		t.Fatal(err)
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E3")
	if err != nil || e.Name != "hit-breakdown" {
		t.Fatalf("ByID(E3) = %+v, %v", e, err)
	}
	e, err = ByID("peer-sweep")
	if err != nil || e.ID != "E4" {
		t.Fatalf("ByID(peer-sweep) = %+v, %v", e, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestAllHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil {
			t.Fatalf("%s has no runner", e.ID)
		}
	}
	if len(seen) != 25 {
		t.Fatalf("suite has %d experiments, want 25", len(seen))
	}
}

func TestReportString(t *testing.T) {
	r := Report{
		ID:      "EX",
		Title:   "test",
		Headers: []string{"a", "longer-column"},
		Rows:    [][]string{{"1", "2"}, {"333333", "4"}},
		Notes:   []string{"a note"},
	}
	s := r.String()
	for _, want := range []string{"EX — test", "longer-column", "333333", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
	empty := Report{ID: "E0", Title: "empty"}
	if !strings.Contains(empty.String(), "E0") {
		t.Fatal("empty report render broken")
	}
}

func TestReportCSV(t *testing.T) {
	r := Report{
		ID:      "EX",
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"1", `has,comma`}, {`has"quote`, "2"}},
	}
	csv := r.CSV()
	want := "a,b\n1,\"has,comma\"\n\"has\"\"quote\",2\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
}

func TestRunSingleSmoke(t *testing.T) {
	stats, store, err := RunSingle(DeviceConfig{
		Name:   "dev",
		Spec:   trace.StationaryHeavy(100, 1),
		Engine: core.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Frames() != 100 {
		t.Fatalf("frames = %d", stats.Frames())
	}
	if store == nil || store.Len() == 0 {
		t.Fatal("store empty after run")
	}
}

func TestRunSingleBaselineHasNoStore(t *testing.T) {
	stats, store, err := RunSingle(DeviceConfig{
		Name:   "dev",
		Spec:   trace.StationaryHeavy(50, 1),
		Engine: core.Config{Mode: core.ModeNoCache, Costs: core.DefaultCostModel()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if store != nil {
		t.Fatal("baseline returned a store")
	}
	if stats.HitRate() != 0 {
		t.Fatal("baseline produced hits")
	}
}

func TestRunGroupValidation(t *testing.T) {
	if _, err := RunGroup(nil, 1); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestRunGroupPeersHelp(t *testing.T) {
	shared := int64(777)
	specA := trace.WalkingTour(150, 1)
	specA.ClassSeed = shared
	specB := trace.WalkingTour(150, 55)
	specB.ClassSeed = shared
	group, err := RunGroup([]DeviceConfig{
		{Name: "a", Spec: specA, Engine: core.DefaultConfig(), Seed: 1},
		{Name: "b", Spec: specB, Engine: core.DefaultConfig(), Seed: 2},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(group) != 2 {
		t.Fatalf("group = %v", group)
	}
	totalPeerTraffic := 0
	for _, stats := range group {
		q, _ := stats.PeerQueries()
		totalPeerTraffic += q
	}
	if totalPeerTraffic == 0 {
		t.Fatal("no peer queries in a group run")
	}
}

func TestRunScenario(t *testing.T) {
	sc := trace.CrowdScenario(3, 90, 5)
	group, err := RunScenario(sc, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(group) != 3 {
		t.Fatalf("group = %d devices", len(group))
	}
	queries := 0
	for name, stats := range group {
		if stats.Frames() != 90 {
			t.Fatalf("%s frames = %d", name, stats.Frames())
		}
		q, _ := stats.PeerQueries()
		queries += q
	}
	if queries == 0 {
		t.Fatal("scenario produced no peer traffic")
	}
	if _, err := RunScenario(trace.Scenario{}, core.DefaultConfig()); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

func TestE1HeadlineShape(t *testing.T) {
	r, err := E1Headline(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string][]string{}
	for _, row := range r.Rows {
		byName[row[0]] = row
	}
	noCache := parseMs(t, byName["no-cache"][1])
	exact := parseMs(t, byName["exact-cache"][1])
	local := parseMs(t, byName["approx (local)"][1])
	full := parseMs(t, byName["approx (full, 2 peers)"][1])
	// Shape: approximate caching is dramatically faster; exact-match
	// caching is not (bit-identical frames never recur).
	if local > noCache/3 {
		t.Fatalf("approx(local) %vms not ≪ no-cache %vms", local, noCache)
	}
	if full > noCache/3 {
		t.Fatalf("approx(full) %vms not ≪ no-cache %vms", full, noCache)
	}
	if exact < noCache*0.8 {
		t.Fatalf("exact-cache %vms unexpectedly fast vs %vms", exact, noCache)
	}
	// Minimal accuracy loss.
	baseAcc := parsePct(t, byName["no-cache"][5])
	localAcc := parsePct(t, byName["approx (local)"][5])
	if baseAcc-localAcc > 0.12 {
		t.Fatalf("accuracy loss too large: %v vs %v", baseAcc, localAcc)
	}
	// Naive skipping matches the latency but must not beat the gated
	// pipeline's accuracy: blind reuse crosses scene changes.
	naive := parseMs(t, byName["naive-skip (1/20)"][1])
	if naive > noCache/3 {
		t.Fatalf("naive-skip %vms not fast (budget mismatch?)", naive)
	}
	naiveAcc := parsePct(t, byName["naive-skip (1/20)"][5])
	if naiveAcc > localAcc+0.02 {
		t.Fatalf("naive-skip accuracy %v beats gated pipeline %v", naiveAcc, localAcc)
	}
}

func TestE2ThresholdSweepShape(t *testing.T) {
	r, err := E2ThresholdSweep(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Hit rate is non-decreasing in the threshold (larger radius can
	// only accept more), modulo vote dominance; check endpoints.
	first := parsePct(t, r.Rows[0][1])
	last := parsePct(t, r.Rows[len(r.Rows)-1][1])
	if last < first {
		t.Fatalf("hit rate fell from %v to %v as threshold grew", first, last)
	}
}

func TestE3HitBreakdownShape(t *testing.T) {
	r, err := E3HitBreakdown(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	shares := map[string][]string{}
	for _, row := range r.Rows {
		shares[row[0]] = row
	}
	// Stationary-heavy leans on the IMU gate far more than the
	// panning sweep does.
	statIMU := parsePct(t, shares["stationary-heavy"][1])
	panIMU := parsePct(t, shares["panning-sweep"][1])
	if statIMU <= panIMU {
		t.Fatalf("imu share: stationary %v <= panning %v", statIMU, panIMU)
	}
	// Panning runs the DNN more than stationary.
	statDNN := parsePct(t, shares["stationary-heavy"][5])
	panDNN := parsePct(t, shares["panning-sweep"][5])
	if panDNN <= statDNN {
		t.Fatalf("dnn share: panning %v <= stationary %v", panDNN, statDNN)
	}
}

func TestE5CapacitySweepShape(t *testing.T) {
	r, err := E5CapacitySweep(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 15 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Bigger caches never hit less (comparing smallest to largest
	// capacity under the same policy).
	firstLRU := parsePct(t, r.Rows[0][2])
	lastLRU := parsePct(t, r.Rows[12][2])
	if lastLRU+0.02 < firstLRU {
		t.Fatalf("lru hit rate fell with capacity: %v -> %v", firstLRU, lastLRU)
	}
}

func TestE6EnergyShape(t *testing.T) {
	r, err := E6Energy(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var base, local float64
	for _, row := range r.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		switch row[0] {
		case "no-cache":
			base = v
		case "approx (local)":
			local = v
		}
	}
	if local > base/3 {
		t.Fatalf("approx energy %v not ≪ no-cache %v", local, base)
	}
}

func TestE7LSHAblationShape(t *testing.T) {
	r, err := E7LSHAblation(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 16 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// At fixed bits, recall must not degrade with more tables.
	recall := func(row []string) float64 { return parsePct(t, row[2]) }
	if recall(r.Rows[3])+0.05 < recall(r.Rows[0]) {
		t.Fatalf("8-bit recall fell with more tables: %v -> %v",
			recall(r.Rows[0]), recall(r.Rows[3]))
	}
}

func TestE8MotionGateShape(t *testing.T) {
	r, err := E8MotionGate(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Looser thresholds produce at least as many IMU hits.
	first, err := strconv.Atoi(r.Rows[0][1])
	if err != nil {
		t.Fatal(err)
	}
	last, err := strconv.Atoi(r.Rows[len(r.Rows)-1][1])
	if err != nil {
		t.Fatal(err)
	}
	if last < first {
		t.Fatalf("imu hits fell as thresholds loosened: %d -> %d", first, last)
	}
}

func TestE9AdaptiveLSHShape(t *testing.T) {
	r, err := E9AdaptiveLSH(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	plainShare := parsePct(t, r.Rows[0][4])
	adaptShare := parsePct(t, r.Rows[1][4])
	if adaptShare >= plainShare {
		t.Fatalf("adaptive max-bucket share %v not below plain %v", adaptShare, plainShare)
	}
	if r.Rows[1][5] == "0" {
		t.Fatal("adaptive index never rebuilt on descriptor data")
	}
}

func TestE10ModelSweepShape(t *testing.T) {
	r, err := E10ModelSweep(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if red := parsePct(t, row[3]); red < 0.8 {
			t.Fatalf("model %s reduction = %v", row[0], red)
		}
	}
}

func TestE11RobustnessShape(t *testing.T) {
	r, err := E11Robustness(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Hard perturbation must not be easier than default on the same
	// workload (hit rate comparison, small tolerance for gate noise).
	for i := 0; i < len(r.Rows); i += 2 {
		def := parsePct(t, r.Rows[i][2])
		hard := parsePct(t, r.Rows[i+1][2])
		if hard > def+0.05 {
			t.Fatalf("%s: hard hit rate %v above default %v", r.Rows[i][0], hard, def)
		}
	}
}

func TestE13BatteryShape(t *testing.T) {
	r, err := E13Battery(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	base, err := strconv.ParseFloat(r.Rows[0][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	apx, err := strconv.ParseFloat(r.Rows[1][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	if apx < 5*base {
		t.Fatalf("approx frames/charge %v not ≫ no-cache %v", apx, base)
	}
}

func TestE12LossyNetworkShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-device sweep")
	}
	r, err := E12LossyNetwork(Scale{Frames: 120, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Accuracy must not collapse under loss.
	for _, row := range r.Rows {
		if acc := parsePct(t, row[4]); acc < 0.7 {
			t.Fatalf("loss %s: accuracy %v", row[0], acc)
		}
	}
}

func TestE16DigestFilterShape(t *testing.T) {
	r, err := E16DigestFilter(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	noDigHits, err := strconv.Atoi(r.Rows[0][1])
	if err != nil {
		t.Fatal(err)
	}
	digHits, err := strconv.Atoi(r.Rows[1][1])
	if err != nil {
		t.Fatal(err)
	}
	noDigMsgs, err := strconv.Atoi(r.Rows[0][2])
	if err != nil {
		t.Fatal(err)
	}
	digMsgs, err := strconv.Atoi(r.Rows[1][2])
	if err != nil {
		t.Fatal(err)
	}
	// Digests must preserve nearly all hits at a fraction of the
	// traffic.
	if digHits*100 < noDigHits*95 {
		t.Fatalf("digests lost hits: %d vs %d", digHits, noDigHits)
	}
	if digMsgs*2 > noDigMsgs {
		t.Fatalf("digests did not halve traffic: %d vs %d", digMsgs, noDigMsgs)
	}
}

func TestE17PeerChurnShape(t *testing.T) {
	r, err := E17PeerChurn(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	static := parseMs(t, r.Rows[0][1])
	maintained := parseMs(t, r.Rows[1][1])
	if maintained >= static {
		t.Fatalf("maintained cost %v not below static %v", maintained, static)
	}
	// Hits are preserved: live peers hold the same content.
	if r.Rows[0][2] != r.Rows[1][2] {
		t.Fatalf("hit counts differ: %v vs %v", r.Rows[0][2], r.Rows[1][2])
	}
}

func TestE14GateGridShape(t *testing.T) {
	r, err := E14GateGrid(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string][]string{}
	for _, row := range r.Rows {
		byName[row[0]] = row
	}
	// No IMU gate → zero IMU share; video gate absorbs it.
	if parsePct(t, byName["no imu gate"][1]) != 0 {
		t.Fatal("disabled IMU gate produced IMU hits")
	}
	if parsePct(t, byName["no video gate"][2]) != 0 {
		t.Fatal("disabled video gate produced video hits")
	}
	// Feature-cache-only is the slowest configuration.
	full := parseMs(t, byName["full (4 keyframes)"][7])
	featOnly := parseMs(t, byName["feature cache only"][7])
	if featOnly <= full {
		t.Fatalf("feature-only %v not slower than full %v", featOnly, full)
	}
}

func TestE15LatencyCDFShape(t *testing.T) {
	r, err := E15LatencyCDF(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 || len(r.Headers) != 4 {
		t.Fatalf("shape = %dx%d", len(r.Rows), len(r.Headers))
	}
	// Each system's column is non-decreasing down the percentiles.
	for col := 1; col < 4; col++ {
		prev := -1.0
		for _, row := range r.Rows {
			v := parseMs(t, row[col])
			if v < prev {
				t.Fatalf("column %s not monotone: %v after %v", r.Headers[col], v, prev)
			}
			prev = v
		}
	}
	// Approx p50 is orders of magnitude below no-cache p50.
	var p50 []string
	for _, row := range r.Rows {
		if row[0] == "p50" {
			p50 = row
		}
	}
	if parseMs(t, p50[3])*10 > parseMs(t, p50[1]) {
		t.Fatalf("approx p50 %v not ≪ no-cache p50 %v", p50[3], p50[1])
	}
}

func TestE4PeerSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-device sweep")
	}
	r, err := E4PeerSweep(Scale{Frames: 120, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Zero peers: no peer traffic.
	if r.Rows[0][2] != "0" {
		t.Fatalf("0-peer row has queries: %v", r.Rows[0])
	}
}
