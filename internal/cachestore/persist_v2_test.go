package cachestore

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func exportedSnapshot(t *testing.T) string {
	t.Helper()
	src, _ := newTestStore(t, Config{Capacity: 8})
	if _, err := src.Insert(vec(1, 0), "door", 0.9, "dnn", 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Insert(vec(0, 1), "sign", 0.8, "peer", 80*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestExportHeaderFormat(t *testing.T) {
	snap := exportedSnapshot(t)
	if !strings.HasPrefix(snap, snapshotMagic+" v2 crc32=") {
		t.Fatalf("snapshot header = %q", snap[:40])
	}
	line := snap[:strings.IndexByte(snap, '\n')+1]
	if len(line) > snapshotMaxHeaderLen {
		t.Fatalf("header length %d exceeds bound", len(line))
	}
}

func TestExportDeterministic(t *testing.T) {
	// Equal stores must produce byte-identical snapshots, whatever the
	// map iteration order happened to be.
	mk := func() string {
		src, _ := newTestStore(t, Config{Capacity: 16})
		for i := 0; i < 8; i++ {
			if _, err := src.Insert(vec(float64(i), 1), "x", 0.9, "dnn", time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := src.Export(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatal("export is not deterministic")
	}
}

func TestImportDetectsBitFlips(t *testing.T) {
	snap := exportedSnapshot(t)
	body := strings.IndexByte(snap, '\n') + 1
	for _, pos := range []int{body + 2, body + 10, len(snap) - 3} {
		flipped := []byte(snap)
		flipped[pos] ^= 0x40
		dst, _ := newTestStore(t, Config{Capacity: 8})
		n, err := dst.Import(bytes.NewReader(flipped))
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("flip at %d: err = %v, want ErrCorruptSnapshot", pos, err)
		}
		if n != 0 || dst.Len() != 0 {
			t.Fatalf("flip at %d inserted %d entries", pos, n)
		}
	}
}

func TestImportHeaderErrors(t *testing.T) {
	dst, _ := newTestStore(t, Config{Capacity: 8})
	cases := []string{
		snapshotMagic + " v99 crc32=00000000\n{}",               // future version
		snapshotMagic + " vX crc32=00000000\n{}",                // garbage version
		snapshotMagic + " v2 crc32=deadbeef\n{\"version\":2}",   // wrong checksum
		snapshotMagic + " v2 crc32=" + strings.Repeat("f", 200), // unterminated, too long
		snapshotMagic, // truncated at magic
		snapshotMagic + " v2 crc32=29df1cc3\n{\"version\":2} junk", // checksum won't match edited payload
	}
	for i, c := range cases {
		if n, err := dst.Import(strings.NewReader(c)); !errors.Is(err, ErrCorruptSnapshot) || n != 0 {
			t.Fatalf("case %d: n=%d err=%v, want ErrCorruptSnapshot", i, n, err)
		}
	}
}

func TestImportRejectsNonFiniteVectors(t *testing.T) {
	// JSON can't carry NaN directly, but 1e999 decodes to +Inf via
	// legacy float parsing paths; guard the validation regardless.
	dst, _ := newTestStore(t, Config{Capacity: 8})
	bad := `{"version":1,"entries":[{"vec":[1,1e999],"label":"x","confidence":1,"source":"dnn"}]}`
	if _, err := dst.Import(strings.NewReader(bad)); !errors.Is(err, ErrCorruptSnapshot) {
		// Some decoders reject 1e999 outright; either way it must not land.
		if err == nil {
			t.Fatal("non-finite vector accepted")
		}
	}
	if dst.Len() != 0 {
		t.Fatal("non-finite entry inserted")
	}
}

func TestImportLegacyV1(t *testing.T) {
	// Pre-header snapshots (bare JSON, version 1) still warm-start.
	legacy := `{"version":1,"entries":[
		{"vec":[1,0],"label":"cat","confidence":0.9,"source":"dnn","savedCostMicros":1000}
	]}`
	dst, _ := newTestStore(t, Config{Capacity: 8})
	n, err := dst.Import(strings.NewReader(legacy))
	if err != nil || n != 1 {
		t.Fatalf("legacy import = %d, %v", n, err)
	}
	ns, err := dst.Nearest(vec(1, 0), 1)
	if err != nil || len(ns) == 0 {
		t.Fatalf("legacy entry not indexed: %v", err)
	}
	if e, ok := dst.Get(ns[0].ID); !ok || e.Label != "cat" {
		t.Fatalf("legacy entry = %+v", e)
	}
}

func TestImportTrailingGarbage(t *testing.T) {
	dst, _ := newTestStore(t, Config{Capacity: 8})
	withTrailer := `{"version":1,"entries":[]}{"version":1}`
	if _, err := dst.Import(strings.NewReader(withTrailer)); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("trailing garbage accepted: %v", err)
	}
}
