package trace

import (
	"testing"
	"time"

	"approxcache/internal/imu"
	"approxcache/internal/vision"
)

func smallSpec() Spec {
	return Spec{
		Name:       "test",
		FPS:        10,
		IMURateHz:  50,
		NumClasses: 4,
		ImageW:     32,
		ImageH:     32,
		Segments: []SegmentSpec{
			{Regime: "stationary", Frames: 20},
			{Regime: "panning", Frames: 10},
		},
		Seed: 7,
	}
}

func TestSpecValidate(t *testing.T) {
	if err := smallSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.FPS = 0 },
		func(s *Spec) { s.IMURateHz = 0 },
		func(s *Spec) { s.NumClasses = 0 },
		func(s *Spec) { s.ImageW = 0 },
		func(s *Spec) { s.ImageH = -1 },
		func(s *Spec) { s.Segments = nil },
		func(s *Spec) { s.Segments[0].Frames = 0 },
		func(s *Spec) { s.Segments[0].Regime = "flying" },
	}
	for i, mut := range mutations {
		s := smallSpec()
		s.Segments = append([]SegmentSpec(nil), s.Segments...)
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSpecTotalsAndDuration(t *testing.T) {
	s := smallSpec()
	if s.TotalFrames() != 30 {
		t.Fatalf("TotalFrames = %d", s.TotalFrames())
	}
	if s.Duration() != 3*time.Second {
		t.Fatalf("Duration = %v", s.Duration())
	}
	if (Spec{}).Duration() != 0 {
		t.Fatal("zero spec duration should be 0")
	}
}

func TestGenerateWorkload(t *testing.T) {
	w, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Frames) != 30 {
		t.Fatalf("frames = %d", len(w.Frames))
	}
	// 3 s at 50 Hz = 150 IMU samples.
	if len(w.IMU) != 150 {
		t.Fatalf("imu samples = %d", len(w.IMU))
	}
	if w.Classes == nil || w.Classes.NumClasses() != 4 {
		t.Fatal("class set missing")
	}
	// Frame regimes match the script.
	for i := 0; i < 20; i++ {
		if w.Frames[i].Regime != imu.Stationary {
			t.Fatalf("frame %d regime = %v", i, w.Frames[i].Regime)
		}
	}
	for i := 20; i < 30; i++ {
		if w.Frames[i].Regime != imu.Panning {
			t.Fatalf("frame %d regime = %v", i, w.Frames[i].Regime)
		}
	}
	// IMU offsets are monotone and within the duration.
	for i := 1; i < len(w.IMU); i++ {
		if w.IMU[i].Offset <= w.IMU[i-1].Offset {
			t.Fatal("imu offsets not monotone")
		}
	}
	if last := w.IMU[len(w.IMU)-1].Offset; last >= 3*time.Second {
		t.Fatalf("imu overruns workload: %v", last)
	}
}

func TestGenerateInvalidSpec(t *testing.T) {
	if _, err := Generate(Spec{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Frames {
		if a.Frames[i].Class != b.Frames[i].Class {
			t.Fatalf("classes diverge at %d", i)
		}
		if vision.MeanAbsDiff(a.Frames[i].Image, b.Frames[i].Image) != 0 {
			t.Fatalf("images diverge at %d", i)
		}
	}
	for i := range a.IMU {
		if a.IMU[i] != b.IMU[i] {
			t.Fatalf("imu diverges at %d", i)
		}
	}
}

func TestIMUWindow(t *testing.T) {
	w, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	win := w.IMUWindow(0, 100*time.Millisecond)
	// 50 Hz: samples at 0,20,40,60,80,100 ms; window is (0,100] → 5.
	if len(win) != 5 {
		t.Fatalf("window samples = %d, want 5", len(win))
	}
	for _, s := range win {
		if s.Offset <= 0 || s.Offset > 100*time.Millisecond {
			t.Fatalf("sample offset %v outside window", s.Offset)
		}
	}
	if len(w.IMUWindow(time.Hour, 2*time.Hour)) != 0 {
		t.Fatal("out-of-range window not empty")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := smallSpec()
	data, err := EncodeSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != s.Name || out.Seed != s.Seed || len(out.Segments) != len(s.Segments) {
		t.Fatalf("round trip = %+v", out)
	}
	// Workloads regenerated from the decoded spec are identical.
	a, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Frames {
		if vision.MeanAbsDiff(a.Frames[i].Image, b.Frames[i].Image) != 0 {
			t.Fatalf("regenerated workload differs at frame %d", i)
		}
	}
}

func TestEncodeSpecRejectsInvalid(t *testing.T) {
	if _, err := EncodeSpec(Spec{}); err == nil {
		t.Fatal("invalid spec encoded")
	}
}

func TestDecodeSpecErrors(t *testing.T) {
	if _, err := DecodeSpec([]byte("{")); err == nil {
		t.Fatal("bad json accepted")
	}
	if _, err := DecodeSpec([]byte(`{"name":""}`)); err == nil {
		t.Fatal("invalid decoded spec accepted")
	}
}

func TestStandardSpecs(t *testing.T) {
	specs := StandardSpecs(400, 9)
	if len(specs) != 4 {
		t.Fatalf("specs = %d", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %q invalid: %v", s.Name, err)
		}
		if s.TotalFrames() != 400 {
			t.Errorf("spec %q totals %d frames, want 400", s.Name, s.TotalFrames())
		}
		names[s.Name] = true
	}
	if len(names) != 4 {
		t.Fatalf("duplicate spec names: %v", names)
	}
	// Each standard spec must actually generate.
	for _, s := range specs {
		if _, err := Generate(s); err != nil {
			t.Errorf("generate %q: %v", s.Name, err)
		}
	}
}

func TestStationaryHeavyIsMostlyStable(t *testing.T) {
	s := StationaryHeavy(1000, 1)
	stable := 0
	for _, seg := range s.Segments {
		r, err := parseRegime(seg.Regime)
		if err != nil {
			t.Fatal(err)
		}
		if r.SceneStable() {
			stable += seg.Frames
		}
	}
	if stable*100/s.TotalFrames() < 60 {
		t.Fatalf("stationary-heavy only %d%% stable", stable*100/s.TotalFrames())
	}
}

func TestClassSkew(t *testing.T) {
	s := smallSpec()
	s.ClassSkew = -1
	if err := s.Validate(); err == nil {
		t.Fatal("negative skew accepted")
	}
	share := func(skew float64) float64 {
		spec := Spec{
			Name:       "skew-test",
			FPS:        15,
			IMURateHz:  50,
			NumClasses: 6,
			ImageW:     32,
			ImageH:     32,
			Segments:   []SegmentSpec{{Regime: "panning", Frames: 300}},
			Seed:       9,
			ClassSkew:  skew,
		}
		w, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[int]int{}
		for _, f := range w.Frames {
			counts[f.Class]++
		}
		max := 0
		for _, n := range counts {
			if n > max {
				max = n
			}
		}
		return float64(max) / float64(len(w.Frames))
	}
	if share(1.5) <= share(0) {
		t.Fatal("skewed workload not concentrated")
	}
}

func TestRegimeName(t *testing.T) {
	if RegimeName(imu.Walking) != "walking" {
		t.Fatal("RegimeName mismatch")
	}
}
