package eval

import (
	"fmt"
	"sort"
	"time"

	"approxcache/internal/cachestore"
	"approxcache/internal/core"
	"approxcache/internal/dnn"
	"approxcache/internal/imu"
	"approxcache/internal/lsh"
	"approxcache/internal/metrics"
	"approxcache/internal/p2p"
	"approxcache/internal/simclock"
	"approxcache/internal/simnet"
	"approxcache/internal/trace"
	"approxcache/internal/vision"
)

// DeviceConfig describes one simulated device in a run.
type DeviceConfig struct {
	// Name identifies the device (and its network node).
	Name string
	// Spec is the device's workload.
	Spec trace.Spec
	// Engine is the pipeline configuration.
	Engine core.Config
	// Capacity and Policy shape the device's cache store.
	Capacity int
	Policy   cachestore.Policy
	// Profile is the device's DNN profile.
	Profile dnn.Profile
	// Seed drives the device's classifier and LSH index.
	Seed int64
	// Client, when non-nil, overrides the peer-client policy (breaker,
	// budget, health smoothing). The clock is always bound to the
	// run's virtual clock regardless.
	Client *p2p.ClientConfig
	// WrapClassifier, when non-nil, wraps the device's classifier
	// before the engine sees it — the hook fault harnesses use to
	// interpose a dnn.FaultyClassifier.
	WrapClassifier func(dnn.Recognizer) core.Classifier
	// CorruptIMU, when non-nil, rewrites a frame's IMU window before
	// the engine sees it (frame is the zero-based frame index). The
	// clean window is still used for the workload's arrival timeline.
	CorruptIMU func(frame int, win []imu.Sample) []imu.Sample
	// CorruptFrame, when non-nil, rewrites a frame's image likewise.
	CorruptFrame func(frame int, im *vision.Image) *vision.Image
}

// defaults fills zero fields.
func (d *DeviceConfig) defaults() {
	if d.Capacity == 0 {
		d.Capacity = 256
	}
	if d.Policy == 0 {
		d.Policy = cachestore.CostAware
	}
	if d.Profile.Name == "" {
		d.Profile = dnn.MobileNetV2
	}
	if d.Seed == 0 {
		d.Seed = 1
	}
}

// device is one instantiated pipeline plus its workload.
type device struct {
	name         string
	engine       *core.Engine
	work         *trace.Workload
	store        *cachestore.Store
	client       *p2p.Client
	corruptIMU   func(frame int, win []imu.Sample) []imu.Sample
	corruptFrame func(frame int, im *vision.Image) *vision.Image
	prev         time.Duration
	next         int // next frame index
}

// buildDevice instantiates cfg on clock, optionally attached to net.
func buildDevice(cfg DeviceConfig, clock simclock.Clock, net *simnet.Network) (*device, error) {
	cfg.defaults()
	w, err := trace.Generate(cfg.Spec)
	if err != nil {
		return nil, fmt.Errorf("device %s workload: %w", cfg.Name, err)
	}
	classifier, err := dnn.NewClassifier(cfg.Profile, w.Classes, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("device %s classifier: %w", cfg.Name, err)
	}
	var store *cachestore.Store
	var peers *p2p.Client
	if cfg.Engine.Mode == core.ModeApprox {
		idx, err := lsh.NewHyperplane(cfg.Engine.Extractor.Dim(), 12, 4, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("device %s index: %w", cfg.Name, err)
		}
		store, err = cachestore.New(cachestore.Config{
			Capacity: cfg.Capacity,
			Policy:   cfg.Policy,
		}, idx, clock)
		if err != nil {
			return nil, fmt.Errorf("device %s store: %w", cfg.Name, err)
		}
		if net != nil {
			svc, err := p2p.NewService(p2p.DefaultServiceConfig(cfg.Name), store)
			if err != nil {
				return nil, fmt.Errorf("device %s service: %w", cfg.Name, err)
			}
			if err := p2p.RegisterService(net, svc); err != nil {
				return nil, fmt.Errorf("device %s register: %w", cfg.Name, err)
			}
			tr, err := p2p.NewSimnetTransport(cfg.Name, net)
			if err != nil {
				return nil, fmt.Errorf("device %s transport: %w", cfg.Name, err)
			}
			ccfg := p2p.DefaultClientConfig()
			if cfg.Client != nil {
				ccfg = *cfg.Client
			}
			// Breaker backoffs must elapse in the run's virtual time, or
			// circuits would (nondeterministically) heal on the wall
			// clock instead.
			ccfg.Clock = clock
			peers, err = p2p.NewClient(ccfg, tr)
			if err != nil {
				return nil, fmt.Errorf("device %s client: %w", cfg.Name, err)
			}
		}
	}
	var rec core.Classifier = classifier
	if cfg.WrapClassifier != nil {
		rec = cfg.WrapClassifier(classifier)
	}
	eng, err := core.New(cfg.Engine, core.Deps{
		Clock:      clock,
		Classifier: rec,
		Store:      store,
		Peers:      peers,
	})
	if err != nil {
		return nil, fmt.Errorf("device %s engine: %w", cfg.Name, err)
	}
	return &device{
		name: cfg.Name, engine: eng, work: w, store: store, client: peers,
		corruptIMU: cfg.CorruptIMU, corruptFrame: cfg.CorruptFrame,
	}, nil
}

// step processes the device's next frame. Returns false when the
// workload is exhausted.
func (d *device) step() (bool, error) {
	_, ok, err := d.stepResult()
	return ok, err
}

// stepResult is step exposing the frame's pipeline result, for harnesses
// that classify frames (e.g. the chaos runner's phase windows).
func (d *device) stepResult() (core.Result, bool, error) {
	if d.next >= len(d.work.Frames) {
		return core.Result{}, false, nil
	}
	fr := d.work.Frames[d.next]
	idx := d.next
	win := d.work.IMUWindow(d.prev, fr.Offset)
	d.prev = fr.Offset
	d.next++
	im := fr.Image
	if d.corruptIMU != nil {
		win = d.corruptIMU(idx, win)
	}
	if d.corruptFrame != nil {
		im = d.corruptFrame(idx, im)
	}
	res, err := d.engine.ProcessWithTruth(im, win, dnn.LabelOf(fr.Class))
	if err != nil {
		return core.Result{}, false, fmt.Errorf("device %s frame %d: %w", d.name, fr.Index, err)
	}
	return res, true, nil
}

// RunSingle replays one device's workload to completion and returns its
// stats and the device's store (nil outside approx mode).
func RunSingle(cfg DeviceConfig) (*metrics.SessionStats, *cachestore.Store, error) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	dev, err := buildDevice(cfg, clock, nil)
	if err != nil {
		return nil, nil, err
	}
	for {
		ok, err := dev.step()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
	}
	return dev.engine.Stats(), dev.store, nil
}

// RunGroup replays several devices on one shared simulated network
// (default short-range link profile), interleaving frames in timestamp
// order so gossip and queries happen causally. It returns per-device
// stats keyed by device name.
//
// Every spec should share a ClassSeed so the devices recognize the same
// object vocabulary; otherwise peers can never help each other.
func RunGroup(cfgs []DeviceConfig, netSeed int64) (map[string]*metrics.SessionStats, error) {
	return RunGroupLink(cfgs, netSeed, simnet.DefaultLinkProfile())
}

// RunGroupLink is RunGroup with an explicit link profile, used by the
// degraded-network experiment.
func RunGroupLink(cfgs []DeviceConfig, netSeed int64, link simnet.LinkProfile) (map[string]*metrics.SessionStats, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("eval: empty device group")
	}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	net, err := simnet.New(link, netSeed)
	if err != nil {
		return nil, err
	}
	devices := make([]*device, 0, len(cfgs))
	for _, cfg := range cfgs {
		dev, err := buildDevice(cfg, clock, net)
		if err != nil {
			return nil, err
		}
		devices = append(devices, dev)
	}
	// Full mesh: every device peers with all the others.
	for i, dev := range devices {
		if dev.client == nil {
			continue
		}
		var others []string
		for j, other := range devices {
			if j != i && other.store != nil {
				others = append(others, other.name)
			}
		}
		dev.client.SetPeers(others)
	}

	// Interleave frames globally by offset so the simulation is
	// causal: a device that sees a scene first shares it before a
	// later device asks.
	for {
		best := -1
		var bestOff time.Duration
		for i, dev := range devices {
			if dev.next >= len(dev.work.Frames) {
				continue
			}
			off := dev.work.Frames[dev.next].Offset
			if best == -1 || off < bestOff || (off == bestOff && dev.name < devices[best].name) {
				best, bestOff = i, off
			}
		}
		if best == -1 {
			break
		}
		if _, err := devices[best].step(); err != nil {
			return nil, err
		}
	}
	out := make(map[string]*metrics.SessionStats, len(devices))
	for _, dev := range devices {
		out[dev.name] = dev.engine.Stats()
	}
	return out, nil
}

// RunScenario replays a serialized multi-device scenario with every
// device running the same engine configuration.
func RunScenario(sc trace.Scenario, engine core.Config) (map[string]*metrics.SessionStats, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	specs := sc.DeviceSpecs()
	cfgs := make([]DeviceConfig, 0, len(specs))
	for i, spec := range specs {
		cfgs = append(cfgs, DeviceConfig{
			Name:   spec.Name,
			Spec:   spec,
			Engine: engine,
			Seed:   spec.Seed + int64(i),
		})
	}
	return RunGroup(cfgs, sc.NetSeed)
}

// sortedSources returns the per-source counts in pipeline order.
func sourceCounts(stats *metrics.SessionStats) []int {
	counts := stats.CountBySource()
	out := make([]int, 0, 5)
	for _, s := range metrics.Sources() {
		out = append(out, counts[s])
	}
	return out
}

// sortedKeys returns map keys in sorted order (deterministic reports).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
