package eval

import (
	"fmt"
	"time"

	"approxcache/internal/cachestore"
	"approxcache/internal/core"
	"approxcache/internal/dnn"
	"approxcache/internal/lsh"
	"approxcache/internal/simclock"
	"approxcache/internal/trace"
)

// The cache-quality benchmark: injected label drift against one
// serving node, with and without the self-healing quality layer.
//
// At the drift frame the classifier's label space rotates (model
// drift: a model update or a changed world — dnn.FaultDrift) and
// ground truth follows it, so every result cached before the drift is
// silently wrong afterwards. Nothing errors, nothing slows down: the
// only symptom is reuse answers that no longer match what the DNN
// would say. This is the failure mode approximate caching is uniquely
// exposed to — the whole system exists to NOT run the DNN, so it
// cannot notice the DNN changed its mind.
//
// Three runs share one workload, seed, and node shape:
//
//   - baseline: no drift, quality layer off — the accuracy and
//     latency-savings ceiling.
//   - unprotected: drift injected, quality layer off. Recovery rides
//     only on MaxReuseStreak revalidation and repair.
//   - protected: drift injected, quality layer on — shadow audits,
//     quarantine, and drift-adaptive gate recalibration.
//
// Scoring is over the tail (final third) of the run, well past the
// drift onset: steady-state accuracy, and latency savings versus
// always running the DNN. The regression gate (cmd/benchgate
// -quality-json) enforces the headline couple: the protected node's
// tail accuracy recovers to ≥ 0.95× the no-drift baseline while
// retaining ≥ 0.6× of the baseline's latency savings.

// Quality run names, in report order.
const (
	QualityBaseline    = "baseline"
	QualityUnprotected = "unprotected"
	QualityProtected   = "protected"
)

// QualityBenchConfig shapes the drift benchmark.
type QualityBenchConfig struct {
	// Frames is the workload length (default 1800).
	Frames int
	// DriftFrame is the drift onset (default Frames/3).
	DriftFrame int
	// DriftEvery repeats the rotation every this many frames after the
	// onset (default Frames/8). Drift is recurring because concept
	// drift is: a single rotation is healed for free by the streak
	// cap's scheduled revalidation, but ongoing drift keeps re-poisoning
	// the cache, so steady-state accuracy measures how FAST a node
	// heals, not whether it eventually does.
	DriftEvery int
	// Shift rotates the label space by this many classes per episode
	// (default 3).
	Shift int
	// Seed anchors all randomness.
	Seed int64
	// Capacity is the node's cache capacity (default 256).
	Capacity int
	// Profile is the model profile (default MobileNetV2).
	Profile dnn.Profile
	// Quality is the protected run's layer tuning. Zero fields default
	// to a bench-friendly shape: synchronous audits (deterministic on
	// the virtual clock), dense sampling (every 4th reuse) so recovery
	// is measurable at bench scale.
	Quality core.QualityConfig
	// QuarantineThreshold is the protected run's store threshold
	// (default 1: an audit verdict is the full DNN speaking, so one
	// refute is already strong evidence under injected drift).
	QuarantineThreshold int
}

func (c *QualityBenchConfig) defaults() {
	if c.Frames == 0 {
		c.Frames = 1800
	}
	if c.DriftFrame == 0 {
		c.DriftFrame = c.Frames / 3
	}
	if c.DriftEvery == 0 {
		c.DriftEvery = c.Frames / 8
	}
	if c.Shift == 0 {
		c.Shift = 3
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Capacity == 0 {
		c.Capacity = 256
	}
	if c.Profile.Name == "" {
		c.Profile = dnn.MobileNetV2
	}
	c.Quality.Enabled = true
	c.Quality.Synchronous = true
	if c.Quality.AuditSampleEvery == 0 {
		c.Quality.AuditSampleEvery = 4
	}
	if c.QuarantineThreshold == 0 {
		c.QuarantineThreshold = 1
	}
}

// QualityRun is one node's measured outcome.
type QualityRun struct {
	Name   string `json:"name"`
	Frames int    `json:"frames"`
	// TailAccuracy is ground-truth accuracy over the final third.
	TailAccuracy float64 `json:"tail_accuracy"`
	// TailMeanLatencyMS is the mean frame latency over the final third.
	TailMeanLatencyMS float64 `json:"tail_mean_latency_ms"`
	// LatencySavings is 1 − tail mean latency / model mean latency:
	// the fraction of inference cost the cache still avoids.
	LatencySavings float64 `json:"latency_savings"`
	// FullAccuracy is accuracy over the whole run (includes the
	// drift-transition trough).
	FullAccuracy float64 `json:"full_accuracy"`
	// Quality-layer activity (protected run only; zero elsewhere).
	Audits          int     `json:"audits,omitempty"`
	AuditRefutes    int     `json:"audit_refutes,omitempty"`
	Quarantines     int     `json:"quarantines,omitempty"`
	Paroles         int     `json:"paroles,omitempty"`
	ParoleEvictions int     `json:"parole_evictions,omitempty"`
	RecalTightens   int     `json:"recal_tightens,omitempty"`
	RecalLoosens    int     `json:"recal_loosens,omitempty"`
	ReuseRefusals   int     `json:"reuse_refusals,omitempty"`
	LiveAccuracy    float64 `json:"live_accuracy,omitempty"`
}

// QualityReport is the full benchmark outcome, serialized to
// BENCH_quality.json and gated by cmd/benchgate.
type QualityReport struct {
	Frames     int          `json:"frames"`
	DriftFrame int          `json:"drift_frame"`
	Shift      int          `json:"shift"`
	Runs       []QualityRun `json:"runs"`
	// AccuracyRecovery is protected tail accuracy over baseline tail
	// accuracy — the gated number (≥ 0.95).
	AccuracyRecovery float64 `json:"accuracy_recovery"`
	// SavingsRetention is protected latency savings over baseline
	// latency savings — the gated number (≥ 0.6).
	SavingsRetention float64 `json:"savings_retention"`
	// UnprotectedAccuracy is the drifted, unlayered node's tail
	// accuracy, for contrast.
	UnprotectedAccuracy float64 `json:"unprotected_accuracy"`
}

// runQualityNode replays the workload against one freshly built node.
// drift injects the label rotation at cfg.DriftFrame; protect turns
// the quality layer (and store quarantine) on.
func runQualityNode(cfg QualityBenchConfig, drift, protect bool) (QualityRun, error) {
	spec := trace.StationaryHeavy(cfg.Frames, cfg.Seed)
	w, err := trace.Generate(spec)
	if err != nil {
		return QualityRun{}, err
	}
	classifier, err := dnn.NewClassifier(cfg.Profile, w.Classes, cfg.Seed)
	if err != nil {
		return QualityRun{}, err
	}
	faulty, err := dnn.NewFaultyClassifier(classifier, nil)
	if err != nil {
		return QualityRun{}, err
	}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	ecfg := core.DefaultConfig()
	scfg := cachestore.Config{Capacity: cfg.Capacity}
	if protect {
		ecfg.Quality = cfg.Quality
		scfg.QuarantineThreshold = cfg.QuarantineThreshold
	}
	idx, err := lsh.NewHyperplane(ecfg.Extractor.Dim(), 12, 4, cfg.Seed)
	if err != nil {
		return QualityRun{}, err
	}
	store, err := cachestore.New(scfg, idx, clock)
	if err != nil {
		return QualityRun{}, err
	}
	eng, err := core.New(ecfg, core.Deps{Clock: clock, Classifier: faulty, Store: store})
	if err != nil {
		return QualityRun{}, err
	}

	tailStart := cfg.Frames - cfg.Frames/3
	var prev time.Duration
	tailCorrect, tailFrames, fullCorrect := 0, 0, 0
	var tailLatency time.Duration
	shift := 0
	relabel := func(s string) string { return s }
	for i, fr := range w.Frames {
		if drift && i >= cfg.DriftFrame && (i-cfg.DriftFrame)%cfg.DriftEvery == 0 {
			// Another drift episode: the rotation compounds. Install it
			// at the classifier's CURRENT call number (retries and
			// shadow audits included), open-ended until the next one.
			shift += cfg.Shift
			relabel = dnn.ShiftRelabel(shift, spec.NumClasses)
			if err := faulty.SetFaultPlan(dnn.FaultPlan{{
				From: faulty.Calls(), To: 1 << 30,
				Kind: dnn.FaultDrift, Relabel: relabel,
			}}); err != nil {
				return QualityRun{}, err
			}
		}
		// Model drift, not model error: truth follows the drifted
		// model, so everything cached before each episode is wrong
		// after it.
		truth := relabel(dnn.LabelOf(fr.Class))
		win := w.IMUWindow(prev, fr.Offset)
		prev = fr.Offset
		res, err := eng.ProcessWithTruth(fr.Image, win, truth)
		if err != nil {
			return QualityRun{}, fmt.Errorf("frame %d: %w", i, err)
		}
		if res.Label == truth {
			fullCorrect++
			if i >= tailStart {
				tailCorrect++
			}
		}
		if i >= tailStart {
			tailFrames++
			tailLatency += res.Latency
		}
	}
	eng.DrainAudits()

	run := QualityRun{Name: QualityBaseline, Frames: cfg.Frames}
	switch {
	case drift && protect:
		run.Name = QualityProtected
	case drift:
		run.Name = QualityUnprotected
	}
	run.TailAccuracy = float64(tailCorrect) / float64(tailFrames)
	run.FullAccuracy = float64(fullCorrect) / float64(cfg.Frames)
	meanTail := time.Duration(int64(tailLatency) / int64(tailFrames))
	run.TailMeanLatencyMS = float64(meanTail) / float64(time.Millisecond)
	run.LatencySavings = 1 - float64(meanTail)/float64(cfg.Profile.MeanLatency)
	stats := eng.Stats()
	run.Audits, run.AuditRefutes = stats.Audits()
	run.Quarantines, run.Paroles, run.ParoleEvictions = stats.QuarantineEvents()
	run.RecalTightens, run.RecalLoosens = stats.RecalibrationEvents()
	run.ReuseRefusals = stats.ReuseRefusals()
	if snap, ok := eng.QualitySnapshot(); ok {
		run.LiveAccuracy = snap.LiveAccuracy
	}
	return run, nil
}

// RunQuality measures all three runs and computes the headline
// recovery and retention numbers.
func RunQuality(cfg QualityBenchConfig) (QualityReport, error) {
	cfg.defaults()
	rep := QualityReport{Frames: cfg.Frames, DriftFrame: cfg.DriftFrame, Shift: cfg.Shift}
	var base, prot QualityRun
	for _, r := range []struct {
		drift, protect bool
	}{{false, false}, {true, false}, {true, true}} {
		run, err := runQualityNode(cfg, r.drift, r.protect)
		if err != nil {
			return QualityReport{}, fmt.Errorf("%v/%v: %w", r.drift, r.protect, err)
		}
		rep.Runs = append(rep.Runs, run)
		switch run.Name {
		case QualityBaseline:
			base = run
		case QualityProtected:
			prot = run
		case QualityUnprotected:
			rep.UnprotectedAccuracy = run.TailAccuracy
		}
	}
	if base.TailAccuracy > 0 {
		rep.AccuracyRecovery = prot.TailAccuracy / base.TailAccuracy
	}
	if base.LatencySavings > 0 {
		rep.SavingsRetention = prot.LatencySavings / base.LatencySavings
	}
	return rep, nil
}

// E23Quality is the cache-quality experiment: injected label drift
// with and without the self-healing layer, at a test-friendly size
// when scaled down.
func E23Quality(scale Scale) (Report, error) {
	cfg := QualityBenchConfig{Seed: scale.Seed}
	if scale.Frames < DefaultScale().Frames {
		cfg.Frames = 600
	}
	rep, err := RunQuality(cfg)
	if err != nil {
		return Report{}, err
	}
	out := Report{
		ID:    "E23",
		Title: "Cache quality under label drift: shadow audits + quarantine + recalibration",
		Headers: []string{"node", "tail acc", "full acc", "tail ms", "savings",
			"audits", "refutes", "quar", "parole", "refusals"},
	}
	for _, r := range rep.Runs {
		out.Rows = append(out.Rows, []string{
			r.Name, fmtF(r.TailAccuracy), fmtF(r.FullAccuracy),
			fmtF(r.TailMeanLatencyMS), fmtF(r.LatencySavings),
			fmt.Sprintf("%d", r.Audits), fmt.Sprintf("%d", r.AuditRefutes),
			fmt.Sprintf("%d", r.Quarantines), fmt.Sprintf("%d", r.Paroles),
			fmt.Sprintf("%d", r.ReuseRefusals),
		})
	}
	out.Notes = append(out.Notes,
		fmt.Sprintf("label space rotated by %d at frame %d; truth follows the drifted model",
			rep.Shift, rep.DriftFrame),
		fmt.Sprintf("accuracy recovery %.2f (gate ≥ 0.95), savings retention %.2f (gate ≥ 0.60)",
			rep.AccuracyRecovery, rep.SavingsRetention),
		fmt.Sprintf("unprotected tail accuracy for contrast: %.2f", rep.UnprotectedAccuracy),
	)
	return out, nil
}
