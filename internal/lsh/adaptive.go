package lsh

import (
	"fmt"
	"sync"
	"sync/atomic"

	"approxcache/internal/feature"
)

// NewHyperplaneCentered is NewHyperplane with projections centered on
// center: bits are the signs of ⟨plane, v−center⟩. Centering matters
// when the data lives off-origin (image descriptors are all-positive,
// so uncentered random hyperplanes see correlated signs and pile items
// into a few buckets).
func NewHyperplaneCentered(dim, bits, tables int, seed int64, center feature.Vector) (*HyperplaneIndex, error) {
	return NewHyperplaneCenteredTuned(dim, bits, tables, seed, center, Tuning{})
}

// NewHyperplaneCenteredTuned is NewHyperplaneCentered with an explicit
// candidate-pipeline tuning. The center applies to sketch projections
// too, so sketches stay meaningful for off-origin data.
func NewHyperplaneCenteredTuned(dim, bits, tables int, seed int64, center feature.Vector, tun Tuning) (*HyperplaneIndex, error) {
	x, err := NewHyperplaneTuned(dim, bits, tables, seed, tun)
	if err != nil {
		return nil, err
	}
	if center != nil {
		if len(center) != dim {
			return nil, fmt.Errorf("lsh: center dim %d, index dim %d: %w",
				len(center), dim, feature.ErrDimensionMismatch)
		}
		x.center = center.Clone()
	}
	return x, nil
}

// AdaptiveConfig tunes the adaptive index's rebuild policy.
type AdaptiveConfig struct {
	// Dim, Bits, Tables, Seed shape the underlying hyperplane index.
	Dim, Bits, Tables int
	Seed              int64
	// CheckEvery is how many inserts pass between skew checks.
	CheckEvery int
	// SkewThreshold triggers a rebuild when the largest bucket holds
	// more than this fraction of all items (0 < t <= 1).
	SkewThreshold float64
	// Tuning configures the candidate pipeline of the underlying index
	// (and of every rebuilt index). Zero value = classic pipeline.
	Tuning Tuning
}

// Validate reports whether the configuration is usable.
func (c AdaptiveConfig) Validate() error {
	if c.Dim <= 0 || c.Bits <= 0 || c.Bits > MaxSignatureBits || c.Tables <= 0 {
		return fmt.Errorf("lsh: bad adaptive shape dim=%d bits=%d tables=%d",
			c.Dim, c.Bits, c.Tables)
	}
	if c.CheckEvery <= 0 {
		return fmt.Errorf("lsh: CheckEvery must be positive, got %d", c.CheckEvery)
	}
	if c.SkewThreshold <= 0 || c.SkewThreshold > 1 {
		return fmt.Errorf("lsh: SkewThreshold must be in (0,1], got %v", c.SkewThreshold)
	}
	return c.Tuning.Validate()
}

// DefaultAdaptiveConfig returns the production rebuild policy for a
// dim-dimensional index.
func DefaultAdaptiveConfig(dim int) AdaptiveConfig {
	return AdaptiveConfig{
		Dim:           dim,
		Bits:          12,
		Tables:        4,
		Seed:          1,
		CheckEvery:    64,
		SkewThreshold: 0.5,
	}
}

// AdaptiveIndex wraps a hyperplane index and rebuilds it — re-seeding
// the hyperplanes and centering projections on the observed data mean —
// whenever bucket occupancy skews past the configured threshold. This
// is the FoggyCache-style adaptive LSH: the index tracks the data
// distribution instead of assuming a centered one.
//
// The read path is lock-free end to end: readers load the current
// inner index through an atomic pointer and run the inner index's own
// lock-free lookup; a rebuild constructs the replacement off to the
// side and publishes it with one pointer store. Only writers take the
// mutex, and a rebuild completes entirely under it, so no insert can
// slip between the item snapshot and the swap.
type AdaptiveIndex struct {
	cfg AdaptiveConfig

	// mu serializes writers (Insert/Remove) and rebuilds. Readers
	// never touch it.
	mu      sync.Mutex
	inner   atomic.Pointer[HyperplaneIndex]
	inserts int
	// rebuilds is read by the stats path without the writer mutex.
	rebuilds atomic.Int64
}

var _ Index = (*AdaptiveIndex)(nil)

// NewAdaptive builds an adaptive index.
func NewAdaptive(cfg AdaptiveConfig) (*AdaptiveIndex, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inner, err := NewHyperplaneTuned(cfg.Dim, cfg.Bits, cfg.Tables, cfg.Seed, cfg.Tuning)
	if err != nil {
		return nil, err
	}
	a := &AdaptiveIndex{cfg: cfg}
	a.inner.Store(inner)
	return a, nil
}

// Rebuilds returns how many times the index has re-tuned itself.
// Lock-free: stats polling can never stall a rebuild or a lookup.
func (a *AdaptiveIndex) Rebuilds() int {
	return int(a.rebuilds.Load())
}

// Len returns the number of indexed vectors. Lock-free.
func (a *AdaptiveIndex) Len() int {
	return a.inner.Load().Len()
}

// Stats returns the current underlying occupancy statistics.
// Lock-free: it pins the inner index's published snapshot.
func (a *AdaptiveIndex) Stats() Stats {
	return a.inner.Load().Stats()
}

// Insert adds (id, v), possibly triggering a rebuild. The whole
// operation — insert, skew check, rebuild — runs under the writer
// mutex, so a rebuild can never lose a concurrent insert.
func (a *AdaptiveIndex) Insert(id ID, v feature.Vector) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.inner.Load().Insert(id, v); err != nil {
		return err
	}
	a.inserts++
	if a.inserts%a.cfg.CheckEvery == 0 {
		a.maybeRebuildLocked()
	}
	return nil
}

// Remove deletes id.
func (a *AdaptiveIndex) Remove(id ID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inner.Load().Remove(id)
}

// Nearest returns up to k approximate nearest neighbors of q.
// Lock-free.
func (a *AdaptiveIndex) Nearest(q feature.Vector, k int) ([]Neighbor, error) {
	return a.inner.Load().Nearest(q, k)
}

// NearestInto is Nearest writing into dst's backing array. Lock-free.
func (a *AdaptiveIndex) NearestInto(q feature.Vector, k int, dst []Neighbor) ([]Neighbor, error) {
	return a.inner.Load().NearestInto(q, k, dst)
}

// Candidates returns q's LSH candidate set. Lock-free.
func (a *AdaptiveIndex) Candidates(q feature.Vector) ([]ID, error) {
	return a.inner.Load().Candidates(q)
}

// CandidatesInto is Candidates appending into dst's backing array.
// Lock-free.
func (a *AdaptiveIndex) CandidatesInto(q feature.Vector, dst []ID) ([]ID, error) {
	return a.inner.Load().CandidatesInto(q, dst)
}

// maybeRebuildLocked checks occupancy skew and rebuilds if needed.
// Caller holds mu; readers keep running against the old inner index
// until the single pointer store below publishes the replacement.
func (a *AdaptiveIndex) maybeRebuildLocked() {
	inner := a.inner.Load()
	st := inner.Stats()
	if st.Items < a.cfg.CheckEvery {
		return
	}
	if float64(st.MaxBucket) <= a.cfg.SkewThreshold*float64(st.Items) {
		return
	}

	// Rebuild: fresh hyperplanes, centered on the data mean.
	items := inner.Items()
	if len(items) == 0 {
		return
	}
	center := make(feature.Vector, a.cfg.Dim)
	for _, it := range items {
		for d := range center {
			center[d] += it.Vec[d]
		}
	}
	for d := range center {
		center[d] /= float64(len(items))
	}

	seed := a.cfg.Seed + (a.rebuilds.Load()+1)*7919
	fresh, err := NewHyperplaneCenteredTuned(a.cfg.Dim, a.cfg.Bits, a.cfg.Tables, seed, center, a.cfg.Tuning)
	if err != nil {
		return // static config was validated; unreachable in practice
	}
	for _, it := range items {
		if err := fresh.Insert(it.ID, it.Vec); err != nil {
			return
		}
	}
	a.inner.Store(fresh)
	a.rebuilds.Add(1)
}

// Item is one indexed (id, vector) pair.
type Item struct {
	ID  ID
	Vec feature.Vector
}

// Items returns copies of all indexed vectors. It takes the writer
// mutex: idSlot is writer-owned state, and Items is only called from
// write-side paths (rebuild, snapshot export).
func (x *HyperplaneIndex) Items() []Item {
	x.wmu.Lock()
	defer x.wmu.Unlock()
	out := make([]Item, 0, len(x.idSlot))
	for id, slot := range x.idSlot {
		out = append(out, Item{ID: id, Vec: x.slotVec(slot).Clone()})
	}
	return out
}
