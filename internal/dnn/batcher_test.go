package dnn

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"approxcache/internal/vision"
)

func batchImages(t *testing.T, cs *vision.ClassSet, n int) []*vision.Image {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	out := make([]*vision.Image, n)
	for i := range out {
		im, err := cs.Render(i%cs.NumClasses(), vision.DefaultPerturbation(), rng)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = im
	}
	return out
}

func TestBatchLatencyModel(t *testing.T) {
	p := MobileNetV2
	if got := BatchLatency(p, 1); got != p.MeanLatency {
		t.Fatalf("BatchLatency(1) = %v, want %v", got, p.MeanLatency)
	}
	if got := BatchLatency(p, 0); got != 0 {
		t.Fatalf("BatchLatency(0) = %v, want 0", got)
	}
	// A batch of 8 must cost far less than 8 separate frames but more
	// than one.
	b8 := BatchLatency(p, 8)
	if b8 <= p.MeanLatency || b8 >= 8*p.MeanLatency/2 {
		t.Fatalf("BatchLatency(8) = %v out of range", b8)
	}
	perFrame := b8 / 8
	speedup := float64(p.MeanLatency) / float64(perFrame)
	if speedup < 3 {
		t.Fatalf("per-frame amortization %.2fx, want >= 3x", speedup)
	}
}

// TestInferBatchMatchesInferDecisions: batched inference makes the
// same feature-space decision per frame as single-frame inference
// (label noise aside), at amortized per-frame cost.
func TestInferBatchMatchesInferDecisions(t *testing.T) {
	cs := testClasses(t)
	// Top1Accuracy 1.0 disables label noise so decisions are
	// deterministic and comparable.
	profile := MobileNetV2
	profile.Top1Accuracy = 1.0
	a, err := NewClassifier(profile, cs, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewClassifier(profile, cs, 5)
	if err != nil {
		t.Fatal(err)
	}
	ims := batchImages(t, cs, 8)
	batched, err := a.InferBatch(ims)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(ims) {
		t.Fatalf("got %d results for %d frames", len(batched), len(ims))
	}
	for i, im := range ims {
		single, err := b.Infer(im)
		if err != nil {
			t.Fatal(err)
		}
		if batched[i].Label != single.Label {
			t.Fatalf("frame %d: batch label %q, single %q", i, batched[i].Label, single.Label)
		}
		if batched[i].Latency >= single.Latency {
			t.Fatalf("frame %d: batched latency %v not cheaper than single %v",
				i, batched[i].Latency, single.Latency)
		}
		if batched[i].EnergyMJ >= single.EnergyMJ {
			t.Fatalf("frame %d: batched energy %v not cheaper than single %v",
				i, batched[i].EnergyMJ, single.EnergyMJ)
		}
	}
	if _, err := a.InferBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if _, err := a.InferBatch([]*vision.Image{nil}); err == nil {
		t.Fatal("nil image in batch: want error")
	}
}

func TestBatcherConfigValidate(t *testing.T) {
	if err := DefaultBatcherConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (BatcherConfig{MaxBatch: 0, MaxWait: time.Millisecond}).Validate(); err == nil {
		t.Fatal("want error for MaxBatch 0")
	}
	if err := (BatcherConfig{MaxBatch: 8}).Validate(); err == nil {
		t.Fatal("want error for MaxWait 0")
	}
	cs := testClasses(t)
	c, err := NewClassifier(MobileNetV2, cs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBatcher(BatcherConfig{}, c); err == nil {
		t.Fatal("want error for invalid config")
	}
	if _, err := NewBatcher(DefaultBatcherConfig(), nil); err == nil {
		t.Fatal("want error for nil classifier")
	}
}

// TestBatcherFullFlush: MaxBatch concurrent callers form exactly one
// full batch.
func TestBatcherFullFlush(t *testing.T) {
	cs := testClasses(t)
	c, err := NewClassifier(MobileNetV2, cs, 5)
	if err != nil {
		t.Fatal(err)
	}
	// A long MaxWait proves the flush came from the size bound.
	b, err := NewBatcher(BatcherConfig{MaxBatch: 4, MaxWait: 10 * time.Second}, c)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ims := batchImages(t, cs, 4)
	var wg sync.WaitGroup
	for _, im := range ims {
		wg.Add(1)
		go func(im *vision.Image) {
			defer wg.Done()
			if _, err := b.Infer(im); err != nil {
				t.Error(err)
			}
		}(im)
	}
	wg.Wait()
	st := b.Stats()
	if st.Batches != 1 || st.Frames != 4 || st.FullFlushes != 1 || st.DeadlineFlushes != 0 {
		t.Fatalf("stats = %+v, want one full batch of 4", st)
	}
	if st.AvgSize() != 4 {
		t.Fatalf("AvgSize = %v, want 4", st.AvgSize())
	}
}

// TestBatcherDeadlineFlush: a lone caller is released by the MaxWait
// timer, not stuck waiting for a full batch.
func TestBatcherDeadlineFlush(t *testing.T) {
	cs := testClasses(t)
	c, err := NewClassifier(MobileNetV2, cs, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatcher(BatcherConfig{MaxBatch: 8, MaxWait: time.Millisecond}, c)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	im := batchImages(t, cs, 1)[0]
	done := make(chan error, 1)
	go func() {
		_, err := b.Infer(im)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lone caller never released")
	}
	st := b.Stats()
	if st.DeadlineFlushes != 1 || st.Batches != 1 || st.Frames != 1 {
		t.Fatalf("stats = %+v, want one deadline batch of 1", st)
	}
}

// TestBatcherCloseDrains: Close flushes pending work; later calls get
// the typed ErrBatcherClosed instead of unspecified behavior.
func TestBatcherCloseDrains(t *testing.T) {
	cs := testClasses(t)
	c, err := NewClassifier(MobileNetV2, cs, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatcher(BatcherConfig{MaxBatch: 8, MaxWait: 10 * time.Second}, c)
	if err != nil {
		t.Fatal(err)
	}
	im := batchImages(t, cs, 1)[0]
	done := make(chan error, 1)
	go func() {
		_, err := b.Infer(im)
		done <- err
	}()
	// Wait for the call to be queued, then close.
	for {
		b.mu.Lock()
		queued := len(b.pending) == 1
		b.mu.Unlock()
		if queued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	b.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Post-close calls are refused with the typed error.
	if _, err := b.Infer(im); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("post-close Infer err = %v, want ErrBatcherClosed", err)
	}
	b.Close() // double-close is a no-op
	if got := b.Stats().Batches; got != 1 {
		t.Fatalf("Batches = %d, want 1 (post-close calls are refused)", got)
	}
}

// TestBatcherInferRacesClose: many goroutines submitting while another
// closes the batcher, under -race. Every caller gets either a result or
// the typed ErrBatcherClosed — no hangs, no unspecified fallthrough.
func TestBatcherInferRacesClose(t *testing.T) {
	cs := testClasses(t)
	c, err := NewClassifier(MobileNetV2, cs, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatcher(BatcherConfig{MaxBatch: 4, MaxWait: time.Millisecond}, c)
	if err != nil {
		t.Fatal(err)
	}
	ims := batchImages(t, cs, 4)
	var served, refused atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 25; i++ {
				inf, err := b.Infer(ims[(w+i)%len(ims)])
				switch {
				case err == nil:
					if inf.Label == "" {
						t.Error("empty label on successful call")
						return
					}
					served.Add(1)
				case errors.Is(err, ErrBatcherClosed):
					refused.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(2 * time.Millisecond)
	b.Close()
	wg.Wait()
	if served.Load()+refused.Load() != 200 {
		t.Fatalf("served %d + refused %d != 200 calls", served.Load(), refused.Load())
	}
	if refused.Load() == 0 {
		t.Log("close won no races this run (timing-dependent); still exercised under -race")
	}
}

// TestBatcherQueueBound: frames above MaxPending are refused with
// ErrQueueFull instead of queueing without bound.
func TestBatcherQueueBound(t *testing.T) {
	cs := testClasses(t)
	c, err := NewClassifier(MobileNetV2, cs, 5)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	slow := &gatedBatchClassifier{inner: c, release: release}
	// MaxWait is short only so the final lone-frame call below is
	// released by a deadline flush quickly; the bound checks all happen
	// while the gated model holds a full flush in flight.
	b, err := NewBatcher(BatcherConfig{MaxBatch: 2, MaxWait: 20 * time.Millisecond, MaxPending: 2}, slow)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ims := batchImages(t, cs, 3)
	// Two frames fill the bound (and full-flush into the gated model).
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := b.Infer(ims[i])
			errs <- err
		}(i)
	}
	// Wait until both are admitted and blocked in InferBatch.
	for slow.calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	// The third frame exceeds MaxPending while the first two are still
	// in flight.
	if _, err := b.Infer(ims[2]); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-bound Infer err = %v, want ErrQueueFull", err)
	}
	if got := b.Stats().Overflows; got != 1 {
		t.Fatalf("Overflows = %d, want 1", got)
	}
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// With the queue drained the bound admits work again.
	if _, err := b.Infer(ims[2]); err != nil {
		t.Fatalf("post-drain Infer err = %v", err)
	}
}

// gatedBatchClassifier blocks InferBatch until released, to hold frames
// in flight deterministically.
type gatedBatchClassifier struct {
	inner   BatchClassifier
	release chan struct{}
	calls   atomic.Int64
}

func (g *gatedBatchClassifier) Profile() Profile { return g.inner.Profile() }
func (g *gatedBatchClassifier) Infer(im *vision.Image) (Inference, error) {
	return g.inner.Infer(im)
}
func (g *gatedBatchClassifier) InferBatch(ims []*vision.Image) ([]Inference, error) {
	g.calls.Add(1)
	<-g.release
	return g.inner.InferBatch(ims)
}

// TestBatcherStaleDrop: a frame whose deadline passes while it waits in
// the pending queue is dropped at dispatch time with ErrExpiredInQueue;
// a frame already expired on arrival is refused immediately.
func TestBatcherStaleDrop(t *testing.T) {
	cs := testClasses(t)
	c, err := NewClassifier(MobileNetV2, cs, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatcher(BatcherConfig{MaxBatch: 8, MaxWait: 20 * time.Millisecond}, c)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	im := batchImages(t, cs, 1)[0]
	// Already expired on arrival: refused without queueing.
	if _, err := b.InferDeadline(im, time.Now().Add(-time.Millisecond)); !errors.Is(err, ErrExpiredInQueue) {
		t.Fatalf("expired-on-arrival err = %v, want ErrExpiredInQueue", err)
	}
	// Deadline shorter than MaxWait: expires in the pending queue, so
	// the deadline flush stale-drops it.
	if _, err := b.InferDeadline(im, time.Now().Add(2*time.Millisecond)); !errors.Is(err, ErrExpiredInQueue) {
		t.Fatalf("expired-in-queue err = %v, want ErrExpiredInQueue", err)
	}
	st := b.Stats()
	if st.ExpiredDrops != 2 {
		t.Fatalf("ExpiredDrops = %d, want 2", st.ExpiredDrops)
	}
	if st.Frames != 0 {
		t.Fatalf("Frames = %d, want 0 (accelerator never saw the frames)", st.Frames)
	}
	// A generous deadline still completes normally.
	if _, err := b.InferDeadline(im, time.Now().Add(10*time.Second)); err != nil {
		t.Fatalf("in-deadline call err = %v", err)
	}
	if !IsOverloadError(ErrQueueFull) || !IsOverloadError(ErrExpiredInQueue) || IsOverloadError(ErrBatcherClosed) {
		t.Fatal("IsOverloadError misclassifies")
	}
}

// TestBatcherConcurrentStress: many goroutines through a small batcher
// under -race; every caller gets a result.
func TestBatcherConcurrentStress(t *testing.T) {
	cs := testClasses(t)
	c, err := NewClassifier(MobileNetV2, cs, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatcher(BatcherConfig{MaxBatch: 4, MaxWait: time.Millisecond}, c)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ims := batchImages(t, cs, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				inf, err := b.Infer(ims[(w+i)%len(ims)])
				if err != nil {
					t.Error(err)
					return
				}
				if inf.Label == "" {
					t.Error("empty label")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := b.Stats()
	if st.Frames != 160 {
		t.Fatalf("Frames = %d, want 160", st.Frames)
	}
	if st.Batches == 0 || st.SizeSum != st.Frames {
		t.Fatalf("inconsistent stats %+v", st)
	}
}
