package p2p

import (
	"testing"
	"time"

	"approxcache/internal/feature"
	"approxcache/internal/simclock"
	"approxcache/internal/simnet"
)

func newRosterCluster(t *testing.T, n int) (*Roster, *Client, []*Service, func(i int)) {
	t.Helper()
	cl, services, net := newSimCluster(t, n)
	clock := simclock.NewVirtual(time.Unix(0, 0))
	roster, err := NewRoster("self", cl, clock)
	if err != nil {
		t.Fatal(err)
	}
	roster.Add(cl.Peers()...)
	kill := func(i int) { net.Unregister(simnet.NodeID(services[i].Name())) }
	return roster, cl, services, kill
}

func TestNewRosterValidation(t *testing.T) {
	cl, _, _ := newSimCluster(t, 1)
	clock := simclock.NewVirtual(time.Unix(0, 0))
	if _, err := NewRoster("", cl, clock); err == nil {
		t.Fatal("empty self accepted")
	}
	if _, err := NewRoster("s", nil, clock); err == nil {
		t.Fatal("nil client accepted")
	}
	if _, err := NewRoster("s", cl, nil); err == nil {
		t.Fatal("nil clock accepted")
	}
}

func TestRosterAddKnownRemove(t *testing.T) {
	roster, _, _, _ := newRosterCluster(t, 3)
	if got := roster.Known(); len(got) != 3 {
		t.Fatalf("known = %v", got)
	}
	roster.Add("", "self", "peer-a") // ignored: empty, self, duplicate
	if got := roster.Known(); len(got) != 3 {
		t.Fatalf("known after noise = %v", got)
	}
	roster.Remove("peer-a")
	if got := roster.Known(); len(got) != 2 {
		t.Fatalf("known after remove = %v", got)
	}
	if _, ok := roster.Info("peer-a"); ok {
		t.Fatal("removed peer still has info")
	}
}

func TestRosterRefreshMarksAlive(t *testing.T) {
	roster, _, services, _ := newRosterCluster(t, 2)
	// Warm one peer so warmth ordering is observable.
	if _, err := services[1].Store().Insert(feature.Vector{1, 0}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	alive := roster.Refresh()
	if alive != 2 {
		t.Fatalf("alive = %d", alive)
	}
	info, ok := roster.Info("peer-b")
	if !ok || !info.Alive || info.Entries != 1 || info.RTT <= 0 {
		t.Fatalf("peer-b info = %+v", info)
	}
	if info.LastSeen.IsZero() {
		t.Fatal("LastSeen not set")
	}
}

func TestRosterBestPrefersWarmPeers(t *testing.T) {
	roster, _, services, _ := newRosterCluster(t, 3)
	for i := 0; i < 3; i++ {
		if _, err := services[2].Store().Insert(
			feature.Vector{float64(i), 1}, "x", 0.9, "dnn", time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := services[1].Store().Insert(feature.Vector{1, 0}, "x", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	roster.Refresh()
	best := roster.Best(2)
	if len(best) != 2 || best[0] != "peer-c" || best[1] != "peer-b" {
		t.Fatalf("best = %v", best)
	}
	all := roster.Best(0)
	if len(all) != 3 {
		t.Fatalf("best(0) = %v", all)
	}
}

func TestRosterDeadPeerExcluded(t *testing.T) {
	roster, _, _, kill := newRosterCluster(t, 2)
	roster.Refresh()
	kill(0) // peer-a disappears
	roster.Refresh()
	info, _ := roster.Info("peer-a")
	if info.Alive || info.Failures == 0 {
		t.Fatalf("dead peer still alive: %+v", info)
	}
	for _, name := range roster.Best(0) {
		if name == "peer-a" {
			t.Fatal("dead peer ranked")
		}
	}
}

func TestApplyBestUpdatesClient(t *testing.T) {
	roster, cl, services, _ := newRosterCluster(t, 3)
	if _, err := services[0].Store().Insert(feature.Vector{1, 0}, "x", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	best := roster.ApplyBest(1)
	if len(best) != 1 || best[0] != "peer-a" {
		t.Fatalf("best = %v", best)
	}
	if got := cl.Peers(); len(got) != 1 || got[0] != "peer-a" {
		t.Fatalf("client peers = %v", got)
	}
}
