package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"approxcache/internal/trace"
)

func TestSelectSpecs(t *testing.T) {
	all, err := selectSpecs("all", 100, 1)
	if err != nil || len(all) != 4 {
		t.Fatalf("all = %d specs, err %v", len(all), err)
	}
	for _, name := range []string{"stationary-heavy", "handheld-mix", "walking-tour", "panning-sweep"} {
		specs, err := selectSpecs(name, 100, 1)
		if err != nil || len(specs) != 1 || specs[0].Name != name {
			t.Fatalf("%s: %v, %v", name, specs, err)
		}
	}
	if _, err := selectSpecs("flying", 100, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunWritesSpecFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "spec.json")
	if err := run([]string{"-workload", "walking-tour", "-frames", "90", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := trace.DecodeSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "walking-tour" || spec.TotalFrames() != 90 {
		t.Fatalf("spec = %+v", spec)
	}
}

func TestRunOutRequiresSingleWorkload(t *testing.T) {
	out := filepath.Join(t.TempDir(), "spec.json")
	if err := run([]string{"-workload", "all", "-out", out}); err == nil {
		t.Fatal("-out with all workloads accepted")
	}
}

func TestRunSummary(t *testing.T) {
	if err := run([]string{"-workload", "panning-sweep", "-frames", "60", "-summary"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRender(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "frames")
	if err := run([]string{"-workload", "walking-tour", "-frames", "45",
		"-render", dir, "-every", "15"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("rendered %d files, want 3", len(entries))
	}
	if err := run([]string{"-workload", "all", "-render", dir}); err == nil {
		t.Fatal("-render with all workloads accepted")
	}
	if err := run([]string{"-workload", "walking-tour", "-render", dir, "-every", "0"}); err == nil {
		t.Fatal("zero stride accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunOutUnwritable(t *testing.T) {
	err := run([]string{"-workload", "walking-tour", "-out", filepath.Join(t.TempDir(), "no", "dir", "x.json")})
	if err == nil || !strings.Contains(err.Error(), "no such file") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunCrowdScenario(t *testing.T) {
	if err := run([]string{"-crowd", "3", "-frames", "60"}); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "crowd.json")
	if err := run([]string{"-crowd", "2", "-frames", "45", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := trace.DecodeScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Devices) != 2 {
		t.Fatalf("devices = %d", len(sc.Devices))
	}
}
