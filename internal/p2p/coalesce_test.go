package p2p

import (
	"sync"
	"testing"
	"time"

	"approxcache/internal/feature"
	"approxcache/internal/simclock"
	"approxcache/internal/simnet"
)

// newCoalesceCluster builds a 2-peer cluster with a virtual clock and
// the compact comms features enabled per cfgMut.
func newCoalesceCluster(t *testing.T, cfgMut func(*ClientConfig)) (*Client, []*Service, *simclock.Virtual) {
	t.Helper()
	net, err := simnet.New(simnet.LinkProfile{Latency: 2 * time.Millisecond}, 9)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	services := make([]*Service, 2)
	names := []string{"peer-a", "peer-b"}
	for i, name := range names {
		svc, err := NewService(DefaultServiceConfig(name), newStore(t, 32))
		if err != nil {
			t.Fatal(err)
		}
		if err := RegisterService(net, svc); err != nil {
			t.Fatal(err)
		}
		services[i] = svc
	}
	tr, err := NewSimnetTransport("self", net)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultClientConfig()
	cfg.Clock = clock
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	cl, err := NewClient(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetPeers(names)
	return cl, services, clock
}

func TestCoalesceTTLCacheReplaysFree(t *testing.T) {
	cl, services, clock := newCoalesceCluster(t, func(c *ClientConfig) {
		c.CoalesceTTL = 150 * time.Millisecond
	})
	if _, err := services[0].Store().Insert(feature.Vector{1, 0}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	vec := feature.Vector{1, 0.01}
	first, err := cl.QueryFrame(vec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Found || first.Queried == 0 || first.Cost == 0 {
		t.Fatalf("leader outcome = %+v", first)
	}
	// Replay within the TTL: same answer, zero network, zero cost.
	second, err := cl.QueryFrame(vec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Found || second.Hit.Label != "cat" {
		t.Fatalf("replay outcome = %+v", second)
	}
	if second.Queried != 0 || second.Cost != 0 {
		t.Fatalf("replay was not free: %+v", second)
	}
	ws := cl.WireStats()
	if ws.CoalescedCached != 1 {
		t.Fatalf("coalesced-cached = %d", ws.CoalescedCached)
	}
	sentBefore := ws.SentMsgs
	// Past the TTL the answer must be re-fetched.
	clock.Advance(200 * time.Millisecond)
	third, err := cl.QueryFrame(vec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if third.Queried == 0 {
		t.Fatal("expired answer still replayed")
	}
	if cl.WireStats().SentMsgs <= sentBefore {
		t.Fatal("no wire traffic after TTL expiry")
	}
}

func TestCoalesceConcurrentDuplicates(t *testing.T) {
	cl, services, _ := newCoalesceCluster(t, func(c *ClientConfig) {
		c.CoalesceTTL = time.Second
	})
	if _, err := services[0].Store().Insert(feature.Vector{1, 0}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	const n = 16
	vec := feature.Vector{1, 0.01}
	var wg sync.WaitGroup
	outs := make([]QueryOutcome, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = cl.QueryFrame(vec, 0)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !outs[i].Found || outs[i].Hit.Label != "cat" {
			t.Fatalf("outcome %d = %+v", i, outs[i])
		}
	}
	ws := cl.WireStats()
	if got := ws.CoalescedInFlight + ws.CoalescedCached; got != n-1 {
		t.Fatalf("coalesced %d of %d duplicates", got, n-1)
	}
}

func TestGossipBatchFlushWhenFull(t *testing.T) {
	cl, services, _ := newCoalesceCluster(t, func(c *ClientConfig) {
		c.GossipBatch = 3
		c.GossipFlush = time.Hour // only the size trigger may fire
	})
	// Negotiate v2 so the flush ships batch frames.
	for _, p := range []string{"peer-a", "peer-b"} {
		if _, _, err := cl.Ping("self", p); err != nil {
			t.Fatal(err)
		}
	}
	vecs := []feature.Vector{{1, 0}, {0, 1}, {1, 1}}
	for i, v := range vecs {
		cost, err := cl.Gossip(v, diffLabel(i), 0.9, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if i < len(vecs)-1 {
			if cost != 0 {
				t.Fatalf("queued gossip %d charged cost %v", i, cost)
			}
			for si, svc := range services {
				if svc.Store().Len() != 0 {
					t.Fatalf("peer %d saw gossip before the batch filled", si)
				}
			}
		} else if cost == 0 {
			t.Fatal("full batch flushed for free")
		}
	}
	for si, svc := range services {
		if got := svc.Store().Len(); got != 3 {
			t.Fatalf("peer %d store len = %d after batch flush", si, got)
		}
	}
	ws := cl.WireStats()
	if ws.Batches != 2 { // one batch frame per peer
		t.Fatalf("batches = %d", ws.Batches)
	}
	if got := ws.AvgBatch(); got != 3 {
		t.Fatalf("avg batch = %v", got)
	}
}

func TestGossipBatchFlushWhenDue(t *testing.T) {
	cl, services, clock := newCoalesceCluster(t, func(c *ClientConfig) {
		c.GossipBatch = 8
		c.GossipFlush = 100 * time.Millisecond
	})
	if _, err := cl.Gossip(feature.Vector{1, 0}, "cat", 0.9, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if services[0].Store().Len() != 0 {
		t.Fatal("gossip delivered before due time")
	}
	clock.Advance(150 * time.Millisecond)
	// The next pipeline activity flushes the due queue.
	if _, err := cl.QueryFrame(feature.Vector{0, 1}, 0); err != nil {
		t.Fatal(err)
	}
	for si, svc := range services {
		if svc.Store().Len() != 1 {
			t.Fatalf("peer %d missing due-flushed gossip", si)
		}
	}
}

func TestFlushGossipExplicit(t *testing.T) {
	cl, services, _ := newCoalesceCluster(t, func(c *ClientConfig) {
		c.GossipBatch = 8
		c.GossipFlush = time.Hour
	})
	if _, err := cl.Gossip(feature.Vector{1, 0}, "cat", 0.9, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	cost, err := cl.FlushGossip()
	if err != nil {
		t.Fatal(err)
	}
	if cost == 0 {
		t.Fatal("explicit flush charged nothing")
	}
	for si, svc := range services {
		if svc.Store().Len() != 1 {
			t.Fatalf("peer %d missing flushed gossip", si)
		}
	}
	// Idempotent on an empty queue.
	if cost, err := cl.FlushGossip(); err != nil || cost != 0 {
		t.Fatalf("empty flush: cost=%v err=%v", cost, err)
	}
}

// TestGossipBatchQueueClonesVector guards against scratch-buffer
// aliasing: the engine reuses its vector buffer across frames, so a
// queued gossip must hold its own copy.
func TestGossipBatchQueueClonesVector(t *testing.T) {
	cl, services, _ := newCoalesceCluster(t, func(c *ClientConfig) {
		c.GossipBatch = 2
		c.GossipFlush = time.Hour
	})
	scratch := feature.Vector{1, 0}
	if _, err := cl.Gossip(scratch, "cat", 0.9, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	scratch[0], scratch[1] = 0, 1 // engine reuses the buffer
	if _, err := cl.Gossip(scratch, "dog", 0.9, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st := services[0].Store()
	if st.Len() != 2 {
		t.Fatalf("store len = %d", st.Len())
	}
	// The first entry must still answer at its original location.
	resp, err := services[0].HandleQuery(Query{Vec: feature.Vector{1, 0}, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Found || resp.Label != "cat" {
		t.Fatalf("aliased gossip corrupted the batch: %+v", resp)
	}
}

// TestGossipBatchToV1Peers delivers queued items as per-item v1 frames
// when a peer never negotiated v2.
func TestGossipBatchToV1Peers(t *testing.T) {
	net, err := simnet.New(simnet.LinkProfile{Latency: 2 * time.Millisecond}, 9)
	if err != nil {
		t.Fatal(err)
	}
	scfg := DefaultServiceConfig("legacy")
	scfg.WireV1Only = true
	svc, err := NewService(scfg, newStore(t, 32))
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterService(net, svc); err != nil {
		t.Fatal(err)
	}
	tr, err := NewSimnetTransport("self", net)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultClientConfig()
	cfg.Clock = simclock.NewVirtual(time.Unix(0, 0))
	cfg.GossipBatch = 2
	cfg.GossipFlush = time.Hour
	cl, err := NewClient(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetPeers([]string{"legacy"})
	if _, _, err := cl.Ping("self", "legacy"); err != nil { // pins v1
		t.Fatal(err)
	}
	if _, err := cl.Gossip(feature.Vector{1, 0}, "cat", 0.9, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Gossip(feature.Vector{0, 1}, "dog", 0.9, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := svc.Store().Len(); got != 2 {
		t.Fatalf("legacy store len = %d", got)
	}
	// Per-item delivery: no batch frames counted.
	if ws := cl.WireStats(); ws.Batches != 0 {
		t.Fatalf("batches to a v1 peer = %d", ws.Batches)
	}
}
