package lsh

import (
	"fmt"
	"sort"
)

// VoteConfig parameterizes the homogenized-kNN acceptance decision.
type VoteConfig struct {
	// K is how many neighbors participate in the vote.
	K int
	// MaxDistance is the largest distance at which a neighbor still
	// counts as evidence; the winning neighbor set must contain at
	// least one neighbor within it.
	MaxDistance float64
	// DominanceRatio is the minimum ratio between the top label's
	// weight and the runner-up's weight for the vote to be accepted.
	// Values <= 1 disable the dominance check.
	DominanceRatio float64
	// MinVotes is the minimum number of in-range neighbors required.
	MinVotes int
}

// Validate reports whether the configuration is usable.
func (c VoteConfig) Validate() error {
	if c.K <= 0 {
		return fmt.Errorf("lsh: vote K must be positive, got %d", c.K)
	}
	if c.MaxDistance <= 0 {
		return fmt.Errorf("lsh: vote MaxDistance must be positive, got %v", c.MaxDistance)
	}
	if c.MinVotes < 1 {
		return fmt.Errorf("lsh: vote MinVotes must be >= 1, got %d", c.MinVotes)
	}
	return nil
}

// DefaultVoteConfig returns the acceptance policy used by the standard
// pipeline: 4-NN, dominance 2.0, at least one vote.
func DefaultVoteConfig() VoteConfig {
	return VoteConfig{K: 4, MaxDistance: 0.25, DominanceRatio: 2.0, MinVotes: 1}
}

// Verdict is the outcome of a homogenized-kNN vote.
type Verdict struct {
	// Accepted reports whether the cached label may be reused.
	Accepted bool
	// Label is the winning label (valid only when Accepted).
	Label string
	// Confidence is the winning label's share of total vote weight.
	Confidence float64
	// BestDistance is the distance of the closest supporting neighbor.
	BestDistance float64
	// Votes is the number of in-range neighbors considered.
	Votes int
}

// Vote runs the homogenized-kNN acceptance decision over neighbors.
// labelOf resolves a neighbor's cached label; neighbors whose labels
// cannot be resolved (e.g. concurrently evicted) are skipped.
//
// The decision mirrors FoggyCache's homogenization: neighbors vote with
// weight 1/(distance+ε); the top label must dominate the runner-up by
// DominanceRatio, have at least MinVotes supporters in range, and its
// best supporter must be within MaxDistance. This rejects lookups that
// land between clusters, which is where naive 1-NN reuse loses accuracy.
func Vote(neighbors []Neighbor, labelOf func(ID) (string, bool), cfg VoteConfig) (Verdict, error) {
	if err := cfg.Validate(); err != nil {
		return Verdict{}, err
	}
	const eps = 1e-6
	type tally struct {
		weight float64
		votes  int
		best   float64
	}
	tallies := make(map[string]*tally)
	var totalWeight float64
	considered := 0
	for _, n := range neighbors {
		if considered >= cfg.K {
			break
		}
		if n.Distance > cfg.MaxDistance {
			// Neighbors are sorted by distance: everything after is
			// also out of range.
			break
		}
		label, ok := labelOf(n.ID)
		if !ok {
			continue
		}
		considered++
		w := 1 / (n.Distance + eps)
		tl := tallies[label]
		if tl == nil {
			tl = &tally{best: n.Distance}
			tallies[label] = tl
		}
		tl.weight += w
		tl.votes++
		if n.Distance < tl.best {
			tl.best = n.Distance
		}
		totalWeight += w
	}
	if considered < cfg.MinVotes || len(tallies) == 0 {
		return Verdict{}, nil
	}

	labels := make([]string, 0, len(tallies))
	for l := range tallies {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool {
		wi, wj := tallies[labels[i]].weight, tallies[labels[j]].weight
		if wi != wj {
			return wi > wj
		}
		return labels[i] < labels[j]
	})
	top := tallies[labels[0]]
	if len(labels) > 1 && cfg.DominanceRatio > 1 {
		second := tallies[labels[1]]
		if top.weight < cfg.DominanceRatio*second.weight {
			return Verdict{Votes: considered}, nil
		}
	}
	return Verdict{
		Accepted:     true,
		Label:        labels[0],
		Confidence:   top.weight / totalWeight,
		BestDistance: top.best,
		Votes:        considered,
	}, nil
}
