// Warmstart: persist the cache across sessions. Yesterday's session
// saves its recognition cache to disk; today's session loads it and
// recognizes the same environment almost without touching the DNN.
//
// Run with: go run ./examples/warmstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"approxcache"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildSession(seed int64) (*approxcache.Cache, *approxcache.Workload, error) {
	// Same environment every day (shared ClassSeed), different route.
	spec := approxcache.StationaryHeavyWorkload(400, seed)
	spec.ClassSeed = 2024
	w, err := approxcache.GenerateWorkload(spec)
	if err != nil {
		return nil, nil, err
	}
	clf, err := approxcache.NewSimulatedClassifier(approxcache.MobileNetV2, w, seed)
	if err != nil {
		return nil, nil, err
	}
	cache, err := approxcache.New(clf, approxcache.Options{
		Clock: approxcache.NewVirtualClock(),
	})
	if err != nil {
		return nil, nil, err
	}
	return cache, w, nil
}

func replay(cache *approxcache.Cache, w *approxcache.Workload) error {
	prev := time.Duration(0)
	for _, fr := range w.Frames {
		win := w.IMUWindow(prev, fr.Offset)
		prev = fr.Offset
		if _, err := cache.ProcessWithTruth(fr.Image, win, approxcache.LabelOf(fr.Class)); err != nil {
			return err
		}
	}
	return nil
}

func run() error {
	dir, err := os.MkdirTemp("", "approxcache-warmstart")
	if err != nil {
		return err
	}
	defer func() {
		if rerr := os.RemoveAll(dir); rerr != nil {
			log.Printf("cleanup: %v", rerr)
		}
	}()
	snapshotPath := filepath.Join(dir, "cache.json")

	// --- Day 1: work cold, then persist the cache. ---
	day1, work1, err := buildSession(1)
	if err != nil {
		return err
	}
	if err := replay(day1, work1); err != nil {
		return err
	}
	f, err := os.Create(snapshotPath)
	if err != nil {
		return err
	}
	if err := day1.SaveSnapshot(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(snapshotPath)
	if err != nil {
		return err
	}
	day1DNN := day1.Stats().CountBySource()[approxcache.SourceDNN]
	fmt.Printf("day 1: %d frames, %d DNN runs, %d cached entries saved (%d bytes)\n",
		day1.Stats().Frames(), day1DNN, day1.Len(), info.Size())

	// --- Day 2, cold: a fresh session with no memory. ---
	cold, work2, err := buildSession(2)
	if err != nil {
		return err
	}
	if err := replay(cold, work2); err != nil {
		return err
	}

	// --- Day 2, warm: the same session, restored from disk first. ---
	warm, work2b, err := buildSession(2)
	if err != nil {
		return err
	}
	g, err := os.Open(snapshotPath)
	if err != nil {
		return err
	}
	loaded, err := warm.LoadSnapshot(g)
	if cerr := g.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := replay(warm, work2b); err != nil {
		return err
	}

	coldDNN := cold.Stats().CountBySource()[approxcache.SourceDNN]
	warmDNN := warm.Stats().CountBySource()[approxcache.SourceDNN]
	fmt.Printf("day 2 cold start: %d DNN runs, mean latency %v\n",
		coldDNN, cold.Stats().Latency().Mean().Round(10*time.Microsecond))
	fmt.Printf("day 2 warm start: %d DNN runs, mean latency %v (%d entries restored)\n",
		warmDNN, warm.Stats().Latency().Mean().Round(10*time.Microsecond), loaded)
	if warmDNN < coldDNN {
		fmt.Printf("\nthe snapshot saved %d cold-start inferences\n", coldDNN-warmDNN)
	}
	return nil
}
